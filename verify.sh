#!/bin/sh
# verify.sh — the repo's tier-1 verification gate, runnable locally and in
# CI. Fails fast on the first broken stage.
#
#   ./verify.sh          full gate: vet, build, tests, race, simulation
#   ./verify.sh quick    skip the -race pass (slowest stage) for inner loops
set -eu
cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test -timeout 120s ./...

if [ "${1:-}" != "quick" ]; then
    echo "== go test -race =="
    go test -race -timeout 300s ./...
fi

# The simregression build re-seeds two historical bugs (pre-rotation
# takeover fencing, the PR 8 refund-on-failure leak) and asserts the
# model checker FINDS both and shrinks each to a short replayable trace.
echo "== simulation regression (historical bugs must be found) =="
go test -tags simregression -timeout 120s ./internal/sim/...

echo "verify: all stages passed"
