// Package rdx is the public API of the RDX library: Remote Direct Code
// Execution — RDMA elevated from remote memory access to remote code
// execution (HotNets '25).
//
// RDX lets a centralized control plane validate, JIT-compile, link, and
// inject runtime extensions (eBPF programs, Wasm filters, UDFs) directly
// into the memory of remote data-plane sandboxes using one-sided RDMA
// verbs. The target nodes run no agent: after a one-time boot (management
// stubs), every control-path operation is remote memory manipulation.
//
// # Quick start
//
//	// Boot a data-plane node and serve its software RNIC.
//	n, _ := rdx.NewNode(rdx.NodeConfig{ID: "n0", Hooks: []string{"ingress"}})
//	fabric := rdx.NewFabric()
//	l, _ := fabric.Listen("n0")
//	go n.Serve(l)
//
//	// Control plane: bind a CodeFlow and inject an extension.
//	cp := rdx.NewControlPlane()
//	conn, _ := fabric.Dial("n0")
//	cf, _ := cp.CreateCodeFlow(conn)
//	udfExt, _ := rdx.NewUDF("sampler", "len > 128 && (hash(flow) % 100) < 10")
//	cf.InjectExtension(udfExt, "ingress")
//
//	// Data plane: requests now flow through the injected logic.
//	ctx := make([]byte, rdx.CtxSize)
//	res, _ := n.ExecHook("ingress", ctx, nil)
//
// The implementation lives under internal/; this package re-exports the
// stable surface. See DESIGN.md for the architecture and EXPERIMENTS.md for
// the paper-reproduction results.
package rdx

import (
	"rdx/internal/core"
	"rdx/internal/ebpf"
	"rdx/internal/ext"
	"rdx/internal/native"
	"rdx/internal/node"
	"rdx/internal/orchestrator"
	"rdx/internal/rdma"
	"rdx/internal/udf"
	"rdx/internal/wasm"
	"rdx/internal/xabi"
)

// Control plane and CodeFlow (Table 1 of the paper).
type (
	// ControlPlane is the centralized, agentless extension authority.
	ControlPlane = core.ControlPlane
	// CodeFlow is a handle bound to one remote data-plane node.
	CodeFlow = core.CodeFlow
	// Group is a collective CodeFlow for rdx_broadcast.
	Group = core.Group
	// BroadcastOptions configures collective updates (BBU etc.).
	BroadcastOptions = core.BroadcastOptions
	// Report carries per-stage injection timings.
	Report = core.Report
	// Deployed records a published extension version.
	Deployed = core.Deployed
	// TxWrite is one staged write of an rdx_tx transaction.
	TxWrite = core.TxWrite
	// QwordSwap is an rdx_tx commit point.
	QwordSwap = core.QwordSwap
	// XState is a deployed remote state instance.
	XState = core.XState
)

// NewControlPlane creates an empty control plane with a warm registry.
var NewControlPlane = core.NewControlPlane

// Data plane.
type (
	// Node is one data-plane host (arena + RNIC + cores + sandbox).
	Node = node.Node
	// NodeConfig configures a node.
	NodeConfig = node.Config
	// ExecResult reports one hook execution.
	ExecResult = node.ExecResult
	// HookStats are a hook's data-plane counters.
	HookStats = node.HookStats
)

// NewNode boots a data-plane node (ctx_init + ctx_register).
var NewNode = node.New

// ErrDropped marks requests dropped by an extension verdict.
var ErrDropped = node.ErrDropped

// Extensions.
type (
	// Extension is one deployable runtime extension of any kind.
	Extension = ext.Extension
	// EBPFProgram is an eBPF extension's IR.
	EBPFProgram = ebpf.Program
	// MapSpec declares an XState map.
	MapSpec = ebpf.MapSpec
	// WasmModule is a Wasm filter module.
	WasmModule = wasm.Module
	// UDFProgram is a user-defined function.
	UDFProgram = udf.Program
)

// Extension constructors.
var (
	FromEBPF = ext.FromEBPF
	FromWasm = ext.FromWasm
	FromUDF  = ext.FromUDF
)

// NewUDF parses a UDF expression and wraps it as an Extension.
func NewUDF(name, source string) (*Extension, error) {
	p, err := udf.New(name, source)
	if err != nil {
		return nil, err
	}
	return FromUDF(p), nil
}

// Fabric and architectures.
type (
	// Fabric is an in-process RDMA network for single-process clusters.
	Fabric = rdma.Fabric
	// LatencyModel injects per-verb fabric latency.
	LatencyModel = rdma.LatencyModel
	// Arch is a target instruction-set architecture.
	Arch = native.Arch
)

// NewFabric creates an in-process fabric.
var NewFabric = rdma.NewFabric

// DefaultLatency approximates a CX-4-class RNIC on a 25 Gb/s fabric.
var DefaultLatency = rdma.DefaultLatency

// NoLatency disables injected fabric latency (tests).
var NoLatency = rdma.NoLatency

// Target architectures.
const (
	ArchX64 = native.ArchX64
	ArchA64 = native.ArchA64
)

// Orchestration (declarative cluster-wide rollouts, §7 future work).
type (
	// Orchestrator executes declarative plans against named CodeFlows.
	Orchestrator = orchestrator.Orchestrator
	// Plan is a parsed orchestration program.
	Plan = orchestrator.Plan
)

// NewOrchestrator creates an orchestrator over a control plane.
var NewOrchestrator = orchestrator.New

// ParsePlan compiles orchestration-plan source.
var ParsePlan = orchestrator.Parse

// Security (§5): role-based deployment policy and runtime limits.
type (
	// AccessPolicy maps roles to deployment privileges.
	AccessPolicy = core.AccessPolicy
	// Role names a CodeFlow principal's privilege level.
	Role = core.Role
	// Privilege describes what a role may deploy, where.
	Privilege = core.Privilege
)

// ErrDenied is returned when the access policy rejects an operation.
var ErrDenied = core.ErrDenied

// ErrRuntimeLimit marks executions aborted by a hook's instruction budget.
var ErrRuntimeLimit = node.ErrRuntimeLimit

// Extension ABI constants.
const (
	// CtxSize is the request context structure size.
	CtxSize = xabi.CtxSize
	// Context field offsets.
	CtxOffDataLen  = xabi.CtxOffDataLen
	CtxOffProtocol = xabi.CtxOffProtocol
	CtxOffVerdict  = xabi.CtxOffVerdict
	CtxOffFlowID   = xabi.CtxOffFlowID
	CtxOffTenant   = xabi.CtxOffTenant
	// Verdicts.
	VerdictDrop  = xabi.VerdictDrop
	VerdictPass  = xabi.VerdictPass
	VerdictAbort = xabi.VerdictAbort
)
