package core

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"rdx/internal/ext"
	"rdx/internal/node"
	"rdx/internal/pipeline"
	"rdx/internal/xabi"
)

// TestPublishAfterRingWrapFails pins the wrap-epoch guard: a deploy staged
// before a code-ring wrap must refuse to publish, because post-wrap
// allocations may already overlap its blob — the CAS would dispatch
// someone else's bytes. The failure must classify as retryable so the
// scheduler re-drives the stage into fresh ring space.
func TestPublishAfterRingWrapFails(t *testing.T) {
	r := newRig(t, 1)
	cf := r.cfs[0]

	sd, err := cf.StageExtension(context.Background(), bigProg("wrap-v1", 1), "ingress")
	if err != nil {
		t.Fatal(err)
	}
	// Wrap the ring under the staged-but-unpublished deploy.
	for i := 0; i < 3; i++ {
		if _, err := cf.AllocCode(int(node.CodeSize / 2)); err != nil {
			t.Fatal(err)
		}
	}
	err = sd.Publish(context.Background())
	if !errors.Is(err, ErrRingWrapped) {
		t.Fatalf("publish after ring wrap = %v, want ErrRingWrapped", err)
	}
	if !Retryable(err) {
		t.Fatal("ErrRingWrapped must be retryable so the scheduler restages")
	}
	// The hook must still run nothing new — the stale blob was never
	// dispatched — and a fresh inject must succeed end to end.
	injectOn(t, r.cp, cf, bigProg("wrap-v2", 2))
	out, execErr := r.nodes[0].ExecHook("ingress", make([]byte, xabi.CtxSize), nil)
	if execErr != nil || out.Verdict != 2 {
		t.Fatalf("post-wrap inject: %+v err=%v", out, execErr)
	}
}

// TestRollbackRefusesReclaimedVersion pins the history-tombstone behavior:
// when a delta stage claims a blob that sits in another hook's rollback
// stack (published there via the resident fast path), that stack keeps its
// depth, and rolling back onto the reclaimed version fails with a cause —
// never a silent skip, a misleading "no prior version", or a flip onto
// overwritten bytes.
func TestRollbackRefusesReclaimedVersion(t *testing.T) {
	r := newRig(t, 1, "ingress", "egress")
	cf := r.cfs[0]

	// v1 lands on ingress (blob B1), then repeat-deploys onto egress via
	// the resident fast path — B1 is now in both hooks' histories.
	v1 := bigProg("tomb-v1", 1)
	injectOn(t, r.cp, cf, v1)
	if rep, err := cf.InjectExtension(v1, "egress"); err != nil || !rep.CacheHit {
		t.Fatalf("resident repeat-deploy on egress: rep=%+v err=%v", rep, err)
	}
	// Move egress off B1 so the blob is dead everywhere and claimable.
	if _, err := cf.InjectExtension(constProg("tomb-egress", 9), "egress"); err != nil {
		t.Fatal(err)
	}
	// v2 displaces B1 into ingress's standby; v3's stage claims B1 as its
	// delta target, tombstoning B1's history entries on BOTH hooks.
	injectOn(t, r.cp, cf, bigProg("tomb-v2", 2))
	injectOn(t, r.cp, cf, bigProg("tomb-v3", 3))
	if got := r.cp.Registry.Counter("core.history.reclaimed").Value(); got < 2 {
		t.Fatalf("core.history.reclaimed = %d, want >= 2 (v1 entry on each hook)", got)
	}

	// Egress's stack kept its depth...
	if h := cf.History("egress"); len(h) != 2 {
		t.Fatalf("egress history depth = %d, want 2 (tombstoned, not deleted)", len(h))
	}
	// ...and rollback onto the reclaimed version refuses with a cause.
	_, err := cf.Rollback("egress")
	if err == nil || !strings.Contains(err.Error(), "reclaimed") {
		t.Fatalf("rollback onto a claimed blob = %v, want reclaimed-version error", err)
	}
	// Egress must still execute its current version untouched.
	out, execErr := r.nodes[0].ExecHook("egress", make([]byte, xabi.CtxSize), nil)
	if execErr != nil || out.Verdict != 9 {
		t.Fatalf("egress after refused rollback: %+v err=%v", out, execErr)
	}
}

// TestResidentFastPathVsDeltaClaimRace hammers the TOCTOU surface between
// the commit-only resident fast path and claimStandby under -race: one
// goroutine rotates versions through the staging pipeline on ingress
// (claiming standbys for delta writes) while another repeat-deploys the
// same digests onto egress (snapshotting resident blob addresses and
// CASing dispatch pointers onto them). The claim and the commit-only
// dispatch both serialize on pubMu, so whatever either hook ends up
// dispatching must be byte-exact one complete version — never a blob torn
// by a concurrent delta rewrite.
func TestResidentFastPathVsDeltaClaimRace(t *testing.T) {
	r := newRig(t, 1, "ingress", "egress")
	cf := r.cfs[0]

	vs := []*ext.Extension{bigProg("claimrace-a", 41), bigProg("claimrace-b", 42), bigProg("claimrace-c", 43)}
	for _, e := range vs {
		injectOn(t, r.cp, cf, e)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // stager: keeps claiming ingress standbys for delta writes
		defer wg.Done()
		for i := 0; i < 20; i++ {
			res, err := r.cp.Scheduler().Inject(pipeline.Request{
				Ext: vs[i%len(vs)], Hook: "ingress",
				Targets: []pipeline.Target{cf}, Deadline: 10 * time.Second,
			})
			if err != nil {
				t.Error(err)
				return
			}
			if oerr := res.Outcomes[0].Err; oerr != nil {
				t.Errorf("staged inject %d: %v", i, oerr)
				return
			}
		}
	}()
	go func() { // committer: repeat-deploys the same digests onto egress
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if _, err := cf.InjectExtension(vs[i%len(vs)], "egress"); err != nil {
				t.Errorf("resident inject %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()

	var images [][]byte
	for _, e := range vs {
		bin, err := r.cp.JITCompileCode(e, cf.Arch)
		if err != nil {
			t.Fatal(err)
		}
		images = append(images, bin.Code)
	}
	for _, hook := range []string{"ingress", "egress"} {
		_, code := readDispatchedCode(t, cf, hook)
		match := false
		for _, img := range images {
			if bytes.Equal(code, img) {
				match = true
			}
		}
		if !match {
			t.Fatalf("hook %q dispatches code matching no racing version: torn by a concurrent delta claim", hook)
		}
	}
}
