package core

import (
	"errors"
	"testing"

	"rdx/internal/pipeline"
	"rdx/internal/rdma"
	"rdx/internal/xabi"
)

// TestInjectTracedEndToEnd is the observability acceptance path: one Inject
// must leave a complete trace — every pipeline stage from queue to publish,
// the wire verbs the job issued, and (when the target endpoint shares the
// recorder) the service-side spans — all under the job's single trace ID.
func TestInjectTracedEndToEnd(t *testing.T) {
	r := newRig(t, 2)
	// Share the control plane's recorder with the served endpoints so the
	// trace ID carried in the wire header stitches both sides together, as
	// rdxd -http does in production.
	for i, n := range r.nodes {
		n.RNIC.SetInstruments(nil, r.cp.Tracer, nodeID(i))
	}

	targets := make([]pipeline.Target, len(r.cfs))
	for i, cf := range r.cfs {
		targets[i] = cf
	}
	res, err := r.cp.Scheduler().Inject(pipeline.Request{
		Ext: constProg("traced", 7), Hook: "ingress", Targets: targets,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == 0 {
		t.Fatal("job has no trace ID")
	}

	evs := r.cp.Tracer.Trace(res.Trace)
	byLayerName := map[string]int{}
	for _, ev := range evs {
		byLayerName[ev.Layer+"/"+ev.Name]++
	}
	// All six pipeline stages, once per job (link/write/publish: per node).
	for _, stage := range []string{"queue", "validate", "jit"} {
		if byLayerName["pipeline/"+stage] != 1 {
			t.Errorf("pipeline stage %q spans = %d, want 1 (trace: %v)", stage, byLayerName["pipeline/"+stage], byLayerName)
		}
	}
	for _, stage := range []string{"link", "write", "publish"} {
		if byLayerName["pipeline/"+stage] != len(targets) {
			t.Errorf("pipeline stage %q spans = %d, want %d", stage, byLayerName["pipeline/"+stage], len(targets))
		}
	}
	// Staging writes one OpBatch chain per node; publish CASes the dispatch
	// pointer and fires a doorbell. All must carry the job's trace ID on both
	// the initiator ("wire") and the served ("endpoint") side.
	for _, layer := range []string{"wire", "endpoint"} {
		for _, verb := range []string{"batch", "cas", "write_imm"} {
			if byLayerName[layer+"/"+verb] < len(targets) {
				t.Errorf("%s %s spans = %d, want >= %d (trace: %v)",
					layer, verb, byLayerName[layer+"/"+verb], len(targets), byLayerName)
			}
		}
	}
	// A second job gets a different trace ID and its spans don't bleed in.
	res2, err := r.cp.Scheduler().Inject(pipeline.Request{
		Ext: constProg("traced2", 8), Hook: "ingress", Targets: targets,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Trace == res.Trace {
		t.Fatal("two jobs shared a trace ID")
	}
}

// TestPipelineFleetRolloutPartialFailure is the acceptance scenario: a
// non-atomic fleet rollout through the control plane's scheduler completes
// on every healthy node and reports the dead node's failure precisely —
// attempts exhausted, error classified, no wedged job.
func TestPipelineFleetRolloutPartialFailure(t *testing.T) {
	r := newRig(t, 8)
	dead := 3
	r.cfs[dead].Close() // endpoint down before the rollout begins

	targets := make([]pipeline.Target, len(r.cfs))
	for i, cf := range r.cfs {
		targets[i] = cf
	}
	res, err := r.cp.Scheduler().Inject(pipeline.Request{
		Ext: constProg("rollout", 42), Hook: "ingress", Targets: targets,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Published {
		t.Fatal("partial-failure rollout withheld publish; want partial completion")
	}

	failed := res.Failed()
	if len(failed) != 1 {
		t.Fatalf("failed outcomes = %+v, want exactly the dead node", failed)
	}
	if failed[0].Node != r.cfs[dead].NodeKey() {
		t.Errorf("failed node = %s, want %s", failed[0].Node, r.cfs[dead].NodeKey())
	}
	if !errors.Is(failed[0].Err, rdma.ErrClosed) {
		t.Errorf("failure cause = %v, want %v", failed[0].Err, rdma.ErrClosed)
	}
	if failed[0].Attempts != 3 { // 1 try + Retries(2)
		t.Errorf("attempts = %d, want 3", failed[0].Attempts)
	}

	for i, n := range r.nodes {
		if i == dead {
			continue
		}
		exec, execErr := n.ExecHook("ingress", make([]byte, xabi.CtxSize), nil)
		if execErr != nil || exec.Verdict != 42 {
			t.Errorf("node %d after rollout: %+v err=%v", i, exec, execErr)
		}
		if res.Outcomes[i].Version == 0 {
			t.Errorf("node %d outcome missing version", i)
		}
	}

	st := r.cp.Scheduler().Stats()
	if st.Jobs != 1 || st.NodesInjected != 7 || st.NodesFailed != 1 {
		t.Errorf("stats = jobs %d injected %d failed %d, want 1/7/1", st.Jobs, st.NodesInjected, st.NodesFailed)
	}
	if st.Retries != 2 {
		t.Errorf("retries = %d, want 2", st.Retries)
	}
}

// TestBroadcastFeedsSchedulerStats checks that the collective path is
// really running on the scheduler and its spans land in the stats.
func TestBroadcastFeedsSchedulerStats(t *testing.T) {
	r := newRig(t, 4)
	if _, err := Group(r.cfs).Broadcast(constProg("bstat", 5), BroadcastOptions{Hook: "ingress"}); err != nil {
		t.Fatal(err)
	}
	st := r.cp.Scheduler().Stats()
	if st.Jobs != 1 || st.NodesInjected != 4 {
		t.Errorf("stats = jobs %d injected %d, want 1/4", st.Jobs, st.NodesInjected)
	}
	if st.Link.Count != 4 || st.Write.Count != 4 {
		t.Errorf("link/write span counts = %d/%d, want 4/4", st.Link.Count, st.Write.Count)
	}
	if st.Total.Max <= 0 {
		t.Error("total span not recorded")
	}
}
