package core

import (
	"errors"
	"testing"

	"rdx/internal/ext"
	"rdx/internal/node"
	"rdx/internal/wasm"
	"rdx/internal/xabi"
)

func TestAccessPolicyHookRestriction(t *testing.T) {
	r := newRig(t, 1, "ingress", "egress")
	cf := r.cfs[0]
	r.cp.SetPolicy(&AccessPolicy{Roles: map[Role]Privilege{
		"edge-team": {Hooks: []string{"ingress"}},
	}})
	cf.Bind("edge-team")

	if _, err := cf.InjectExtension(constProg("ok", 1), "ingress"); err != nil {
		t.Fatalf("allowed hook rejected: %v", err)
	}
	if _, err := cf.InjectExtension(constProg("no", 1), "egress"); !errors.Is(err, ErrDenied) {
		t.Errorf("forbidden hook: %v, want ErrDenied", err)
	}
	// Unknown role denied entirely.
	cf.Bind("nobody")
	if _, err := cf.InjectExtension(constProg("no2", 1), "ingress"); !errors.Is(err, ErrDenied) {
		t.Errorf("unknown role: %v, want ErrDenied", err)
	}
	// Clearing the policy restores open access.
	r.cp.SetPolicy(nil)
	if _, err := cf.InjectExtension(constProg("open", 2), "egress"); err != nil {
		t.Errorf("open access after clearing policy: %v", err)
	}
}

func TestAccessPolicyKindAndSize(t *testing.T) {
	r := newRig(t, 1)
	cf := r.cfs[0]
	r.cp.SetPolicy(&AccessPolicy{Roles: map[Role]Privilege{
		"udf-only": {Kinds: []ext.Kind{ext.KindUDF}, MaxOps: 10},
	}})
	cf.Bind("udf-only")

	if _, err := cf.InjectExtension(constProg("ebpf", 1), "ingress"); !errors.Is(err, ErrDenied) {
		t.Errorf("wrong kind: %v, want ErrDenied", err)
	}
	// Oversized extension of an allowed kind.
	r.cp.SetPolicy(&AccessPolicy{Roles: map[Role]Privilege{
		"udf-only": {MaxOps: 1},
	}})
	if _, err := cf.InjectExtension(constProg("big", 1), "ingress"); !errors.Is(err, ErrDenied) {
		t.Errorf("oversized: %v, want ErrDenied", err)
	}
}

func TestRuntimeLimitAbortsLoopingFilter(t *testing.T) {
	r := newRig(t, 1)
	cf := r.cfs[0]

	// A Wasm filter with an unbounded loop (legal in Wasm, unlike eBPF).
	body := wasm.NewBody().
		Loop(wasm.BlockEmpty).
		Br(0).
		End().
		I64Const(1).
		End().Bytes()
	spinner := ext.FromWasm(wasm.SimpleFilter("spinner", 0, nil, body))
	if _, err := cf.InjectExtension(spinner, "ingress"); err != nil {
		t.Fatal(err)
	}
	if err := cf.SetRuntimeLimit("ingress", 10_000); err != nil {
		t.Fatal(err)
	}

	_, err := r.nodes[0].ExecHook("ingress", make([]byte, xabi.CtxSize), nil)
	if !errors.Is(err, node.ErrRuntimeLimit) {
		t.Fatalf("err = %v, want ErrRuntimeLimit", err)
	}
	aborts, err := cf.RuntimeAborts("ingress")
	if err != nil || aborts != 1 {
		t.Errorf("aborts = %d err=%v", aborts, err)
	}

	// Clearing the limit restores the (large) engine default; the spinner
	// still dies eventually, but a well-behaved extension runs fine.
	if err := cf.SetRuntimeLimit("ingress", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cf.InjectExtension(constProg("fine", 1), "ingress"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.nodes[0].ExecHook("ingress", make([]byte, xabi.CtxSize), nil); err != nil {
		t.Errorf("well-behaved extension under no limit: %v", err)
	}
}

func TestQuarantine(t *testing.T) {
	r := newRig(t, 1)
	cf := r.cfs[0]
	if _, err := cf.InjectExtension(constProg("good", 1), "ingress"); err != nil {
		t.Fatal(err)
	}
	if _, err := cf.InjectExtension(constProg("bad", 2), "ingress"); err != nil {
		t.Fatal(err)
	}
	prev, err := cf.Quarantine("ingress", 5000)
	if err != nil {
		t.Fatal(err)
	}
	if prev.Name != "good" {
		t.Errorf("quarantine restored %q", prev.Name)
	}
	res, err := r.nodes[0].ExecHook("ingress", make([]byte, xabi.CtxSize), nil)
	if err != nil || res.Verdict != 1 {
		t.Errorf("post-quarantine exec: %+v err=%v", res, err)
	}
	// The runtime limit is in force.
	hookAddr, _ := cf.HookAddr("ingress")
	fuel, _ := cf.Remote.ReadMem(hookAddr+node.HookOffFuel, 8)
	if fuel != 5000 {
		t.Errorf("fuel = %d", fuel)
	}
}

func TestAuditLog(t *testing.T) {
	r := newRig(t, 1)
	before := r.cp.AuditLen()
	r.cfs[0].InjectExtension(constProg("a", 1), "ingress")
	r.cfs[0].InjectExtension(constProg("b", 2), "ingress")
	if got := r.cp.AuditLen() - before; got != 2 {
		t.Errorf("audit entries = %d, want 2", got)
	}
}

func TestVerifyIntegrity(t *testing.T) {
	r := newRig(t, 1)
	cf := r.cfs[0]
	dep, err := cf.InjectExtension(constProg("trusted", 5), "ingress")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cf.VerifyIntegrity("ingress")
	if err != nil || !rep.Intact {
		t.Fatalf("fresh deploy: %+v err=%v", rep, err)
	}
	if rep.Version != dep.Version || rep.Blob != dep.Blob {
		t.Errorf("report identity mismatch: %+v vs %+v", rep, dep)
	}

	// An attacker with node access flips a byte of the live code.
	r.nodes[0].Arena.Write(dep.Blob+node.BlobHdrSize+4, []byte{0xFF})
	rep, err = cf.VerifyIntegrity("ingress")
	if !errors.Is(err, ErrTampered) {
		t.Fatalf("tampered code: err=%v rep=%+v", err, rep)
	}
	if rep.Intact || rep.Expected == rep.Actual {
		t.Errorf("tampering not reflected in report: %+v", rep)
	}

	// Recovery: redeploying restores integrity.
	if _, err := cf.InjectExtension(constProg("trusted2", 6), "ingress"); err != nil {
		t.Fatal(err)
	}
	if rep, err := cf.VerifyIntegrity("ingress"); err != nil || !rep.Intact {
		t.Errorf("post-recovery: %+v err=%v", rep, err)
	}
}

func TestVerifyIntegrityEmptyHook(t *testing.T) {
	r := newRig(t, 1)
	rep, err := r.cfs[0].VerifyIntegrity("ingress")
	if err != nil || !rep.Intact || rep.Blob != 0 {
		t.Errorf("empty hook: %+v err=%v", rep, err)
	}
}
