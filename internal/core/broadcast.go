package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"rdx/internal/ext"
	"rdx/internal/node"
)

// Group is a collective CodeFlow: a set of node handles updated as one.
type Group []*CodeFlow

// BroadcastOptions shape a collective update.
type BroadcastOptions struct {
	// BBU enables Big Bubble Update: every target hook's buffering gate is
	// raised, in-flight requests are drained, then all pointers flip and
	// the gates clear — so no request observes a mix of old and new logic
	// anywhere in the group.
	BBU bool
	// Hook names the target hook on every node.
	Hook string
	// DrainTimeout bounds the BBU in-flight drain (default 2s).
	DrainTimeout time.Duration
}

// BroadcastReport summarizes one collective update.
type BroadcastReport struct {
	// Prepare spans validation/compilation (amortized by the registry),
	// per-node linking, and parallel staging of all blobs.
	Prepare time.Duration
	// Commit spans gate-raise (if BBU), all pointer flips, and gate-clear:
	// the window during which the update becomes visible.
	Commit time.Duration
	// GateHeld is how long request buffering lasted (BBU only).
	GateHeld time.Duration
	Total    time.Duration
	Versions []uint64
}

// staged is one node's prepared-but-unpublished deployment.
type staged struct {
	cf       *CodeFlow
	hookAddr uint64
	blob     uint64
	version  uint64
}

// Broadcast is rdx_broadcast: transactionally deploy one extension to every
// node in the group (the write set spans all target hooks, §4). Phase one
// stages code and state on every node in parallel; phase two publishes with
// one CAS per node, optionally bracketed by BBU gates.
func (g Group) Broadcast(e *ext.Extension, opts BroadcastOptions) (BroadcastReport, error) {
	var rep BroadcastReport
	if len(g) == 0 {
		return rep, fmt.Errorf("core: empty broadcast group")
	}
	start := time.Now()

	// Phase 1: prepare — stage everywhere, publish nowhere.
	stagedAll := make([]staged, len(g))
	errs := make([]error, len(g))
	var wg sync.WaitGroup
	for i, cf := range g {
		wg.Add(1)
		go func(i int, cf *CodeFlow) {
			defer wg.Done()
			stagedAll[i], errs[i] = cf.stage(e, opts.Hook)
		}(i, cf)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			// Abort: staged blobs are unreferenced garbage in the bump
			// allocator; no pointer ever exposed them.
			return rep, fmt.Errorf("core: broadcast stage on node %d: %w", i, err)
		}
	}
	rep.Prepare = time.Since(start)

	// Phase 2: commit.
	commitStart := time.Now()
	if opts.BBU {
		for i, cf := range g {
			wg.Add(1)
			go func(i int, cf *CodeFlow) {
				defer wg.Done()
				errs[i] = cf.SetBufferGate(opts.Hook, true)
			}(i, cf)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				// Roll gates back before failing.
				for _, cf := range g {
					cf.SetBufferGate(opts.Hook, false)
				}
				return rep, fmt.Errorf("core: broadcast gate raise: %w", err)
			}
		}
	}
	gateStart := time.Now()
	if opts.BBU {
		// Drain: wait for every request already inside the bubble to
		// complete, so nothing straddles old and new logic.
		timeout := opts.DrainTimeout
		if timeout == 0 {
			timeout = 2 * time.Second
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		err := g.drainInflight(ctx, opts.Hook)
		cancel()
		if err != nil {
			for _, cf := range g {
				cf.SetBufferGate(opts.Hook, false)
			}
			return rep, fmt.Errorf("core: broadcast drain: %w", err)
		}
	}

	for i := range stagedAll {
		s := &stagedAll[i]
		wg.Add(1)
		go func(i int, s *staged) {
			defer wg.Done()
			errs[i] = s.publish()
		}(i, s)
	}
	wg.Wait()
	var commitErr error
	for i, err := range errs {
		if err != nil && commitErr == nil {
			commitErr = fmt.Errorf("core: broadcast commit on node %d: %w", i, err)
		}
	}

	if opts.BBU {
		for _, cf := range g {
			cf.SetBufferGate(opts.Hook, false)
		}
		rep.GateHeld = time.Since(gateStart)
	}
	rep.Commit = time.Since(commitStart)
	rep.Total = time.Since(start)
	for _, s := range stagedAll {
		rep.Versions = append(rep.Versions, s.version)
	}
	return rep, commitErr
}

// stage runs everything except publication for one node.
func (cf *CodeFlow) stage(e *ext.Extension, hook string) (staged, error) {
	hookAddr, err := cf.HookAddr(hook)
	if err != nil {
		return staged{}, err
	}
	bin, err := cf.JITCompileCode(e)
	if err != nil {
		return staged{}, err
	}
	extra := map[string]uint64{}
	params := DeployParams{Kind: uint8(e.Kind)}
	if err := cf.setupState(e, extra, &params); err != nil {
		return staged{}, err
	}
	if err := cf.LinkCode(bin, extra); err != nil {
		return staged{}, err
	}
	version, err := cf.NextVersion()
	if err != nil {
		return staged{}, err
	}
	blob, err := cf.AllocCode(node.BlobHdrSize + len(bin.Code))
	if err != nil {
		return staged{}, err
	}
	hdr := node.EncodeBlobHeader(bin.Arch, node.BlobParams{
		Kind: params.Kind, Version: version, MemBase: params.MemBase, GlobBase: params.GlobBase,
	}, len(bin.Code))
	if err := cf.Remote.WriteBytes(blob, append(hdr, bin.Code...)); err != nil {
		return staged{}, err
	}
	codeSum := sha256.Sum256(bin.Code)
	cf.mu.Lock()
	cf.codeHashes[blob] = hex.EncodeToString(codeSum[:])
	cf.mu.Unlock()
	// Record the staged blob on the hook (crash-visible prepare record).
	if err := cf.Remote.WriteMem(hookAddr+node.HookOffStaged, 8, blob); err != nil {
		return staged{}, err
	}
	return staged{cf: cf, hookAddr: hookAddr, blob: blob, version: version}, nil
}

// publish flips the staged blob live: version write + dispatch CAS +
// cc_event, the commit-only path.
func (s *staged) publish() error {
	cf := s.cf
	if err := cf.Tx(
		[]TxWrite{{Addr: s.hookAddr + node.HookOffVersion, Qword: s.version}},
		QwordSwap{Addr: s.hookAddr + node.HookOffDispatch, New: s.blob},
	); err != nil {
		return err
	}
	cf.CCEvent(s.hookAddr + node.HookOffDispatch)
	cf.mu.Lock()
	cf.history[hookNameFromAddr(cf, s.hookAddr)] = append(cf.history[hookNameFromAddr(cf, s.hookAddr)],
		Deployed{Blob: s.blob, Version: s.version})
	cf.mu.Unlock()
	return nil
}

// hookNameFromAddr reverse-maps a hook address to its name (small tables).
func hookNameFromAddr(cf *CodeFlow, addr uint64) string {
	for sym, a := range cf.got {
		if a == addr && len(sym) > 5 && sym[:5] == "hook:" {
			return sym[5:]
		}
	}
	return fmt.Sprintf("hook@%#x", addr)
}

// drainInflight polls every node's in-flight counter until all are zero.
func (g Group) drainInflight(ctx context.Context, hook string) error {
	for _, cf := range g {
		hookAddr, err := cf.HookAddr(hook)
		if err != nil {
			return err
		}
		for {
			inflight, err := cf.Remote.ReadMem(hookAddr+node.HookOffInflight, 8)
			if err != nil {
				return err
			}
			if inflight == 0 {
				break
			}
			select {
			case <-ctx.Done():
				return fmt.Errorf("%d requests still in flight on node %#x: %w", inflight, cf.NodeID, ctx.Err())
			default:
			}
			time.Sleep(5 * time.Microsecond)
		}
	}
	return nil
}
