package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"rdx/internal/ext"
	"rdx/internal/node"
	"rdx/internal/pipeline"
)

// Group is a collective CodeFlow: a set of node handles updated as one.
type Group []*CodeFlow

// BroadcastOptions shape a collective update.
type BroadcastOptions struct {
	// BBU enables Big Bubble Update: every target hook's buffering gate is
	// raised, in-flight requests are drained, then all pointers flip and
	// the gates clear — so no request observes a mix of old and new logic
	// anywhere in the group.
	BBU bool
	// Hook names the target hook on every node.
	Hook string
	// DrainTimeout bounds the BBU in-flight drain (default 2s).
	DrainTimeout time.Duration
	// Barrier, if set, is an armed offloaded publish barrier
	// (ArmChainBarrier with parties = group size): every node's staging
	// goroutine fires one arrival, and the final arrival's NIC-resident
	// chain flips the group-commit word — a fleet-visible "all staged"
	// signal that costs no controller round trips beyond the triggers
	// themselves.
	Barrier *ChainBarrier
}

// BroadcastReport summarizes one collective update.
type BroadcastReport struct {
	// Prepare spans validation/compilation (amortized by the registry),
	// per-node linking, and parallel staging of all blobs.
	Prepare time.Duration
	// Commit spans gate-raise (if BBU), all pointer flips, and gate-clear:
	// the window during which the update becomes visible.
	Commit time.Duration
	// GateHeld is how long request buffering lasted (BBU only).
	GateHeld time.Duration
	Total    time.Duration
	Versions []uint64
}

// Broadcast is rdx_broadcast: transactionally deploy one extension to every
// node in the group (the write set spans all target hooks, §4). It runs as
// one Atomic job on the control plane's injection scheduler: staging (link +
// batched write) fans out to all nodes in parallel and publishes only if
// every node staged — the abort path leaves staged blobs as unreferenced
// garbage in the ring allocators, never exposed by any pointer. BBU gates
// slot into the scheduler's publish barrier.
func (g Group) Broadcast(e *ext.Extension, opts BroadcastOptions) (BroadcastReport, error) {
	var rep BroadcastReport
	if len(g) == 0 {
		return rep, fmt.Errorf("core: empty broadcast group")
	}
	start := time.Now()
	targets := make([]pipeline.Target, len(g))
	for i, cf := range g {
		targets[i] = cf
	}

	var arrive func(context.Context) (bool, error)
	if opts.Barrier != nil {
		arrive = opts.Barrier.Arrive
	}
	var prepareEnd, gateStart time.Time
	res, err := g[0].cp.Scheduler().Inject(pipeline.Request{
		Ext:     e,
		Hook:    opts.Hook,
		Targets: targets,
		Atomic:  true,
		Arrive:  arrive,
		BeforePublish: func() error {
			prepareEnd = time.Now()
			if !opts.BBU {
				return nil
			}
			// Raise every gate, then drain: wait for every request already
			// inside the bubble to complete, so nothing straddles old and
			// new logic.
			errs := make([]error, len(g))
			var wg sync.WaitGroup
			for i, cf := range g {
				wg.Add(1)
				go func(i int, cf *CodeFlow) {
					defer wg.Done()
					errs[i] = cf.SetBufferGate(opts.Hook, true)
				}(i, cf)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					// Roll gates back before failing.
					for _, cf := range g {
						cf.SetBufferGate(opts.Hook, false)
					}
					return fmt.Errorf("core: broadcast gate raise: %w", err)
				}
			}
			gateStart = time.Now()
			timeout := opts.DrainTimeout
			if timeout == 0 {
				timeout = 2 * time.Second
			}
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			if err := g.drainInflight(ctx, opts.Hook); err != nil {
				for _, cf := range g {
					cf.SetBufferGate(opts.Hook, false)
				}
				return fmt.Errorf("core: broadcast drain: %w", err)
			}
			return nil
		},
		AfterPublish: func() {
			if opts.BBU {
				for _, cf := range g {
					cf.SetBufferGate(opts.Hook, false)
				}
				rep.GateHeld = time.Since(gateStart)
			}
		},
	})
	if err != nil {
		return rep, fmt.Errorf("core: broadcast: %w", err)
	}
	if !res.Published {
		// Atomic abort: a stage (or the barrier) failed; no node changed.
		if ferr := res.FirstErr(); ferr != nil {
			return rep, fmt.Errorf("core: broadcast aborted: %w", ferr)
		}
		return rep, fmt.Errorf("core: broadcast aborted")
	}
	rep.Prepare = prepareEnd.Sub(start)
	rep.Commit = time.Since(prepareEnd)
	rep.Total = time.Since(start)
	var commitErr error
	for i, o := range res.Outcomes {
		rep.Versions = append(rep.Versions, o.Version)
		if o.Err != nil && commitErr == nil {
			commitErr = fmt.Errorf("core: broadcast commit on node %d: %w", i, o.Err)
		}
	}
	return rep, commitErr
}

// drainInflight polls every node's in-flight counter until all are zero.
// Nodes drain in parallel under one ctx — the gate-held window tracks the
// slowest node, not the sum of a sequential sweep — and reads issue on the
// context-aware verb path so the drain deadline cancels an in-flight poll
// instead of waiting out its verb timeout.
func (g Group) drainInflight(ctx context.Context, hook string) error {
	errs := make([]error, len(g))
	var wg sync.WaitGroup
	for i, cf := range g {
		hookAddr, err := cf.HookAddr(hook)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(i int, cf *CodeFlow, hookAddr uint64) {
			defer wg.Done()
			rem := cf.remote(ctx)
			for {
				inflight, err := rem.ReadMem(hookAddr+node.HookOffInflight, 8)
				if err != nil {
					errs[i] = err
					return
				}
				if inflight == 0 {
					return
				}
				select {
				case <-ctx.Done():
					errs[i] = fmt.Errorf("%d requests still in flight on node %#x: %w", inflight, cf.NodeID, ctx.Err())
					return
				case <-time.After(5 * time.Microsecond):
				}
			}
		}(i, cf, hookAddr)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
