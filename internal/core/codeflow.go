package core

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"rdx/internal/ebpf"
	"rdx/internal/ebpf/maps"
	"rdx/internal/ext"
	"rdx/internal/native"
	"rdx/internal/node"
	"rdx/internal/rdma"
	"rdx/internal/telemetry"
	"rdx/internal/wasm"
)

// CodeFlow is the per-node handle of Table 1: a bound connection to one
// data-plane node carrying everything needed to manage its extensions
// remotely — the QP, the MR table, the parsed GOT snapshot, and the node's
// architecture.
type CodeFlow struct {
	cp     *ControlPlane
	qp     rdma.Verbs
	Remote *RemoteMemory
	NodeID uint64 // node identity hash from the control block
	Arch   native.Arch

	got map[string]uint64

	mu         sync.Mutex
	role       Role
	history    map[string][]Deployed // hook → past deployments (rollback stack)
	codeHashes map[uint64]string     // blob addr → SHA-256 of published code
	// resident caches deployed blob addresses by extension digest: a
	// repeat deployment of code already resident on the node reduces to a
	// commit-only transaction (the paper's repeated-deploy fast path and
	// the mechanism behind µs-scale rollback/hot-patching).
	resident map[string]residentBlob
	// slots double-buffers blobs per hook for delta injection (slots.go);
	// dispatch shadows each hook's currently dispatched blob so a standby
	// is never delta-overwritten while live on another hook.
	slots    map[string]*hookSlots
	dispatch map[string]uint64
	// wrapEpoch counts code-ring wraps (allocCode). A stage records the
	// epoch when it claims or allocates blob space and re-checks it before
	// trusting the address again: a wrap in between means fresh
	// allocations may already overlap that range, so the write must not be
	// trusted and the publish must not dispatch it.
	wrapEpoch uint64

	// pubMu serializes publish transactions on this node: the dispatch CAS
	// and the shadow bookkeeping (slots/dispatch/version map) must land in
	// the same order, or a concurrent publish pair could leave the shadow
	// believing a blob is dead while the node still dispatches it — and a
	// later delta would overwrite live code.
	pubMu sync.Mutex
}

type residentBlob struct {
	blob uint64
	kind uint8
}

// Deployed records one published extension version on a hook.
type Deployed struct {
	Blob    uint64
	Version uint64
	Name    string
	Digest  string // content digest of the extension IR, "" when unknown
	// Reclaimed marks a version whose blob space was reclaimed — claimed
	// as a delta-staging target, or invalidated by a code-ring wrap. Its
	// bytes are gone from the node, so the entry can no longer be
	// re-dispatched; Rollback refuses it with a cause.
	Reclaimed bool
}

// CreateCodeFlow is rdx_create_codeflow: bind a handle to a remote node.
// It dials nothing itself — the caller supplies a connected transport (an
// in-process fabric pipe or a TCP connection to rdxd) — then performs the
// metadata exchange: MR discovery, control-block sanity check, and GOT
// snapshot (§3.3's "expose this global context to the RDX control plane").
func (cp *ControlPlane) CreateCodeFlow(conn net.Conn) (*CodeFlow, error) {
	return cp.CreateCodeFlowQP(rdma.NewQP(conn))
}

// CreateCodeFlowQP binds a handle over an already-built verb issuer — a raw
// *rdma.QP, or an rdma.ReconnQP for fault-tolerant deployments that survive
// transport failures mid-rollout. On error the issuer is closed.
func (cp *ControlPlane) CreateCodeFlowQP(qp rdma.Verbs) (*CodeFlow, error) {
	mrs, err := qp.QueryMRs()
	if err != nil {
		qp.Close()
		return nil, fmt.Errorf("core: MR discovery: %w", err)
	}
	remote := NewRemoteMemory(qp, mrs)

	magicArch, err := remote.ReadMem(node.CtrlBase+node.CtrlOffMagic, 8)
	if err != nil {
		qp.Close()
		return nil, fmt.Errorf("core: control block read: %w", err)
	}
	if uint32(magicArch) != node.CtrlMagic {
		qp.Close()
		return nil, fmt.Errorf("core: target is not an initialized RDX node (magic %#x)", uint32(magicArch))
	}
	arch := native.Arch(magicArch >> 32)
	nodeHash, _ := remote.ReadMem(node.CtrlBase+node.CtrlOffNodeHash, 8)

	// Wire the issuer into the control plane's registry and tracer, labeled
	// with the node's identity. Both QP and ReconnQP implement this; the
	// instruments are registry-owned and shared across QP generations, so
	// reconnects never reset or double-count.
	if ins, ok := qp.(interface {
		SetInstruments(*rdma.WireMetrics, *telemetry.TraceRecorder, string)
	}); ok {
		ins.SetInstruments(cp.wire, cp.Tracer, fmt.Sprintf("%#x", nodeHash))
	}

	gotRaw, err := remote.ReadBytes(node.GOTBase, node.GOTSize)
	if err != nil {
		qp.Close()
		return nil, fmt.Errorf("core: GOT read: %w", err)
	}
	got, err := node.ParseGOT(gotRaw)
	if err != nil {
		qp.Close()
		return nil, fmt.Errorf("core: GOT parse: %w", err)
	}

	return &CodeFlow{
		cp:         cp,
		qp:         qp,
		Remote:     remote,
		NodeID:     nodeHash,
		Arch:       arch,
		got:        got,
		history:    map[string][]Deployed{},
		resident:   map[string]residentBlob{},
		codeHashes: map[uint64]string{},
		slots:      map[string]*hookSlots{},
		dispatch:   map[string]uint64{},
	}, nil
}

// Close releases the handle's QP.
func (cf *CodeFlow) Close() error { return cf.qp.Close() }

// remote returns the handle's remote memory bound to ctx, so a whole
// control-plane sequence (staging, publication) issues its verbs under one
// deadline and trace ID.
func (cf *CodeFlow) remote(ctx context.Context) *RemoteMemory {
	return cf.Remote.WithContext(ctx)
}

// GOT returns the snapshot of the node's symbol table.
func (cf *CodeFlow) GOT() map[string]uint64 {
	out := make(map[string]uint64, len(cf.got))
	for k, v := range cf.got {
		out[k] = v
	}
	return out
}

// HookAddr resolves a hook name through the GOT snapshot.
func (cf *CodeFlow) HookAddr(hook string) (uint64, error) {
	a, ok := cf.got["hook:"+hook]
	if !ok {
		return 0, fmt.Errorf("core: node exposes no hook %q", hook)
	}
	return a, nil
}

// NextVersion allocates a cluster-unique-per-node version number with a
// remote FETCH_ADD on the node's epoch counter.
func (cf *CodeFlow) NextVersion() (uint64, error) { return cf.nextVersion(cf.Remote) }

func (cf *CodeFlow) nextVersion(rem *RemoteMemory) (uint64, error) {
	prev, err := rem.FetchAddMem(node.CtrlBase+node.CtrlOffEpoch, 1)
	if err != nil {
		return 0, err
	}
	return prev + 1, nil
}

// ErrRingWrapped reports that the code ring wrapped between a stage's
// allocation (or standby claim) and the moment the blob address was about
// to be trusted — written into or dispatched. Post-wrap allocations may
// overlap the old range, so the stage must be re-driven from a fresh
// allocation; the error is classified retryable (Retryable) so the
// scheduler does exactly that.
var ErrRingWrapped = errors.New("core: code ring wrapped during staging")

// wrappedSince reports whether the code ring wrapped after epoch was
// observed — i.e. whether blob addresses reserved back then may since have
// been handed out again.
func (cf *CodeFlow) wrappedSince(epoch uint64) bool {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	return cf.wrapEpoch != epoch
}

// AllocCode reserves code-region space with a remote FETCH_ADD. Like the
// local allocator, the region is a ring: exhaustion wraps the bump pointer
// back to the base (remote CAS), reclaiming the oldest dead blobs.
func (cf *CodeFlow) AllocCode(size int) (uint64, error) {
	addr, _, err := cf.allocCode(cf.Remote, size)
	return addr, err
}

// allocCode returns the reserved address plus the wrap epoch sampled
// before the reservation: if cf.wrapEpoch still equals it later, no wrap
// has reclaimed the address in between. Sampling before the FETCH_ADD is
// deliberately conservative — a wrap racing the reservation shows up as an
// epoch change even when the address is actually post-wrap and fine,
// costing at worst a spurious retry.
func (cf *CodeFlow) allocCode(rem *RemoteMemory, size int) (uint64, uint64, error) {
	sz := uint64((size + 7) &^ 7)
	if sz > node.CodeSize/2 {
		return 0, 0, fmt.Errorf("core: blob of %d bytes exceeds half the code region", size)
	}
	for {
		cf.mu.Lock()
		epoch := cf.wrapEpoch
		cf.mu.Unlock()
		prev, err := rem.FetchAddMem(node.CtrlBase+node.CtrlOffCodeBrk, sz)
		if err != nil {
			return 0, 0, err
		}
		if prev+sz <= node.CodeBase+node.CodeSize {
			return prev, epoch, nil
		}
		if _, _, err := rem.CompareAndSwapMem(node.CtrlBase+node.CtrlOffCodeBrk, prev+sz, node.CodeBase); err != nil {
			return 0, 0, err
		}
		// The wrap may reclaim space under previously deployed blobs:
		// forget them so the redeploy fast path never flips a hook to
		// potentially overwritten code, drop the slot shadows so delta
		// staging never diffs against a possibly-reclaimed standby,
		// tombstone history so rollback never re-dispatches a reclaimed
		// address, and bump the epoch so in-flight stages that claimed or
		// allocated before the wrap fail instead of publishing into the
		// reclaimed range.
		cf.mu.Lock()
		cf.resident = map[string]residentBlob{}
		cf.slots = map[string]*hookSlots{}
		for _, hist := range cf.history {
			for i := range hist {
				hist[i].Reclaimed = true
			}
		}
		cf.wrapEpoch++
		wrapped := cf.wrapEpoch
		cf.mu.Unlock()
		if j := cf.cp.journal(); j != nil {
			j.JournalReclaim(cf.NodeKey(), wrapped)
		}
	}
}

// AllocScratch reserves XState scratchpad space with a remote FETCH_ADD.
func (cf *CodeFlow) AllocScratch(size int) (uint64, error) {
	return cf.allocScratch(cf.Remote, size)
}

func (cf *CodeFlow) allocScratch(rem *RemoteMemory, size int) (uint64, error) {
	sz := (uint64(size) + 63) &^ 63
	prev, err := rem.FetchAddMem(node.CtrlBase+node.CtrlOffScratchBrk, sz)
	if err != nil {
		return 0, err
	}
	if prev+sz > node.ScratchBase+node.ScratchSize {
		return 0, fmt.Errorf("core: remote scratchpad exhausted")
	}
	return prev, nil
}

// ValidateCode / JITCompileCode are re-exported on the handle for API
// parity with Table 1 (they run on the control plane, bound to nothing).

// ValidateCode is rdx_validate_code.
func (cf *CodeFlow) ValidateCode(e *ext.Extension) (ext.Info, error) {
	return cf.cp.ValidateCode(e)
}

// JITCompileCode is rdx_JIT_compile_code for this node's architecture.
func (cf *CodeFlow) JITCompileCode(e *ext.Extension) (*native.Binary, error) {
	return cf.cp.JITCompileCode(e, cf.Arch)
}

// LinkCode is rdx_link_code: rewrite the binary's relocation sites with
// addresses from this node's GOT snapshot plus deployment-specific symbols
// (map handles, wasm regions).
func (cf *CodeFlow) LinkCode(bin *native.Binary, extra map[string]uint64) error {
	return native.Link(bin, func(kind native.RelocKind, sym string) (uint64, bool) {
		if a, ok := extra[sym]; ok {
			return a, true
		}
		a, ok := cf.got[sym]
		return a, ok
	})
}

// XState is a deployed remote state instance (§3.4).
type XState struct {
	Spec ebpfMapSpec
	Addr uint64
	View *maps.View // operates over RDMA through the CodeFlow's RemoteMemory
}

type ebpfMapSpec = ebpf.MapSpec

// DeployXState is rdx_deploy_xstate: allocate a chunk from the remote
// scratchpad, initialize the map header and slots remotely, and index it in
// the Meta-XState array — all with one-sided verbs.
func (cf *CodeFlow) DeployXState(spec ebpfMapSpec) (*XState, error) {
	return cf.deployXState(cf.Remote, spec)
}

func (cf *CodeFlow) deployXState(rem *RemoteMemory, spec ebpfMapSpec) (*XState, error) {
	size := maps.Size(spec)
	addr, err := cf.allocScratch(rem, int(size))
	if err != nil {
		return nil, err
	}
	view, err := maps.Create(rem, addr, spec)
	if err != nil {
		return nil, err
	}
	// Publish in the Meta-XState index: FETCH_ADD the count, WRITE the
	// entry, refresh the control-block mirror.
	idx, err := rem.FetchAddMem(node.MetaBase, 1)
	if err != nil {
		return nil, err
	}
	if idx >= node.MetaEntries {
		return nil, fmt.Errorf("core: remote Meta-XState full")
	}
	if err := rem.WriteMem(node.MetaBase+8+idx*8, 8, addr); err != nil {
		return nil, err
	}
	rem.WriteMem(node.CtrlBase+node.CtrlOffMetaCount, 8, idx+1)
	return &XState{Spec: spec, Addr: addr, View: view}, nil
}

// ListXStates reads the remote Meta-XState index (the filter inspector's
// introspection path).
func (cf *CodeFlow) ListXStates() ([]uint64, error) {
	count, err := cf.Remote.ReadMem(node.MetaBase, 8)
	if err != nil {
		return nil, err
	}
	if count > node.MetaEntries {
		count = node.MetaEntries
	}
	out := make([]uint64, 0, count)
	for i := uint64(0); i < count; i++ {
		a, err := cf.Remote.ReadMem(node.MetaBase+8+i*8, 8)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// AttachXState opens a remote view on an already-deployed XState.
func (cf *CodeFlow) AttachXState(addr uint64) (*maps.View, error) {
	return maps.Attach(cf.Remote, addr)
}

// DeployParams carries per-deployment blob metadata.
type DeployParams struct {
	Kind     uint8
	MemBase  uint64
	GlobBase uint64
	// Digest is the extension IR's content digest; when set, the publish
	// is recorded in the resident index and the control plane's
	// deployed-version map.
	Digest string
}

// DeployProg is rdx_deploy_prog: push a fully linked binary into the node's
// code region and atomically publish it on the hook. The publish step is an
// rdx_tx: the blob (header + code) is written in full before a single CAS
// flips the dispatch pointer, so concurrent executions observe the old or
// the new extension, never a torn mix.
func (cf *CodeFlow) DeployProg(bin *native.Binary, hook string, p DeployParams) (Deployed, error) {
	if !bin.Linked() {
		return Deployed{}, fmt.Errorf("core: binary %q has unresolved relocations", bin.Name)
	}
	hookAddr, err := cf.HookAddr(hook)
	if err != nil {
		return Deployed{}, err
	}
	// A concurrent stage can wrap the code ring between this deploy's
	// allocation and its publish, reclaiming the blob's range; the whole
	// sequence is re-driveable, so retry from a fresh (post-wrap)
	// allocation rather than surfacing the transient.
	var d Deployed
	for attempt := 0; ; attempt++ {
		d, err = cf.deployProgOnce(bin, hook, hookAddr, p)
		if err == nil || !errors.Is(err, ErrRingWrapped) || attempt >= 2 {
			return d, err
		}
	}
}

func (cf *CodeFlow) deployProgOnce(bin *native.Binary, hook string, hookAddr uint64, p DeployParams) (Deployed, error) {
	version, err := cf.NextVersion()
	if err != nil {
		return Deployed{}, err
	}
	blob, epoch, err := cf.allocCode(cf.Remote, node.BlobHdrSize+len(bin.Code))
	if err != nil {
		return Deployed{}, err
	}
	hdr := node.EncodeBlobHeader(bin.Arch, node.BlobParams{
		Kind: p.Kind, Version: version, MemBase: p.MemBase, GlobBase: p.GlobBase,
	}, len(bin.Code))
	payload := append(hdr, bin.Code...)
	if err := cf.Remote.WriteBytes(blob, payload); err != nil {
		return Deployed{}, err
	}

	cf.pubMu.Lock()
	defer cf.pubMu.Unlock()
	// The blob write was a remote round trip: if the ring wrapped under
	// it, the address may already belong to a fresh allocation, and the
	// CAS below would dispatch someone else's bytes.
	if cf.wrappedSince(epoch) {
		return Deployed{}, fmt.Errorf("core: deploy of %q on %q: %w", bin.Name, hook, ErrRingWrapped)
	}
	// Leadership fence: a deposed controller must not flip the dispatch
	// pointer, no matter how far the stage got (see FenceCheck).
	if err := cf.cp.checkFence(); err != nil {
		return Deployed{}, fmt.Errorf("core: deploy of %q on %q: %w", bin.Name, hook, err)
	}
	if err := cf.Tx(
		[]TxWrite{
			{Addr: hookAddr + node.HookOffStaged, Qword: blob},
			{Addr: hookAddr + node.HookOffVersion, Qword: version},
		},
		QwordSwap{Addr: hookAddr + node.HookOffDispatch, New: blob},
	); err != nil {
		return Deployed{}, err
	}
	// Expose the flipped pointer to a possibly-stale CPU cache.
	cf.CCEvent(hookAddr + node.HookOffDispatch)

	codeSum := sha256.Sum256(bin.Code)
	cf.mu.Lock()
	cf.codeHashes[blob] = hex.EncodeToString(codeSum[:])
	cf.mu.Unlock()

	d := Deployed{Blob: blob, Version: version, Name: bin.Name, Digest: p.Digest}
	cf.installPublished(hook, &slotImage{
		blob:   blob,
		cap:    (uint64(len(payload)) + 7) &^ 7,
		image:  payload,
		digest: p.Digest,
		kind:   p.Kind,
	}, d)
	return d, nil
}

// TxWrite is one staged write of a remote transaction.
type TxWrite struct {
	Addr  uint64
	Qword uint64
	Bytes []byte // used instead of Qword when non-nil
}

// QwordSwap is the transaction's commit point: a CAS that publishes the
// staged state. Old of zero means "swap from whatever is there" (the CAS
// retries with the observed value).
type QwordSwap struct {
	Addr    uint64
	Old     uint64
	New     uint64
	Stealth bool // skip the swap (write-only transactions)
}

// Tx is rdx_tx: apply all staged writes, then commit with a single atomic
// qword swap. Readers polling the swapped word never observe the staged
// writes before the commit lands.
func (cf *CodeFlow) Tx(writes []TxWrite, swap QwordSwap) error {
	return cf.txOn(cf.Remote, writes, swap)
}

func (cf *CodeFlow) txOn(rem *RemoteMemory, writes []TxWrite, swap QwordSwap) error {
	for _, w := range writes {
		if w.Bytes != nil {
			if err := rem.WriteBytes(w.Addr, w.Bytes); err != nil {
				return err
			}
			continue
		}
		if err := rem.WriteMem(w.Addr, 8, w.Qword); err != nil {
			return err
		}
	}
	if swap.Stealth {
		return nil
	}
	if swap.Old != 0 {
		prev, ok, err := rem.CompareAndSwapMem(swap.Addr, swap.Old, swap.New)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("core: tx commit conflict: expected %#x, found %#x", swap.Old, prev)
		}
		return nil
	}
	for {
		cur, err := rem.ReadMem(swap.Addr, 8)
		if err != nil {
			return err
		}
		if _, ok, err := rem.CompareAndSwapMem(swap.Addr, cur, swap.New); err != nil {
			return err
		} else if ok {
			return nil
		}
	}
}

// CCEvent is rdx_cc_event: flush the data plane's CPU cacheline covering
// addr by firing the node's WRITE_WITH_IMM doorbell. The write payload is
// empty — only the immediate (and the RNIC-side handler it triggers)
// matters.
func (cf *CodeFlow) CCEvent(addr uint64) error {
	return cf.ccEventOn(cf.Remote, addr)
}

func (cf *CodeFlow) ccEventOn(rem *RemoteMemory, addr uint64) error {
	return rem.WriteImm(addr, node.DoorbellCCInvalidate, nil)
}

// LockToken identifies a mutual-exclusion acquisition.
type LockToken struct {
	addr  uint64
	token uint64
}

// MutualExcl is rdx_mutual_excl: acquire the hook's sandbox-level lock with
// remote CAS, spinning with bounded retries. The returned token must be
// passed to Unlock.
func (cf *CodeFlow) MutualExcl(hook string, maxSpins int) (LockToken, error) {
	hookAddr, err := cf.HookAddr(hook)
	if err != nil {
		return LockToken{}, err
	}
	lockAddr := hookAddr + node.HookOffLock
	token := uint64(time.Now().UnixNano()) | 1 // nonzero
	if maxSpins <= 0 {
		maxSpins = 1 << 20
	}
	for i := 0; i < maxSpins; i++ {
		_, ok, err := cf.Remote.CompareAndSwapMem(lockAddr, 0, token)
		if err != nil {
			return LockToken{}, err
		}
		if ok {
			return LockToken{addr: lockAddr, token: token}, nil
		}
	}
	return LockToken{}, fmt.Errorf("core: lock on %q contended beyond %d spins", hook, maxSpins)
}

// Unlock releases a lock taken by MutualExcl, verifying ownership.
func (cf *CodeFlow) Unlock(t LockToken) error {
	prev, ok, err := cf.Remote.CompareAndSwapMem(t.addr, t.token, 0)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("core: unlock of lock owned by %#x", prev)
	}
	return nil
}

// SetBufferGate raises or clears the hook's BBU buffering gate.
func (cf *CodeFlow) SetBufferGate(hook string, on bool) error {
	hookAddr, err := cf.HookAddr(hook)
	if err != nil {
		return err
	}
	v := uint64(0)
	if on {
		v = 1
	}
	return cf.Remote.WriteMem(hookAddr+node.HookOffBuffer, 8, v)
}

// HookStats reads a hook's data-plane counters remotely (the paper's
// "filter inspector").
func (cf *CodeFlow) HookStats(hook string) (execs, drops, version uint64, err error) {
	hookAddr, err := cf.HookAddr(hook)
	if err != nil {
		return 0, 0, 0, err
	}
	if execs, err = cf.Remote.ReadMem(hookAddr+node.HookOffExecs, 8); err != nil {
		return
	}
	if drops, err = cf.Remote.ReadMem(hookAddr+node.HookOffDrops, 8); err != nil {
		return
	}
	version, err = cf.Remote.ReadMem(hookAddr+node.HookOffVersion, 8)
	return
}

// History returns the deployment stack for a hook.
func (cf *CodeFlow) History(hook string) []Deployed {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	return append([]Deployed(nil), cf.history[hook]...)
}

// Rollback is the §4 case study: revert the hook to its previous deployed
// version with a commit-only transaction — no validation, compilation, or
// code movement, just a pointer flip in microseconds.
func (cf *CodeFlow) Rollback(hook string) (Deployed, error) {
	hookAddr, err := cf.HookAddr(hook)
	if err != nil {
		return Deployed{}, err
	}
	// pubMu is held from the history snapshot through the dispatch CAS:
	// claimStandby also takes pubMu, so the previous version's blob cannot
	// be claimed — and delta-overwritten — between this read and the
	// pointer flip.
	cf.pubMu.Lock()
	defer cf.pubMu.Unlock()
	// Check the fence before touching the rollback stack: a deposed
	// controller must neither flip the pointer nor mutate its bookkeeping.
	if err := cf.cp.checkFence(); err != nil {
		return Deployed{}, fmt.Errorf("core: rollback of %q: %w", hook, err)
	}
	cf.mu.Lock()
	h := cf.history[hook]
	if len(h) < 2 {
		cf.mu.Unlock()
		return Deployed{}, fmt.Errorf("core: no prior version to roll back to on %q", hook)
	}
	prev := h[len(h)-2]
	if prev.Reclaimed {
		// The blob's bytes are gone (claimed as a delta target, or the
		// ring wrapped past it): flipping the pointer back would dispatch
		// whatever overwrote them. Leave history intact and tell the
		// caller why; recovering the old version needs a full redeploy.
		cf.mu.Unlock()
		return Deployed{}, fmt.Errorf("core: cannot roll back %q to version %d (%s): its blob was reclaimed for delta staging; redeploy it instead",
			hook, prev.Version, prev.Name)
	}
	cf.history[hook] = h[:len(h)-1]
	cf.mu.Unlock()

	if err := cf.Tx(
		[]TxWrite{{Addr: hookAddr + node.HookOffVersion, Qword: prev.Version}},
		QwordSwap{Addr: hookAddr + node.HookOffDispatch, New: prev.Blob},
	); err != nil {
		return Deployed{}, err
	}
	cf.CCEvent(hookAddr + node.HookOffDispatch)
	cf.mu.Lock()
	cf.switchDispatch(hook, prev.Blob)
	cf.mu.Unlock()
	// Rolling back intentionally regresses the version: force the
	// deployed-version map past its last-writer-wins guard.
	cf.cp.recordDeployed(cf.NodeKey(), hook,
		DeployedVersion{Digest: prev.Digest, Version: prev.Version, Blob: prev.Blob}, true)
	if j := cf.cp.journal(); j != nil {
		j.JournalRollback(cf.NodeKey(), hook, prev)
	}
	return prev, nil
}

// InjectExtension runs the complete RDX pipeline for one extension on one
// hook, returning per-stage timings. On a registry hit, Validate and
// Compile cost nothing; if the identical code is already resident in the
// node's code region (repeat deployment), the whole operation reduces to a
// commit-only transaction — a version bump plus one CAS — which is the
// microsecond path of Fig 4.
func (cf *CodeFlow) InjectExtension(e *ext.Extension, hook string) (Report, error) {
	var rep Report
	start := time.Now()

	if err := cf.authorize(e, hook); err != nil {
		return rep, err
	}
	cf.cp.audit(cf.NodeID, "inject", hook, e.Name())

	digest := e.Digest()
	if !cf.cp.DisableCache {
		if handled, err := cf.tryResidentInject(e, hook, digest, start, &rep); handled {
			return rep, err
		}
	}

	cp := cf.cp
	rep.CacheHit = cp.compiledHit(digest, cf.Arch)

	t0 := time.Now()
	if _, err := cf.ValidateCode(e); err != nil {
		return rep, err
	}
	rep.Validate = time.Since(t0)

	t1 := time.Now()
	bin, err := cf.JITCompileCode(e)
	if err != nil {
		return rep, err
	}
	rep.Compile = time.Since(t1)

	// XState + wasm region setup (remote allocations).
	t2 := time.Now()
	extra := map[string]uint64{}
	params := DeployParams{Kind: uint8(e.Kind), Digest: digest}
	if err := cf.setupState(cf.Remote, e, extra, &params); err != nil {
		return rep, err
	}
	rep.Alloc = time.Since(t2)

	t3 := time.Now()
	if err := cf.LinkCode(bin, extra); err != nil {
		return rep, err
	}
	rep.Link = time.Since(t3)

	t4 := time.Now()
	d, err := cf.DeployProg(bin, hook, params)
	if err != nil {
		return rep, err
	}
	rep.Write = time.Since(t4) // includes the commit CAS
	rep.Commit = 0
	rep.Version = d.Version
	rep.Blob = d.Blob
	rep.Total = time.Since(start)
	// DeployProg's installPublished recorded the resident index entry and
	// the deployed-version map via params.Digest.
	return rep, nil
}

// tryResidentInject attempts the repeat-deployment fast path: if the
// extension's digest is already resident in the node's code region, the
// inject reduces to a commit-only transaction. The resident lookup and the
// dispatch CAS happen under ONE pubMu hold: claimStandby also takes pubMu
// and purges the resident index before releasing it, so a blob observed
// here cannot be claimed — and delta-overwritten — before the CAS
// dispatches it. Returns handled=false when the digest is not resident (or
// a concurrent ring wrap invalidated the index mid-path) and the caller
// must run the full pipeline.
func (cf *CodeFlow) tryResidentInject(e *ext.Extension, hook string, digest string, start time.Time, rep *Report) (handled bool, err error) {
	cf.pubMu.Lock()
	defer cf.pubMu.Unlock()
	cf.mu.Lock()
	res, isResident := cf.resident[digest]
	epoch := cf.wrapEpoch
	cf.mu.Unlock()
	if !isResident {
		return false, nil
	}
	hookAddr, err := cf.HookAddr(hook)
	if err != nil {
		return true, err
	}
	version, err := cf.NextVersion()
	if err != nil {
		return true, err
	}
	// The version FETCH_ADD was a remote round trip; a concurrent stage
	// may have wrapped the code ring under it, reclaiming res.blob. The
	// wrap cleared the resident index, so fall back to the full pipeline.
	if cf.wrappedSince(epoch) {
		return false, nil
	}
	// Commit-only path or not, the fast-path CAS is still a dispatch flip:
	// a deposed controller fails here instead of republishing stale code.
	if err := cf.cp.checkFence(); err != nil {
		return true, fmt.Errorf("core: inject of %q on %q: %w", e.Name(), hook, err)
	}
	t0 := time.Now()
	if err := cf.Tx(
		[]TxWrite{{Addr: hookAddr + node.HookOffVersion, Qword: version}},
		QwordSwap{Addr: hookAddr + node.HookOffDispatch, New: res.blob},
	); err != nil {
		return true, err
	}
	cf.CCEvent(hookAddr + node.HookOffDispatch)
	rep.Commit = time.Since(t0)
	rep.CacheHit = true
	rep.Version = version
	rep.Blob = res.blob
	rep.Total = time.Since(start)
	cf.mu.Lock()
	cf.history[hook] = append(cf.history[hook], Deployed{Blob: res.blob, Version: version, Name: e.Name(), Digest: digest})
	cf.switchDispatch(hook, res.blob)
	cf.mu.Unlock()
	cf.cp.recordDeployed(cf.NodeKey(), hook,
		DeployedVersion{Digest: digest, Version: version, Blob: res.blob}, false)
	if j := cf.cp.journal(); j != nil {
		j.JournalPublish(cf.NodeKey(), hook,
			Deployed{Blob: res.blob, Version: version, Name: e.Name(), Digest: digest})
	}
	return true, nil
}

// setupState provisions remote XState maps and wasm regions for one
// deployment and records link symbols. All verbs issue on rem, so callers
// holding a ctx-bound view get tracing and cancellation here too.
func (cf *CodeFlow) setupState(rem *RemoteMemory, e *ext.Extension, extra map[string]uint64, params *DeployParams) error {
	for _, spec := range e.MapSpecs() {
		xs, err := cf.deployXState(rem, spec)
		if err != nil {
			return err
		}
		extra["map:"+spec.Name] = xs.Addr
	}
	memBytes, globals := e.WasmRegions()
	if memBytes > 0 {
		addr, err := cf.allocScratch(rem, memBytes)
		if err != nil {
			return err
		}
		// Zero the first page region lazily: scratchpad starts zeroed and
		// the bump allocator never reuses, so no remote memset is needed.
		extra[wasm.SymMemory] = addr
		params.MemBase = addr
	}
	if globals > 0 {
		addr, err := cf.allocScratch(rem, 8*globals)
		if err != nil {
			return err
		}
		inits := e.WasmGlobalInits()
		buf := make([]byte, 8*len(inits))
		for i, v := range inits {
			binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
		}
		if err := rem.WriteBytes(addr, buf); err != nil {
			return err
		}
		extra[wasm.SymGlobals] = addr
		params.GlobBase = addr
	}
	return nil
}
