package core

// slotImage is the control plane's shadow of one blob in a node's code
// ring: its address, allocated capacity, the exact bytes last written
// there, and the digest/kind they belong to. image == nil means the
// contents are unknown (a write into the slot failed partway), which
// naturally disables delta reuse: a delta computed against a nil base
// marks every page dirty and falls back to a full rewrite.
type slotImage struct {
	blob   uint64
	cap    uint64 // allocated bytes, 8-aligned
	image  []byte // bytes on the node, nil if torn/unknown
	digest string
	kind   uint8
}

// hookSlots is per-hook double buffering: active is the blob the hook's
// dispatch pointer references, standby is the previous active — dead code
// with known contents, the ideal delta target. A delta never writes into
// the active blob, so a connection killed mid-delta can only tear the
// standby: the dispatched version stays byte-exact and the next successful
// stage rewrites the standby in full.
type hookSlots struct {
	active  *slotImage
	standby *slotImage
}

// claimStandby removes and returns hook's standby slot for reuse as a
// delta (or full-rewrite) target, if one exists with enough capacity and
// no hook on this node currently dispatches its blob — a blob published on
// hook A can also be live on hook B via the resident fast path, and
// overwriting it there would tear B. Claiming purges every local record
// (resident entries, code hashes) that could republish the blob as its old
// contents, and tombstones its history entries so rollback refuses them
// with a cause instead of re-dispatching overwritten bytes. Returns nil
// when no reusable slot exists; the caller then allocates fresh ring
// space. The second return is the wrap epoch observed at claim time: if
// cf.wrapEpoch has moved past it by publish time, the claimed address
// range may have been reclaimed by a post-wrap allocation (see
// wrappedSince).
func (cf *CodeFlow) claimStandby(hook string, need int) (*slotImage, uint64) {
	if cf.cp.DisableDelta {
		return nil, 0
	}
	// Lock order is pubMu then mu, matching every publish path. Holding
	// pubMu makes the claim atomic with respect to the commit-only
	// dispatches (resident fast path, rollback): either they re-read their
	// target blob under pubMu after this claim purged it — and miss — or
	// they CAS first and the dispatch check below sees the blob live and
	// skips it. Without this, a dispatcher could snapshot the blob's
	// address, lose the race to a claim, and flip the hook onto code the
	// delta scatter is concurrently rewriting.
	cf.pubMu.Lock()
	defer cf.pubMu.Unlock()
	cf.mu.Lock()
	defer cf.mu.Unlock()
	epoch := cf.wrapEpoch
	// A fenced (deposed) controller must not scatter-write into a standby:
	// the new leader may have re-published that blob, making it live again.
	// Returning no slot sends the stage to a fresh ring allocation — the
	// bump allocator never reuses space before a wrap, so the deposed
	// leader's writes land in memory nothing dispatches, and its publish is
	// refused by the fence check before the CAS anyway.
	if cf.cp.checkFence() != nil {
		return nil, epoch
	}
	hs := cf.slots[hook]
	if hs == nil || hs.standby == nil {
		return nil, epoch
	}
	s := hs.standby
	for _, live := range cf.dispatch {
		if live == s.blob {
			return nil, epoch // live elsewhere; leave it as standby and try later
		}
	}
	if s.cap < uint64(need) {
		// Too small for the new image: drop it so the next publish
		// installs a bigger standby.
		hs.standby = nil
		return nil, epoch
	}
	hs.standby = nil
	for dig, rb := range cf.resident {
		if rb.blob == s.blob {
			delete(cf.resident, dig)
		}
	}
	// Tombstone rather than delete: the claimed blob may sit in other
	// hooks' rollback stacks (published there via the resident fast path).
	// Keeping the entries, marked Reclaimed, preserves stack depth and
	// lets Rollback report why a version is gone instead of silently
	// skipping it or failing with "no prior version".
	reclaimed := 0
	for _, hist := range cf.history {
		for i := range hist {
			if hist[i].Blob == s.blob && !hist[i].Reclaimed {
				hist[i].Reclaimed = true
				reclaimed++
			}
		}
	}
	if reclaimed > 0 {
		cf.cp.Registry.Counter("core.history.reclaimed").Add(uint64(reclaimed))
	}
	delete(cf.codeHashes, s.blob)
	if j := cf.cp.journal(); j != nil {
		j.JournalClaim(cf.NodeKey(), s.blob)
	}
	return s, epoch
}

// installPublished records one successful publish: history, the dispatch
// shadow, slot double-buffering (the displaced active becomes the new
// standby), the resident fast-path index, and the control plane's
// deployed-version map.
func (cf *CodeFlow) installPublished(hook string, slot *slotImage, d Deployed) {
	cf.mu.Lock()
	cf.history[hook] = append(cf.history[hook], d)
	cf.dispatch[hook] = d.Blob
	if slot != nil {
		hs := cf.slots[hook]
		if hs == nil {
			hs = &hookSlots{}
			cf.slots[hook] = hs
		}
		if hs.active != nil && hs.active.blob != slot.blob {
			hs.standby = hs.active
		}
		hs.active = slot
		if d.Digest != "" {
			cf.resident[d.Digest] = residentBlob{blob: slot.blob, kind: slot.kind}
		}
	}
	cf.mu.Unlock()
	cf.cp.recordDeployed(cf.NodeKey(), hook,
		DeployedVersion{Digest: d.Digest, Version: d.Version, Blob: d.Blob}, false)
	if j := cf.cp.journal(); j != nil {
		j.JournalPublish(cf.NodeKey(), hook, d)
	}
}

// switchDispatch records a commit-only pointer flip (resident fast path,
// rollback) that re-targets hook to an already-written blob: the dispatch
// shadow moves, and if the blob is this hook's standby the buffers swap so
// the displaced active becomes delta-reusable. Caller holds cf.mu.
func (cf *CodeFlow) switchDispatch(hook string, blob uint64) {
	cf.dispatch[hook] = blob
	hs := cf.slots[hook]
	if hs == nil {
		return
	}
	if hs.active != nil && hs.active.blob == blob {
		return
	}
	if hs.standby != nil && hs.standby.blob == blob {
		hs.active, hs.standby = hs.standby, hs.active
		return
	}
	// Dispatch moved to a blob this hook's slots don't shadow (another
	// hook's blob via the resident index): the displaced active is now dead
	// code with known contents, so keep it reachable as a delta target.
	if hs.standby == nil {
		hs.standby = hs.active
	}
	hs.active = nil
}
