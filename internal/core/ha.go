package core

import (
	"errors"
	"sync"

	"rdx/internal/artifact"
	"rdx/internal/native"
	"rdx/internal/rdma"
	"rdx/internal/telemetry"
)

// ErrFenced reports that this control plane no longer holds the leadership
// lease — a standby bumped the fencing epoch — so publish and rollback
// transactions must not flip any hook pointer. Unlike ErrRingWrapped it is
// permanent for this controller instance: re-driving the operation cannot
// succeed until a new lease is acquired, so Retryable deliberately excludes
// it and the scheduler surfaces it instead of spinning.
var ErrFenced = errors.New("core: control plane fenced (leadership lease lost)")

// FenceCheck verifies that the control plane may still act as leader. It is
// consulted under pubMu immediately before every dispatch CAS (publish,
// resident fast path, rollback) and before a standby-blob claim, extending
// the wrapEpoch pattern: the check narrows the window between deposal and a
// stale pointer flip to a single in-flight verb. Implementations should
// return an error wrapping ErrFenced when the lease is lost, and fail
// closed (non-nil) when leadership cannot be confirmed.
type FenceCheck func() error

// JournalSink receives every control-plane intent and outcome as it
// happens: validations and compilations by artifact digest, stages,
// publishes, rollbacks, standby-blob claims, and ring-wrap reclamations.
// internal/controlha implements it with an append-only checksummed journal
// replicated to standbys; replaying the entries reconstructs the
// deployed-version map and per-hook rollback stacks on a fresh control
// plane. Sinks must not block on the fabric for long — they are called
// with no CodeFlow locks held, but on the publish path.
type JournalSink interface {
	JournalValidate(digest string)
	JournalCompile(digest string, arch native.Arch)
	JournalStage(node, hook, name, digest string, version, blob uint64)
	JournalPublish(node, hook string, d Deployed)
	JournalRollback(node, hook string, to Deployed)
	JournalClaim(node string, blob uint64)
	JournalReclaim(node string, wrapEpoch uint64)
	// JournalHandoff records a shard-rebalance barrier carrying the
	// departing ring epoch. Alone among the sinks it returns an error: the
	// marker gates state migration, so the implementation must confirm the
	// record is durable (replicated) — or report that this term was fenced
	// — before the rebalance proceeds.
	JournalHandoff(ringEpoch uint64) error
}

// haState carries the control plane's replication hooks. Both fields are
// nil on a standalone controller, making every check a no-op.
type haState struct {
	mu    sync.RWMutex
	fence FenceCheck
	sink  JournalSink
}

// SetFence installs (or clears, with nil) the leadership fence consulted
// before every dispatch CAS.
func (cp *ControlPlane) SetFence(f FenceCheck) {
	cp.ha.mu.Lock()
	cp.ha.fence = f
	cp.ha.mu.Unlock()
}

// SetJournal installs (or clears, with nil) the deployment journal sink.
func (cp *ControlPlane) SetJournal(j JournalSink) {
	cp.ha.mu.Lock()
	cp.ha.sink = j
	cp.ha.mu.Unlock()
}

// checkFence runs the installed fence, if any.
func (cp *ControlPlane) checkFence() error {
	cp.ha.mu.RLock()
	f := cp.ha.fence
	cp.ha.mu.RUnlock()
	if f == nil {
		return nil
	}
	return f()
}

// journal returns the installed sink, or nil.
func (cp *ControlPlane) journal() JournalSink {
	cp.ha.mu.RLock()
	defer cp.ha.mu.RUnlock()
	return cp.ha.sink
}

// Journal exposes the installed sink (nil on a standalone controller) —
// for callers that append records outside the publish path, like a
// rebalance receiver re-journaling the state it absorbed.
func (cp *ControlPlane) Journal() JournalSink { return cp.journal() }

// ErrNoJournal reports a handoff attempted on a control plane with no
// journal sink installed — there is no replicated record to migrate from.
var ErrNoJournal = errors.New("core: control plane has no journal sink")

// JournalHandoff appends the rebalance barrier through the installed sink,
// confirming durability. A control plane without a journal cannot hand its
// state off (typed ErrNoJournal).
func (cp *ControlPlane) JournalHandoff(ringEpoch uint64) error {
	j := cp.journal()
	if j == nil {
		return ErrNoJournal
	}
	return j.JournalHandoff(ringEpoch)
}

// NewControlPlaneWith creates a control plane sharing an existing artifact
// store and registry — the standby-controller constructor. Failover hands
// the leader's content-addressed cache to the successor, so re-driven jobs
// after takeover hit the same (digest, arch) artifacts and
// artifact.compile.invocations stays flat. Nil arguments fall back to
// fresh instances (NewControlPlane is NewControlPlaneWith(nil, nil)).
func NewControlPlaneWith(arts *artifact.Cache, reg *telemetry.Registry) *ControlPlane {
	return NewControlPlaneLabeled(arts, reg, "")
}

// NewControlPlaneLabeled is NewControlPlaneWith with a wire-series prefix:
// the control plane's QP instruments register as "<wirePrefix>.*" instead
// of the default "rdma.qp.*". N control-plane shards sharing one registry
// (internal/shard) each pass a distinct prefix — "rdma.qp.shard3" and so
// on — so per-shard wire traffic stays distinguishable in one snapshot.
// An empty prefix keeps the default series name.
func NewControlPlaneLabeled(arts *artifact.Cache, reg *telemetry.Registry, wirePrefix string) *ControlPlane {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	if arts == nil {
		arts = artifact.NewCache(artifact.Config{Registry: reg})
	}
	if wirePrefix == "" {
		wirePrefix = "rdma.qp"
	}
	return &ControlPlane{
		artifacts: arts,
		versions:  map[verKey]DeployedVersion{},
		Registry:  reg,
		Tracer:    telemetry.NewTraceRecorder(0),
		wire:      rdma.NewWireMetrics(reg, wirePrefix),
	}
}

// DeployedKey identifies one (node, hook) entry of the deployed-version
// map in exported form, for journal replay and failover verification.
type DeployedKey struct {
	Node string
	Hook string
}

// DeployedVersions snapshots the whole deployed-version map.
func (cp *ControlPlane) DeployedVersions() map[DeployedKey]DeployedVersion {
	cp.versMu.Lock()
	defer cp.versMu.Unlock()
	out := make(map[DeployedKey]DeployedVersion, len(cp.versions))
	for k, v := range cp.versions {
		out[DeployedKey{Node: k.node, Hook: k.hook}] = v
	}
	return out
}

// RestoreDeployed installs one deployed-version entry verbatim, bypassing
// the last-writer-wins guard: journal replay applies entries in commit
// order, so the replayed value is authoritative by construction.
func (cp *ControlPlane) RestoreDeployed(nodeKey, hook string, dv DeployedVersion) {
	cp.versMu.Lock()
	cp.versions[verKey{nodeKey, hook}] = dv
	cp.versMu.Unlock()
}

// RestoreHistory installs a replayed rollback stack on a re-attached
// CodeFlow. The stack's top (when live) also seeds the dispatch shadow and
// the resident fast-path index; the hook's slot shadow is rebuilt with
// unknown contents (nil image — the torn marker), so the first post-failover
// delta stage conservatively falls back to a full rewrite instead of
// diffing against bytes this controller never wrote.
func (cf *CodeFlow) RestoreHistory(hook string, stack []Deployed) {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	cf.history[hook] = append([]Deployed(nil), stack...)
	if len(stack) == 0 {
		return
	}
	top := stack[len(stack)-1]
	if top.Reclaimed {
		return
	}
	cf.dispatch[hook] = top.Blob
	if top.Digest != "" {
		cf.resident[top.Digest] = residentBlob{blob: top.Blob}
	}
	cf.slots[hook] = &hookSlots{active: &slotImage{
		blob:   top.Blob,
		digest: top.Digest,
	}}
}
