package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"rdx/internal/rdma"
	"rdx/internal/verbchain"
	"rdx/internal/xabi"
)

// Retryable classifies an error from a remote-memory or CodeFlow operation
// as worth re-driving: transport teardown (QP death, verb timeout, refused
// post) and lost atomic completions. RDX control-plane sequences are
// re-driveable end to end — staging writes are idempotent, a duplicated
// FETCH_ADD only burns ring space, and publish CASes re-read the slot — so
// even ErrUncertain is safe to retry at this layer. Remote status errors
// (bounds, access) are deterministic and are not retryable. A code-ring
// wrap racing a stage (ErrRingWrapped) is transient for the same reason:
// re-driving the stage allocates fresh, post-wrap ring space. ErrFenced is
// deliberately NOT retryable: a deposed controller stays deposed until a
// new lease is acquired, so re-driving the publish would only spin.
func Retryable(err error) bool {
	return rdma.IsTransportErr(err) || errors.Is(err, rdma.ErrUncertain) ||
		errors.Is(err, ErrRingWrapped)
}

// RemoteMemory adapts a verb issuer (a raw *rdma.QP or a reconnecting
// rdma.ReconnQP) plus the target's MR table to the extension ABI, so
// control-plane code (the XState map implementation in particular) operates
// on remote node memory exactly as local extensions do — every access
// becomes a one-sided verb. This is what makes rdx_deploy_xstate and the
// XState lookup/update interfaces of §3.4 work without host involvement.
type RemoteMemory struct {
	qp  rdma.Verbs
	mrs []rdma.MR // sorted by Addr

	// ctx, when non-nil, bounds every verb this view issues and carries the
	// operation's trace ID to the wire. The xabi.Memory interface has no ctx
	// parameter (extension ABI accesses are context-free by design), so the
	// binding lives on the view: WithContext returns a bound clone.
	ctx context.Context
}

// NewRemoteMemory builds a remote memory over the MR table.
func NewRemoteMemory(qp rdma.Verbs, mrs []rdma.MR) *RemoteMemory {
	sorted := append([]rdma.MR(nil), mrs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Addr < sorted[j].Addr })
	return &RemoteMemory{qp: qp, mrs: sorted}
}

// WithContext returns a view issuing every verb under ctx — cancellation,
// deadline, and trace ID included. The clone shares the QP and MR table;
// the receiver is unchanged, so concurrent users of other views are
// unaffected.
func (m *RemoteMemory) WithContext(ctx context.Context) *RemoteMemory {
	clone := *m
	clone.ctx = ctx
	return &clone
}

func (m *RemoteMemory) context() context.Context {
	if m.ctx != nil {
		return m.ctx
	}
	return context.Background()
}

// rkeyFor locates the MR covering [addr, addr+n).
func (m *RemoteMemory) rkeyFor(addr uint64, n int) (uint32, error) {
	for i := range m.mrs {
		mr := &m.mrs[i]
		if addr >= mr.Addr && addr-mr.Addr+uint64(n) <= mr.Len {
			return mr.RKey, nil
		}
	}
	return 0, fmt.Errorf("core: no MR covers [%#x,+%d)", addr, n)
}

// ReadMem implements xabi.Memory.
func (m *RemoteMemory) ReadMem(addr uint64, size int) (uint64, error) {
	rkey, err := m.rkeyFor(addr, size)
	if err != nil {
		return 0, err
	}
	b, err := m.qp.ReadCtx(m.context(), rkey, addr, size)
	if err != nil {
		return 0, err
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v, nil
}

// WriteMem implements xabi.Memory.
func (m *RemoteMemory) WriteMem(addr uint64, size int, val uint64) error {
	rkey, err := m.rkeyFor(addr, size)
	if err != nil {
		return err
	}
	b := make([]byte, size)
	for i := 0; i < size; i++ {
		b[i] = byte(val >> (8 * i))
	}
	return m.qp.WriteCtx(m.context(), rkey, addr, b)
}

// ReadBytes implements xabi.Memory.
func (m *RemoteMemory) ReadBytes(addr uint64, n int) ([]byte, error) {
	rkey, err := m.rkeyFor(addr, n)
	if err != nil {
		return nil, err
	}
	return m.qp.ReadCtx(m.context(), rkey, addr, n)
}

// ReadBytesView is ReadBytes without the heap copy: when the underlying
// issuer supports zero-copy completions (rdma.FrameReader — a raw QP or a
// ReconnQP), the returned view aliases the pooled response frame and the
// caller must Release it; otherwise it falls back to a copying read wrapped
// in a no-op-release view. Bulk consumers (journal fetch, blob reads) use
// this to keep large READ payloads off the heap.
func (m *RemoteMemory) ReadBytesView(addr uint64, n int) (rdma.FrameView, error) {
	rkey, err := m.rkeyFor(addr, n)
	if err != nil {
		return rdma.FrameView{}, err
	}
	if fr, ok := m.qp.(rdma.FrameReader); ok {
		return fr.ReadFrameCtx(m.context(), rkey, addr, n)
	}
	b, err := m.qp.ReadCtx(m.context(), rkey, addr, n)
	if err != nil {
		return rdma.FrameView{}, err
	}
	return rdma.ViewOf(b), nil
}

// ChainTrigger fires the pre-posted verb chain resident at addr (see
// internal/verbchain): one wire verb, after which the whole program runs on
// the target's NIC. The chain's outcome comes back typed — rdma.ErrAccess
// for a rotated chain region, rdma.ErrChainRevoked/ErrChainFault for a
// program stopped by fencing or a failing step.
func (m *RemoteMemory) ChainTrigger(addr uint64, arg uint64) (rdma.ChainResult, error) {
	rkey, err := m.rkeyFor(addr, 8)
	if err != nil {
		return rdma.ChainResult{}, err
	}
	return m.qp.ChainTriggerCtx(m.context(), rkey, addr, arg)
}

// Regions mirrors the MR table as verbchain compile-time regions, for
// validating chain programs before they are armed remotely.
func (m *RemoteMemory) Regions() []verbchain.Region {
	out := make([]verbchain.Region, len(m.mrs))
	for i, mr := range m.mrs {
		out[i] = verbchain.Region{
			RKey:   mr.RKey,
			Addr:   mr.Addr,
			Len:    mr.Len,
			Read:   mr.Perm&rdma.PermRead != 0,
			Write:  mr.Perm&rdma.PermWrite != 0,
			Atomic: mr.Perm&rdma.PermAtomic != 0,
		}
	}
	return out
}

// RKeyFor exposes MR resolution for chain builders: the live rkey covering
// [addr, addr+n).
func (m *RemoteMemory) RKeyFor(addr uint64, n int) (uint32, error) {
	return m.rkeyFor(addr, n)
}

// WriteBytes implements xabi.Memory.
func (m *RemoteMemory) WriteBytes(addr uint64, b []byte) error {
	rkey, err := m.rkeyFor(addr, len(b))
	if err != nil {
		return err
	}
	return m.qp.WriteCtx(m.context(), rkey, addr, b)
}

// CompareAndSwapMem implements maps.AtomicMemory via the RDMA CAS verb.
func (m *RemoteMemory) CompareAndSwapMem(addr uint64, old, new uint64) (uint64, bool, error) {
	rkey, err := m.rkeyFor(addr, 8)
	if err != nil {
		return 0, false, err
	}
	prev, err := m.qp.CompareAndSwapCtx(m.context(), rkey, addr, old, new)
	if err != nil {
		return 0, false, err
	}
	return prev, prev == old, nil
}

// FetchAddMem performs a remote FETCH_ADD (used for bump allocation).
func (m *RemoteMemory) FetchAddMem(addr uint64, delta uint64) (uint64, error) {
	rkey, err := m.rkeyFor(addr, 8)
	if err != nil {
		return 0, err
	}
	return m.qp.FetchAddCtx(m.context(), rkey, addr, delta)
}

// BatchWrite is one entry of a coalesced remote write chain. When HasImm is
// set the entry's final segment becomes a WRITE_WITH_IMM, ringing the node's
// doorbell as part of the chain instead of with a separate verb.
type BatchWrite struct {
	Addr   uint64
	Data   []byte
	Imm    uint32
	HasImm bool
}

// WriteBatch coalesces all entries into OpBatch chains on the wire: one
// latency-model charge and one completion per chain instead of one per
// write. Entries larger than the segment limit are split; rkeys are resolved
// per segment so a chain may span MRs.
func (m *RemoteMemory) WriteBatch(writes []BatchWrite) error {
	var ops []rdma.BatchOp
	for _, w := range writes {
		off := 0
		for {
			end := len(w.Data)
			if end-off > rdma.WriteSeg {
				end = off + rdma.WriteSeg
			}
			seg := w.Data[off:end]
			span := len(seg)
			if span == 0 {
				span = 1 // doorbell-only entry still needs a valid MR
			}
			rkey, err := m.rkeyFor(w.Addr+uint64(off), span)
			if err != nil {
				return err
			}
			op := rdma.BatchOp{RKey: rkey, Addr: w.Addr + uint64(off), Data: seg}
			if w.HasImm && end == len(w.Data) {
				op.Imm, op.HasImm = w.Imm, true
			}
			ops = append(ops, op)
			off = end
			if off >= len(w.Data) {
				break
			}
		}
	}
	return m.qp.WriteBatchCtx(m.context(), ops)
}

// WriteImm performs a WRITE_WITH_IMM (the cc_event doorbell).
func (m *RemoteMemory) WriteImm(addr uint64, imm uint32, data []byte) error {
	n := len(data)
	if n == 0 {
		n = 1
	}
	rkey, err := m.rkeyFor(addr, n)
	if err != nil {
		return err
	}
	return m.qp.WriteImmCtx(m.context(), rkey, addr, imm, data)
}

var _ xabi.Memory = (*RemoteMemory)(nil)
