package core

import (
	"errors"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"rdx/internal/faultnet"
	"rdx/internal/pipeline"
	"rdx/internal/rdma"
	"rdx/internal/xabi"
)

// Chaos tests: reliability under transport faults (paper §7, future work
// #4). The invariants: (1) faults surface as errors, never hangs; (2) a
// failed deployment publishes nothing — the data plane keeps executing the
// previous version; (3) a fresh CodeFlow over a new connection recovers.

func TestChaosConnectionDiesMidDeploy(t *testing.T) {
	r := newRig(t, 1)
	good := r.cfs[0]
	if _, err := good.InjectExtension(constProg("v1", 7), "ingress"); err != nil {
		t.Fatal(err)
	}

	// A second CodeFlow whose connection dies a few verbs into the next
	// deployment (armed after discovery so setup always completes).
	conn, err := r.fab.Dial(nodeID(0))
	if err != nil {
		t.Fatal(err)
	}
	fc := faultnet.Wrap(conn, faultnet.Options{})
	flaky, err := r.cp.CreateCodeFlow(fc)
	if err != nil {
		t.Fatal(err)
	}
	defer flaky.Close()
	fc.SetFailAfterOps(fc.Ops() + 5)

	deployErr := error(nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Use a distinct program so the resident fast path cannot absorb
		// the deploy before the fault fires.
		_, deployErr = flaky.InjectExtension(constProg("v2", 8), "ingress")
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("deploy over dying connection hung")
	}
	if deployErr == nil {
		t.Fatal("deploy over dying connection succeeded")
	}

	// Invariant: the data plane still runs v1; no torn/partial publish.
	res, err := r.nodes[0].ExecHook("ingress", make([]byte, xabi.CtxSize), nil)
	if err != nil || res.Verdict != 7 {
		t.Fatalf("data plane after failed deploy: %+v err=%v", res, err)
	}

	// Recovery: a fresh CodeFlow deploys fine.
	conn2, err := r.fab.Dial(nodeID(0))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := r.cp.CreateCodeFlow(conn2)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if _, err := fresh.InjectExtension(constProg("v3", 9), "ingress"); err != nil {
		t.Fatal(err)
	}
	res, _ = r.nodes[0].ExecHook("ingress", make([]byte, xabi.CtxSize), nil)
	if res.Verdict != 9 {
		t.Errorf("post-recovery verdict = %d", res.Verdict)
	}
}

func TestChaosBroadcastPartialFailureAbortsCleanly(t *testing.T) {
	r := newRig(t, 3)
	// Baseline on all nodes.
	if _, err := Group(r.cfs).Broadcast(constProg("base", 50), BroadcastOptions{Hook: "ingress"}); err != nil {
		t.Fatal(err)
	}

	// Replace node 1's CodeFlow with one whose transport dies during the
	// staging phase of the next broadcast.
	conn, err := r.fab.Dial(nodeID(1))
	if err != nil {
		t.Fatal(err)
	}
	fc := faultnet.Wrap(conn, faultnet.Options{})
	flaky, err := r.cp.CreateCodeFlow(fc)
	if err != nil {
		t.Fatal(err)
	}
	defer flaky.Close()
	fc.SetFailAfterOps(fc.Ops() + 3)
	group := Group{r.cfs[0], flaky, r.cfs[2]}

	_, err = group.Broadcast(constProg("next", 60), BroadcastOptions{Hook: "ingress"})
	if err == nil {
		t.Fatal("broadcast with dying member succeeded")
	}

	// Stage-phase failure aborts before ANY publish: every node must still
	// run the baseline.
	for i, n := range r.nodes {
		res, execErr := n.ExecHook("ingress", make([]byte, xabi.CtxSize), nil)
		if execErr != nil || res.Verdict != 50 {
			t.Errorf("node %d after aborted broadcast: %+v err=%v", i, res, execErr)
		}
	}
}

func TestChaosSlowLinkStillCorrect(t *testing.T) {
	r := newRig(t, 1)
	conn, err := r.fab.Dial(nodeID(0))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := r.cp.CreateCodeFlow(faultnet.Wrap(conn, faultnet.Options{DelayPerOp: 200 * time.Microsecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	rep, err := slow.InjectExtension(constProg("slow", 3), "ingress")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total < 2*time.Millisecond {
		t.Errorf("deploy over slow link took %v; delay not applied?", rep.Total)
	}
	res, err := r.nodes[0].ExecHook("ingress", make([]byte, xabi.CtxSize), nil)
	if err != nil || res.Verdict != 3 {
		t.Errorf("res=%+v err=%v", res, err)
	}
}

func TestChaosCorruptedFramesRejected(t *testing.T) {
	// A corrupted request frame must not crash the endpoint or corrupt
	// node memory; the QP surfaces an error or the op simply fails.
	r := newRig(t, 1)
	conn, err := r.fab.Dial(nodeID(0))
	if err != nil {
		t.Fatal(err)
	}
	qp := rdma.NewQP(faultnet.Wrap(conn, faultnet.Options{CorruptOp: 2}))
	defer qp.Close()
	mrs, err := qp.QueryMRs()
	if err != nil {
		t.Skipf("corruption hit the discovery op: %v", err)
	}
	var ctrl rdma.MR
	for _, mr := range mrs {
		if mr.Name == "rdx:ctrl" {
			ctrl = mr
		}
	}
	// This write's frame is corrupted in flight; any outcome except a hang
	// or an endpoint crash is acceptable.
	errc := make(chan error, 1)
	go func() { errc <- qp.Write(ctrl.RKey, ctrl.Addr, []byte{1, 2, 3, 4}) }()
	select {
	case <-errc:
	case <-time.After(5 * time.Second):
		t.Fatal("corrupted frame hung the QP")
	}
	// The endpoint must still serve healthy connections.
	conn2, _ := r.fab.Dial(nodeID(0))
	qp2 := rdma.NewQP(conn2)
	defer qp2.Close()
	if _, err := qp2.QueryMRs(); err != nil {
		t.Errorf("endpoint unhealthy after corrupted frame: %v", err)
	}
}

// TestChaosReconnQPBroadcastSurvivesKills is this PR's acceptance test:
// faultnet kills every node's first connection mid-stream (truncating a
// frame, often inside the staging WriteBatch), yet a ReconnQP-backed
// pipeline broadcast to 8 nodes completes within its deadline — every node
// publishes, no goroutine leaks, no hangs.
func TestChaosReconnQPBroadcastSurvivesKills(t *testing.T) {
	const fleet = 8
	r := newRig(t, fleet)
	// The kills tear frames mid-stream on purpose; keep endpoint protocol
	// logging out of the test output.
	for _, n := range r.nodes {
		n.RNIC.SetLogf(nil)
	}
	before := runtime.NumGoroutine()

	var cfs []*CodeFlow
	var arm []func()
	for i := 0; i < fleet; i++ {
		i := i
		var mu sync.Mutex
		var conns []*faultnet.Conn
		dial := func() (net.Conn, error) {
			c, err := r.fab.Dial(nodeID(i))
			if err != nil {
				return nil, err
			}
			fc := faultnet.Wrap(c, faultnet.Options{})
			mu.Lock()
			conns = append(conns, fc)
			mu.Unlock()
			return fc, nil
		}
		rq, err := rdma.NewReconnQP(rdma.ReconnConfig{
			Dial:        dial,
			VerbTimeout: 2 * time.Second,
			MaxRedials:  5,
			Logf:        t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		cf, err := r.cp.CreateCodeFlowQP(rq)
		if err != nil {
			t.Fatal(err)
		}
		cfs = append(cfs, cf)
		arm = append(arm, func() {
			// Kill the live connection a staggered number of payload bytes
			// into the broadcast: early nodes die inside the staging batch,
			// later ones around the publish transaction.
			mu.Lock()
			fc := conns[0]
			fc.SetKillAfterBytes(fc.BytesWritten() + 100 + int64(i)*25)
			mu.Unlock()
		})
	}
	closed := false
	closeAll := func() {
		if closed {
			return
		}
		closed = true
		for _, cf := range cfs {
			cf.Close()
		}
	}
	defer closeAll()
	for _, f := range arm {
		f()
	}

	targets := make([]pipeline.Target, len(cfs))
	for i, cf := range cfs {
		targets[i] = cf
	}
	var res *pipeline.Result
	var injErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, injErr = r.cp.Scheduler().Inject(pipeline.Request{
			Ext:      constProg("chaos-bcast", 77),
			Hook:     "ingress",
			Targets:  targets,
			Deadline: 20 * time.Second,
		})
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("broadcast over dying connections hung past its deadline")
	}
	if injErr != nil {
		t.Fatal(injErr)
	}
	for i, o := range res.Outcomes {
		if o.Err != nil {
			t.Errorf("node %d never recovered: %v (attempts %d)", i, o.Err, o.Attempts)
		}
	}
	if !res.Published {
		t.Fatal("broadcast published nowhere despite reconnects")
	}
	for i, n := range r.nodes {
		out, execErr := n.ExecHook("ingress", make([]byte, xabi.CtxSize), nil)
		if execErr != nil || out.Verdict != 77 {
			t.Errorf("node %d after chaos broadcast: %+v err=%v", i, out, execErr)
		}
	}

	// No goroutine leaks: dead readers, killed ServeConn handlers, and
	// redialed connections must all wind down once the flows close.
	closeAll()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+3 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after close; leak in the reconnect path?", before, runtime.NumGoroutine())
}

func TestChaosRepeatedFaultsNeverWedgeTheNode(t *testing.T) {
	// Inject over many short-lived flaky connections; the node must stay
	// healthy and its extension state consistent throughout.
	r := newRig(t, 1)
	if _, err := r.cfs[0].InjectExtension(constProg("stable", 42), "ingress"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		conn, err := r.fab.Dial(nodeID(0))
		if err != nil {
			t.Fatal(err)
		}
		cf, err := r.cp.CreateCodeFlow(faultnet.Wrap(conn, faultnet.Options{FailAfterOps: int64(10 + i)}))
		if err != nil {
			continue // discovery died; acceptable
		}
		cf.InjectExtension(constProg("churn", int32(100+i)), "ingress")
		cf.Close()
	}
	res, err := r.nodes[0].ExecHook("ingress", make([]byte, xabi.CtxSize), nil)
	if err != nil && !errors.Is(err, nil) {
		t.Fatalf("node wedged: %v", err)
	}
	// Whatever version survived, it must be one that was fully published.
	if res.Verdict != 42 && (res.Verdict < 100 || res.Verdict > 119) {
		t.Errorf("verdict %d is not any published version", res.Verdict)
	}
}
