package core

import (
	"context"
	"errors"
	"fmt"

	"rdx/internal/node"
	"rdx/internal/verbchain"
)

// ErrBarrierSpent marks an arrival past a barrier's party count: the commit
// already happened and the extra trigger executed nothing.
var ErrBarrierSpent = errors.New("core: chain barrier already committed")

// ChainBarrier is the offloaded publish barrier (DESIGN.md §15): a commit
// chain resident in one node's scratchpad whose trigger count IS the
// barrier qword. Each participant of a group publish fires one
// ChainTrigger when its part completes — the trigger's FETCH-ADD on the
// chain's trigger word is the fan-in — and every program op is gated
// WhenTrigger(N), so the first N-1 arrivals execute nothing. The Nth
// arrival flips the group-commit CAS (0 → the job's version) and rings the
// CC-invalidate doorbell over the commit word, all on the host node's NIC.
//
// The party that fired last learns from its own trigger completion that
// the commit happened (Arrive reports committed=true exactly once); nobody
// polls, and no controller CPU sits between the last stage finishing and
// the commit landing. Fencing: the chain carries no guard by default but
// its region rkey obeys rotation like any MR — a takeover that rotates the
// scratch MR leaves stale arrivals failing typed with rdma.ErrAccess.
type ChainBarrier struct {
	cf         *CodeFlow
	parties    uint64
	chainAddr  uint64
	commitAddr uint64
	version    uint64
}

// ArmChainBarrier allocates and pre-posts a commit chain for parties
// arrivals on cf's node. The commit word starts at zero and is flipped to
// version by the final arrival.
func ArmChainBarrier(cf *CodeFlow, parties int, version uint64) (*ChainBarrier, error) {
	if parties <= 0 {
		return nil, fmt.Errorf("core: chain barrier needs at least one party")
	}
	if version == 0 {
		return nil, fmt.Errorf("core: chain barrier version must be nonzero (zero marks uncommitted)")
	}
	commit, err := cf.AllocScratch(8)
	if err != nil {
		return nil, err
	}
	if err := cf.Remote.WriteMem(commit, 8, 0); err != nil {
		return nil, err
	}
	rkey, err := cf.Remote.RKeyFor(commit, 8)
	if err != nil {
		return nil, err
	}
	prog := &verbchain.Program{
		Ops: []verbchain.Op{{
			Kind: verbchain.KindCAS, RKey: rkey, Addr: commit,
			Cmp: verbchain.Imm(0), Src: verbchain.Imm(version),
			Dst: verbchain.NoReg, AbortIfLost: true,
			When: verbchain.WhenTrigger(uint64(parties)),
		}},
		Doorbell: &verbchain.Doorbell{RKey: rkey, Addr: commit, Imm: node.DoorbellCCInvalidate},
	}
	if err := prog.Validate(cf.Remote.Regions()); err != nil {
		return nil, fmt.Errorf("core: chain barrier validate: %w", err)
	}
	region := verbchain.EncodeRegion(prog)
	chainAddr, err := cf.AllocScratch(len(region))
	if err != nil {
		return nil, err
	}
	if err := cf.Remote.WriteBytes(chainAddr, region); err != nil {
		return nil, err
	}
	return &ChainBarrier{
		cf:         cf,
		parties:    uint64(parties),
		chainAddr:  chainAddr,
		commitAddr: commit,
		version:    version,
	}, nil
}

// Arrive registers one party's completion by firing the barrier chain.
// committed is true for exactly the arrival whose trigger completed the
// barrier — its firing ran the commit CAS NIC-side. Arrivals beyond the
// party count execute nothing (every op is WhenTrigger(N)-gated, and N has
// passed) and surface ErrBarrierSpent: the trigger count in the completion
// proves the over-arrival, no remote read needed.
func (b *ChainBarrier) Arrive(ctx context.Context) (committed bool, err error) {
	res, err := b.cf.Remote.WithContext(ctx).ChainTrigger(b.chainAddr, 0)
	if err != nil {
		return false, err
	}
	if res.Trigger > b.parties {
		return false, fmt.Errorf("%w: arrival %d of a %d-party barrier", ErrBarrierSpent, res.Trigger, b.parties)
	}
	return res.Trigger == b.parties, nil
}

// Committed reads the group-commit word: zero while the barrier is open,
// the armed version once the final arrival's chain flipped it.
func (b *ChainBarrier) Committed() (uint64, error) {
	return b.cf.Remote.ReadMem(b.commitAddr, 8)
}

// CommitAddr exposes the commit word's address (data-plane pollers).
func (b *ChainBarrier) CommitAddr() uint64 { return b.commitAddr }
