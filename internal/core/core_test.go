package core

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"

	"rdx/internal/ebpf"
	"rdx/internal/ebpf/maps"
	"rdx/internal/ext"
	"rdx/internal/mem"
	"rdx/internal/node"
	"rdx/internal/rdma"
	"rdx/internal/udf"
	"rdx/internal/wasm"
	"rdx/internal/xabi"
)

// rig is a control plane plus one or more served nodes on a fabric.
type rig struct {
	cp    *ControlPlane
	fab   *rdma.Fabric
	nodes []*node.Node
	cfs   []*CodeFlow
}

func newRig(t *testing.T, nodeCount int, hooks ...string) *rig {
	t.Helper()
	if len(hooks) == 0 {
		hooks = []string{"ingress"}
	}
	r := &rig{cp: NewControlPlane(), fab: rdma.NewFabric()}
	for i := 0; i < nodeCount; i++ {
		n, err := node.New(node.Config{
			ID:      nodeID(i),
			Hooks:   hooks,
			Latency: rdma.NoLatency(),
			Cores:   2,
			Seed:    int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		l, err := r.fab.Listen(nodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		go n.Serve(l)
		r.nodes = append(r.nodes, n)

		conn, err := r.fab.Dial(nodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		cf, err := r.cp.CreateCodeFlow(conn)
		if err != nil {
			t.Fatal(err)
		}
		r.cfs = append(r.cfs, cf)
	}
	t.Cleanup(func() {
		for _, cf := range r.cfs {
			cf.Close()
		}
		for _, n := range r.nodes {
			n.Close()
		}
	})
	return r
}

func nodeID(i int) string { return string(rune('a'+i)) + "-node" }

func constProg(name string, ret int32) *ext.Extension {
	return ext.FromEBPF(ebpf.NewProgram(name, ebpf.ProgTypeSocketFilter, []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R0, ret),
		ebpf.Exit(),
	}))
}

func TestCreateCodeFlowDiscovery(t *testing.T) {
	r := newRig(t, 1, "ingress", "egress")
	cf := r.cfs[0]
	if cf.Arch != r.nodes[0].Arch {
		t.Errorf("arch = %v, want %v", cf.Arch, r.nodes[0].Arch)
	}
	if _, err := cf.HookAddr("ingress"); err != nil {
		t.Error(err)
	}
	if _, err := cf.HookAddr("nope"); err == nil {
		t.Error("unknown hook resolved")
	}
	got := cf.GOT()
	if len(got) == 0 {
		t.Fatal("empty GOT snapshot")
	}
	if got["xstate_meta"] != node.MetaBase {
		t.Errorf("xstate_meta = %#x", got["xstate_meta"])
	}
}

func TestCreateCodeFlowRejectsUninitializedTarget(t *testing.T) {
	// An endpoint over a raw arena without ctx_init must be rejected.
	arena := newRawArena(t)
	ep := rdma.NewEndpoint(arena, rdma.NoLatency())
	ep.RegisterMR("rdx:ctrl", 0, 4096, rdma.PermAll)
	fab := rdma.NewFabric()
	l, _ := fab.Listen("raw")
	go ep.Serve(l)
	defer ep.Close()

	conn, _ := fab.Dial("raw")
	if _, err := NewControlPlane().CreateCodeFlow(conn); err == nil {
		t.Error("codeflow created against uninitialized node")
	}
}

func newRawArena(t *testing.T) *mem.Arena {
	t.Helper()
	return mem.NewArena(1 << 16)
}

func attachLocal(n *node.Node, addr uint64) (*maps.View, error) {
	return maps.Attach(n.Memory(), addr)
}

func TestInjectEBPFEndToEnd(t *testing.T) {
	r := newRig(t, 1)
	cf := r.cfs[0]
	rep, err := cf.InjectExtension(constProg("p5", 5), "ingress")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version == 0 || rep.Total <= 0 {
		t.Errorf("report = %+v", rep)
	}
	// The node's data path now executes the remotely injected program —
	// with zero node-CPU involvement in the injection.
	res, err := r.nodes[0].ExecHook("ingress", make([]byte, xabi.CtxSize), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != 5 || res.Version != rep.Version {
		t.Errorf("res = %+v, want verdict 5 version %d", res, rep.Version)
	}
	st := r.nodes[0].Cores.Stats()
	if st.TasksCompleted != 0 {
		t.Errorf("node cores ran %d tasks during agentless injection", st.TasksCompleted)
	}
}

func TestRegistryCompileOnceDeployAnywhere(t *testing.T) {
	r := newRig(t, 3)
	e := constProg("shared", 7)
	for i, cf := range r.cfs {
		rep, err := cf.InjectExtension(e, "ingress")
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if i == 0 && rep.CacheHit {
			t.Error("first deploy claims cache hit")
		}
		if i > 0 && !rep.CacheHit {
			t.Errorf("deploy %d missed the registry", i)
		}
	}
	if r.cp.Stats.CompileMisses != 1 || r.cp.Stats.CompileHits != 2 {
		t.Errorf("registry stats = %+v", r.cp.Stats)
	}
	for i, n := range r.nodes {
		res, err := n.ExecHook("ingress", make([]byte, xabi.CtxSize), nil)
		if err != nil || res.Verdict != 7 {
			t.Errorf("node %d: res=%+v err=%v", i, res, err)
		}
	}
}

func TestDisableCacheAblation(t *testing.T) {
	r := newRig(t, 2)
	r.cp.DisableCache = true
	e := constProg("nc", 1)
	for _, cf := range r.cfs {
		if _, err := cf.InjectExtension(e, "ingress"); err != nil {
			t.Fatal(err)
		}
	}
	if r.cp.Stats.CompileMisses != 2 {
		t.Errorf("expected 2 compile misses with cache disabled, got %+v", r.cp.Stats)
	}
}

func TestInjectEBPFWithXState(t *testing.T) {
	r := newRig(t, 1)
	cf := r.cfs[0]
	spec := ebpf.MapSpec{Name: "hits", Type: xabi.MapTypeHash, KeySize: 4, ValueSize: 8, MaxEntries: 32}

	// Program: map[proto]++ via lookup-or-insert; return pass.
	insns := []ebpf.Instruction{
		ebpf.LoadMem(ebpf.SizeW, ebpf.R6, ebpf.R1, int16(xabi.CtxOffProtocol)),
		ebpf.StoreMem(ebpf.SizeW, ebpf.R10, ebpf.R6, -4),
		ebpf.StoreImm(ebpf.SizeDW, ebpf.R10, -16, 1),
	}
	insns = append(insns, ebpf.LoadMapPtr(ebpf.R1, 0)...)
	insns = append(insns,
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Alu64Imm(ebpf.AluAdd, ebpf.R2, -4),
		ebpf.Call(xabi.HelperMapLookup),
		ebpf.JmpImm(ebpf.JmpJNE, ebpf.R0, 0, 9),
	)
	insns = append(insns, ebpf.LoadMapPtr(ebpf.R1, 0)...)
	insns = append(insns,
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Alu64Imm(ebpf.AluAdd, ebpf.R2, -4),
		ebpf.Mov64Reg(ebpf.R3, ebpf.R10),
		ebpf.Alu64Imm(ebpf.AluAdd, ebpf.R3, -16),
		ebpf.Mov64Imm(ebpf.R4, 0),
		ebpf.Call(xabi.HelperMapUpdate),
		ebpf.Ja(3),
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R3, ebpf.R0, 0),
		ebpf.Alu64Imm(ebpf.AluAdd, ebpf.R3, 1),
		ebpf.StoreMem(ebpf.SizeDW, ebpf.R0, ebpf.R3, 0),
		ebpf.Mov64Imm(ebpf.R0, int32(xabi.VerdictPass)),
		ebpf.Exit(),
	)
	e := ext.FromEBPF(ebpf.NewProgram("protostats", ebpf.ProgTypeSocketFilter, insns, spec))

	if _, err := cf.InjectExtension(e, "ingress"); err != nil {
		t.Fatal(err)
	}

	// Drive traffic: protocols 6, 6, 17.
	for _, proto := range []uint32{6, 6, 17} {
		ctx := make([]byte, xabi.CtxSize)
		binary.LittleEndian.PutUint32(ctx[xabi.CtxOffProtocol:], proto)
		if _, err := r.nodes[0].ExecHook("ingress", ctx, nil); err != nil {
			t.Fatal(err)
		}
	}

	// Remote XState introspection: the control plane reads the map the
	// extension wrote, entirely over RDMA.
	xstates, err := cf.ListXStates()
	if err != nil || len(xstates) != 1 {
		t.Fatalf("xstates = %v err=%v", xstates, err)
	}
	view, err := cf.AttachXState(xstates[0])
	if err != nil {
		t.Fatal(err)
	}
	addr, found, err := view.Lookup([]byte{6, 0, 0, 0})
	if err != nil || !found {
		t.Fatalf("remote lookup: found=%v err=%v", found, err)
	}
	if got, _ := cf.Remote.ReadMem(addr, 8); got != 2 {
		t.Errorf("proto 6 count = %d, want 2", got)
	}
	// Remote update: reset the counter from the control plane, then verify
	// the data plane sees it.
	if err := view.Update([]byte{6, 0, 0, 0}, binary.LittleEndian.AppendUint64(nil, 100), xabi.UpdateAny); err != nil {
		t.Fatal(err)
	}
	localView, _ := r.nodes[0].MetaXStateEntries()
	lv, err := attachLocal(r.nodes[0], localView[0])
	if err != nil {
		t.Fatal(err)
	}
	laddr, _, _ := lv.Lookup([]byte{6, 0, 0, 0})
	if got, _ := r.nodes[0].Memory().ReadMem(laddr, 8); got != 100 {
		t.Errorf("local view after remote update = %d", got)
	}
}

func TestInjectWasmEndToEnd(t *testing.T) {
	r := newRig(t, 1)
	body := wasm.NewBody().
		GlobalGet(0).I64Const(1).Raw(wasm.OpI64Add).GlobalSet(0).
		GlobalGet(0).
		End().Bytes()
	m := wasm.SimpleFilter("wcount", 1, nil, body)
	m.Globals = []wasm.Global{{Type: wasm.I64, Init: 10}}
	if _, err := r.cfs[0].InjectExtension(ext.FromWasm(m), "ingress"); err != nil {
		t.Fatal(err)
	}
	ctx := make([]byte, xabi.CtxSize)
	res, err := r.nodes[0].ExecHook("ingress", ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != 11 {
		t.Errorf("first exec = %d, want 11 (global init 10 + 1)", res.Verdict)
	}
	res, _ = r.nodes[0].ExecHook("ingress", ctx, nil)
	if res.Verdict != 12 {
		t.Errorf("second exec = %d, want 12", res.Verdict)
	}
}

func TestInjectUDFEndToEnd(t *testing.T) {
	r := newRig(t, 1)
	p, err := udf.New("filter", "len >= 100 && len <= 200")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.cfs[0].InjectExtension(ext.FromUDF(p), "ingress"); err != nil {
		t.Fatal(err)
	}
	ctx := make([]byte, xabi.CtxSize)
	binary.LittleEndian.PutUint32(ctx[xabi.CtxOffDataLen:], 150)
	res, err := r.nodes[0].ExecHook("ingress", ctx, nil)
	if err != nil || res.Verdict != 1 {
		t.Errorf("in-range: %+v err=%v", res, err)
	}
	binary.LittleEndian.PutUint32(ctx[xabi.CtxOffDataLen:], 500)
	if _, err := r.nodes[0].ExecHook("ingress", ctx, nil); !errors.Is(err, node.ErrDropped) {
		t.Errorf("out-of-range err = %v", err)
	}
}

func TestRollback(t *testing.T) {
	r := newRig(t, 1)
	cf := r.cfs[0]
	if _, err := cf.InjectExtension(constProg("good", 1), "ingress"); err != nil {
		t.Fatal(err)
	}
	if _, err := cf.InjectExtension(constProg("buggy", 2), "ingress"); err != nil {
		t.Fatal(err)
	}
	ctx := make([]byte, xabi.CtxSize)
	res, _ := r.nodes[0].ExecHook("ingress", ctx, nil)
	if res.Verdict != 2 {
		t.Fatalf("buggy not active: %+v", res)
	}

	start := time.Now()
	prev, err := cf.Rollback("ingress")
	rollbackTime := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if prev.Name != "good" {
		t.Errorf("rolled back to %q", prev.Name)
	}
	res, _ = r.nodes[0].ExecHook("ingress", ctx, nil)
	if res.Verdict != 1 {
		t.Errorf("post-rollback verdict = %d", res.Verdict)
	}
	// Rollback is commit-only: microseconds, not milliseconds.
	if rollbackTime > 5*time.Millisecond {
		t.Errorf("rollback took %v", rollbackTime)
	}
	if _, err := cf.Rollback("ingress"); err == nil {
		t.Error("rollback past history succeeded")
	}
}

func TestTxAtomicityAgainstConcurrentReaders(t *testing.T) {
	// Property (§3.5): while the control plane repeatedly deploys a large
	// blob and flips the pointer, a data-plane executor must never observe
	// a torn blob — every execution returns one of the published constants.
	r := newRig(t, 1)
	cf := r.cfs[0]

	if _, err := cf.InjectExtension(constProg("v0", 100), "ingress"); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var readerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx := make([]byte, xabi.CtxSize)
		for {
			select {
			case <-stop:
				return
			default:
			}
			res, err := r.nodes[0].ExecHook("ingress", ctx, nil)
			if err != nil {
				readerErr = err
				return
			}
			if res.Verdict < 100 || res.Verdict > 110 {
				readerErr = errors.New("observed verdict outside published set")
				return
			}
		}
	}()

	for v := int32(101); v <= 110; v++ {
		// Large-ish straight-line program so the blob write spans many
		// cachelines (tearable without rdx_tx).
		insns := []ebpf.Instruction{
			ebpf.Mov64Imm(ebpf.R0, v),
			ebpf.Mov64Imm(ebpf.R3, 0),
		}
		for i := 0; i < 300; i++ {
			insns = append(insns, ebpf.Alu64Imm(ebpf.AluAdd, ebpf.R3, 1))
		}
		insns = append(insns, ebpf.Exit())
		e := ext.FromEBPF(ebpf.NewProgram("v", ebpf.ProgTypeSocketFilter, insns))
		if _, err := cf.InjectExtension(e, "ingress"); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if readerErr != nil {
		t.Fatal(readerErr)
	}
}

func TestMutualExcl(t *testing.T) {
	r := newRig(t, 1)
	cf := r.cfs[0]
	tok, err := cf.MutualExcl("ingress", 100)
	if err != nil {
		t.Fatal(err)
	}
	// Second acquisition must fail while held.
	if _, err := cf.MutualExcl("ingress", 50); err == nil {
		t.Error("double lock acquired")
	}
	if err := cf.Unlock(tok); err != nil {
		t.Fatal(err)
	}
	// Unlock of a stale token must fail.
	if err := cf.Unlock(tok); err == nil {
		t.Error("stale unlock succeeded")
	}
	// Re-acquire after release.
	tok2, err := cf.MutualExcl("ingress", 100)
	if err != nil {
		t.Fatal(err)
	}
	cf.Unlock(tok2)
}

func TestBroadcastAtomicVisibility(t *testing.T) {
	r := newRig(t, 4)
	rep, err := Group(r.cfs).Broadcast(constProg("b9", 9), BroadcastOptions{Hook: "ingress"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Versions) != 4 {
		t.Fatalf("versions = %v", rep.Versions)
	}
	for i, n := range r.nodes {
		res, err := n.ExecHook("ingress", make([]byte, xabi.CtxSize), nil)
		if err != nil || res.Verdict != 9 {
			t.Errorf("node %d: %+v err=%v", i, res, err)
		}
	}
	if rep.Commit <= 0 || rep.Prepare <= 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestBroadcastBBUGatesLifted(t *testing.T) {
	r := newRig(t, 2)
	rep, err := Group(r.cfs).Broadcast(constProg("bbu", 3), BroadcastOptions{Hook: "ingress", BBU: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.GateHeld <= 0 {
		t.Error("BBU gate hold not recorded")
	}
	// Gates must be cleared.
	for i, n := range r.nodes {
		slot, _ := n.HookSlot("ingress")
		gate, _ := n.Arena.ReadQword(node.HookAddr(slot) + node.HookOffBuffer)
		if gate != 0 {
			t.Errorf("node %d gate still raised", i)
		}
	}
}

func TestBroadcastEmptyGroup(t *testing.T) {
	if _, err := (Group{}).Broadcast(constProg("x", 1), BroadcastOptions{Hook: "h"}); err == nil {
		t.Error("empty group broadcast succeeded")
	}
}

func TestRemoteStatsAndCCEvent(t *testing.T) {
	r := newRig(t, 1)
	cf := r.cfs[0]
	if _, err := cf.InjectExtension(constProg("s", 1), "ingress"); err != nil {
		t.Fatal(err)
	}
	ctx := make([]byte, xabi.CtxSize)
	for i := 0; i < 3; i++ {
		r.nodes[0].ExecHook("ingress", ctx, nil)
	}
	execs, drops, version, err := cf.HookStats("ingress")
	if err != nil {
		t.Fatal(err)
	}
	if execs != 3 || drops != 0 || version == 0 {
		t.Errorf("stats = %d %d %d", execs, drops, version)
	}
	hookAddr, _ := cf.HookAddr("ingress")
	if err := cf.CCEvent(hookAddr); err != nil {
		t.Errorf("cc_event: %v", err)
	}
}

func TestInjectRejectsInvalidExtension(t *testing.T) {
	r := newRig(t, 1)
	bad := ext.FromEBPF(ebpf.NewProgram("bad", ebpf.ProgTypeSocketFilter, []ebpf.Instruction{
		ebpf.Mov64Reg(ebpf.R0, ebpf.R5), // uninit read
		ebpf.Exit(),
	}))
	if _, err := r.cfs[0].InjectExtension(bad, "ingress"); err == nil {
		t.Error("invalid extension deployed")
	}
	// The failed validation must not have touched the node.
	execs, _, version, _ := r.cfs[0].HookStats("ingress")
	if execs != 0 || version != 0 {
		t.Error("node state mutated by rejected extension")
	}
}
