package core

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"time"

	"rdx/internal/ext"
	"rdx/internal/native"
	"rdx/internal/node"
	"rdx/internal/pipeline"
)

// NodeKey implements pipeline.Target.
func (cf *CodeFlow) NodeKey() string { return fmt.Sprintf("%#x", cf.NodeID) }

// Stage implements pipeline.Target by staging without publishing.
func (cf *CodeFlow) Stage(ctx context.Context, e *ext.Extension, hook string) (pipeline.Staged, error) {
	return cf.StageExtension(ctx, e, hook)
}

// StagedDeploy is a prepared-but-unpublished deployment on one node: the
// blob is fully written and recorded on the hook's staged slot, but no
// dispatch pointer references it yet. Publish is the commit-only half.
type StagedDeploy struct {
	cf       *CodeFlow
	hook     string
	name     string
	hookAddr uint64
	blob     uint64
	version  uint64
	link     time.Duration
	write    time.Duration
}

// StageExtension runs everything except publication for one node: JIT (via
// the registry), state setup, linking, remote allocation, then ONE OpBatch
// chain carrying every blob segment plus the staged-record write, terminated
// by a single doorbell WriteImm — the coalesced-doorbell injection path.
// Every remote verb issues under ctx, so the whole staging sequence shares
// one deadline and (when ctx carries one) one trace ID.
func (cf *CodeFlow) StageExtension(ctx context.Context, e *ext.Extension, hook string) (*StagedDeploy, error) {
	rem := cf.remote(ctx)
	hookAddr, err := cf.HookAddr(hook)
	if err != nil {
		return nil, err
	}
	linkStart := time.Now()
	bin, err := cf.JITCompileCode(e)
	if err != nil {
		return nil, err
	}
	extra := map[string]uint64{}
	params := DeployParams{Kind: uint8(e.Kind)}
	if err := cf.setupState(rem, e, extra, &params); err != nil {
		return nil, err
	}
	if err := cf.LinkCode(bin, extra); err != nil {
		return nil, err
	}
	version, err := cf.nextVersion(rem)
	if err != nil {
		return nil, err
	}
	blob, err := cf.allocCode(rem, node.BlobHdrSize+len(bin.Code))
	if err != nil {
		return nil, err
	}
	link := time.Since(linkStart)

	writeStart := time.Now()
	hdr := node.EncodeBlobHeader(bin.Arch, node.BlobParams{
		Kind: params.Kind, Version: version, MemBase: params.MemBase, GlobBase: params.GlobBase,
	}, len(bin.Code))
	var stagedRec [8]byte
	binary.LittleEndian.PutUint64(stagedRec[:], blob)
	// Blob payload and the crash-visible staged record travel as one chain;
	// the trailing immediate exposes the staged slot to the node's CPU cache
	// without a second doorbell verb.
	if err := rem.WriteBatch([]BatchWrite{
		{Addr: blob, Data: append(hdr, bin.Code...)},
		{Addr: hookAddr + node.HookOffStaged, Data: stagedRec[:], Imm: node.DoorbellCCInvalidate, HasImm: true},
	}); err != nil {
		return nil, err
	}
	write := time.Since(writeStart)

	codeSum := sha256.Sum256(bin.Code)
	cf.mu.Lock()
	cf.codeHashes[blob] = hex.EncodeToString(codeSum[:])
	cf.mu.Unlock()
	return &StagedDeploy{
		cf: cf, hook: hook, name: e.Name(), hookAddr: hookAddr,
		blob: blob, version: version, link: link, write: write,
	}, nil
}

// Publish implements pipeline.Staged: version write + dispatch CAS +
// cc_event, the commit-only transaction, issued under ctx.
func (s *StagedDeploy) Publish(ctx context.Context) error {
	cf := s.cf
	rem := cf.remote(ctx)
	if err := cf.txOn(rem,
		[]TxWrite{{Addr: s.hookAddr + node.HookOffVersion, Qword: s.version}},
		QwordSwap{Addr: s.hookAddr + node.HookOffDispatch, New: s.blob},
	); err != nil {
		return err
	}
	cf.ccEventOn(rem, s.hookAddr+node.HookOffDispatch)
	cf.mu.Lock()
	cf.history[s.hook] = append(cf.history[s.hook], Deployed{Blob: s.blob, Version: s.version, Name: s.name})
	cf.mu.Unlock()
	return nil
}

// Version implements pipeline.Staged.
func (s *StagedDeploy) Version() uint64 { return s.version }

// LinkDuration implements pipeline.Staged.
func (s *StagedDeploy) LinkDuration() time.Duration { return s.link }

// WriteDuration implements pipeline.Staged.
func (s *StagedDeploy) WriteDuration() time.Duration { return s.write }

// Scheduler returns the control plane's injection scheduler, created on
// first use. Validation and compilation are wired to the registry, so a
// fleet-wide job validates once and JITs once per distinct architecture
// among the targets, regardless of fleet size.
func (cp *ControlPlane) Scheduler() *pipeline.Scheduler {
	cp.schedOnce.Do(func() {
		cp.sched = pipeline.New(pipeline.Config{
			Retries:  2,
			Registry: cp.Registry,
			Tracer:   cp.Tracer,
			// Reconnectable transport failures (QP death, verb timeouts,
			// lost atomic completions behind a ReconnQP) are retryable:
			// staging is re-driveable end to end.
			Transient: Retryable,
			Validate: func(e *ext.Extension) error {
				_, err := cp.ValidateCode(e)
				return err
			},
			Compile: func(e *ext.Extension, targets []pipeline.Target) error {
				seen := map[native.Arch]bool{}
				for _, t := range targets {
					cf, ok := t.(*CodeFlow)
					if !ok || seen[cf.Arch] {
						continue
					}
					seen[cf.Arch] = true
					if _, err := cp.JITCompileCode(e, cf.Arch); err != nil {
						return err
					}
				}
				return nil
			},
		})
	})
	return cp.sched
}

var (
	_ pipeline.Target = (*CodeFlow)(nil)
	_ pipeline.Staged = (*StagedDeploy)(nil)
)
