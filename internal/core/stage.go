package core

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"time"

	"rdx/internal/artifact"
	"rdx/internal/ext"
	"rdx/internal/native"
	"rdx/internal/node"
	"rdx/internal/pipeline"
	"rdx/internal/telemetry"
)

// NodeKey implements pipeline.Target.
func (cf *CodeFlow) NodeKey() string { return fmt.Sprintf("%#x", cf.NodeID) }

// Stage implements pipeline.Target by staging without publishing.
func (cf *CodeFlow) Stage(ctx context.Context, e *ext.Extension, hook string) (pipeline.Staged, error) {
	return cf.StageExtension(ctx, e, hook)
}

// StagedDeploy is a prepared-but-unpublished deployment on one node: the
// blob is fully written (in full, or as a page delta into a claimed
// standby) and recorded on the hook's staged slot, but no dispatch pointer
// references it yet. Publish is the commit-only half.
type StagedDeploy struct {
	cf       *CodeFlow
	hook     string
	name     string
	digest   string
	hookAddr uint64
	blob     uint64
	version  uint64
	slot     *slotImage
	delta    bool // staged as a page delta rather than a full image
	// epoch is the code-ring wrap epoch at claim/allocation time; the
	// write and publish steps re-check it (wrappedSince) so a wrap racing
	// the stage fails it retryably instead of touching reclaimed space.
	epoch uint64
	link  time.Duration
	write time.Duration
}

// StageExtension runs everything except publication for one node: JIT (via
// the artifact store), state setup, linking, remote allocation, then ONE
// OpBatch chain carrying the blob bytes plus the staged-record write,
// terminated by a single doorbell WriteImm — the coalesced-doorbell
// injection path. When the hook has a standby blob of known contents (the
// previously displaced version), the stage diffs the new image against it
// at page granularity and scatter-writes only the changed runs into that
// blob — delta injection. The delta never targets the dispatched blob, so
// a connection killed mid-delta cannot tear the live version; if the delta
// exceeds the control plane's DeltaMaxRatio it degrades to a full write of
// the claimed slot. Every remote verb issues under ctx, so the whole
// staging sequence shares one deadline and (when ctx carries one) one
// trace ID.
func (cf *CodeFlow) StageExtension(ctx context.Context, e *ext.Extension, hook string) (*StagedDeploy, error) {
	rem := cf.remote(ctx)
	hookAddr, err := cf.HookAddr(hook)
	if err != nil {
		return nil, err
	}
	linkStart := time.Now()
	bin, err := cf.JITCompileCode(e)
	if err != nil {
		return nil, err
	}
	extra := map[string]uint64{}
	params := DeployParams{Kind: uint8(e.Kind), Digest: e.Digest()}
	if err := cf.setupState(rem, e, extra, &params); err != nil {
		return nil, err
	}
	if err := cf.LinkCode(bin, extra); err != nil {
		return nil, err
	}
	version, err := cf.nextVersion(rem)
	if err != nil {
		return nil, err
	}
	link := time.Since(linkStart)

	writeStart := time.Now()
	hdr := node.EncodeBlobHeader(bin.Arch, node.BlobParams{
		Kind: params.Kind, Version: version, MemBase: params.MemBase, GlobBase: params.GlobBase,
	}, len(bin.Code))
	payload := append(hdr, bin.Code...)

	sd := &StagedDeploy{
		cf: cf, hook: hook, name: e.Name(), digest: e.Digest(),
		hookAddr: hookAddr, version: version, link: link,
	}
	slot, epoch := cf.claimStandby(hook, len(payload))
	sd.epoch = epoch
	if slot != nil {
		if err := cf.stageIntoSlot(ctx, rem, sd, slot, payload); err != nil {
			return nil, err
		}
	} else {
		blob, allocEpoch, err := cf.allocCode(rem, len(payload))
		if err != nil {
			return nil, err
		}
		sd.epoch = allocEpoch
		fresh := &slotImage{
			blob: blob, cap: (uint64(len(payload)) + 7) &^ 7,
			digest: e.Digest(), kind: params.Kind,
		}
		if err := cf.stageFull(rem, sd, fresh, payload); err != nil {
			return nil, err
		}
	}
	sd.slot.kind = params.Kind
	sd.write = time.Since(writeStart)

	codeSum := sha256.Sum256(bin.Code)
	cf.mu.Lock()
	cf.codeHashes[sd.blob] = hex.EncodeToString(codeSum[:])
	cf.mu.Unlock()
	if j := cf.cp.journal(); j != nil {
		j.JournalStage(cf.NodeKey(), hook, sd.name, sd.digest, sd.version, sd.blob)
	}
	return sd, nil
}

// stageIntoSlot writes payload into a claimed standby blob, as a scatter
// chain of changed-page runs when the delta pays for itself, else as a
// full rewrite. The slot's shadow image is nil while writes are in flight:
// a transport failure partway leaves the slot marked torn, so a later
// claim falls back to a full rewrite instead of trusting stale bytes.
func (cf *CodeFlow) stageIntoSlot(ctx context.Context, rem *RemoteMemory, sd *StagedDeploy, slot *slotImage, payload []byte) error {
	cp := cf.cp
	// A ring wrap after the claim means fresh allocations may already
	// overlap the claimed blob: writing there could corrupt them. The
	// check narrows the race window; the post-write check below closes
	// this stage's publish path for wraps that land mid-flight.
	if cf.wrappedSince(sd.epoch) {
		return fmt.Errorf("core: delta stage of %q on %q: %w", sd.name, sd.hook, ErrRingWrapped)
	}
	d := artifact.Compute(slot.image, payload, cp.deltaPageSize())
	if d.Ratio() > cp.deltaMaxRatio() {
		// The diff wouldn't pay for itself (or the slot is torn): full
		// rewrite of the claimed blob, no fresh ring allocation needed.
		cp.Registry.Counter("artifact.delta.fallback").Inc()
		return cf.stageFull(rem, sd, slot, payload)
	}
	cp.Registry.Counter("artifact.delta.count").Inc()
	deltaStart := time.Now()
	writes := make([]BatchWrite, 0, len(d.Runs)+1)
	for _, run := range d.Runs {
		writes = append(writes, BatchWrite{Addr: slot.blob + uint64(run.Off), Data: run.Data})
	}
	var stagedRec [8]byte
	binary.LittleEndian.PutUint64(stagedRec[:], slot.blob)
	writes = append(writes, BatchWrite{
		Addr: sd.hookAddr + node.HookOffStaged, Data: stagedRec[:],
		Imm: node.DoorbellCCInvalidate, HasImm: true,
	})
	slot.image = nil
	err := rem.WriteBatch(writes)
	cp.Tracer.Span(telemetry.TraceIDFrom(ctx), "pipeline", "delta",
		cf.NodeKey(), deltaStart, d.Bytes(), err)
	if err != nil {
		return err
	}
	// The scatter was a remote round trip: if the ring wrapped under it,
	// the blob's range may since have been handed out again, so neither
	// the write nor the shadow image can be trusted. slot.image stays nil
	// (torn marker) and the stage fails retryably.
	if cf.wrappedSince(sd.epoch) {
		return fmt.Errorf("core: delta stage of %q on %q: %w", sd.name, sd.hook, ErrRingWrapped)
	}
	slot.image = payload
	slot.digest = sd.digest
	cp.Registry.Counter("artifact.delta.bytes_written").Add(uint64(d.Bytes()))
	cp.Registry.Counter("artifact.delta.bytes_saved").Add(uint64(len(payload) - d.Bytes()))
	sd.blob = slot.blob
	sd.slot = slot
	sd.delta = true
	return nil
}

// stageFull writes the complete image plus the staged record as one chain
// into slot's blob (freshly allocated or a claimed standby).
func (cf *CodeFlow) stageFull(rem *RemoteMemory, sd *StagedDeploy, slot *slotImage, payload []byte) error {
	if cf.wrappedSince(sd.epoch) {
		return fmt.Errorf("core: stage of %q on %q: %w", sd.name, sd.hook, ErrRingWrapped)
	}
	var stagedRec [8]byte
	binary.LittleEndian.PutUint64(stagedRec[:], slot.blob)
	slot.image = nil
	// Blob payload and the crash-visible staged record travel as one chain;
	// the trailing immediate exposes the staged slot to the node's CPU cache
	// without a second doorbell verb.
	if err := rem.WriteBatch([]BatchWrite{
		{Addr: slot.blob, Data: payload},
		{Addr: sd.hookAddr + node.HookOffStaged, Data: stagedRec[:], Imm: node.DoorbellCCInvalidate, HasImm: true},
	}); err != nil {
		return err
	}
	// As in stageIntoSlot: a wrap during the write invalidates the blob.
	if cf.wrappedSince(sd.epoch) {
		return fmt.Errorf("core: stage of %q on %q: %w", sd.name, sd.hook, ErrRingWrapped)
	}
	slot.image = payload
	slot.digest = sd.digest
	sd.blob = slot.blob
	sd.slot = slot
	return nil
}

// Publish implements pipeline.Staged: version write + dispatch CAS +
// cc_event, the commit-only transaction, issued under ctx. On success the
// slot bookkeeping flips: the published blob becomes the hook's active,
// the displaced active becomes the standby (the next delta target), and
// the control plane's deployed-version map records the new version.
func (s *StagedDeploy) Publish(ctx context.Context) error {
	cf := s.cf
	rem := cf.remote(ctx)
	// pubMu keeps the commit CAS and the shadow bookkeeping in the same
	// order across concurrent publishes (see CodeFlow.pubMu).
	cf.pubMu.Lock()
	defer cf.pubMu.Unlock()
	// A ring wrap since this stage claimed/allocated its blob may have
	// handed the address range to a fresh allocation: the CAS would point
	// the hook at someone else's (or garbage) code. Fail retryably — a
	// re-driven stage allocates post-wrap space.
	if cf.wrappedSince(s.epoch) {
		return fmt.Errorf("core: publish of %q on %q: %w", s.name, s.hook, ErrRingWrapped)
	}
	// Leadership fence: checked after the wrap guard and immediately before
	// the commit CAS, so a controller deposed mid-broadcast cannot flip the
	// hook pointer (ErrFenced is permanent — the scheduler won't retry it).
	if err := cf.cp.checkFence(); err != nil {
		return fmt.Errorf("core: publish of %q on %q: %w", s.name, s.hook, err)
	}
	if err := cf.txOn(rem,
		[]TxWrite{{Addr: s.hookAddr + node.HookOffVersion, Qword: s.version}},
		QwordSwap{Addr: s.hookAddr + node.HookOffDispatch, New: s.blob},
	); err != nil {
		return err
	}
	cf.ccEventOn(rem, s.hookAddr+node.HookOffDispatch)
	cf.installPublished(s.hook, s.slot,
		Deployed{Blob: s.blob, Version: s.version, Name: s.name, Digest: s.digest})
	return nil
}

// Version implements pipeline.Staged.
func (s *StagedDeploy) Version() uint64 { return s.version }

// LinkDuration implements pipeline.Staged.
func (s *StagedDeploy) LinkDuration() time.Duration { return s.link }

// WriteDuration implements pipeline.Staged.
func (s *StagedDeploy) WriteDuration() time.Duration { return s.write }

// Scheduler returns the control plane's injection scheduler, created on
// first use. Validation and compilation are wired to the registry, so a
// fleet-wide job validates once and JITs once per distinct architecture
// among the targets, regardless of fleet size.
func (cp *ControlPlane) Scheduler() *pipeline.Scheduler {
	cp.schedOnce.Do(func() {
		cp.sched = pipeline.New(pipeline.Config{
			Retries:  2,
			Registry: cp.Registry,
			Tracer:   cp.Tracer,
			// Reconnectable transport failures (QP death, verb timeouts,
			// lost atomic completions behind a ReconnQP) are retryable:
			// staging is re-driveable end to end.
			Transient: Retryable,
			Validate: func(e *ext.Extension) error {
				_, err := cp.ValidateCode(e)
				return err
			},
			Compile: func(e *ext.Extension, targets []pipeline.Target) error {
				seen := map[native.Arch]bool{}
				for _, t := range targets {
					cf, ok := t.(*CodeFlow)
					if !ok || seen[cf.Arch] {
						continue
					}
					seen[cf.Arch] = true
					if _, err := cp.JITCompileCode(e, cf.Arch); err != nil {
						return err
					}
				}
				return nil
			},
		})
	})
	return cp.sched
}

var (
	_ pipeline.Target = (*CodeFlow)(nil)
	_ pipeline.Staged = (*StagedDeploy)(nil)
)
