package core

import (
	"context"
	"errors"
	"testing"
)

// TestChainBarrierFanIn pins the offloaded barrier's commit discipline:
// early arrivals execute nothing (the program is WhenTrigger(N)-gated), the
// Nth arrival's NIC-resident CAS flips the commit word to the armed
// version, and over-arrival faults typed instead of recommitting.
func TestChainBarrierFanIn(t *testing.T) {
	r := newRig(t, 1)
	cf := r.cfs[0]

	if _, err := ArmChainBarrier(cf, 0, 1); err == nil {
		t.Error("armed a zero-party barrier")
	}
	if _, err := ArmChainBarrier(cf, 3, 0); err == nil {
		t.Error("armed a zero-version barrier")
	}

	b, err := ArmChainBarrier(cf, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		committed, err := b.Arrive(ctx)
		if err != nil {
			t.Fatalf("arrival %d: %v", i, err)
		}
		if committed {
			t.Fatalf("arrival %d committed a 3-party barrier", i)
		}
		if v, _ := b.Committed(); v != 0 {
			t.Fatalf("commit word = %d before the barrier closed", v)
		}
	}
	committed, err := b.Arrive(ctx)
	if err != nil {
		t.Fatalf("final arrival: %v", err)
	}
	if !committed {
		t.Fatal("final arrival did not observe the commit")
	}
	if v, _ := b.Committed(); v != 42 {
		t.Fatalf("commit word = %d, want 42", v)
	}
	// A straggler past the party count executes nothing (the gated program
	// only fires on the Nth trigger) and fails typed; the commit word keeps
	// the original version.
	if _, err := b.Arrive(ctx); !errors.Is(err, ErrBarrierSpent) {
		t.Fatalf("over-arrival: %v, want ErrBarrierSpent", err)
	}
	if v, _ := b.Committed(); v != 42 {
		t.Fatalf("over-arrival disturbed commit word: %d", v)
	}
}

// TestBroadcastWithBarrier wires the barrier into a collective update: every
// staging goroutine fires one arrival after its stage lands, and the last
// arrival's chain commits the group word — checked against the armed
// version after Broadcast returns.
func TestBroadcastWithBarrier(t *testing.T) {
	r := newRig(t, 3)
	b, err := ArmChainBarrier(r.cfs[0], len(r.cfs), 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Group(r.cfs).Broadcast(constProg("bar", 11), BroadcastOptions{Hook: "ingress", Barrier: b}); err != nil {
		t.Fatalf("broadcast with barrier: %v", err)
	}
	if v, _ := b.Committed(); v != 7 {
		t.Fatalf("group-commit word = %d after broadcast, want 7", v)
	}
}
