package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"time"

	"rdx/internal/ext"
	"rdx/internal/node"
)

// Security controls from the paper's §5: the control plane acts as the
// remote gatekeeper with a role-based privilege model (confidentiality),
// and enforces runtime limits on deployed extensions (availability).

// Role names a privilege level for CodeFlow principals.
type Role string

// Privilege describes what a role may do.
type Privilege struct {
	// Hooks the role may deploy to; empty means all.
	Hooks []string
	// Kinds the role may deploy; empty means all.
	Kinds []ext.Kind
	// MaxOps caps the validated size of deployable extensions (0 = none).
	MaxOps int
	// CanRollback permits Rollback and Broadcast operations.
	CanRollback bool
}

// AccessPolicy maps roles to privileges. A nil policy permits everything
// (the default, matching a trusted single-operator control plane).
type AccessPolicy struct {
	Roles map[Role]Privilege
}

// ErrDenied is returned when the policy rejects an operation.
var ErrDenied = fmt.Errorf("core: operation denied by access policy")

// check validates a deployment request against the policy.
func (p *AccessPolicy) check(role Role, e *ext.Extension, hook string, info ext.Info) error {
	if p == nil {
		return nil
	}
	priv, ok := p.Roles[role]
	if !ok {
		return fmt.Errorf("%w: unknown role %q", ErrDenied, role)
	}
	if len(priv.Hooks) > 0 {
		allowed := false
		for _, h := range priv.Hooks {
			if h == hook {
				allowed = true
				break
			}
		}
		if !allowed {
			return fmt.Errorf("%w: role %q may not deploy to hook %q", ErrDenied, role, hook)
		}
	}
	if len(priv.Kinds) > 0 {
		allowed := false
		for _, k := range priv.Kinds {
			if k == e.Kind {
				allowed = true
				break
			}
		}
		if !allowed {
			return fmt.Errorf("%w: role %q may not deploy %v extensions", ErrDenied, role, e.Kind)
		}
	}
	if priv.MaxOps > 0 && info.Ops > priv.MaxOps {
		return fmt.Errorf("%w: extension of %d ops exceeds role %q limit %d", ErrDenied, info.Ops, role, priv.MaxOps)
	}
	return nil
}

// SetPolicy installs (or clears, with nil) the control plane's access
// policy. Deployments through CodeFlows bound to a role are checked.
func (cp *ControlPlane) SetPolicy(p *AccessPolicy) {
	cp.mu.Lock()
	cp.policy = p
	cp.mu.Unlock()
}

// Bind assigns a principal role to this CodeFlow; subsequent deployments
// are checked against the control plane's policy.
func (cf *CodeFlow) Bind(role Role) {
	cf.mu.Lock()
	cf.role = role
	cf.mu.Unlock()
}

// authorize runs the policy check for a deployment on this handle.
func (cf *CodeFlow) authorize(e *ext.Extension, hook string) error {
	cf.cp.mu.Lock()
	policy := cf.cp.policy
	cf.cp.mu.Unlock()
	if policy == nil {
		return nil
	}
	cf.mu.Lock()
	role := cf.role
	cf.mu.Unlock()
	info, err := cf.cp.ValidateCode(e)
	if err != nil {
		return err
	}
	return policy.check(role, e, hook, info)
}

// SetRuntimeLimit caps the instructions any single execution of the hook's
// extension may spend (0 clears the cap): the §5 availability control,
// written remotely into the hook's fuel word.
func (cf *CodeFlow) SetRuntimeLimit(hook string, maxInsns uint64) error {
	hookAddr, err := cf.HookAddr(hook)
	if err != nil {
		return err
	}
	return cf.Remote.WriteMem(hookAddr+node.HookOffFuel, 8, maxInsns)
}

// RuntimeAborts reads how many executions the hook's runtime limit killed.
func (cf *CodeFlow) RuntimeAborts(hook string) (uint64, error) {
	hookAddr, err := cf.HookAddr(hook)
	if err != nil {
		return 0, err
	}
	return cf.Remote.ReadMem(hookAddr+node.HookOffAborts, 8)
}

// Quarantine combines the §5 recovery controls: revert the hook to its
// previous version and clamp the (presumed faulty) extension's runtime
// budget, returning what was rolled back to.
func (cf *CodeFlow) Quarantine(hook string, maxInsns uint64) (Deployed, error) {
	prev, err := cf.Rollback(hook)
	if err != nil {
		return Deployed{}, err
	}
	if maxInsns > 0 {
		if err := cf.SetRuntimeLimit(hook, maxInsns); err != nil {
			return prev, err
		}
	}
	return prev, nil
}

// auditEntry records one control-plane action for the §5 integrity story.
type auditEntry struct {
	At   time.Time
	Node uint64
	Op   string
	Hook string
	Name string
}

// audit appends to the control plane's audit log.
func (cp *ControlPlane) audit(nodeID uint64, op, hook, name string) {
	cp.mu.Lock()
	cp.auditLog = append(cp.auditLog, auditEntry{
		At: time.Now(), Node: nodeID, Op: op, Hook: hook, Name: name,
	})
	if len(cp.auditLog) > 4096 {
		cp.auditLog = cp.auditLog[len(cp.auditLog)-2048:]
	}
	cp.mu.Unlock()
}

// AuditLen reports how many control-plane actions are in the audit log.
func (cp *ControlPlane) AuditLen() int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return len(cp.auditLog)
}

// IntegrityReport is the outcome of a remote introspection pass.
type IntegrityReport struct {
	Hook     string
	Blob     uint64
	Version  uint64
	CodeLen  uint32
	Expected string // hex SHA-256 recorded at deploy time
	Actual   string // hex SHA-256 of the code read back over RDMA
	Intact   bool
}

// ErrTampered is returned when remote introspection finds the deployed
// code differing from what the control plane published.
var ErrTampered = fmt.Errorf("core: deployed code does not match the published binary")

// VerifyIntegrity is the §5 integrity control ("signature-based remote
// runtime checks / remote memory introspection"): read the hook's live blob
// back over one-sided verbs and compare its hash against the fingerprint
// recorded when the control plane published it. The target node cannot
// observe — let alone interfere with — the check.
func (cf *CodeFlow) VerifyIntegrity(hook string) (IntegrityReport, error) {
	rep := IntegrityReport{Hook: hook}
	hookAddr, err := cf.HookAddr(hook)
	if err != nil {
		return rep, err
	}
	blob, err := cf.Remote.ReadMem(hookAddr+node.HookOffDispatch, 8)
	if err != nil {
		return rep, err
	}
	rep.Blob = blob
	if blob == 0 {
		rep.Intact = true // empty hook: nothing to tamper with
		return rep, nil
	}
	hdr, err := cf.Remote.ReadBytes(blob, node.BlobHdrSize)
	if err != nil {
		return rep, err
	}
	if binary.LittleEndian.Uint32(hdr[node.BlobOffMagic:]) != node.BlobMagic {
		return rep, fmt.Errorf("%w: blob header destroyed", ErrTampered)
	}
	rep.Version = binary.LittleEndian.Uint64(hdr[node.BlobOffVersion:])
	rep.CodeLen = binary.LittleEndian.Uint32(hdr[node.BlobOffLen:])

	code, err := cf.Remote.ReadBytes(blob+node.BlobHdrSize, int(rep.CodeLen))
	if err != nil {
		return rep, err
	}
	sum := sha256.Sum256(code)
	rep.Actual = hex.EncodeToString(sum[:])

	cf.mu.Lock()
	rep.Expected = cf.codeHashes[blob]
	cf.mu.Unlock()
	if rep.Expected == "" {
		return rep, fmt.Errorf("core: no recorded fingerprint for blob %#x (deployed by another control plane?)", blob)
	}
	rep.Intact = rep.Expected == rep.Actual
	if !rep.Intact {
		return rep, ErrTampered
	}
	return rep, nil
}
