package core

import (
	"bytes"
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rdx/internal/ebpf"
	"rdx/internal/ext"
	"rdx/internal/faultnet"
	"rdx/internal/node"
	"rdx/internal/pipeline"
	"rdx/internal/rdma"
	"rdx/internal/xabi"
)

// bigProg builds a multi-kilobyte extension: a long run of filler moves
// followed by the verdict. Two bigProgs with the same filler count JIT to
// images that differ only near the tail (the verdict immediate) and in the
// blob header, so a page-granular delta between them is a small fraction
// of the full image — the delta injection path's bread and butter.
func bigProg(name string, ret int32) *ext.Extension {
	const filler = 512
	insns := make([]ebpf.Instruction, 0, filler+2)
	for i := 0; i < filler; i++ {
		insns = append(insns, ebpf.Mov64Imm(ebpf.R1, int32(i)))
	}
	insns = append(insns, ebpf.Mov64Imm(ebpf.R0, ret), ebpf.Exit())
	return ext.FromEBPF(ebpf.NewProgram(name, ebpf.ProgTypeSocketFilter, insns))
}

// injectOn pushes e through the scheduler to a single target and fails the
// test on any per-node error.
func injectOn(t *testing.T, cp *ControlPlane, target pipeline.Target, e *ext.Extension) *pipeline.Result {
	t.Helper()
	res, err := cp.Scheduler().Inject(pipeline.Request{
		Ext: e, Hook: "ingress", Targets: []pipeline.Target{target}, Deadline: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes[0].Err != nil {
		t.Fatalf("inject %s: %v", e.Name(), res.Outcomes[0].Err)
	}
	return res
}

// readDispatchedCode reads back the code bytes the hook's dispatch pointer
// references, straight from node memory over a healthy connection.
func readDispatchedCode(t *testing.T, cf *CodeFlow, hook string) (uint64, []byte) {
	t.Helper()
	hookAddr, err := cf.HookAddr(hook)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := cf.Remote.ReadMem(hookAddr+node.HookOffDispatch, 8)
	if err != nil {
		t.Fatal(err)
	}
	n, err := cf.Remote.ReadMem(blob+node.BlobOffLen, 4)
	if err != nil {
		t.Fatal(err)
	}
	code, err := cf.Remote.ReadBytes(blob+node.BlobHdrSize, int(n))
	if err != nil {
		t.Fatal(err)
	}
	return blob, code
}

func TestDeltaInjectionWritesOnlyChangedPages(t *testing.T) {
	r := newRig(t, 1)
	cf := r.cfs[0]
	reg := r.cp.Registry

	// First two injects allocate fresh blobs (no standby exists yet); the
	// second publish displaces v1's blob into the standby slot.
	injectOn(t, r.cp, cf, bigProg("delta-v1", 1))
	injectOn(t, r.cp, cf, bigProg("delta-v2", 2))
	if got := reg.Counter("artifact.delta.count").Value(); got != 0 {
		t.Fatalf("delta attempted during warm-up injects: count = %d", got)
	}

	// Third inject claims v1's blob as the delta target.
	v3 := bigProg("delta-v3", 3)
	injectOn(t, r.cp, cf, v3)
	if got := reg.Counter("artifact.delta.count").Value(); got != 1 {
		t.Fatalf("delta.count = %d, want 1", got)
	}
	written := reg.Counter("artifact.delta.bytes_written").Value()
	saved := reg.Counter("artifact.delta.bytes_saved").Value()
	if saved == 0 {
		t.Fatal("delta saved no bytes over a full rewrite")
	}
	if written >= saved {
		t.Fatalf("delta wrote %d bytes but saved only %d: images differ too much for the test's premise", written, saved)
	}

	// The node must run v3 byte-exactly despite receiving only changed pages.
	bin, err := r.cp.JITCompileCode(v3, cf.Arch)
	if err != nil {
		t.Fatal(err)
	}
	if _, code := readDispatchedCode(t, cf, "ingress"); !bytes.Equal(code, bin.Code) {
		t.Fatal("delta-published blob is not byte-identical to the compiled image")
	}
	out, err := r.nodes[0].ExecHook("ingress", make([]byte, xabi.CtxSize), nil)
	if err != nil || out.Verdict != 3 {
		t.Fatalf("after delta publish: %+v err=%v", out, err)
	}
	dv, ok := r.cp.DeployedVersion(cf.NodeKey(), "ingress")
	if !ok || dv.Digest != v3.Digest() {
		t.Fatalf("deployed-version map: ok=%v digest=%q, want %q", ok, dv.Digest, v3.Digest())
	}

	// Leapfrog: the next inject claims v2's displaced blob and deltas again.
	injectOn(t, r.cp, cf, bigProg("delta-v4", 4))
	if got := reg.Counter("artifact.delta.count").Value(); got != 2 {
		t.Fatalf("delta.count after fourth inject = %d, want 2", got)
	}
	out, _ = r.nodes[0].ExecHook("ingress", make([]byte, xabi.CtxSize), nil)
	if out.Verdict != 4 {
		t.Fatalf("verdict after leapfrog delta = %d, want 4", out.Verdict)
	}
}

func TestDeltaDisabledAblation(t *testing.T) {
	r := newRig(t, 1)
	r.cp.DisableDelta = true
	for i, e := range []*ext.Extension{bigProg("abl-1", 1), bigProg("abl-2", 2), bigProg("abl-3", 3)} {
		injectOn(t, r.cp, r.cfs[0], e)
		_ = i
	}
	if got := r.cp.Registry.Counter("artifact.delta.count").Value(); got != 0 {
		t.Fatalf("DisableDelta still attempted %d deltas", got)
	}
	out, err := r.nodes[0].ExecHook("ingress", make([]byte, xabi.CtxSize), nil)
	if err != nil || out.Verdict != 3 {
		t.Fatalf("ablation verdict: %+v err=%v", out, err)
	}
}

// TestChaosKillMidDeltaNeverTearsLiveVersion is the delta-injection torn-
// update invariant: a connection killed partway through the delta's scatter
// writes must leave the node executing the previous version in full — the
// delta only ever targets dead standby blobs, never the dispatched one.
func TestChaosKillMidDeltaNeverTearsLiveVersion(t *testing.T) {
	r := newRig(t, 1)
	r.nodes[0].RNIC.SetLogf(nil) // kills tear frames by design
	reg := r.cp.Registry

	conn, err := r.fab.Dial(nodeID(0))
	if err != nil {
		t.Fatal(err)
	}
	fc := faultnet.Wrap(conn, faultnet.Options{})
	flaky, err := r.cp.CreateCodeFlow(fc)
	if err != nil {
		t.Fatal(err)
	}
	defer flaky.Close()

	// Warm the slots: v2's publish leaves v1's blob as the delta standby.
	v2 := bigProg("chaos-d2", 12)
	injectOn(t, r.cp, flaky, bigProg("chaos-d1", 11))
	rep2 := injectOn(t, r.cp, flaky, v2)

	bin2, err := r.cp.JITCompileCode(v2, flaky.Arch)
	if err != nil {
		t.Fatal(err)
	}

	// Arm the kill a couple hundred bytes into the next stage: past the
	// version FETCH_ADD (one small frame), inside the delta WriteBatch.
	fc.SetKillAfterBytes(fc.BytesWritten() + 200)

	var res *pipeline.Result
	var injErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, injErr = r.cp.Scheduler().Inject(pipeline.Request{
			Ext: bigProg("chaos-d3", 13), Hook: "ingress",
			Targets: []pipeline.Target{flaky}, Deadline: 10 * time.Second,
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("inject over a connection killed mid-delta hung")
	}
	if injErr != nil {
		t.Fatal(injErr)
	}
	if res.Outcomes[0].Err == nil || res.Published {
		t.Fatalf("inject over a dead plain QP reported success: %+v", res.Outcomes[0])
	}
	if got := reg.Counter("artifact.delta.count").Value(); got < 1 {
		t.Fatal("kill landed before the delta path was even attempted; test arms too early")
	}

	// The invariant: the node still executes v2 exactly — right verdict,
	// right hook version, byte-identical code under the dispatch pointer.
	out, err := r.nodes[0].ExecHook("ingress", make([]byte, xabi.CtxSize), nil)
	if err != nil || out.Verdict != 12 {
		t.Fatalf("node after mid-delta kill: %+v err=%v (torn update?)", out, err)
	}
	healthy := r.cfs[0]
	_, _, hookVer, err := healthy.HookStats("ingress")
	if err != nil {
		t.Fatal(err)
	}
	if hookVer != rep2.Outcomes[0].Version {
		t.Fatalf("hook version = %d, want v2's %d", hookVer, rep2.Outcomes[0].Version)
	}
	if _, code := readDispatchedCode(t, healthy, "ingress"); !bytes.Equal(code, bin2.Code) {
		t.Fatal("dispatched blob diverged from v2's compiled image after mid-delta kill")
	}

	// Recovery over a healthy flow: the node takes the new version in full.
	injectOn(t, r.cp, healthy, bigProg("chaos-d4", 14))
	out, _ = r.nodes[0].ExecHook("ingress", make([]byte, xabi.CtxSize), nil)
	if out.Verdict != 14 {
		t.Fatalf("post-recovery verdict = %d, want 14", out.Verdict)
	}
}

// TestChaosReconnQPRecoversMidDeltaKill kills the transport inside a delta
// WriteBatch behind a ReconnQP: the verb replays over a fresh connection
// and the job completes, leaving the node on the new version in full.
func TestChaosReconnQPRecoversMidDeltaKill(t *testing.T) {
	r := newRig(t, 1)
	r.nodes[0].RNIC.SetLogf(nil)
	reg := r.cp.Registry

	var mu sync.Mutex
	var conns []*faultnet.Conn
	dial := func() (net.Conn, error) {
		c, err := r.fab.Dial(nodeID(0))
		if err != nil {
			return nil, err
		}
		fc := faultnet.Wrap(c, faultnet.Options{})
		mu.Lock()
		conns = append(conns, fc)
		mu.Unlock()
		return fc, nil
	}
	rq, err := rdma.NewReconnQP(rdma.ReconnConfig{
		Dial: dial, VerbTimeout: 2 * time.Second, MaxRedials: 5, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	cf, err := r.cp.CreateCodeFlowQP(rq)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()

	injectOn(t, r.cp, cf, bigProg("rc-d1", 21))
	injectOn(t, r.cp, cf, bigProg("rc-d2", 22))

	mu.Lock()
	live := conns[len(conns)-1]
	live.SetKillAfterBytes(live.BytesWritten() + 200)
	mu.Unlock()

	v3 := bigProg("rc-d3", 23)
	var res *pipeline.Result
	var injErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, injErr = r.cp.Scheduler().Inject(pipeline.Request{
			Ext: v3, Hook: "ingress", Targets: []pipeline.Target{cf}, Deadline: 20 * time.Second,
		})
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("reconnecting inject hung after a mid-delta kill")
	}
	if injErr != nil {
		t.Fatal(injErr)
	}
	if res.Outcomes[0].Err != nil || !res.Published {
		t.Fatalf("ReconnQP did not recover the delta inject: %+v", res.Outcomes[0])
	}
	if got := reg.Counter("artifact.delta.count").Value(); got < 1 {
		t.Fatal("delta path never attempted; the kill test exercised nothing")
	}

	out, err := r.nodes[0].ExecHook("ingress", make([]byte, xabi.CtxSize), nil)
	if err != nil || out.Verdict != 23 {
		t.Fatalf("node after recovered delta: %+v err=%v", out, err)
	}
	bin3, err := r.cp.JITCompileCode(v3, cf.Arch)
	if err != nil {
		t.Fatal(err)
	}
	if _, code := readDispatchedCode(t, r.cfs[0], "ingress"); !bytes.Equal(code, bin3.Code) {
		t.Fatal("recovered delta left the blob different from v3's compiled image")
	}
	dv, ok := r.cp.DeployedVersion(cf.NodeKey(), "ingress")
	if !ok || dv.Digest != v3.Digest() || dv.Version != res.Outcomes[0].Version {
		t.Fatalf("deployed-version map after recovery: ok=%v %+v", ok, dv)
	}
}

// TestConcurrentBroadcastLastWriterWins races two broadcasts of different
// versions of the same CodeFlow name across the fleet under -race: both
// must complete without deadlocking on the publish barrier, and the
// deployed-version map must converge on the higher epoch per node —
// last-writer-wins — with each node executing one of the two versions in
// full.
func TestConcurrentBroadcastLastWriterWins(t *testing.T) {
	const fleet = 4
	r := newRig(t, fleet)
	g := Group(r.cfs)

	// Two sequential broadcasts fill both slot buffers so the racing pair
	// below contends on the delta claim/publish machinery, not just fresh
	// allocations.
	if _, err := g.Broadcast(bigProg("flow", 1), BroadcastOptions{Hook: "ingress"}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Broadcast(bigProg("flow", 2), BroadcastOptions{Hook: "ingress"}); err != nil {
		t.Fatal(err)
	}

	vA, vB := bigProg("flow", 11), bigProg("flow", 12)
	var repA, repB BroadcastReport
	var errA, errB error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		repA, errA = g.Broadcast(vA, BroadcastOptions{Hook: "ingress", BBU: true})
	}()
	go func() {
		defer wg.Done()
		repB, errB = g.Broadcast(vB, BroadcastOptions{Hook: "ingress", BBU: true})
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent broadcasts deadlocked on the publish barrier")
	}
	if errA != nil || errB != nil {
		t.Fatalf("concurrent broadcasts failed: A=%v B=%v", errA, errB)
	}

	binA, err := r.cp.JITCompileCode(vA, r.cfs[0].Arch)
	if err != nil {
		t.Fatal(err)
	}
	binB, err := r.cp.JITCompileCode(vB, r.cfs[0].Arch)
	if err != nil {
		t.Fatal(err)
	}
	for i, cf := range r.cfs {
		dv, ok := r.cp.DeployedVersion(cf.NodeKey(), "ingress")
		if !ok {
			t.Fatalf("node %d missing from the deployed-version map", i)
		}
		wantVer, wantDig := repA.Versions[i], vA.Digest()
		if repB.Versions[i] > wantVer {
			wantVer, wantDig = repB.Versions[i], vB.Digest()
		}
		if dv.Version != wantVer || dv.Digest != wantDig {
			t.Errorf("node %d version map = (%d,%q), want last writer (%d,%q)",
				i, dv.Version, dv.Digest, wantVer, wantDig)
		}
		// Whichever publish the node's CAS observed last, the blob it
		// dispatches must be one complete version, never a blend.
		out, execErr := r.nodes[i].ExecHook("ingress", make([]byte, xabi.CtxSize), nil)
		if execErr != nil || (out.Verdict != 11 && out.Verdict != 12) {
			t.Errorf("node %d verdict = %+v err=%v, want 11 or 12", i, out, execErr)
		}
		if _, code := readDispatchedCode(t, cf, "ingress"); !bytes.Equal(code, binA.Code) && !bytes.Equal(code, binB.Code) {
			t.Errorf("node %d dispatches code matching neither racing version: torn publish", i)
		}
	}
}

// flakyStageTarget fails its first Stage calls with a transport error
// AFTER the underlying staging ran, modeling a commit-side wobble that
// forces the scheduler to retry the whole stage.
type flakyStageTarget struct {
	*CodeFlow
	fails atomic.Int32
}

func (f *flakyStageTarget) Stage(ctx context.Context, e *ext.Extension, hook string) (pipeline.Staged, error) {
	s, err := f.CodeFlow.Stage(ctx, e, hook)
	if err == nil && f.fails.Add(-1) >= 0 {
		return nil, rdma.ErrTimeout
	}
	return s, err
}

// TestSchedulerRetryDoesNotRecompile is the regression test for the retry
// path re-running validate/JIT: every retry (and every later job with the
// same digest) must be served by the artifact cache, so the compiler runs
// exactly once no matter how many times staging is re-driven.
func TestSchedulerRetryDoesNotRecompile(t *testing.T) {
	r := newRig(t, 1)
	reg := r.cp.Registry
	ft := &flakyStageTarget{CodeFlow: r.cfs[0]}
	ft.fails.Store(1)

	e := bigProg("retry-once", 31)
	res := injectOn(t, r.cp, ft, e)
	if res.Outcomes[0].Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one transport failure, one retry)", res.Outcomes[0].Attempts)
	}
	if got := reg.Counter("artifact.compile.invocations").Value(); got != 1 {
		t.Fatalf("compile ran %d times across a retried stage, want 1", got)
	}
	if got := reg.Counter("artifact.validate.invocations").Value(); got != 1 {
		t.Fatalf("validate ran %d times across a retried stage, want 1", got)
	}

	// A whole second job with the same digest: still no recompilation.
	injectOn(t, r.cp, ft, e)
	if got := reg.Counter("artifact.compile.invocations").Value(); got != 1 {
		t.Fatalf("compile ran %d times after a repeat job, want 1", got)
	}
	if hits := reg.Counter("artifact.cache.hit").Value(); hits == 0 {
		t.Fatal("repeat job never hit the artifact cache")
	}
	out, err := r.nodes[0].ExecHook("ingress", make([]byte, xabi.CtxSize), nil)
	if err != nil || out.Verdict != 31 {
		t.Fatalf("after retried inject: %+v err=%v", out, err)
	}
}
