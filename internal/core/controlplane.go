// Package core implements RDX's contribution: the CodeFlow abstraction and
// its remote control plane (Table 1 of the paper).
//
// A ControlPlane is the centralized authority that replaces every per-node
// agent. It validates extension IR once, JIT-compiles it once per target
// architecture into relocatable binaries (cached by content digest), and
// deploys them to any number of data-plane nodes through one-sided RDMA
// verbs — allocation via remote FETCH_ADD on the node's bump pointers, code
// injection via WRITE, publication via CAS of the hook dispatch pointer,
// and cache exposure via WRITE_WITH_IMM doorbells. No code on the target
// node's CPUs participates in any of it.
package core

import (
	"fmt"
	"sync"
	"time"

	"rdx/internal/ext"
	"rdx/internal/native"
	"rdx/internal/pipeline"
	"rdx/internal/rdma"
	"rdx/internal/telemetry"
)

// ControlPlane is the remote control plane: validation, the
// compile-once/deploy-anywhere registry, and CodeFlow creation.
type ControlPlane struct {
	mu       sync.Mutex
	verified map[string]ext.Info            // digest → validation facts
	compiled map[registryKey]*native.Binary // (digest, arch) → instrumented binary

	// Stats counts registry effectiveness (ablation: disable the cache).
	Stats RegistryStats
	// DisableCache forces re-validation and re-compilation on every call
	// (the "no registry" ablation).
	DisableCache bool

	policy   *AccessPolicy
	auditLog []auditEntry

	// Registry holds every instrument of this control plane's fleet: the
	// scheduler's "pipeline.*" series and the wire layer's "rdma.qp.*"
	// series, snapshot together by Registry.Snapshot / the rdxd /metrics
	// endpoint.
	Registry *telemetry.Registry
	// Tracer records per-trace spans across layers (pipeline stages, wire
	// verbs, endpoint service) in a bounded ring.
	Tracer *telemetry.TraceRecorder
	// wire is the fleet-shared wire instrument set handed to every QP the
	// control plane binds; instruments live in the Registry, so per-node QP
	// regenerations behind a ReconnQP keep accumulating into the same series.
	wire *rdma.WireMetrics

	// sched is the lazily created injection scheduler (see Scheduler).
	schedOnce sync.Once
	sched     *pipeline.Scheduler
}

type registryKey struct {
	digest string
	arch   native.Arch
}

// RegistryStats counts cache behavior.
type RegistryStats struct {
	ValidateHits   uint64
	ValidateMisses uint64
	CompileHits    uint64
	CompileMisses  uint64
}

// NewControlPlane creates an empty control plane.
func NewControlPlane() *ControlPlane {
	reg := telemetry.NewRegistry()
	return &ControlPlane{
		verified: map[string]ext.Info{},
		compiled: map[registryKey]*native.Binary{},
		Registry: reg,
		Tracer:   telemetry.NewTraceRecorder(0),
		wire:     rdma.NewWireMetrics(reg, "rdma.qp"),
	}
}

// ValidateCode is rdx_validate_code: run the extension's validator on the
// control plane (not on any data-plane node), memoized by digest.
func (cp *ControlPlane) ValidateCode(e *ext.Extension) (ext.Info, error) {
	digest := e.Digest()
	cp.mu.Lock()
	if info, ok := cp.verified[digest]; ok && !cp.DisableCache {
		cp.Stats.ValidateHits++
		cp.mu.Unlock()
		return info, nil
	}
	cp.Stats.ValidateMisses++
	cp.mu.Unlock()

	info, err := e.Validate()
	if err != nil {
		return ext.Info{}, err
	}
	cp.mu.Lock()
	cp.verified[digest] = info
	cp.mu.Unlock()
	return info, nil
}

// JITCompileCode is rdx_JIT_compile_code: cross-architecture compilation on
// the control plane, producing an instrumented relocatable binary. Results
// are cached by (digest, arch); callers receive clones because linking
// mutates code.
func (cp *ControlPlane) JITCompileCode(e *ext.Extension, arch native.Arch) (*native.Binary, error) {
	key := registryKey{e.Digest(), arch}
	cp.mu.Lock()
	if bin, ok := cp.compiled[key]; ok && !cp.DisableCache {
		cp.Stats.CompileHits++
		cp.mu.Unlock()
		return bin.Clone(), nil
	}
	cp.Stats.CompileMisses++
	cp.mu.Unlock()

	// Validation gates compilation, as in the kernel pipeline.
	if _, err := cp.ValidateCode(e); err != nil {
		return nil, err
	}
	bin, err := e.Compile(arch)
	if err != nil {
		return nil, err
	}
	cp.mu.Lock()
	cp.compiled[key] = bin
	cp.mu.Unlock()
	return bin.Clone(), nil
}

// Precompile validates and compiles for every architecture in Targets,
// warming the registry (the "validate and compile each extension once,
// deploy anywhere on demand" workflow of §3.2).
func (cp *ControlPlane) Precompile(e *ext.Extension, targets ...native.Arch) error {
	if len(targets) == 0 {
		targets = []native.Arch{native.ArchX64, native.ArchA64}
	}
	for _, arch := range targets {
		if _, err := cp.JITCompileCode(e, arch); err != nil {
			return fmt.Errorf("core: precompile %v: %w", arch, err)
		}
	}
	return nil
}

// Report carries the per-stage timings of one RDX injection (Fig 4b's
// right-hand bars). Validate/Compile are zero on registry hits.
type Report struct {
	Validate time.Duration
	Compile  time.Duration
	Link     time.Duration
	Alloc    time.Duration // remote FETCH_ADD allocations + XState setup
	Write    time.Duration // one-sided code WRITE
	Commit   time.Duration // CAS pointer flip (+ cc_event)
	Total    time.Duration
	CacheHit bool
	Version  uint64
	Blob     uint64
}
