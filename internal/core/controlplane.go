// Package core implements RDX's contribution: the CodeFlow abstraction and
// its remote control plane (Table 1 of the paper).
//
// A ControlPlane is the centralized authority that replaces every per-node
// agent. It validates extension IR once, JIT-compiles it once per target
// architecture into relocatable binaries (cached by content digest), and
// deploys them to any number of data-plane nodes through one-sided RDMA
// verbs — allocation via remote FETCH_ADD on the node's bump pointers, code
// injection via WRITE, publication via CAS of the hook dispatch pointer,
// and cache exposure via WRITE_WITH_IMM doorbells. No code on the target
// node's CPUs participates in any of it.
package core

import (
	"fmt"
	"sync"
	"time"

	"rdx/internal/artifact"
	"rdx/internal/ext"
	"rdx/internal/native"
	"rdx/internal/pipeline"
	"rdx/internal/rdma"
	"rdx/internal/telemetry"
)

// ControlPlane is the remote control plane: validation, the
// compile-once/deploy-anywhere registry, and CodeFlow creation.
type ControlPlane struct {
	mu sync.Mutex

	// artifacts is the content-addressed store behind ValidateCode and
	// JITCompileCode: bounded LRUs of validation facts and compiled
	// binaries with cross-job single-flight, so any number of concurrent
	// jobs over one digest validate once and compile once per arch.
	artifacts *artifact.Cache

	// Stats counts registry effectiveness (ablation: disable the cache).
	Stats RegistryStats
	// DisableCache forces re-validation and re-compilation on every call
	// (the "no registry" ablation).
	DisableCache bool

	// DisableDelta forces full-image staging even when a standby blob could
	// absorb a page-granular delta (the "no delta" ablation).
	DisableDelta bool
	// DeltaPageSize is the delta granularity in bytes (default
	// artifact.DefaultPageSize).
	DeltaPageSize int
	// DeltaMaxRatio is the fallback-to-full threshold: a delta whose bytes
	// exceed this fraction of the full image is not worth the scatter
	// chain, so the stage writes the full image instead. Default 0.5.
	DeltaMaxRatio float64

	// versions tracks, per (node, hook), the digest/version/blob the
	// control plane most recently published there — the deployed-version
	// map that delta staging diffs against and the race tests assert
	// last-writer-wins on.
	versMu   sync.Mutex
	versions map[verKey]DeployedVersion

	policy   *AccessPolicy
	auditLog []auditEntry

	// Registry holds every instrument of this control plane's fleet: the
	// scheduler's "pipeline.*" series and the wire layer's "rdma.qp.*"
	// series, snapshot together by Registry.Snapshot / the rdxd /metrics
	// endpoint.
	Registry *telemetry.Registry
	// Tracer records per-trace spans across layers (pipeline stages, wire
	// verbs, endpoint service) in a bounded ring.
	Tracer *telemetry.TraceRecorder
	// wire is the fleet-shared wire instrument set handed to every QP the
	// control plane binds; instruments live in the Registry, so per-node QP
	// regenerations behind a ReconnQP keep accumulating into the same series.
	wire *rdma.WireMetrics

	// sched is the lazily created injection scheduler (see Scheduler).
	schedOnce sync.Once
	sched     *pipeline.Scheduler

	// ha holds the replication hooks (ha.go): the leadership fence checked
	// before every dispatch CAS and the deployment-journal sink. Both are
	// nil on a standalone controller.
	ha haState
}

type verKey struct {
	node string
	hook string
}

// DeployedVersion is one entry of the control plane's deployed-version map.
type DeployedVersion struct {
	Digest  string
	Version uint64
	Blob    uint64
}

// RegistryStats counts cache behavior.
type RegistryStats struct {
	ValidateHits   uint64
	ValidateMisses uint64
	CompileHits    uint64
	CompileMisses  uint64
}

// NewControlPlane creates an empty control plane.
func NewControlPlane() *ControlPlane {
	return NewControlPlaneWith(nil, nil)
}

// Artifacts exposes the content-addressed artifact store (test and
// diagnostic surface; injection paths reach it through ValidateCode /
// JITCompileCode).
func (cp *ControlPlane) Artifacts() *artifact.Cache { return cp.artifacts }

// ValidateCode is rdx_validate_code: run the extension's validator on the
// control plane (not on any data-plane node), memoized by digest in the
// artifact store.
func (cp *ControlPlane) ValidateCode(e *ext.Extension) (ext.Info, error) {
	if cp.DisableCache {
		cp.mu.Lock()
		cp.Stats.ValidateMisses++
		cp.mu.Unlock()
		cp.artifacts.CountValidate()
		return e.Validate()
	}
	info, hit, err := cp.artifacts.Validate(e.Digest(), e.Validate)
	cp.mu.Lock()
	if hit {
		cp.Stats.ValidateHits++
	} else {
		cp.Stats.ValidateMisses++
	}
	cp.mu.Unlock()
	// Only actual validator runs are journaled: replaying a hit would make
	// the standby's replayed intent log diverge from the work done.
	if !hit && err == nil {
		if j := cp.journal(); j != nil {
			j.JournalValidate(e.Digest())
		}
	}
	return info, err
}

// JITCompileCode is rdx_JIT_compile_code: cross-architecture compilation on
// the control plane, producing an instrumented relocatable binary. Results
// live in the artifact store keyed by (digest, arch); callers receive
// clones because linking mutates code. Concurrent first-time compiles of
// one key are single-flight: one build, shared result.
func (cp *ControlPlane) JITCompileCode(e *ext.Extension, arch native.Arch) (*native.Binary, error) {
	if cp.DisableCache {
		cp.mu.Lock()
		cp.Stats.CompileMisses++
		cp.mu.Unlock()
		// Validation gates compilation, as in the kernel pipeline.
		if _, err := cp.ValidateCode(e); err != nil {
			return nil, err
		}
		cp.artifacts.CountCompile()
		return e.Compile(arch)
	}
	art, hit, err := cp.artifacts.GetOrBuild(
		artifact.Key{Digest: e.Digest(), Arch: arch},
		func() (ext.Info, *native.Binary, error) {
			info, err := cp.ValidateCode(e)
			if err != nil {
				return ext.Info{}, nil, err
			}
			bin, err := e.Compile(arch)
			return info, bin, err
		},
	)
	if err != nil {
		return nil, err
	}
	cp.mu.Lock()
	if hit {
		cp.Stats.CompileHits++
	} else {
		cp.Stats.CompileMisses++
	}
	cp.mu.Unlock()
	if !hit {
		if j := cp.journal(); j != nil {
			j.JournalCompile(e.Digest(), arch)
		}
	}
	return art.Binary(), nil
}

// compiledHit reports whether (digest, arch) is already resident, without
// touching recency or stats (Report.CacheHit classification).
func (cp *ControlPlane) compiledHit(digest string, arch native.Arch) bool {
	if cp.DisableCache {
		return false
	}
	_, ok := cp.artifacts.Peek(artifact.Key{Digest: digest, Arch: arch})
	return ok
}

// DeployedVersion returns what the control plane last published on (node,
// hook), if anything.
func (cp *ControlPlane) DeployedVersion(nodeKey, hook string) (DeployedVersion, bool) {
	cp.versMu.Lock()
	defer cp.versMu.Unlock()
	dv, ok := cp.versions[verKey{nodeKey, hook}]
	return dv, ok
}

// recordDeployed updates the deployed-version map. Versions come from the
// node's epoch FETCH_ADD, so they totally order publishes per node; the
// guard makes concurrent publishes converge on the highest version —
// last-writer-wins by epoch, regardless of the order their recordings race
// in. force (rollback) overrides the guard: reverting to an older version
// is the caller's explicit intent.
func (cp *ControlPlane) recordDeployed(nodeKey, hook string, dv DeployedVersion, force bool) {
	cp.versMu.Lock()
	defer cp.versMu.Unlock()
	k := verKey{nodeKey, hook}
	if cur, ok := cp.versions[k]; ok && !force && cur.Version > dv.Version {
		return
	}
	cp.versions[k] = dv
}

// deltaPageSize / deltaMaxRatio resolve the delta knobs with defaults.
func (cp *ControlPlane) deltaPageSize() int {
	if cp.DeltaPageSize > 0 {
		return cp.DeltaPageSize
	}
	return artifact.DefaultPageSize
}

func (cp *ControlPlane) deltaMaxRatio() float64 {
	if cp.DeltaMaxRatio > 0 {
		return cp.DeltaMaxRatio
	}
	return 0.5
}

// Precompile validates and compiles for every architecture in Targets,
// warming the registry (the "validate and compile each extension once,
// deploy anywhere on demand" workflow of §3.2).
func (cp *ControlPlane) Precompile(e *ext.Extension, targets ...native.Arch) error {
	if len(targets) == 0 {
		targets = []native.Arch{native.ArchX64, native.ArchA64}
	}
	for _, arch := range targets {
		if _, err := cp.JITCompileCode(e, arch); err != nil {
			return fmt.Errorf("core: precompile %v: %w", arch, err)
		}
	}
	return nil
}

// Report carries the per-stage timings of one RDX injection (Fig 4b's
// right-hand bars). Validate/Compile are zero on registry hits.
type Report struct {
	Validate time.Duration
	Compile  time.Duration
	Link     time.Duration
	Alloc    time.Duration // remote FETCH_ADD allocations + XState setup
	Write    time.Duration // one-sided code WRITE
	Commit   time.Duration // CAS pointer flip (+ cc_event)
	Total    time.Duration
	CacheHit bool
	Version  uint64
	Blob     uint64
}
