package wasm

import "encoding/binary"

// Body incrementally builds function bytecode. It is the programmatic
// equivalent of a .wat assembler for the RDXW container, used by tests,
// examples, and the cluster workload generators.
type Body struct{ b []byte }

// NewBody starts an empty body.
func NewBody() *Body { return &Body{} }

// Bytes returns the encoded body.
func (x *Body) Bytes() []byte { return x.b }

func (x *Body) op(op uint8) *Body { x.b = append(x.b, op); return x }

func (x *Body) u32(v uint32) *Body {
	x.b = binary.LittleEndian.AppendUint32(x.b, v)
	return x
}

// Nop appends nop.
func (x *Body) Nop() *Body { return x.op(OpNop) }

// Unreachable appends unreachable.
func (x *Body) Unreachable() *Body { return x.op(OpUnreachable) }

// Block opens a block with result type bt (BlockEmpty, I32, or I64).
func (x *Body) Block(bt uint8) *Body { x.op(OpBlock); x.b = append(x.b, bt); return x }

// Loop opens a loop.
func (x *Body) Loop(bt uint8) *Body { x.op(OpLoop); x.b = append(x.b, bt); return x }

// If opens an if.
func (x *Body) If(bt uint8) *Body { x.op(OpIf); x.b = append(x.b, bt); return x }

// Else switches to the else branch.
func (x *Body) Else() *Body { return x.op(OpElse) }

// End closes the innermost frame (or the function).
func (x *Body) End() *Body { return x.op(OpEnd) }

// Br branches to the frame at depth.
func (x *Body) Br(depth uint32) *Body { return x.op(OpBr).u32(depth) }

// BrIf conditionally branches.
func (x *Body) BrIf(depth uint32) *Body { return x.op(OpBrIf).u32(depth) }

// Return returns the function result.
func (x *Body) Return() *Body { return x.op(OpReturn) }

// Call invokes function index fi.
func (x *Body) Call(fi uint32) *Body { return x.op(OpCall).u32(fi) }

// Drop pops and discards.
func (x *Body) Drop() *Body { return x.op(OpDrop) }

// Select picks between two values by an i32 condition.
func (x *Body) Select() *Body { return x.op(OpSelect) }

// LocalGet pushes local idx.
func (x *Body) LocalGet(idx uint32) *Body { return x.op(OpLocalGet).u32(idx) }

// LocalSet pops into local idx.
func (x *Body) LocalSet(idx uint32) *Body { return x.op(OpLocalSet).u32(idx) }

// LocalTee stores the top of stack into local idx without popping.
func (x *Body) LocalTee(idx uint32) *Body { return x.op(OpLocalTee).u32(idx) }

// GlobalGet pushes global idx.
func (x *Body) GlobalGet(idx uint32) *Body { return x.op(OpGlobalGet).u32(idx) }

// GlobalSet pops into global idx.
func (x *Body) GlobalSet(idx uint32) *Body { return x.op(OpGlobalSet).u32(idx) }

// I32Load loads i32 from linear memory at popped address + offset.
func (x *Body) I32Load(offset uint32) *Body { return x.op(OpI32Load).u32(offset) }

// I64Load loads i64.
func (x *Body) I64Load(offset uint32) *Body { return x.op(OpI64Load).u32(offset) }

// I32Store stores i32.
func (x *Body) I32Store(offset uint32) *Body { return x.op(OpI32Store).u32(offset) }

// I64Store stores i64.
func (x *Body) I64Store(offset uint32) *Body { return x.op(OpI64Store).u32(offset) }

// I32Const pushes an i32 constant.
func (x *Body) I32Const(v int32) *Body { return x.op(OpI32Const).u32(uint32(v)) }

// I64Const pushes an i64 constant.
func (x *Body) I64Const(v int64) *Body {
	x.op(OpI64Const)
	x.b = binary.LittleEndian.AppendUint64(x.b, uint64(v))
	return x
}

// Raw appends a raw opcode (for the pure value operations).
func (x *Body) Raw(op uint8) *Body { return x.op(op) }

// SimpleFilter builds a module with one ()->i64 function, the given locals,
// memory pages, and body — the common test/workload shape.
func SimpleFilter(name string, memPages uint32, locals []ValType, body []byte) *Module {
	return &Module{
		Name:     name,
		Types:    []FuncType{{Results: []ValType{I64}}},
		Funcs:    []Func{{Type: 0, Locals: locals, Body: body}},
		MemPages: memPages,
		Exports:  map[string]uint32{EntryExport: 0},
	}
}

// FilterWithImports builds a module importing the named host functions
// (appending their types), entry at index len(imports).
func FilterWithImports(name string, memPages uint32, imports []Import, extraTypes []FuncType, locals []ValType, body []byte) *Module {
	types := append([]FuncType{{Results: []ValType{I64}}}, extraTypes...)
	return &Module{
		Name:     name,
		Types:    types,
		Imports:  imports,
		Funcs:    []Func{{Type: 0, Locals: locals, Body: body}},
		MemPages: memPages,
		Exports:  map[string]uint32{EntryExport: uint32(len(imports))},
	}
}
