package wasm

import (
	"errors"
	"strings"
	"testing"

	"rdx/internal/ebpf/vm"
	"rdx/internal/native"
	"rdx/internal/xabi"
)

// runBoth validates, interprets, compiles for both arches, links, and runs —
// asserting all three engines agree. Returns the interpreter result.
func runBoth(t *testing.T, m *Module, env *xabi.Env, ctx []byte) uint64 {
	t.Helper()
	if _, err := Validate(m); err != nil {
		t.Fatalf("validate: %v", err)
	}

	mkEnv := func() *xabi.Env {
		if env == nil {
			return &xabi.Env{}
		}
		cp := *env
		return &cp
	}

	inst, err := NewLocalInstance(m)
	if err != nil {
		t.Fatal(err)
	}
	ctxI := append([]byte(nil), ctx...)
	want, err := inst.Run(mkEnv(), ctxI)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}

	for _, arch := range []native.Arch{native.ArchX64, native.ArchA64} {
		bin, err := Compile(m, arch)
		if err != nil {
			t.Fatalf("%v: compile: %v", arch, err)
		}
		inst2, err := NewLocalInstance(m)
		if err != nil {
			t.Fatal(err)
		}
		helpers := map[uint64]xabi.HelperFn{}
		next := uint64(0xEE00_0000)
		err = native.Link(bin, func(kind native.RelocKind, sym string) (uint64, bool) {
			switch {
			case kind == native.RelocGlobal && sym == SymMemory:
				return inst2.MemBase, true
			case kind == native.RelocGlobal && sym == SymGlobals:
				return inst2.GlobBase, true
			case kind == native.RelocHelper:
				next += 0x10
				name := strings.TrimPrefix(sym, "helper:")
				id, ok := HostFuncIDs[name]
				if !ok {
					return 0, false
				}
				helpers[next] = vm.DefaultHelpers()[int32(id)]
				return next, true
			}
			return 0, false
		})
		if err != nil {
			t.Fatalf("%v: link: %v", arch, err)
		}
		np, err := native.DecodeProgram(bin.Arch, bin.Code)
		if err != nil {
			t.Fatalf("%v: decode: %v", arch, err)
		}
		e := &native.Engine{HelperAddrs: helpers}
		runEnv := mkEnv()
		runEnv.Mem = inst2.Mem
		// The filter ABI: ctx lands in linear memory at offset 0.
		ctxN := append([]byte(nil), ctx...)
		if m.MemPages > 0 && len(ctxN) > 0 {
			if err := inst2.Mem.WriteBytes(inst2.MemBase, ctxN); err != nil {
				t.Fatal(err)
			}
		}
		got, err := e.Run(np, runEnv, nil)
		if err != nil {
			t.Fatalf("%v: run: %v", arch, err)
		}
		if got != want {
			t.Errorf("%v: compiled = %#x, interpreted = %#x", arch, got, want)
		}
		if m.MemPages > 0 && len(ctxN) > 0 {
			back, _ := inst2.Mem.ReadBytes(inst2.MemBase, len(ctxN))
			ctxIView := ctxI
			for i := range back {
				if back[i] != ctxIView[i] {
					t.Errorf("%v: memory side effects differ at %d: %d vs %d", arch, i, back[i], ctxIView[i])
					break
				}
			}
		}
	}
	copy(ctx, ctxI)
	return want
}

func TestConstReturn(t *testing.T) {
	m := SimpleFilter("c", 0, nil, NewBody().I64Const(42).End().Bytes())
	if got := runBoth(t, m, nil, nil); got != 42 {
		t.Errorf("got %d", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := FilterWithImports("rt", 2,
		[]Import{{Name: "clock_now", Type: 1}},
		[]FuncType{{Results: []ValType{I64}}},
		[]ValType{I64, I32},
		NewBody().I64Const(1).End().Bytes())
	m.Globals = []Global{{Type: I64, Init: -5}, {Type: I32, Init: 7}}

	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "rt" || got.MemPages != 2 || len(got.Types) != 2 ||
		len(got.Imports) != 1 || len(got.Funcs) != 1 || len(got.Globals) != 2 {
		t.Fatalf("decoded shape: %+v", got)
	}
	if got.Imports[0].Name != "clock_now" {
		t.Error("import name lost")
	}
	if got.Globals[0].Init != -5 {
		t.Error("global init lost")
	}
	if got.Exports[EntryExport] != 1 {
		t.Error("export lost")
	}
	if string(got.Funcs[0].Body) != string(m.Funcs[0].Body) {
		t.Error("body lost")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not a module")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("empty accepted")
	}
	enc := Encode(SimpleFilter("x", 0, nil, NewBody().I64Const(1).End().Bytes()))
	if _, err := Decode(enc[:len(enc)-3]); err == nil {
		t.Error("truncated accepted")
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		name string
		body *Body
		want uint64
	}{
		{"add", NewBody().I64Const(40).I64Const(2).Raw(OpI64Add), 42},
		{"sub", NewBody().I64Const(40).I64Const(2).Raw(OpI64Sub), 38},
		{"mul", NewBody().I64Const(6).I64Const(7).Raw(OpI64Mul), 42},
		{"divs", NewBody().I64Const(-84).I64Const(2).Raw(OpI64DivS), uint64(0xFFFFFFFFFFFFFFD6)}, // -42
		{"divu", NewBody().I64Const(84).I64Const(2).Raw(OpI64DivU), 42},
		{"div0", NewBody().I64Const(84).I64Const(0).Raw(OpI64DivU), 0},
		{"divs0", NewBody().I64Const(84).I64Const(0).Raw(OpI64DivS), 0},
		{"rem", NewBody().I64Const(85).I64Const(2).Raw(OpI64RemU), 1},
		{"and", NewBody().I64Const(0b1100).I64Const(0b1010).Raw(OpI64And), 0b1000},
		{"shl", NewBody().I64Const(1).I64Const(5).Raw(OpI64Shl), 32},
		{"shrs", NewBody().I64Const(-32).I64Const(2).Raw(OpI64ShrS), uint64(0xFFFFFFFFFFFFFFF8)},
		{"xor", NewBody().I64Const(5).I64Const(3).Raw(OpI64Xor), 6},
	}
	for _, c := range cases {
		m := SimpleFilter(c.name, 0, nil, c.body.End().Bytes())
		if got := runBoth(t, m, nil, nil); got != c.want {
			t.Errorf("%s = %#x, want %#x", c.name, got, c.want)
		}
	}
}

func TestI32Semantics(t *testing.T) {
	// i32 ops truncate and comparisons are width-correct.
	cases := []struct {
		name string
		body *Body
		want uint64
	}{
		{"wrap-add", NewBody().I32Const(-1).I32Const(1).Raw(OpI32Add).Raw(OpI64ExtendI32), 0},
		{"lt_s", NewBody().I32Const(-1).I32Const(1).Raw(OpI32LtS).Raw(OpI64ExtendI32), 1},
		{"lt_u", NewBody().I32Const(-1).I32Const(1).Raw(OpI32LtU).Raw(OpI64ExtendI32), 0},
		{"div_s", NewBody().I32Const(-6).I32Const(3).Raw(OpI32DivS).Raw(OpI64ExtendI32), uint64(uint32(0xFFFFFFFE))},
		{"div_s_min", NewBody().I32Const(-0x80000000).I32Const(-1).Raw(OpI32DivS).Raw(OpI64ExtendI32), 0x80000000},
		{"shr_s", NewBody().I32Const(-8).I32Const(1).Raw(OpI32ShrS).Raw(OpI64ExtendI32), uint64(uint32(0xFFFFFFFC))},
		{"wrap64", NewBody().I64Const(0x1_0000_0005).Raw(OpI32WrapI64).Raw(OpI64ExtendI32), 5},
		{"eqz", NewBody().I32Const(0).Raw(OpI32Eqz).Raw(OpI64ExtendI32), 1},
	}
	for _, c := range cases {
		m := SimpleFilter(c.name, 0, nil, c.body.End().Bytes())
		if got := runBoth(t, m, nil, nil); got != c.want {
			t.Errorf("%s = %#x, want %#x", c.name, got, c.want)
		}
	}
}

func TestLocals(t *testing.T) {
	body := NewBody().
		I64Const(10).LocalSet(0).
		I64Const(32).LocalSet(1).
		LocalGet(0).LocalGet(1).Raw(OpI64Add).
		LocalTee(0).Drop().
		LocalGet(0).
		End().Bytes()
	m := SimpleFilter("locals", 0, []ValType{I64, I64}, body)
	if got := runBoth(t, m, nil, nil); got != 42 {
		t.Errorf("got %d", got)
	}
}

func TestGlobals(t *testing.T) {
	body := NewBody().
		GlobalGet(0).I64Const(2).Raw(OpI64Mul).GlobalSet(0).
		GlobalGet(0).
		End().Bytes()
	m := SimpleFilter("globals", 0, nil, body)
	m.Globals = []Global{{Type: I64, Init: 21}}
	if got := runBoth(t, m, nil, nil); got != 42 {
		t.Errorf("got %d", got)
	}
}

func TestIfElse(t *testing.T) {
	mk := func(cond int32) *Module {
		body := NewBody().
			I32Const(cond).
			If(uint8(I64)).
			I64Const(100).
			Else().
			I64Const(200).
			End().
			End().Bytes()
		return SimpleFilter("if", 0, nil, body)
	}
	if got := runBoth(t, mk(1), nil, nil); got != 100 {
		t.Errorf("then branch: %d", got)
	}
	if got := runBoth(t, mk(0), nil, nil); got != 200 {
		t.Errorf("else branch: %d", got)
	}
}

func TestIfWithoutElse(t *testing.T) {
	mk := func(cond int32) *Module {
		body := NewBody().
			I64Const(1).LocalSet(0).
			I32Const(cond).
			If(BlockEmpty).
			I64Const(99).LocalSet(0).
			End().
			LocalGet(0).
			End().Bytes()
		return SimpleFilter("ifne", 0, []ValType{I64}, body)
	}
	if got := runBoth(t, mk(1), nil, nil); got != 99 {
		t.Errorf("taken: %d", got)
	}
	if got := runBoth(t, mk(0), nil, nil); got != 1 {
		t.Errorf("skipped: %d", got)
	}
}

func TestLoopSum(t *testing.T) {
	// sum = 0; i = 10; loop { sum += i; i -= 1; br_if i != 0 } → 55
	body := NewBody().
		I64Const(10).LocalSet(0).
		I64Const(0).LocalSet(1).
		Loop(BlockEmpty).
		LocalGet(1).LocalGet(0).Raw(OpI64Add).LocalSet(1).
		LocalGet(0).I64Const(1).Raw(OpI64Sub).LocalTee(0).Drop().
		LocalGet(0).I64Const(0).Raw(OpI64Ne).
		BrIf(0).
		End().
		LocalGet(1).
		End().Bytes()
	m := SimpleFilter("loop", 0, []ValType{I64, I64}, body)
	if got := runBoth(t, m, nil, nil); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestBlockBrOut(t *testing.T) {
	// block(i64) { 7; br 0; unreachable } → 7
	body := NewBody().
		Block(uint8(I64)).
		I64Const(7).
		Br(0).
		End().
		End().Bytes()
	m := SimpleFilter("br", 0, nil, body)
	if got := runBoth(t, m, nil, nil); got != 7 {
		t.Errorf("got %d", got)
	}
}

func TestNestedBr(t *testing.T) {
	// Outer block with result; br 1 from inside inner block.
	body := NewBody().
		Block(uint8(I64)).
		Block(BlockEmpty).
		I64Const(13).
		Br(1).
		End().
		I64Const(99). // only if inner falls through (it doesn't)
		End().
		End().Bytes()
	m := SimpleFilter("nested", 0, nil, body)
	if got := runBoth(t, m, nil, nil); got != 13 {
		t.Errorf("got %d", got)
	}
}

func TestMemoryLoadStore(t *testing.T) {
	body := NewBody().
		I32Const(512).I64Const(0xABCDEF).I64Store(0).
		I32Const(512).I64Load(0).
		End().Bytes()
	m := SimpleFilter("mem", 1, nil, body)
	if got := runBoth(t, m, nil, nil); got != 0xABCDEF {
		t.Errorf("got %#x", got)
	}
}

func TestCtxABI(t *testing.T) {
	// Read the data-length field from the ctx copied into memory[0..256),
	// write a verdict, return the length.
	body := NewBody().
		I32Const(int32(xabi.CtxOffVerdict)).I32Const(2).I32Store(0).
		I32Const(int32(xabi.CtxOffDataLen)).I32Load(0).Raw(OpI64ExtendI32).
		End().Bytes()
	m := SimpleFilter("ctx", 1, nil, body)
	ctx := make([]byte, xabi.CtxSize)
	ctx[xabi.CtxOffDataLen] = 77
	got := runBoth(t, m, nil, ctx)
	if got != 77 {
		t.Errorf("got %d", got)
	}
	if ctx[xabi.CtxOffVerdict] != 2 {
		t.Errorf("verdict = %d (ctx write-back)", ctx[xabi.CtxOffVerdict])
	}
}

func TestHostCall(t *testing.T) {
	m := FilterWithImports("host", 0,
		[]Import{{Name: "clock_now", Type: 1}},
		[]FuncType{{Results: []ValType{I64}}},
		nil,
		NewBody().Call(0).End().Bytes())
	env := &xabi.Env{NowNS: func() uint64 { return 31415 }}
	if got := runBoth(t, m, env, nil); got != 31415 {
		t.Errorf("got %d", got)
	}
}

func TestHostCallWithArgs(t *testing.T) {
	// proxy_get_header(4) looks up "x-rdx-version".
	m := FilterWithImports("hdr", 0,
		[]Import{{Name: "proxy_get_header", Type: 1}},
		[]FuncType{{Params: []ValType{I64}, Results: []ValType{I64}}},
		nil,
		NewBody().I64Const(4).Call(0).End().Bytes())
	env := &xabi.Env{Headers: map[string]string{"x-rdx-version": "v7"}}
	got := runBoth(t, m, env, nil)
	if got == 0 {
		t.Error("header lookup returned 0")
	}
}

func TestSelect(t *testing.T) {
	mk := func(c int32) *Module {
		body := NewBody().
			I64Const(111).I64Const(222).I32Const(c).Select().
			End().Bytes()
		return SimpleFilter("sel", 0, nil, body)
	}
	if got := runBoth(t, mk(1), nil, nil); got != 111 {
		t.Errorf("select true: %d", got)
	}
	if got := runBoth(t, mk(0), nil, nil); got != 222 {
		t.Errorf("select false: %d", got)
	}
}

func TestReturnEarly(t *testing.T) {
	body := NewBody().
		I64Const(5).
		Return().
		End().Bytes()
	m := SimpleFilter("ret", 0, nil, body)
	if got := runBoth(t, m, nil, nil); got != 5 {
		t.Errorf("got %d", got)
	}
}

func TestValidationRejections(t *testing.T) {
	cases := []struct {
		name string
		m    *Module
		want string
	}{
		{"no export", &Module{Types: []FuncType{{Results: []ValType{I64}}}, Funcs: []Func{{Body: NewBody().I64Const(1).End().Bytes()}}, Exports: map[string]uint32{}}, "missing"},
		{"bad sig", func() *Module {
			m := SimpleFilter("x", 0, nil, NewBody().I32Const(1).End().Bytes())
			m.Types[0] = FuncType{Results: []ValType{I32}}
			return m
		}(), "signature"},
		{"type mismatch", SimpleFilter("x", 0, nil, NewBody().I32Const(1).End().Bytes()), "want i64"},
		{"underflow", SimpleFilter("x", 0, nil, NewBody().Raw(OpI64Add).End().Bytes()), "underflow"},
		{"bad local", SimpleFilter("x", 0, nil, NewBody().LocalGet(3).End().Bytes()), "local 3"},
		{"bad global", SimpleFilter("x", 0, nil, NewBody().GlobalGet(0).Drop().I64Const(1).End().Bytes()), "global 0"},
		{"mem without pages", SimpleFilter("x", 0, nil, NewBody().I32Const(0).I32Load(0).Drop().I64Const(1).End().Bytes()), "without declared memory"},
		{"bad br depth", SimpleFilter("x", 0, nil, NewBody().Br(5).End().Bytes()), "br depth"},
		{"unbalanced", SimpleFilter("x", 0, nil, NewBody().Block(BlockEmpty).I64Const(1).End().Bytes()), "stack height"},
		{"unknown import", FilterWithImports("x", 0, []Import{{Name: "evil_syscall", Type: 0}}, nil, nil, NewBody().I64Const(1).End().Bytes()), "unknown host import"},
		{"two funcs", &Module{
			Types:   []FuncType{{Results: []ValType{I64}}},
			Funcs:   []Func{{Body: NewBody().I64Const(1).End().Bytes()}, {Body: NewBody().I64Const(1).End().Bytes()}},
			Exports: map[string]uint32{EntryExport: 0},
		}, "exactly 1"},
		{"if needs else", SimpleFilter("x", 0, nil, NewBody().I32Const(1).If(uint8(I64)).I64Const(1).End().End().Bytes()), "requires else"},
		{"too many pages", SimpleFilter("x", MaxMemPages+1, nil, NewBody().I64Const(1).End().Bytes()), "pages"},
	}
	for _, c := range cases {
		_, err := Validate(c.m)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.want)
		}
	}
}

func TestFrameLimitEnforced(t *testing.T) {
	// 60 locals exceeds the 56-slot frame budget.
	locals := make([]ValType, 60)
	for i := range locals {
		locals[i] = I64
	}
	m := SimpleFilter("big", 0, locals, NewBody().I64Const(1).End().Bytes())
	if _, err := Validate(m); err == nil || !strings.Contains(err.Error(), "slots") {
		t.Errorf("err = %v", err)
	}
}

func TestUnreachableTraps(t *testing.T) {
	m := SimpleFilter("trap", 0, nil, NewBody().Unreachable().End().Bytes())
	if _, err := Validate(m); err != nil {
		t.Fatal(err)
	}
	inst, _ := NewLocalInstance(m)
	if _, err := inst.Run(nil, nil); !errors.Is(err, ErrTrap) {
		t.Errorf("interp err = %v", err)
	}
	bin, err := Compile(m, native.ArchX64)
	if err != nil {
		t.Fatal(err)
	}
	np, _ := native.DecodeProgram(bin.Arch, bin.Code)
	if _, err := (&native.Engine{}).Run(np, &xabi.Env{}, nil); err == nil {
		t.Error("compiled unreachable did not trap")
	}
}

func TestInterpreterFuel(t *testing.T) {
	// Infinite loop must exhaust fuel.
	body := NewBody().
		Loop(BlockEmpty).
		Br(0).
		End().
		I64Const(1).
		End().Bytes()
	m := SimpleFilter("spin", 0, nil, body)
	inst, _ := NewLocalInstance(m)
	inst.Fuel = 1000
	if _, err := inst.Run(nil, nil); !errors.Is(err, ErrFuel) {
		t.Errorf("err = %v", err)
	}
	// Compiled version hits engine fuel too.
	bin, err := Compile(m, native.ArchA64)
	if err != nil {
		t.Fatal(err)
	}
	np, _ := native.DecodeProgram(bin.Arch, bin.Code)
	e := &native.Engine{Fuel: 1000}
	if _, err := e.Run(np, &xabi.Env{}, nil); !errors.Is(err, native.ErrFuel) {
		t.Errorf("compiled err = %v", err)
	}
}

func TestMemoryOOBTraps(t *testing.T) {
	body := NewBody().
		I32Const(PageSize - 2).I64Load(0). // straddles page end
		End().Bytes()
	m := SimpleFilter("oob", 1, nil, body)
	inst, _ := NewLocalInstance(m)
	if _, err := inst.Run(nil, nil); !errors.Is(err, ErrTrap) {
		t.Errorf("err = %v", err)
	}
}

func TestDigestStable(t *testing.T) {
	a := SimpleFilter("d", 1, nil, NewBody().I64Const(1).End().Bytes())
	b := SimpleFilter("d", 1, nil, NewBody().I64Const(1).End().Bytes())
	if Digest(a) != Digest(b) {
		t.Error("identical modules, different digests")
	}
	c := SimpleFilter("d", 1, nil, NewBody().I64Const(2).End().Bytes())
	if Digest(a) == Digest(c) {
		t.Error("different modules, same digest")
	}
}

func TestRateLimiterFilter(t *testing.T) {
	// A realistic mesh filter: count requests in a global; return Pass
	// until the count exceeds 3, then Drop.
	body := NewBody().
		GlobalGet(0).I64Const(1).Raw(OpI64Add).GlobalSet(0).
		GlobalGet(0).I64Const(3).Raw(OpI64GtS).
		If(uint8(I64)).
		I64Const(int64(xabi.VerdictDrop)).
		Else().
		I64Const(int64(xabi.VerdictPass)).
		End().
		End().Bytes()
	m := SimpleFilter("ratelimit", 0, nil, body)
	m.Globals = []Global{{Type: I64, Init: 0}}
	if _, err := Validate(m); err != nil {
		t.Fatal(err)
	}
	inst, _ := NewLocalInstance(m)
	var verdicts []uint64
	for i := 0; i < 5; i++ {
		v, err := inst.Run(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		verdicts = append(verdicts, v)
	}
	want := []uint64{xabi.VerdictPass, xabi.VerdictPass, xabi.VerdictPass, xabi.VerdictDrop, xabi.VerdictDrop}
	for i := range want {
		if verdicts[i] != want[i] {
			t.Errorf("request %d: verdict %d, want %d", i, verdicts[i], want[i])
		}
	}
}
