package wasm

import (
	"encoding/binary"
	"fmt"

	"rdx/internal/xabi"
)

// EntryExport is the export name every filter module must provide.
const EntryExport = "filter"

// MaxStackSlots bounds locals + operand stack so compiled filters fit the
// 512-byte native stack frame (64 slots, minus scratch margin).
const MaxStackSlots = 56

// ValidationResult carries facts proved about a module.
type ValidationResult struct {
	EntryIndex  uint32 // function index (import space) of the filter entry
	MaxStack    int    // operand-stack high-water mark, in slots
	Locals      int    // params + declared locals of the entry function
	UsesMemory  bool
	HostImports []string
	BodyOps     int
}

// filterSig is the required entry signature: () -> i64 verdict.
var filterSig = FuncType{Results: []ValType{I64}}

// Validate type-checks the module and enforces the RDX filter ABI:
// exactly one local function, exported as "filter" with signature ()->i64;
// host imports only; structured, type-correct control flow; memory and
// global indexes in range; frame small enough to compile.
func Validate(m *Module) (*ValidationResult, error) {
	if len(m.Types) == 0 {
		return nil, fmt.Errorf("wasm: module has no types")
	}
	if len(m.Funcs) != 1 {
		return nil, fmt.Errorf("wasm: filter modules must define exactly 1 function, got %d", len(m.Funcs))
	}
	if m.MemPages > MaxMemPages {
		return nil, fmt.Errorf("wasm: %d memory pages exceed limit %d", m.MemPages, MaxMemPages)
	}
	for i, im := range m.Imports {
		if int(im.Type) >= len(m.Types) {
			return nil, fmt.Errorf("wasm: import %d type index %d out of range", i, im.Type)
		}
		if _, ok := HostFuncIDs[im.Name]; !ok {
			return nil, fmt.Errorf("wasm: unknown host import %q", im.Name)
		}
	}
	entry, ok := m.Exports[EntryExport]
	if !ok {
		return nil, fmt.Errorf("wasm: missing %q export", EntryExport)
	}
	if entry != m.NumImports() {
		return nil, fmt.Errorf("wasm: %q export must reference the module function", EntryExport)
	}
	ft, err := m.FuncTypeAt(entry)
	if err != nil {
		return nil, err
	}
	if !ft.Equal(filterSig) {
		return nil, fmt.Errorf("wasm: %q must have signature ()->i64, got %v", EntryExport, ft)
	}

	f := &m.Funcs[0]
	res := &ValidationResult{EntryIndex: entry}
	for _, im := range m.Imports {
		res.HostImports = append(res.HostImports, im.Name)
	}
	locals := append([]ValType(nil), m.Types[f.Type].Params...)
	locals = append(locals, f.Locals...)
	res.Locals = len(locals)

	v := &fnValidator{m: m, locals: locals, res: res}
	if err := v.check(f.Body, filterSig.Results); err != nil {
		return nil, err
	}
	if res.Locals+res.MaxStack > MaxStackSlots {
		return nil, fmt.Errorf("wasm: frame needs %d slots, limit %d", res.Locals+res.MaxStack, MaxStackSlots)
	}
	return res, nil
}

// ctrlFrame is one entry of the control stack during validation.
type ctrlFrame struct {
	op          uint8 // OpBlock / OpLoop / OpIf / 0 for the function frame
	result      []ValType
	height      int  // value-stack height at entry
	unreachable bool // code after br/unreachable until frame end
	sawElse     bool
}

// labelTypes returns the types a br to this frame must supply: loop labels
// target the top (no values), others target the end (result values).
func (c *ctrlFrame) labelTypes() []ValType {
	if c.op == OpLoop {
		return nil
	}
	return c.result
}

type fnValidator struct {
	m      *Module
	locals []ValType
	res    *ValidationResult

	stack []ValType
	ctrl  []ctrlFrame
}

func (v *fnValidator) push(t ValType) {
	v.stack = append(v.stack, t)
	if len(v.stack) > v.res.MaxStack {
		v.res.MaxStack = len(v.stack)
	}
}

func (v *fnValidator) pop(want ValType) error {
	top := &v.ctrl[len(v.ctrl)-1]
	if len(v.stack) == top.height {
		if top.unreachable {
			return nil // polymorphic stack after unconditional transfer
		}
		return fmt.Errorf("stack underflow (want %v)", want)
	}
	got := v.stack[len(v.stack)-1]
	v.stack = v.stack[:len(v.stack)-1]
	if got != want {
		return fmt.Errorf("type mismatch: have %v, want %v", got, want)
	}
	return nil
}

func (v *fnValidator) popAny() (ValType, error) {
	top := &v.ctrl[len(v.ctrl)-1]
	if len(v.stack) == top.height {
		if top.unreachable {
			return I64, nil
		}
		return 0, fmt.Errorf("stack underflow")
	}
	got := v.stack[len(v.stack)-1]
	v.stack = v.stack[:len(v.stack)-1]
	return got, nil
}

func (v *fnValidator) markUnreachable() {
	top := &v.ctrl[len(v.ctrl)-1]
	top.unreachable = true
	v.stack = v.stack[:top.height]
}

func blockResult(bt uint8) ([]ValType, error) {
	switch bt {
	case BlockEmpty:
		return nil, nil
	case uint8(I32):
		return []ValType{I32}, nil
	case uint8(I64):
		return []ValType{I64}, nil
	default:
		return nil, fmt.Errorf("bad blocktype %#x", bt)
	}
}

// check validates a function body against the expected results.
func (v *fnValidator) check(body []byte, results []ValType) error {
	v.ctrl = []ctrlFrame{{op: 0, result: results}}
	d := &decoder{b: body}
	errAt := func(format string, args ...interface{}) error {
		return fmt.Errorf("wasm: offset %d: %s", d.lastOff, fmt.Sprintf(format, args...))
	}

	for {
		op, ok := d.op()
		if !ok {
			if len(v.ctrl) != 0 {
				return errAt("body ends inside %d open frames", len(v.ctrl))
			}
			return nil
		}
		v.res.BodyOps++
		switch op {
		case OpNop:

		case OpUnreachable:
			v.markUnreachable()

		case OpBlock, OpLoop, OpIf:
			bt, okb := d.u8()
			if !okb {
				return errAt("truncated blocktype")
			}
			result, err := blockResult(bt)
			if err != nil {
				return errAt("%v", err)
			}
			if op == OpIf {
				if err := v.pop(I32); err != nil {
					return errAt("if condition: %v", err)
				}
			}
			v.ctrl = append(v.ctrl, ctrlFrame{op: op, result: result, height: len(v.stack)})

		case OpElse:
			top := &v.ctrl[len(v.ctrl)-1]
			if top.op != OpIf || top.sawElse {
				return errAt("else without matching if")
			}
			// The then-branch must have produced the result.
			if err := v.frameExit(top); err != nil {
				return errAt("then branch: %v", err)
			}
			top.sawElse = true
			top.unreachable = false
			v.stack = v.stack[:top.height]

		case OpEnd:
			top := &v.ctrl[len(v.ctrl)-1]
			if top.op == OpIf && !top.sawElse && len(top.result) != 0 {
				return errAt("if with result requires else")
			}
			if err := v.frameExit(top); err != nil {
				return errAt("end: %v", err)
			}
			v.stack = v.stack[:top.height]
			for _, r := range top.result {
				v.push(r)
			}
			v.ctrl = v.ctrl[:len(v.ctrl)-1]
			if len(v.ctrl) == 0 {
				if d.rem() != 0 {
					return errAt("trailing bytes after function end")
				}
				return nil
			}

		case OpBr, OpBrIf:
			depth, okd := d.u32()
			if !okd {
				return errAt("truncated br depth")
			}
			if int(depth) >= len(v.ctrl) {
				return errAt("br depth %d exceeds %d frames", depth, len(v.ctrl))
			}
			if op == OpBrIf {
				if err := v.pop(I32); err != nil {
					return errAt("br_if condition: %v", err)
				}
			}
			target := &v.ctrl[len(v.ctrl)-1-int(depth)]
			lt := target.labelTypes()
			// Values the branch carries must be on the stack.
			for i := len(lt) - 1; i >= 0; i-- {
				if err := v.pop(lt[i]); err != nil {
					return errAt("br operand: %v", err)
				}
			}
			if op == OpBr {
				v.markUnreachable()
			} else {
				for _, t := range lt {
					v.push(t)
				}
			}

		case OpReturn:
			for i := len(v.ctrl[0].result) - 1; i >= 0; i-- {
				if err := v.pop(v.ctrl[0].result[i]); err != nil {
					return errAt("return: %v", err)
				}
			}
			v.markUnreachable()

		case OpCall:
			fi, okf := d.u32()
			if !okf {
				return errAt("truncated call index")
			}
			if fi >= v.m.NumImports() {
				return errAt("call %d: only host imports are callable in filter modules", fi)
			}
			ft, err := v.m.FuncTypeAt(fi)
			if err != nil {
				return errAt("%v", err)
			}
			if len(ft.Params) > 5 {
				return errAt("host import with %d params exceeds 5-register ABI", len(ft.Params))
			}
			for i := len(ft.Params) - 1; i >= 0; i-- {
				if err := v.pop(ft.Params[i]); err != nil {
					return errAt("call arg %d: %v", i, err)
				}
			}
			for _, r := range ft.Results {
				v.push(r)
			}

		case OpDrop:
			if _, err := v.popAny(); err != nil {
				return errAt("drop: %v", err)
			}

		case OpSelect:
			if err := v.pop(I32); err != nil {
				return errAt("select condition: %v", err)
			}
			b, err := v.popAny()
			if err != nil {
				return errAt("select: %v", err)
			}
			a, err := v.popAny()
			if err != nil {
				return errAt("select: %v", err)
			}
			if a != b {
				return errAt("select operands differ: %v vs %v", a, b)
			}
			v.push(a)

		case OpLocalGet, OpLocalSet, OpLocalTee:
			idx, oki := d.u32()
			if !oki {
				return errAt("truncated local index")
			}
			if int(idx) >= len(v.locals) {
				return errAt("local %d out of %d", idx, len(v.locals))
			}
			t := v.locals[idx]
			switch op {
			case OpLocalGet:
				v.push(t)
			case OpLocalSet:
				if err := v.pop(t); err != nil {
					return errAt("local.set: %v", err)
				}
			case OpLocalTee:
				if err := v.pop(t); err != nil {
					return errAt("local.tee: %v", err)
				}
				v.push(t)
			}

		case OpGlobalGet, OpGlobalSet:
			idx, oki := d.u32()
			if !oki {
				return errAt("truncated global index")
			}
			if int(idx) >= len(v.m.Globals) {
				return errAt("global %d out of %d", idx, len(v.m.Globals))
			}
			t := v.m.Globals[idx].Type
			if op == OpGlobalGet {
				v.push(t)
			} else if err := v.pop(t); err != nil {
				return errAt("global.set: %v", err)
			}

		case OpI32Load, OpI64Load, OpI32Store, OpI64Store:
			if v.m.MemPages == 0 {
				return errAt("memory op without declared memory")
			}
			v.res.UsesMemory = true
			if _, oki := d.u32(); !oki { // offset immediate
				return errAt("truncated memory offset")
			}
			switch op {
			case OpI32Load:
				if err := v.pop(I32); err != nil {
					return errAt("load addr: %v", err)
				}
				v.push(I32)
			case OpI64Load:
				if err := v.pop(I32); err != nil {
					return errAt("load addr: %v", err)
				}
				v.push(I64)
			case OpI32Store:
				if err := v.pop(I32); err != nil {
					return errAt("store value: %v", err)
				}
				if err := v.pop(I32); err != nil {
					return errAt("store addr: %v", err)
				}
			case OpI64Store:
				if err := v.pop(I64); err != nil {
					return errAt("store value: %v", err)
				}
				if err := v.pop(I32); err != nil {
					return errAt("store addr: %v", err)
				}
			}

		case OpI32Const:
			if _, oki := d.u32(); !oki {
				return errAt("truncated i32 const")
			}
			v.push(I32)

		case OpI64Const:
			if _, oki := d.u64(); !oki {
				return errAt("truncated i64 const")
			}
			v.push(I64)

		case OpI32WrapI64:
			if err := v.pop(I64); err != nil {
				return errAt("wrap: %v", err)
			}
			v.push(I32)

		case OpI64ExtendI32:
			if err := v.pop(I32); err != nil {
				return errAt("extend: %v", err)
			}
			v.push(I64)

		default:
			in, out, okk := aluShape(op)
			if !okk {
				return errAt("unknown opcode %#x", op)
			}
			for i := 0; i < in.count; i++ {
				if err := v.pop(in.t); err != nil {
					return errAt("op %#x: %v", op, err)
				}
			}
			v.push(out)
		}
	}
}

// frameExit checks the stack matches the frame's result on falling out.
func (v *fnValidator) frameExit(f *ctrlFrame) error {
	if f.unreachable {
		return nil
	}
	want := f.height + len(f.result)
	if len(v.stack) != want {
		return fmt.Errorf("stack height %d at frame exit, want %d", len(v.stack), want)
	}
	for i, r := range f.result {
		if v.stack[f.height+i] != r {
			return fmt.Errorf("frame result %d: have %v, want %v", i, v.stack[f.height+i], r)
		}
	}
	return nil
}

type aluIn struct {
	t     ValType
	count int
}

// aluShape returns the operand/result shape of pure value ops.
func aluShape(op uint8) (aluIn, ValType, bool) {
	switch op {
	case OpI32Eqz:
		return aluIn{I32, 1}, I32, true
	case OpI64Eqz:
		return aluIn{I64, 1}, I32, true
	case OpI32Eq, OpI32Ne, OpI32LtS, OpI32LtU, OpI32GtS, OpI32GtU, OpI32LeS, OpI32GeS:
		return aluIn{I32, 2}, I32, true
	case OpI64Eq, OpI64Ne, OpI64LtS, OpI64LtU, OpI64GtS, OpI64GtU, OpI64LeS, OpI64GeS:
		return aluIn{I64, 2}, I32, true
	case OpI32Add, OpI32Sub, OpI32Mul, OpI32DivS, OpI32DivU, OpI32RemU,
		OpI32And, OpI32Or, OpI32Xor, OpI32Shl, OpI32ShrS, OpI32ShrU:
		return aluIn{I32, 2}, I32, true
	case OpI64Add, OpI64Sub, OpI64Mul, OpI64DivS, OpI64DivU, OpI64RemU,
		OpI64And, OpI64Or, OpI64Xor, OpI64Shl, OpI64ShrS, OpI64ShrU:
		return aluIn{I64, 2}, I64, true
	}
	return aluIn{}, 0, false
}

// decoder walks a bytecode body.
type decoder struct {
	b       []byte
	off     int
	lastOff int
}

func (d *decoder) rem() int { return len(d.b) - d.off }

func (d *decoder) op() (uint8, bool) {
	d.lastOff = d.off
	if d.off >= len(d.b) {
		return 0, false
	}
	op := d.b[d.off]
	d.off++
	return op, true
}

func (d *decoder) u8() (uint8, bool) {
	if d.off >= len(d.b) {
		return 0, false
	}
	v := d.b[d.off]
	d.off++
	return v, true
}

func (d *decoder) u32() (uint32, bool) {
	if d.off+4 > len(d.b) {
		return 0, false
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v, true
}

func (d *decoder) u64() (uint64, bool) {
	if d.off+8 > len(d.b) {
		return 0, false
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, true
}

// HostFuncIDs maps importable host-function names to xabi helper ids. The
// import's signature is checked against HostFuncSigs at validation.
var HostFuncIDs = map[string]int{
	"proxy_get_header":   xabi.HelperGetHeader,
	"proxy_set_header":   xabi.HelperSetHeader,
	"proxy_log":          xabi.HelperLog,
	"proxy_get_body_len": xabi.HelperGetBodyLen,
	"clock_now":          xabi.HelperKtimeGetNS,
	"random_u32":         xabi.HelperGetPrandomU32,
}
