package wasm

import (
	"errors"
	"fmt"

	"rdx/internal/ebpf/vm"
	"rdx/internal/xabi"
)

// ErrFuel is returned when a filter exceeds its instruction budget.
var ErrFuel = errors.New("wasm: fuel exhausted")

// ErrTrap is returned for unreachable and other traps.
var ErrTrap = errors.New("wasm: trap")

// Instance is an instantiated filter: module plus its linear memory and
// globals, addressed through an xabi.Memory so the same bytes are reachable
// by the remote control plane when the instance lives in a node arena.
type Instance struct {
	Module   *Module
	Mem      xabi.Memory
	MemBase  uint64 // linear memory base address (size MemPages*PageSize)
	GlobBase uint64 // globals region base (8 bytes per global)
	Fuel     int
}

// NewLocalInstance builds an instance backed by a private region memory —
// the form used in tests and on the control plane for validation runs.
func NewLocalInstance(m *Module) (*Instance, error) {
	const memBase, globBase = 0x4000_0000, 0x5000_0000
	var regions []*xabi.Region
	if m.MemPages > 0 {
		regions = append(regions, &xabi.Region{
			Base: memBase, Data: make([]byte, int(m.MemPages)*PageSize), Writable: true, Name: "wasm:memory",
		})
	}
	if len(m.Globals) > 0 {
		regions = append(regions, &xabi.Region{
			Base: globBase, Data: make([]byte, 8*len(m.Globals)), Writable: true, Name: "wasm:globals",
		})
	}
	mem, err := xabi.NewRegionMemory(regions...)
	if err != nil {
		return nil, err
	}
	inst := &Instance{Module: m, Mem: mem, MemBase: memBase, GlobBase: globBase}
	if err := inst.InitGlobals(); err != nil {
		return nil, err
	}
	return inst, nil
}

// InitGlobals writes the global initializers into the globals region.
func (inst *Instance) InitGlobals() error {
	for i, g := range inst.Module.Globals {
		if err := inst.Mem.WriteMem(inst.GlobBase+uint64(8*i), 8, uint64(g.Init)); err != nil {
			return err
		}
	}
	return nil
}

// hostTable resolves host imports to helper implementations via the shared
// helper table.
func hostTable(m *Module) ([]xabi.HelperFn, error) {
	helpers := vm.DefaultHelpers()
	out := make([]xabi.HelperFn, len(m.Imports))
	for i, im := range m.Imports {
		id, ok := HostFuncIDs[im.Name]
		if !ok {
			return nil, fmt.Errorf("wasm: unknown host import %q", im.Name)
		}
		fn, ok := helpers[int32(id)]
		if !ok {
			return nil, fmt.Errorf("wasm: host import %q has no implementation", im.Name)
		}
		out[i] = fn
	}
	return out, nil
}

// Run interprets the filter entry with ctx copied into linear memory at
// offset 0 (the filter ABI); after execution the first CtxSize bytes are
// copied back so verdict writes are visible. Returns the filter's i64.
func (inst *Instance) Run(env *xabi.Env, ctx []byte) (uint64, error) {
	m := inst.Module
	if _, err := Validate(m); err != nil {
		return 0, err
	}
	hosts, err := hostTable(m)
	if err != nil {
		return 0, err
	}
	if env == nil {
		env = &xabi.Env{}
	}
	runEnv := *env
	if runEnv.Mem == nil {
		runEnv.Mem = inst.Mem
	}

	if m.MemPages > 0 && len(ctx) > 0 {
		if len(ctx) > xabi.CtxSize {
			return 0, fmt.Errorf("wasm: ctx too large")
		}
		if err := runEnv.Mem.WriteBytes(inst.MemBase, ctx); err != nil {
			return 0, err
		}
	}

	it := &interp{
		inst:  inst,
		env:   &runEnv,
		hosts: hosts,
		fuel:  inst.Fuel,
	}
	if it.fuel == 0 {
		it.fuel = 1 << 22
	}
	f := &m.Funcs[0]
	nLocals := len(m.Types[f.Type].Params) + len(f.Locals)
	r0, err := it.call(f, make([]uint64, nLocals))
	if err != nil {
		return 0, err
	}
	if m.MemPages > 0 && len(ctx) > 0 {
		back, err := runEnv.Mem.ReadBytes(inst.MemBase, len(ctx))
		if err != nil {
			return 0, err
		}
		copy(ctx, back)
	}
	return r0, nil
}

type interp struct {
	inst  *Instance
	env   *xabi.Env
	hosts []xabi.HelperFn
	fuel  int
}

// frame label for structured control flow.
type label struct {
	op     uint8
	pc     int // loop start (for Loop) — br targets here
	height int
	arity  int // values a br to this label carries
	elsePC int
	endPC  int
}

func (it *interp) call(f *Func, locals []uint64) (uint64, error) {
	ctrl, err := scanControl(f.Body)
	if err != nil {
		return 0, err
	}
	var stack []uint64
	var labels []label
	labels = append(labels, label{op: 0, height: 0, arity: 1, endPC: len(f.Body)})

	d := &decoder{b: f.Body}
	push := func(v uint64) { stack = append(stack, v) }
	pop := func() uint64 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}

	branch := func(depth int) {
		l := labels[len(labels)-1-depth]
		var carry []uint64
		for i := 0; i < l.arity; i++ {
			carry = append(carry, pop())
		}
		stack = stack[:l.height]
		for i := len(carry) - 1; i >= 0; i-- {
			push(carry[i])
		}
		if l.op == OpLoop {
			d.off = l.pc                        // back to loop start (after the blocktype)
			labels = labels[:len(labels)-depth] // keep the loop label itself
		} else {
			d.off = l.endPC + 1 // past the End
			labels = labels[:len(labels)-1-depth]
		}
	}

	for {
		if it.fuel--; it.fuel < 0 {
			return 0, ErrFuel
		}
		op, ok := d.op()
		if !ok {
			return 0, fmt.Errorf("wasm: fell off function body")
		}
		switch op {
		case OpNop:

		case OpUnreachable:
			return 0, fmt.Errorf("%w: unreachable executed", ErrTrap)

		case OpBlock, OpLoop:
			bt, _ := d.u8()
			result, _ := blockResult(bt)
			c := ctrl[d.lastOff]
			arity := len(result)
			if op == OpLoop {
				arity = 0
			}
			labels = append(labels, label{op: op, pc: d.off, height: len(stack), arity: arity, endPC: c.end})

		case OpIf:
			bt, _ := d.u8()
			result, _ := blockResult(bt)
			c := ctrl[d.lastOff]
			cond := pop()
			labels = append(labels, label{op: OpIf, height: len(stack), arity: len(result), elsePC: c.els, endPC: c.end})
			if uint32(cond) == 0 {
				if c.els >= 0 {
					d.off = c.els + 1 // into the else branch
				} else {
					d.off = c.end + 1 // skip the whole if
					labels = labels[:len(labels)-1]
				}
			}

		case OpElse:
			// Reached after executing the then-branch: skip to End.
			l := labels[len(labels)-1]
			d.off = l.endPC + 1
			labels = labels[:len(labels)-1]

		case OpEnd:
			l := labels[len(labels)-1]
			labels = labels[:len(labels)-1]
			if len(labels) == 0 {
				if l.arity == 1 {
					return pop(), nil
				}
				return 0, nil
			}

		case OpBr:
			depth, _ := d.u32()
			branch(int(depth))

		case OpBrIf:
			depth, _ := d.u32()
			if uint32(pop()) != 0 {
				branch(int(depth))
			}

		case OpReturn:
			return pop(), nil

		case OpCall:
			fi, _ := d.u32()
			ft, err := it.inst.Module.FuncTypeAt(fi)
			if err != nil {
				return 0, err
			}
			args := make([]uint64, 5)
			for i := len(ft.Params) - 1; i >= 0; i-- {
				args[i] = pop()
			}
			r0, err := it.hosts[fi](it.env, args[0], args[1], args[2], args[3], args[4])
			if err != nil {
				return 0, fmt.Errorf("wasm: host %s: %w", it.inst.Module.Imports[fi].Name, err)
			}
			if len(ft.Results) == 1 {
				if ft.Results[0] == I32 {
					r0 = uint64(uint32(r0))
				}
				push(r0)
			}

		case OpDrop:
			pop()

		case OpSelect:
			cond := pop()
			b := pop()
			a := pop()
			if uint32(cond) != 0 {
				push(a)
			} else {
				push(b)
			}

		case OpLocalGet:
			idx, _ := d.u32()
			push(locals[idx])
		case OpLocalSet:
			idx, _ := d.u32()
			locals[idx] = pop()
		case OpLocalTee:
			idx, _ := d.u32()
			locals[idx] = stack[len(stack)-1]

		case OpGlobalGet:
			idx, _ := d.u32()
			v, err := it.env.Mem.ReadMem(it.inst.GlobBase+uint64(8*idx), 8)
			if err != nil {
				return 0, err
			}
			if it.inst.Module.Globals[idx].Type == I32 {
				v = uint64(uint32(v))
			}
			push(v)
		case OpGlobalSet:
			idx, _ := d.u32()
			if err := it.env.Mem.WriteMem(it.inst.GlobBase+uint64(8*idx), 8, pop()); err != nil {
				return 0, err
			}

		case OpI32Load, OpI64Load:
			off, _ := d.u32()
			addr := it.inst.MemBase + uint64(uint32(pop())) + uint64(off)
			size := 4
			if op == OpI64Load {
				size = 8
			}
			v, err := it.env.Mem.ReadMem(addr, size)
			if err != nil {
				return 0, fmt.Errorf("%w: load: %v", ErrTrap, err)
			}
			push(v)

		case OpI32Store, OpI64Store:
			off, _ := d.u32()
			val := pop()
			addr := it.inst.MemBase + uint64(uint32(pop())) + uint64(off)
			size := 4
			if op == OpI64Store {
				size = 8
			}
			if err := it.env.Mem.WriteMem(addr, size, val); err != nil {
				return 0, fmt.Errorf("%w: store: %v", ErrTrap, err)
			}

		case OpI32Const:
			v, _ := d.u32()
			push(uint64(v))
		case OpI64Const:
			v, _ := d.u64()
			push(v)

		case OpI32WrapI64:
			push(uint64(uint32(pop())))
		case OpI64ExtendI32:
			push(uint64(uint32(pop())))

		default:
			in, _, okk := aluShape(op)
			if !okk {
				return 0, fmt.Errorf("wasm: unknown opcode %#x at %d", op, d.lastOff)
			}
			var a, b uint64
			if in.count == 2 {
				b = pop()
				a = pop()
			} else {
				a = pop()
			}
			push(evalALU(op, a, b))
		}
	}
}

// ctrlInfo records matching else/end offsets for a structured opcode.
type ctrlInfo struct {
	els int // -1 if none
	end int
}

// scanControl precomputes block structure: for every Block/Loop/If opcode
// offset, the offsets of its matching Else (if any) and End.
func scanControl(body []byte) (map[int]ctrlInfo, error) {
	out := map[int]ctrlInfo{}
	var stack []int
	d := &decoder{b: body}
	for {
		op, ok := d.op()
		if !ok {
			break
		}
		at := d.lastOff
		switch op {
		case OpBlock, OpLoop, OpIf:
			d.u8()
			stack = append(stack, at)
			out[at] = ctrlInfo{els: -1, end: -1}
		case OpElse:
			if len(stack) == 0 {
				return nil, fmt.Errorf("wasm: else at %d without frame", at)
			}
			top := stack[len(stack)-1]
			ci := out[top]
			ci.els = at
			out[top] = ci
		case OpEnd:
			if len(stack) == 0 {
				// function-level end
				continue
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			ci := out[top]
			ci.end = at
			out[top] = ci
		case OpBr, OpBrIf, OpCall, OpLocalGet, OpLocalSet, OpLocalTee,
			OpGlobalGet, OpGlobalSet, OpI32Load, OpI64Load, OpI32Store,
			OpI64Store, OpI32Const:
			d.u32()
		case OpI64Const:
			d.u64()
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("wasm: %d unterminated frames", len(stack))
	}
	return out, nil
}

// evalALU evaluates a pure value op.
func evalALU(op uint8, a, b uint64) uint64 {
	b32 := func(v bool) uint64 {
		if v {
			return 1
		}
		return 0
	}
	a32, bb32 := uint32(a), uint32(b)
	switch op {
	case OpI32Eqz:
		return b32(a32 == 0)
	case OpI64Eqz:
		return b32(a == 0)
	case OpI32Eq:
		return b32(a32 == bb32)
	case OpI32Ne:
		return b32(a32 != bb32)
	case OpI32LtS:
		return b32(int32(a32) < int32(bb32))
	case OpI32LtU:
		return b32(a32 < bb32)
	case OpI32GtS:
		return b32(int32(a32) > int32(bb32))
	case OpI32GtU:
		return b32(a32 > bb32)
	case OpI32LeS:
		return b32(int32(a32) <= int32(bb32))
	case OpI32GeS:
		return b32(int32(a32) >= int32(bb32))
	case OpI64Eq:
		return b32(a == b)
	case OpI64Ne:
		return b32(a != b)
	case OpI64LtS:
		return b32(int64(a) < int64(b))
	case OpI64LtU:
		return b32(a < b)
	case OpI64GtS:
		return b32(int64(a) > int64(b))
	case OpI64GtU:
		return b32(a > b)
	case OpI64LeS:
		return b32(int64(a) <= int64(b))
	case OpI64GeS:
		return b32(int64(a) >= int64(b))
	case OpI32Add:
		return uint64(a32 + bb32)
	case OpI32Sub:
		return uint64(a32 - bb32)
	case OpI32Mul:
		return uint64(a32 * bb32)
	case OpI32DivS:
		// RDX-Wasm: total signed division — /0 → 0, MinInt/-1 wraps
		// (identical to the native engine's AluDivS).
		if bb32 == 0 {
			return 0
		}
		return uint64(uint32(int64(int32(a32)) / int64(int32(bb32))))
	case OpI32DivU:
		if bb32 == 0 {
			return 0
		}
		return uint64(a32 / bb32)
	case OpI32RemU:
		if bb32 == 0 {
			return uint64(a32)
		}
		return uint64(a32 % bb32)
	case OpI32And:
		return uint64(a32 & bb32)
	case OpI32Or:
		return uint64(a32 | bb32)
	case OpI32Xor:
		return uint64(a32 ^ bb32)
	case OpI32Shl:
		return uint64(a32 << (bb32 & 31))
	case OpI32ShrS:
		return uint64(uint32(int32(a32) >> (bb32 & 31)))
	case OpI32ShrU:
		return uint64(a32 >> (bb32 & 31))
	case OpI64Add:
		return a + b
	case OpI64Sub:
		return a - b
	case OpI64Mul:
		return a * b
	case OpI64DivS:
		if b == 0 {
			return 0
		}
		if int64(a) == -1<<63 && int64(b) == -1 {
			return a // wrap
		}
		return uint64(int64(a) / int64(b))
	case OpI64DivU:
		if b == 0 {
			return 0
		}
		return a / b
	case OpI64RemU:
		if b == 0 {
			return a
		}
		return a % b
	case OpI64And:
		return a & b
	case OpI64Or:
		return a | b
	case OpI64Xor:
		return a ^ b
	case OpI64Shl:
		return a << (b & 63)
	case OpI64ShrS:
		return uint64(int64(a) >> (b & 63))
	case OpI64ShrU:
		return a >> (b & 63)
	}
	return 0
}
