package wasm

import (
	"fmt"

	"rdx/internal/native"
)

// GOT symbols a compiled filter needs resolved at link time.
const (
	SymMemory  = "wasm:memory"  // linear memory base for this deployment
	SymGlobals = "wasm:globals" // globals region base
)

// HostSymbol returns the relocation symbol for a host import.
func HostSymbol(name string) string { return "helper:" + name }

// Compile translates a validated filter module to relocatable native code.
//
// Lowering model: the wasm operand stack and locals live in the native
// 512-byte stack frame. Locals occupy the top slots ([r10-8], [r10-16], …);
// the operand stack grows downward below them with r9 as the stack pointer.
// r6 caches the linear-memory base and r7 the globals base (loaded once in
// the prologue from GOT-relocated immediates). Scratch registers r2-r5 carry
// operands through each lowered instruction; host calls use the r1-r5
// argument convention shared with eBPF helpers.
func Compile(m *Module, arch native.Arch) (*native.Binary, error) {
	res, err := Validate(m)
	if err != nil {
		return nil, err
	}
	f := &m.Funcs[0]
	c := &compiler{
		m:      m,
		asm:    native.NewAssembler(arch),
		locals: res.Locals,
	}
	c.prologue()
	if err := c.lower(f.Body); err != nil {
		return nil, err
	}
	bin := c.asm.Finish(m.Name, Digest(m), uint32(MaxStackSlots*8))
	return bin, nil
}

// Digest returns the module's content digest (registry cache key).
func Digest(m *Module) string {
	// Reuse the container encoding as the digest input.
	data := Encode(m)
	var h uint64 = 14695981039346656037
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return fmt.Sprintf("wasm-%016x-%d", h, len(data))
}

type cframe struct {
	op          uint8
	height      int   // operand-stack height (slots) at entry
	arity       int   // br-carried values (0 for loops)
	start       int   // native op index of loop header
	brFix       []int // native jump ops to patch to this frame's end
	elseFix     int   // if: jump over else branch (-1 when unset)
	sawElse     bool
	resultArity int // values the frame leaves on the stack at End
}

type compiler struct {
	m      *Module
	asm    *native.Assembler
	locals int
	height int // current operand-stack height in slots
	frames []cframe
}

// Register allocation (fixed roles).
const (
	rScratch0 = 2 // primary operand
	rScratch1 = 3 // secondary operand
	rScratch2 = 4
	rMemBase  = 6 // linear memory base
	rGlobBase = 7 // globals base
	rSP       = 9 // operand stack pointer (byte address)
	rFP       = 10
)

func (c *compiler) emit(i native.Inst) int { return c.asm.Emit(i) }

// localSlotOff returns the frame-pointer displacement of local l.
func (c *compiler) localSlotOff(l int) int32 { return int32(-8 * (l + 1)) }

// spInit is the operand stack's starting address displacement below r10.
func (c *compiler) spInitOff() int32 { return int32(-8 * c.locals) }

func (c *compiler) prologue() {
	// r9 = r10 - 8*locals (empty operand stack).
	c.emit(native.Inst{Op: native.OpMovRR, A: rSP, B: rFP})
	c.emit(native.Inst{Op: native.OpAluRI, A: rSP, C: native.AluAdd, Imm: c.spInitOff()})
	// Zero the locals (wasm locals default to zero).
	for l := 0; l < c.locals; l++ {
		c.emit(native.Inst{Op: native.OpStoreI, B: rFP, C: 8, Imm: c.localSlotOff(l), Ext: 0})
	}
	if c.m.MemPages > 0 {
		c.asm.EmitReloc(native.Inst{Op: native.OpMovRI, A: rMemBase}, native.RelocGlobal, SymMemory)
	}
	if len(c.m.Globals) > 0 {
		c.asm.EmitReloc(native.Inst{Op: native.OpMovRI, A: rGlobBase}, native.RelocGlobal, SymGlobals)
	}
	c.frames = []cframe{{op: 0, height: 0, arity: 1, elseFix: -1, resultArity: 1}}
}

// push emits code pushing reg onto the operand stack.
func (c *compiler) push(reg uint8) {
	c.emit(native.Inst{Op: native.OpAluRI, A: rSP, C: native.AluSub, Imm: 8})
	c.emit(native.Inst{Op: native.OpStore, A: reg, B: rSP, C: 8, Imm: 0})
	c.height++
}

// pop emits code popping the stack top into reg.
func (c *compiler) pop(reg uint8) {
	c.emit(native.Inst{Op: native.OpLoad, A: reg, B: rSP, C: 8, Imm: 0})
	c.emit(native.Inst{Op: native.OpAluRI, A: rSP, C: native.AluAdd, Imm: 8})
	c.height--
}

// setSP emits code resetting the stack pointer to height h.
func (c *compiler) setSP(h int) {
	c.emit(native.Inst{Op: native.OpMovRR, A: rSP, B: rFP})
	c.emit(native.Inst{Op: native.OpAluRI, A: rSP, C: native.AluAdd, Imm: c.spInitOff() - int32(8*h)})
}

// pushI emits code pushing a 64-bit immediate.
func (c *compiler) pushI(v uint64) {
	c.emit(native.Inst{Op: native.OpMovRI, A: rScratch0, Ext: v})
	c.push(rScratch0)
}

// boolResult lowers "push (1 if jump-taken else 0)" given an emitted
// conditional-jump factory.
func (c *compiler) boolResult(emitJump func(targetTrue int32) int) {
	j := emitJump(-1) // patched to the "true" block
	c.emit(native.Inst{Op: native.OpMovRI, A: rScratch0, Ext: 0})
	skip := c.emit(native.Inst{Op: native.OpJmp, C: native.CondAlways, Imm: -1})
	c.asm.PatchImm(j, int32(c.asm.Len()))
	c.emit(native.Inst{Op: native.OpMovRI, A: rScratch0, Ext: 1})
	c.asm.PatchImm(skip, int32(c.asm.Len()))
	c.push(rScratch0)
}

// signExtend32 sign-extends reg from 32 to 64 bits in place.
func (c *compiler) signExtend32(reg uint8) {
	c.emit(native.Inst{Op: native.OpAluRI, A: reg, C: native.AluLsh, Imm: 32})
	c.emit(native.Inst{Op: native.OpAluRI, A: reg, C: native.AluArsh, Imm: 32})
}

// zeroExtend32 truncates reg to its low 32 bits.
func (c *compiler) zeroExtend32(reg uint8) {
	c.emit(native.Inst{Op: native.OpAluRR, A: reg, B: reg, C: native.AluMov, Flags: native.Flag32})
}

func (c *compiler) lower(body []byte) error {
	d := &decoder{b: body}
	for {
		op, ok := d.op()
		if !ok {
			return fmt.Errorf("wasm: compiler fell off body")
		}
		switch op {
		case OpNop:

		case OpUnreachable:
			// Trap: jump to an invalid target; the engine reports pc
			// out of range, the deliberate RDX-Wasm trap encoding.
			c.emit(native.Inst{Op: native.OpJmp, C: native.CondAlways, Imm: -1})

		case OpBlock, OpLoop:
			bt, _ := d.u8()
			result, _ := blockResult(bt)
			arity := len(result)
			if op == OpLoop {
				arity = 0
			}
			c.frames = append(c.frames, cframe{
				op: op, height: c.height, arity: arity,
				start: c.asm.Len(), elseFix: -1, resultArity: len(result),
			})

		case OpIf:
			bt, _ := d.u8()
			result, _ := blockResult(bt)
			c.pop(rScratch0)
			c.zeroExtend32(rScratch0)
			j := c.emit(native.Inst{Op: native.OpJmpI, A: rScratch0, C: native.CondEQ, Imm: -1, Ext: 0})
			c.frames = append(c.frames, cframe{
				op: OpIf, height: c.height, arity: len(result),
				elseFix: j, resultArity: len(result),
			})

		case OpElse:
			fr := &c.frames[len(c.frames)-1]
			// Terminate the then-branch with a jump to End.
			j := c.emit(native.Inst{Op: native.OpJmp, C: native.CondAlways, Imm: -1})
			fr.brFix = append(fr.brFix, j)
			// The false path lands here.
			c.asm.PatchImm(fr.elseFix, int32(c.asm.Len()))
			fr.elseFix = -1
			fr.sawElse = true
			c.height = fr.height

		case OpEnd:
			fr := c.frames[len(c.frames)-1]
			c.frames = c.frames[:len(c.frames)-1]
			if fr.elseFix >= 0 {
				// If without else: false path lands at End.
				c.asm.PatchImm(fr.elseFix, int32(c.asm.Len()))
			}
			for _, j := range fr.brFix {
				c.asm.PatchImm(j, int32(c.asm.Len()))
			}
			if len(c.frames) == 0 {
				// Function end: result (if any) is on top of stack.
				c.pop(0)
				c.emit(native.Inst{Op: native.OpRet})
				if d.rem() != 0 {
					return fmt.Errorf("wasm: trailing bytes after end")
				}
				return nil
			}
			// Normalize the height: validation guarantees the stack
			// carries exactly resultArity values above fr.height on
			// any reachable fall-through; after an unconditional
			// transfer the compiler's height tracker may disagree, so
			// reset it to the canonical value.
			c.height = fr.height + fr.resultArity
			c.setSP(c.height)

		case OpBr, OpBrIf:
			depth, _ := d.u32()
			target := &c.frames[len(c.frames)-1-int(depth)]

			var condJump int
			if op == OpBrIf {
				c.pop(rScratch2)
				c.zeroExtend32(rScratch2)
				condJump = c.emit(native.Inst{Op: native.OpJmpI, A: rScratch2, C: native.CondEQ, Imm: -1, Ext: 0})
			}
			// Carry the label's values, unwind, re-push.
			if target.arity == 1 {
				c.pop(rScratch0)
			}
			c.setSP(target.height)
			c.height = target.height
			if target.arity == 1 {
				c.push(rScratch0)
			}
			if target.op == OpLoop {
				c.emit(native.Inst{Op: native.OpJmp, C: native.CondAlways, Imm: int32(target.start)})
			} else {
				j := c.emit(native.Inst{Op: native.OpJmp, C: native.CondAlways, Imm: -1})
				target.brFix = append(target.brFix, j)
			}
			if op == OpBrIf {
				c.asm.PatchImm(condJump, int32(c.asm.Len()))
				// Fall-through: the branch did not pop label values
				// permanently — restore the tracked height.
				c.height = target.height + target.arity
				if int(depth) == 0 {
					// Height tracking for the current frame.
				}
				// The br_if fall-through keeps the stack as before the
				// br (cond already consumed): values re-pushed above.
			}

		case OpReturn:
			c.pop(0)
			c.emit(native.Inst{Op: native.OpRet})

		case OpCall:
			fi, _ := d.u32()
			ft, err := c.m.FuncTypeAt(fi)
			if err != nil {
				return err
			}
			// Pop args into r1..rN (reverse order off the stack).
			for i := len(ft.Params) - 1; i >= 0; i-- {
				c.pop(uint8(1 + i))
			}
			c.asm.EmitReloc(native.Inst{Op: native.OpCall},
				native.RelocHelper, HostSymbol(c.m.Imports[fi].Name))
			if len(ft.Results) == 1 {
				if ft.Results[0] == I32 {
					c.zeroExtend32(0)
				}
				c.push(0)
			}

		case OpDrop:
			c.emit(native.Inst{Op: native.OpAluRI, A: rSP, C: native.AluAdd, Imm: 8})
			c.height--

		case OpSelect:
			c.pop(rScratch2) // cond
			c.pop(rScratch1) // b
			c.pop(rScratch0) // a
			c.zeroExtend32(rScratch2)
			j := c.emit(native.Inst{Op: native.OpJmpI, A: rScratch2, C: native.CondNE, Imm: -1, Ext: 0})
			c.emit(native.Inst{Op: native.OpMovRR, A: rScratch0, B: rScratch1})
			c.asm.PatchImm(j, int32(c.asm.Len()))
			c.push(rScratch0)

		case OpLocalGet:
			idx, _ := d.u32()
			c.emit(native.Inst{Op: native.OpLoad, A: rScratch0, B: rFP, C: 8, Imm: c.localSlotOff(int(idx))})
			c.push(rScratch0)
		case OpLocalSet:
			idx, _ := d.u32()
			c.pop(rScratch0)
			c.emit(native.Inst{Op: native.OpStore, A: rScratch0, B: rFP, C: 8, Imm: c.localSlotOff(int(idx))})
		case OpLocalTee:
			idx, _ := d.u32()
			c.emit(native.Inst{Op: native.OpLoad, A: rScratch0, B: rSP, C: 8, Imm: 0})
			c.emit(native.Inst{Op: native.OpStore, A: rScratch0, B: rFP, C: 8, Imm: c.localSlotOff(int(idx))})

		case OpGlobalGet:
			idx, _ := d.u32()
			c.emit(native.Inst{Op: native.OpLoad, A: rScratch0, B: rGlobBase, C: 8, Imm: int32(8 * idx)})
			if c.m.Globals[idx].Type == I32 {
				c.zeroExtend32(rScratch0)
			}
			c.push(rScratch0)
		case OpGlobalSet:
			idx, _ := d.u32()
			c.pop(rScratch0)
			c.emit(native.Inst{Op: native.OpStore, A: rScratch0, B: rGlobBase, C: 8, Imm: int32(8 * idx)})

		case OpI32Load, OpI64Load:
			off, _ := d.u32()
			c.pop(rScratch0)
			c.zeroExtend32(rScratch0)
			c.emit(native.Inst{Op: native.OpAluRR, A: rScratch0, B: rMemBase, C: native.AluAdd})
			size := uint8(4)
			if op == OpI64Load {
				size = 8
			}
			c.emit(native.Inst{Op: native.OpLoad, A: rScratch0, B: rScratch0, C: size, Imm: int32(off)})
			c.push(rScratch0)

		case OpI32Store, OpI64Store:
			off, _ := d.u32()
			c.pop(rScratch1) // value
			c.pop(rScratch0) // address
			c.zeroExtend32(rScratch0)
			c.emit(native.Inst{Op: native.OpAluRR, A: rScratch0, B: rMemBase, C: native.AluAdd})
			size := uint8(4)
			if op == OpI64Store {
				size = 8
			}
			c.emit(native.Inst{Op: native.OpStore, A: rScratch1, B: rScratch0, C: size, Imm: int32(off)})

		case OpI32Const:
			v, _ := d.u32()
			c.pushI(uint64(v))
		case OpI64Const:
			v, _ := d.u64()
			c.pushI(v)

		case OpI32WrapI64:
			c.pop(rScratch0)
			c.zeroExtend32(rScratch0)
			c.push(rScratch0)
		case OpI64ExtendI32:
			c.pop(rScratch0)
			c.zeroExtend32(rScratch0)
			c.push(rScratch0)

		default:
			if err := c.lowerALU(op); err != nil {
				return err
			}
		}
	}
}

// lowerALU lowers pure value operations.
func (c *compiler) lowerALU(op uint8) error {
	in, _, ok := aluShape(op)
	if !ok {
		return fmt.Errorf("wasm: compiler: unknown opcode %#x", op)
	}
	if in.count == 2 {
		c.pop(rScratch1)
		c.pop(rScratch0)
	} else {
		c.pop(rScratch0)
	}

	// Comparisons produce an i32 bool via conditional jump.
	if cmpCond, is64, signed, isCmp := cmpShape(op); isCmp {
		if in.count == 1 { // eqz
			c.emit(native.Inst{Op: native.OpMovRI, A: rScratch1, Ext: 0})
		}
		if !is64 {
			if signed {
				c.signExtend32(rScratch0)
				c.signExtend32(rScratch1)
			} else {
				c.zeroExtend32(rScratch0)
				c.zeroExtend32(rScratch1)
			}
		}
		c.boolResult(func(int32) int {
			return c.emit(native.Inst{Op: native.OpJmp, A: rScratch0, B: rScratch1, C: cmpCond, Imm: -1})
		})
		return nil
	}

	aluOp, is64, err := arithShape(op)
	if err != nil {
		return err
	}
	flags := uint8(0)
	if !is64 {
		flags = native.Flag32
	}
	// Signed 32-bit shifts need sign-extended operands under a 64-bit op.
	switch op {
	case OpI32ShrS:
		c.signExtend32(rScratch0)
		c.zeroExtend32(rScratch1)
		c.emit(native.Inst{Op: native.OpAluRR, A: rScratch0, B: rScratch1, C: native.AluArsh})
		c.zeroExtend32(rScratch0)
	default:
		c.emit(native.Inst{Op: native.OpAluRR, A: rScratch0, B: rScratch1, C: aluOp, Flags: flags})
	}
	c.push(rScratch0)
	return nil
}

// cmpShape classifies comparison ops → (condition, is64, signed, isCmp).
func cmpShape(op uint8) (uint8, bool, bool, bool) {
	switch op {
	case OpI32Eqz:
		return native.CondEQ, false, false, true
	case OpI64Eqz:
		return native.CondEQ, true, false, true
	case OpI32Eq:
		return native.CondEQ, false, false, true
	case OpI32Ne:
		return native.CondNE, false, false, true
	case OpI32LtS:
		return native.CondSLT, false, true, true
	case OpI32LtU:
		return native.CondLT, false, false, true
	case OpI32GtS:
		return native.CondSGT, false, true, true
	case OpI32GtU:
		return native.CondGT, false, false, true
	case OpI32LeS:
		return native.CondSLE, false, true, true
	case OpI32GeS:
		return native.CondSGE, false, true, true
	case OpI64Eq:
		return native.CondEQ, true, false, true
	case OpI64Ne:
		return native.CondNE, true, false, true
	case OpI64LtS:
		return native.CondSLT, true, true, true
	case OpI64LtU:
		return native.CondLT, true, false, true
	case OpI64GtS:
		return native.CondSGT, true, true, true
	case OpI64GtU:
		return native.CondGT, true, false, true
	case OpI64LeS:
		return native.CondSLE, true, true, true
	case OpI64GeS:
		return native.CondSGE, true, true, true
	}
	return 0, false, false, false
}

// arithShape classifies arithmetic ops → (native ALU op, is64).
func arithShape(op uint8) (uint8, bool, error) {
	switch op {
	case OpI32Add:
		return native.AluAdd, false, nil
	case OpI32Sub:
		return native.AluSub, false, nil
	case OpI32Mul:
		return native.AluMul, false, nil
	case OpI32DivS:
		return native.AluDivS, false, nil
	case OpI32ShrS:
		return native.AluArsh, false, nil // special-cased: sign-extend first
	case OpI32DivU:
		return native.AluDiv, false, nil
	case OpI32RemU:
		return native.AluMod, false, nil
	case OpI32And:
		return native.AluAnd, false, nil
	case OpI32Or:
		return native.AluOr, false, nil
	case OpI32Xor:
		return native.AluXor, false, nil
	case OpI32Shl:
		return native.AluLsh, false, nil
	case OpI32ShrU:
		return native.AluRsh, false, nil
	case OpI64Add:
		return native.AluAdd, true, nil
	case OpI64Sub:
		return native.AluSub, true, nil
	case OpI64Mul:
		return native.AluMul, true, nil
	case OpI64DivS:
		return native.AluDivS, true, nil
	case OpI64DivU:
		return native.AluDiv, true, nil
	case OpI64RemU:
		return native.AluMod, true, nil
	case OpI64And:
		return native.AluAnd, true, nil
	case OpI64Or:
		return native.AluOr, true, nil
	case OpI64Xor:
		return native.AluXor, true, nil
	case OpI64Shl:
		return native.AluLsh, true, nil
	case OpI64ShrS:
		return native.AluArsh, true, nil
	case OpI64ShrU:
		return native.AluRsh, true, nil
	}
	return 0, false, fmt.Errorf("wasm: no arith lowering for %#x", op)
}
