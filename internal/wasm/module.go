// Package wasm implements the Wasm-filter extension frontend: a compact
// WebAssembly-style stack machine with typed validation, an interpreter,
// and a compiler targeting the same simulated native ISA as the eBPF JIT.
//
// Service meshes load proxy-wasm filters the same way kernels load eBPF —
// validate, JIT, attach — which is why the paper treats them as one family
// of runtime extensions. This package gives RDX its second extension kind
// so the CodeFlow pipeline (validate → compile → link → deploy over RDMA)
// is demonstrably frontend-agnostic.
//
// The container format ("RDXW") is not the W3C binary format; it is a
// compact equivalent with the same concepts: function types over i32/i64,
// host-function imports, locals, structured control flow (block/loop/if
// with typed br), linear memory, and mutable globals. Loops are legal
// (unlike eBPF); termination is enforced at runtime by fuel, which is the
// proxy-wasm deployment reality too.
package wasm

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ValType is a value type.
type ValType uint8

const (
	I32 ValType = 0x7F
	I64 ValType = 0x7E
)

func (v ValType) String() string {
	switch v {
	case I32:
		return "i32"
	case I64:
		return "i64"
	default:
		return fmt.Sprintf("valtype(%#x)", uint8(v))
	}
}

// FuncType is a function signature.
type FuncType struct {
	Params  []ValType
	Results []ValType // 0 or 1 results
}

func (t FuncType) String() string {
	return fmt.Sprintf("func%v->%v", t.Params, t.Results)
}

// Equal reports signature equality.
func (t FuncType) Equal(o FuncType) bool {
	if len(t.Params) != len(o.Params) || len(t.Results) != len(o.Results) {
		return false
	}
	for i := range t.Params {
		if t.Params[i] != o.Params[i] {
			return false
		}
	}
	for i := range t.Results {
		if t.Results[i] != o.Results[i] {
			return false
		}
	}
	return true
}

// Import is a host function requirement.
type Import struct {
	Name string // host symbol, e.g. "proxy_get_header"
	Type uint32 // index into Types
}

// Func is one module-local function.
type Func struct {
	Type   uint32
	Locals []ValType // extra locals beyond params
	Body   []byte    // bytecode
}

// Global is a mutable global variable with a constant initializer.
type Global struct {
	Type ValType
	Init int64
}

// Module is a decoded Wasm-filter module.
type Module struct {
	Name     string
	Types    []FuncType
	Imports  []Import
	Funcs    []Func
	Globals  []Global
	MemPages uint32 // 64KiB pages of linear memory (0 = none)
	// Exports maps names to function indexes. Function index space:
	// imports first, then module functions (Wasm convention).
	Exports map[string]uint32
}

// PageSize is the linear memory page size.
const PageSize = 64 * 1024

// MaxMemPages bounds filter memory (1 MiB).
const MaxMemPages = 16

// NumImports returns the import count (the first function indexes).
func (m *Module) NumImports() uint32 { return uint32(len(m.Imports)) }

// FuncTypeAt returns the signature of function index i (imports included).
func (m *Module) FuncTypeAt(i uint32) (FuncType, error) {
	if i < m.NumImports() {
		ti := m.Imports[i].Type
		if int(ti) >= len(m.Types) {
			return FuncType{}, fmt.Errorf("wasm: import %d has bad type %d", i, ti)
		}
		return m.Types[ti], nil
	}
	fi := i - m.NumImports()
	if int(fi) >= len(m.Funcs) {
		return FuncType{}, fmt.Errorf("wasm: function index %d out of range", i)
	}
	ti := m.Funcs[fi].Type
	if int(ti) >= len(m.Types) {
		return FuncType{}, fmt.Errorf("wasm: function %d has bad type %d", fi, ti)
	}
	return m.Types[ti], nil
}

// Bytecode opcodes (values chosen to echo real Wasm where it exists).
const (
	OpUnreachable uint8 = 0x00
	OpNop         uint8 = 0x01
	OpBlock       uint8 = 0x02 // [blocktype u8]
	OpLoop        uint8 = 0x03 // [blocktype u8]
	OpIf          uint8 = 0x04 // [blocktype u8]
	OpElse        uint8 = 0x05
	OpEnd         uint8 = 0x0B
	OpBr          uint8 = 0x0C // [depth u32]
	OpBrIf        uint8 = 0x0D // [depth u32]
	OpReturn      uint8 = 0x0F
	OpCall        uint8 = 0x10 // [func u32]
	OpDrop        uint8 = 0x1A
	OpSelect      uint8 = 0x1B

	OpLocalGet  uint8 = 0x20 // [idx u32]
	OpLocalSet  uint8 = 0x21
	OpLocalTee  uint8 = 0x22
	OpGlobalGet uint8 = 0x23
	OpGlobalSet uint8 = 0x24

	OpI32Load  uint8 = 0x28 // [offset u32]
	OpI64Load  uint8 = 0x29
	OpI32Store uint8 = 0x36
	OpI64Store uint8 = 0x37

	OpI32Const uint8 = 0x41 // [imm i32]
	OpI64Const uint8 = 0x42 // [imm i64]

	// i32 compare/arith.
	OpI32Eqz  uint8 = 0x45
	OpI32Eq   uint8 = 0x46
	OpI32Ne   uint8 = 0x47
	OpI32LtS  uint8 = 0x48
	OpI32LtU  uint8 = 0x49
	OpI32GtS  uint8 = 0x4A
	OpI32GtU  uint8 = 0x4B
	OpI32LeS  uint8 = 0x4C
	OpI32GeS  uint8 = 0x4E
	OpI32Add  uint8 = 0x6A
	OpI32Sub  uint8 = 0x6B
	OpI32Mul  uint8 = 0x6C
	OpI32DivS uint8 = 0x6D
	OpI32DivU uint8 = 0x6E
	OpI32RemU uint8 = 0x70
	OpI32And  uint8 = 0x71
	OpI32Or   uint8 = 0x72
	OpI32Xor  uint8 = 0x73
	OpI32Shl  uint8 = 0x74
	OpI32ShrS uint8 = 0x75
	OpI32ShrU uint8 = 0x76

	// i64 compare/arith.
	OpI64Eqz  uint8 = 0x50
	OpI64Eq   uint8 = 0x51
	OpI64Ne   uint8 = 0x52
	OpI64LtS  uint8 = 0x53
	OpI64LtU  uint8 = 0x54
	OpI64GtS  uint8 = 0x55
	OpI64GtU  uint8 = 0x56
	OpI64LeS  uint8 = 0x57
	OpI64GeS  uint8 = 0x59
	OpI64Add  uint8 = 0x7C
	OpI64Sub  uint8 = 0x7D
	OpI64Mul  uint8 = 0x7E
	OpI64DivS uint8 = 0x7F
	OpI64DivU uint8 = 0x80
	OpI64RemU uint8 = 0x82
	OpI64And  uint8 = 0x83
	OpI64Or   uint8 = 0x84
	OpI64Xor  uint8 = 0x85
	OpI64Shl  uint8 = 0x86
	OpI64ShrS uint8 = 0x87
	OpI64ShrU uint8 = 0x88

	OpI32WrapI64   uint8 = 0xA7
	OpI64ExtendI32 uint8 = 0xAC // unsigned extension
)

// BlockEmpty is the blocktype for blocks producing no value; otherwise the
// blocktype byte is the ValType produced.
const BlockEmpty uint8 = 0x40

// magic identifies the RDXW container.
var magic = [4]byte{'R', 'D', 'X', 'W'}

// Encode serializes the module to the RDXW container.
//
// Layout: magic, version u16, then sections, each [tag u8][len u32][body]:
// 1=types 2=imports 3=funcs 4=globals 5=memory 6=exports 7=name.
func Encode(m *Module) []byte {
	var out []byte
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint16(out, 1)

	section := func(tag uint8, body []byte) {
		out = append(out, tag)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
		out = append(out, body...)
	}

	var b []byte
	b = binary.LittleEndian.AppendUint32(nil, uint32(len(m.Types)))
	for _, t := range m.Types {
		b = append(b, uint8(len(t.Params)))
		for _, p := range t.Params {
			b = append(b, uint8(p))
		}
		b = append(b, uint8(len(t.Results)))
		for _, r := range t.Results {
			b = append(b, uint8(r))
		}
	}
	section(1, b)

	b = binary.LittleEndian.AppendUint32(nil, uint32(len(m.Imports)))
	for _, im := range m.Imports {
		b = appendString(b, im.Name)
		b = binary.LittleEndian.AppendUint32(b, im.Type)
	}
	section(2, b)

	b = binary.LittleEndian.AppendUint32(nil, uint32(len(m.Funcs)))
	for _, f := range m.Funcs {
		b = binary.LittleEndian.AppendUint32(b, f.Type)
		b = append(b, uint8(len(f.Locals)))
		for _, l := range f.Locals {
			b = append(b, uint8(l))
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(len(f.Body)))
		b = append(b, f.Body...)
	}
	section(3, b)

	b = binary.LittleEndian.AppendUint32(nil, uint32(len(m.Globals)))
	for _, g := range m.Globals {
		b = append(b, uint8(g.Type))
		b = binary.LittleEndian.AppendUint64(b, uint64(g.Init))
	}
	section(4, b)

	b = binary.LittleEndian.AppendUint32(nil, m.MemPages)
	section(5, b)

	b = binary.LittleEndian.AppendUint32(nil, uint32(len(m.Exports)))
	for _, kv := range sortedExports(m.Exports) {
		b = appendString(b, kv.name)
		b = binary.LittleEndian.AppendUint32(b, kv.idx)
	}
	section(6, b)

	section(7, appendString(nil, m.Name))
	return out
}

type exportKV struct {
	name string
	idx  uint32
}

func sortedExports(m map[string]uint32) []exportKV {
	out := make([]exportKV, 0, len(m))
	for k, v := range m {
		out = append(out, exportKV{k, v})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].name < out[j-1].name; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// Decode parses an RDXW container.
func Decode(data []byte) (*Module, error) {
	r := &reader{b: data}
	var mg [4]byte
	copy(mg[:], r.bytes(4))
	if r.err != nil || mg != magic {
		return nil, errors.New("wasm: bad magic")
	}
	if v := r.u16(); v != 1 {
		return nil, fmt.Errorf("wasm: unsupported version %d", v)
	}
	m := &Module{Exports: map[string]uint32{}}
	for r.err == nil && r.remaining() > 0 {
		tag := r.u8()
		n := r.u32()
		body := r.bytes(int(n))
		if r.err != nil {
			break
		}
		sr := &reader{b: body}
		switch tag {
		case 1:
			cnt := sr.u32()
			for i := uint32(0); i < cnt && sr.err == nil; i++ {
				var t FuncType
				np := sr.u8()
				for j := uint8(0); j < np; j++ {
					t.Params = append(t.Params, ValType(sr.u8()))
				}
				nr := sr.u8()
				for j := uint8(0); j < nr; j++ {
					t.Results = append(t.Results, ValType(sr.u8()))
				}
				m.Types = append(m.Types, t)
			}
		case 2:
			cnt := sr.u32()
			for i := uint32(0); i < cnt && sr.err == nil; i++ {
				name := sr.str()
				typ := sr.u32()
				m.Imports = append(m.Imports, Import{Name: name, Type: typ})
			}
		case 3:
			cnt := sr.u32()
			for i := uint32(0); i < cnt && sr.err == nil; i++ {
				var f Func
				f.Type = sr.u32()
				nl := sr.u8()
				for j := uint8(0); j < nl; j++ {
					f.Locals = append(f.Locals, ValType(sr.u8()))
				}
				bl := sr.u32()
				f.Body = append([]byte(nil), sr.bytes(int(bl))...)
				m.Funcs = append(m.Funcs, f)
			}
		case 4:
			cnt := sr.u32()
			for i := uint32(0); i < cnt && sr.err == nil; i++ {
				g := Global{Type: ValType(sr.u8())}
				g.Init = int64(sr.u64())
				m.Globals = append(m.Globals, g)
			}
		case 5:
			m.MemPages = sr.u32()
		case 6:
			cnt := sr.u32()
			for i := uint32(0); i < cnt && sr.err == nil; i++ {
				name := sr.str()
				m.Exports[name] = sr.u32()
			}
		case 7:
			m.Name = sr.str()
		default:
			return nil, fmt.Errorf("wasm: unknown section %d", tag)
		}
		if sr.err != nil {
			return nil, fmt.Errorf("wasm: section %d: %w", tag, sr.err)
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("wasm: %w", r.err)
	}
	return m, nil
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.remaining() < n {
		r.err = errors.New("truncated")
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) u8() uint8 {
	b := r.bytes(1)
	if r.err != nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.bytes(2)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.bytes(4)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.bytes(8)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) str() string {
	n := r.u16()
	return string(r.bytes(int(n)))
}
