package cpu

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunExecutes(t *testing.T) {
	c := New(2)
	ran := false
	if err := c.Run(context.Background(), func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("task did not run")
	}
	st := c.Stats()
	if st.TasksCompleted != 1 {
		t.Errorf("tasks = %d, want 1", st.TasksCompleted)
	}
}

func TestConcurrencyBoundedByCores(t *testing.T) {
	const cores = 3
	c := New(cores)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Run(context.Background(), func() {
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				cur.Add(-1)
			})
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > cores {
		t.Errorf("peak concurrency %d exceeded core bound %d", p, cores)
	}
	if p := peak.Load(); p < 2 {
		t.Errorf("peak concurrency %d suspiciously low; pool not parallel", p)
	}
}

func TestQueueTimeAccountedUnderContention(t *testing.T) {
	c := New(1)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Run(context.Background(), func() { time.Sleep(5 * time.Millisecond) })
		}()
	}
	wg.Wait()
	st := c.Stats()
	// 4 serialized 5ms tasks on 1 core: later tasks waited.
	if st.QueueTime < 10*time.Millisecond {
		t.Errorf("queue time = %v, want >= 10ms", st.QueueTime)
	}
	if st.BusyTime < 18*time.Millisecond {
		t.Errorf("busy time = %v, want ~20ms", st.BusyTime)
	}
}

func TestRunContextCancelledWhileQueued(t *testing.T) {
	c := New(1)
	release := make(chan struct{})
	go c.Run(context.Background(), func() { <-release })
	time.Sleep(time.Millisecond) // let the blocker take the core

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := c.Run(ctx, func() { t.Error("should not run") })
	if err != context.DeadlineExceeded {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
	close(release)
}

func TestStopRejectsNewWork(t *testing.T) {
	c := New(1)
	c.Stop()
	if err := c.Run(context.Background(), func() {}); err != ErrStopped {
		t.Errorf("Run after stop = %v, want ErrStopped", err)
	}
	if err := c.Go(func() {}); err != ErrStopped {
		t.Errorf("Go after stop = %v, want ErrStopped", err)
	}
}

func TestStopWaitsForAsyncTasks(t *testing.T) {
	c := New(2)
	var done atomic.Int64
	for i := 0; i < 5; i++ {
		if err := c.Go(func() {
			time.Sleep(2 * time.Millisecond)
			done.Add(1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.Stop()
	if done.Load() != 5 {
		t.Errorf("Stop returned before async tasks finished: %d/5", done.Load())
	}
}

func TestUtilization(t *testing.T) {
	c := New(1)
	c.Run(context.Background(), func() { time.Sleep(20 * time.Millisecond) })
	st := c.Stats()
	if st.Utilization <= 0 || st.Utilization > 1 {
		t.Errorf("utilization = %v out of (0,1]", st.Utilization)
	}
}

func TestBurnDuration(t *testing.T) {
	start := time.Now()
	Burn(2 * time.Millisecond)
	if el := time.Since(start); el < 2*time.Millisecond {
		t.Errorf("Burn(2ms) returned after %v", el)
	}
	start = time.Now()
	Burn(200 * time.Microsecond) // spin path
	if el := time.Since(start); el < 200*time.Microsecond {
		t.Errorf("Burn(200us) returned after %v", el)
	}
	Burn(0)  // no-op
	Burn(-1) // no-op
}

func TestNewPanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0)
}
