// Package cpu models a node's CPU cores as a bounded execution pool.
//
// Every piece of *software* work on an RDX data-plane node — application
// request handling, extension execution, and (in the agent baseline) the
// verify/JIT/load pipeline — must run on one of the node's cores. Cores are
// a hard concurrency bound enforced by semaphore, so control-path and
// data-path work genuinely queue against each other: this is the mechanism
// behind the paper's Fig 2c contention collapse and the +25.3% Redis claim.
//
// One-sided RDMA operations never touch this pool; the software RNIC in
// package rdma services them on its own goroutines. That asymmetry is the
// whole point of RDX's agentless architecture.
package cpu

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrStopped is returned when work is submitted to a stopped core pool.
var ErrStopped = errors.New("cpu: core pool stopped")

// Cores is a fixed-size pool of simulated CPU cores.
type Cores struct {
	n   int
	sem chan struct{}

	stopped atomic.Bool
	wg      sync.WaitGroup

	busyNanos  atomic.Int64 // cumulative time cores spent executing tasks
	tasks      atomic.Int64 // tasks completed
	queueNanos atomic.Int64 // cumulative time tasks waited for a core
	started    time.Time
}

// New creates a pool with n cores. n must be positive.
func New(n int) *Cores {
	if n <= 0 {
		panic("cpu: core count must be positive")
	}
	return &Cores{
		n:       n,
		sem:     make(chan struct{}, n),
		started: time.Now(),
	}
}

// N returns the number of cores.
func (c *Cores) N() int { return c.n }

// Run executes fn on a core, blocking until a core is free and fn returns.
// It returns ErrStopped if the pool has been stopped, or ctx.Err() if the
// context is cancelled while waiting for a core.
func (c *Cores) Run(ctx context.Context, fn func()) error {
	if c.stopped.Load() {
		return ErrStopped
	}
	return c.exec(ctx, fn)
}

// exec acquires a core and runs fn. Admission control (the stopped check)
// is the caller's job: work already admitted must complete even if Stop
// lands while it is queued.
func (c *Cores) exec(ctx context.Context, fn func()) error {
	wait := time.Now()
	select {
	case c.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	c.queueNanos.Add(int64(time.Since(wait)))
	start := time.Now()
	defer func() {
		c.busyNanos.Add(int64(time.Since(start)))
		c.tasks.Add(1)
		<-c.sem
	}()
	fn()
	return nil
}

// Go schedules fn asynchronously on a core and returns immediately; fn runs
// once a core frees up. Returns ErrStopped if the pool is stopped. Work
// admitted before Stop is guaranteed to run; Stop waits for it.
func (c *Cores) Go(fn func()) error {
	if c.stopped.Load() {
		return ErrStopped
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		_ = c.exec(context.Background(), fn)
	}()
	return nil
}

// Stop prevents new work and waits for in-flight tasks to finish.
func (c *Cores) Stop() {
	c.stopped.Store(true)
	c.wg.Wait()
	// Drain any cores still held by synchronous Run callers: they finish
	// on their own; nothing to do here beyond the flag.
}

// Stats is a snapshot of pool accounting.
type Stats struct {
	Cores          int
	TasksCompleted int64
	BusyTime       time.Duration // summed across cores
	QueueTime      time.Duration // summed across tasks
	WallTime       time.Duration
	Utilization    float64 // BusyTime / (Cores * WallTime), in [0,1]
}

// Stats returns a snapshot of the pool's accounting counters.
func (c *Cores) Stats() Stats {
	wall := time.Since(c.started)
	busy := time.Duration(c.busyNanos.Load())
	util := 0.0
	if wall > 0 {
		util = float64(busy) / (float64(c.n) * float64(wall))
		if util > 1 {
			util = 1
		}
	}
	return Stats{
		Cores:          c.n,
		TasksCompleted: c.tasks.Load(),
		BusyTime:       busy,
		QueueTime:      time.Duration(c.queueNanos.Load()),
		WallTime:       wall,
		Utilization:    util,
	}
}

// Burn occupies the calling core for approximately d of simulated CPU work.
// The core's semaphore slot stays held for the duration, which is what makes
// contention visible to other tasks. Long burns sleep (cheap and accurate at
// millisecond scale); sub-millisecond burns spin, because OS sleep
// granularity would otherwise quantize microsecond-scale request costs. Use
// it inside a Run/Go callback to model fixed-cost request handling.
func Burn(d time.Duration) {
	if d <= 0 {
		return
	}
	if d >= time.Millisecond {
		time.Sleep(d)
		return
	}
	end := time.Now().Add(d)
	for time.Now().Before(end) {
		for i := 0; i < 64; i++ {
			_ = i * i
		}
	}
}
