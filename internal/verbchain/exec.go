package verbchain

import "errors"

// Env is the memory surface a chain executes against. The rdma endpoint
// implements it over its arena and live MR table; the deterministic
// simulator implements it over a host's arena with fire-time MR
// resolution. Every access re-resolves its rkey, so a rotation lands on
// in-flight chains exactly as it lands on single verbs.
//
// Implementations return ErrRevoked (possibly wrapped) when an rkey no
// longer resolves; any other error is a fault (bounds, permissions).
type Env interface {
	LoadQword(rkey uint32, addr uint64) (uint64, error)
	StoreQword(rkey uint32, addr uint64, v uint64) error
	CompareAndSwap(rkey uint32, addr uint64, old, new uint64) (prev uint64, swapped bool, err error)
	FetchAdd(rkey uint32, addr uint64, delta uint64) (prev uint64, err error)
	// Yield is called between WAIT spins; the endpoint yields the
	// goroutine, the simulator does nothing (its WAITs see a frozen
	// world, so an unsatisfied WAIT simply exhausts its budget).
	Yield()
}

// ErrRevoked is returned (or wrapped) by Env implementations when a
// chain target's rkey no longer resolves — the region was rotated or
// deregistered after the chain was posted. Execute maps it to
// StatusRevoked: the chain stops without executing further steps.
var ErrRevoked = errors.New("verbchain: chain target rkey revoked")

// Result is one execution's outcome: the packed status word written back
// to the region and the number of steps executed.
type Result struct {
	Status uint64
	Steps  uint64
}

// Code returns the result's status code.
func (r Result) Code() uint8 { return StatusCode(r.Status) }

// Execute runs one trigger of p against env. regs is the live register
// file (mutated in place; the caller persists it back to the region),
// trigger is the post-increment trigger count. Programs reaching here
// passed Decode's structural validation, but every limit is enforced
// again — the interpreter trusts nothing.
func Execute(p *Program, regs *[NRegs]uint64, trigger uint64, env Env) Result {
	operand := func(o Operand) uint64 {
		switch o.Kind {
		case OperandReg:
			return regs[o.Reg%NRegs]
		case OperandTrigger:
			return trigger
		default:
			return o.Imm
		}
	}
	enabled := func(c Cond) bool {
		switch c.Kind {
		case CondRegEq:
			return regs[c.Reg%NRegs] == c.Val
		case CondTrigEq:
			return trigger == c.Val
		default:
			return true
		}
	}
	setDst := func(op *Op, v uint64) {
		if op.Dst != NoReg && op.Dst < NRegs {
			regs[op.Dst] = v
		}
	}

	var rem [MaxOps]uint32
	var armed [MaxOps]bool
	steps := uint64(0)
	for pc := 0; pc < len(p.Ops) && pc < MaxOps; {
		if steps >= MaxTotalSteps {
			return Result{Status: PackStatus(StatusFault, pc), Steps: steps}
		}
		// The guard is re-read before EVERY step: a fencing-epoch bump
		// mid-chain revokes the remaining steps, not just the next trigger.
		if p.Guard.Enabled {
			v, err := env.LoadQword(p.Guard.RKey, p.Guard.Addr)
			if err != nil || v != p.Guard.Want {
				return Result{Status: PackStatus(StatusRevoked, pc), Steps: steps}
			}
		}
		op := &p.Ops[pc]
		steps++
		if op.Kind != KindLoop && !enabled(op.When) {
			pc++
			continue
		}
		var err error
		switch op.Kind {
		case KindWrite:
			err = env.StoreQword(op.RKey, op.Addr, operand(op.Src))
		case KindCAS:
			var prev uint64
			var swapped bool
			prev, swapped, err = env.CompareAndSwap(op.RKey, op.Addr, operand(op.Cmp), operand(op.Src))
			if err == nil {
				setDst(op, prev)
				if !swapped && op.AbortIfLost {
					return Result{Status: PackStatus(StatusFault, pc), Steps: steps}
				}
			}
		case KindFetchAdd:
			var prev uint64
			prev, err = env.FetchAdd(op.RKey, op.Addr, operand(op.Src))
			if err == nil {
				setDst(op, prev)
			}
		case KindWait:
			want := operand(op.Src)
			var v uint64
			hit := false
			for i := uint32(0); i < op.Spins; i++ {
				if v, err = env.LoadQword(op.RKey, op.Addr); err != nil {
					break
				}
				if v == want {
					hit = true
					break
				}
				env.Yield()
			}
			if err == nil {
				setDst(op, v)
				if !hit {
					return Result{Status: PackStatus(StatusFault, pc), Steps: steps}
				}
			}
		case KindLoop:
			if !armed[pc] {
				rem[pc] = op.Spins
				armed[pc] = true
			}
			rem[pc]--
			if rem[pc] > 0 {
				pc = int(op.To)
				continue
			}
			armed[pc] = false
		default:
			return Result{Status: PackStatus(StatusFault, pc), Steps: steps}
		}
		if err != nil {
			code := StatusFault
			if errors.Is(err, ErrRevoked) {
				code = StatusRevoked
			}
			return Result{Status: PackStatus(code, pc), Steps: steps}
		}
		pc++
	}
	return Result{Status: PackStatus(StatusOK, len(p.Ops)), Steps: steps}
}
