package verbchain

import (
	"errors"
	"testing"
)

// FuzzChainValidate feeds arbitrary bytes to the program decoder and, for
// anything that decodes, runs it against a sealed environment. The
// invariants: malformed bytes are rejected with ErrMalformed (never a
// panic), and anything that does execute stays within the static step
// bound — a hostile pre-posted program cannot occupy the NIC unboundedly.
func FuzzChainValidate(f *testing.F) {
	f.Add([]byte{})
	f.Add((&Program{Ops: []Op{
		{Kind: KindWrite, RKey: 1, Addr: 0, Src: Imm(1), Dst: NoReg},
	}}).Encode())
	f.Add((&Program{
		Ops: []Op{
			{Kind: KindFetchAdd, RKey: 1, Addr: 0, Src: Imm(1), Dst: 0},
			{Kind: KindLoop, To: 0, Spins: 8, Dst: NoReg},
			{Kind: KindCAS, RKey: 1, Addr: 8, Cmp: Reg(0), Src: Trigger(), Dst: 1, When: WhenTrigger(2), AbortIfLost: true},
			{Kind: KindWait, RKey: 1, Addr: 16, Src: Imm(3), Spins: 4, Dst: NoReg},
		},
		Guard:    Guard{Enabled: true, RKey: 1, Addr: 24, Want: 1},
		Doorbell: &Doorbell{RKey: 1, Addr: 32, Imm: 9},
	}).Encode())

	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := Decode(b)
		if err != nil {
			if !errors.Is(err, ErrMalformed) {
				t.Fatalf("decode error outside ErrMalformed: %v", err)
			}
			return
		}
		// Decoded programs must satisfy the structural rules...
		if verr := p.Validate(nil); verr != nil {
			t.Fatalf("Decode accepted what Validate rejects: %v", verr)
		}
		// ...and re-encode to the identical bytes (canonical form).
		if re := p.Encode(); string(re) != string(b) {
			t.Fatalf("decode/encode not canonical: %d bytes in, %d out", len(b), len(re))
		}
		// Execute against a permissive environment: the step cap must hold.
		env := newMemEnv()
		env.words[key(p.Guard.RKey, p.Guard.Addr)] = p.Guard.Want
		var regs [NRegs]uint64
		r := Execute(p, &regs, 1, env)
		if r.Steps > MaxTotalSteps {
			t.Fatalf("executed %d steps past cap %d", r.Steps, MaxTotalSteps)
		}
	})
}
