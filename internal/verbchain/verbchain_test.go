package verbchain

import (
	"errors"
	"reflect"
	"testing"
)

// testRegions is a two-region map: one general-purpose window, one
// read-only window.
func testRegions() []Region {
	return []Region{
		{RKey: 0x10, Addr: 0, Len: 4096, Read: true, Write: true, Atomic: true},
		{RKey: 0x20, Addr: 4096, Len: 4096, Read: true},
	}
}

func writeOp(addr uint64, v uint64) Op {
	return Op{Kind: KindWrite, RKey: 0x10, Addr: addr, Src: Imm(v), Dst: NoReg}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	p := &Program{Ops: []Op{
		{Kind: KindFetchAdd, RKey: 0x10, Addr: 0, Src: Imm(1), Dst: 0},
		{Kind: KindCAS, RKey: 0x10, Addr: 8, Cmp: Reg(0), Src: Trigger(), Dst: 1, When: WhenTrigger(3)},
		{Kind: KindWait, RKey: 0x20, Addr: 4096, Src: Imm(7), Spins: 16, Dst: NoReg},
		writeOp(16, 42),
		{Kind: KindLoop, To: 3, Spins: 4, Dst: NoReg},
	}}
	p.Guard = Guard{Enabled: true, RKey: 0x20, Addr: 4104, Want: 9}
	p.Doorbell = &Doorbell{RKey: 0x10, Addr: 24, Imm: 1}
	if err := p.Validate(testRegions()); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	regions := testRegions()
	cases := []struct {
		name string
		p    *Program
	}{
		{"empty", &Program{}},
		{"too-long", &Program{Ops: make([]Op, MaxOps+1)}},
		{"unknown-kind", &Program{Ops: []Op{{Kind: 99, Dst: NoReg}}}},
		{"bad-dst-reg", &Program{Ops: []Op{{Kind: KindWrite, RKey: 0x10, Src: Imm(1), Dst: NRegs}}}},
		{"bad-src-reg", &Program{Ops: []Op{{Kind: KindWrite, RKey: 0x10, Src: Reg(NRegs), Dst: NoReg}}}},
		{"bad-cond", &Program{Ops: []Op{{Kind: KindWrite, RKey: 0x10, Src: Imm(1), Dst: NoReg,
			When: Cond{Kind: CondRegEq, Reg: NRegs}}}}},
		{"unknown-rkey", &Program{Ops: []Op{{Kind: KindWrite, RKey: 0xdead, Src: Imm(1), Dst: NoReg}}}},
		{"write-to-readonly", &Program{Ops: []Op{{Kind: KindWrite, RKey: 0x20, Addr: 4096, Src: Imm(1), Dst: NoReg}}}},
		{"atomic-on-readonly", &Program{Ops: []Op{{Kind: KindFetchAdd, RKey: 0x20, Addr: 4096, Src: Imm(1), Dst: NoReg}}}},
		{"unaligned", &Program{Ops: []Op{{Kind: KindWrite, RKey: 0x10, Addr: 4, Src: Imm(1), Dst: NoReg}}}},
		{"out-of-bounds", &Program{Ops: []Op{{Kind: KindWrite, RKey: 0x10, Addr: 4096, Src: Imm(1), Dst: NoReg}}}},
		{"forward-loop", &Program{Ops: []Op{
			writeOp(0, 1),
			{Kind: KindLoop, To: 1, Spins: 2, Dst: NoReg},
		}}},
		{"zero-loop-count", &Program{Ops: []Op{
			writeOp(0, 1),
			{Kind: KindLoop, To: 0, Spins: 0, Dst: NoReg},
		}}},
		{"zero-wait-spins", &Program{Ops: []Op{{Kind: KindWait, RKey: 0x10, Addr: 0, Src: Imm(1), Spins: 0, Dst: NoReg}}}},
		{"bad-guard", &Program{
			Ops:   []Op{writeOp(0, 1)},
			Guard: Guard{Enabled: true, RKey: 0x10, Addr: 3, Want: 1},
		}},
		{"step-bound-blown", &Program{Ops: []Op{
			writeOp(0, 1),
			{Kind: KindLoop, To: 0, Spins: MaxLoopIters, Dst: NoReg},
			{Kind: KindLoop, To: 0, Spins: MaxLoopIters, Dst: NoReg},
		}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.p.Validate(regions); !errors.Is(err, ErrInvalid) {
				t.Fatalf("want ErrInvalid, got %v", err)
			}
		})
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := &Program{Ops: []Op{
		{Kind: KindFetchAdd, RKey: 0x10, Addr: 0, Src: Imm(3), Dst: 2},
		{Kind: KindCAS, RKey: 0x10, Addr: 8, Cmp: Reg(2), Src: Trigger(), Dst: NoReg,
			When: WhenReg(1, 77), AbortIfLost: true},
		{Kind: KindWait, RKey: 0x20, Addr: 4096, Src: Imm(5), Spins: 9, Dst: 0},
		writeOp(16, 1),
		{Kind: KindLoop, To: 2, Spins: 3, Dst: NoReg},
	},
		Guard:    Guard{Enabled: true, RKey: 0x99, Addr: 0x1000, Want: 0xabc},
		Doorbell: &Doorbell{RKey: 0x10, Addr: 24, Imm: 0xbeef},
	}
	got, err := Decode(p.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	good := (&Program{Ops: []Op{writeOp(0, 1)}}).Encode()
	cases := map[string][]byte{
		"empty":        {},
		"short-header": good[:hdrSize-1],
		"bad-magic":    append([]byte{0, 0, 0, 0}, good[4:]...),
		"truncated-op": good[:len(good)-1],
		"trailing":     append(append([]byte(nil), good...), 0),
	}
	badKind := append([]byte(nil), good...)
	badKind[hdrSize] = 200
	cases["bad-op-kind"] = badKind
	badCount := append([]byte(nil), good...)
	badCount[6], badCount[7] = 0, 0
	cases["zero-count"] = badCount
	for name, b := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Decode(b); !errors.Is(err, ErrMalformed) {
				t.Fatalf("want ErrMalformed, got %v", err)
			}
		})
	}
}

// memEnv is a toy Env over a flat qword map keyed by (rkey, addr), with a
// revoked-rkey set.
type memEnv struct {
	words   map[uint64]uint64
	revoked map[uint32]bool
	loads   int
}

func newMemEnv() *memEnv {
	return &memEnv{words: map[uint64]uint64{}, revoked: map[uint32]bool{}}
}

func key(rkey uint32, addr uint64) uint64 { return uint64(rkey)<<40 ^ addr }

func (m *memEnv) check(rkey uint32) error {
	if m.revoked[rkey] {
		return ErrRevoked
	}
	return nil
}

func (m *memEnv) LoadQword(rkey uint32, addr uint64) (uint64, error) {
	m.loads++
	if err := m.check(rkey); err != nil {
		return 0, err
	}
	return m.words[key(rkey, addr)], nil
}

func (m *memEnv) StoreQword(rkey uint32, addr uint64, v uint64) error {
	if err := m.check(rkey); err != nil {
		return err
	}
	m.words[key(rkey, addr)] = v
	return nil
}

func (m *memEnv) CompareAndSwap(rkey uint32, addr uint64, old, new uint64) (uint64, bool, error) {
	if err := m.check(rkey); err != nil {
		return 0, false, err
	}
	prev := m.words[key(rkey, addr)]
	if prev == old {
		m.words[key(rkey, addr)] = new
		return prev, true, nil
	}
	return prev, false, nil
}

func (m *memEnv) FetchAdd(rkey uint32, addr uint64, delta uint64) (uint64, error) {
	if err := m.check(rkey); err != nil {
		return 0, err
	}
	prev := m.words[key(rkey, addr)]
	m.words[key(rkey, addr)] = prev + delta
	return prev, nil
}

func (m *memEnv) Yield() {}

func TestExecuteBarrierFanIn(t *testing.T) {
	// The canonical barrier: the commit CAS is enabled only on trigger 3.
	p := &Program{Ops: []Op{
		{Kind: KindCAS, RKey: 1, Addr: 0, Cmp: Imm(100), Src: Imm(200), Dst: 0, When: WhenTrigger(3)},
	}}
	env := newMemEnv()
	env.words[key(1, 0)] = 100
	var regs [NRegs]uint64
	for trig := uint64(1); trig <= 2; trig++ {
		r := Execute(p, &regs, trig, env)
		if r.Code() != StatusOK || env.words[key(1, 0)] != 100 {
			t.Fatalf("trigger %d: commit fired early (status %d, word %d)", trig, r.Code(), env.words[key(1, 0)])
		}
	}
	r := Execute(p, &regs, 3, env)
	if r.Code() != StatusOK || env.words[key(1, 0)] != 200 {
		t.Fatalf("trigger 3: commit did not fire (status %d, word %d)", r.Code(), env.words[key(1, 0)])
	}
	if regs[0] != 100 {
		t.Fatalf("CAS prev not captured: regs[0] = %d", regs[0])
	}
}

func TestExecuteLoopAndRegisters(t *testing.T) {
	// FETCH_ADD x4 via a counted loop, accumulating into one word.
	p := &Program{Ops: []Op{
		{Kind: KindFetchAdd, RKey: 1, Addr: 0, Src: Imm(10), Dst: 0},
		{Kind: KindLoop, To: 0, Spins: 4, Dst: NoReg},
	}}
	env := newMemEnv()
	var regs [NRegs]uint64
	r := Execute(p, &regs, 1, env)
	if r.Code() != StatusOK {
		t.Fatalf("status %d", r.Code())
	}
	if env.words[key(1, 0)] != 40 {
		t.Fatalf("loop body ran %d/4 times", env.words[key(1, 0)]/10)
	}
	if regs[0] != 30 {
		t.Fatalf("last prev = %d, want 30", regs[0])
	}
	if r.Steps != 8 { // 4 adds + 4 loop steps
		t.Fatalf("steps = %d, want 8", r.Steps)
	}
}

func TestExecuteCASAbortIfLost(t *testing.T) {
	p := &Program{Ops: []Op{
		{Kind: KindCAS, RKey: 1, Addr: 0, Cmp: Imm(5), Src: Imm(6), Dst: NoReg, AbortIfLost: true},
		writeOp(8, 1),
	}}
	p.Ops[1].RKey = 1
	env := newMemEnv()
	env.words[key(1, 0)] = 999 // CAS will lose
	var regs [NRegs]uint64
	r := Execute(p, &regs, 1, env)
	if r.Code() != StatusFault || StatusPC(r.Status) != 0 {
		t.Fatalf("lost CAS did not fault at pc 0: status %#x", r.Status)
	}
	if _, ok := env.words[key(1, 8)]; ok {
		t.Fatal("op after aborting CAS executed")
	}
}

func TestExecuteWaitExhaustion(t *testing.T) {
	p := &Program{Ops: []Op{
		{Kind: KindWait, RKey: 1, Addr: 0, Src: Imm(7), Spins: 5, Dst: 0},
	}}
	env := newMemEnv() // word stays 0: wait can never be satisfied
	var regs [NRegs]uint64
	r := Execute(p, &regs, 1, env)
	if r.Code() != StatusFault {
		t.Fatalf("exhausted WAIT status %d, want fault", r.Code())
	}
	if env.loads != 5 {
		t.Fatalf("WAIT spun %d times, want 5", env.loads)
	}
	env.words[key(1, 0)] = 7
	if r = Execute(p, &regs, 2, env); r.Code() != StatusOK || regs[0] != 7 {
		t.Fatalf("satisfied WAIT: status %d regs[0]=%d", r.Code(), regs[0])
	}
}

func TestExecuteGuardRevokesMidChain(t *testing.T) {
	// Guard holds for the first step, then the first step itself bumps the
	// guarded epoch word — the second step must be revoked.
	p := &Program{
		Ops: []Op{
			{Kind: KindFetchAdd, RKey: 1, Addr: 0, Src: Imm(1), Dst: NoReg},
			writeOp(8, 42),
		},
		Guard: Guard{Enabled: true, RKey: 1, Addr: 0, Want: 5},
	}
	p.Ops[1].RKey = 1
	env := newMemEnv()
	env.words[key(1, 0)] = 5
	var regs [NRegs]uint64
	r := Execute(p, &regs, 1, env)
	if r.Code() != StatusRevoked || StatusPC(r.Status) != 1 {
		t.Fatalf("mid-chain guard bump not revoked: status %#x", r.Status)
	}
	if _, ok := env.words[key(1, 8)]; ok {
		t.Fatal("step after guard bump executed")
	}
}

func TestExecuteRevokedRKey(t *testing.T) {
	p := &Program{Ops: []Op{writeOp(0, 1)}}
	p.Ops[0].RKey = 1
	env := newMemEnv()
	env.revoked[1] = true
	var regs [NRegs]uint64
	if r := Execute(p, &regs, 1, env); r.Code() != StatusRevoked {
		t.Fatalf("rotated target rkey: status %d, want revoked", r.Code())
	}
}

func TestExecuteTriggerArgRegister(t *testing.T) {
	// The caller stores the trigger arg in regs[ArgReg] before Execute;
	// the program reads it as a normal register.
	p := &Program{Ops: []Op{
		{Kind: KindWrite, RKey: 1, Addr: 0, Src: Reg(ArgReg), Dst: NoReg},
	}}
	env := newMemEnv()
	var regs [NRegs]uint64
	regs[ArgReg] = 0xfeed
	if r := Execute(p, &regs, 1, env); r.Code() != StatusOK {
		t.Fatalf("status %d", r.Code())
	}
	if env.words[key(1, 0)] != 0xfeed {
		t.Fatalf("arg register not visible: %#x", env.words[key(1, 0)])
	}
}

func TestRegionLayout(t *testing.T) {
	p := &Program{Ops: []Op{writeOp(0, 1)}}
	b := EncodeRegion(p)
	if len(b) != RegionSize(p) {
		t.Fatalf("region %d bytes, want %d", len(b), RegionSize(p))
	}
	if RegionSize(p) > MaxRegionSize {
		t.Fatalf("region exceeds MaxRegionSize")
	}
	dec, err := Decode(b[OffProg:])
	if err != nil {
		t.Fatalf("region program decode: %v", err)
	}
	if len(dec.Ops) != 1 {
		t.Fatalf("decoded %d ops", len(dec.Ops))
	}
}
