// Package verbchain implements NIC-resident control programs: bounded
// chains of RDMA verbs (WRITE / CAS / FETCH_ADD / WAIT, plus counted
// backward loops) that are compiled and validated on the initiator,
// pre-posted into a chain region of the target's arena, and executed by
// the target's RNIC when a trigger doorbell fires — zero initiator round
// trips between trigger and effect, zero target-CPU involvement.
//
// The model follows RedN ("RDMA is Turing complete"): conditional edges
// are encoded as per-op enables (an op fires only when a register or the
// trigger count matches a value — the CAS-enable idiom), and iteration is
// restricted to counted backward loops, so every program's worst-case
// step count is computable at compile time. Validation rejects anything
// else: unbounded cycles, out-of-range registers, targets outside the
// registered regions the compiler was given, unaligned qwords.
//
// The package is deliberately pure — no dependency on the rdma transport.
// The rdma endpoint and the deterministic simulator both drive the same
// interpreter (Execute) through the Env interface, so chain semantics
// cannot drift between the wire and the model checker.
package verbchain

import (
	"errors"
	"fmt"
)

// Core limits. Programs are meant to be a handful of ops; the caps keep
// worst-case NIC occupancy per trigger bounded and statically checkable.
const (
	// NRegs is the register-file size. Registers live in the chain region
	// (persistent across triggers, remotely initializable). Register
	// NRegs-1 (R7) is the trigger-argument register: every trigger stores
	// its 8-byte argument there before the program runs.
	NRegs = 8
	// ArgReg is the register that receives the trigger argument.
	ArgReg = NRegs - 1
	// MaxOps bounds program length.
	MaxOps = 64
	// MaxLoopIters bounds one LOOP op's iteration count.
	MaxLoopIters = 1024
	// MaxTotalSteps bounds the statically-computed worst-case executed
	// steps of a program (loops expanded).
	MaxTotalSteps = 4096
	// MaxWaitSpins bounds one WAIT op's spin budget.
	MaxWaitSpins = 1 << 16
)

// NoReg as an Op.Dst discards the op's result.
const NoReg = 0xFF

// OpKind selects a chain op.
type OpKind uint8

const (
	// KindWrite stores Src as a qword at the target.
	KindWrite OpKind = 1
	// KindCAS compares the target qword with Cmp and stores Src if equal;
	// the previous value lands in Dst. With AbortIfLost set, a lost CAS
	// faults the chain (abort-on-conflict, the RedN conditional-halt).
	KindCAS OpKind = 2
	// KindFetchAdd atomically adds Src to the target qword; the previous
	// value lands in Dst.
	KindFetchAdd OpKind = 3
	// KindWait re-reads the target qword until it equals Src, up to Spins
	// attempts; exhaustion faults the chain. The last read lands in Dst.
	KindWait OpKind = 4
	// KindLoop jumps back to pc To until the op has executed Count times
	// (counted backward loop — the only legal cycle).
	KindLoop OpKind = 5
)

// OperandKind selects where an operand's value comes from.
type OperandKind uint8

const (
	// OperandImm is an immediate value.
	OperandImm OperandKind = 0
	// OperandReg reads a register.
	OperandReg OperandKind = 1
	// OperandTrigger reads the current trigger count (the value after
	// this trigger's increment) — the barrier fan-in source.
	OperandTrigger OperandKind = 2
)

// Operand is one value source.
type Operand struct {
	Kind OperandKind
	Imm  uint64
	Reg  uint8
}

// Imm returns an immediate operand.
func Imm(v uint64) Operand { return Operand{Kind: OperandImm, Imm: v} }

// Reg returns a register operand.
func Reg(i uint8) Operand { return Operand{Kind: OperandReg, Reg: i} }

// Trigger returns the trigger-count operand.
func Trigger() Operand { return Operand{Kind: OperandTrigger} }

// CondKind selects an op's enable predicate.
type CondKind uint8

const (
	// CondAlways enables the op unconditionally.
	CondAlways CondKind = 0
	// CondRegEq enables the op when register Reg equals Val.
	CondRegEq CondKind = 1
	// CondTrigEq enables the op when the trigger count equals Val — the
	// CAS-enable edge used for barrier fan-in: N-1 triggers skip the
	// commit op, the Nth fires it.
	CondTrigEq CondKind = 2
)

// Cond is a per-op conditional enable. A false condition skips the op;
// it is not a fault.
type Cond struct {
	Kind CondKind
	Reg  uint8
	Val  uint64
}

// WhenTrigger enables an op only on the n-th trigger.
func WhenTrigger(n uint64) Cond { return Cond{Kind: CondTrigEq, Val: n} }

// WhenReg enables an op only while register r equals v.
func WhenReg(r uint8, v uint64) Cond { return Cond{Kind: CondRegEq, Reg: r, Val: v} }

// Op is one chain operation.
type Op struct {
	Kind OpKind
	When Cond

	// RKey/Addr name the target qword (Write/CAS/FetchAdd/Wait). The rkey
	// is re-resolved by the executor at every step, so a rotation revokes
	// an in-flight chain exactly as it revokes single verbs.
	RKey uint32
	Addr uint64

	Src Operand // Write: value; CAS: new; FetchAdd: delta; Wait: expected
	Cmp Operand // CAS: expected old
	Dst uint8   // result register, or NoReg

	Spins uint32 // Wait: spin budget; Loop: iteration count
	To    uint8  // Loop: backward jump target pc

	// AbortIfLost faults the chain when a CAS does not swap.
	AbortIfLost bool
}

// Guard is an optional fencing predicate evaluated before every step: the
// qword at (RKey, Addr) must equal Want or the chain is revoked. Pointing
// it at a fencing-epoch word makes an epoch bump revoke resident chains
// without touching them.
type Guard struct {
	Enabled bool
	RKey    uint32
	Addr    uint64
	Want    uint64
}

// Doorbell optionally rings the endpoint's doorbell machinery at
// (RKey, Addr) with Imm after the chain completes successfully — the
// chain-side equivalent of WRITE_WITH_IMM's cc_event.
type Doorbell struct {
	RKey uint32
	Addr uint64
	Imm  uint32
}

// Program is a compiled chain.
type Program struct {
	Ops      []Op
	Guard    Guard
	Doorbell *Doorbell
}

// Region describes one remotely-accessible memory window for compile-time
// target checks (a transport-free mirror of an rdma.MR).
type Region struct {
	RKey   uint32
	Addr   uint64
	Len    uint64
	Read   bool
	Write  bool
	Atomic bool
}

func (r *Region) holdsQword(addr uint64) bool {
	return addr%8 == 0 && addr >= r.Addr && r.Len >= 8 && addr-r.Addr <= r.Len-8
}

func findRegion(regions []Region, rkey uint32) *Region {
	for i := range regions {
		if regions[i].RKey == rkey {
			return &regions[i]
		}
	}
	return nil
}

// ErrInvalid marks a program rejected at compile time.
var ErrInvalid = errors.New("verbchain: invalid program")

func invalidf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
}

// Validate checks a program against the compile-time rules: bounded
// length, registers in range, backward-only counted loops whose expansion
// stays under MaxTotalSteps, and — when regions is non-nil — every target
// resolvable to a registered region with the right permission, 8-aligned
// and in bounds. Chains that reach execution have always passed this.
func (p *Program) Validate(regions []Region) error {
	if len(p.Ops) == 0 {
		return invalidf("empty program")
	}
	if len(p.Ops) > MaxOps {
		return invalidf("%d ops exceeds max %d", len(p.Ops), MaxOps)
	}
	for pc := range p.Ops {
		op := &p.Ops[pc]
		if err := op.validate(pc, regions); err != nil {
			return err
		}
	}
	if p.Guard.Enabled && regions != nil {
		r := findRegion(regions, p.Guard.RKey)
		if r == nil || !r.Read || !r.holdsQword(p.Guard.Addr) {
			return invalidf("guard target %#x/%#x unreadable", p.Guard.RKey, p.Guard.Addr)
		}
	}
	if d := p.Doorbell; d != nil && regions != nil {
		r := findRegion(regions, d.RKey)
		if r == nil || !r.Write || d.Addr < r.Addr || d.Addr-r.Addr >= r.Len {
			return invalidf("doorbell target %#x/%#x unwritable", d.RKey, d.Addr)
		}
	}
	if steps, ok := p.boundSteps(); !ok {
		return invalidf("worst-case steps exceed %d", MaxTotalSteps)
	} else if steps > MaxTotalSteps {
		return invalidf("worst-case %d steps exceed %d", steps, MaxTotalSteps)
	}
	return nil
}

func (op *Op) validate(pc int, regions []Region) error {
	badReg := func(r uint8) bool { return r >= NRegs }
	if op.When.Kind > CondTrigEq || (op.When.Kind == CondRegEq && badReg(op.When.Reg)) {
		return invalidf("op %d: bad condition", pc)
	}
	checkOperand := func(o Operand, what string) error {
		if o.Kind > OperandTrigger || (o.Kind == OperandReg && badReg(o.Reg)) {
			return invalidf("op %d: bad %s operand", pc, what)
		}
		return nil
	}
	checkTarget := func(needWrite, needAtomic, needRead bool) error {
		if regions == nil {
			return nil
		}
		r := findRegion(regions, op.RKey)
		if r == nil {
			return invalidf("op %d: unknown rkey %#x", pc, op.RKey)
		}
		if (needWrite && !r.Write) || (needAtomic && !r.Atomic) || (needRead && !r.Read) {
			return invalidf("op %d: permission denied on rkey %#x", pc, op.RKey)
		}
		if !r.holdsQword(op.Addr) {
			return invalidf("op %d: target %#x out of bounds or unaligned", pc, op.Addr)
		}
		return nil
	}
	if op.Dst != NoReg && badReg(op.Dst) {
		return invalidf("op %d: bad dst register %d", pc, op.Dst)
	}
	switch op.Kind {
	case KindWrite:
		if err := checkOperand(op.Src, "src"); err != nil {
			return err
		}
		return checkTarget(true, false, false)
	case KindCAS:
		if err := checkOperand(op.Src, "src"); err != nil {
			return err
		}
		if err := checkOperand(op.Cmp, "cmp"); err != nil {
			return err
		}
		return checkTarget(false, true, false)
	case KindFetchAdd:
		if err := checkOperand(op.Src, "src"); err != nil {
			return err
		}
		return checkTarget(false, true, false)
	case KindWait:
		if err := checkOperand(op.Src, "src"); err != nil {
			return err
		}
		if op.Spins == 0 || op.Spins > MaxWaitSpins {
			return invalidf("op %d: wait spins %d outside [1,%d]", pc, op.Spins, MaxWaitSpins)
		}
		return checkTarget(false, false, true)
	case KindLoop:
		if int(op.To) >= pc {
			return invalidf("op %d: loop target %d is not strictly backward", pc, op.To)
		}
		if op.Spins == 0 || op.Spins > MaxLoopIters {
			return invalidf("op %d: loop count %d outside [1,%d]", pc, op.Spins, MaxLoopIters)
		}
		return nil
	default:
		return invalidf("op %d: unknown kind %d", pc, op.Kind)
	}
}

// boundSteps statically walks the program with loop counters, returning
// the worst-case executed step count (conditions assumed true, WAITs
// counted once — their spin budget bounds occupancy separately). Because
// jumps are backward and counted, the walk terminates; ok is false if it
// exceeds MaxTotalSteps first.
func (p *Program) boundSteps() (int, bool) {
	var rem [MaxOps]uint32
	var armed [MaxOps]bool
	steps := 0
	for pc := 0; pc < len(p.Ops); {
		steps++
		if steps > MaxTotalSteps {
			return steps, false
		}
		op := &p.Ops[pc]
		if op.Kind == KindLoop {
			if !armed[pc] {
				rem[pc] = op.Spins
				armed[pc] = true
			}
			rem[pc]--
			if rem[pc] > 0 {
				pc = int(op.To)
				continue
			}
			armed[pc] = false
		}
		pc++
	}
	return steps, true
}
