package verbchain

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Chain region layout. A chain region is a window of the target's arena
// holding one pre-posted program and its execution state; the trigger
// doorbell is the qword at its base. All words are little-endian (arena
// convention).
//
//	+0   trigger count qword — each OpChainTrigger FETCH-ADDs it; the
//	     post-increment value is the trigger count the program sees
//	+8   status qword — PackStatus(code, pc) of the last execution
//	+16  register file R0..R7 (64 bytes, persistent across triggers)
//	+80  program length qword (encoded bytes)
//	+88  encoded program
const (
	OffTrigger = 0
	OffStatus  = 8
	OffRegs    = 16
	OffProgLen = 80
	OffProg    = 88
)

// Program encoding sizes.
const (
	progMagic   = 0x52445843 // "RDXC"
	progVersion = 1
	hdrSize     = 44
	opSize      = 56

	// MaxProgBytes bounds an encoded program.
	MaxProgBytes = hdrSize + MaxOps*opSize
	// MaxRegionSize bounds a chain region.
	MaxRegionSize = OffProg + MaxProgBytes
)

// Status codes recorded in the region's status qword (low byte); the
// faulting/finishing pc rides in bits 8..31.
const (
	StatusIdle    uint8 = 0 // armed, never triggered
	StatusOK      uint8 = 1 // last execution completed
	StatusFault   uint8 = 2 // a step failed: bounds/permissions, lost CAS with AbortIfLost, WAIT exhausted, malformed program
	StatusRevoked uint8 = 3 // guard mismatch or target rkey rotated mid-chain
)

// PackStatus packs a status code and the pc it was raised at.
func PackStatus(code uint8, pc int) uint64 {
	return uint64(code) | uint64(uint32(pc))<<8
}

// StatusCode extracts the code from a packed status word.
func StatusCode(w uint64) uint8 { return uint8(w) }

// StatusPC extracts the pc from a packed status word.
func StatusPC(w uint64) int { return int(uint32(w >> 8)) }

// RegionSize returns the chain-region footprint of p.
func RegionSize(p *Program) int { return OffProg + encodedLen(p) }

func encodedLen(p *Program) int { return hdrSize + len(p.Ops)*opSize }

// Encode serializes a program. Encode does not validate; call Validate
// first — Decode enforces the structural rules on the way back in.
func (p *Program) Encode() []byte {
	b := make([]byte, 0, encodedLen(p))
	var flags uint8
	if p.Guard.Enabled {
		flags |= 1
	}
	if p.Doorbell != nil {
		flags |= 2
	}
	b = binary.LittleEndian.AppendUint32(b, progMagic)
	b = append(b, progVersion, flags)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(p.Ops)))
	b = binary.LittleEndian.AppendUint32(b, p.Guard.RKey)
	b = binary.LittleEndian.AppendUint64(b, p.Guard.Addr)
	b = binary.LittleEndian.AppendUint64(b, p.Guard.Want)
	var db Doorbell
	if p.Doorbell != nil {
		db = *p.Doorbell
	}
	b = binary.LittleEndian.AppendUint32(b, db.RKey)
	b = binary.LittleEndian.AppendUint64(b, db.Addr)
	b = binary.LittleEndian.AppendUint32(b, db.Imm)
	for i := range p.Ops {
		op := &p.Ops[i]
		var fl uint8
		if op.AbortIfLost {
			fl |= 1
		}
		b = append(b, uint8(op.Kind), op.Dst,
			uint8(op.When.Kind), op.When.Reg,
			uint8(op.Src.Kind), op.Src.Reg,
			uint8(op.Cmp.Kind), op.Cmp.Reg,
			op.To, fl, 0, 0)
		b = binary.LittleEndian.AppendUint32(b, op.RKey)
		b = binary.LittleEndian.AppendUint32(b, op.Spins)
		b = binary.LittleEndian.AppendUint32(b, 0) // pad to 8-byte words
		b = binary.LittleEndian.AppendUint64(b, op.Addr)
		b = binary.LittleEndian.AppendUint64(b, op.Src.Imm)
		b = binary.LittleEndian.AppendUint64(b, op.Cmp.Imm)
		b = binary.LittleEndian.AppendUint64(b, op.When.Val)
	}
	return b
}

// ErrMalformed marks bytes that do not decode to a structurally valid
// program. A chain region carrying such bytes never executes.
var ErrMalformed = errors.New("verbchain: malformed program bytes")

// Decode deserializes and structurally re-validates a program (length
// caps, register ranges, backward counted loops, step bound). It never
// panics on arbitrary input — this is the endpoint's last line of defense
// before executing resident bytes, and the fuzz target. Decoding is
// strict: reserved padding, unknown flag bits, and sections a clear flag
// says are absent must be zero, so decode∘encode is the identity on
// every accepted input and no bits can ride along unexamined.
func Decode(b []byte) (*Program, error) {
	if len(b) < hdrSize {
		return nil, fmt.Errorf("%w: %d header bytes", ErrMalformed, len(b))
	}
	if binary.LittleEndian.Uint32(b[0:4]) != progMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrMalformed)
	}
	if b[4] != progVersion {
		return nil, fmt.Errorf("%w: version %d", ErrMalformed, b[4])
	}
	flags := b[5]
	if flags&^uint8(3) != 0 {
		return nil, fmt.Errorf("%w: unknown flags %#x", ErrMalformed, flags)
	}
	n := int(binary.LittleEndian.Uint16(b[6:8]))
	if n == 0 || n > MaxOps {
		return nil, fmt.Errorf("%w: %d ops", ErrMalformed, n)
	}
	if len(b) != hdrSize+n*opSize {
		return nil, fmt.Errorf("%w: %d bytes for %d ops", ErrMalformed, len(b), n)
	}
	p := &Program{Ops: make([]Op, n)}
	p.Guard = Guard{
		Enabled: flags&1 != 0,
		RKey:    binary.LittleEndian.Uint32(b[8:12]),
		Addr:    binary.LittleEndian.Uint64(b[12:20]),
		Want:    binary.LittleEndian.Uint64(b[20:28]),
	}
	if flags&2 != 0 {
		p.Doorbell = &Doorbell{
			RKey: binary.LittleEndian.Uint32(b[28:32]),
			Addr: binary.LittleEndian.Uint64(b[32:40]),
			Imm:  binary.LittleEndian.Uint32(b[40:44]),
		}
	} else {
		for _, x := range b[28:44] {
			if x != 0 {
				return nil, fmt.Errorf("%w: doorbell bytes without doorbell flag", ErrMalformed)
			}
		}
	}
	for i := 0; i < n; i++ {
		o := b[hdrSize+i*opSize:]
		op := &p.Ops[i]
		op.Kind = OpKind(o[0])
		op.Dst = o[1]
		op.When = Cond{Kind: CondKind(o[2]), Reg: o[3], Val: binary.LittleEndian.Uint64(o[48:56])}
		op.Src = Operand{Kind: OperandKind(o[4]), Reg: o[5], Imm: binary.LittleEndian.Uint64(o[32:40])}
		op.Cmp = Operand{Kind: OperandKind(o[6]), Reg: o[7], Imm: binary.LittleEndian.Uint64(o[40:48])}
		op.To = o[8]
		if o[9]&^uint8(1) != 0 {
			return nil, fmt.Errorf("%w: op %d: unknown flag bits %#x", ErrMalformed, i, o[9])
		}
		op.AbortIfLost = o[9]&1 != 0
		if o[10] != 0 || o[11] != 0 || binary.LittleEndian.Uint32(o[20:24]) != 0 {
			return nil, fmt.Errorf("%w: op %d: nonzero padding", ErrMalformed, i)
		}
		op.RKey = binary.LittleEndian.Uint32(o[12:16])
		op.Spins = binary.LittleEndian.Uint32(o[16:20])
		op.Addr = binary.LittleEndian.Uint64(o[24:32])
	}
	// Structural validation only: the decoder has no region table — the
	// executor re-resolves every rkey at step-fire time anyway.
	if err := p.Validate(nil); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return p, nil
}

// EncodeRegion lays out a freshly armed chain region: zero trigger count,
// idle status, zeroed registers, and the encoded program. The returned
// slice is RegionSize(p) bytes, ready to WRITE at the region base.
func EncodeRegion(p *Program) []byte {
	prog := p.Encode()
	b := make([]byte, OffProg+len(prog))
	binary.LittleEndian.PutUint64(b[OffProgLen:], uint64(len(prog)))
	copy(b[OffProg:], prog)
	return b
}
