package agent

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"

	"rdx/internal/ext"
)

// Network protocol between the controller and node agents — the
// configuration-push channel of the baseline architecture (e.g., an xDS or
// Cilium-style control connection). Frames are length-prefixed:
//
//	request:  [4B len][1B op][2B hookLen][hook][extension payload]
//	response: [4B len][1B status][report: 6 × 8B LE]
const (
	opInject   uint8 = 1
	statusOK   uint8 = 0
	statusFail uint8 = 1
)

// Serve handles controller connections until the listener closes.
func (a *Agent) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go a.serveConn(conn)
	}
}

func (a *Agent) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		frame, err := readFrame(br)
		if err != nil {
			return
		}
		resp := a.handle(frame)
		if err := writeFrame(bw, resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func (a *Agent) handle(frame []byte) []byte {
	fail := func(err error) []byte {
		out := []byte{statusFail}
		return append(out, err.Error()...)
	}
	if len(frame) < 3 || frame[0] != opInject {
		return fail(fmt.Errorf("agent: malformed request"))
	}
	hl := int(binary.LittleEndian.Uint16(frame[1:3]))
	if len(frame) < 3+hl {
		return fail(fmt.Errorf("agent: truncated hook name"))
	}
	hook := string(frame[3 : 3+hl])
	e, err := ext.Unmarshal(frame[3+hl:])
	if err != nil {
		return fail(err)
	}
	rep, err := a.Inject(context.Background(), hook, e)
	if err != nil {
		return fail(err)
	}
	out := []byte{statusOK}
	for _, d := range []time.Duration{rep.Verify, rep.Compile, rep.Link, rep.Load, rep.Total} {
		out = binary.LittleEndian.AppendUint64(out, uint64(d))
	}
	return binary.LittleEndian.AppendUint64(out, rep.Version)
}

// Client is the controller-side handle to one node agent.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// NewClient wraps an established controller→agent connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
}

// Close closes the control connection.
func (c *Client) Close() error { return c.conn.Close() }

// Inject ships the extension IR to the agent and waits for the agent-side
// pipeline to finish.
func (c *Client) Inject(hook string, e *ext.Extension) (Report, error) {
	payload, err := ext.Marshal(e)
	if err != nil {
		return Report{}, err
	}
	frame := []byte{opInject}
	frame = binary.LittleEndian.AppendUint16(frame, uint16(len(hook)))
	frame = append(frame, hook...)
	frame = append(frame, payload...)
	if err := writeFrame(c.bw, frame); err != nil {
		return Report{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return Report{}, err
	}
	resp, err := readFrame(c.br)
	if err != nil {
		return Report{}, err
	}
	if len(resp) < 1 {
		return Report{}, fmt.Errorf("agent: empty response")
	}
	if resp[0] != statusOK {
		return Report{}, fmt.Errorf("agent: remote error: %s", resp[1:])
	}
	if len(resp) != 1+6*8 {
		return Report{}, fmt.Errorf("agent: short report (%d bytes)", len(resp))
	}
	var rep Report
	rep.Verify = time.Duration(binary.LittleEndian.Uint64(resp[1:]))
	rep.Compile = time.Duration(binary.LittleEndian.Uint64(resp[9:]))
	rep.Link = time.Duration(binary.LittleEndian.Uint64(resp[17:]))
	rep.Load = time.Duration(binary.LittleEndian.Uint64(resp[25:]))
	rep.Total = time.Duration(binary.LittleEndian.Uint64(resp[33:]))
	rep.Version = binary.LittleEndian.Uint64(resp[41:])
	return rep, nil
}

const maxFrame = 16 << 20

func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("agent: frame too large")
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("agent: frame of %d too large", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
