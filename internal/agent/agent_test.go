package agent

import (
	"context"
	"encoding/binary"
	"testing"

	"rdx/internal/ebpf"
	"rdx/internal/ebpf/progen"
	"rdx/internal/ext"
	"rdx/internal/node"
	"rdx/internal/rdma"
	"rdx/internal/udf"
	"rdx/internal/wasm"
	"rdx/internal/xabi"
)

func newTestAgent(t *testing.T) (*Agent, *node.Node) {
	t.Helper()
	n, err := node.New(node.Config{
		ID: "agentnode", Hooks: []string{"ingress"},
		Latency: rdma.NoLatency(), Cores: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return New(n), n
}

func constExt(ret int32) *ext.Extension {
	return ext.FromEBPF(ebpf.NewProgram("c", ebpf.ProgTypeSocketFilter, []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R0, ret), ebpf.Exit(),
	}))
}

func TestAgentInjectEBPF(t *testing.T) {
	a, n := newTestAgent(t)
	rep, err := a.Inject(context.Background(), "ingress", constExt(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verify <= 0 || rep.Compile <= 0 || rep.Total <= 0 {
		t.Errorf("stage timings missing: %+v", rep)
	}
	res, err := n.ExecHook("ingress", make([]byte, xabi.CtxSize), nil)
	if err != nil || res.Verdict != 4 {
		t.Errorf("res=%+v err=%v", res, err)
	}
	// Agent work consumed node cores — the defining cost of the baseline.
	if n.Cores.Stats().TasksCompleted == 0 {
		t.Error("agent injection did not run on node cores")
	}
}

func TestAgentInjectUsesCPUPerInjection(t *testing.T) {
	a, n := newTestAgent(t)
	e := constExt(1)
	for i := 0; i < 3; i++ {
		if _, err := a.Inject(context.Background(), "ingress", e); err != nil {
			t.Fatal(err)
		}
	}
	// No cross-injection cache: three injections, three core tasks.
	if got := n.Cores.Stats().TasksCompleted; got != 3 {
		t.Errorf("core tasks = %d, want 3", got)
	}
}

func TestAgentInjectWasmAndUDF(t *testing.T) {
	a, n := newTestAgent(t)
	m := wasm.SimpleFilter("w", 1, nil, wasm.NewBody().I64Const(8).End().Bytes())
	if _, err := a.Inject(context.Background(), "ingress", ext.FromWasm(m)); err != nil {
		t.Fatal(err)
	}
	res, err := n.ExecHook("ingress", make([]byte, xabi.CtxSize), nil)
	if err != nil || res.Verdict != 8 {
		t.Fatalf("wasm res=%+v err=%v", res, err)
	}

	p, _ := udf.New("u", "tenant + 1")
	if _, err := a.Inject(context.Background(), "ingress", ext.FromUDF(p)); err != nil {
		t.Fatal(err)
	}
	ctx := make([]byte, xabi.CtxSize)
	binary.LittleEndian.PutUint64(ctx[xabi.CtxOffTenant:], 41)
	res, err = n.ExecHook("ingress", ctx, nil)
	if err != nil || res.Verdict != 42 {
		t.Fatalf("udf res=%+v err=%v", res, err)
	}
}

func TestAgentInjectRejectsInvalid(t *testing.T) {
	a, _ := newTestAgent(t)
	bad := ext.FromEBPF(ebpf.NewProgram("bad", ebpf.ProgTypeSocketFilter, []ebpf.Instruction{
		ebpf.Ja(-1),
	}))
	if _, err := a.Inject(context.Background(), "ingress", bad); err == nil {
		t.Error("looping program injected")
	}
}

func TestAgentPollState(t *testing.T) {
	a, _ := newTestAgent(t)
	e := ext.FromEBPF(progen.MustGenerate(progen.Options{Size: 64, Seed: 1, WithMap: true}))
	if _, err := a.Inject(context.Background(), "ingress", e); err != nil {
		t.Fatal(err)
	}
	if _, err := a.PollState(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestAgentNetworkInject(t *testing.T) {
	a, n := newTestAgent(t)
	fab := rdma.NewFabric()
	l, err := fab.Listen("agent")
	if err != nil {
		t.Fatal(err)
	}
	go a.Serve(l)

	conn, err := fab.Dial("agent")
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	defer c.Close()

	rep, err := c.Inject("ingress", constExt(6))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total <= 0 || rep.Version == 0 {
		t.Errorf("report over network: %+v", rep)
	}
	res, err := n.ExecHook("ingress", make([]byte, xabi.CtxSize), nil)
	if err != nil || res.Verdict != 6 {
		t.Errorf("res=%+v err=%v", res, err)
	}
	// Error propagation.
	if _, err := c.Inject("no-such-hook", constExt(1)); err == nil {
		t.Error("bad hook accepted over network")
	}
}

func TestWireRoundTripAllKinds(t *testing.T) {
	exts := []*ext.Extension{
		constExt(1),
		ext.FromWasm(wasm.SimpleFilter("w", 1, nil, wasm.NewBody().I64Const(1).End().Bytes())),
	}
	p, _ := udf.New("u", "len > 5")
	exts = append(exts, ext.FromUDF(p))
	for _, e := range exts {
		b, err := ext.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ext.Unmarshal(b)
		if err != nil {
			t.Fatalf("%v: %v", e.Kind, err)
		}
		if got.Kind != e.Kind || got.Digest() != e.Digest() {
			t.Errorf("%v: round trip digest mismatch", e.Kind)
		}
	}
	if _, err := ext.Unmarshal(nil); err == nil {
		t.Error("empty unmarshal accepted")
	}
	if _, err := ext.Unmarshal([]byte{99}); err == nil {
		t.Error("unknown kind accepted")
	}
}
