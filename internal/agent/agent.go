// Package agent implements the baseline the paper compares against: the
// conventional agent-based runtime-extension architecture, where every node
// runs local control software that receives extension IR from a controller,
// then validates, JIT-compiles, links, and loads it using the node's own
// CPU cores.
//
// The costs this package incurs are the paper's motivation:
//
//   - every injection burns node CPU on verification and compilation
//     (Fig 2a / Fig 4a/4b), and
//   - that work queues against data-path request handling on the same
//     bounded core pool, producing the contention collapse of Fig 2c and
//     the Redis overhead of §6.
//
// The agent intentionally shares the arena layout and loading primitives
// with the RDX path, so the ONLY difference between the two architectures
// is where control-path work executes — which is exactly the variable the
// paper's evaluation isolates.
package agent

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"rdx/internal/ebpf/maps"
	"rdx/internal/ext"
	"rdx/internal/native"
	"rdx/internal/node"
	"rdx/internal/wasm"
)

// Agent is the per-node control daemon of the baseline architecture.
type Agent struct {
	Node *node.Node

	version atomic.Uint64
}

// New attaches an agent to a node.
func New(n *node.Node) *Agent {
	return &Agent{Node: n}
}

// Report carries per-stage injection timings (Fig 4b's breakdown).
type Report struct {
	Verify  time.Duration
	Compile time.Duration
	Link    time.Duration
	Load    time.Duration // alloc + state setup + code write + pointer flip
	Total   time.Duration
	Version uint64
	Blob    uint64
}

// Inject performs the full agent-side pipeline for one extension on the
// node's cores, blocking until a core is free and the load completes. This
// is the millisecond-scale path the paper measures as the baseline.
func (a *Agent) Inject(ctx context.Context, hook string, e *ext.Extension) (Report, error) {
	var rep Report
	var pipelineErr error
	start := time.Now()
	err := a.Node.Cores.Run(ctx, func() {
		rep, pipelineErr = a.injectOnCore(hook, e)
	})
	if err != nil {
		return Report{}, err
	}
	if pipelineErr != nil {
		return Report{}, pipelineErr
	}
	rep.Total = time.Since(start)
	return rep, nil
}

// injectOnCore runs the pipeline stages; the caller holds a core.
func (a *Agent) injectOnCore(hook string, e *ext.Extension) (Report, error) {
	var rep Report
	n := a.Node

	// Stage 1: validate (the dominant CPU cost, per the paper's profiling).
	t0 := time.Now()
	if _, err := e.Validate(); err != nil {
		return rep, fmt.Errorf("agent %s: validate: %w", n.ID, err)
	}
	rep.Verify = time.Since(t0)

	// Stage 2: JIT-compile for the local architecture. The agent compiles
	// on EVERY injection — there is no cross-node artifact cache, which is
	// precisely the redundancy RDX's control-plane registry removes.
	t1 := time.Now()
	bin, err := e.Compile(n.Arch)
	if err != nil {
		return rep, fmt.Errorf("agent %s: compile: %w", n.ID, err)
	}
	rep.Compile = time.Since(t1)

	// Stage 3: link against the local context.
	t2 := time.Now()
	params := node.BlobParams{Kind: uint8(e.Kind)}
	extra := map[string]uint64{}
	if err := a.setupState(e, extra, &params); err != nil {
		return rep, err
	}
	if err := native.Link(bin, n.LocalResolver(extra)); err != nil {
		return rep, fmt.Errorf("agent %s: link: %w", n.ID, err)
	}
	rep.Link = time.Since(t2)

	// Stage 4: load (write blob, flip dispatch pointer).
	t3 := time.Now()
	version := a.version.Add(1)
	params.Version = version
	blob, err := n.WriteBlobLocal(bin, params)
	if err != nil {
		return rep, fmt.Errorf("agent %s: load: %w", n.ID, err)
	}
	if err := n.BindHookLocal(hook, blob, version); err != nil {
		return rep, fmt.Errorf("agent %s: bind: %w", n.ID, err)
	}
	rep.Load = time.Since(t3)
	rep.Version = version
	rep.Blob = uint64(blob)
	return rep, nil
}

// setupState allocates XState maps (eBPF) or memory/globals (Wasm) in the
// local scratchpad and records the link-time symbols.
func (a *Agent) setupState(e *ext.Extension, extra map[string]uint64, params *node.BlobParams) error {
	n := a.Node
	for _, spec := range e.MapSpecs() {
		addr, err := n.AllocScratch(int(maps.Size(spec)))
		if err != nil {
			return err
		}
		if _, err := maps.Create(n.Memory(), addr, spec); err != nil {
			return err
		}
		if _, err := n.RegisterMetaXState(addr); err != nil {
			return err
		}
		extra["map:"+spec.Name] = addr
	}
	memBytes, globals := e.WasmRegions()
	if memBytes > 0 {
		addr, err := n.AllocScratch(memBytes)
		if err != nil {
			return err
		}
		extra[wasm.SymMemory] = addr
		params.MemBase = addr
	}
	if globals > 0 {
		addr, err := n.AllocScratch(8 * globals)
		if err != nil {
			return err
		}
		for i, init := range e.WasmGlobalInits() {
			if err := n.Arena.WriteQword(addr+uint64(8*i), uint64(init)); err != nil {
				return err
			}
		}
		extra[wasm.SymGlobals] = addr
		params.GlobBase = addr
	}
	return nil
}

// PollState models the agent's periodic extension-state access (metrics
// scraping): it iterates every registered XState map on a node core. The
// paper attributes measurable data-path overhead to exactly this loop
// (25.3% on Redis).
func (a *Agent) PollState(ctx context.Context) (entries int, err error) {
	err = a.Node.Cores.Run(ctx, func() {
		addrs, e2 := a.Node.MetaXStateEntries()
		if e2 != nil {
			err = e2
			return
		}
		for _, addr := range addrs {
			v, e2 := maps.Attach(a.Node.Memory(), addr)
			if e2 != nil {
				continue // non-map XState (wasm memory): skip
			}
			v.Iterate(func(_, _ []byte) bool {
				entries++
				return true
			})
		}
	})
	return entries, err
}

// PollLoop runs PollState every interval until the context ends.
func (a *Agent) PollLoop(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			a.PollState(ctx)
		}
	}
}
