package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestGaugeBasics(t *testing.T) {
	g := NewGauge()
	if g.Value() != 0 {
		t.Fatal("fresh gauge not zero")
	}
	g.Set(42)
	if g.Value() != 42 {
		t.Fatalf("value = %d after Set(42)", g.Value())
	}
	g.Add(-12)
	if g.Value() != 30 {
		t.Fatalf("value = %d after Add(-12)", g.Value())
	}
	g.Set(5) // Set overwrites, never accumulates
	if g.Value() != 5 {
		t.Fatalf("value = %d after Set(5)", g.Value())
	}
}

func TestGaugeConcurrent(t *testing.T) {
	g := NewGauge()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 0 {
		t.Fatalf("balanced adds left %d", g.Value())
	}
}

func TestRegistryGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("pool.size")
	if g2 := r.Gauge("pool.size"); g2 != g {
		t.Fatal("Gauge() minted a second instrument for the same name")
	}
	g.Set(7)

	snap := r.Snapshot()
	if snap.Gauges["pool.size"] != 7 {
		t.Fatalf("snapshot gauges = %v", snap.Gauges)
	}
	if tbl := snap.Table("reg").String(); !strings.Contains(tbl, "pool.size") {
		t.Errorf("Table() omits gauges:\n%s", tbl)
	}

	// Gauges marshal with the snapshot; registries without gauges omit the
	// field entirely so existing consumers see unchanged JSON.
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"gauges"`) {
		t.Errorf("snapshot JSON missing gauges: %s", b)
	}
	empty, err := json.Marshal(NewRegistry().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(empty), `"gauges"`) {
		t.Errorf("gauge-free snapshot still emits the field: %s", empty)
	}
}
