package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Registry is a named collection of counters, histograms, and meters — the
// fleet observability surface. Components reach their instruments by name
// (get-or-create), so independent layers (wire, scheduler, endpoint) share
// one export point, and a re-created component (a redialed QP, a restarted
// endpoint connection) picks up the SAME instruments instead of resetting
// them: counts accumulate across reconnects by construction.
//
// Names are dotted paths by convention ("rdma.qp.verbs.write",
// "pipeline.jobs"); the registry itself treats them as opaque. All methods
// are safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	histograms map[string]*Histogram
	meters     map[string]*Meter
	gauges     map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		histograms: make(map[string]*Histogram),
		meters:     make(map[string]*Meter),
		gauges:     make(map[string]*Gauge),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = NewCounter()
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// Meter returns the named meter, creating it on first use.
func (r *Registry) Meter(name string) *Meter {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.meters[name]
	if !ok {
		m = NewMeter()
		r.meters[name] = m
	}
	return m
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = NewGauge()
		r.gauges[name] = g
	}
	return g
}

// HistogramSummary is the exported shape of one histogram: counts plus the
// percentile ladder, in nanoseconds (the recording convention).
type HistogramSummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean_ns"`
	Min   int64   `json:"min_ns"`
	P50   int64   `json:"p50_ns"`
	P90   int64   `json:"p90_ns"`
	P99   int64   `json:"p99_ns"`
	Max   int64   `json:"max_ns"`
}

// MeterSummary is the exported shape of one meter.
type MeterSummary struct {
	Count uint64  `json:"count"`
	Rate  float64 `json:"rate_per_sec"`
}

// RegistrySnapshot is a point-in-time reading of every instrument, shaped
// for JSON export (the /metrics payload).
type RegistrySnapshot struct {
	At         time.Time                   `json:"at"`
	Counters   map[string]uint64           `json:"counters"`
	Histograms map[string]HistogramSummary `json:"histograms"`
	Meters     map[string]MeterSummary     `json:"meters"`
	Gauges     map[string]int64            `json:"gauges,omitempty"`
}

// Snapshot reads every registered instrument. Counters are read atomically
// per instrument; the snapshot as a whole is not a consistent cut (as with
// any live metrics scrape).
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	meters := make(map[string]*Meter, len(r.meters))
	for k, v := range r.meters {
		meters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	r.mu.Unlock()

	snap := RegistrySnapshot{
		At:         time.Now(),
		Counters:   make(map[string]uint64, len(counters)),
		Histograms: make(map[string]HistogramSummary, len(hists)),
		Meters:     make(map[string]MeterSummary, len(meters)),
		Gauges:     make(map[string]int64, len(gauges)),
	}
	for name, c := range counters {
		snap.Counters[name] = c.Value()
	}
	for name, h := range hists {
		snap.Histograms[name] = HistogramSummary{
			Count: h.Count(),
			Mean:  h.Mean(),
			Min:   h.Min(),
			P50:   h.Percentile(50),
			P90:   h.Percentile(90),
			P99:   h.Percentile(99),
			Max:   h.Max(),
		}
	}
	for name, m := range meters {
		snap.Meters[name] = MeterSummary{Count: m.Count(), Rate: m.Rate()}
	}
	for name, g := range gauges {
		snap.Gauges[name] = g.Value()
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON — the /metrics body.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Table renders the snapshot's counters and histogram percentiles as two
// fixed-width tables, the repo's standard CLI output shape.
func (s RegistrySnapshot) Table(title string) *Table {
	t := NewTable(title, "metric", "count", "mean", "p50", "p99", "max")
	names := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		t.AddRowf(name, h.Count,
			time.Duration(h.Mean), time.Duration(h.P50),
			time.Duration(h.P99), time.Duration(h.Max))
	}
	cnames := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		cnames = append(cnames, name)
	}
	sort.Strings(cnames)
	for _, name := range cnames {
		t.AddRowf(name, s.Counters[name], "", "", "", "")
	}
	gnames := make([]string, 0, len(s.Gauges))
	for name := range s.Gauges {
		gnames = append(gnames, name)
	}
	sort.Strings(gnames)
	for _, name := range gnames {
		t.AddRowf(name, s.Gauges[name], "", "", "", "")
	}
	return t
}
