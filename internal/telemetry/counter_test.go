package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	c := NewCounter()
	if c.Value() != 0 {
		t.Fatalf("fresh counter = %d", c.Value())
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Errorf("counter = %d, want 42", c.Value())
	}
}

func TestCounterConcurrentAdds(t *testing.T) {
	c := NewCounter()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
}

func TestCounterSnapshotRate(t *testing.T) {
	c := NewCounter()
	s0 := c.Snapshot()
	if s0.Value != 0 || s0.At.IsZero() {
		t.Fatalf("snapshot = %+v", s0)
	}
	c.Add(100)
	s1 := c.Snapshot()
	s1.At = s0.At.Add(2 * time.Second) // pin the interval for a exact rate
	if got := s1.RateSince(s0); got != 50 {
		t.Errorf("rate = %v, want 50", got)
	}
	// Degenerate interval must not divide by zero.
	if got := s0.RateSince(s0); got != 0 {
		t.Errorf("zero-interval rate = %v", got)
	}
}
