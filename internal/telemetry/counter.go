package telemetry

import (
	"sync/atomic"
	"time"
)

// Counter is a monotonic event counter safe for hot paths: Add is a single
// atomic increment, no locks. It fills the gap next to Histogram (latency
// distributions) and Meter (windowed rates) for plain occurrence counts —
// jobs admitted, verbs batched, retries, failures.
type Counter struct {
	v atomic.Uint64
}

// NewCounter returns a zeroed counter.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// CounterSnapshot is a point-in-time reading of a Counter.
type CounterSnapshot struct {
	Value uint64
	At    time.Time
}

// Snapshot captures the current count with a timestamp, so two snapshots
// can be differenced into a rate.
func (c *Counter) Snapshot() CounterSnapshot {
	return CounterSnapshot{Value: c.v.Load(), At: time.Now()}
}

// RateSince returns events/second between an earlier snapshot and this one.
func (s CounterSnapshot) RateSince(prev CounterSnapshot) float64 {
	el := s.At.Sub(prev.At).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(s.Value-prev.Value) / el
}
