// Package telemetry provides the measurement plumbing used by every RDX
// experiment: low-overhead latency histograms with log-spaced buckets,
// throughput meters, and a fixed-width table printer for paper-shaped output.
//
// The histogram design follows the HDR histogram idea: values are bucketed by
// (exponent, sub-bucket) so that relative error is bounded (~1/2^subBits)
// across nine orders of magnitude, while Record stays allocation-free and can
// be called from hot paths.
package telemetry

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"time"
)

const (
	// subBits controls per-bucket resolution: 2^subBits sub-buckets per
	// power of two, giving a worst-case relative error of 2^-subBits.
	subBits = 5
	subSize = 1 << subBits
	// maxExp bounds the largest recordable value at 2^maxExp nanoseconds
	// (~36 minutes), far beyond any latency this repository measures.
	maxExp = 41
)

// Histogram records int64 values (conventionally nanoseconds) into
// log-spaced buckets. The zero value is NOT ready to use; call NewHistogram.
// All methods are safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	buckets [maxExp * subSize]uint64
	count   uint64
	sum     int64
	min     int64
	max     int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < subSize {
		return int(v) // exact buckets for tiny values
	}
	exp := 63 - bits.LeadingZeros64(uint64(v))
	// Position of the subBits bits immediately below the leading bit.
	sub := int((uint64(v) >> (uint(exp) - subBits)) & (subSize - 1))
	idx := exp*subSize + sub
	if idx >= len([maxExp * subSize]uint64{}) {
		idx = maxExp*subSize - 1
	}
	return idx
}

// bucketValue returns a representative (midpoint) value for bucket i,
// the inverse of bucketIndex up to bucket resolution.
func bucketValue(i int) int64 {
	if i < subSize {
		return int64(i)
	}
	exp := i / subSize
	sub := i % subSize
	lo := (int64(1) << uint(exp)) | (int64(sub) << uint(exp-subBits))
	hi := lo + (int64(1) << uint(exp-subBits))
	return (lo + hi) / 2
}

// Record adds one observation. Negative values are clamped to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	h.buckets[bucketIndex(v)]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// RecordDuration adds one duration observation in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all recorded values.
func (h *Histogram) Sum() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean, or 0 if empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest recorded value, or 0 if empty.
func (h *Histogram) Min() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value, or 0 if empty.
func (h *Histogram) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Percentile returns the value at quantile p in [0,100], approximated to
// bucket resolution. The result is clamped to [Min, Max]: a bucket midpoint
// can overshoot the largest recorded value (or undershoot the smallest), and
// an unclamped return printed summaries with p99 > max. Returns 0 for an
// empty histogram.
func (h *Histogram) Percentile(p float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			return h.clampLocked(bucketValue(i))
		}
	}
	return h.max
}

// clampLocked bounds a bucket-midpoint estimate by the recorded extremes.
func (h *Histogram) clampLocked(v int64) int64 {
	if v > h.max {
		return h.max
	}
	if v < h.min {
		return h.min
	}
	return v
}

// Median is shorthand for Percentile(50).
func (h *Histogram) Median() int64 { return h.Percentile(50) }

// Merge adds all observations from other into h.
func (h *Histogram) Merge(other *Histogram) {
	other.mu.Lock()
	snapshot := other.buckets
	count, sum, mn, mx := other.count, other.sum, other.min, other.max
	other.mu.Unlock()

	h.mu.Lock()
	defer h.mu.Unlock()
	for i, c := range snapshot {
		h.buckets[i] += c
	}
	h.count += count
	h.sum += sum
	if count > 0 {
		if mn < h.min {
			h.min = mn
		}
		if mx > h.max {
			h.max = mx
		}
	}
}

// Reset clears all recorded observations.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets = [maxExp * subSize]uint64{}
	h.count = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = 0
}

// Summary returns a human-readable one-line summary in microseconds.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%.1fus p50=%.1fus p99=%.1fus max=%.1fus",
		h.Count(),
		h.Mean()/1e3,
		float64(h.Percentile(50))/1e3,
		float64(h.Percentile(99))/1e3,
		float64(h.Max())/1e3)
}

// Meter measures event throughput over a wall-clock interval.
type Meter struct {
	mu    sync.Mutex
	n     uint64
	start time.Time
}

// NewMeter returns a meter whose clock starts now.
func NewMeter() *Meter { return &Meter{start: time.Now()} }

// Add records n events.
func (m *Meter) Add(n uint64) {
	m.mu.Lock()
	m.n += n
	m.mu.Unlock()
}

// Count returns the number of events recorded so far.
func (m *Meter) Count() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.n
}

// Rate returns events per second since the meter started.
func (m *Meter) Rate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	el := time.Since(m.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(m.n) / el
}

// Reset zeroes the meter and restarts its clock.
func (m *Meter) Reset() {
	m.mu.Lock()
	m.n = 0
	m.start = time.Now()
	m.mu.Unlock()
}

// Table accumulates rows of experiment output and renders them with aligned
// columns, the format every rdxbench experiment prints.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond len(Headers) are dropped, missing cells
// render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row built from fmt.Sprintf applied cell-wise:
// each argument is formatted with %v.
func (t *Table) AddRowf(cells ...interface{}) {
	s := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			s[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			s[i] = FormatDuration(v)
		default:
			s[i] = fmt.Sprintf("%v", c)
		}
	}
	t.AddRow(s...)
}

// String renders the table with a title line, separator, and aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// FormatDuration renders a duration with the unit the paper's figures use:
// microseconds below 1ms, milliseconds otherwise.
func FormatDuration(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fus", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// Series is a labelled sequence of (x, y) points, used to express a figure's
// line series (e.g., Fig 5: incoherence vs CPKI for two systems).
type Series struct {
	Name   string
	Points []Point
}

// Point is one (x, y) sample in a Series.
type Point struct {
	X float64
	Y float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// SortByX orders points by ascending x.
func (s *Series) SortByX() {
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].X < s.Points[j].X })
}
