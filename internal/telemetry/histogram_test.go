package telemetry

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram should report zeros: %s", h.Summary())
	}
}

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{10, 20, 30, 40, 50} {
		h.Record(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
	if got := h.Sum(); got != 150 {
		t.Errorf("Sum = %d, want 150", got)
	}
	if got := h.Mean(); got != 30 {
		t.Errorf("Mean = %v, want 30", got)
	}
	if got := h.Min(); got != 10 {
		t.Errorf("Min = %d, want 10", got)
	}
	if got := h.Max(); got != 50 {
		t.Errorf("Max = %d, want 50", got)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative should clamp to 0: min=%d max=%d", h.Min(), h.Max())
	}
}

func TestHistogramPercentileExactSmall(t *testing.T) {
	// Values below subSize land in exact buckets, so percentiles are exact.
	h := NewHistogram()
	for i := int64(1); i <= 10; i++ {
		h.Record(i)
	}
	if got := h.Percentile(50); got != 5 {
		t.Errorf("p50 = %d, want 5", got)
	}
	if got := h.Percentile(100); got != 10 {
		t.Errorf("p100 = %d, want 10", got)
	}
	if got := h.Percentile(0); got != 1 {
		t.Errorf("p0 = %d, want 1", got)
	}
}

func TestHistogramPercentileRelativeError(t *testing.T) {
	// Percentiles of large values must be within the bucket relative error.
	h := NewHistogram()
	rng := rand.New(rand.NewSource(42))
	vals := make([]int64, 0, 10000)
	for i := 0; i < 10000; i++ {
		v := int64(rng.ExpFloat64() * 1e6)
		vals = append(vals, v)
		h.Record(v)
	}
	// Exact p50 via sort.
	sorted := append([]int64(nil), vals...)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
		if i > 200 {
			break // partial selection sort is enough for the median region
		}
	}
	got := float64(h.Percentile(50))
	// 2^-subBits = 3.125% relative resolution; allow 2x margin.
	exact := exactPercentile(vals, 50)
	if math.Abs(got-exact)/exact > 0.0625 {
		t.Errorf("p50 = %v, exact = %v: error too large", got, exact)
	}
}

func exactPercentile(vals []int64, p float64) float64 {
	s := append([]int64(nil), vals...)
	// insertion-free: use stdlib-ish sort via simple quicksort
	quickSort(s)
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return float64(s[rank])
}

func quickSort(s []int64) {
	if len(s) < 2 {
		return
	}
	p := s[len(s)/2]
	l, r := 0, len(s)-1
	for l <= r {
		for s[l] < p {
			l++
		}
		for s[r] > p {
			r--
		}
		if l <= r {
			s[l], s[r] = s[r], s[l]
			l++
			r--
		}
	}
	quickSort(s[:r+1])
	quickSort(s[l:])
}

func TestHistogramPercentileClampedToRecordedRange(t *testing.T) {
	// Regression: a bucket midpoint can exceed the largest recorded value.
	// 1<<20 sits exactly on a bucket's lower edge, so its midpoint is
	// 1<<20 + 1<<(20-subBits-1) — an unclamped Percentile reported
	// p99 > Max, an impossible summary.
	h := NewHistogram()
	h.Record(1 << 20)
	for _, p := range []float64{50, 90, 99, 99.9} {
		if got, max := h.Percentile(p), h.Max(); got > max {
			t.Errorf("p%v = %d > max %d", p, got, max)
		}
	}

	// The symmetric undershoot: every recorded value sits on a bucket's
	// upper edge, so the midpoint lands below Min.
	lo := NewHistogram()
	edge := int64(1<<20) + (1 << (20 - subBits)) - 1 // top of the first sub-bucket
	lo.Record(edge)
	for _, p := range []float64{1, 50, 99} {
		if got, min := lo.Percentile(p), lo.Min(); got < min {
			t.Errorf("p%v = %d < min %d", p, got, min)
		}
	}

	// Mixed adversarial set: percentiles must stay inside [min, max].
	m := NewHistogram()
	for _, v := range []int64{1 << 10, 1 << 20, (1 << 30) + 1} {
		m.Record(v)
	}
	for p := 0.0; p <= 100; p += 0.5 {
		got := m.Percentile(p)
		if got < m.Min() || got > m.Max() {
			t.Fatalf("p%v = %d outside [%d, %d]", p, got, m.Min(), m.Max())
		}
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Mix magnitudes so the bucket math (the part the hot path pays
		// for) is exercised, not just the lock.
		h.Record(int64(i)<<7 + 3)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Record(100)
	b.Record(200)
	b.Record(300)
	a.Merge(b)
	if a.Count() != 3 {
		t.Errorf("merged count = %d, want 3", a.Count())
	}
	if a.Sum() != 600 {
		t.Errorf("merged sum = %d, want 600", a.Sum())
	}
	if a.Min() != 100 || a.Max() != 300 {
		t.Errorf("merged min/max = %d/%d, want 100/300", a.Min(), a.Max())
	}
}

func TestHistogramMergeEmptyOther(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Record(7)
	a.Merge(b)
	if a.Count() != 1 || a.Min() != 7 {
		t.Fatalf("merging empty changed stats: %s", a.Summary())
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(123)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear histogram")
	}
	h.Record(5)
	if h.Min() != 5 {
		t.Fatalf("min after reset+record = %d, want 5", h.Min())
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(int64(rng.Intn(1 << 20)))
			}
		}(int64(g))
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Errorf("count = %d, want %d", h.Count(), goroutines*per)
	}
}

func TestBucketRoundTripProperty(t *testing.T) {
	// Property: the representative value of a value's bucket is within
	// the guaranteed relative error (or exact for small values).
	f := func(raw int64) bool {
		v := raw
		if v < 0 {
			v = -v
		}
		v %= int64(1) << 40
		rep := bucketValue(bucketIndex(v))
		if v < subSize {
			return rep == v
		}
		err := math.Abs(float64(rep-v)) / float64(v)
		return err <= 1.0/float64(subSize)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBucketIndexMonotoneProperty(t *testing.T) {
	// Property: bucketIndex is monotone non-decreasing.
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return bucketIndex(x) <= bucketIndex(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter()
	m.Add(10)
	m.Add(5)
	if m.Count() != 15 {
		t.Errorf("count = %d, want 15", m.Count())
	}
	time.Sleep(10 * time.Millisecond)
	if r := m.Rate(); r <= 0 || r > 15/0.01 {
		t.Errorf("rate = %v out of plausible range", r)
	}
	m.Reset()
	if m.Count() != 0 {
		t.Error("reset did not zero meter")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig X", "size", "latency")
	tb.AddRow("1.3K", "12us")
	tb.AddRow("95K", "900ms")
	out := tb.String()
	for _, want := range []string{"Fig X", "size", "latency", "1.3K", "95K", "900ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only")                    // short row padded
	tb.AddRow("x", "y", "z", "overflow") // long row truncated
	if len(tb.Rows[0]) != 3 || len(tb.Rows[1]) != 3 {
		t.Fatalf("rows not normalized: %v", tb.Rows)
	}
	if tb.Rows[1][2] != "z" {
		t.Errorf("cell = %q, want z", tb.Rows[1][2])
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("", "n", "dur", "f")
	tb.AddRowf(42, 1500*time.Microsecond, 3.14159)
	if tb.Rows[0][0] != "42" {
		t.Errorf("int cell = %q", tb.Rows[0][0])
	}
	if tb.Rows[0][1] != "1.50ms" {
		t.Errorf("duration cell = %q, want 1.50ms", tb.Rows[0][1])
	}
	if tb.Rows[0][2] != "3.14" {
		t.Errorf("float cell = %q, want 3.14", tb.Rows[0][2])
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{500 * time.Nanosecond, "0.5us"},
		{2 * time.Microsecond, "2.0us"},
		{1500 * time.Microsecond, "1.50ms"},
		{2 * time.Second, "2.000s"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "rdx"
	s.Add(30, 2)
	s.Add(10, 746)
	s.Add(20, 300)
	s.SortByX()
	if s.Points[0].X != 10 || s.Points[2].X != 30 {
		t.Errorf("series not sorted: %+v", s.Points)
	}
}

func TestHistogramSummaryNonEmpty(t *testing.T) {
	h := NewHistogram()
	h.RecordDuration(3 * time.Microsecond)
	if s := h.Summary(); !strings.Contains(s, "n=1") {
		t.Errorf("summary = %q", s)
	}
}
