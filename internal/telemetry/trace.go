package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one logical operation (an injection job) across layers:
// the scheduler allocates one per job and it rides down through CodeFlow
// staging, the initiator QP, the wire protocol, and the target endpoint, so
// one job's queue→validate→jit→link→write→publish path can be dumped with
// its wire verbs correlated. Zero means "untraced".
type TraceID uint64

type traceIDKey struct{}

var traceIDSeq atomic.Uint64

// NextTraceID allocates a process-unique trace ID (monotonic, never zero).
func NextTraceID() TraceID { return TraceID(traceIDSeq.Add(1)) }

// WithTraceID tags a context with a trace ID for downstream layers.
func WithTraceID(ctx context.Context, id TraceID) context.Context {
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFrom extracts the context's trace ID, or zero if untraced.
func TraceIDFrom(ctx context.Context) TraceID {
	id, _ := ctx.Value(traceIDKey{}).(TraceID)
	return id
}

// TraceEvent is one recorded span: a pipeline stage, an initiator-side wire
// verb, or a target-endpoint verb execution.
type TraceEvent struct {
	Trace TraceID       `json:"trace"`
	Layer string        `json:"layer"` // "pipeline" | "wire" | "endpoint"
	Name  string        `json:"name"`  // stage or verb name
	Node  string        `json:"node,omitempty"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur_ns"`
	Bytes int           `json:"bytes,omitempty"`
	Err   string        `json:"err,omitempty"`
}

// TraceRecorder is a bounded ring buffer of trace events. Recording is
// O(1) and allocation-free after warm-up; when the ring wraps, the oldest
// events are overwritten (Dropped counts them). All methods are safe for
// concurrent use.
type TraceRecorder struct {
	mu    sync.Mutex
	buf   []TraceEvent
	next  int
	full  bool
	total uint64
}

// DefaultTraceCapacity bounds a recorder built with capacity <= 0.
const DefaultTraceCapacity = 4096

// NewTraceRecorder returns a ring holding up to capacity events
// (DefaultTraceCapacity if capacity <= 0).
func NewTraceRecorder(capacity int) *TraceRecorder {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceRecorder{buf: make([]TraceEvent, capacity)}
}

// Record appends one event, overwriting the oldest if the ring is full.
// Events with a zero trace ID are dropped — untraced operations are the
// common case and must not wash traced jobs out of the ring.
func (t *TraceRecorder) Record(ev TraceEvent) {
	if t == nil || ev.Trace == 0 {
		return
	}
	t.mu.Lock()
	t.buf[t.next] = ev
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.total++
	t.mu.Unlock()
}

// Span records one completed span ending now.
func (t *TraceRecorder) Span(id TraceID, layer, name, node string, start time.Time, bytes int, err error) {
	if t == nil || id == 0 {
		return
	}
	ev := TraceEvent{
		Trace: id, Layer: layer, Name: name, Node: node,
		Start: start, Dur: time.Since(start), Bytes: bytes,
	}
	if err != nil {
		ev.Err = err.Error()
	}
	t.Record(ev)
}

// Events returns every buffered event, oldest first.
func (t *TraceRecorder) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]TraceEvent(nil), t.buf[:t.next]...)
	}
	out := make([]TraceEvent, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Trace returns the buffered events of one trace ID, ordered by start time.
func (t *TraceRecorder) Trace(id TraceID) []TraceEvent {
	var out []TraceEvent
	for _, ev := range t.Events() {
		if ev.Trace == id {
			out = append(out, ev)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Dropped reports how many events have been overwritten by ring wrap.
func (t *TraceRecorder) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total <= uint64(len(t.buf)) {
		return 0
	}
	return t.total - uint64(len(t.buf))
}

// WriteJSON writes the events of trace id (or all buffered events when id
// is zero) as indented JSON — the /trace body.
func (t *TraceRecorder) WriteJSON(w io.Writer, id TraceID) error {
	evs := t.Events()
	if id != 0 {
		evs = t.Trace(id)
	}
	if evs == nil {
		evs = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(evs)
}

// TraceTable renders one trace's events as a fixed-width span table with
// offsets relative to the first event — the rdxctl trace dump format.
func TraceTable(id TraceID, evs []TraceEvent) *Table {
	t := NewTable(fmt.Sprintf("trace %d", id), "offset", "layer", "name", "node", "dur", "bytes", "err")
	t0 := time.Time{}
	if len(evs) > 0 {
		t0 = evs[0].Start
	}
	for _, ev := range evs {
		bytes := ""
		if ev.Bytes > 0 {
			bytes = fmt.Sprintf("%d", ev.Bytes)
		}
		t.AddRowf(FormatDuration(ev.Start.Sub(t0)), ev.Layer, ev.Name, ev.Node,
			ev.Dur, bytes, ev.Err)
	}
	return t
}
