package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a.b")
	c1.Add(3)
	if c2 := r.Counter("a.b"); c2 != c1 || c2.Value() != 3 {
		t.Fatalf("second lookup returned a different counter (value %d)", c2.Value())
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("histogram lookup not stable")
	}
	if r.Meter("m") != r.Meter("m") {
		t.Fatal("meter lookup not stable")
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("rdma.qp.verbs.write").Add(7)
	r.Histogram("rdma.qp.lat.write").RecordDuration(5 * time.Microsecond)
	r.Meter("jobs").Add(2)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap RegistrySnapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if snap.Counters["rdma.qp.verbs.write"] != 7 {
		t.Errorf("counter = %d, want 7", snap.Counters["rdma.qp.verbs.write"])
	}
	h := snap.Histograms["rdma.qp.lat.write"]
	if h.Count != 1 || h.P99 > h.Max || h.P50 < h.Min {
		t.Errorf("histogram summary violates invariants: %+v", h)
	}
	if snap.Meters["jobs"].Count != 2 {
		t.Errorf("meter = %+v", snap.Meters["jobs"])
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("shared").Inc()
				r.Histogram(fmt.Sprintf("h%d", g%2)).Record(int64(i))
				r.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8*500 {
		t.Errorf("shared counter = %d, want %d", got, 8*500)
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	if TraceIDFrom(context.Background()) != 0 {
		t.Fatal("background context should be untraced")
	}
	id := NextTraceID()
	if id == 0 {
		t.Fatal("NextTraceID returned zero")
	}
	ctx := WithTraceID(context.Background(), id)
	if got := TraceIDFrom(ctx); got != id {
		t.Fatalf("TraceIDFrom = %d, want %d", got, id)
	}
	if NextTraceID() == id {
		t.Fatal("trace IDs must be unique")
	}
}

func TestTraceRecorderRing(t *testing.T) {
	rec := NewTraceRecorder(4)
	for i := 1; i <= 6; i++ {
		rec.Record(TraceEvent{Trace: TraceID(i), Name: fmt.Sprintf("e%d", i), Start: time.Now()})
	}
	evs := rec.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	if evs[0].Trace != 3 || evs[3].Trace != 6 {
		t.Errorf("ring kept wrong window: first=%d last=%d", evs[0].Trace, evs[3].Trace)
	}
	if rec.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", rec.Dropped())
	}
}

func TestTraceRecorderFilterAndUntraced(t *testing.T) {
	rec := NewTraceRecorder(16)
	id := NextTraceID()
	base := time.Now()
	rec.Record(TraceEvent{Trace: id, Layer: "pipeline", Name: "queue", Start: base.Add(time.Millisecond)})
	rec.Record(TraceEvent{Trace: id, Layer: "wire", Name: "WRITE", Start: base})
	rec.Record(TraceEvent{Trace: id + 1000, Layer: "wire", Name: "READ", Start: base})
	rec.Record(TraceEvent{Trace: 0, Layer: "wire", Name: "untraced", Start: base})

	got := rec.Trace(id)
	if len(got) != 2 {
		t.Fatalf("Trace(%d) returned %d events, want 2", id, len(got))
	}
	if got[0].Name != "WRITE" {
		t.Errorf("events not ordered by start: %+v", got)
	}
	if len(rec.Events()) != 3 {
		t.Errorf("untraced event was recorded: %d events", len(rec.Events()))
	}

	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf, id); err != nil {
		t.Fatal(err)
	}
	var out []TraceEvent
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil || len(out) != 2 {
		t.Fatalf("trace JSON: err=%v len=%d", err, len(out))
	}
}

func TestTraceRecorderSpan(t *testing.T) {
	rec := NewTraceRecorder(8)
	id := NextTraceID()
	rec.Span(id, "wire", "WRITE", "n0", time.Now().Add(-time.Millisecond), 128, fmt.Errorf("boom"))
	evs := rec.Trace(id)
	if len(evs) != 1 {
		t.Fatalf("span not recorded")
	}
	ev := evs[0]
	if ev.Dur < time.Millisecond || ev.Bytes != 128 || ev.Err != "boom" || ev.Node != "n0" {
		t.Errorf("span event = %+v", ev)
	}
	var nilRec *TraceRecorder
	nilRec.Span(id, "wire", "x", "", time.Now(), 0, nil) // must not panic
	nilRec.Record(TraceEvent{Trace: id})
}

func TestTraceTableRendering(t *testing.T) {
	id := NextTraceID()
	base := time.Now()
	tbl := TraceTable(id, []TraceEvent{
		{Trace: id, Layer: "pipeline", Name: "queue", Start: base, Dur: time.Microsecond},
		{Trace: id, Layer: "wire", Name: "BATCH", Start: base.Add(time.Millisecond), Dur: 2 * time.Microsecond, Bytes: 4096},
	})
	out := tbl.String()
	for _, want := range []string{"pipeline", "queue", "wire", "BATCH", "4096"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("trace table missing %q:\n%s", want, out)
		}
	}
}
