package telemetry

import "sync/atomic"

// Gauge is a point-in-time level that can move both ways — cache residency,
// queue depth, gate state. Counters answer "how many ever"; a Gauge answers
// "how many right now". All methods are lock-free atomics.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns a zeroed gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set replaces the level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the level by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }
