// Package orchestrator implements the paper's first future-work direction:
// "a declarative language for cluster-wide extension orchestration" (§7).
//
// A plan is a small line-oriented program:
//
//	# define extensions
//	extension sampler   udf "len > 128 && proto != 3"
//	extension filler    synthetic 1300
//	extension ratelimit wasm-gen 7 200
//
//	# deploy them (with ordering and consistency choices)
//	deploy sampler   to ingress on edge-1, edge-2
//	deploy ratelimit to ingress on * with bbu
//	limit  ingress on * 100000
//	rollback ingress on edge-1
//
// Statements execute in order against CodeFlows registered with the
// orchestrator; `on *` targets every node; `with bbu` upgrades a multi-node
// deploy to a Big Bubble Update broadcast. The orchestrator is deliberately
// thin — every statement lowers onto Table 1 operations — which is the
// point: CodeFlow is sufficient vocabulary for cluster-wide rollouts.
package orchestrator

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"rdx/internal/cluster"
	"rdx/internal/core"
	"rdx/internal/ebpf/progen"
	"rdx/internal/ext"
	"rdx/internal/udf"
)

// Orchestrator executes plans against a set of named CodeFlows.
type Orchestrator struct {
	cp    *core.ControlPlane
	flows map[string]*core.CodeFlow
}

// New creates an orchestrator over a control plane.
func New(cp *core.ControlPlane) *Orchestrator {
	return &Orchestrator{cp: cp, flows: map[string]*core.CodeFlow{}}
}

// AddNode registers a CodeFlow under a node name.
func (o *Orchestrator) AddNode(name string, cf *core.CodeFlow) {
	o.flows[name] = cf
}

// Nodes lists registered node names, sorted.
func (o *Orchestrator) Nodes() []string {
	out := make([]string, 0, len(o.flows))
	for n := range o.flows {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Plan is a parsed orchestration program.
type Plan struct {
	Extensions map[string]*ext.Extension
	Steps      []Step
}

// StepKind enumerates statement types.
type StepKind uint8

const (
	StepDeploy StepKind = iota + 1
	StepLimit
	StepRollback
	StepDetachLimit
	StepStatus
)

// Step is one executable statement.
type Step struct {
	Kind  StepKind
	Ext   string   // deploy
	Hook  string   // deploy / limit / rollback
	Nodes []string // nil means all
	BBU   bool     // deploy
	Limit uint64   // limit
	Line  int
}

// Parse compiles plan source.
func Parse(src string) (*Plan, error) {
	plan := &Plan{Extensions: map[string]*ext.Extension{}}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields, err := tokenize(line)
		if err != nil {
			return nil, fmt.Errorf("orchestrator: line %d: %w", lineNo+1, err)
		}
		if err := plan.parseStatement(fields, lineNo+1); err != nil {
			return nil, fmt.Errorf("orchestrator: line %d: %w", lineNo+1, err)
		}
	}
	if len(plan.Steps) == 0 {
		return nil, fmt.Errorf("orchestrator: plan has no executable steps")
	}
	return plan, nil
}

// tokenize splits on spaces, honoring double-quoted strings.
func tokenize(line string) ([]string, error) {
	var out []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '"':
			inQuote = !inQuote
		case (c == ' ' || c == '\t' || c == ',') && !inQuote:
			if cur.Len() > 0 {
				out = append(out, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteByte(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated quote")
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out, nil
}

func (p *Plan) parseStatement(f []string, line int) error {
	switch f[0] {
	case "extension":
		if len(f) < 3 {
			return fmt.Errorf("extension <name> <udf|synthetic|wasm-gen> args...")
		}
		name := f[1]
		if _, dup := p.Extensions[name]; dup {
			return fmt.Errorf("extension %q redefined", name)
		}
		e, err := buildExtension(name, f[2], f[3:])
		if err != nil {
			return err
		}
		p.Extensions[name] = e
		return nil

	case "deploy":
		// deploy <ext> to <hook> on <node,...|*> [with bbu]
		ext, rest, err := expect(f[1:], "to")
		if err != nil {
			return err
		}
		hook, rest, err := expect(rest, "on")
		if err != nil {
			return err
		}
		if len(rest) == 0 {
			return fmt.Errorf("deploy needs target nodes")
		}
		step := Step{Kind: StepDeploy, Ext: ext, Hook: hook, Line: line}
		for i := 0; i < len(rest); i++ {
			if rest[i] == "with" {
				if i+1 >= len(rest) || rest[i+1] != "bbu" {
					return fmt.Errorf("only 'with bbu' is supported")
				}
				step.BBU = true
				break
			}
			if rest[i] == "*" {
				step.Nodes = nil
				continue
			}
			step.Nodes = append(step.Nodes, rest[i])
		}
		if _, ok := p.Extensions[ext]; !ok {
			return fmt.Errorf("deploy of undefined extension %q", ext)
		}
		p.Steps = append(p.Steps, step)
		return nil

	case "limit":
		// limit <hook> on <nodes|*> <maxInsns>
		hook, rest, err := expect(f[1:], "on")
		if err != nil {
			return err
		}
		if len(rest) < 2 {
			return fmt.Errorf("limit <hook> on <nodes|*> <maxInsns>")
		}
		max, err := strconv.ParseUint(rest[len(rest)-1], 10, 64)
		if err != nil {
			return fmt.Errorf("bad limit %q", rest[len(rest)-1])
		}
		step := Step{Kind: StepLimit, Hook: hook, Limit: max, Line: line}
		for _, n := range rest[:len(rest)-1] {
			if n != "*" {
				step.Nodes = append(step.Nodes, n)
			}
		}
		p.Steps = append(p.Steps, step)
		return nil

	case "rollback":
		// rollback <hook> on <nodes|*>
		hook, rest, err := expect(f[1:], "on")
		if err != nil {
			return err
		}
		step := Step{Kind: StepRollback, Hook: hook, Line: line}
		for _, n := range rest {
			if n != "*" {
				step.Nodes = append(step.Nodes, n)
			}
		}
		p.Steps = append(p.Steps, step)
		return nil

	case "status":
		// status [on <nodes|*>] — print what the control plane believes is
		// deployed where: the same deployed-version map a journal replay
		// reconstructs, so a status after failover is an HA smoke check.
		step := Step{Kind: StepStatus, Line: line}
		if len(f) > 1 {
			if f[1] != "on" || len(f) < 3 {
				return fmt.Errorf("status [on <nodes|*>]")
			}
			for _, n := range f[2:] {
				if n != "*" {
					step.Nodes = append(step.Nodes, n)
				}
			}
		}
		p.Steps = append(p.Steps, step)
		return nil

	default:
		return fmt.Errorf("unknown statement %q", f[0])
	}
}

// expect consumes tokens up to a keyword, returning (head, tail-after-kw).
func expect(f []string, kw string) (string, []string, error) {
	if len(f) < 3 {
		return "", nil, fmt.Errorf("expected '<arg> %s ...'", kw)
	}
	if f[1] != kw {
		return "", nil, fmt.Errorf("expected %q after %q", kw, f[0])
	}
	return f[0], f[2:], nil
}

func buildExtension(name, kind string, args []string) (*ext.Extension, error) {
	switch kind {
	case "udf":
		if len(args) != 1 {
			return nil, fmt.Errorf("udf takes one quoted expression")
		}
		p, err := udf.New(name, args[0])
		if err != nil {
			return nil, err
		}
		return ext.FromUDF(p), nil
	case "synthetic":
		if len(args) != 1 {
			return nil, fmt.Errorf("synthetic takes an instruction count")
		}
		size, err := strconv.Atoi(args[0])
		if err != nil || size < 16 {
			return nil, fmt.Errorf("bad synthetic size %q", args[0])
		}
		return ext.FromEBPF(progen.MustGenerate(progen.Options{
			Size: size, Seed: int64(len(name)), WithHelpers: true,
		})), nil
	case "wasm-gen":
		if len(args) != 2 {
			return nil, fmt.Errorf("wasm-gen takes <generation> <filler>")
		}
		gen, err1 := strconv.Atoi(args[0])
		filler, err2 := strconv.Atoi(args[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad wasm-gen args %v", args)
		}
		e := cluster.GenerationExt(ext.KindWasm, gen, filler)
		e.Wasm.Name = name
		return e, nil
	default:
		return nil, fmt.Errorf("unknown extension kind %q", kind)
	}
}

// StepResult reports one executed step.
type StepResult struct {
	Step     Step
	Took     time.Duration
	Versions []uint64
	// Info carries human-readable output lines (the status statement's
	// deployed-version report).
	Info []string
	// Err, when non-nil, is a *StepError carrying the statement's line.
	Err error
}

// Result aggregates a plan execution.
type Result struct {
	Steps []StepResult
	Took  time.Duration
}

// StepError is one failed statement, tagged with its plan line. Execute
// aggregates them with errors.Join, so errors.As recovers each line and
// errors.Is still matches the underlying causes (core.ErrFenced, ...).
type StepError struct {
	Line int
	Kind StepKind
	Err  error
}

func (e *StepError) Error() string { return fmt.Sprintf("line %d: %v", e.Line, e.Err) }
func (e *StepError) Unwrap() error { return e.Err }

// Execute runs every statement in order. A failing statement no longer
// aborts the plan: it is recorded (as a *StepError with its line number)
// and execution continues, so one bad node or hook doesn't strand the
// rest of a fleet-wide rollout half-applied with no report of what else
// would have happened. The aggregate error joins every step failure.
func (o *Orchestrator) Execute(plan *Plan) (*Result, error) {
	start := time.Now()
	res := &Result{}
	var errs []error
	for _, step := range plan.Steps {
		sr := o.executeStep(plan, step)
		if sr.Err != nil {
			sr.Err = &StepError{Line: step.Line, Kind: step.Kind, Err: sr.Err}
			errs = append(errs, sr.Err)
		}
		res.Steps = append(res.Steps, sr)
	}
	res.Took = time.Since(start)
	if len(errs) > 0 {
		return res, fmt.Errorf("orchestrator: %d of %d statements failed: %w",
			len(errs), len(plan.Steps), errors.Join(errs...))
	}
	return res, nil
}

func (o *Orchestrator) targets(names []string) ([]*core.CodeFlow, error) {
	if len(names) == 0 {
		out := make([]*core.CodeFlow, 0, len(o.flows))
		for _, n := range o.Nodes() {
			out = append(out, o.flows[n])
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("no nodes registered")
		}
		return out, nil
	}
	out := make([]*core.CodeFlow, 0, len(names))
	for _, n := range names {
		cf, ok := o.flows[n]
		if !ok {
			return nil, fmt.Errorf("unknown node %q", n)
		}
		out = append(out, cf)
	}
	return out, nil
}

func (o *Orchestrator) executeStep(plan *Plan, step Step) (sr StepResult) {
	sr = StepResult{Step: step}
	t0 := time.Now()
	defer func() { sr.Took = time.Since(t0) }()

	cfs, err := o.targets(step.Nodes)
	if err != nil {
		sr.Err = err
		return sr
	}

	switch step.Kind {
	case StepDeploy:
		e := plan.Extensions[step.Ext]
		if step.BBU || len(cfs) > 1 {
			rep, err := core.Group(cfs).Broadcast(e, core.BroadcastOptions{
				Hook: step.Hook, BBU: step.BBU,
			})
			sr.Versions = rep.Versions
			sr.Err = err
			return sr
		}
		rep, err := cfs[0].InjectExtension(e, step.Hook)
		if err == nil {
			sr.Versions = []uint64{rep.Version}
		}
		sr.Err = err
		return sr

	case StepLimit:
		for _, cf := range cfs {
			if err := cf.SetRuntimeLimit(step.Hook, step.Limit); err != nil {
				sr.Err = err
				return sr
			}
		}
		return sr

	case StepRollback:
		for _, cf := range cfs {
			if _, err := cf.Rollback(step.Hook); err != nil {
				sr.Err = err
				return sr
			}
		}
		return sr

	case StepStatus:
		names := step.Nodes
		if len(names) == 0 {
			names = o.Nodes()
		}
		deployed := o.cp.DeployedVersions()
		for _, name := range names {
			cf, ok := o.flows[name]
			if !ok {
				sr.Err = fmt.Errorf("unknown node %q", name)
				return sr
			}
			key := cf.NodeKey()
			var lines []string
			for k, dv := range deployed {
				if k.Node != key {
					continue
				}
				lines = append(lines, fmt.Sprintf("%s %s: version=%d digest=%.12s blob=%#x",
					name, k.Hook, dv.Version, dv.Digest, dv.Blob))
			}
			sort.Strings(lines)
			if len(lines) == 0 {
				lines = []string{fmt.Sprintf("%s: nothing deployed", name)}
			}
			sr.Info = append(sr.Info, lines...)
		}
		return sr
	}
	sr.Err = fmt.Errorf("unknown step kind %d", step.Kind)
	return sr
}
