package orchestrator

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"rdx/internal/core"
	"rdx/internal/node"
	"rdx/internal/rdma"
	"rdx/internal/xabi"
)

func newOrch(t *testing.T, nodeNames ...string) (*Orchestrator, map[string]*node.Node) {
	t.Helper()
	cp := core.NewControlPlane()
	o := New(cp)
	fab := rdma.NewFabric()
	nodes := map[string]*node.Node{}
	for i, name := range nodeNames {
		n, err := node.New(node.Config{
			ID: name, Hooks: []string{"ingress", "kv"},
			Latency: rdma.NoLatency(), Cores: 2, Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		l, err := fab.Listen(name)
		if err != nil {
			t.Fatal(err)
		}
		go n.Serve(l)
		conn, err := fab.Dial(name)
		if err != nil {
			t.Fatal(err)
		}
		cf, err := cp.CreateCodeFlow(conn)
		if err != nil {
			t.Fatal(err)
		}
		o.AddNode(name, cf)
		nodes[name] = n
		t.Cleanup(n.Close)
	}
	return o, nodes
}

const samplePlan = `
# staged rollout with a guardrail
extension allowbig  udf "len >= 100"
extension allowall  udf "len >= 0"

deploy allowall to ingress on *
deploy allowbig to ingress on edge-1, edge-2 with bbu
limit ingress on * 50000
`

func TestParse(t *testing.T) {
	plan, err := Parse(samplePlan)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Extensions) != 2 {
		t.Fatalf("extensions = %d", len(plan.Extensions))
	}
	if len(plan.Steps) != 3 {
		t.Fatalf("steps = %d", len(plan.Steps))
	}
	if plan.Steps[0].Kind != StepDeploy || plan.Steps[0].Nodes != nil {
		t.Errorf("step 0 = %+v (want deploy to all)", plan.Steps[0])
	}
	if !plan.Steps[1].BBU || len(plan.Steps[1].Nodes) != 2 {
		t.Errorf("step 1 = %+v (want bbu to 2 nodes)", plan.Steps[1])
	}
	if plan.Steps[2].Kind != StepLimit || plan.Steps[2].Limit != 50000 {
		t.Errorf("step 2 = %+v", plan.Steps[2])
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"":                   "no executable steps",
		"deploy x to h on *": "undefined extension",
		"extension a udf \"len\"\nextension a udf \"len\"\ndeploy a to h on *": "redefined",
		"frobnicate all the things":                          "unknown statement",
		"extension a nope 1\ndeploy a to h on *":             "unknown extension kind",
		"extension a udf \"len > (\"\ndeploy a to h on *":    "",
		"deploy a at h on *":                                 "expected",
		"limit h on * notanumber":                            "bad limit",
		"extension q udf \"unterminated\ndeploy q to h on *": "unterminated",
	}
	for src, want := range bad {
		_, err := Parse(src)
		if err == nil {
			t.Errorf("plan %q accepted", src)
			continue
		}
		if want != "" && !strings.Contains(err.Error(), want) {
			t.Errorf("plan %q: error %q missing %q", src, err, want)
		}
	}
}

func TestExecuteFullPlan(t *testing.T) {
	o, nodes := newOrch(t, "edge-1", "edge-2", "core-1")
	plan, err := Parse(samplePlan)
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 3 {
		t.Fatalf("executed %d steps", len(res.Steps))
	}
	// The broadcast updated only the two edge nodes; core-1 keeps allowall.
	small := make([]byte, xabi.CtxSize)
	binary.LittleEndian.PutUint32(small[xabi.CtxOffDataLen:], 50)
	if _, err := nodes["core-1"].ExecHook("ingress", small, nil); err != nil {
		t.Errorf("core-1 should pass small requests (allowall): %v", err)
	}
	if _, err := nodes["edge-1"].ExecHook("ingress", small, nil); err != node.ErrDropped {
		t.Errorf("edge-1 should drop small requests (allowbig): %v", err)
	}
	// The runtime limit reached every node.
	for name, n := range nodes {
		slot, _ := n.HookSlot("ingress")
		fuel, _ := n.Arena.ReadQword(node.HookAddr(slot) + node.HookOffFuel)
		if fuel != 50000 {
			t.Errorf("%s fuel = %d", name, fuel)
		}
	}
}

func TestExecuteRollbackStep(t *testing.T) {
	o, nodes := newOrch(t, "n1")
	plan, err := Parse(`
extension v1 udf "len >= 0"
extension v2 udf "len >= 1000000"
deploy v1 to ingress on n1
deploy v2 to ingress on n1
rollback ingress on n1
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Execute(plan); err != nil {
		t.Fatal(err)
	}
	ctx := make([]byte, xabi.CtxSize)
	if _, err := nodes["n1"].ExecHook("ingress", ctx, nil); err != nil {
		t.Errorf("after rollback to v1, request should pass: %v", err)
	}
}

func TestExecuteUnknownNode(t *testing.T) {
	o, _ := newOrch(t, "n1")
	plan, _ := Parse(`
extension e udf "len >= 0"
deploy e to ingress on ghost
`)
	if _, err := o.Execute(plan); err == nil || !strings.Contains(err.Error(), "unknown node") {
		t.Errorf("err = %v", err)
	}
}

func TestExecuteContinuesPastFailure(t *testing.T) {
	o, nodes := newOrch(t, "n1")
	plan, _ := Parse(`
extension e udf "len >= 0"
deploy e to nosuchhook on n1
deploy e to ingress on n1
`)
	res, err := o.Execute(plan)
	if err == nil {
		t.Fatal("plan with bad hook succeeded")
	}
	// Both statements ran: the bad hook failed, the good one still deployed.
	if len(res.Steps) != 2 {
		t.Fatalf("executed %d steps, want 2 (continue past failure)", len(res.Steps))
	}
	if res.Steps[0].Err == nil || res.Steps[1].Err != nil {
		t.Errorf("step errs = [%v, %v], want [fail, ok]", res.Steps[0].Err, res.Steps[1].Err)
	}
	// The aggregate error carries the failing statement's line number.
	var se *StepError
	if !errors.As(err, &se) {
		t.Fatalf("err %v does not unwrap to *StepError", err)
	}
	if se.Line != 3 {
		t.Errorf("StepError.Line = %d, want 3", se.Line)
	}
	if !strings.Contains(err.Error(), "1 of 2 statements failed") {
		t.Errorf("aggregate error %q missing failure tally", err)
	}
	// The surviving deploy is live on the node.
	if _, err := nodes["n1"].ExecHook("ingress", make([]byte, xabi.CtxSize), nil); err != nil {
		t.Errorf("deploy after failed statement should have run: %v", err)
	}
}

func TestExecuteStatusStatement(t *testing.T) {
	o, _ := newOrch(t, "n1", "n2")
	plan, err := Parse(`
extension e udf "len >= 0"
deploy e to ingress on n1
status on *
status on n2
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 3 {
		t.Fatalf("executed %d steps, want 3", len(res.Steps))
	}
	all := strings.Join(res.Steps[1].Info, "\n")
	if !strings.Contains(all, "n1 ingress: version=1") {
		t.Errorf("status on * missing n1 deployment:\n%s", all)
	}
	if !strings.Contains(all, "n2: nothing deployed") {
		t.Errorf("status on * missing empty n2:\n%s", all)
	}
	only2 := strings.Join(res.Steps[2].Info, "\n")
	if strings.Contains(only2, "n1") {
		t.Errorf("status on n2 leaked n1 rows:\n%s", only2)
	}
}

func TestExecuteMultiFailureOrdering(t *testing.T) {
	o, _ := newOrch(t, "n1")
	plan, err := Parse(`
extension e udf "len >= 0"
deploy e to nosuchhook on n1
deploy e to ingress on ghost
deploy e to ingress on n1
limit ingress on ghost 100
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Execute(plan)
	if err == nil {
		t.Fatal("plan with three bad statements succeeded")
	}
	if len(res.Steps) != 4 {
		t.Fatalf("executed %d steps, want 4 (continue past every failure)", len(res.Steps))
	}
	if !strings.Contains(err.Error(), "3 of 4 statements failed") {
		t.Errorf("aggregate error %q missing failure tally", err)
	}
	// errors.Join preserves plan order: the joined message lists line 3
	// before 4 before 6, and errors.As surfaces the earliest failure.
	msg := err.Error()
	i3, i4, i6 := strings.Index(msg, "line 3"), strings.Index(msg, "line 4"), strings.Index(msg, "line 6")
	if i3 < 0 || i4 < 0 || i6 < 0 || !(i3 < i4 && i4 < i6) {
		t.Errorf("aggregate error does not list failures in plan order (indexes %d, %d, %d):\n%s", i3, i4, i6, msg)
	}
	var se *StepError
	if !errors.As(err, &se) {
		t.Fatalf("err %v does not unwrap to *StepError", err)
	}
	if se.Line != 3 || se.Kind != StepDeploy {
		t.Errorf("first StepError = line %d kind %d, want line 3 deploy", se.Line, se.Kind)
	}
	// The aggregate matches every individual step failure via errors.Is,
	// and the per-step records agree on which lines failed.
	wantErr := map[int]StepKind{3: StepDeploy, 4: StepDeploy, 6: StepLimit}
	for _, sr := range res.Steps {
		kind, shouldFail := wantErr[sr.Step.Line]
		if !shouldFail {
			if sr.Err != nil {
				t.Errorf("line %d failed unexpectedly: %v", sr.Step.Line, sr.Err)
			}
			continue
		}
		if sr.Err == nil {
			t.Errorf("line %d should have failed", sr.Step.Line)
			continue
		}
		if !errors.Is(err, sr.Err) {
			t.Errorf("aggregate error does not match line %d's StepError via errors.Is", sr.Step.Line)
		}
		var stepErr *StepError
		if !errors.As(sr.Err, &stepErr) || stepErr.Kind != kind {
			t.Errorf("line %d error %v: kind = %v, want %v", sr.Step.Line, sr.Err, stepErr.Kind, kind)
		}
	}
}

func TestExecuteAggregateMatchesSentinel(t *testing.T) {
	// A policy denial inside one statement must stay errors.Is-reachable
	// through StepError wrapping and the errors.Join aggregate.
	o, _ := newOrch(t, "n1")
	o.cp.SetPolicy(&core.AccessPolicy{Roles: map[core.Role]core.Privilege{
		"limited": {Hooks: []string{"kv"}},
	}})
	o.flows["n1"].Bind("limited")
	plan, err := Parse(`
extension e udf "len >= 0"
deploy e to ingress on n1
deploy e to kv on n1
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Execute(plan)
	if err == nil {
		t.Fatal("policy-denied deploy succeeded")
	}
	if !errors.Is(err, core.ErrDenied) {
		t.Errorf("aggregate error %v does not match core.ErrDenied", err)
	}
	if res.Steps[0].Err == nil || res.Steps[1].Err != nil {
		t.Errorf("step errs = [%v, %v], want [denied, ok]", res.Steps[0].Err, res.Steps[1].Err)
	}
}

func TestExecuteStatusUnknownNode(t *testing.T) {
	o, _ := newOrch(t, "n1")
	plan, err := Parse(`status on ghost`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Execute(plan)
	if err == nil || !strings.Contains(err.Error(), "unknown node") {
		t.Fatalf("status on unknown node: err = %v", err)
	}
	var se *StepError
	if !errors.As(err, &se) {
		t.Fatalf("err %v does not unwrap to *StepError", err)
	}
	if se.Kind != StepStatus || se.Line != 1 {
		t.Errorf("StepError = kind %d line %d, want status line 1", se.Kind, se.Line)
	}
	if len(res.Steps) != 1 || res.Steps[0].Info != nil {
		t.Errorf("failed status step still produced info: %+v", res.Steps[0].Info)
	}
}

func TestSyntheticAndWasmGenKinds(t *testing.T) {
	o, nodes := newOrch(t, "n1")
	plan, err := Parse(`
extension filt synthetic 64
extension wg   wasm-gen 5 50
deploy filt to ingress on *
deploy wg to kv on *
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Execute(plan); err != nil {
		t.Fatal(err)
	}
	res, err := nodes["n1"].ExecHook("kv", make([]byte, xabi.CtxSize), nil)
	if err != nil || res.Verdict != 105 {
		t.Errorf("wasm-gen verdict = %+v err=%v (want 105)", res, err)
	}
}
