package node

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"rdx/internal/cpu"
	"rdx/internal/ebpf/maps"
	"rdx/internal/ebpf/vm"
	"rdx/internal/mem"
	"rdx/internal/native"
	"rdx/internal/rdma"
	"rdx/internal/xabi"
)

// Config configures a node.
type Config struct {
	ID    string
	Arch  native.Arch // native ISA of this node (default ArchX64)
	Cores int         // simulated cores (default 4)
	Hooks []string    // hook point names, in slot order (≤ HookSlots)
	// Latency models the RDMA fabric (nil = DefaultLatency).
	Latency *rdma.LatencyModel
	// CPKI enables the CPU cache staleness model on hook-slot reads
	// (0 = fully coherent reads, the default).
	CPKI float64
	Seed int64
}

// Node is one data-plane host.
type Node struct {
	ID    string
	Arch  native.Arch
	Arena *mem.Arena
	RNIC  *rdma.Endpoint
	Cores *cpu.Cores
	Cache *mem.Cache // non-nil when CPKI staleness is modeled

	mem    *ArenaMemory
	engine *native.Engine
	got    map[string]uint64
	hooks  map[string]int // name → slot

	resolver *arenaMapResolver
	rng      *rand.Rand
	rngMu    sync.Mutex

	progMu    sync.Mutex
	progCache map[progKey]*native.Program

	wasmMu sync.Mutex // serializes wasm filters sharing linear memory
}

type progKey struct {
	addr    mem.Addr
	version uint64
}

// New boots a node: ctx_init (arena layout) followed by ctx_register
// (MR + doorbell registration).
func New(cfg Config) (*Node, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("node: missing ID")
	}
	if cfg.Arch == 0 {
		cfg.Arch = native.ArchX64
	}
	if cfg.Cores == 0 {
		cfg.Cores = 4
	}
	if len(cfg.Hooks) > HookSlots {
		return nil, fmt.Errorf("node: %d hooks exceed %d slots", len(cfg.Hooks), HookSlots)
	}
	if cfg.Latency == nil {
		cfg.Latency = rdma.DefaultLatency()
	}

	arena := mem.NewArena(ArenaSize)
	n := &Node{
		ID:        cfg.ID,
		Arch:      cfg.Arch,
		Arena:     arena,
		RNIC:      rdma.NewEndpoint(arena, cfg.Latency),
		Cores:     cpu.New(cfg.Cores),
		mem:       &ArenaMemory{A: arena},
		got:       map[string]uint64{},
		hooks:     map[string]int{},
		rng:       rand.New(rand.NewSource(cfg.Seed ^ 0x5DEECE66D)),
		progCache: map[progKey]*native.Program{},
	}
	n.resolver = &arenaMapResolver{mem: n.mem}
	if cfg.CPKI > 0 {
		n.Cache = mem.NewCacheForCPKI(arena, cfg.CPKI, cfg.Seed+1)
	}

	if err := n.ctxInit(cfg.Hooks); err != nil {
		return nil, err
	}
	if err := n.ctxRegister(); err != nil {
		return nil, err
	}

	helperAddrs := map[uint64]xabi.HelperFn{}
	helpers := vm.DefaultHelpers()
	for id, fn := range helpers {
		addr := n.got["helper:"+xabi.HelperName(int(id))]
		helperAddrs[addr] = fn
	}
	n.engine = &native.Engine{HelperAddrs: helperAddrs}
	return n, nil
}

// ctxInit lays out the arena: control block, empty hook table, GOT.
func (n *Node) ctxInit(hooks []string) error {
	a := n.Arena
	if err := a.WriteU32(CtrlBase+CtrlOffMagic, CtrlMagic); err != nil {
		return err
	}
	a.WriteU32(CtrlBase+CtrlOffMagic+4, uint32(n.Arch))
	a.WriteQword(CtrlBase+CtrlOffEpoch, 0)
	a.WriteQword(CtrlBase+CtrlOffCodeBrk, CodeBase)
	a.WriteQword(CtrlBase+CtrlOffScratchBrk, ScratchBase)
	a.WriteQword(CtrlBase+CtrlOffMetaCount, 0)
	a.WriteQword(CtrlBase+CtrlOffBootNS, uint64(time.Now().UnixNano()))
	h := fnv.New64a()
	h.Write([]byte(n.ID))
	a.WriteQword(CtrlBase+CtrlOffNodeHash, h.Sum64())

	// Preload "empty extensions": dispatch pointer 0 = pass-through.
	for i, name := range hooks {
		n.hooks[name] = i
		base := HookAddr(i)
		for off := mem.Addr(0); off < HookSlotSize; off += 8 {
			a.WriteQword(base+off, 0)
		}
	}

	// Build the GOT: helper addresses (synthetic, unique per node) plus
	// well-known structures. Serialized into the arena so the remote
	// control plane can read it during rdx_create_codeflow.
	base := uint64(0xFEED_0000_0000)
	ids := make([]int, 0, 16)
	for id := range vm.DefaultHelpers() {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for i, id := range ids {
		n.got["helper:"+xabi.HelperName(id)] = base + uint64(i)*0x40
	}
	n.got["xstate_meta"] = MetaBase
	n.got["hook_table"] = HookBase
	n.got["ctrl_block"] = CtrlBase
	// Hook points are published as GOT symbols so a remote control plane
	// can discover attachment targets without any agent round trip.
	for name, slot := range n.hooks {
		n.got["hook:"+name] = uint64(HookAddr(slot))
	}

	return n.writeGOT()
}

// writeGOT serializes the symbol table into the GOT region:
// [count u32] then per symbol [nameLen u16][name][addr u64].
func (n *Node) writeGOT() error {
	names := make([]string, 0, len(n.got))
	for s := range n.got {
		names = append(names, s)
	}
	sort.Strings(names)
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(names)))
	for _, s := range names {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
		buf = append(buf, s...)
		buf = binary.LittleEndian.AppendUint64(buf, n.got[s])
	}
	if len(buf) > GOTSize {
		return fmt.Errorf("node: GOT of %d bytes exceeds region", len(buf))
	}
	return n.Arena.Write(GOTBase, buf)
}

// ParseGOT decodes a serialized GOT region (the control-plane side).
func ParseGOT(buf []byte) (map[string]uint64, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("node: short GOT")
	}
	count := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	out := make(map[string]uint64, count)
	for i := uint32(0); i < count; i++ {
		if len(buf) < 2 {
			return nil, fmt.Errorf("node: truncated GOT entry %d", i)
		}
		nl := int(binary.LittleEndian.Uint16(buf))
		buf = buf[2:]
		if len(buf) < nl+8 {
			return nil, fmt.Errorf("node: truncated GOT entry %d", i)
		}
		name := string(buf[:nl])
		out[name] = binary.LittleEndian.Uint64(buf[nl : nl+8])
		buf = buf[nl+8:]
	}
	return out, nil
}

// ctxRegister registers MRs and the cc_event doorbell with the RNIC.
func (n *Node) ctxRegister() error {
	regs := []struct {
		name string
		addr mem.Addr
		size uint64
		perm rdma.Perm
	}{
		{MRCtrl, CtrlBase, CtrlSize + HookSize, rdma.PermAll},
		{MRGot, GOTBase, GOTSize, rdma.PermRead},
		{MRCode, CodeBase, CodeSize, rdma.PermAll},
		{MRScratch, ScratchBase, ScratchSize, rdma.PermAll},
		{MRMeta, MetaBase, MetaSize, rdma.PermAll},
	}
	for _, r := range regs {
		if _, err := n.RNIC.RegisterMR(r.name, r.addr, r.size, r.perm); err != nil {
			return err
		}
	}
	// The cc_event doorbell: a WRITE_WITH_IMM anywhere in the arena with
	// the invalidate immediate flushes the CPU cacheline at that address.
	n.RNIC.RegisterDoorbell(0, n.Arena.Size(), func(imm uint32, addr mem.Addr, _ []byte) {
		if imm == DoorbellCCInvalidate && n.Cache != nil {
			n.Cache.Invalidate(addr)
		}
	})
	return nil
}

// Serve attaches the node's RNIC to a listener (fabric or TCP).
func (n *Node) Serve(l net.Listener) error { return n.RNIC.Serve(l) }

// Close stops the RNIC and core pool.
func (n *Node) Close() {
	n.RNIC.Close()
	n.Cores.Stop()
}

// GOT returns the node's symbol table (the local view; remote callers read
// the serialized copy in the arena).
func (n *Node) GOT() map[string]uint64 {
	out := make(map[string]uint64, len(n.got))
	for k, v := range n.got {
		out[k] = v
	}
	return out
}

// HookSlot returns the slot index for a hook name.
func (n *Node) HookSlot(name string) (int, error) {
	i, ok := n.hooks[name]
	if !ok {
		return 0, fmt.Errorf("node %s: unknown hook %q", n.ID, name)
	}
	return i, nil
}

// Memory returns the node's arena as an extension-ABI memory.
func (n *Node) Memory() *ArenaMemory { return n.mem }

// Env builds the helper execution environment for one request.
func (n *Node) Env(headers map[string]string) *xabi.Env {
	return &xabi.Env{
		Mem:   n.mem,
		Maps:  n.resolver,
		NowNS: func() uint64 { return uint64(time.Now().UnixNano()) },
		RandU32: func() uint32 {
			n.rngMu.Lock()
			v := n.rng.Uint32()
			n.rngMu.Unlock()
			return v
		},
		Headers: headers,
	}
}

// readHookQword reads a hook-slot field through the CPU cache model when
// one is configured (the Fig 5 staleness path), or coherently otherwise.
func (n *Node) readHookQword(addr mem.Addr) (uint64, error) {
	if n.Cache != nil {
		return n.Cache.ReadQword(addr)
	}
	return n.Arena.ReadQword(addr)
}

// ErrDropped marks requests dropped by an extension verdict.
var ErrDropped = fmt.Errorf("node: request dropped by extension")

// ErrRuntimeLimit marks executions aborted by the per-hook instruction
// budget (§5: "enforce strict runtime limits").
var ErrRuntimeLimit = fmt.Errorf("node: extension exceeded its runtime limit")

// ExecResult reports one hook execution.
type ExecResult struct {
	Verdict uint64
	Version uint64 // extension version that processed the request (0 = none)
}

// ExecHook runs the extension attached to hook against ctxBuf (a CtxSize
// context; mutated in place). It is the data-plane fast path and performs
// no allocation beyond the engine run. Callers run it on a node core.
func (n *Node) ExecHook(hook string, ctxBuf []byte, headers map[string]string) (ExecResult, error) {
	slot, err := n.HookSlot(hook)
	if err != nil {
		return ExecResult{}, err
	}
	base := HookAddr(slot)

	ptr, err := n.readHookQword(base + HookOffDispatch)
	if err != nil {
		return ExecResult{}, err
	}
	n.Arena.FetchAdd(base+HookOffExecs, 1)
	if ptr == 0 {
		return ExecResult{Verdict: xabi.VerdictPass}, nil
	}

	blob, err := n.readBlob(ptr)
	if err != nil {
		return ExecResult{}, fmt.Errorf("node %s: hook %s: %w", n.ID, hook, err)
	}
	prog, err := n.decodeCached(ptr, blob)
	if err != nil {
		return ExecResult{}, err
	}

	// Per-hook runtime limit (§5 availability): the control plane caps
	// instructions per execution by writing the hook's fuel word remotely.
	engine := n.engine
	if fuel, ferr := n.Arena.ReadQword(base + HookOffFuel); ferr == nil && fuel != 0 {
		bounded := *n.engine
		bounded.Fuel = int(fuel)
		engine = &bounded
	}

	env := n.Env(headers)
	var verdict uint64
	switch blob.kind {
	case KindEBPF, KindUDF:
		verdict, err = engine.Run(prog, env, ctxBuf)
	case KindWasm:
		// Wasm filter ABI: ctx is staged in the filter's linear memory.
		n.wasmMu.Lock()
		if blob.memBase != 0 && len(ctxBuf) > 0 {
			if werr := n.mem.WriteBytes(blob.memBase, ctxBuf); werr != nil {
				n.wasmMu.Unlock()
				return ExecResult{}, werr
			}
		}
		verdict, err = engine.Run(prog, env, nil)
		if err == nil && blob.memBase != 0 && len(ctxBuf) > 0 {
			back, rerr := n.mem.ReadBytes(blob.memBase, len(ctxBuf))
			if rerr == nil {
				copy(ctxBuf, back)
			}
		}
		n.wasmMu.Unlock()
	default:
		err = fmt.Errorf("node %s: blob kind %d unknown", n.ID, blob.kind)
	}
	if err != nil {
		if errors.Is(err, native.ErrFuel) {
			// Runtime-limit abort: count it and fail the request safely.
			n.Arena.FetchAdd(base+HookOffAborts, 1)
			return ExecResult{Version: blob.version}, fmt.Errorf("node %s: hook %s: %w", n.ID, hook, ErrRuntimeLimit)
		}
		return ExecResult{}, err
	}
	if verdict == xabi.VerdictDrop {
		n.Arena.FetchAdd(base+HookOffDrops, 1)
		return ExecResult{Verdict: verdict, Version: blob.version}, ErrDropped
	}
	return ExecResult{Verdict: verdict, Version: blob.version}, nil
}

// WaitReady blocks while the hook's BBU buffering gate is raised, modeling
// the request buffer in front of the sandbox. Returns ctx.Err() on timeout.
func (n *Node) WaitReady(ctx context.Context, hook string) error {
	slot, err := n.HookSlot(hook)
	if err != nil {
		return err
	}
	addr := HookAddr(slot) + HookOffBuffer
	for {
		v, err := n.Arena.ReadQword(addr)
		if err != nil {
			return err
		}
		if v == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		time.Sleep(2 * time.Microsecond)
	}
}

// blobInfo is a decoded blob header.
type blobInfo struct {
	arch     native.Arch
	kind     uint8
	codeLen  uint32
	version  uint64
	memBase  uint64
	globBase uint64
}

func (n *Node) readBlob(addr mem.Addr) (blobInfo, error) {
	hdr, err := n.Arena.Read(addr, BlobHdrSize)
	if err != nil {
		return blobInfo{}, err
	}
	if binary.LittleEndian.Uint32(hdr[BlobOffMagic:]) != BlobMagic {
		return blobInfo{}, fmt.Errorf("no blob at %#x", addr)
	}
	return blobInfo{
		arch:     native.Arch(hdr[BlobOffArch]),
		kind:     hdr[BlobOffArch+1],
		codeLen:  binary.LittleEndian.Uint32(hdr[BlobOffLen:]),
		version:  binary.LittleEndian.Uint64(hdr[BlobOffVersion:]),
		memBase:  binary.LittleEndian.Uint64(hdr[BlobOffMemBase:]),
		globBase: binary.LittleEndian.Uint64(hdr[BlobOffGlobBase:]),
	}, nil
}

// decodeCached decodes a blob's code, caching by (address, version) — the
// icache analogue: first execution after injection pays the decode.
func (n *Node) decodeCached(addr mem.Addr, blob blobInfo) (*native.Program, error) {
	key := progKey{addr, blob.version}
	n.progMu.Lock()
	if p, ok := n.progCache[key]; ok {
		n.progMu.Unlock()
		return p, nil
	}
	n.progMu.Unlock()

	if blob.arch != n.Arch {
		return nil, fmt.Errorf("blob arch %v does not match node arch %v", blob.arch, n.Arch)
	}
	code, err := n.Arena.Read(addr+BlobHdrSize, int(blob.codeLen))
	if err != nil {
		return nil, err
	}
	p, err := native.DecodeProgram(blob.arch, code)
	if err != nil {
		return nil, err
	}
	n.progMu.Lock()
	if len(n.progCache) > 1024 {
		n.progCache = map[progKey]*native.Program{}
	}
	n.progCache[key] = p
	n.progMu.Unlock()
	return p, nil
}

// HookStats reports a hook's data-plane counters.
type HookStats struct {
	Execs   uint64
	Drops   uint64
	Version uint64
}

// Stats reads a hook's counters.
func (n *Node) Stats(hook string) (HookStats, error) {
	slot, err := n.HookSlot(hook)
	if err != nil {
		return HookStats{}, err
	}
	base := HookAddr(slot)
	execs, _ := n.Arena.ReadQword(base + HookOffExecs)
	drops, _ := n.Arena.ReadQword(base + HookOffDrops)
	ver, _ := n.Arena.ReadQword(base + HookOffVersion)
	return HookStats{Execs: execs, Drops: drops, Version: ver}, nil
}

// CtxTeardown detaches the extension at hook (stub 3 of §3.1): decrements
// the blob refcount and clears the dispatch pointer.
func (n *Node) CtxTeardown(hook string) error {
	slot, err := n.HookSlot(hook)
	if err != nil {
		return err
	}
	base := HookAddr(slot)
	ptr, err := n.Arena.ReadQword(base + HookOffDispatch)
	if err != nil {
		return err
	}
	if ptr != 0 {
		n.Arena.FetchAdd(ptr+BlobOffRefcnt, ^uint64(0)) // -1
	}
	return n.Arena.WriteQword(base+HookOffDispatch, 0)
}

// ArenaMemory adapts a DRAM arena to the extension ABI, with atomic CAS
// support for in-arena map locking.
type ArenaMemory struct {
	A *mem.Arena
}

var _ xabi.Memory = (*ArenaMemory)(nil)
var _ maps.AtomicMemory = (*ArenaMemory)(nil)

// ReadMem implements xabi.Memory.
func (m *ArenaMemory) ReadMem(addr uint64, size int) (uint64, error) {
	var buf [8]byte
	if err := m.A.ReadInto(addr, buf[:size]); err != nil {
		return 0, fmt.Errorf("%w: %v", xabi.ErrFault, err)
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(buf[i])
	}
	return v, nil
}

// WriteMem implements xabi.Memory.
func (m *ArenaMemory) WriteMem(addr uint64, size int, val uint64) error {
	var buf [8]byte
	for i := 0; i < size; i++ {
		buf[i] = byte(val >> (8 * i))
	}
	if err := m.A.Write(addr, buf[:size]); err != nil {
		return fmt.Errorf("%w: %v", xabi.ErrFault, err)
	}
	return nil
}

// ReadBytes implements xabi.Memory.
func (m *ArenaMemory) ReadBytes(addr uint64, nBytes int) ([]byte, error) {
	b, err := m.A.Read(addr, nBytes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", xabi.ErrFault, err)
	}
	return b, nil
}

// WriteBytes implements xabi.Memory.
func (m *ArenaMemory) WriteBytes(addr uint64, b []byte) error {
	if err := m.A.Write(addr, b); err != nil {
		return fmt.Errorf("%w: %v", xabi.ErrFault, err)
	}
	return nil
}

// CompareAndSwapMem implements maps.AtomicMemory.
func (m *ArenaMemory) CompareAndSwapMem(addr uint64, old, new uint64) (uint64, bool, error) {
	return m.A.CompareAndSwap(addr, old, new)
}

// arenaMapResolver attaches map views at arena addresses on demand.
type arenaMapResolver struct {
	mem *ArenaMemory
	mu  sync.Mutex
	att map[uint64]*maps.View
}

// ResolveMap implements xabi.MapResolver.
func (r *arenaMapResolver) ResolveMap(handle uint64) (xabi.Map, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.att == nil {
		r.att = map[uint64]*maps.View{}
	}
	if v, ok := r.att[handle]; ok {
		return v, true
	}
	v, err := maps.Attach(r.mem, handle)
	if err != nil {
		return nil, false
	}
	r.att[handle] = v
	return v, true
}

// InvalidateMapCache drops attached views (after XState teardown).
func (n *Node) InvalidateMapCache() {
	n.resolver.mu.Lock()
	n.resolver.att = nil
	n.resolver.mu.Unlock()
}

// EnterRequest admits one request into the hook's update bubble: the
// in-flight counter is raised before the BBU gate is checked, so a
// concurrent drain either counts this request or finds it parked at the
// gate — never neither. The returned leave function must be called when the
// request completes. This is the data-plane half of Big Bubble Update.
func (n *Node) EnterRequest(ctx context.Context, hook string) (leave func(), err error) {
	slot, err := n.HookSlot(hook)
	if err != nil {
		return nil, err
	}
	base := HookAddr(slot)
	for {
		if _, err := n.Arena.FetchAdd(base+HookOffInflight, 1); err != nil {
			return nil, err
		}
		gate, err := n.Arena.ReadQword(base + HookOffBuffer)
		if err != nil {
			return nil, err
		}
		if gate == 0 {
			return func() {
				n.Arena.FetchAdd(base+HookOffInflight, ^uint64(0))
			}, nil
		}
		// Gate raised: step back out and wait for the bubble to pass.
		n.Arena.FetchAdd(base+HookOffInflight, ^uint64(0))
		if err := n.WaitReady(ctx, hook); err != nil {
			return nil, err
		}
	}
}
