package node

import (
	"context"
	"sync"
	"testing"
	"time"

	"rdx/internal/rdma"
)

// Tests for the BBU primitives on the node side: EnterRequest's
// counter-then-gate ordering and its interaction with WaitReady.

func TestEnterRequestCountsInflight(t *testing.T) {
	n := newTestNode(t)
	slot, _ := n.HookSlot("ingress")
	inflightAddr := HookAddr(slot) + HookOffInflight

	leave1, err := n.EnterRequest(context.Background(), "ingress")
	if err != nil {
		t.Fatal(err)
	}
	leave2, err := n.EnterRequest(context.Background(), "ingress")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := n.Arena.ReadQword(inflightAddr); v != 2 {
		t.Errorf("inflight = %d, want 2", v)
	}
	leave1()
	leave2()
	if v, _ := n.Arena.ReadQword(inflightAddr); v != 0 {
		t.Errorf("inflight after leave = %d, want 0", v)
	}
}

func TestEnterRequestBuffersAtGate(t *testing.T) {
	n := newTestNode(t)
	slot, _ := n.HookSlot("ingress")
	gate := HookAddr(slot) + HookOffBuffer
	inflight := HookAddr(slot) + HookOffInflight

	n.Arena.WriteQword(gate, 1)
	admitted := make(chan func(), 1)
	go func() {
		leave, err := n.EnterRequest(context.Background(), "ingress")
		if err != nil {
			return
		}
		admitted <- leave
	}()

	// While gated, the request must not be admitted AND must not be
	// counted in flight (it stepped back out) — that is what lets the
	// drain converge.
	time.Sleep(3 * time.Millisecond)
	select {
	case <-admitted:
		t.Fatal("request admitted through a raised gate")
	default:
	}
	if v, _ := n.Arena.ReadQword(inflight); v != 0 {
		t.Errorf("gated request counted in flight: %d", v)
	}

	n.Arena.WriteQword(gate, 0)
	select {
	case leave := <-admitted:
		leave()
	case <-time.After(time.Second):
		t.Fatal("request never admitted after gate cleared")
	}
}

func TestEnterRequestContextCancel(t *testing.T) {
	n := newTestNode(t)
	slot, _ := n.HookSlot("ingress")
	n.Arena.WriteQword(HookAddr(slot)+HookOffBuffer, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := n.EnterRequest(ctx, "ingress"); err == nil {
		t.Fatal("gated EnterRequest returned without gate clearing")
	}
}

// TestDrainRace hammers the counter-then-gate ordering: concurrent
// enter/leave cycles against gate raise + drain must never let the drain
// observe zero while a request is actually admitted and running.
func TestDrainRace(t *testing.T) {
	n, err := New(Config{
		ID: "drain", Hooks: []string{"h"}, Latency: rdma.NoLatency(), Cores: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	slot, _ := n.HookSlot("h")
	gate := HookAddr(slot) + HookOffBuffer
	inflight := HookAddr(slot) + HookOffInflight

	stop := make(chan struct{})
	var inside sync.Map // request id → true while admitted
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				leave, err := n.EnterRequest(context.Background(), "h")
				if err != nil {
					return
				}
				key := w*1_000_000 + i
				inside.Store(key, true)
				time.Sleep(50 * time.Microsecond)
				inside.Delete(key)
				leave()
			}
		}(w)
	}

	for round := 0; round < 30; round++ {
		n.Arena.WriteQword(gate, 1)
		// Drain.
		deadline := time.Now().Add(time.Second)
		for {
			v, _ := n.Arena.ReadQword(inflight)
			if v == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("drain never converged")
			}
		}
		// Invariant: with the gate up and the counter at zero, nothing
		// is admitted.
		violations := 0
		inside.Range(func(_, _ interface{}) bool {
			violations++
			return true
		})
		if violations > 0 {
			t.Fatalf("round %d: %d requests inside the bubble after drain", round, violations)
		}
		n.Arena.WriteQword(gate, 0)
		time.Sleep(200 * time.Microsecond)
	}
	close(stop)
	wg.Wait()
}
