package node

import (
	"context"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"rdx/internal/ebpf"
	"rdx/internal/ebpf/jit"
	"rdx/internal/ebpf/maps"
	"rdx/internal/native"
	"rdx/internal/rdma"
	"rdx/internal/udf"
	"rdx/internal/wasm"
	"rdx/internal/xabi"
)

func newTestNode(t *testing.T, hooks ...string) *Node {
	t.Helper()
	if len(hooks) == 0 {
		hooks = []string{"ingress"}
	}
	n, err := New(Config{
		ID:      "n0",
		Hooks:   hooks,
		Latency: rdma.NoLatency(),
		Cores:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

// deployEBPF compiles, links, writes, and binds an eBPF program locally
// (the agent's load path) and returns the blob address.
func deployEBPF(t *testing.T, n *Node, hook string, p *ebpf.Program, extra map[string]uint64, version uint64) {
	t.Helper()
	bin, err := jit.Compile(p, n.Arch)
	if err != nil {
		t.Fatal(err)
	}
	if err := native.Link(bin, n.LocalResolver(extra)); err != nil {
		t.Fatal(err)
	}
	addr, err := n.WriteBlobLocal(bin, BlobParams{Kind: KindEBPF, Version: version})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.BindHookLocal(hook, addr, version); err != nil {
		t.Fatal(err)
	}
}

func TestBootLayout(t *testing.T) {
	n := newTestNode(t, "a", "b")
	magic, _ := n.Arena.ReadU32(CtrlBase + CtrlOffMagic)
	if magic != CtrlMagic {
		t.Errorf("magic = %#x", magic)
	}
	brk, _ := n.Arena.ReadQword(CtrlBase + CtrlOffCodeBrk)
	if brk != CodeBase {
		t.Errorf("code brk = %#x", brk)
	}
	if _, err := n.HookSlot("a"); err != nil {
		t.Error(err)
	}
	if _, err := n.HookSlot("zz"); err == nil {
		t.Error("unknown hook accepted")
	}
	// MRs registered.
	for _, name := range []string{MRCtrl, MRGot, MRCode, MRScratch, MRMeta} {
		if _, ok := n.RNIC.MRByName(name); !ok {
			t.Errorf("MR %s missing", name)
		}
	}
}

func TestGOTSerialization(t *testing.T) {
	n := newTestNode(t)
	raw, err := n.Arena.Read(GOTBase, GOTSize)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseGOT(raw)
	if err != nil {
		t.Fatal(err)
	}
	local := n.GOT()
	if len(got) != len(local) {
		t.Fatalf("parsed %d symbols, local has %d", len(got), len(local))
	}
	for sym, addr := range local {
		if got[sym] != addr {
			t.Errorf("symbol %s: parsed %#x, local %#x", sym, got[sym], addr)
		}
	}
	if _, ok := got["xstate_meta"]; !ok {
		t.Error("xstate_meta missing from GOT")
	}
	if _, err := ParseGOT([]byte{1}); err == nil {
		t.Error("short GOT parsed")
	}
}

func TestExecEmptyHookPasses(t *testing.T) {
	n := newTestNode(t)
	ctx := make([]byte, xabi.CtxSize)
	res, err := n.ExecHook("ingress", ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != xabi.VerdictPass || res.Version != 0 {
		t.Errorf("res = %+v", res)
	}
	st, _ := n.Stats("ingress")
	if st.Execs != 1 {
		t.Errorf("execs = %d", st.Execs)
	}
}

func TestDeployAndExecEBPF(t *testing.T) {
	n := newTestNode(t)
	// Program: verdict = ctx.len > 100 ? pass : drop (returns the verdict).
	insns := []ebpf.Instruction{
		ebpf.LoadMem(ebpf.SizeW, ebpf.R2, ebpf.R1, int16(xabi.CtxOffDataLen)),
		ebpf.Mov64Imm(ebpf.R0, int32(xabi.VerdictPass)),
		ebpf.JmpImm(ebpf.JmpJGT, ebpf.R2, 100, 1),
		ebpf.Mov64Imm(ebpf.R0, int32(xabi.VerdictDrop)),
		ebpf.Exit(),
	}
	p := ebpf.NewProgram("lenfilter", ebpf.ProgTypeSocketFilter, insns)
	deployEBPF(t, n, "ingress", p, nil, 1)

	big := make([]byte, xabi.CtxSize)
	binary.LittleEndian.PutUint32(big[xabi.CtxOffDataLen:], 500)
	res, err := n.ExecHook("ingress", big, nil)
	if err != nil {
		t.Fatalf("big packet: %v", err)
	}
	if res.Verdict != xabi.VerdictPass || res.Version != 1 {
		t.Errorf("big packet res = %+v", res)
	}

	small := make([]byte, xabi.CtxSize)
	binary.LittleEndian.PutUint32(small[xabi.CtxOffDataLen:], 10)
	res, err = n.ExecHook("ingress", small, nil)
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("small packet err = %v, want ErrDropped", err)
	}
	if res.Verdict != xabi.VerdictDrop {
		t.Errorf("small packet res = %+v", res)
	}
	st, _ := n.Stats("ingress")
	if st.Execs != 2 || st.Drops != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDeployEBPFWithMap(t *testing.T) {
	n := newTestNode(t)
	spec := ebpf.MapSpec{Name: "cnt", Type: xabi.MapTypeHash, KeySize: 4, ValueSize: 8, MaxEntries: 16}

	// Create the XState map in the scratchpad (as the control plane or
	// agent would) and link the program against it.
	hdrAddr, err := n.AllocScratch(int(maps.Size(spec)))
	if err != nil {
		t.Fatal(err)
	}
	view, err := maps.Create(n.Memory(), hdrAddr, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.RegisterMetaXState(hdrAddr); err != nil {
		t.Fatal(err)
	}

	// Program: increment map[0] on every request; return pass.
	insns := []ebpf.Instruction{
		ebpf.StoreImm(ebpf.SizeW, ebpf.R10, -4, 0),
		ebpf.StoreImm(ebpf.SizeDW, ebpf.R10, -16, 1),
	}
	insns = append(insns, ebpf.LoadMapPtr(ebpf.R1, 0)...)
	insns = append(insns,
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Alu64Imm(ebpf.AluAdd, ebpf.R2, -4),
		ebpf.Call(xabi.HelperMapLookup),
		ebpf.JmpImm(ebpf.JmpJNE, ebpf.R0, 0, 9), // found → increment path
	)
	insns = append(insns, ebpf.LoadMapPtr(ebpf.R1, 0)...)
	insns = append(insns,
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Alu64Imm(ebpf.AluAdd, ebpf.R2, -4),
		ebpf.Mov64Reg(ebpf.R3, ebpf.R10),
		ebpf.Alu64Imm(ebpf.AluAdd, ebpf.R3, -16),
		ebpf.Mov64Imm(ebpf.R4, 0),
		ebpf.Call(xabi.HelperMapUpdate),
		ebpf.Ja(3),
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R3, ebpf.R0, 0),
		ebpf.Alu64Imm(ebpf.AluAdd, ebpf.R3, 1),
		ebpf.StoreMem(ebpf.SizeDW, ebpf.R0, ebpf.R3, 0),
		ebpf.Mov64Imm(ebpf.R0, int32(xabi.VerdictPass)),
		ebpf.Exit(),
	)
	p := ebpf.NewProgram("counter", ebpf.ProgTypeSocketFilter, insns, spec)
	deployEBPF(t, n, "ingress", p, map[string]uint64{jit.MapSymbol("cnt"): hdrAddr}, 1)

	ctx := make([]byte, xabi.CtxSize)
	for i := 0; i < 5; i++ {
		if _, err := n.ExecHook("ingress", ctx, nil); err != nil {
			t.Fatalf("exec %d: %v", i, err)
		}
	}
	addr, found, err := view.Lookup([]byte{0, 0, 0, 0})
	if err != nil || !found {
		t.Fatalf("lookup: %v %v", found, err)
	}
	if got, _ := n.Memory().ReadMem(addr, 8); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
}

func TestDeployWasm(t *testing.T) {
	n := newTestNode(t)
	// Filter: read len from ctx (in linear memory), pass iff len < 1000.
	body := wasm.NewBody().
		I32Const(int32(xabi.CtxOffDataLen)).I32Load(0).
		I32Const(1000).Raw(wasm.OpI32LtU).
		If(uint8(wasm.I64)).
		I64Const(int64(xabi.VerdictPass)).
		Else().
		I64Const(int64(xabi.VerdictDrop)).
		End().
		End().Bytes()
	m := wasm.SimpleFilter("lenlimit", 1, nil, body)

	bin, err := wasm.Compile(m, n.Arch)
	if err != nil {
		t.Fatal(err)
	}
	memBase, err := n.AllocScratch(int(m.MemPages) * wasm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := native.Link(bin, n.LocalResolver(map[string]uint64{
		wasm.SymMemory: memBase,
	})); err != nil {
		t.Fatal(err)
	}
	addr, err := n.WriteBlobLocal(bin, BlobParams{Kind: KindWasm, Version: 3, MemBase: memBase})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.BindHookLocal("ingress", addr, 3); err != nil {
		t.Fatal(err)
	}

	ctx := make([]byte, xabi.CtxSize)
	binary.LittleEndian.PutUint32(ctx[xabi.CtxOffDataLen:], 100)
	res, err := n.ExecHook("ingress", ctx, nil)
	if err != nil || res.Verdict != xabi.VerdictPass || res.Version != 3 {
		t.Fatalf("small: res=%+v err=%v", res, err)
	}
	binary.LittleEndian.PutUint32(ctx[xabi.CtxOffDataLen:], 5000)
	if _, err = n.ExecHook("ingress", ctx, nil); !errors.Is(err, ErrDropped) {
		t.Fatalf("big: err=%v, want drop", err)
	}
}

func TestDeployUDF(t *testing.T) {
	n := newTestNode(t)
	p, err := udf.New("q", "tenant == 7")
	if err != nil {
		t.Fatal(err)
	}
	bin, err := p.Compile(n.Arch)
	if err != nil {
		t.Fatal(err)
	}
	if err := native.Link(bin, n.LocalResolver(nil)); err != nil {
		t.Fatal(err)
	}
	addr, err := n.WriteBlobLocal(bin, BlobParams{Kind: KindUDF, Version: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.BindHookLocal("ingress", addr, 9); err != nil {
		t.Fatal(err)
	}

	ctx := make([]byte, xabi.CtxSize)
	binary.LittleEndian.PutUint64(ctx[xabi.CtxOffTenant:], 7)
	res, err := n.ExecHook("ingress", ctx, nil)
	if err != nil || res.Verdict != 1 {
		t.Fatalf("tenant 7: res=%+v err=%v", res, err)
	}
	binary.LittleEndian.PutUint64(ctx[xabi.CtxOffTenant:], 8)
	res, err = n.ExecHook("ingress", ctx, nil)
	// verdict 0 == VerdictDrop.
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("tenant 8: res=%+v err=%v", res, err)
	}
}

func TestUnlinkedBinaryRejected(t *testing.T) {
	n := newTestNode(t)
	p := ebpf.NewProgram("h", ebpf.ProgTypeSocketFilter, []ebpf.Instruction{
		ebpf.Call(xabi.HelperKtimeGetNS),
		ebpf.Exit(),
	})
	bin, err := jit.Compile(p, n.Arch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.WriteBlobLocal(bin, BlobParams{Kind: KindEBPF, Version: 1}); err == nil {
		t.Error("unlinked binary deployed")
	}
}

func TestArchMismatchRejectedAtExec(t *testing.T) {
	n := newTestNode(t)
	other := native.ArchA64
	if n.Arch == native.ArchA64 {
		other = native.ArchX64
	}
	p := ebpf.NewProgram("m", ebpf.ProgTypeSocketFilter, []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R0, 1), ebpf.Exit(),
	})
	bin, _ := jit.Compile(p, other)
	native.Link(bin, n.LocalResolver(nil))
	addr, err := n.WriteBlobLocal(bin, BlobParams{Kind: KindEBPF, Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	n.BindHookLocal("ingress", addr, 1)
	if _, err := n.ExecHook("ingress", make([]byte, xabi.CtxSize), nil); err == nil {
		t.Error("arch mismatch executed")
	}
}

func TestAllocBumpAndExhaustion(t *testing.T) {
	n := newTestNode(t)
	a1, err := n.AllocCode(100)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := n.AllocCode(100)
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a1+104 { // 100 rounded to 104
		t.Errorf("bump: %#x then %#x", a1, a2)
	}
	if _, err := n.AllocCode(CodeSize * 2); err == nil {
		t.Error("over-allocation accepted")
	}
	s1, err := n.AllocScratch(10)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := n.AllocScratch(10)
	if s2 != s1+64 {
		t.Errorf("scratch bump: %#x then %#x", s1, s2)
	}
}

func TestVersionFlipUpdatesExecution(t *testing.T) {
	n := newTestNode(t)
	mk := func(ret int32) *ebpf.Program {
		return ebpf.NewProgram("v", ebpf.ProgTypeSocketFilter, []ebpf.Instruction{
			ebpf.Mov64Imm(ebpf.R0, ret), ebpf.Exit(),
		})
	}
	deployEBPF(t, n, "ingress", mk(5), nil, 1)
	ctx := make([]byte, xabi.CtxSize)
	res, _ := n.ExecHook("ingress", ctx, nil)
	if res.Verdict != 5 || res.Version != 1 {
		t.Fatalf("v1: %+v", res)
	}
	deployEBPF(t, n, "ingress", mk(6), nil, 2)
	res, _ = n.ExecHook("ingress", ctx, nil)
	if res.Verdict != 6 || res.Version != 2 {
		t.Fatalf("v2: %+v", res)
	}
}

func TestCtxTeardown(t *testing.T) {
	n := newTestNode(t)
	p := ebpf.NewProgram("x", ebpf.ProgTypeSocketFilter, []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R0, 9), ebpf.Exit(),
	})
	deployEBPF(t, n, "ingress", p, nil, 1)
	if err := n.CtxTeardown("ingress"); err != nil {
		t.Fatal(err)
	}
	res, err := n.ExecHook("ingress", make([]byte, xabi.CtxSize), nil)
	if err != nil || res.Verdict != xabi.VerdictPass || res.Version != 0 {
		t.Errorf("after teardown: %+v err=%v", res, err)
	}
}

func TestWaitReadyBBUGate(t *testing.T) {
	n := newTestNode(t)
	slot, _ := n.HookSlot("ingress")
	gate := HookAddr(slot) + HookOffBuffer

	// Gate open: returns immediately.
	if err := n.WaitReady(context.Background(), "ingress"); err != nil {
		t.Fatal(err)
	}
	// Gate raised: blocks until released.
	n.Arena.WriteQword(gate, 1)
	released := make(chan error, 1)
	go func() {
		released <- n.WaitReady(context.Background(), "ingress")
	}()
	select {
	case <-released:
		t.Fatal("WaitReady returned while gate raised")
	case <-time.After(5 * time.Millisecond):
	}
	n.Arena.WriteQword(gate, 0)
	select {
	case err := <-released:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("WaitReady never released")
	}
	// Timeout path.
	n.Arena.WriteQword(gate, 1)
	cctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := n.WaitReady(cctx, "ingress"); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("timeout err = %v", err)
	}
}

func TestMetaXStateIndex(t *testing.T) {
	n := newTestNode(t)
	i0, err := n.RegisterMetaXState(0x111000)
	if err != nil {
		t.Fatal(err)
	}
	i1, _ := n.RegisterMetaXState(0x222000)
	if i0 != 0 || i1 != 1 {
		t.Errorf("indexes %d %d", i0, i1)
	}
	entries, err := n.MetaXStateEntries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0] != 0x111000 || entries[1] != 0x222000 {
		t.Errorf("entries = %#x", entries)
	}
}
