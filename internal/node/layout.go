// Package node implements an RDX data-plane node: a DRAM arena laid out
// with a control block, hook table, GOT, code region, XState scratchpad,
// and Meta-XState index; a software RNIC serving one-sided verbs against
// that arena; a bounded pool of simulated CPU cores; and the sandbox
// dispatch path that executes injected extensions on request traffic.
//
// The node boots through the paper's three management stubs (§3.1):
//
//	ctx_init     — lay out the arena and preload empty extensions
//	ctx_register — register memory regions (and the cc_event doorbell)
//	              with the RNIC for remote access
//	ctx_teardown — detach extensions by reference count
//
// After boot the node needs NO local control software: every control-path
// operation (allocation, code injection, linking artifacts, XState
// management, pointer flips) is reachable through RDMA verbs on the
// registered regions. Allocation in particular is a remote FETCH_ADD on
// the bump pointers in the control block, which is what lets the control
// plane carve code and XState space without a local agent.
package node

import "rdx/internal/mem"

// Arena layout constants. All offsets are fixed so the remote control plane
// can navigate the arena from the MR table alone.
const (
	// Control block: magic, arch, epoch, bump pointers.
	CtrlBase = 0x0000
	CtrlSize = 0x1000

	// Hook table: HookSlots fixed slots of HookSlotSize bytes.
	HookBase     = 0x1000
	HookSlotSize = 128
	HookSlots    = 64
	HookSize     = HookSlots * HookSlotSize // 8 KiB

	// Serialized GOT: symbol table exposing local context (§3.3).
	GOTBase = 0x10000
	GOTSize = 0x10000

	// Code region: extension blobs, allocated via the code bump pointer.
	CodeBase = 0x20000
	CodeSize = 4 << 20

	// Scratchpad: XState backing store (§3.4), allocated via bump pointer.
	ScratchBase = CodeBase + CodeSize
	ScratchSize = 8 << 20

	// Meta-XState: index array of XState header addresses.
	MetaBase    = ScratchBase + ScratchSize
	MetaEntries = 4096
	MetaSize    = 8 + MetaEntries*8 // count qword + entries

	// ArenaSize is the total node DRAM.
	ArenaSize = MetaBase + MetaSize + 0x1000
)

// Control block field offsets (qwords unless noted).
const (
	CtrlOffMagic      = 0x00 // u32 magic + u32 arch
	CtrlOffEpoch      = 0x08 // global update epoch
	CtrlOffCodeBrk    = 0x10 // code region bump pointer (absolute addr)
	CtrlOffScratchBrk = 0x18 // scratchpad bump pointer (absolute addr)
	CtrlOffMetaCount  = 0x20 // Meta-XState entry count (mirrors MetaBase count)
	CtrlOffBootNS     = 0x28
	CtrlOffNodeHash   = 0x30
)

// CtrlMagic identifies an initialized RDX node arena.
const CtrlMagic uint32 = 0x5244_5801 // "RDX\x01"

// Hook slot field offsets.
const (
	HookOffDispatch = 0x00 // qword: address of the active code blob (0 = pass)
	HookOffVersion  = 0x08 // qword: monotonically increasing extension version
	HookOffLock     = 0x10 // qword: rdx_mutual_excl lock word
	HookOffBuffer   = 0x18 // qword: BBU buffering gate (nonzero = hold requests)
	HookOffExecs    = 0x20 // qword: execution count (data-plane stats)
	HookOffDrops    = 0x28 // qword: drop-verdict count
	HookOffStaged   = 0x30 // qword: staged blob address for two-phase commit
	HookOffInflight = 0x38 // qword: requests currently inside the bubble (BBU drain)
	HookOffFuel     = 0x40 // qword: per-execution instruction budget (0 = engine default)
	HookOffAborts   = 0x48 // qword: executions aborted by the runtime limit
)

// MR names registered by ctx_register. The control plane locates regions by
// these names in the QueryMRs exchange.
const (
	MRCtrl    = "rdx:ctrl" // control block + hook table (read/write/atomic)
	MRGot     = "rdx:got"  // GOT (read-only remotely)
	MRCode    = "rdx:code"
	MRScratch = "rdx:scratch"
	MRMeta    = "rdx:meta"
)

// Code blob header, written at the start of every deployed extension.
const (
	BlobMagic       uint32 = 0x5842_4C42 // "XBLB"
	BlobHdrSize            = 48
	BlobOffMagic           = 0  // u32
	BlobOffArch            = 4  // u8 arch, u8 kind, u16 pad
	BlobOffLen             = 8  // u32 code length
	BlobOffVersion         = 16 // u64
	BlobOffRefcnt          = 24 // u64
	BlobOffMemBase         = 32 // u64: wasm linear memory (0 if unused)
	BlobOffGlobBase        = 40 // u64: wasm globals (0 if unused)
)

// Extension kinds carried in blob headers.
const (
	KindEBPF uint8 = 1
	KindWasm uint8 = 2
	KindUDF  uint8 = 3
)

// HookAddr returns the arena address of hook slot i.
func HookAddr(i int) mem.Addr {
	return HookBase + mem.Addr(i)*HookSlotSize
}

// Doorbell immediate values for WRITE_WITH_IMM operations.
const (
	DoorbellCCInvalidate uint32 = 1 // rdx_cc_event: invalidate cacheline at addr
	DoorbellWake         uint32 = 2 // generic wakeup
)
