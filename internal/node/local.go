package node

import (
	"encoding/binary"
	"fmt"

	"rdx/internal/mem"
	"rdx/internal/native"
)

// Local loading primitives. These are the operations a node-resident agent
// performs with ordinary CPU instructions; the RDX control plane performs
// the *same* state transitions remotely via one-sided verbs (FETCH_ADD on
// the bump pointers, WRITE of the blob, CAS of the dispatch pointer). Both
// paths therefore interoperate on the same arena layout.

// AllocCode reserves size bytes (8-aligned) in the code region and returns
// the blob base address. The region is a ring: when the bump pointer would
// run off the end it wraps to the base, reclaiming the oldest (long-dead)
// blobs. Active blobs are always the most recently allocated, so a wrap
// never lands on one unless a single blob exceeds half the region.
func (n *Node) AllocCode(size int) (mem.Addr, error) {
	sz := uint64((size + 7) &^ 7)
	if sz > CodeSize/2 {
		return 0, fmt.Errorf("node %s: blob of %d bytes exceeds half the code region", n.ID, size)
	}
	for {
		prev, err := n.Arena.FetchAdd(CtrlBase+CtrlOffCodeBrk, sz)
		if err != nil {
			return 0, err
		}
		if prev+sz <= CodeBase+CodeSize {
			return prev, nil
		}
		// Wrap: move the bump pointer back to the base. Competing
		// allocators race via CAS on the over-run value.
		n.Arena.CompareAndSwap(CtrlBase+CtrlOffCodeBrk, prev+sz, CodeBase)
	}
}

// AllocScratch reserves size bytes (64-aligned) in the XState scratchpad.
func (n *Node) AllocScratch(size int) (mem.Addr, error) {
	sz := (uint64(size) + 63) &^ 63
	prev, err := n.Arena.FetchAdd(CtrlBase+CtrlOffScratchBrk, sz)
	if err != nil {
		return 0, err
	}
	if prev+sz > ScratchBase+ScratchSize {
		return 0, fmt.Errorf("node %s: scratchpad exhausted (%d bytes requested)", n.ID, size)
	}
	return prev, nil
}

// BlobParams describes a deployable code blob.
type BlobParams struct {
	Kind     uint8
	Version  uint64
	MemBase  uint64 // wasm linear memory, 0 otherwise
	GlobBase uint64 // wasm globals, 0 otherwise
}

// EncodeBlobHeader builds the 48-byte blob header.
func EncodeBlobHeader(arch native.Arch, p BlobParams, codeLen int) []byte {
	hdr := make([]byte, BlobHdrSize)
	binary.LittleEndian.PutUint32(hdr[BlobOffMagic:], BlobMagic)
	hdr[BlobOffArch] = uint8(arch)
	hdr[BlobOffArch+1] = p.Kind
	binary.LittleEndian.PutUint32(hdr[BlobOffLen:], uint32(codeLen))
	binary.LittleEndian.PutUint64(hdr[BlobOffVersion:], p.Version)
	binary.LittleEndian.PutUint64(hdr[BlobOffRefcnt:], 1)
	binary.LittleEndian.PutUint64(hdr[BlobOffMemBase:], p.MemBase)
	binary.LittleEndian.PutUint64(hdr[BlobOffGlobBase:], p.GlobBase)
	return hdr
}

// WriteBlobLocal allocates code space and writes header + code with the
// local CPU, returning the blob address.
func (n *Node) WriteBlobLocal(bin *native.Binary, p BlobParams) (mem.Addr, error) {
	if !bin.Linked() {
		return 0, fmt.Errorf("node %s: deploying unlinked binary %q", n.ID, bin.Name)
	}
	addr, err := n.AllocCode(BlobHdrSize + len(bin.Code))
	if err != nil {
		return 0, err
	}
	if err := n.Arena.Write(addr, EncodeBlobHeader(bin.Arch, p, len(bin.Code))); err != nil {
		return 0, err
	}
	if err := n.Arena.Write(addr+BlobHdrSize, bin.Code); err != nil {
		return 0, err
	}
	return addr, nil
}

// BindHookLocal atomically publishes blobAddr as the hook's extension:
// writes the version, then flips the dispatch pointer with a CAS against
// the previous value (so concurrent flips do not interleave).
func (n *Node) BindHookLocal(hook string, blobAddr mem.Addr, version uint64) error {
	slot, err := n.HookSlot(hook)
	if err != nil {
		return err
	}
	base := HookAddr(slot)
	if err := n.Arena.WriteQword(base+HookOffVersion, version); err != nil {
		return err
	}
	for {
		cur, err := n.Arena.ReadQword(base + HookOffDispatch)
		if err != nil {
			return err
		}
		if _, swapped, err := n.Arena.CompareAndSwap(base+HookOffDispatch, cur, uint64(blobAddr)); err != nil {
			return err
		} else if swapped {
			if n.Cache != nil {
				// A local store is visible to the local CPU.
				n.Cache.Invalidate(base + HookOffDispatch)
			}
			return nil
		}
	}
}

// LocalResolver returns a relocation resolver over the node's own GOT plus
// explicit per-deployment symbols (map addresses, wasm memory bases).
func (n *Node) LocalResolver(extra map[string]uint64) func(native.RelocKind, string) (uint64, bool) {
	return func(_ native.RelocKind, sym string) (uint64, bool) {
		if a, ok := extra[sym]; ok {
			return a, true
		}
		a, ok := n.got[sym]
		return a, ok
	}
}

// RegisterMetaXState appends an XState header address to the Meta-XState
// array (local form; the control plane does the same with FETCH_ADD+WRITE).
func (n *Node) RegisterMetaXState(hdrAddr mem.Addr) (int, error) {
	idx, err := n.Arena.FetchAdd(MetaBase, 1)
	if err != nil {
		return 0, err
	}
	if idx >= MetaEntries {
		return 0, fmt.Errorf("node %s: Meta-XState full", n.ID)
	}
	if err := n.Arena.WriteQword(MetaBase+8+mem.Addr(idx)*8, uint64(hdrAddr)); err != nil {
		return 0, err
	}
	n.Arena.WriteQword(CtrlBase+CtrlOffMetaCount, idx+1)
	return int(idx), nil
}

// MetaXStateEntries reads the Meta-XState index.
func (n *Node) MetaXStateEntries() ([]mem.Addr, error) {
	count, err := n.Arena.ReadQword(MetaBase)
	if err != nil {
		return nil, err
	}
	if count > MetaEntries {
		count = MetaEntries
	}
	out := make([]mem.Addr, 0, count)
	for i := uint64(0); i < count; i++ {
		a, err := n.Arena.ReadQword(MetaBase + 8 + mem.Addr(i)*8)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}
