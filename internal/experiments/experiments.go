// Package experiments regenerates every table and figure of the RDX paper's
// evaluation on the simulated substrate. Each Fig* function runs one
// experiment and returns a paper-shaped table; cmd/rdxbench prints them and
// EXPERIMENTS.md records representative output against the paper's numbers.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"rdx/internal/agent"
	"rdx/internal/core"
	"rdx/internal/ebpf/progen"
	"rdx/internal/ext"
	"rdx/internal/mem"
	"rdx/internal/node"
	"rdx/internal/rdma"
	"rdx/internal/telemetry"
)

// Options scale experiments: Quick shrinks sizes and durations for CI/tests
// while preserving each experiment's structure.
type Options struct {
	Quick bool
}

// nodeRig is one served node plus a bound CodeFlow.
type nodeRig struct {
	node *node.Node
	cp   *core.ControlPlane
	cf   *core.CodeFlow
}

func newNodeRig(id string, cores int, cpki float64, lat *rdma.LatencyModel) (*nodeRig, error) {
	n, err := node.New(node.Config{
		ID:      id,
		Hooks:   []string{"ingress"},
		Cores:   cores,
		Latency: lat,
		CPKI:    cpki,
		Seed:    1,
	})
	if err != nil {
		return nil, err
	}
	fab := rdma.NewFabric()
	l, err := fab.Listen(id)
	if err != nil {
		n.Close()
		return nil, err
	}
	go n.Serve(l)
	conn, err := fab.Dial(id)
	if err != nil {
		n.Close()
		return nil, err
	}
	cp := core.NewControlPlane()
	cf, err := cp.CreateCodeFlow(conn)
	if err != nil {
		n.Close()
		return nil, err
	}
	return &nodeRig{node: n, cp: cp, cf: cf}, nil
}

func (r *nodeRig) close() {
	r.cf.Close()
	r.node.Close()
}

// Fig2a measures agent-based injection latency as a function of program
// size (paper Fig 2a: ms-level even for small extensions, growing with
// instruction count; 90+% of the time in verify+JIT).
func Fig2a(opts Options) (*telemetry.Table, error) {
	sizes := []int{1000, 20000, 40000, 60000, 80000}
	reps := 3
	if opts.Quick {
		sizes = []int{1000, 10000}
		reps = 1
	}
	tbl := telemetry.NewTable(
		"Fig 2a — agent-based eBPF injection overhead vs program size",
		"insns", "inject (mean)", "verify", "compile", "verify+jit %")

	rig, err := newNodeRig("fig2a", 4, 0, rdma.NoLatency())
	if err != nil {
		return nil, err
	}
	defer rig.close()
	ag := agent.New(rig.node)

	for _, size := range sizes {
		var total, verify, compile time.Duration
		for rep := 0; rep < reps; rep++ {
			p := progen.MustGenerate(progen.Options{Size: size, Seed: int64(rep + 1), WithHelpers: true})
			r, err := ag.Inject(context.Background(), "ingress", ext.FromEBPF(p))
			if err != nil {
				return nil, fmt.Errorf("fig2a size %d: %w", size, err)
			}
			total += r.Total
			verify += r.Verify
			compile += r.Compile
		}
		n := time.Duration(reps)
		pct := 100 * float64(verify+compile) / float64(total)
		tbl.AddRowf(size, total/n, verify/n, compile/n, pct)
	}
	return tbl, nil
}

// Fig4aRow is one measured size point of Fig 4a.
type Fig4aRow struct {
	Size      int
	AgentMean time.Duration
	RDXCold   time.Duration
	RDXWarm   time.Duration
	Speedup   float64
}

// Fig4aData runs the Fig 4a comparison and returns structured rows.
func Fig4aData(opts Options) ([]Fig4aRow, error) {
	sizes := progen.PaperSizes
	agentReps, rdxReps := 3, 9
	if opts.Quick {
		sizes = []int{1300, 11000}
		agentReps, rdxReps = 1, 3
	}
	var out []Fig4aRow
	for _, size := range sizes {
		p := progen.MustGenerate(progen.Options{Size: size, Seed: 7, WithHelpers: true})
		e := ext.FromEBPF(p)

		// Agent baseline: a fresh node; every injection re-verifies and
		// re-compiles locally.
		agRig, err := newNodeRig(fmt.Sprintf("fig4a-agent-%d", size), 4, 0, rdma.NoLatency())
		if err != nil {
			return nil, err
		}
		ag := agent.New(agRig.node)
		var agentTotal time.Duration
		for rep := 0; rep < agentReps; rep++ {
			r, err := ag.Inject(context.Background(), "ingress", e)
			if err != nil {
				agRig.close()
				return nil, fmt.Errorf("fig4a agent size %d: %w", size, err)
			}
			agentTotal += r.Total
		}
		agRig.close()

		// RDX: realistic fabric latency; first injection compiles (cold),
		// repeats hit the registry (the paper's repeated-deploy setup).
		rdxRig, err := newNodeRig(fmt.Sprintf("fig4a-rdx-%d", size), 4, 0, rdma.DefaultLatency())
		if err != nil {
			return nil, err
		}
		cold, err := rdxRig.cf.InjectExtension(e, "ingress")
		if err != nil {
			rdxRig.close()
			return nil, fmt.Errorf("fig4a rdx size %d: %w", size, err)
		}
		warmHist := telemetry.NewHistogram()
		for rep := 0; rep < rdxReps; rep++ {
			r, err := rdxRig.cf.InjectExtension(e, "ingress")
			if err != nil {
				rdxRig.close()
				return nil, err
			}
			warmHist.RecordDuration(r.Total)
		}
		rdxRig.close()

		row := Fig4aRow{
			Size:      size,
			AgentMean: agentTotal / time.Duration(agentReps),
			RDXCold:   cold.Total,
			// Median: one GC pause or scheduler hiccup should not define
			// the microsecond-scale warm path.
			RDXWarm: time.Duration(warmHist.Median()),
		}
		row.Speedup = float64(row.AgentMean) / float64(row.RDXWarm)
		out = append(out, row)
	}
	return out, nil
}

// Fig4a renders the Fig 4a table: agent vs RDX injection completion time
// across the paper's program sizes, with the speedup factor.
func Fig4a(opts Options) (*telemetry.Table, error) {
	rows, err := Fig4aData(opts)
	if err != nil {
		return nil, err
	}
	tbl := telemetry.NewTable(
		"Fig 4a — eBPF program load completion time: Agent vs RDX",
		"insns", "agent", "rdx (cold)", "rdx (warm)", "speedup")
	for _, r := range rows {
		tbl.AddRowf(r.Size, r.AgentMean, r.RDXCold, r.RDXWarm, fmt.Sprintf("%.0fx", r.Speedup))
	}
	return tbl, nil
}

// Fig4b breaks one injection (1.3K instructions) into pipeline stages for
// both architectures — the paper's Fig 4b bars.
func Fig4b(opts Options) (*telemetry.Table, error) {
	size := 1300
	p := progen.MustGenerate(progen.Options{Size: size, Seed: 7, WithHelpers: true})
	e := ext.FromEBPF(p)

	agRig, err := newNodeRig("fig4b-agent", 4, 0, rdma.NoLatency())
	if err != nil {
		return nil, err
	}
	agRep, err := agent.New(agRig.node).Inject(context.Background(), "ingress", e)
	agRig.close()
	if err != nil {
		return nil, err
	}

	rdxRig, err := newNodeRig("fig4b-rdx", 4, 0, rdma.DefaultLatency())
	if err != nil {
		return nil, err
	}
	defer rdxRig.close()
	// Cold: validates and compiles on the control plane, then deploys.
	coldRep, err := rdxRig.cf.InjectExtension(e, "ingress")
	if err != nil {
		return nil, err
	}

	// Registry hit: a second node bound to the SAME control plane. The
	// deploy reuses the compiled artifact — link + write + commit only.
	n2, err := node.New(node.Config{
		ID: "fig4b-rdx2", Hooks: []string{"ingress"}, Cores: 4,
		Latency: rdma.DefaultLatency(), Seed: 2,
	})
	if err != nil {
		return nil, err
	}
	defer n2.Close()
	fab2 := rdma.NewFabric()
	l2, err := fab2.Listen("fig4b-rdx2")
	if err != nil {
		return nil, err
	}
	go n2.Serve(l2)
	conn2, err := fab2.Dial("fig4b-rdx2")
	if err != nil {
		return nil, err
	}
	cf2, err := rdxRig.cp.CreateCodeFlow(conn2)
	if err != nil {
		return nil, err
	}
	defer cf2.Close()
	hitRep, err := cf2.InjectExtension(e, "ingress")
	if err != nil {
		return nil, err
	}

	// Redeploy: the code is already resident on node 1 — commit only.
	redeployRep, err := rdxRig.cf.InjectExtension(e, "ingress")
	if err != nil {
		return nil, err
	}

	tbl := telemetry.NewTable(
		fmt.Sprintf("Fig 4b — injection time breakdown (%d insns)", size),
		"system", "verify", "jit", "link", "alloc/state", "load/write", "commit", "total")
	tbl.AddRowf("Agent", agRep.Verify, agRep.Compile, agRep.Link, time.Duration(0), agRep.Load, time.Duration(0), agRep.Total)
	tbl.AddRowf("RDX (cold)", coldRep.Validate, coldRep.Compile, coldRep.Link, coldRep.Alloc, coldRep.Write, coldRep.Commit, coldRep.Total)
	tbl.AddRowf("RDX (registry hit)", hitRep.Validate, hitRep.Compile, hitRep.Link, hitRep.Alloc, hitRep.Write, hitRep.Commit, hitRep.Total)
	tbl.AddRowf("RDX (redeploy)", redeployRep.Validate, redeployRep.Compile, redeployRep.Link, redeployRep.Alloc, redeployRep.Write, redeployRep.Commit, redeployRep.Total)
	return tbl, nil
}

// Fig5Point is one (CPKI, system) incoherence measurement.
type Fig5Point struct {
	CPKI    float64
	Vanilla time.Duration // median, plain RDMA write
	RDX     time.Duration // median, write + rdx_cc_event
}

// Fig5Data measures RNIC→CPU incoherence windows across CPKI levels.
func Fig5Data(opts Options) ([]Fig5Point, error) {
	cpkis := []float64{10, 20, 30, 40}
	rounds := 15
	if opts.Quick {
		cpkis = []float64{10, 40}
		rounds = 7
	}
	var out []Fig5Point
	for _, cpki := range cpkis {
		rig, err := newNodeRig(fmt.Sprintf("fig5-%v", cpki), 2, cpki, rdma.DefaultLatency())
		if err != nil {
			return nil, err
		}
		vanilla, err := measureIncoherence(rig, rounds, false)
		if err != nil {
			rig.close()
			return nil, err
		}
		rdx, err := measureIncoherence(rig, rounds, true)
		rig.close()
		if err != nil {
			return nil, err
		}
		out = append(out, Fig5Point{CPKI: cpki, Vanilla: vanilla, RDX: rdx})
	}
	return out, nil
}

// Fig5 renders the incoherence table.
func Fig5(opts Options) (*telemetry.Table, error) {
	points, err := Fig5Data(opts)
	if err != nil {
		return nil, err
	}
	tbl := telemetry.NewTable(
		"Fig 5 — median RNIC→CPU incoherence time after remote injection",
		"CPKI", "vanilla RDMA", "RDX (cc_event)", "improvement")
	for _, p := range points {
		tbl.AddRowf(p.CPKI, p.Vanilla, p.RDX,
			fmt.Sprintf("%.0fx", float64(p.Vanilla)/float64(p.RDX)))
	}
	return tbl, nil
}

// measureIncoherence times how long a busy-polling data-plane CPU takes to
// observe a remotely written qword: the CPU reads through the (stale-able)
// cache model; the control plane writes over RDMA and, in RDX mode, fires
// the cc_event doorbell that invalidates the line.
func measureIncoherence(rig *nodeRig, rounds int, ccEvent bool) (time.Duration, error) {
	hookAddr, err := rig.cf.HookAddr("ingress")
	if err != nil {
		return 0, err
	}
	probeAddr := mem.Addr(hookAddr + node.HookOffStaged)

	var want atomic.Uint64
	type sample struct{ at time.Time }
	seen := make(chan sample, 1)
	stop := make(chan struct{})
	defer close(stop)

	// Data-plane poller: busy-reads the probe word through the CPU cache.
	// It yields each iteration so the RNIC goroutines stay schedulable on
	// small GOMAXPROCS hosts — a real poller would spin on its own core.
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			w := want.Load()
			if w == 0 {
				runtime.Gosched()
				continue
			}
			v, err := rig.node.Cache.ReadQword(probeAddr)
			if err != nil {
				return
			}
			if v == w {
				want.Store(0)
				seen <- sample{time.Now()}
			}
			runtime.Gosched()
		}
	}()

	hist := telemetry.NewHistogram()
	for round := 1; round <= rounds; round++ {
		v := uint64(0xF1600_0000) + uint64(round)
		// Ensure the poller has the line cached (reading the old value).
		want.Store(v ^ 0xFFFF) // unmatched: poller caches the line
		time.Sleep(200 * time.Microsecond)
		want.Store(v)

		start := time.Now()
		if err := rig.cf.Remote.WriteMem(uint64(probeAddr), 8, v); err != nil {
			return 0, err
		}
		if ccEvent {
			if err := rig.cf.CCEvent(uint64(probeAddr)); err != nil {
				return 0, err
			}
		}
		select {
		case s := <-seen:
			hist.RecordDuration(s.at.Sub(start))
		case <-time.After(5 * time.Second):
			return 0, fmt.Errorf("incoherence probe timed out (round %d)", round)
		}
	}
	return time.Duration(hist.Median()), nil
}
