package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rdx/internal/artifact"
	"rdx/internal/cluster"
	"rdx/internal/controlha"
	"rdx/internal/core"
	"rdx/internal/ext"
	"rdx/internal/kvstore"
	"rdx/internal/mem"
	"rdx/internal/node"
	"rdx/internal/rdma"
	"rdx/internal/shard"
	"rdx/internal/telemetry"
	"rdx/internal/xabi"
)

// Serve is the zero-copy wire-path fleet workload behind `rdxbench serve`:
// a thousand-node fleet stays under sustained traffic — KV load on app
// nodes, request-context hook executions fleet-wide — while the sharded
// control plane continuously rolls out alternating extension generations to
// every node. Every control-plane byte rides the pooled zero-copy framing
// of DESIGN.md §12, and the experiment is self-checking:
//
//   - every rollout publish must succeed, and after the final round every
//     node's hook must serve the final generation's verdict end to end;
//   - the frame arena must run hot: pool hit rate over the sustained phase
//     must exceed the threshold (>99% full-size) — a cold pool means the
//     hot path is allocating per frame;
//   - request traffic must stay clean (no KV errors, no hook-exec errors)
//     while generations flip underneath it;
//   - a quiesced calibration pass measures request-path allocations per
//     verb on a live QP and fails the run if the Write path allocates.
//
// Reported: publish latency tail (p50/p99/p999), updates/sec, frames per
// poll pass, pool hit rate, and allocs/op.
func Serve(opts Options) (*telemetry.Table, error) {
	nodesN, shardsN, pubWorkers := 1024, 4, 16
	kvNodesN, kvRate, kvConns := 3, 400.0, 3
	probeWorkers := 4
	sustain := 3 * time.Second
	poolHitMin := 0.99
	if opts.Quick {
		nodesN, shardsN, pubWorkers = 128, 2, 8
		kvNodesN, kvRate, kvConns = 2, 200.0, 2
		probeWorkers = 2
		sustain = 1200 * time.Millisecond
		poolHitMin = 0.95
	}
	const filler = 900
	const hookName = "h00"
	const maxRounds = 64
	// Long TTL: nothing here deposes a leader; a short TTL would fence
	// shards spuriously under the sustained load.
	ttl := time.Minute

	fab := rdma.NewFabric()
	reg := telemetry.NewRegistry()
	rdma.BindWireInstruments(reg)
	arts := artifact.NewCache(artifact.Config{Registry: reg})
	gens := []*ext.Extension{
		cluster.GenerationExt(ext.KindEBPF, 1, filler),
		cluster.GenerationExt(ext.KindEBPF, 2, filler),
	}

	// Shard plan first: the router hashes (tenant, hook) over a
	// shard.Map ring, and building it ourselves with the same shard IDs
	// and vnode count lets each shard open CodeFlows only to the nodes it
	// will actually own — nodesN QPs fleet-wide instead of
	// nodesN × shardsN. The plan is verified against Router.ShardFor
	// below; a mismatch is a bug, not a fallback.
	plan := shard.NewMap(shard.DefaultVNodes)
	for s := 0; s < shardsN; s++ {
		plan.Add(s)
	}
	tenantName := func(i int) string { return fmt.Sprintf("serve-tenant-%04d", i) }
	shardNodes := make([][]string, shardsN) // node names owned by each shard
	owner := make([]int, nodesN)            // tenant index -> shard
	nodeNames := make([]string, nodesN)
	for i := 0; i < nodesN; i++ {
		nodeNames[i] = fmt.Sprintf("serve-node-%04d", i)
		s, ok := plan.Lookup(tenantName(i), hookName)
		if !ok {
			return nil, fmt.Errorf("serve: empty shard ring")
		}
		owner[i] = s
		shardNodes[s] = append(shardNodes[s], nodeNames[i])
	}

	// The fleet: one hook per node, one tenant per node — the disjoint
	// (tenant, hook) → (node, hook) ownership the shard package requires.
	fleet := make([]*node.Node, nodesN)
	nodeByName := make(map[string]*node.Node, nodesN)
	for i := 0; i < nodesN; i++ {
		n, err := node.New(node.Config{
			ID: nodeNames[i], Hooks: []string{hookName}, Cores: 2,
			Latency: rdma.NoLatency(), Seed: int64(i),
		})
		if err != nil {
			return nil, err
		}
		defer n.Close()
		l, err := fab.Listen(nodeNames[i])
		if err != nil {
			return nil, err
		}
		go n.Serve(l)
		fleet[i] = n
		nodeByName[nodeNames[i]] = n
	}

	// Per-shard control-plane stacks: own standby host, lease, journal —
	// and CodeFlows only to the shard's own nodes. Standby links pay a
	// pure-sleep TCP round trip per verb (see the shard experiment); the
	// fleet links are NoLatency so the measured cost is the wire path
	// itself, not a modeled network.
	haLat := &rdma.LatencyModel{Base: 100 * time.Microsecond, BytesPerSec: 3.125e9, SpinTail: -1}
	router := shard.NewRouter(shard.Config{Workers: pubWorkers, QueueCap: 2 * nodesN, Registry: reg})
	defer router.Close()
	for s := 0; s < shardsN; s++ {
		host, err := controlha.NewHostWith(4<<20, haLat)
		if err != nil {
			return nil, err
		}
		hostName := fmt.Sprintf("serve-stby-%d", s)
		hl, err := fab.Listen(hostName)
		if err != nil {
			return nil, err
		}
		go host.Serve(hl)
		cp := core.NewControlPlaneLabeled(arts, reg, fmt.Sprintf("rdma.qp.serve%d", s))
		flows := make(map[string]*core.CodeFlow, len(shardNodes[s]))
		for _, nn := range shardNodes[s] {
			conn, err := fab.Dial(nn)
			if err != nil {
				return nil, err
			}
			cf, err := cp.CreateCodeFlow(conn)
			if err != nil {
				return nil, err
			}
			flows[nn] = cf
		}
		wconn, err := fab.Dial(hostName)
		if err != nil {
			return nil, err
		}
		if _, err := controlha.AttachLeader(cp, rdma.NewQP(wconn), uint64(1+s), ttl); err != nil {
			return nil, fmt.Errorf("serve: shard %d attach leader: %w", s, err)
		}
		router.AddShard(s, shard.NewCPExecutor(cp, flows))
	}
	for i := 0; i < nodesN; i++ {
		got, ok := router.ShardFor(tenantName(i), hookName)
		if !ok || got != owner[i] {
			return nil, fmt.Errorf("serve: shard plan mismatch for tenant %d: planned %d, router %d", i, owner[i], got)
		}
	}

	// One rollout round: every tenant publishes gen g through the router
	// from pubWorkers concurrent publishers; each publish is individually
	// timed into lat.
	lat := telemetry.NewHistogram()
	runRound := func(g *ext.Extension, record bool) error {
		var next atomic.Int64
		errs := make([]error, nodesN)
		var wg sync.WaitGroup
		for w := 0; w < pubWorkers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= nodesN {
						return
					}
					t0 := time.Now()
					errs[i] = router.Publish(context.Background(), &shard.Job{
						Tenant: tenantName(i), Hook: hookName, Ext: g,
						Nodes: []string{nodeNames[i]}, Bytes: 256,
					})
					if record && errs[i] == nil {
						lat.RecordDuration(time.Since(t0))
					}
				}
			}()
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("serve: publish to %s: %w", nodeNames[i], err)
			}
		}
		return nil
	}

	// Warmup: stage both generations everywhere. Artifacts compile once,
	// every node holds both blobs resident, and the frame pools are primed —
	// the sustained phase below measures the steady state.
	for _, g := range gens {
		if err := runRound(g, false); err != nil {
			return nil, fmt.Errorf("serve: warmup: %w", err)
		}
	}

	// Sustained traffic while rollouts run: KV servers with per-query hook
	// routing on the first kvNodesN nodes, plus mesh-style request workers
	// executing the hook fleet-wide with reused context buffers.
	kvSrvs := make([]*kvstore.Server, kvNodesN)
	kvAddrs := make([]net.Listener, kvNodesN)
	for k := 0; k < kvNodesN; k++ {
		srv := kvstore.NewServer(fleet[k], hookName)
		srv.BaseCost = 2 * time.Microsecond // the workload here is the wire, not the store
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		defer l.Close()
		go srv.Serve(l)
		kvSrvs[k], kvAddrs[k] = srv, l
	}

	stopProbes := make(chan struct{})
	var probeExecs, probeErrs atomic.Uint64
	var probeWG sync.WaitGroup
	for w := 0; w < probeWorkers; w++ {
		probeWG.Add(1)
		go func(seed int64) {
			defer probeWG.Done()
			rng := rand.New(rand.NewSource(seed))
			ctxBuf := make([]byte, xabi.CtxSize) // reused: the request path must not force per-call allocs
			tick := time.NewTicker(200 * time.Microsecond) // paced: an open spin would starve the rollout of CPU
			defer tick.Stop()
			for {
				select {
				case <-stopProbes:
					return
				case <-tick.C:
				}
				n := fleet[rng.Intn(nodesN)]
				res, err := n.ExecHook(hookName, ctxBuf, nil)
				if err != nil || res.Verdict < 101 || res.Verdict > 102 {
					probeErrs.Add(1)
				}
				probeExecs.Add(1)
			}
		}(int64(1000 + w))
	}

	type kvOut struct {
		res *kvstore.LoadResult
		err error
	}
	kvDone := make(chan kvOut, kvNodesN)
	kvDur := sustain + 500*time.Millisecond
	for k := 0; k < kvNodesN; k++ {
		addr := kvAddrs[k].Addr().String()
		go func() {
			res, err := kvstore.LoadGen(func() (net.Conn, error) {
				return net.Dial("tcp", addr)
			}, kvRate, kvDur, kvConns)
			kvDone <- kvOut{res, err}
		}()
	}

	// The sustained phase: continuous alternating-generation rollouts,
	// every publish timed, pool counters snapshotted around the whole
	// phase. At least two rounds so every node's hook pointer flips under
	// live traffic.
	poolBefore := rdma.SnapshotPoolStats()
	rounds := 0
	start := time.Now()
	for (time.Since(start) < sustain || rounds < 2) && rounds < maxRounds {
		if err := runRound(gens[rounds%2], true); err != nil {
			return nil, err
		}
		rounds++
	}
	elapsed := time.Since(start)
	pool := rdma.SnapshotPoolStats().Delta(poolBefore)

	close(stopProbes)
	probeWG.Wait()
	var kvSent, kvErrs, kvDropped uint64
	for k := 0; k < kvNodesN; k++ {
		out := <-kvDone
		if out.err != nil {
			return nil, fmt.Errorf("serve: kv loadgen: %w", out.err)
		}
		kvSent += out.res.Sent
		kvErrs += out.res.Errors
		kvDropped += out.res.Dropped
	}

	// Self-checks on the sustained phase.
	finalGen := uint64(100 + 1 + (rounds-1)%2)
	for i, n := range fleet {
		res, err := n.ExecHook(hookName, make([]byte, xabi.CtxSize), nil)
		if err != nil {
			return nil, fmt.Errorf("serve: node %s hook exec: %w", nodeNames[i], err)
		}
		if res.Verdict != finalGen {
			return nil, fmt.Errorf("serve: node %s verdict %d, want %d (rollout did not converge)",
				nodeNames[i], res.Verdict, finalGen)
		}
	}
	// Under the race detector sync.Pool drops a fraction of puts by
	// design, so the hit-rate bar only holds in normal builds.
	if hr := pool.HitRate(); hr < poolHitMin && !rdma.RaceEnabled {
		return nil, fmt.Errorf("serve: frame pool hit rate %.4f under sustained load (want > %.2f; %d hits / %d misses)",
			hr, poolHitMin, pool.Hits, pool.Misses)
	}
	if kvErrs != 0 || kvDropped != 0 {
		return nil, fmt.Errorf("serve: kv traffic not clean: %d errors, %d drops of %d sent", kvErrs, kvDropped, kvSent)
	}
	if pe := probeErrs.Load(); pe != 0 {
		return nil, fmt.Errorf("serve: %d of %d hook probes failed or saw a bad verdict", pe, probeExecs.Load())
	}
	updates := rounds * nodesN
	upsPerSec := float64(updates) / elapsed.Seconds()

	// Quiesced allocs/op calibration: with the fleet idle, drive one QP
	// against a plain endpoint and count mallocs per Write. The pooled
	// frame arena, per-conn scratch, and writev framing make the Write
	// verb allocation-free; the bound here is deliberately loose (< 3) to
	// absorb stray background allocations from the just-idled fleet.
	allocsPerOp, err := measureWriteAllocs(fab)
	if err != nil {
		return nil, err
	}
	if allocsPerOp >= 3 && !rdma.RaceEnabled { // race shadow state allocates
		return nil, fmt.Errorf("serve: request path allocates: %.2f allocs/op on Write (want ~0)", allocsPerOp)
	}

	framesPerPoll := reg.Histogram("rdma.wire.frames_per_poll").Mean()
	tbl := telemetry.NewTable(
		fmt.Sprintf("Fleet serve — %d nodes, %d shards, sustained traffic during continuous rollouts", nodesN, shardsN),
		"metric", "result", "detail")
	tbl.AddRowf("rollouts", fmt.Sprintf("%d updates", updates),
		fmt.Sprintf("%d rounds over %d nodes in %.2fs", rounds, nodesN, elapsed.Seconds()))
	tbl.AddRowf("publish rate", fmt.Sprintf("%.0f updates/s", upsPerSec),
		fmt.Sprintf("%d publish workers", pubWorkers))
	tbl.AddRowf("publish latency", fmt.Sprintf("p50 %s / p99 %s / p999 %s",
		time.Duration(lat.Percentile(50)), time.Duration(lat.Percentile(99)), time.Duration(lat.Percentile(99.9))),
		fmt.Sprintf("%d timed publishes", lat.Count()))
	tbl.AddRowf("frame pool", fmt.Sprintf("%.2f%% hit rate", 100*pool.HitRate()),
		fmt.Sprintf("%d hits / %d misses during sustained phase", pool.Hits, pool.Misses))
	tbl.AddRowf("frames/poll", fmt.Sprintf("%.2f mean", framesPerPoll),
		"completions drained per poll pass")
	tbl.AddRowf("request path", fmt.Sprintf("%.2f allocs/op", allocsPerOp),
		"quiesced Write-verb calibration")
	tbl.AddRowf("app traffic", fmt.Sprintf("%d kv requests, %d hook execs", kvSent, probeExecs.Load()),
		"0 errors, 0 drops while generations flipped")
	return tbl, nil
}

// measureWriteAllocs drives count Write verbs on a fresh QP against a plain
// endpoint and returns mallocs/op from runtime.MemStats. It is a live-system
// proxy for BenchmarkVerbRoundTrip's allocs/op, usable inside an experiment.
func measureWriteAllocs(fab *rdma.Fabric) (float64, error) {
	const count = 2000
	arena := mem.NewArena(1 << 16)
	ep := rdma.NewEndpoint(arena, rdma.NoLatency())
	defer ep.Close()
	mr, err := ep.RegisterMR("cal", 0, 1<<16, rdma.PermAll)
	if err != nil {
		return 0, err
	}
	l, err := fab.Listen("serve-cal")
	if err != nil {
		return 0, err
	}
	go ep.Serve(l)
	qp, err := fab.DialQP("serve-cal")
	if err != nil {
		return 0, err
	}
	defer qp.Close()
	buf := make([]byte, 128)
	for i := 0; i < 64; i++ { // warm the QP's pooled state before counting
		if err := qp.Write(mr.RKey, 0, buf); err != nil {
			return 0, err
		}
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < count; i++ {
		if err := qp.Write(mr.RKey, 0, buf); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / count, nil
}
