package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rdx/internal/artifact"
	"rdx/internal/cluster"
	"rdx/internal/controlha"
	"rdx/internal/core"
	"rdx/internal/ext"
	"rdx/internal/node"
	"rdx/internal/rdma"
	"rdx/internal/shard"
	"rdx/internal/telemetry"
	"rdx/internal/xabi"
)

// Shard is the sharded control-plane experiment: a multi-tenant fleet —
// every (node, hook) slot owned by a distinct tenant — publishes through
// the shard.Router, first over one control-plane shard, then over eight,
// each shard with its own lease, journal, and standby from
// internal/controlha. The experiment is self-checking:
//
//   - aggregate publish throughput at 8 shards must beat 1 shard by the
//     scaling threshold (the per-shard journal ring and lease-check QP are
//     the serialization sharding splits);
//   - mid-run, one shard's lease is stolen (controlha.TakeOver): exactly
//     that shard's tenants fail, every failure typed ErrShardUnavailable,
//     that shard's publish counter stalls while every other shard's keeps
//     advancing — the per-shard fencing claim;
//   - Router.Reinstate installs the successor and the fenced key range
//     converges (each failed tenant's hook serves the new generation);
//   - the artifact cache is process-wide: across warmup, scaling, kill,
//     and re-drive, artifact.compile.invocations stays at one compile per
//     digest fleet-wide;
//   - a throttled canary tenant is refused with typed ErrQuotaExceeded and
//     the admission reject counter advances.
func Shard(opts Options) (*telemetry.Table, error) {
	nodesN, hooksN, rounds, pubWorkers, minScale := 16, node.HookSlots, 2, 64, 3.0
	if opts.Quick {
		nodesN, hooksN, rounds, pubWorkers, minScale = 4, 32, 2, 32, 1.5
	}
	const shardsN = 8
	const filler = 900
	// Long TTL: the kill below deposes by Steal (epoch bump), never by
	// expiry, and a short TTL would depose slow phases spuriously.
	ttl := time.Minute
	tenantsN := nodesN * hooksN

	fab := rdma.NewFabric()

	// The fleet: every node hosts HookSlots hooks, one tenant per
	// (node, hook) slot — the disjoint-hook-namespace deployment model the
	// shard package requires (each shard exclusively owns the dispatch
	// slots its keys reach).
	hookNames := make([]string, hooksN)
	for h := range hookNames {
		hookNames[h] = fmt.Sprintf("h%02d", h)
	}
	var fleet []*node.Node
	nodeNames := make([]string, nodesN)
	for i := 0; i < nodesN; i++ {
		nodeNames[i] = fmt.Sprintf("shard-node-%d", i)
		n, err := node.New(node.Config{
			ID: nodeNames[i], Hooks: hookNames, Cores: 2,
			Latency: rdma.NoLatency(), Seed: int64(i),
		})
		if err != nil {
			return nil, err
		}
		defer n.Close()
		l, err := fab.Listen(nodeNames[i])
		if err != nil {
			return nil, err
		}
		go n.Serve(l)
		fleet = append(fleet, n)
	}

	type tenantRef struct{ name, hook, nodeName string }
	tenants := make([]tenantRef, 0, tenantsN)
	for i := 0; i < nodesN; i++ {
		for h := 0; h < hooksN; h++ {
			tenants = append(tenants, tenantRef{
				name:     fmt.Sprintf("tenant-%04d", i*hooksN+h),
				hook:     hookNames[h],
				nodeName: nodeNames[i],
			})
		}
	}

	// One artifact cache and registry for the whole experiment: every
	// shard's control plane — in both phases, and the post-kill successor —
	// shares it, so a digest compiles once fleet-wide, ever.
	reg := telemetry.NewRegistry()
	arts := artifact.NewCache(artifact.Config{Registry: reg})
	gen1 := cluster.GenerationExt(ext.KindEBPF, 1, filler)
	gen2 := cluster.GenerationExt(ext.KindEBPF, 2, filler)

	// buildShard stands up one control-plane shard: its own standby host
	// (witness + journal ring), its own leader lease and journal, and its
	// own CodeFlows to every node. Nothing below the artifact cache is
	// shared between two shards.
	type shardRig struct {
		host      *controlha.Host
		cp        *core.ControlPlane
		flowsName map[string]*core.CodeFlow // by fleet node name (executor)
		flowsKey  map[string]*core.CodeFlow // by NodeKey (journal replay)
	}
	// Standby links pay a TCP-datacenter round trip per verb (rdxd serves
	// standbys over TCP): lease checks and journal replication are the
	// per-shard serialized path, and pretending those verbs are free would
	// erase exactly the cost sharding splits. Pure sleep, no spin tail, so
	// the modeled waits park instead of burning host cores.
	haLat := &rdma.LatencyModel{Base: 100 * time.Microsecond, BytesPerSec: 3.125e9, SpinTail: -1}
	buildShard := func(id int, hostName string, leaderID uint64) (*shardRig, error) {
		host, err := controlha.NewHostWith(4<<20, haLat)
		if err != nil {
			return nil, err
		}
		hl, err := fab.Listen(hostName)
		if err != nil {
			return nil, err
		}
		go host.Serve(hl)
		cp := core.NewControlPlaneLabeled(arts, reg, fmt.Sprintf("rdma.qp.shard%d", id))
		rig := &shardRig{
			host:      host,
			cp:        cp,
			flowsName: map[string]*core.CodeFlow{},
			flowsKey:  map[string]*core.CodeFlow{},
		}
		for _, nn := range nodeNames {
			conn, err := fab.Dial(nn)
			if err != nil {
				return nil, err
			}
			cf, err := cp.CreateCodeFlow(conn)
			if err != nil {
				return nil, err
			}
			rig.flowsName[nn] = cf
			rig.flowsKey[cf.NodeKey()] = cf
		}
		wconn, err := fab.Dial(hostName)
		if err != nil {
			return nil, err
		}
		if _, err := controlha.AttachLeader(cp, rdma.NewQP(wconn), leaderID, ttl); err != nil {
			return nil, fmt.Errorf("shard %d: attach leader: %w", id, err)
		}
		return rig, nil
	}

	// runRound publishes one job per tenant through the router from
	// pubWorkers concurrent publishers, returning per-tenant outcomes.
	runRound := func(r *shard.Router, pick func(i int) *ext.Extension) ([]error, time.Duration) {
		errs := make([]error, len(tenants))
		var next atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < pubWorkers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(tenants) {
						return
					}
					t := tenants[i]
					errs[i] = r.Publish(context.Background(), &shard.Job{
						Tenant: t.name, Hook: t.hook, Ext: pick(i),
						Nodes: []string{t.nodeName}, Bytes: 256,
					})
				}
			}()
		}
		wg.Wait()
		return errs, time.Since(start)
	}
	allGen := func(e *ext.Extension) func(int) *ext.Extension {
		return func(int) *ext.Extension { return e }
	}
	mustClean := func(phase string, errs []error) error {
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("shard: %s: tenant %s: %w", phase, tenants[i].name, err)
			}
		}
		return nil
	}
	// measure runs the alternating-generation rounds every phase is scored
	// on: warmup stages both digests everywhere (resident thereafter), the
	// timed rounds flip every tenant's hook pointer each round.
	measure := func(r *shard.Router) (float64, error) {
		for _, g := range []*ext.Extension{gen1, gen2} {
			errs, _ := runRound(r, allGen(g))
			if err := mustClean("warmup", errs); err != nil {
				return 0, err
			}
		}
		var total time.Duration
		gens := []*ext.Extension{gen1, gen2}
		for round := 0; round < rounds; round++ {
			errs, took := runRound(r, allGen(gens[round%2]))
			if err := mustClean("measured round", errs); err != nil {
				return 0, err
			}
			total += took
		}
		return float64(rounds*tenantsN) / total.Seconds(), nil
	}

	tbl := telemetry.NewTable(
		fmt.Sprintf("Sharded control plane — %d tenants over %d nodes, 1 vs %d shards", tenantsN, nodesN, shardsN),
		"phase", "result", "detail")

	// Phase A: the whole key space behind a single shard. Every publish
	// serializes on one journal ring and one lease-check QP.
	routerA := shard.NewRouter(shard.Config{Workers: pubWorkers, QueueCap: 2 * tenantsN, Registry: telemetry.NewRegistry()})
	rigA, err := buildShard(0, "shard-stby-a0", 1)
	if err != nil {
		return nil, err
	}
	routerA.AddShard(0, shard.NewCPExecutor(rigA.cp, rigA.flowsName))
	tputA, err := measure(routerA)
	if err != nil {
		return nil, fmt.Errorf("phase A: %w", err)
	}
	routerA.Close()
	tbl.AddRowf("1 shard", fmt.Sprintf("%.0f pub/s", tputA),
		fmt.Sprintf("%d tenants, %d rounds", tenantsN, rounds))

	// Phase B: eight shards, each with its own standby, lease, and journal.
	regB := telemetry.NewRegistry()
	routerB := shard.NewRouter(shard.Config{Workers: pubWorkers, QueueCap: 2 * tenantsN, Registry: regB})
	rigsB := make([]*shardRig, shardsN)
	for s := 0; s < shardsN; s++ {
		rigsB[s], err = buildShard(s, fmt.Sprintf("shard-stby-b%d", s), uint64(10+s))
		if err != nil {
			return nil, err
		}
		routerB.AddShard(s, shard.NewCPExecutor(rigsB[s].cp, rigsB[s].flowsName))
	}
	defer routerB.Close()
	tputB, err := measure(routerB)
	if err != nil {
		return nil, fmt.Errorf("phase B: %w", err)
	}
	scale := tputB / tputA
	tbl.AddRowf(fmt.Sprintf("%d shards", shardsN), fmt.Sprintf("%.0f pub/s", tputB),
		fmt.Sprintf("%.2fx vs 1 shard (threshold %.1fx)", scale, minScale))
	if scale < minScale {
		return nil, fmt.Errorf("shard: %d-shard throughput scaled only %.2fx over 1 shard (want >= %.1fx)",
			shardsN, scale, minScale)
	}

	// Kill: steal the lease of the shard owning tenants[0]. TakeOver fences
	// the old leader (its next lease check fails closed), replays the
	// shard's journal into a successor control plane that shares the
	// process-wide artifact cache.
	victim, _ := routerB.ShardFor(tenants[0].name, tenants[0].hook)
	owner := make([]int, len(tenants))
	victimTenants := 0
	for i, t := range tenants {
		owner[i], _ = routerB.ShardFor(t.name, t.hook)
		if owner[i] == victim {
			victimTenants++
		}
	}
	compilesBefore := reg.Counter("artifact.compile.invocations").Value()
	succCP := core.NewControlPlaneLabeled(arts, reg, fmt.Sprintf("rdma.qp.shard%d succ", victim))
	succName := map[string]*core.CodeFlow{}
	succKey := map[string]*core.CodeFlow{}
	for _, nn := range nodeNames {
		conn, err := fab.Dial(nn)
		if err != nil {
			return nil, err
		}
		cf, err := succCP.CreateCodeFlow(conn)
		if err != nil {
			return nil, err
		}
		succName[nn] = cf
		succKey[cf.NodeKey()] = cf
	}
	sconn, err := fab.Dial(fmt.Sprintf("shard-stby-b%d", victim))
	if err != nil {
		return nil, err
	}
	if _, _, err := controlha.TakeOver(succCP, rigsB[victim].host, rdma.NewQP(sconn), 100, ttl, succKey); err != nil {
		return nil, fmt.Errorf("shard: takeover of shard %d: %w", victim, err)
	}

	// With the old leader deposed, publish one round: exactly the victim's
	// tenants must fail, every failure typed, and the victim's publish
	// counter must stall while every other shard's advances by its tenant
	// count. (The fleet is on gen2 after phase B's even rounds; this round
	// flips survivors to gen1.)
	before := statusByID(routerB)
	errsKill, _ := runRound(routerB, allGen(gen1))
	after := statusByID(routerB)
	for i, err := range errsKill {
		if owner[i] == victim {
			if !errors.Is(err, shard.ErrShardUnavailable) {
				return nil, fmt.Errorf("shard: victim tenant %s got %v, want ErrShardUnavailable", tenants[i].name, err)
			}
		} else if err != nil {
			return nil, fmt.Errorf("shard: fence leaked: tenant %s on shard %d failed: %w", tenants[i].name, owner[i], err)
		}
	}
	if after[victim].Published != before[victim].Published {
		return nil, fmt.Errorf("shard: fenced shard %d still published (%d -> %d)",
			victim, before[victim].Published, after[victim].Published)
	}
	for id, st := range after {
		if id != victim && st.Published <= before[id].Published {
			return nil, fmt.Errorf("shard: healthy shard %d stalled during sibling fence (%d -> %d)",
				id, before[id].Published, st.Published)
		}
	}
	tbl.AddRowf(fmt.Sprintf("leader of shard %d killed", victim),
		fmt.Sprintf("%d tenants fenced", victimTenants),
		fmt.Sprintf("all typed ErrShardUnavailable; %d shards kept publishing", shardsN-1))

	// Failover: the successor takes the fenced key range. The re-driven
	// round converges the victim's tenants to gen1 like everyone else —
	// with zero new compiles, because the successor shares the artifact
	// cache (new flows re-stage, never re-compile).
	if err := routerB.Reinstate(victim, shard.NewCPExecutor(succCP, succName)); err != nil {
		return nil, err
	}
	errsHeal, _ := runRound(routerB, func(i int) *ext.Extension {
		if owner[i] == victim {
			return gen1 // fenced range: still on gen2, catch up
		}
		return gen2 // survivors: back to gen2
	})
	if err := mustClean("post-reinstate round", errsHeal); err != nil {
		return nil, err
	}
	compilesAfter := reg.Counter("artifact.compile.invocations").Value()
	if compilesAfter != compilesBefore {
		return nil, fmt.Errorf("shard: failover recompiled: %d -> %d compile invocations (cache not shared)",
			compilesBefore, compilesAfter)
	}
	// Convergence, end to end: the victim's tenants serve gen1, the rest
	// gen2 — a torn or stale hook cannot produce the right verdict.
	for i, t := range tenants {
		want := uint64(102)
		if owner[i] == victim {
			want = 101
		}
		res, err := fleet[i/hooksN].ExecHook(t.hook, make([]byte, xabi.CtxSize), nil)
		if err != nil {
			return nil, fmt.Errorf("shard: tenant %s hook exec: %w", t.name, err)
		}
		if res.Verdict != want {
			return nil, fmt.Errorf("shard: tenant %s verdict %d, want %d (did not converge)", t.name, res.Verdict, want)
		}
	}
	tbl.AddRowf("successor reinstated", "key range converged",
		fmt.Sprintf("compile invocations flat at %d across failover", compilesAfter))

	// Admission: throttle a canary tenant to one publish and watch the
	// second get the typed refusal plus a reject-counter tick.
	canary := tenants[1]
	routerB.SetQuota(canary.name, shard.TenantQuota{PublishPerSec: 0.001, PublishBurst: 1})
	pub := func() error {
		return routerB.Publish(context.Background(), &shard.Job{
			Tenant: canary.name, Hook: canary.hook, Ext: gen2,
			Nodes: []string{canary.nodeName}, Bytes: 256,
		})
	}
	if err := pub(); err != nil {
		return nil, fmt.Errorf("shard: canary publish within burst: %w", err)
	}
	if err := pub(); !errors.Is(err, shard.ErrQuotaExceeded) {
		return nil, fmt.Errorf("shard: throttled canary got %v, want ErrQuotaExceeded", err)
	}
	rejects := regB.Counter("shard.admission.rejected.publishes").Value()
	if rejects == 0 {
		return nil, fmt.Errorf("shard: admission reject counter did not advance")
	}
	tbl.AddRowf("admission control", "canary throttled",
		fmt.Sprintf("typed ErrQuotaExceeded, %d rejects counted", rejects))

	return tbl, nil
}

// statusByID indexes a router's per-shard snapshot by shard ID.
func statusByID(r *shard.Router) map[int]shard.ShardStatus {
	out := map[int]shard.ShardStatus{}
	for _, st := range r.Status() {
		out[st.ID] = st
	}
	return out
}
