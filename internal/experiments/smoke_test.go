package experiments

import "testing"

func TestFig2aQuick(t *testing.T) {
	tbl, err := Fig2a(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	t.Logf("\n%s", tbl)
}

func TestFig4aQuick(t *testing.T) {
	rows, err := Fig4aData(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Speedup < 2 {
			t.Errorf("size %d: speedup only %.1fx; RDX should beat agent by a wide margin", r.Size, r.Speedup)
		}
	}
	tbl, _ := Fig4a(Options{Quick: true})
	t.Logf("\n%s", tbl)
}

func TestFig4bQuick(t *testing.T) {
	tbl, err := Fig4b(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
}

func TestFig5Quick(t *testing.T) {
	points, err := Fig5Data(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.RDX >= p.Vanilla {
			t.Errorf("CPKI %v: RDX %v not faster than vanilla %v", p.CPKI, p.RDX, p.Vanilla)
		}
	}
	tbl, _ := Fig5(Options{Quick: true})
	t.Logf("\n%s", tbl)
}

func TestFig2bQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	tbl, err := Fig2b(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
}

func TestFig2cQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	tbl, err := Fig2c(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
}

func TestRedisQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	tbl, err := Redis(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
}

func TestCacheQuick(t *testing.T) {
	tbls, err := Cache(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbls) != 2 {
		t.Fatalf("tables = %d, want warm + delta", len(tbls))
	}
	for _, tbl := range tbls {
		t.Logf("\n%s", tbl)
	}
}

func TestShardQuick(t *testing.T) {
	tbl, err := Shard(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
}

func TestServeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet experiment")
	}
	tbl, err := Serve(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
}

func TestMeshQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	tbl, err := Mesh(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
}
