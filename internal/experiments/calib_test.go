package experiments

import (
	"testing"
	"time"

	"rdx/internal/ebpf/jit"
	"rdx/internal/ebpf/progen"
	"rdx/internal/ebpf/verifier"
	"rdx/internal/native"
)

func TestCalibrate(t *testing.T) {
	for _, size := range []int{1300, 11000, 26000, 49000, 76000, 95000} {
		p := progen.MustGenerate(progen.Options{Size: size, Seed: 1, WithHelpers: true})
		t0 := time.Now()
		if _, err := verifier.Verify(p, verifier.Config{}); err != nil {
			t.Fatal(err)
		}
		tv := time.Since(t0)
		t1 := time.Now()
		if _, err := jit.Compile(p, native.ArchX64); err != nil {
			t.Fatal(err)
		}
		tc := time.Since(t1)
		t.Logf("size=%d verify=%v compile=%v", size, tv, tc)
	}
}
