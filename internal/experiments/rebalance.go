package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rdx/internal/artifact"
	"rdx/internal/cluster"
	"rdx/internal/controlha"
	"rdx/internal/core"
	"rdx/internal/ext"
	"rdx/internal/node"
	"rdx/internal/rdma"
	"rdx/internal/shard"
	"rdx/internal/telemetry"
	"rdx/internal/xabi"
)

// rebalanceProbe records which shard executed each (key, ring-epoch)
// pair. The router stamps every job with the membership epoch its owner
// was resolved under, so double ownership — two live shards serving one
// key — shows up as two shard IDs behind one (key, epoch).
type rebalanceProbe struct {
	mu   sync.Mutex
	seen map[string]map[uint64]map[int]bool
}

func (p *rebalanceProbe) note(key string, epoch uint64, id int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	byEpoch := p.seen[key]
	if byEpoch == nil {
		byEpoch = map[uint64]map[int]bool{}
		p.seen[key] = byEpoch
	}
	owners := byEpoch[epoch]
	if owners == nil {
		owners = map[int]bool{}
		byEpoch[epoch] = owners
	}
	owners[id] = true
}

func (p *rebalanceProbe) doubleOwned() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for key, byEpoch := range p.seen {
		for epoch, owners := range byEpoch {
			if len(owners) > 1 {
				return fmt.Errorf("rebalance: key %q double-owned at ring epoch %d: shards %v",
					key, epoch, owners)
			}
		}
	}
	return nil
}

// probedHA wraps a Migrator-capable executor to feed the ownership probe.
type probedHA struct {
	*shard.CPExecutor
	id    int
	probe *rebalanceProbe
}

func (p *probedHA) Execute(ctx context.Context, j *shard.Job) error {
	p.probe.note(shard.Key(j.Tenant, j.Hook), j.RoutedEpoch(), p.id)
	return p.CPExecutor.Execute(ctx, j)
}

// Rebalance is the elastic-rebalancing experiment: a multi-tenant fleet
// publishes through four control-plane shards — each with its own lease,
// journal, and standby — while the fleet scales 4 -> 3 -> 4 live. It is
// self-checking:
//
//   - scale-in drains the departing shard behind a typed barrier, journals
//     the handoff marker, and replays the departing keys' state into the
//     receivers; scale-out runs the dual. Each flip is one ring-epoch bump;
//   - a set of cold keys (published during warmup, never again) migrates
//     byte-exact: after both rebalances, each cold key's current owner
//     serves exactly the digest/version/blob the original owner recorded —
//     including keys that hopped twice, which exercises the receivers'
//     re-journaled absorb records;
//   - artifact.compile.invocations stays flat across both migrations (the
//     shared cache means handoff never recompiles);
//   - sustained publish traffic runs throughout: every in-flight job
//     completes or fails typed ErrRebalancing, and no (key, ring-epoch)
//     pair ever executes on two shards;
//   - a shard.Autoscaler under synthetic queue pressure scales out on the
//     high watermark and back in on sustained idleness, with hysteresis.
func Rebalance(opts Options) (*telemetry.Table, error) {
	nodesN, hooksN, loadWorkers := 4, 16, 16
	if opts.Quick {
		nodesN, hooksN, loadWorkers = 2, 8, 8
	}
	const shardsN = 4
	const filler = 900
	ttl := time.Minute
	tenantsN := nodesN * hooksN

	fab := rdma.NewFabric()
	hookNames := make([]string, hooksN)
	for h := range hookNames {
		hookNames[h] = fmt.Sprintf("h%02d", h)
	}
	var fleet []*node.Node
	nodeNames := make([]string, nodesN)
	for i := 0; i < nodesN; i++ {
		nodeNames[i] = fmt.Sprintf("reb-node-%d", i)
		n, err := node.New(node.Config{
			ID: nodeNames[i], Hooks: hookNames, Cores: 2,
			Latency: rdma.NoLatency(), Seed: int64(i),
		})
		if err != nil {
			return nil, err
		}
		defer n.Close()
		l, err := fab.Listen(nodeNames[i])
		if err != nil {
			return nil, err
		}
		go n.Serve(l)
		fleet = append(fleet, n)
	}

	type tenantRef struct{ name, hook, nodeName string }
	tenants := make([]tenantRef, 0, tenantsN)
	for i := 0; i < nodesN; i++ {
		for h := 0; h < hooksN; h++ {
			tenants = append(tenants, tenantRef{
				name:     fmt.Sprintf("tenant-%04d", i*hooksN+h),
				hook:     hookNames[h],
				nodeName: nodeNames[i],
			})
		}
	}
	// Cold keys: published during warmup, never touched by the load. Their
	// control-plane state must survive every migration hop bit-for-bit.
	coldN := tenantsN / 4
	cold, hot := tenants[:coldN], tenants[coldN:]

	reg := telemetry.NewRegistry()
	arts := artifact.NewCache(artifact.Config{Registry: reg})
	gen1 := cluster.GenerationExt(ext.KindEBPF, 1, filler)
	gen2 := cluster.GenerationExt(ext.KindEBPF, 2, filler)

	type shardRig struct {
		host      *controlha.Host
		cp        *core.ControlPlane
		flowsName map[string]*core.CodeFlow
	}
	haLat := &rdma.LatencyModel{Base: 100 * time.Microsecond, BytesPerSec: 3.125e9, SpinTail: -1}
	nodeKeyOf := map[string]string{}
	buildRig := func(id int, hostName string, leaderID uint64) (*shardRig, error) {
		host, err := controlha.NewHostWith(4<<20, haLat)
		if err != nil {
			return nil, err
		}
		hl, err := fab.Listen(hostName)
		if err != nil {
			return nil, err
		}
		go host.Serve(hl)
		cp := core.NewControlPlaneLabeled(arts, reg, fmt.Sprintf("rdma.qp.reb%d", id))
		rig := &shardRig{host: host, cp: cp, flowsName: map[string]*core.CodeFlow{}}
		for _, nn := range nodeNames {
			conn, err := fab.Dial(nn)
			if err != nil {
				return nil, err
			}
			cf, err := cp.CreateCodeFlow(conn)
			if err != nil {
				return nil, err
			}
			rig.flowsName[nn] = cf
			nodeKeyOf[nn] = cf.NodeKey()
		}
		wconn, err := fab.Dial(hostName)
		if err != nil {
			return nil, err
		}
		if _, err := controlha.AttachLeader(cp, rdma.NewQP(wconn), leaderID, ttl); err != nil {
			return nil, fmt.Errorf("shard %d: attach leader: %w", id, err)
		}
		return rig, nil
	}

	probe := &rebalanceProbe{seen: map[string]map[uint64]map[int]bool{}}
	router := shard.NewRouter(shard.Config{Workers: 8, QueueCap: 2 * tenantsN, Registry: reg})
	defer router.Close()
	rigs := map[int]*shardRig{}
	addShard := func(id int) error {
		rig, err := buildRig(id, fmt.Sprintf("reb-stby-%d", id), uint64(1+id))
		if err != nil {
			return err
		}
		rigs[id] = rig
		ex := shard.NewCPExecutorHA(rig.cp, rig.flowsName, rig.host.JournalSource())
		if id < shardsN {
			return router.AddShard(id, &probedHA{CPExecutor: ex, id: id, probe: probe})
		}
		_, err = router.RebalanceAdd(context.Background(), id, &probedHA{CPExecutor: ex, id: id, probe: probe})
		return err
	}
	for s := 0; s < shardsN; s++ {
		if err := addShard(s); err != nil {
			return nil, err
		}
	}

	tbl := telemetry.NewTable(
		fmt.Sprintf("Elastic rebalancing — %d tenants over %d nodes, scale %d -> %d -> %d under load",
			tenantsN, nodesN, shardsN, shardsN-1, shardsN),
		"phase", "result", "detail")

	// Warmup: stage both generations for every tenant (resident
	// thereafter), leaving every hook on gen2.
	publish := func(t tenantRef, g *ext.Extension) error {
		return router.Publish(context.Background(), &shard.Job{
			Tenant: t.name, Hook: t.hook, Ext: g,
			Nodes: []string{t.nodeName}, Bytes: 256,
		})
	}
	for _, g := range []*ext.Extension{gen1, gen2} {
		for _, t := range tenants {
			if err := publish(t, g); err != nil {
				return nil, fmt.Errorf("rebalance: warmup %s: %w", t.name, err)
			}
		}
	}
	// Expected state per cold key, captured from its original owner. Cold
	// keys never republish, so this must hold verbatim after every hop.
	type coldState struct {
		owner int
		dv    core.DeployedVersion
	}
	expect := map[string]coldState{}
	for _, t := range cold {
		id, _ := router.ShardFor(t.name, t.hook)
		dv, ok := rigs[id].cp.DeployedVersion(nodeKeyOf[t.nodeName], t.hook)
		if !ok {
			return nil, fmt.Errorf("rebalance: cold key %s has no deployed version on shard %d", t.name, id)
		}
		expect[t.name] = coldState{owner: id, dv: dv}
	}
	compilesBefore := reg.Counter("artifact.compile.invocations").Value()
	tbl.AddRowf(fmt.Sprintf("%d shards warm", shardsN),
		fmt.Sprintf("%d tenants staged", tenantsN),
		fmt.Sprintf("%d cold keys pinned, %d compile invocations", coldN, compilesBefore))

	// Sustained load on the hot tenants: alternating generations, retrying
	// typed ErrRebalancing (the drain window's documented contract). Any
	// other failure is fatal to the experiment.
	var (
		stopLoad   = make(chan struct{})
		loadWG     sync.WaitGroup
		published  atomic.Uint64
		rebalanced atomic.Uint64
		loadErr    atomic.Pointer[error]
	)
	gens := []*ext.Extension{gen1, gen2}
	for w := 0; w < loadWorkers; w++ {
		loadWG.Add(1)
		go func(w int) {
			defer loadWG.Done()
			for iter := 0; ; iter++ {
				select {
				case <-stopLoad:
					return
				default:
				}
				t := hot[(iter*loadWorkers+w)%len(hot)]
				err := publish(t, gens[iter%2])
				switch {
				case err == nil:
					published.Add(1)
				case errors.Is(err, shard.ErrRebalancing):
					rebalanced.Add(1)
					time.Sleep(200 * time.Microsecond)
				default:
					e := fmt.Errorf("tenant %s: %w", t.name, err)
					loadErr.CompareAndSwap(nil, &e)
					return
				}
			}
		}(w)
	}

	// Scale-in: retire the shard owning the first cold key, live.
	victim := expect[cold[0].name].owner
	epoch0 := router.RingEpoch()
	rep1, err := router.Rebalance(context.Background(), victim)
	if err != nil {
		return nil, fmt.Errorf("rebalance: scale-in of shard %d: %w", victim, err)
	}
	if !rep1.Migrated {
		return nil, fmt.Errorf("rebalance: scale-in moved %d keys without state", rep1.MovedKeys)
	}
	if rep1.RingEpoch != epoch0+1 {
		return nil, fmt.Errorf("rebalance: scale-in bumped ring epoch %d -> %d, want one step", epoch0, rep1.RingEpoch)
	}
	if _, ok := statusByID(router)[victim]; ok {
		return nil, fmt.Errorf("rebalance: shard %d still serving after scale-in", victim)
	}
	tbl.AddRowf(fmt.Sprintf("scale-in: shard %d retired", victim),
		fmt.Sprintf("%d keys migrated", rep1.MovedKeys),
		fmt.Sprintf("drain %v, total %v, one epoch bump, %d receivers",
			rep1.Drain.Round(time.Microsecond), rep1.Total.Round(time.Microsecond), len(rep1.Receivers)))

	// Scale-out: join a fresh shard (new ID, new lease, new standby). Keys
	// the enlarged ring hands it — some absorbed by receivers moments ago —
	// migrate again, this time out of the receivers' re-journaled records.
	epoch1 := router.RingEpoch()
	if err := addShard(shardsN); err != nil {
		return nil, fmt.Errorf("rebalance: scale-out: %w", err)
	}
	if router.RingEpoch() != epoch1+1 {
		return nil, fmt.Errorf("rebalance: scale-out bumped ring epoch %d -> %d, want one step", epoch1, router.RingEpoch())
	}
	tbl.AddRowf(fmt.Sprintf("scale-out: shard %d joined", shardsN),
		fmt.Sprintf("ring epoch %d -> %d", epoch0, router.RingEpoch()),
		"sources drained, snapshotted, reopened")

	close(stopLoad)
	loadWG.Wait()
	if p := loadErr.Load(); p != nil {
		return nil, fmt.Errorf("rebalance: load failed untyped: %w", *p)
	}
	if err := probe.doubleOwned(); err != nil {
		return nil, err
	}
	tbl.AddRowf("sustained traffic", fmt.Sprintf("%d publishes", published.Load()),
		fmt.Sprintf("%d typed ErrRebalancing retries, no (key, epoch) double-owned", rebalanced.Load()))

	// Byte-exact migration: every cold key's current owner serves exactly
	// the pinned digest/version/blob — across one hop or two.
	hopped := 0
	for _, t := range cold {
		id, _ := router.ShardFor(t.name, t.hook)
		want := expect[t.name]
		if id != want.owner {
			hopped++
		}
		dv, ok := rigs[id].cp.DeployedVersion(nodeKeyOf[t.nodeName], t.hook)
		if !ok {
			return nil, fmt.Errorf("rebalance: cold key %s lost on shard %d after migration", t.name, id)
		}
		if dv != want.dv {
			return nil, fmt.Errorf("rebalance: cold key %s diverged on shard %d: got %+v, want %+v",
				t.name, id, dv, want.dv)
		}
	}
	compilesAfter := reg.Counter("artifact.compile.invocations").Value()
	if compilesAfter != compilesBefore {
		return nil, fmt.Errorf("rebalance: migration recompiled: %d -> %d compile invocations",
			compilesBefore, compilesAfter)
	}
	tbl.AddRowf("byte-exact migration", fmt.Sprintf("%d/%d cold keys verified", coldN, coldN),
		fmt.Sprintf("%d keys changed owner; compile invocations flat at %d", hopped, compilesAfter))

	// Convergence, end to end: one clean gen2 round over every tenant, and
	// every hook serves the new generation.
	for i, t := range tenants {
		if err := publish(t, gen2); err != nil {
			return nil, fmt.Errorf("rebalance: final round %s: %w", t.name, err)
		}
		res, err := fleet[i/hooksN].ExecHook(t.hook, make([]byte, xabi.CtxSize), nil)
		if err != nil {
			return nil, fmt.Errorf("rebalance: tenant %s hook exec: %w", t.name, err)
		}
		if res.Verdict != 102 {
			return nil, fmt.Errorf("rebalance: tenant %s verdict %d, want 102", t.name, res.Verdict)
		}
	}
	tbl.AddRowf("convergence", fmt.Sprintf("%d/%d hooks on gen2", tenantsN, tenantsN),
		fmt.Sprintf("ring epoch %d after %d membership changes", router.RingEpoch(), 2))

	// Autoscaler: synthetic queue pressure on a dedicated router trips the
	// high watermark (hysteresis: consecutive ticks) and adds a shard;
	// sustained idleness afterwards retires it.
	asReg := telemetry.NewRegistry()
	asRouter := shard.NewRouter(shard.Config{Workers: 1, Registry: asReg})
	defer asRouter.Close()
	slowExec := shard.ExecFunc(func(ctx context.Context, j *shard.Job) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if err := asRouter.AddShard(0, slowExec); err != nil {
		return nil, err
	}
	as := shard.NewAutoscaler(asRouter, shard.AutoscalerConfig{
		Min: 1, Max: 3, HighDepth: 4, HighTicks: 2, LowTicks: 10,
		Interval: 5 * time.Millisecond, Cooldown: 25 * time.Millisecond,
		Provision: func(id int) (shard.Executor, error) { return slowExec, nil },
	})
	as.Start()
	defer as.Stop()
	stopFlood := make(chan struct{})
	var floodWG sync.WaitGroup
	for w := 0; w < 8; w++ {
		floodWG.Add(1)
		go func(w int) {
			defer floodWG.Done()
			for iter := 0; ; iter++ {
				select {
				case <-stopFlood:
					return
				default:
				}
				err := asRouter.Publish(context.Background(), &shard.Job{
					Tenant: fmt.Sprintf("flood-%d", w), Hook: fmt.Sprintf("fh%d", iter%4),
					Ext: gen1,
				})
				if err != nil && !errors.Is(err, shard.ErrRebalancing) && !errors.Is(err, shard.ErrShardUnavailable) {
					return
				}
			}
		}(w)
	}
	waitFor := func(what string, cond func() bool, timeout time.Duration) error {
		deadline := time.Now().Add(timeout)
		for !cond() {
			if time.Now().After(deadline) {
				return fmt.Errorf("rebalance: autoscaler never %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
		return nil
	}
	if err := waitFor("scaled out", func() bool {
		return asReg.Counter("shard.autoscale.scale_outs").Value() >= 1
	}, 15*time.Second); err != nil {
		close(stopFlood)
		floodWG.Wait()
		return nil, err
	}
	close(stopFlood)
	floodWG.Wait()
	if err := waitFor("scaled back in", func() bool {
		return asReg.Counter("shard.autoscale.scale_ins").Value() >= 1
	}, 15*time.Second); err != nil {
		return nil, err
	}
	tbl.AddRowf("autoscaler", fmt.Sprintf("%d out, %d in",
		asReg.Counter("shard.autoscale.scale_outs").Value(),
		asReg.Counter("shard.autoscale.scale_ins").Value()),
		"high-watermark scale-out under pressure, hysteresis scale-in at idle")

	return tbl, nil
}
