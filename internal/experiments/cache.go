package experiments

import (
	"fmt"
	"time"

	"rdx/internal/ebpf"
	"rdx/internal/ext"
	"rdx/internal/pipeline"
	"rdx/internal/rdma"
	"rdx/internal/telemetry"
)

// patchProg builds version v of a synthetic "service filter": a long run of
// filler instructions shared by every version plus a version-specific
// verdict. Successive versions JIT to images differing only near the tail,
// so they model the realistic update pattern delta injection targets — a
// small patch to a large deployed extension.
func patchProg(filler int, v int32) *ext.Extension {
	insns := make([]ebpf.Instruction, 0, filler+2)
	for i := 0; i < filler; i++ {
		insns = append(insns, ebpf.Mov64Imm(ebpf.R1, int32(i)))
	}
	insns = append(insns, ebpf.Mov64Imm(ebpf.R0, v), ebpf.Exit())
	return ext.FromEBPF(ebpf.NewProgram(fmt.Sprintf("patch-v%d", v), ebpf.ProgTypeSocketFilter, insns))
}

// Cache exercises the content-addressed artifact store end to end and
// returns two tables: the warm-cache path (repeat injections of one digest
// skip validate/JIT entirely) and delta-vs-full injection (page-granular
// updates write a fraction of the wire bytes). It also enforces the
// invariants, failing loudly if the cache recompiled or the delta path
// failed to save bytes — so a bench smoke doubles as a regression check.
func Cache(opts Options) ([]*telemetry.Table, error) {
	nodes, warmJobs, updates, filler := 8, 5, 6, 2048
	if opts.Quick {
		nodes, warmJobs, updates, filler = 4, 2, 4, 512
	}

	// ---- Phase 1: cold vs warm injection of one digest across the fleet.
	rig, err := newFleetRig("cache", nodes, rdma.NoLatency())
	if err != nil {
		return nil, err
	}
	defer rig.close()
	sched := rig.cp.Scheduler()
	targets := make([]pipeline.Target, len(rig.cfs))
	for i, cf := range rig.cfs {
		targets[i] = cf
	}
	reg := rig.cp.Registry

	e := patchProg(filler, 1)
	inject := func(x *ext.Extension) (time.Duration, error) {
		t0 := time.Now()
		res, err := sched.Inject(pipeline.Request{Ext: x, Hook: "ingress", Targets: targets})
		if err != nil {
			return 0, err
		}
		if ferr := res.FirstErr(); ferr != nil {
			return 0, ferr
		}
		return time.Since(t0), nil
	}

	cold, err := inject(e)
	if err != nil {
		return nil, fmt.Errorf("cache cold inject: %w", err)
	}
	compilesAfterCold := reg.Counter("artifact.compile.invocations").Value()

	var warm time.Duration
	for i := 0; i < warmJobs; i++ {
		d, err := inject(e)
		if err != nil {
			return nil, fmt.Errorf("cache warm inject %d: %w", i, err)
		}
		warm += d
	}
	warm /= time.Duration(warmJobs)
	hits := reg.Counter("artifact.cache.hit").Value()
	compiles := reg.Counter("artifact.compile.invocations").Value()
	validates := reg.Counter("artifact.validate.invocations").Value()
	if hits == 0 {
		return nil, fmt.Errorf("cache: %d warm jobs produced zero cache hits", warmJobs)
	}
	if compiles != compilesAfterCold {
		return nil, fmt.Errorf("cache: warm jobs recompiled (%d -> %d invocations)", compilesAfterCold, compiles)
	}

	warmTbl := telemetry.NewTable(
		fmt.Sprintf("cache — %d-node fleet, one digest: cold vs warm injection", nodes),
		"phase", "jobs", "avg latency", "compile runs", "validate runs", "cache hits")
	warmTbl.AddRowf("cold", 1, cold, compilesAfterCold, validates, 0)
	warmTbl.AddRowf(fmt.Sprintf("warm x%d", warmJobs), warmJobs, warm, compiles-compilesAfterCold, 0, hits)

	// ---- Phase 2: rolling updates, delta injection vs full rewrites.
	// Two identical fleets; one has delta staging disabled. Both receive
	// the same seeding pair plus `updates` small patches; the wire-byte
	// delta over the update phase is the figure of merit.
	type modeResult struct {
		bytesOut  uint64
		saved     uint64
		fallbacks uint64
		deltas    uint64
		avg       time.Duration
	}
	run := func(prefix string, disable bool) (modeResult, error) {
		var mr modeResult
		frig, err := newFleetRig(prefix, nodes, rdma.NoLatency())
		if err != nil {
			return mr, err
		}
		defer frig.close()
		frig.cp.DisableDelta = disable
		fsched := frig.cp.Scheduler()
		ftargets := make([]pipeline.Target, len(frig.cfs))
		for i, cf := range frig.cfs {
			ftargets[i] = cf
		}
		do := func(v int32) error {
			t0 := time.Now()
			res, err := fsched.Inject(pipeline.Request{Ext: patchProg(filler, v), Hook: "ingress", Targets: ftargets})
			if err != nil {
				return err
			}
			if ferr := res.FirstErr(); ferr != nil {
				return ferr
			}
			mr.avg += time.Since(t0)
			return nil
		}
		// Seed both slot buffers so every update has a standby to diff.
		if err := do(1); err != nil {
			return mr, err
		}
		if err := do(2); err != nil {
			return mr, err
		}
		mr.avg = 0
		freg := frig.cp.Registry
		base := freg.Counter("rdma.qp.bytes_out").Value()
		for v := int32(3); v < int32(3+updates); v++ {
			if err := do(v); err != nil {
				return mr, fmt.Errorf("update v%d: %w", v, err)
			}
		}
		mr.avg /= time.Duration(updates)
		mr.bytesOut = freg.Counter("rdma.qp.bytes_out").Value() - base
		mr.saved = freg.Counter("artifact.delta.bytes_saved").Value()
		mr.fallbacks = freg.Counter("artifact.delta.fallback").Value()
		mr.deltas = freg.Counter("artifact.delta.count").Value()
		return mr, nil
	}

	delta, err := run("cache-dlt", false)
	if err != nil {
		return nil, fmt.Errorf("cache delta fleet: %w", err)
	}
	full, err := run("cache-ful", true)
	if err != nil {
		return nil, fmt.Errorf("cache full-rewrite fleet: %w", err)
	}
	if delta.saved == 0 {
		return nil, fmt.Errorf("cache: delta fleet saved zero bytes over %d updates", updates)
	}
	if delta.bytesOut >= full.bytesOut {
		return nil, fmt.Errorf("cache: delta updates wrote %d wire bytes, full rewrites %d — delta saved nothing",
			delta.bytesOut, full.bytesOut)
	}

	deltaTbl := telemetry.NewTable(
		fmt.Sprintf("delta — %d rolling updates across %d nodes: page delta vs full rewrite", updates, nodes),
		"mode", "wire bytes out", "delta writes", "fallbacks", "bytes saved", "avg update")
	deltaTbl.AddRowf("delta", delta.bytesOut, delta.deltas, delta.fallbacks, delta.saved, delta.avg)
	deltaTbl.AddRowf("full", full.bytesOut, full.deltas, full.fallbacks, full.saved, full.avg)
	return []*telemetry.Table{warmTbl, deltaTbl}, nil
}
