package experiments

import (
	"fmt"
	"time"

	"rdx/internal/core"
	"rdx/internal/ebpf/progen"
	"rdx/internal/ext"
	"rdx/internal/node"
	"rdx/internal/pipeline"
	"rdx/internal/rdma"
	"rdx/internal/telemetry"
)

// fleetRig is one control plane bound to N served nodes on a fabric.
type fleetRig struct {
	cp  *core.ControlPlane
	cfs []*core.CodeFlow

	closers []func()
}

func newFleetRig(prefix string, nodes int, lat *rdma.LatencyModel) (*fleetRig, error) {
	r := &fleetRig{cp: core.NewControlPlane()}
	fab := rdma.NewFabric()
	for i := 0; i < nodes; i++ {
		id := fmt.Sprintf("%s-%d", prefix, i)
		n, err := node.New(node.Config{
			ID: id, Hooks: []string{"ingress"}, Cores: 2, Latency: lat, Seed: int64(i),
		})
		if err != nil {
			r.close()
			return nil, err
		}
		l, err := fab.Listen(id)
		if err != nil {
			n.Close()
			r.close()
			return nil, err
		}
		go n.Serve(l)
		conn, err := fab.Dial(id)
		if err != nil {
			r.close()
			return nil, err
		}
		cf, err := r.cp.CreateCodeFlow(conn)
		if err != nil {
			r.close()
			return nil, err
		}
		r.cfs = append(r.cfs, cf)
		r.closers = append(r.closers, func() { cf.Close(); n.Close() })
	}
	return r, nil
}

func (r *fleetRig) close() {
	for _, c := range r.closers {
		c()
	}
}

// Pipeline compares fleet-wide extension rollout through the seed path — a
// sequential per-node InjectExtension loop — against the injection
// scheduler's batched parallel fan-out (OpBatch write chains with coalesced
// doorbells, concurrent nodes). The registry is warmed first, as in the
// paper's compile-once/deploy-anywhere workflow, so the table isolates the
// per-node injection cost the pipeline actually changes. The fabric models
// a latency-bound link (500 µs per verb — a congested or cross-DC fabric)
// where every sequential round trip is wall-clock waiting: the regime the
// scheduler's in-flight batching and parallel fan-out are built for.
func Pipeline(opts Options) (*telemetry.Table, error) {
	tbl, _, _, err := pipelineRun(opts)
	return tbl, err
}

// PipelineWithStats runs Pipeline and also returns the scheduler's
// per-stage span table (queue → validate → jit → link → write → publish)
// plus the control plane's registry snapshot — per-opcode wire verb counts
// and completion-latency percentiles for the whole rollout.
func PipelineWithStats(opts Options) ([]*telemetry.Table, error) {
	tbl, stats, reg, err := pipelineRun(opts)
	if err != nil {
		return nil, err
	}
	return []*telemetry.Table{tbl, stats, reg}, nil
}

func pipelineRun(opts Options) (*telemetry.Table, *telemetry.Table, *telemetry.Table, error) {
	nodes, reps := 8, 3
	sizes := []int{1000, 20000}
	if opts.Quick {
		nodes, reps = 4, 1
		sizes = []int{1000}
	}

	lat := &rdma.LatencyModel{Base: 500 * time.Microsecond, BytesPerSec: 3.125e9}
	rig, err := newFleetRig("pipe", nodes, lat)
	if err != nil {
		return nil, nil, nil, err
	}
	defer rig.close()
	sched := rig.cp.Scheduler()
	targets := make([]pipeline.Target, len(rig.cfs))
	for i, cf := range rig.cfs {
		targets[i] = cf
	}

	tbl := telemetry.NewTable(
		fmt.Sprintf("pipeline — %d-node fleet rollout: sequential loop vs batched scheduler", nodes),
		"insns", "sequential", "pipelined", "speedup")

	seed := int64(1)
	for _, size := range sizes {
		var seq, pipe time.Duration
		for rep := 0; rep < reps; rep++ {
			// Fresh programs per path so neither run hits the resident-blob
			// fast path; the compile registry amortizes within each rollout
			// for both, exactly as in production.
			eSeq := ext.FromEBPF(progen.MustGenerate(progen.Options{Size: size, Seed: seed, WithHelpers: true}))
			seed++
			if err := rig.cp.Precompile(eSeq, rig.cfs[0].Arch); err != nil {
				return nil, nil, nil, err
			}
			t0 := time.Now()
			for _, cf := range rig.cfs {
				if _, err := cf.InjectExtension(eSeq, "ingress"); err != nil {
					return nil, nil, nil, fmt.Errorf("pipeline sequential size %d: %w", size, err)
				}
			}
			seq += time.Since(t0)

			ePipe := ext.FromEBPF(progen.MustGenerate(progen.Options{Size: size, Seed: seed, WithHelpers: true}))
			seed++
			if err := rig.cp.Precompile(ePipe, rig.cfs[0].Arch); err != nil {
				return nil, nil, nil, err
			}
			t1 := time.Now()
			res, err := sched.Inject(pipeline.Request{Ext: ePipe, Hook: "ingress", Targets: targets})
			if err != nil {
				return nil, nil, nil, fmt.Errorf("pipeline batched size %d: %w", size, err)
			}
			if ferr := res.FirstErr(); ferr != nil {
				return nil, nil, nil, fmt.Errorf("pipeline batched size %d: %w", size, ferr)
			}
			pipe += time.Since(t1)
		}
		n := time.Duration(reps)
		tbl.AddRowf(size, seq/n, pipe/n, fmt.Sprintf("%.1fx", float64(seq)/float64(pipe)))
	}
	return tbl, sched.Stats().Table(),
		rig.cp.Registry.Snapshot().Table("rollout registry: wire verbs + pipeline spans"), nil
}
