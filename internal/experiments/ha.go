package experiments

import (
	"errors"
	"fmt"
	"time"

	"rdx/internal/artifact"
	"rdx/internal/cluster"
	"rdx/internal/controlha"
	"rdx/internal/core"
	"rdx/internal/ext"
	"rdx/internal/node"
	"rdx/internal/pipeline"
	"rdx/internal/rdma"
	"rdx/internal/telemetry"
	"rdx/internal/xabi"
)

// HA is the control-plane failover experiment: a fleet rides one leader,
// the leader is deposed at the worst possible moment — the publish barrier
// of an atomic Group broadcast, after every blob is staged but before any
// hook pointer flips — and a standby takes over by stealing the CAS lease,
// replaying the replicated deployment journal, and re-driving the
// interrupted job. The experiment is self-checking:
//
//   - the deposed leader must not flip a single hook pointer: every publish
//     it attempts after deposal fails with core.ErrFenced (typed), and the
//     fleet still serves the old generation afterward;
//   - journal replay must hand the successor the interrupted intents (one
//     staged-but-unpublished deployment per node);
//   - after the successor re-drives the broadcast, every node converges to
//     exactly the new generation with zero torn blobs (each hook executes
//     end to end and returns the new verdict);
//   - the shared artifact cache makes the re-drive free of recompiles:
//     artifact.compile.invocations is flat across the failover.
//
// Takeover latency lands in the controlha.takeover.latency histogram.
func HA(opts Options) (*telemetry.Table, error) {
	nodes, filler := 4, 6000
	if opts.Quick {
		nodes, filler = 3, 3000
	}
	const hook = "ingress"
	ttl := time.Second

	fab := rdma.NewFabric()

	// The standby host: passive memory serving the witness and ring MRs.
	host, err := controlha.NewHost(0)
	if err != nil {
		return nil, err
	}
	defer host.Close()
	hl, err := fab.Listen("ha-standby")
	if err != nil {
		return nil, err
	}
	go host.Serve(hl)

	// Shared registry + artifact cache: what failover hands the successor.
	reg := telemetry.NewRegistry()
	arts := artifact.NewCache(artifact.Config{Registry: reg})

	// The fleet, bound to the first leader.
	cp1 := core.NewControlPlaneWith(arts, reg)
	var fleet []*node.Node
	var g1 core.Group
	for i := 0; i < nodes; i++ {
		id := fmt.Sprintf("ha-node-%d", i)
		n, err := node.New(node.Config{
			ID: id, Hooks: []string{hook}, Cores: 2, Latency: rdma.NoLatency(), Seed: int64(i),
		})
		if err != nil {
			return nil, err
		}
		defer n.Close()
		l, err := fab.Listen(id)
		if err != nil {
			return nil, err
		}
		go n.Serve(l)
		conn, err := fab.Dial(id)
		if err != nil {
			return nil, err
		}
		cf, err := cp1.CreateCodeFlow(conn)
		if err != nil {
			return nil, err
		}
		defer cf.Close()
		fleet = append(fleet, n)
		g1 = append(g1, cf)
	}

	dialQP := func(id string) (rdma.Verbs, error) {
		conn, err := fab.Dial(id)
		if err != nil {
			return nil, err
		}
		return rdma.NewQP(conn), nil
	}

	wqp, err := dialQP("ha-standby")
	if err != nil {
		return nil, err
	}
	if _, err := controlha.AttachLeader(cp1, wqp, 1, ttl); err != nil {
		return nil, fmt.Errorf("ha: attach leader: %w", err)
	}

	tbl := telemetry.NewTable(
		fmt.Sprintf("HA — leader deposed at the publish barrier of a %d-node broadcast", nodes),
		"phase", "latency", "outcome")

	// Generation 1: a clean broadcast under the first leader, fully
	// journaled and replicated.
	gen1 := cluster.GenerationExt(ext.KindEBPF, 1, filler)
	rep1, err := g1.Broadcast(gen1, core.BroadcastOptions{Hook: hook})
	if err != nil {
		return nil, fmt.Errorf("ha: gen-1 broadcast: %w", err)
	}
	tbl.AddRowf("gen-1 broadcast (leader 1)", rep1.Total, fmt.Sprintf("%d nodes published", nodes))

	// The successor: a fresh control plane sharing the artifact cache, with
	// its own CodeFlows to the same fleet (keyed by NodeKey for replay).
	cp2 := core.NewControlPlaneWith(arts, reg)
	flows2 := map[string]*core.CodeFlow{}
	var g2 core.Group
	for i := 0; i < nodes; i++ {
		conn, err := fab.Dial(fmt.Sprintf("ha-node-%d", i))
		if err != nil {
			return nil, err
		}
		cf, err := cp2.CreateCodeFlow(conn)
		if err != nil {
			return nil, err
		}
		defer cf.Close()
		flows2[cf.NodeKey()] = cf
		g2 = append(g2, cf)
	}

	// Generation 2, interrupted: the broadcast runs as an atomic scheduler
	// job (exactly what Group.Broadcast submits); at the publish barrier —
	// every blob staged, no pointer flipped — the standby steals the lease
	// and replays the journal. The old leader then proceeds, unaware it is
	// deposed, into the publish fan-out.
	gen2 := cluster.GenerationExt(ext.KindEBPF, 2, filler)
	var (
		ldr2        *controlha.Leader
		replayed    *controlha.State
		takeoverErr error
	)
	targets := make([]pipeline.Target, len(g1))
	for i, cf := range g1 {
		targets[i] = cf
	}
	res, err := cp1.Scheduler().Inject(pipeline.Request{
		Ext: gen2, Hook: hook, Targets: targets, Atomic: true,
		BeforePublish: func() error {
			hqp, err := dialQP("ha-standby")
			if err != nil {
				takeoverErr = err
				return nil
			}
			ldr2, replayed, takeoverErr = controlha.TakeOver(cp2, host, hqp, 2, ttl, flows2)
			return nil // leader 1 carries on, fenced but oblivious
		},
	})
	if err != nil {
		return nil, fmt.Errorf("ha: interrupted broadcast submit: %w", err)
	}
	if takeoverErr != nil {
		return nil, fmt.Errorf("ha: takeover: %w", takeoverErr)
	}

	// Self-check: every publish the deposed leader attempted must have been
	// rejected by the fencing epoch, with the typed error.
	fenced := 0
	for _, o := range res.Outcomes {
		if o.Err != nil && errors.Is(o.Err, core.ErrFenced) {
			fenced++
		}
	}
	if fenced == 0 {
		return nil, fmt.Errorf("ha: deposed leader's publishes not fenced: %+v", res.Outcomes)
	}
	// And no hook pointer flipped: the fleet still serves generation 1.
	if err := verifyGeneration(fleet, hook, 101); err != nil {
		return nil, fmt.Errorf("ha: deposed leader flipped a pointer: %w", err)
	}
	tbl.AddRowf("gen-2 publish by deposed leader", time.Duration(0),
		fmt.Sprintf("%d/%d fenced (ErrFenced), fleet still on gen 1", fenced, nodes))

	// Self-check: replay reconstructed the interrupted intents — one staged,
	// unpublished gen-2 deployment per node.
	if len(replayed.Open) != nodes {
		return nil, fmt.Errorf("ha: replay found %d open intents, want %d", len(replayed.Open), nodes)
	}
	takeoverLat := time.Duration(reg.Histogram("controlha.takeover.latency").Median())
	tbl.AddRowf("standby takeover (steal+replay)", takeoverLat,
		fmt.Sprintf("%d journal entries, %d interrupted intents", replayed.Entries, len(replayed.Open)))

	// A straggling direct publish from the deposed leader must also be
	// rejected (the regression the fencing epoch exists for).
	if _, err := g1[0].InjectExtension(gen2, hook); !errors.Is(err, core.ErrFenced) {
		return nil, fmt.Errorf("ha: late publish by deposed leader not fenced: %v", err)
	}

	// The successor re-drives the interrupted broadcast. The shared artifact
	// cache already holds gen-2 compiled, so this costs zero recompiles.
	compilesBefore := reg.Counter("artifact.compile.invocations").Value()
	rep2, err := g2.Broadcast(gen2, core.BroadcastOptions{Hook: hook})
	if err != nil {
		return nil, fmt.Errorf("ha: re-driven broadcast: %w", err)
	}
	compilesAfter := reg.Counter("artifact.compile.invocations").Value()
	if compilesAfter != compilesBefore {
		return nil, fmt.Errorf("ha: re-drive recompiled: %d -> %d invocations", compilesBefore, compilesAfter)
	}
	tbl.AddRowf("gen-2 re-drive (leader 2)", rep2.Total,
		fmt.Sprintf("published, compile invocations flat at %d", compilesAfter))

	// Convergence: every node serves exactly generation 2, end to end — a
	// torn or half-published blob cannot execute to the new verdict.
	if err := verifyGeneration(fleet, hook, 102); err != nil {
		return nil, fmt.Errorf("ha: fleet did not converge: %w", err)
	}
	tbl.AddRowf("convergence check", time.Duration(0),
		fmt.Sprintf("%d/%d nodes on gen 2, zero torn blobs", nodes, nodes))

	_ = ldr2
	return tbl, nil
}

// verifyGeneration executes every node's hook and requires the generation
// verdict (100+gen) from each — proving the dispatched blob is whole.
func verifyGeneration(fleet []*node.Node, hook string, verdict uint64) error {
	for _, n := range fleet {
		res, err := n.ExecHook(hook, make([]byte, xabi.CtxSize), nil)
		if err != nil {
			return fmt.Errorf("node %s: %w", n.ID, err)
		}
		if res.Verdict != verdict {
			return fmt.Errorf("node %s: verdict %d, want %d", n.ID, res.Verdict, verdict)
		}
	}
	return nil
}
