package experiments

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"rdx/internal/agent"
	"rdx/internal/cluster"
	"rdx/internal/core"
	"rdx/internal/ebpf/progen"
	"rdx/internal/ext"
	"rdx/internal/kvstore"
	"rdx/internal/node"
	"rdx/internal/rdma"
	"rdx/internal/telemetry"
)

// Fig2b measures update-inconsistency windows during rollouts across
// microservice apps of growing size (paper Fig 2b: hundreds of ms under
// agent-based eventual consistency, for both eBPF and Wasm extensions),
// contrasted with RDX broadcast + BBU (zero mixed requests).
func Fig2b(opts Options) (*telemetry.Table, error) {
	appSizes := []int{4, 11, 17, 33}
	trafficRate := 250.0
	jitterEBPF := 250 * time.Millisecond
	jitterWasm := 400 * time.Millisecond // xDS-style config propagation is slower
	filler := 40000
	if opts.Quick {
		appSizes = []int{4, 8}
		trafficRate = 150
		jitterEBPF, jitterWasm = 60*time.Millisecond, 100*time.Millisecond
		filler = 5000
	}

	tbl := telemetry.NewTable(
		"Fig 2b — update inconsistency during rollout (agent eventual consistency vs RDX+BBU)",
		"services", "kind", "system", "rollout span", "mixed reqs", "mixed window")

	for _, services := range appSizes {
		for _, kind := range []ext.Kind{ext.KindEBPF, ext.KindWasm} {
			jitter := jitterEBPF
			wasmFiller := filler
			if kind == ext.KindWasm {
				jitter = jitterWasm
				wasmFiller = filler / 8 // wasm ops are ~4 native emits each
			}
			app, err := cluster.NewApp(fmt.Sprintf("fig2b-%d-%v", services, kind), cluster.Options{
				Services:    services,
				ServiceCost: 50 * time.Microsecond,
				Seed:        int64(services),
			})
			if err != nil {
				return nil, err
			}
			cp := core.NewControlPlane()
			if err := app.ConnectControlPlane(cp); err != nil {
				app.Close()
				return nil, err
			}

			fillerFor := func() int {
				if kind == ext.KindWasm {
					return wasmFiller
				}
				return filler
			}

			// Baseline generation everywhere, then measure an agent
			// rollout to generation 2 under live traffic.
			if _, err := app.RDXRollout(cluster.GenerationExt(kind, 1, fillerFor()), false); err != nil {
				app.Close()
				return nil, err
			}
			tr := app.StartTraffic(trafficRate)
			time.Sleep(30 * time.Millisecond)
			agentRes, err := app.AgentRollout(cluster.GenerationExt(kind, 2, fillerFor()), jitter)
			if err != nil {
				tr.Stop()
				app.Close()
				return nil, err
			}
			time.Sleep(30 * time.Millisecond)
			tr.Stop()
			tbl.AddRowf(services, kind.String(), "agent",
				agentRes.Span, tr.MixedCount, tr.MixedWindow())

			// Same update via RDX broadcast with BBU.
			tr2 := app.StartTraffic(trafficRate)
			time.Sleep(30 * time.Millisecond)
			rep, err := app.RDXRollout(cluster.GenerationExt(kind, 3, fillerFor()), true)
			if err != nil {
				tr2.Stop()
				app.Close()
				return nil, err
			}
			time.Sleep(30 * time.Millisecond)
			tr2.Stop()
			tbl.AddRowf(services, kind.String(), "rdx+bbu",
				rep.Total, tr2.MixedCount, tr2.MixedWindow())

			app.Close()
		}
	}
	return tbl, nil
}

// Fig2c sweeps application request load against a KV node while the control
// path injects extensions, reproducing the contention collapse: completion
// rate tracks offered load when quiescent but degrades sharply under
// concurrent agent injections near CPU saturation.
func Fig2c(opts Options) (*telemetry.Table, error) {
	rates := []float64{100, 200, 300, 400}
	duration := 1500 * time.Millisecond
	injSize := 76000
	if opts.Quick {
		rates = []float64{100, 300}
		duration = 400 * time.Millisecond
		injSize = 11000
	}

	tbl := telemetry.NewTable(
		"Fig 2c — request completion under control-path contention (KV app)",
		"offered req/s", "quiescent req/s", "contended req/s", "degradation")

	for _, rate := range rates {
		quiet, err := fig2cPoint(rate, duration, 0, injSize)
		if err != nil {
			return nil, err
		}
		contended, err := fig2cPoint(rate, duration, 2, injSize)
		if err != nil {
			return nil, err
		}
		degr := 100 * (1 - contended/quiet)
		tbl.AddRowf(rate, quiet, contended, fmt.Sprintf("%.0f%%", degr))
	}
	return tbl, nil
}

// fig2cPoint measures achieved completion rate at one offered load with
// `injectors` concurrent agent injection loops stealing node cores.
func fig2cPoint(rate float64, duration time.Duration, injectors, injSize int) (float64, error) {
	n, err := node.New(node.Config{
		ID: "fig2c", Hooks: []string{"kv"}, Cores: 4, Latency: rdma.NoLatency(),
	})
	if err != nil {
		return 0, err
	}
	defer n.Close()
	srv := kvstore.NewServer(n, "")
	srv.BaseCost = 8 * time.Millisecond // 4 cores / 8ms ≈ 500 req/s capacity
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	go srv.Serve(l)

	stop := make(chan struct{})
	defer close(stop)
	ag := agent.New(n)
	prog := ext.FromEBPF(progen.MustGenerate(progen.Options{Size: injSize, Seed: 3, WithHelpers: true}))
	for i := 0; i < injectors; i++ {
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
				}
				ag.Inject(context.Background(), "kv", prog)
			}
		}()
	}

	res, err := kvstore.LoadGen(func() (net.Conn, error) {
		return net.Dial("tcp", l.Addr().String())
	}, rate, duration, 8)
	if err != nil {
		return 0, err
	}
	return res.Achieved, nil
}

// RedisRow is one configuration of the §6 Redis-throughput experiment.
type RedisRow struct {
	Config   string
	Achieved float64
	P99      time.Duration
}

// Redis reproduces the §6 claim: agentless eBPF over RDX removes the
// per-node agent "tax" (injection CPU + periodic XState polling) that costs
// a saturated KV store ~25% of its throughput.
func Redis(opts Options) (*telemetry.Table, error) {
	duration := 2 * time.Second
	injSize := 95000
	pollEvery := 30 * time.Millisecond
	injectEvery := 50 * time.Millisecond
	if opts.Quick {
		duration = 600 * time.Millisecond
		injSize = 26000
		injectEvery = 30 * time.Millisecond
	}

	run := func(churn string) (*RedisRow, error) {
		n, err := node.New(node.Config{
			ID: "redis-" + churn, Hooks: []string{"kv"}, Cores: 2, Latency: rdma.DefaultLatency(),
		})
		if err != nil {
			return nil, err
		}
		defer n.Close()
		srv := kvstore.NewServer(n, "")
		srv.BaseCost = 4 * time.Millisecond // 2 cores / 4ms ≈ 500 req/s capacity
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		defer l.Close()
		go srv.Serve(l)

		prog := ext.FromEBPF(progen.MustGenerate(progen.Options{
			Size: injSize, Seed: 5, WithHelpers: true, WithMap: true,
		}))
		stop := make(chan struct{})
		defer close(stop)

		switch churn {
		case "agent":
			ag := agent.New(n)
			go func() {
				for {
					select {
					case <-stop:
						return
					default:
					}
					ag.Inject(context.Background(), "kv", prog)
					ag.PollState(context.Background())
					select {
					case <-stop:
						return
					case <-time.After(injectEvery):
					}
				}
			}()
			go func() {
				t := time.NewTicker(pollEvery)
				defer t.Stop()
				for {
					select {
					case <-stop:
						return
					case <-t.C:
						ag.PollState(context.Background())
					}
				}
			}()
		case "rdx":
			fab := rdma.NewFabric()
			ln, err := fab.Listen(n.ID)
			if err != nil {
				return nil, err
			}
			go n.Serve(ln)
			conn, err := fab.Dial(n.ID)
			if err != nil {
				return nil, err
			}
			cp := core.NewControlPlane()
			cf, err := cp.CreateCodeFlow(conn)
			if err != nil {
				return nil, err
			}
			defer cf.Close()
			go func() {
				for {
					select {
					case <-stop:
						return
					default:
					}
					cf.InjectExtension(prog, "kv")
					// Remote state introspection: reads go through the
					// RNIC, not the node cores. Bounded like a metrics
					// scrape (a full sweep would hammer the fabric).
					if xs, err := cf.ListXStates(); err == nil && len(xs) > 0 {
						if v, err := cf.AttachXState(xs[len(xs)-1]); err == nil {
							scanned := 0
							v.Iterate(func(_, _ []byte) bool {
								scanned++
								return scanned < 64
							})
						}
					}
					select {
					case <-stop:
						return
					case <-time.After(injectEvery):
					}
				}
			}()
		}

		// Saturating closed-loop load.
		res, err := kvstore.LoadGen(func() (net.Conn, error) {
			return net.Dial("tcp", l.Addr().String())
		}, 5000, duration, 8)
		if err != nil {
			return nil, err
		}
		return &RedisRow{
			Config:   churn,
			Achieved: res.Achieved,
			P99:      time.Duration(res.Latency.Percentile(99)),
		}, nil
	}

	tbl := telemetry.NewTable(
		"§6 — KV (Redis-like) throughput under extension churn",
		"config", "throughput req/s", "p99 latency", "vs idle")
	var idle float64
	for _, cfgName := range []string{"idle", "agent", "rdx"} {
		row, err := run(cfgName)
		if err != nil {
			return nil, fmt.Errorf("redis %s: %w", cfgName, err)
		}
		if cfgName == "idle" {
			idle = row.Achieved
		}
		delta := 100 * (row.Achieved/idle - 1)
		tbl.AddRowf(row.Config, row.Achieved, row.P99, fmt.Sprintf("%+.1f%%", delta))
	}
	return tbl, nil
}

// Mesh reproduces the §6 service-mesh claim: injecting Wasm filters via RDX
// instead of per-pod agents removes control-path CPU interference, improving
// microservice completion under churn (paper: up to 65%).
//
// Method: the agent configuration rolls filters out continuously (each
// rollout re-verifies and re-compiles on every node's cores); its *achieved*
// rollout rate is then used to pace the RDX configuration, so both
// configurations deliver the same policy-update workload. Per-update code
// write and icache (decode) costs are symmetric; what differs is where
// verification and compilation run — node cores vs the remote control plane.
func Mesh(opts Options) (*telemetry.Table, error) {
	services := 8
	rate := 920.0 // ~90% of aggregate hook capacity: the churn tax tips the balance
	duration := 2 * time.Second
	filler := 6000 // compile-heavy, execute-light filters (cold paths dominate)
	if opts.Quick {
		services = 4
		rate = 460
		duration = 800 * time.Millisecond
		filler = 3000
	}

	gens := []*ext.Extension{
		cluster.GenerationExt(ext.KindWasm, 11, filler),
		cluster.GenerationExt(ext.KindWasm, 12, filler),
	}

	run := func(churn string, pace time.Duration) (completed float64, p99 time.Duration, rollouts int64, err error) {
		app, err := cluster.NewApp("mesh-"+churn, cluster.Options{
			Services:     services,
			CoresPerNode: 1, // per-pod sidecars are CPU-capped; the agent shares that cap
			ServiceCost:  4 * time.Millisecond,
			Seed:         99,
		})
		if err != nil {
			return 0, 0, 0, err
		}
		defer app.Close()
		cp := core.NewControlPlane()
		if err := app.ConnectControlPlane(cp); err != nil {
			return 0, 0, 0, err
		}

		stop := make(chan struct{})
		defer close(stop)
		var count atomic.Int64
		switch churn {
		case "agent":
			// Continuous rollouts: every one re-validates and re-compiles
			// the filter on every node's cores (the per-pod agent tax).
			go func() {
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := app.AgentRollout(gens[i%len(gens)], 0); err == nil {
						count.Add(1)
					}
				}
			}()
		case "rdx":
			// Compile once on the control plane, then deliver the same
			// number of updates the agent managed, paced accordingly.
			for _, e := range gens {
				if err := cp.Precompile(e, app.Services[0].Node.Arch); err != nil {
					return 0, 0, 0, err
				}
			}
			go func() {
				t := time.NewTicker(pace)
				defer t.Stop()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					case <-t.C:
						if _, err := app.RDXRollout(gens[i%len(gens)], false); err == nil {
							count.Add(1)
						}
					}
				}
			}()
		}

		tr := app.StartTraffic(rate)
		time.Sleep(duration)
		// Bound every metric to the measurement window: rollouts and
		// completions that land during drain/teardown are excluded.
		completedInWindow, _ := tr.Snapshot()
		rolloutsInWindow := count.Load()
		p99 = time.Duration(tr.Latency.Percentile(99))
		tr.Stop()
		return float64(completedInWindow) / duration.Seconds(), p99, rolloutsInWindow, nil
	}

	agentRate, agentP99, agentRollouts, err := run("agent", 0)
	if err != nil {
		return nil, err
	}
	if agentRollouts == 0 {
		agentRollouts = 1
	}
	pace := duration / time.Duration(agentRollouts)
	rdxRate, rdxP99, rdxRollouts, err := run("rdx", pace)
	if err != nil {
		return nil, err
	}

	tbl := telemetry.NewTable(
		"§6 — microservice completion under Wasm filter churn (matched update workload)",
		"config", "rollouts", "completion req/s", "p99 latency", "rdx vs agent")
	tbl.AddRowf("agent churn", agentRollouts, agentRate, agentP99, "")
	tbl.AddRowf("rdx churn", rdxRollouts, rdxRate, rdxP99,
		fmt.Sprintf("%+.0f%%", 100*(rdxRate/agentRate-1)))
	return tbl, nil
}
