package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"rdx/internal/artifact"
	"rdx/internal/controlha"
	"rdx/internal/core"
	"rdx/internal/node"
	"rdx/internal/rdma"
	"rdx/internal/telemetry"
)

// Chain is the verb-chain offload experiment (DESIGN.md §15): the three HA
// control paths — publish-barrier commit, lease renewal, heartbeating —
// measured offloaded (one pre-posted chain, one trigger verb) against their
// controller-driven RPC equivalents (the same effect as a sequence of
// dependent verbs), with the leader's CPU idle vs saturated.
//
// Saturation is modeled, not provoked: a saturated leader loses its core
// while waiting on each verb completion and pays a fixed rescheduling gap
// before it can issue the next dependent verb. The first verb of an
// operation is free (the timer context already holds the CPU), so an
// offloaded path — exactly one verb, the chain's trigger — never pays the
// gap at all, while a K-verb RPC path pays it K-1 times. That is the
// paper's claim in schedulable form: once the program is resident, progress
// does not depend on the initiator's CPU.
//
// Self-checks:
//
//   - every offloaded path's median under saturation stays within 1.5× its
//     idle median (+a small scheduler-jitter allowance);
//   - every RPC path degrades at least 3× under saturation;
//   - the standby's deadman stays quiet while offloaded beats flow and
//     fires after they stop (real failure-detection latency, reported);
//   - after the standby rotates the ha-chain MR (FenceChains), a stale
//     trigger fails typed with rdma.ErrAccess and the resident program
//     never runs — the witness expiry is untouched.
func Chain(opts Options) (*telemetry.Table, error) {
	rounds := 30
	if opts.Quick {
		rounds = 8
	}
	const (
		gap     = 5 * time.Millisecond   // modeled rescheduling delay under saturation
		slack   = 500 * time.Microsecond // jitter allowance on the 1.5× offload check
		parties = 4
	)
	ttl := time.Minute

	fab := rdma.NewFabric()
	host, err := controlha.NewHost(0)
	if err != nil {
		return nil, err
	}
	defer host.Close()
	hl, err := fab.Listen("chain-standby")
	if err != nil {
		return nil, err
	}
	go host.Serve(hl)

	reg := telemetry.NewRegistry()
	arts := artifact.NewCache(artifact.Config{Registry: reg})
	cp := core.NewControlPlaneWith(arts, reg)

	// One fleet node hosts the publish barrier's commit chain in its
	// scratchpad.
	nd, err := node.New(node.Config{
		ID: "chain-node", Hooks: []string{"ingress"}, Cores: 2, Latency: rdma.NoLatency(), Seed: 7,
	})
	if err != nil {
		return nil, err
	}
	defer nd.Close()
	nl, err := fab.Listen("chain-node")
	if err != nil {
		return nil, err
	}
	go nd.Serve(nl)
	nconn, err := fab.Dial("chain-node")
	if err != nil {
		return nil, err
	}
	cf, err := cp.CreateCodeFlow(nconn)
	if err != nil {
		return nil, err
	}
	defer cf.Close()

	dialQP := func() (rdma.Verbs, error) {
		conn, err := fab.Dial("chain-standby")
		if err != nil {
			return nil, err
		}
		return rdma.NewQP(conn), nil
	}
	wqp, err := dialQP()
	if err != nil {
		return nil, err
	}
	ldr, err := controlha.AttachLeader(cp, wqp, 1, ttl)
	if err != nil {
		return nil, fmt.Errorf("chain: attach leader: %w", err)
	}
	cqp, err := dialQP()
	if err != nil {
		return nil, err
	}
	co, err := controlha.AttachChain(ldr, cqp)
	if err != nil {
		return nil, fmt.Errorf("chain: attach chains: %w", err)
	}

	// A plain verb view of the standby for the RPC emulations and checks.
	rqp, err := dialQP()
	if err != nil {
		return nil, err
	}
	mrs, err := rqp.QueryMRs()
	if err != nil {
		return nil, err
	}
	rmem := core.NewRemoteMemory(rqp, mrs)
	var witness rdma.MR
	for _, mr := range mrs {
		if mr.Name == controlha.WitnessMRName {
			witness = mr
		}
	}
	epoch := ldr.Lease.Epoch()

	// Witness word layout (owner@+0, expiry@+8, epoch@+16) — the wire
	// contract the unoffloaded renew sequence speaks.
	const witOwner, witExpiry, witEpoch = 0, 8, 16

	pause := func(sat bool) {
		if sat {
			time.Sleep(gap)
		}
	}

	// The unoffloaded renew: the three dependent verbs Lease.Renew issues,
	// each after the leader re-acquires its core.
	rpcRenew := func(sat bool) error {
		if _, err := rmem.ReadMem(witness.Addr+witOwner, 8); err != nil {
			return err
		}
		pause(sat)
		if _, err := rmem.ReadMem(witness.Addr+witEpoch, 8); err != nil {
			return err
		}
		pause(sat)
		return rmem.WriteMem(witness.Addr+witExpiry, 8, uint64(time.Now().Add(ttl).UnixNano()))
	}
	// The unoffloaded heartbeat: liveness check, beat increment, deadman
	// stamp — the same three words the resident chain touches in one
	// trigger.
	rpcBeat := func(sat bool) error {
		if _, _, err := rmem.CompareAndSwapMem(host.ChainBase()+controlha.ChainHBEpochOff, epoch, epoch); err != nil {
			return err
		}
		pause(sat)
		seq, err := rmem.FetchAddMem(host.ChainBase()+controlha.ChainHBSeqOff, 1)
		if err != nil {
			return err
		}
		pause(sat)
		return rmem.WriteMem(host.ChainBase()+controlha.ChainDeadmanOff, 8, seq+1)
	}

	// measure runs op n times and returns the median of the durations op
	// reports (ops time only their leader-CPU-driven span; per-round setup
	// like arming a barrier happens off the clock, as it does in practice —
	// chains are pre-posted).
	measure := func(n int, op func() (time.Duration, error)) (time.Duration, error) {
		lats := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			d, err := op()
			if err != nil {
				return 0, err
			}
			lats = append(lats, d)
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats[len(lats)/2], nil
	}
	timed := func(f func() error) (time.Duration, error) {
		t0 := time.Now()
		err := f()
		return time.Since(t0), err
	}

	tbl := telemetry.NewTable(
		fmt.Sprintf("Verb-chain offload — NIC-resident control programs vs RPC, leader idle vs saturated (%d rounds, %v reschedule gap)", rounds, gap),
		"path", "idle p50", "saturated p50", "outcome")

	type path struct {
		name    string
		offload bool
		op      func(sat bool) (time.Duration, error)
	}
	version := uint64(0)
	paths := []path{
		{"lease renew (chain trigger)", true, func(bool) (time.Duration, error) {
			return timed(ldr.Lease.Renew)
		}},
		{"lease renew (RPC verbs)", false, func(sat bool) (time.Duration, error) {
			return timed(func() error { return rpcRenew(sat) })
		}},
		{"heartbeat (chain trigger)", true, func(bool) (time.Duration, error) {
			return timed(func() error {
				_, err := co.TriggerHeartbeat(context.Background())
				return err
			})
		}},
		{"heartbeat (RPC verbs)", false, func(sat bool) (time.Duration, error) {
			return timed(func() error { return rpcBeat(sat) })
		}},
		{"barrier commit (chain fan-in)", true, func(bool) (time.Duration, error) {
			version++
			b, err := core.ArmChainBarrier(cf, parties, version)
			if err != nil {
				return 0, err
			}
			ctx := context.Background()
			// The first N-1 arrivals come from worker stage goroutines, not
			// the leader — off the clock.
			for i := 0; i < parties-1; i++ {
				if _, err := b.Arrive(ctx); err != nil {
					return 0, err
				}
			}
			// Only the closing arrival is the commit path: its trigger runs
			// the commit CAS and CC doorbell NIC-side.
			return timed(func() error {
				committed, err := b.Arrive(ctx)
				if err != nil {
					return err
				}
				if !committed {
					return fmt.Errorf("chain: final arrival did not commit")
				}
				return nil
			})
		}},
		{"barrier commit (controller write)", false, func(sat bool) (time.Duration, error) {
			version++
			commit, err := cf.AllocScratch(8)
			if err != nil {
				return 0, err
			}
			// The controller collected the Nth stage ack; under saturation
			// it pays one reschedule before it can issue the commit WRITE.
			return timed(func() error {
				pause(sat)
				return cf.Remote.WriteMem(commit, 8, version)
			})
		}},
	}

	for _, p := range paths {
		var p50 [2]time.Duration
		for i, sat := range []bool{false, true} {
			sat := sat
			m, err := measure(rounds, func() (time.Duration, error) { return p.op(sat) })
			if err != nil {
				return nil, fmt.Errorf("chain: %s (saturated=%v): %w", p.name, sat, err)
			}
			p50[i] = m
		}
		verdict := "ok"
		if p.offload {
			if p50[1] > p50[0]*3/2+slack {
				return nil, fmt.Errorf("chain: offloaded %s degraded %v -> %v under saturation (want ≤1.5×+%v)",
					p.name, p50[0], p50[1], slack)
			}
			verdict = "unaffected by saturation (≤1.5×)"
		} else {
			if p50[1] < p50[0]*3 {
				return nil, fmt.Errorf("chain: RPC %s degraded only %v -> %v under saturation (want ≥3×)",
					p.name, p50[0], p50[1])
			}
			verdict = fmt.Sprintf("degraded %.0f×", float64(p50[1])/float64(p50[0]))
		}
		tbl.AddRowf(p.name, p50[0], p50[1], verdict)
	}

	// Failure detection, for real: the standby's deadman polls the beat
	// sequence locally, stays quiet while offloaded beats flow, and fires
	// once they stop.
	fired := make(chan struct{})
	stopDeadman := host.StartDeadman(time.Millisecond, 15*time.Millisecond, func() { close(fired) })
	defer stopDeadman()
	co.StartHeartbeat(nil, time.Millisecond)
	select {
	case <-fired:
		return nil, fmt.Errorf("chain: deadman fired while heartbeats were flowing")
	case <-time.After(40 * time.Millisecond):
	}
	died := time.Now()
	co.StopHeartbeat()
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		return nil, fmt.Errorf("chain: deadman never fired after heartbeats stopped")
	}
	tbl.AddRowf("failover detection (deadman)", time.Duration(0), time.Since(died),
		"quiet while beating, fired after stop")

	// Fencing: the standby rotates the ha-chain MR out from under the
	// leader. The stale trigger must fail typed — and the resident renew
	// program must NOT have run: the witness expiry is unchanged.
	expiryBefore, err := rmem.ReadMem(witness.Addr+witExpiry, 8)
	if err != nil {
		return nil, err
	}
	if err := host.FenceChains(); err != nil {
		return nil, err
	}
	_, terr := co.TriggerRenew(context.Background(), uint64(time.Now().Add(time.Hour).UnixNano()))
	if !errors.Is(terr, rdma.ErrAccess) {
		return nil, fmt.Errorf("chain: trigger on rotated chain MR: %v, want rdma.ErrAccess", terr)
	}
	expiryAfter, err := rmem.ReadMem(witness.Addr+witExpiry, 8)
	if err != nil {
		return nil, err
	}
	if expiryAfter != expiryBefore {
		return nil, fmt.Errorf("chain: fenced trigger still ran the program: expiry %d -> %d", expiryBefore, expiryAfter)
	}
	tbl.AddRowf("fencing (rotated chain rkey)", time.Duration(0), time.Duration(0),
		"typed ErrAccess, program never executed")

	return tbl, nil
}
