package experiments

import (
	"fmt"
	"time"

	"rdx/internal/sim"
	"rdx/internal/sim/scenario"
	"rdx/internal/telemetry"
)

// Sim runs the deterministic-simulation soak: thousands of seeded-random
// schedules of the leader-failover and rebalance scenarios (real
// controlha/shard code under the model checker's transport and clock),
// every invariant checked at every quiescent step, plus one systematic
// low-deviation sweep per scenario. A healthy build reports zero
// violations; a violation prints its seed and minimized trace so it can
// be replayed exactly.
func Sim(opts Options) (*telemetry.Table, error) {
	randomRuns, sysRuns := 20000, 1500
	if opts.Quick {
		randomRuns, sysRuns = 1000, 200
	}

	tbl := telemetry.NewTable(
		fmt.Sprintf("Deterministic simulation — %d random + %d systematic schedules per scenario", randomRuns, sysRuns),
		"scenario", "mode", "schedules", "rate", "violations")

	scenarios := []struct {
		name string
		run  sim.Runner
	}{
		{"failover", scenario.RunFailover},
		{"rebalance", scenario.RunRebalance},
	}
	for _, sc := range scenarios {
		start := time.Now()
		rep := sim.ExploreRandom(sc.run, 1, randomRuns, 300)
		elapsed := time.Since(start)
		tbl.AddRowf(sc.name, "random", rep.Runs,
			fmt.Sprintf("%.0f/s", float64(rep.Runs)/elapsed.Seconds()), violationCell(rep))
		if rep.Violation != nil {
			return tbl, fmt.Errorf("sim: %s random soak:\n%v", sc.name, rep.Violation)
		}

		start = time.Now()
		rep = sim.ExploreSystematic(sc.run, 2, 300, sysRuns)
		elapsed = time.Since(start)
		tbl.AddRowf(sc.name, "systematic", rep.Runs,
			fmt.Sprintf("%.0f/s", float64(rep.Runs)/elapsed.Seconds()), violationCell(rep))
		if rep.Violation != nil {
			return tbl, fmt.Errorf("sim: %s systematic sweep:\n%v", sc.name, rep.Violation)
		}
	}
	return tbl, nil
}

func violationCell(rep *sim.Report) string {
	if rep.Violation == nil {
		return "none"
	}
	return fmt.Sprintf("%s (seed %d, %d-step trace)",
		rep.Violation.Invariant, rep.Violation.Seed, len(rep.Violation.Trace))
}
