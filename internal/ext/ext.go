// Package ext unifies the three runtime-extension frontends — eBPF
// programs, Wasm filters, and UDFs — behind one interface so the control
// plane, the agent baseline, and the CodeFlow pipeline stay
// frontend-agnostic: validate → JIT-compile → link → deploy works
// identically for all three (the generality argument of the paper's §6).
package ext

import (
	"fmt"
	"sync"

	"rdx/internal/ebpf"
	"rdx/internal/ebpf/jit"
	"rdx/internal/ebpf/verifier"
	"rdx/internal/native"
	"rdx/internal/udf"
	"rdx/internal/wasm"
)

// Kind discriminates extension frontends. Values match the node blob-header
// kind bytes (node.KindEBPF etc.).
type Kind uint8

const (
	KindEBPF Kind = 1
	KindWasm Kind = 2
	KindUDF  Kind = 3
)

func (k Kind) String() string {
	switch k {
	case KindEBPF:
		return "ebpf"
	case KindWasm:
		return "wasm"
	case KindUDF:
		return "udf"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Extension is one deployable runtime extension of any kind.
type Extension struct {
	Kind Kind
	EBPF *ebpf.Program
	Wasm *wasm.Module
	UDF  *udf.Program

	digestOnce sync.Once
	digest     string
}

// FromEBPF wraps an eBPF program.
func FromEBPF(p *ebpf.Program) *Extension { return &Extension{Kind: KindEBPF, EBPF: p} }

// FromWasm wraps a Wasm filter module.
func FromWasm(m *wasm.Module) *Extension { return &Extension{Kind: KindWasm, Wasm: m} }

// FromUDF wraps a UDF program.
func FromUDF(p *udf.Program) *Extension { return &Extension{Kind: KindUDF, UDF: p} }

// Name returns the extension's name.
func (e *Extension) Name() string {
	switch e.Kind {
	case KindEBPF:
		return e.EBPF.Name
	case KindWasm:
		return e.Wasm.Name
	case KindUDF:
		return e.UDF.Name
	}
	return ""
}

// Digest is the content digest used as the compile-cache key. It is
// computed once and memoized: extensions are immutable after construction,
// and the hot deploy path consults the digest repeatedly.
func (e *Extension) Digest() string {
	e.digestOnce.Do(func() {
		switch e.Kind {
		case KindEBPF:
			e.digest = e.EBPF.Digest()
		case KindWasm:
			e.digest = wasm.Digest(e.Wasm)
		case KindUDF:
			e.digest = e.UDF.Digest()
		}
	})
	return e.digest
}

// Info summarizes validation facts across frontends.
type Info struct {
	Ops        int // instructions / body ops / AST-irrelevant for UDF (0)
	StackDepth int
	UsesState  bool
}

// Validate runs the frontend's validator/verifier.
func (e *Extension) Validate() (Info, error) {
	switch e.Kind {
	case KindEBPF:
		res, err := verifier.Verify(e.EBPF, verifier.Config{})
		if err != nil {
			return Info{}, err
		}
		return Info{Ops: res.Insns, StackDepth: res.StackDepth, UsesState: res.UsesMapLookup || res.UsesMapUpdate}, nil
	case KindWasm:
		res, err := wasm.Validate(e.Wasm)
		if err != nil {
			return Info{}, err
		}
		return Info{Ops: res.BodyOps, StackDepth: (res.Locals + res.MaxStack) * 8, UsesState: res.UsesMemory}, nil
	case KindUDF:
		// Parsing already type-checks; re-parse defensively if the
		// expression is absent.
		if e.UDF == nil || e.UDF.Expr == nil {
			return Info{}, fmt.Errorf("ext: empty UDF")
		}
		return Info{}, nil
	}
	return Info{}, fmt.Errorf("ext: unknown kind %v", e.Kind)
}

// Compile JIT-compiles for the target architecture, producing a relocatable
// binary with the frontend's relocation symbols.
func (e *Extension) Compile(arch native.Arch) (*native.Binary, error) {
	switch e.Kind {
	case KindEBPF:
		return jit.Compile(e.EBPF, arch)
	case KindWasm:
		return wasm.Compile(e.Wasm, arch)
	case KindUDF:
		return e.UDF.Compile(arch)
	}
	return nil, fmt.Errorf("ext: unknown kind %v", e.Kind)
}

// MapSpecs returns the XState maps the extension requires (eBPF only).
func (e *Extension) MapSpecs() []ebpf.MapSpec {
	if e.Kind == KindEBPF {
		return e.EBPF.Maps
	}
	return nil
}

// WasmRegions returns the (memory bytes, globals) a Wasm filter deployment
// must allocate, or zeros for other kinds.
func (e *Extension) WasmRegions() (memBytes, globals int) {
	if e.Kind != KindWasm {
		return 0, 0
	}
	return int(e.Wasm.MemPages) * wasm.PageSize, len(e.Wasm.Globals)
}

// WasmGlobalInits returns the global initial values for a Wasm deployment.
func (e *Extension) WasmGlobalInits() []int64 {
	if e.Kind != KindWasm {
		return nil
	}
	out := make([]int64, len(e.Wasm.Globals))
	for i, g := range e.Wasm.Globals {
		out[i] = g.Init
	}
	return out
}

// Marshal serializes the extension IR for network transport:
// [1B kind][payload].
func Marshal(e *Extension) ([]byte, error) {
	switch e.Kind {
	case KindEBPF:
		return append([]byte{byte(KindEBPF)}, ebpf.Marshal(e.EBPF)...), nil
	case KindWasm:
		return append([]byte{byte(KindWasm)}, wasm.Encode(e.Wasm)...), nil
	case KindUDF:
		payload := append([]byte{byte(KindUDF)}, []byte(e.UDF.Name)...)
		payload = append(payload, 0)
		return append(payload, e.UDF.Source...), nil
	}
	return nil, fmt.Errorf("ext: unknown kind %v", e.Kind)
}

// Unmarshal parses the wire form.
func Unmarshal(b []byte) (*Extension, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("ext: empty payload")
	}
	switch Kind(b[0]) {
	case KindEBPF:
		p, err := ebpf.Unmarshal(b[1:])
		if err != nil {
			return nil, err
		}
		return FromEBPF(p), nil
	case KindWasm:
		m, err := wasm.Decode(b[1:])
		if err != nil {
			return nil, err
		}
		return FromWasm(m), nil
	case KindUDF:
		rest := b[1:]
		sep := -1
		for i, c := range rest {
			if c == 0 {
				sep = i
				break
			}
		}
		if sep < 0 {
			return nil, fmt.Errorf("ext: malformed UDF payload")
		}
		p, err := udf.New(string(rest[:sep]), string(rest[sep+1:]))
		if err != nil {
			return nil, err
		}
		return FromUDF(p), nil
	}
	return nil, fmt.Errorf("ext: unknown kind byte %d", b[0])
}
