package ext

import (
	"strings"
	"testing"

	"rdx/internal/ebpf"
	"rdx/internal/native"
	"rdx/internal/udf"
	"rdx/internal/wasm"
	"rdx/internal/xabi"
)

func sampleEBPF() *Extension {
	return FromEBPF(ebpf.NewProgram("e", ebpf.ProgTypeSocketFilter, []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R0, 1), ebpf.Exit(),
	}, ebpf.MapSpec{Name: "m", Type: xabi.MapTypeHash, KeySize: 4, ValueSize: 8, MaxEntries: 4}))
}

func sampleWasm() *Extension {
	m := wasm.SimpleFilter("w", 2, nil, wasm.NewBody().I64Const(1).End().Bytes())
	m.Globals = []wasm.Global{{Type: wasm.I64, Init: 5}}
	return FromWasm(m)
}

func sampleUDF(t *testing.T) *Extension {
	t.Helper()
	p, err := udf.New("u", "len > 10")
	if err != nil {
		t.Fatal(err)
	}
	return FromUDF(p)
}

func TestKindDispatch(t *testing.T) {
	cases := []struct {
		e    *Extension
		kind Kind
		name string
	}{
		{sampleEBPF(), KindEBPF, "e"},
		{sampleWasm(), KindWasm, "w"},
	}
	for _, c := range cases {
		if c.e.Kind != c.kind || c.e.Name() != c.name {
			t.Errorf("kind=%v name=%q", c.e.Kind, c.e.Name())
		}
		if c.e.Digest() == "" {
			t.Errorf("%v: empty digest", c.kind)
		}
		if _, err := c.e.Validate(); err != nil {
			t.Errorf("%v: validate: %v", c.kind, err)
		}
		for _, arch := range []native.Arch{native.ArchX64, native.ArchA64} {
			bin, err := c.e.Compile(arch)
			if err != nil {
				t.Errorf("%v/%v: compile: %v", c.kind, arch, err)
				continue
			}
			if bin.Arch != arch {
				t.Errorf("%v: binary arch %v", c.kind, bin.Arch)
			}
		}
	}
}

func TestUDFExtension(t *testing.T) {
	e := sampleUDF(t)
	if e.Kind != KindUDF || e.Name() != "u" {
		t.Fatalf("kind=%v name=%q", e.Kind, e.Name())
	}
	if _, err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Compile(native.ArchX64); err != nil {
		t.Fatal(err)
	}
}

func TestMapSpecsOnlyForEBPF(t *testing.T) {
	if len(sampleEBPF().MapSpecs()) != 1 {
		t.Error("ebpf map specs missing")
	}
	if len(sampleWasm().MapSpecs()) != 0 {
		t.Error("wasm reported map specs")
	}
}

func TestWasmRegions(t *testing.T) {
	memBytes, globals := sampleWasm().WasmRegions()
	if memBytes != 2*wasm.PageSize || globals != 1 {
		t.Errorf("regions = %d, %d", memBytes, globals)
	}
	inits := sampleWasm().WasmGlobalInits()
	if len(inits) != 1 || inits[0] != 5 {
		t.Errorf("inits = %v", inits)
	}
	if mb, g := sampleEBPF().WasmRegions(); mb != 0 || g != 0 {
		t.Error("ebpf reported wasm regions")
	}
}

func TestMarshalRoundTripPreservesDigest(t *testing.T) {
	for _, e := range []*Extension{sampleEBPF(), sampleWasm(), sampleUDF(t)} {
		b, err := Marshal(e)
		if err != nil {
			t.Fatalf("%v: %v", e.Kind, err)
		}
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("%v: %v", e.Kind, err)
		}
		if got.Digest() != e.Digest() || got.Name() != e.Name() {
			t.Errorf("%v: round trip changed identity", e.Kind)
		}
	}
}

func TestUnmarshalRejections(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := Unmarshal([]byte{0xFF}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Unmarshal([]byte{byte(KindUDF), 'n', 'a', 'm', 'e'}); err == nil {
		t.Error("UDF without separator accepted")
	}
	if _, err := Unmarshal([]byte{byte(KindEBPF), 1, 2}); err == nil {
		t.Error("truncated eBPF accepted")
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	bad := FromEBPF(ebpf.NewProgram("b", ebpf.ProgTypeSocketFilter, []ebpf.Instruction{ebpf.Ja(-1)}))
	if _, err := bad.Validate(); err == nil {
		t.Error("looping eBPF validated")
	}
	badWasm := FromWasm(wasm.SimpleFilter("b", 0, nil, wasm.NewBody().I32Const(1).End().Bytes()))
	if _, err := badWasm.Validate(); err == nil {
		t.Error("type-broken wasm validated")
	}
	empty := &Extension{Kind: KindUDF}
	if _, err := empty.Validate(); err == nil {
		t.Error("empty UDF validated")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindEBPF: "ebpf", KindWasm: "wasm", KindUDF: "udf"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Error("unknown kind string")
	}
}

func TestValidateInfoFields(t *testing.T) {
	info, err := sampleEBPF().Validate()
	if err != nil {
		t.Fatal(err)
	}
	if info.Ops != 2 {
		t.Errorf("ops = %d", info.Ops)
	}
	winfo, err := sampleWasm().Validate()
	if err != nil {
		t.Fatal(err)
	}
	if winfo.Ops == 0 {
		t.Error("wasm ops not counted")
	}
}
