package native

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"rdx/internal/xabi"
)

func TestEncodingRoundTripBothArches(t *testing.T) {
	insts := []Inst{
		{Op: OpNop},
		{Op: OpMovRR, A: 1, B: 2},
		{Op: OpMovRI, A: 3, Ext: 0xDEADBEEF12345678},
		{Op: OpAluRR, A: 1, B: 2, C: AluXor, Flags: Flag32},
		{Op: OpAluRI, A: 4, C: AluAdd, Imm: -1000},
		{Op: OpLoad, A: 0, B: 1, C: 8, Imm: 16},
		{Op: OpStore, A: 2, B: 10, C: 4, Imm: -8},
		{Op: OpStoreI, B: 10, C: 8, Imm: -16, Ext: 42},
		{Op: OpJmp, A: 1, B: 2, C: CondSGT, Imm: 7},
		{Op: OpJmpI, A: 1, C: CondEQ, Imm: 3, Ext: 99},
		{Op: OpCall, Ext: 0x1000},
		{Op: OpRet},
	}
	for _, arch := range []Arch{ArchX64, ArchA64} {
		asm := NewAssembler(arch)
		for _, i := range insts {
			asm.Emit(i)
		}
		bin := asm.Finish("t", "digest", 512)
		got, err := Decode(arch, bin.Code)
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		if len(got) != len(insts) {
			t.Fatalf("%v: decoded %d insts, want %d", arch, len(got), len(insts))
		}
		for j := range insts {
			if got[j] != insts[j] {
				t.Errorf("%v inst %d: got %+v want %+v", arch, j, got[j], insts[j])
			}
		}
	}
}

func TestEncodingsDiffer(t *testing.T) {
	// The whole point of two arches: same semantics, different bytes.
	emit := func(arch Arch) []byte {
		asm := NewAssembler(arch)
		asm.Emit(Inst{Op: OpMovRI, A: 0, Ext: 5})
		asm.Emit(Inst{Op: OpRet})
		return asm.Finish("t", "d", 0).Code
	}
	x, a := emit(ArchX64), emit(ArchA64)
	if len(x) == len(a) {
		t.Errorf("encodings have identical length %d; expected variable vs fixed", len(x))
	}
}

func TestRelocOffsetsArchSpecific(t *testing.T) {
	build := func(arch Arch) *Binary {
		asm := NewAssembler(arch)
		asm.Emit(Inst{Op: OpMovRR, A: 1, B: 2})
		asm.EmitReloc(Inst{Op: OpCall}, RelocHelper, "helper:ktime_get_ns")
		asm.Emit(Inst{Op: OpRet})
		return asm.Finish("t", "d", 0)
	}
	x, a := build(ArchX64), build(ArchA64)
	if len(x.Relocs) != 1 || len(a.Relocs) != 1 {
		t.Fatalf("reloc counts: %d %d", len(x.Relocs), len(a.Relocs))
	}
	if x.Relocs[0].Offset == a.Relocs[0].Offset {
		t.Errorf("reloc offsets identical (%d); arch encodings should differ", x.Relocs[0].Offset)
	}
	// Both must point at the placeholder.
	for _, b := range []*Binary{x, a} {
		if leU64(b.Code[b.Relocs[0].Offset:]) != PlaceholderValue {
			t.Errorf("%v reloc does not point at placeholder", b.Arch)
		}
		if b.Linked() {
			t.Errorf("%v binary claims linked before linking", b.Arch)
		}
	}
}

func TestLink(t *testing.T) {
	asm := NewAssembler(ArchA64)
	asm.EmitReloc(Inst{Op: OpCall}, RelocHelper, "helper:ktime_get_ns")
	asm.EmitReloc(Inst{Op: OpMovRI, A: 1}, RelocMap, "map:flows")
	asm.Emit(Inst{Op: OpRet})
	bin := asm.Finish("t", "d", 0)

	err := Link(bin, func(kind RelocKind, sym string) (uint64, bool) {
		switch {
		case kind == RelocHelper && sym == "helper:ktime_get_ns":
			return 0xAA00, true
		case kind == RelocMap && sym == "map:flows":
			return 0xBB00, true
		}
		return 0, false
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bin.Linked() {
		t.Error("binary not linked after Link")
	}
	insts, _ := Decode(ArchA64, bin.Code)
	if insts[0].Ext != 0xAA00 || insts[1].Ext != 0xBB00 {
		t.Errorf("patched operands: %#x %#x", insts[0].Ext, insts[1].Ext)
	}
}

func TestLinkUnresolvedSymbol(t *testing.T) {
	asm := NewAssembler(ArchX64)
	asm.EmitReloc(Inst{Op: OpCall}, RelocHelper, "helper:nope")
	asm.Emit(Inst{Op: OpRet})
	bin := asm.Finish("t", "d", 0)
	err := Link(bin, func(RelocKind, string) (uint64, bool) { return 0, false })
	if err == nil || !strings.Contains(err.Error(), "unresolved") {
		t.Errorf("err = %v", err)
	}
}

func TestRunUnlinkedTraps(t *testing.T) {
	asm := NewAssembler(ArchA64)
	asm.EmitReloc(Inst{Op: OpCall}, RelocHelper, "helper:ktime_get_ns")
	asm.Emit(Inst{Op: OpRet})
	bin := asm.Finish("t", "d", 0)
	p, err := DecodeProgram(bin.Arch, bin.Code)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{}
	if _, err := e.Run(p, &xabi.Env{}, nil); !errors.Is(err, ErrUnlinked) {
		t.Errorf("err = %v, want ErrUnlinked", err)
	}
}

func TestEngineBasicProgram(t *testing.T) {
	// r0 = (5 + 7) * 2 computed through the stack.
	asm := NewAssembler(ArchX64)
	asm.Emit(Inst{Op: OpMovRI, A: 0, Ext: 5})
	asm.Emit(Inst{Op: OpAluRI, A: 0, C: AluAdd, Imm: 7})
	asm.Emit(Inst{Op: OpStore, A: 0, B: 10, C: 8, Imm: -8})
	asm.Emit(Inst{Op: OpLoad, A: 1, B: 10, C: 8, Imm: -8})
	asm.Emit(Inst{Op: OpAluRR, A: 0, C: AluAdd, B: 1})
	asm.Emit(Inst{Op: OpRet})
	bin := asm.Finish("t", "d", 0)
	p, _ := DecodeProgram(bin.Arch, bin.Code)
	r0, err := (&Engine{}).Run(p, &xabi.Env{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r0 != 24 {
		t.Errorf("r0 = %d, want 24", r0)
	}
}

func TestEngineHelperByAddress(t *testing.T) {
	const addr = 0xC0FFEE00
	asm := NewAssembler(ArchA64)
	asm.Emit(Inst{Op: OpMovRI, A: 1, Ext: 21})
	asm.Emit(Inst{Op: OpCall, Ext: addr})
	asm.Emit(Inst{Op: OpRet})
	bin := asm.Finish("t", "d", 0)
	p, _ := DecodeProgram(bin.Arch, bin.Code)

	e := &Engine{HelperAddrs: map[uint64]xabi.HelperFn{
		addr: func(_ *xabi.Env, a1, _, _, _, _ uint64) (uint64, error) { return a1 * 2, nil },
	}}
	r0, err := e.Run(p, &xabi.Env{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r0 != 42 {
		t.Errorf("r0 = %d", r0)
	}
	// Call to unmapped address must trap.
	e2 := &Engine{}
	if _, err := e2.Run(p, &xabi.Env{}, nil); err == nil || !strings.Contains(err.Error(), "unmapped") {
		t.Errorf("unmapped call: %v", err)
	}
}

func TestEngineFuel(t *testing.T) {
	asm := NewAssembler(ArchX64)
	asm.Emit(Inst{Op: OpJmp, C: CondAlways, Imm: 0}) // spin
	bin := asm.Finish("t", "d", 0)
	p, _ := DecodeProgram(bin.Arch, bin.Code)
	e := &Engine{Fuel: 100}
	if _, err := e.Run(p, &xabi.Env{}, nil); !errors.Is(err, ErrFuel) {
		t.Errorf("err = %v", err)
	}
}

func TestEngineCtxAccess(t *testing.T) {
	ctx := make([]byte, xabi.CtxSize)
	ctx[0] = 0x2A
	asm := NewAssembler(ArchA64)
	asm.Emit(Inst{Op: OpLoad, A: 0, B: 1, C: 1, Imm: 0}) // r0 = ctx[0]
	asm.Emit(Inst{Op: OpStoreI, B: 1, C: 4, Imm: int32(xabi.CtxOffVerdict), Ext: 7})
	asm.Emit(Inst{Op: OpRet})
	bin := asm.Finish("t", "d", 0)
	p, _ := DecodeProgram(bin.Arch, bin.Code)
	r0, err := (&Engine{}).Run(p, &xabi.Env{}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r0 != 0x2A {
		t.Errorf("r0 = %#x", r0)
	}
	if ctx[xabi.CtxOffVerdict] != 7 {
		t.Error("verdict not written back")
	}
}

func TestEngineFaults(t *testing.T) {
	asm := NewAssembler(ArchX64)
	asm.Emit(Inst{Op: OpMovRI, A: 1, Ext: 0x40})
	asm.Emit(Inst{Op: OpLoad, A: 0, B: 1, C: 8, Imm: 0})
	asm.Emit(Inst{Op: OpRet})
	bin := asm.Finish("t", "d", 0)
	p, _ := DecodeProgram(bin.Arch, bin.Code)
	if _, err := (&Engine{}).Run(p, &xabi.Env{}, nil); !errors.Is(err, xabi.ErrFault) {
		t.Errorf("err = %v", err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(ArchA64, make([]byte, 23)); err == nil {
		t.Error("odd-length a64 accepted")
	}
	if _, err := Decode(ArchX64, []byte{OpMovRI, 0, 0}); err == nil {
		t.Error("truncated x64 accepted")
	}
	bad := make([]byte, a64InstSize)
	bad[0] = 0x7F
	if _, err := Decode(ArchA64, bad); err == nil {
		t.Error("unknown opcode accepted")
	}
	if _, err := Decode(Arch(9), nil); err == nil {
		t.Error("unknown arch accepted")
	}
}

func TestParseArch(t *testing.T) {
	for s, want := range map[string]Arch{"x64": ArchX64, "amd64": ArchX64, "arm64": ArchA64, "aarch64": ArchA64} {
		got, err := ParseArch(s)
		if err != nil || got != want {
			t.Errorf("ParseArch(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseArch("mips"); err == nil {
		t.Error("unknown arch name accepted")
	}
}

func TestAluProperty(t *testing.T) {
	// 32-bit ops always zero-extend.
	f := func(op8 uint8, a, b uint64) bool {
		op := op8 % (AluMov + 1)
		out := alu(op, true, a, b)
		return out == uint64(uint32(out))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinaryClone(t *testing.T) {
	asm := NewAssembler(ArchX64)
	asm.EmitReloc(Inst{Op: OpCall}, RelocHelper, "helper:x")
	asm.Emit(Inst{Op: OpRet})
	bin := asm.Finish("t", "d", 0)
	cp := bin.Clone()
	cp.Code[0] = 0xFF
	cp.Relocs[0].Symbol = "changed"
	if bin.Code[0] == 0xFF || bin.Relocs[0].Symbol == "changed" {
		t.Error("clone shares storage")
	}
}

func TestPatchImm(t *testing.T) {
	for _, arch := range []Arch{ArchX64, ArchA64} {
		asm := NewAssembler(arch)
		asm.Emit(Inst{Op: OpMovRI, A: 0, Ext: 1})
		idx := asm.Emit(Inst{Op: OpJmp, C: CondAlways, Imm: -1}) // placeholder target
		asm.Emit(Inst{Op: OpRet})
		asm.PatchImm(idx, 2)
		bin := asm.Finish("t", "d", 0)
		insts, err := Decode(arch, bin.Code)
		if err != nil {
			t.Fatal(err)
		}
		if insts[1].Imm != 2 {
			t.Errorf("%v: patched imm = %d", arch, insts[1].Imm)
		}
	}
}
