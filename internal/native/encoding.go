package native

import "fmt"

// a64InstSize is the fixed instruction width of the A64 encoding.
const a64InstSize = 24

// hasImm reports whether an op carries a 4-byte immediate field.
func hasImm(op uint8) bool {
	switch op {
	case OpAluRI, OpLoad, OpStore, OpStoreI, OpJmp, OpJmpI:
		return true
	}
	return false
}

// hasExt reports whether an op carries an 8-byte extended operand.
func hasExt(op uint8) bool {
	switch op {
	case OpMovRI, OpStoreI, OpJmpI, OpCall:
		return true
	}
	return false
}

// x64Size returns the encoded size of op under the variable-length encoding.
func x64Size(op uint8) int {
	n := 5
	if hasImm(op) {
		n += 4
	}
	if hasExt(op) {
		n += 8
	}
	return n
}

// Assembler emits instructions in one architecture's encoding, recording
// relocation offsets for 64-bit operand fields that the linker must patch.
type Assembler struct {
	arch   Arch
	code   []byte
	relocs []Reloc
	n      int // ops emitted
}

// NewAssembler creates an assembler for arch.
func NewAssembler(arch Arch) *Assembler {
	return &Assembler{arch: arch}
}

// Len returns the number of ops emitted so far (the next op's index).
func (s *Assembler) Len() int { return s.n }

// extOffset returns the byte offset of the ext field for an op emitted at
// byte position pos.
func (s *Assembler) extOffset(op uint8, pos int) uint32 {
	if s.arch == ArchA64 {
		return uint32(pos + 16)
	}
	off := pos + 5
	if hasImm(op) {
		off += 4
	}
	return uint32(off)
}

// Emit appends one instruction and returns its op index.
func (s *Assembler) Emit(i Inst) int {
	pos := len(s.code)
	switch s.arch {
	case ArchA64:
		var b [a64InstSize]byte
		b[0], b[1], b[2], b[3], b[4] = i.Op, i.Flags, i.A, i.B, i.C
		putLeU32(b[8:12], uint32(i.Imm))
		putLeU64(b[16:24], i.Ext)
		s.code = append(s.code, b[:]...)
	case ArchX64:
		s.code = append(s.code, i.Op, i.Flags, i.A, i.B, i.C)
		if hasImm(i.Op) {
			var b [4]byte
			putLeU32(b[:], uint32(i.Imm))
			s.code = append(s.code, b[:]...)
		}
		if hasExt(i.Op) {
			var b [8]byte
			putLeU64(b[:], i.Ext)
			s.code = append(s.code, b[:]...)
		}
	default:
		panic(fmt.Sprintf("native: assembler for unknown arch %v", s.arch))
	}
	_ = pos
	s.n++
	return s.n - 1
}

// EmitReloc appends an instruction whose Ext is unresolved: the field is
// filled with PlaceholderValue and a relocation entry is recorded.
func (s *Assembler) EmitReloc(i Inst, kind RelocKind, symbol string) int {
	if !hasExt(i.Op) {
		panic("native: EmitReloc on op without ext field")
	}
	pos := len(s.code)
	i.Ext = PlaceholderValue
	idx := s.Emit(i)
	s.relocs = append(s.relocs, Reloc{
		Offset: s.extOffset(i.Op, pos),
		Kind:   kind,
		Symbol: symbol,
	})
	return idx
}

// PatchImm rewrites the imm32 field of the op at index idx (used to
// back-patch forward jump targets).
func (s *Assembler) PatchImm(idx int, imm int32) {
	pos, op := s.locate(idx)
	var off int
	if s.arch == ArchA64 {
		off = pos + 8
	} else {
		off = pos + 5
	}
	if !hasImm(op) {
		panic("native: PatchImm on op without imm field")
	}
	putLeU32(s.code[off:off+4], uint32(imm))
}

// locate returns the byte position and opcode of op index idx.
func (s *Assembler) locate(idx int) (int, uint8) {
	if s.arch == ArchA64 {
		pos := idx * a64InstSize
		return pos, s.code[pos]
	}
	pos := 0
	for i := 0; i < idx; i++ {
		pos += x64Size(s.code[pos])
	}
	return pos, s.code[pos]
}

// Finish produces the relocatable binary.
func (s *Assembler) Finish(name, sourceDigest string, stackSize uint32) *Binary {
	return &Binary{
		Arch:         s.arch,
		Code:         s.code,
		Relocs:       s.relocs,
		StackSize:    stackSize,
		SourceDigest: sourceDigest,
		Name:         name,
	}
}

// Decode parses machine code into the semantic instruction sequence.
// Both encodings decode to identical Inst streams.
func Decode(arch Arch, code []byte) ([]Inst, error) {
	var out []Inst
	switch arch {
	case ArchA64:
		if len(code)%a64InstSize != 0 {
			return nil, fmt.Errorf("native: a64 code length %d not a multiple of %d", len(code), a64InstSize)
		}
		for pos := 0; pos < len(code); pos += a64InstSize {
			b := code[pos : pos+a64InstSize]
			out = append(out, Inst{
				Op:    b[0],
				Flags: b[1],
				A:     b[2],
				B:     b[3],
				C:     b[4],
				Imm:   int32(leU32(b[8:12])),
				Ext:   leU64(b[16:24]),
			})
		}
	case ArchX64:
		pos := 0
		for pos < len(code) {
			if pos+5 > len(code) {
				return nil, fmt.Errorf("native: truncated x64 instruction at %d", pos)
			}
			i := Inst{Op: code[pos], Flags: code[pos+1], A: code[pos+2], B: code[pos+3], C: code[pos+4]}
			sz := x64Size(i.Op)
			if pos+sz > len(code) {
				return nil, fmt.Errorf("native: truncated x64 operands at %d", pos)
			}
			p := pos + 5
			if hasImm(i.Op) {
				i.Imm = int32(leU32(code[p : p+4]))
				p += 4
			}
			if hasExt(i.Op) {
				i.Ext = leU64(code[p : p+8])
			}
			out = append(out, i)
			pos += sz
		}
	default:
		return nil, fmt.Errorf("native: unknown arch %v", arch)
	}
	for idx, i := range out {
		if i.Op > OpRet {
			return nil, fmt.Errorf("native: op %d: unknown opcode %#x", idx, i.Op)
		}
	}
	return out, nil
}

// Link resolves a binary's relocations in place using resolve, which maps
// (kind, symbol) to an absolute node address. This is the §3.3 binary
// rewriting step — on the control plane it runs against the GOT snapshot
// exposed when the CodeFlow was created.
func Link(b *Binary, resolve func(kind RelocKind, symbol string) (uint64, bool)) error {
	for _, r := range b.Relocs {
		if int(r.Offset)+8 > len(b.Code) {
			return fmt.Errorf("native: reloc offset %d beyond code of %d bytes", r.Offset, len(b.Code))
		}
		addr, ok := resolve(r.Kind, r.Symbol)
		if !ok {
			return fmt.Errorf("native: unresolved %v symbol %q", r.Kind, r.Symbol)
		}
		putLeU64(b.Code[r.Offset:], addr)
	}
	return nil
}
