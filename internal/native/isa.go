// Package native defines the simulated machine ISA that RDX's JIT compilers
// target, plus the execution engine data-plane sandboxes run it with.
//
// Real RDX JIT-compiles extensions to x86-64 or AArch64 and relies on binary
// rewriting (GOT patching) to link them into each node's address space. A Go
// process cannot execute raw machine code from a byte slice, so this package
// supplies the closest faithful equivalent: two *architecturally distinct*
// byte encodings of a common semantic operation set —
//
//   - ArchX64: variable-length encoding (5-byte header, optional imm32 and
//     imm64 operand fields), x86-flavored;
//   - ArchA64: fixed 24-byte macro-ops, ARM-flavored.
//
// Because the encodings differ, relocation tables differ per architecture:
// the control plane must compile per target arch and patch arch-specific
// byte offsets, exactly the workflow of the paper's §3.2–3.3. Unresolved
// operands (helper addresses, map handles, GOT entries) are carried as
// 64-bit immediate fields listed in the binary's relocation table.
package native

import (
	"errors"
	"fmt"
)

// Arch identifies a target instruction encoding.
type Arch uint8

const (
	// ArchX64 is the variable-length (x86-flavored) encoding.
	ArchX64 Arch = 1
	// ArchA64 is the fixed-width (ARM-flavored) encoding.
	ArchA64 Arch = 2
)

func (a Arch) String() string {
	switch a {
	case ArchX64:
		return "x64"
	case ArchA64:
		return "a64"
	default:
		return fmt.Sprintf("arch(%d)", uint8(a))
	}
}

// ParseArch converts a string name to an Arch.
func ParseArch(s string) (Arch, error) {
	switch s {
	case "x64", "x86_64", "amd64":
		return ArchX64, nil
	case "a64", "arm64", "aarch64":
		return ArchA64, nil
	}
	return 0, fmt.Errorf("native: unknown architecture %q", s)
}

// Semantic opcodes.
const (
	OpNop    uint8 = 0x00
	OpMovRR  uint8 = 0x01 // a ← b
	OpMovRI  uint8 = 0x02 // a ← ext (64-bit immediate; relocatable)
	OpAluRR  uint8 = 0x03 // a ← a <c> b
	OpAluRI  uint8 = 0x04 // a ← a <c> imm32 (sign-extended)
	OpLoad   uint8 = 0x05 // a ← mem[b + imm32]  (c = width)
	OpStore  uint8 = 0x06 // mem[b + imm32] ← a  (c = width)
	OpStoreI uint8 = 0x07 // mem[b + imm32] ← ext (c = width; ext sign-sig imm)
	OpJmp    uint8 = 0x08 // if a <c> b goto imm32 (op index); c=CondAlways: unconditional
	OpJmpI   uint8 = 0x09 // if a <c> ext goto imm32
	OpCall   uint8 = 0x0A // call helper at absolute address ext (relocatable)
	OpRet    uint8 = 0x0B // return r0
)

// ALU sub-operations (the c field of OpAluRR/RI).
const (
	AluAdd uint8 = iota
	AluSub
	AluMul
	AluDiv
	AluMod
	AluOr
	AluAnd
	AluXor
	AluLsh
	AluRsh
	AluArsh
	AluNeg  // unary; b/imm ignored
	AluMov  // a ← operand (used for 32-bit movs)
	AluDivS // signed division; /0 → 0, MinInt64/-1 wraps to MinInt64
)

// Jump conditions (the c field of OpJmp/OpJmpI).
const (
	CondAlways uint8 = iota
	CondEQ
	CondNE
	CondGT // unsigned
	CondGE
	CondLT
	CondLE
	CondSET // a & b != 0
	CondSGT // signed
	CondSGE
	CondSLT
	CondSLE
)

// Flag bits.
const (
	Flag32 uint8 = 1 << 0 // 32-bit ALU operation (result zero-extended)
)

// Inst is one decoded semantic instruction.
type Inst struct {
	Op    uint8
	Flags uint8
	A     uint8 // primary register
	B     uint8 // secondary register
	C     uint8 // ALU sub-op, condition, or memory width
	Imm   int32 // displacement or jump target (op index)
	Ext   uint64
}

// String renders a compact disassembly.
func (i Inst) String() string {
	switch i.Op {
	case OpNop:
		return "nop"
	case OpMovRR:
		return fmt.Sprintf("mov r%d, r%d", i.A, i.B)
	case OpMovRI:
		return fmt.Sprintf("mov r%d, %#x", i.A, i.Ext)
	case OpAluRR:
		return fmt.Sprintf("alu%d r%d, r%d", i.C, i.A, i.B)
	case OpAluRI:
		return fmt.Sprintf("alu%d r%d, %d", i.C, i.A, i.Imm)
	case OpLoad:
		return fmt.Sprintf("ld%d r%d, [r%d%+d]", i.C, i.A, i.B, i.Imm)
	case OpStore:
		return fmt.Sprintf("st%d [r%d%+d], r%d", i.C, i.B, i.Imm, i.A)
	case OpStoreI:
		return fmt.Sprintf("sti%d [r%d%+d], %d", i.C, i.B, i.Imm, int64(i.Ext))
	case OpJmp:
		return fmt.Sprintf("j%d r%d, r%d → %d", i.C, i.A, i.B, i.Imm)
	case OpJmpI:
		return fmt.Sprintf("ji%d r%d, %d → %d", i.C, i.A, int64(i.Ext), i.Imm)
	case OpCall:
		return fmt.Sprintf("call %#x", i.Ext)
	case OpRet:
		return "ret"
	default:
		return fmt.Sprintf("op%#x", i.Op)
	}
}

// Relocation kinds.
type RelocKind uint8

const (
	// RelocHelper patches the 64-bit operand with the node's address for a
	// helper function (resolved through the node GOT).
	RelocHelper RelocKind = 1
	// RelocMap patches the operand with the runtime address of an XState
	// map deployed on the node.
	RelocMap RelocKind = 2
	// RelocGlobal patches the operand with an arbitrary node GOT symbol.
	RelocGlobal RelocKind = 3
)

func (k RelocKind) String() string {
	switch k {
	case RelocHelper:
		return "helper"
	case RelocMap:
		return "map"
	case RelocGlobal:
		return "global"
	default:
		return "reloc?"
	}
}

// Reloc is one relocation entry: the byte offset (within Code) of a 64-bit
// little-endian operand field to patch, and the symbol that resolves it.
type Reloc struct {
	Offset uint32
	Kind   RelocKind
	Symbol string
}

// Binary is a compiled, relocatable extension: the paper's "instrumented
// binary + symbol table" artifact stored in the control-plane registry.
type Binary struct {
	Arch      Arch
	Code      []byte
	Relocs    []Reloc
	StackSize uint32
	// SourceDigest ties the binary back to the extension IR it was
	// compiled from (the registry cache key).
	SourceDigest string
	// Name is carried for diagnostics.
	Name string
}

// Clone deep-copies the binary; linking mutates Code, so the registry hands
// out clones.
func (b *Binary) Clone() *Binary {
	cp := *b
	cp.Code = append([]byte(nil), b.Code...)
	cp.Relocs = append([]Reloc(nil), b.Relocs...)
	return &cp
}

// Linked reports whether all relocations have been resolved (patched Code
// no longer carries the placeholder marker).
func (b *Binary) Linked() bool {
	for _, r := range b.Relocs {
		if int(r.Offset)+8 > len(b.Code) {
			return false
		}
		if leU64(b.Code[r.Offset:]) == PlaceholderValue {
			return false
		}
	}
	return true
}

// PlaceholderValue marks unresolved 64-bit operands in freshly compiled
// binaries. The linker overwrites it; the engine traps on it.
const PlaceholderValue uint64 = 0xDEAD_C0DE_DEAD_C0DE

// ErrUnlinked is returned when executing a binary with unresolved
// relocations.
var ErrUnlinked = errors.New("native: binary has unresolved relocations")

func leU64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func leU32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putLeU32(b []byte, v uint32) {
	_ = b[3]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
