package native

import (
	"errors"
	"fmt"

	"rdx/internal/xabi"
)

// ErrFuel is returned when execution exceeds the instruction budget.
var ErrFuel = errors.New("native: fuel exhausted")

// Program is decoded, executable machine code. Decoding is the engine's
// icache-fill analogue: the data plane performs it lazily on first execution
// of newly injected code and caches the result by code version.
type Program struct {
	Arch  Arch
	Insts []Inst
}

// DecodeProgram decodes code for execution.
func DecodeProgram(arch Arch, code []byte) (*Program, error) {
	insts, err := Decode(arch, code)
	if err != nil {
		return nil, err
	}
	return &Program{Arch: arch, Insts: insts}, nil
}

// Engine executes decoded native programs. Helper calls resolve through
// HelperAddrs: the map from absolute node addresses (as patched by the
// linker from the GOT) to implementations. An Engine is safe for concurrent
// use; per-invocation state lives on the Run stack.
type Engine struct {
	// HelperAddrs maps linked helper addresses to implementations.
	HelperAddrs map[uint64]xabi.HelperFn
	// Fuel bounds executed instructions per invocation (default 1<<22).
	Fuel int
}

const nregs = 11

// Run executes p with ctx mapped at xabi.CtxBase, returning R0.
func (e *Engine) Run(p *Program, env *xabi.Env, ctx []byte) (uint64, error) {
	if len(ctx) > xabi.CtxSize {
		return 0, fmt.Errorf("native: ctx of %d bytes exceeds %d", len(ctx), xabi.CtxSize)
	}
	ctxBuf := make([]byte, xabi.CtxSize)
	copy(ctxBuf, ctx)
	var stack [xabi.StackSize]byte

	runEnv := *env
	runEnv.Mem = xabi.NewOverlay(env.Mem, ctxBuf, stack[:])

	r0, err := e.exec(p, &runEnv)
	if err != nil {
		return 0, err
	}
	copy(ctx, ctxBuf[:len(ctx)])
	return r0, nil
}

func (e *Engine) exec(p *Program, env *xabi.Env) (uint64, error) {
	fuel := e.Fuel
	if fuel == 0 {
		fuel = 1 << 22
	}
	var regs [nregs]uint64
	regs[1] = xabi.CtxBase
	regs[10] = xabi.StackBase

	insts := p.Insts
	pc := 0
	for {
		if pc < 0 || pc >= len(insts) {
			return 0, fmt.Errorf("native: pc %d out of range", pc)
		}
		if fuel--; fuel < 0 {
			return 0, ErrFuel
		}
		i := insts[pc]
		if int(i.A) >= nregs || int(i.B) >= nregs {
			return 0, fmt.Errorf("native: pc %d: register out of range", pc)
		}

		switch i.Op {
		case OpNop:
			pc++

		case OpMovRR:
			regs[i.A] = regs[i.B]
			pc++

		case OpMovRI:
			if i.Ext == PlaceholderValue {
				return 0, fmt.Errorf("%w: pc %d", ErrUnlinked, pc)
			}
			regs[i.A] = i.Ext
			pc++

		case OpAluRR:
			regs[i.A] = alu(i.C, i.Flags&Flag32 != 0, regs[i.A], regs[i.B])
			pc++

		case OpAluRI:
			regs[i.A] = alu(i.C, i.Flags&Flag32 != 0, regs[i.A], uint64(int64(i.Imm)))
			pc++

		case OpLoad:
			addr := regs[i.B] + uint64(int64(i.Imm))
			v, err := env.Mem.ReadMem(addr, int(i.C))
			if err != nil {
				return 0, fmt.Errorf("native: pc %d: %w", pc, err)
			}
			regs[i.A] = v
			pc++

		case OpStore:
			addr := regs[i.B] + uint64(int64(i.Imm))
			if err := env.Mem.WriteMem(addr, int(i.C), regs[i.A]); err != nil {
				return 0, fmt.Errorf("native: pc %d: %w", pc, err)
			}
			pc++

		case OpStoreI:
			addr := regs[i.B] + uint64(int64(i.Imm))
			if err := env.Mem.WriteMem(addr, int(i.C), i.Ext); err != nil {
				return 0, fmt.Errorf("native: pc %d: %w", pc, err)
			}
			pc++

		case OpJmp:
			if i.C == CondAlways || cond(i.C, regs[i.A], regs[i.B]) {
				pc = int(i.Imm)
			} else {
				pc++
			}

		case OpJmpI:
			if cond(i.C, regs[i.A], i.Ext) {
				pc = int(i.Imm)
			} else {
				pc++
			}

		case OpCall:
			if i.Ext == PlaceholderValue {
				return 0, fmt.Errorf("%w: pc %d (call)", ErrUnlinked, pc)
			}
			fn, ok := e.HelperAddrs[i.Ext]
			if !ok {
				return 0, fmt.Errorf("native: pc %d: call to unmapped address %#x", pc, i.Ext)
			}
			r0, err := fn(env, regs[1], regs[2], regs[3], regs[4], regs[5])
			if err != nil {
				return 0, fmt.Errorf("native: pc %d: helper: %w", pc, err)
			}
			regs[0] = r0
			pc++

		case OpRet:
			return regs[0], nil

		default:
			return 0, fmt.Errorf("native: pc %d: unknown op %#x", pc, i.Op)
		}
	}
}

func alu(op uint8, is32 bool, a, b uint64) uint64 {
	if is32 {
		a = uint64(uint32(a))
		b = uint64(uint32(b))
	}
	var out uint64
	switch op {
	case AluAdd:
		out = a + b
	case AluSub:
		out = a - b
	case AluMul:
		out = a * b
	case AluDiv:
		if is32 {
			if uint32(b) == 0 {
				out = 0
			} else {
				out = uint64(uint32(a) / uint32(b))
			}
		} else if b == 0 {
			out = 0
		} else {
			out = a / b
		}
	case AluMod:
		if is32 {
			if uint32(b) == 0 {
				out = a
			} else {
				out = uint64(uint32(a) % uint32(b))
			}
		} else if b == 0 {
			out = a
		} else {
			out = a % b
		}
	case AluOr:
		out = a | b
	case AluAnd:
		out = a & b
	case AluXor:
		out = a ^ b
	case AluLsh:
		if is32 {
			out = uint64(uint32(a) << (b & 31))
		} else {
			out = a << (b & 63)
		}
	case AluRsh:
		if is32 {
			out = uint64(uint32(a) >> (b & 31))
		} else {
			out = a >> (b & 63)
		}
	case AluArsh:
		if is32 {
			out = uint64(uint32(int32(a) >> (b & 31)))
		} else {
			out = uint64(int64(a) >> (b & 63))
		}
	case AluNeg:
		out = -a
	case AluMov:
		out = b
	case AluDivS:
		out = divS(is32, a, b)
	default:
		out = 0
	}
	if is32 {
		out = uint64(uint32(out))
	}
	return out
}

// divS is signed division with total semantics: x/0 = 0 and
// MinInt/-1 wraps (no trap), consistently across widths.
func divS(is32 bool, a, b uint64) uint64 {
	if is32 {
		ai, bi := int64(int32(uint32(a))), int64(int32(uint32(b)))
		if bi == 0 {
			return 0
		}
		return uint64(uint32(int32(ai / bi)))
	}
	ai, bi := int64(a), int64(b)
	if bi == 0 {
		return 0
	}
	if ai == -1<<63 && bi == -1 {
		return uint64(ai) // wrap
	}
	return uint64(ai / bi)
}

func cond(c uint8, a, b uint64) bool {
	switch c {
	case CondEQ:
		return a == b
	case CondNE:
		return a != b
	case CondGT:
		return a > b
	case CondGE:
		return a >= b
	case CondLT:
		return a < b
	case CondLE:
		return a <= b
	case CondSET:
		return a&b != 0
	case CondSGT:
		return int64(a) > int64(b)
	case CondSGE:
		return int64(a) >= int64(b)
	case CondSLT:
		return int64(a) < int64(b)
	case CondSLE:
		return int64(a) <= int64(b)
	default:
		return false
	}
}
