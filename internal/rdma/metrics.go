package rdma

import (
	"rdx/internal/telemetry"
)

// opNames maps wire opcodes to the labels used in metric names and traces.
var opNames = [...]string{
	OpRead:         "read",
	OpWrite:        "write",
	OpCAS:          "cas",
	OpFetchAdd:     "fetch_add",
	OpWriteImm:     "write_imm",
	OpQueryMRs:     "query_mrs",
	OpBatch:        "batch",
	OpChainTrigger: "chain_trigger",
	OpRotateMR:     "rotate_mr",
}

// OpName returns the human label for a wire opcode ("read", "batch", ...).
func OpName(op uint8) string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return "unknown"
}

// WireMetrics is the verb-level accounting surface shared by initiator QPs
// and target endpoints: per-opcode verb counters, byte counters, and
// completion-latency histograms, all drawn from a telemetry.Registry by
// name. Because instruments are registry-owned, every QP built with the
// same metrics (including each generation behind a ReconnQP) feeds the SAME
// counters — counts accumulate across reconnects with no double-counting
// and no resets.
//
// Initiators use Verbs/Lat for posted-verb completions plus Timeouts,
// Reconnects, and Replays; endpoints use Verbs/Lat for served verbs plus
// Doorbells. BytesOut/BytesIn are frame payload bytes leaving/entering the
// component. A nil *WireMetrics is a valid no-op receiver on every record
// helper, so uninstrumented QPs pay one nil check.
type WireMetrics struct {
	verbs [len(opNames)]*telemetry.Counter
	errs  *telemetry.Counter
	lat   [len(opNames)]*telemetry.Histogram

	bytesOut   *telemetry.Counter
	bytesIn    *telemetry.Counter
	timeouts   *telemetry.Counter
	reconnects *telemetry.Counter
	replays    *telemetry.Counter
	doorbells  *telemetry.Counter
}

// NewWireMetrics binds a metrics set to registry instruments under prefix
// (conventionally "rdma.qp" for initiators, "rdma.ep" for endpoints):
//
//	<prefix>.verbs.<op>    counter  verbs completed/served, by opcode
//	<prefix>.lat.<op>      histogram  completion/service latency (ns)
//	<prefix>.errors        counter  verbs that completed with an error
//	<prefix>.bytes_out     counter  payload bytes sent
//	<prefix>.bytes_in      counter  payload bytes received
//	<prefix>.timeouts      counter  verbs abandoned on deadline
//	<prefix>.reconnects    counter  successful redials (ReconnQP)
//	<prefix>.replays       counter  verbs replayed on a fresh connection
//	<prefix>.doorbells     counter  WRITE_WITH_IMM handlers fired (endpoint)
func NewWireMetrics(reg *telemetry.Registry, prefix string) *WireMetrics {
	m := &WireMetrics{
		errs:       reg.Counter(prefix + ".errors"),
		bytesOut:   reg.Counter(prefix + ".bytes_out"),
		bytesIn:    reg.Counter(prefix + ".bytes_in"),
		timeouts:   reg.Counter(prefix + ".timeouts"),
		reconnects: reg.Counter(prefix + ".reconnects"),
		replays:    reg.Counter(prefix + ".replays"),
		doorbells:  reg.Counter(prefix + ".doorbells"),
	}
	for op, name := range opNames {
		if name == "" {
			continue
		}
		m.verbs[op] = reg.Counter(prefix + ".verbs." + name)
		m.lat[op] = reg.Histogram(prefix + ".lat." + name)
	}
	return m
}

// verbDone records one completed verb: count, latency, inbound payload, and
// the error tally.
func (m *WireMetrics) verbDone(op uint8, latNanos int64, bytesIn int, err error) {
	if m == nil {
		return
	}
	if int(op) >= len(opNames) || m.verbs[op] == nil {
		return
	}
	m.verbs[op].Inc()
	m.lat[op].Record(latNanos)
	if bytesIn > 0 {
		m.bytesIn.Add(uint64(bytesIn))
	}
	if err != nil {
		m.errs.Inc()
	}
}

// served records one verb executed by an endpoint: count, service time
// (latency-model charge + arena work), request payload in, response payload
// out, and the error tally.
func (m *WireMetrics) served(op uint8, latNanos int64, in, out int, err error) {
	if m == nil {
		return
	}
	if int(op) >= len(opNames) || m.verbs[op] == nil {
		return
	}
	m.verbs[op].Inc()
	m.lat[op].Record(latNanos)
	if in > 0 {
		m.bytesIn.Add(uint64(in))
	}
	if out > 0 {
		m.bytesOut.Add(uint64(out))
	}
	if err != nil {
		m.errs.Inc()
	}
}

func (m *WireMetrics) sent(bytes int) {
	if m != nil && bytes > 0 {
		m.bytesOut.Add(uint64(bytes))
	}
}

func (m *WireMetrics) timedOut() {
	if m != nil {
		m.timeouts.Inc()
	}
}

func (m *WireMetrics) reconnected() {
	if m != nil {
		m.reconnects.Inc()
	}
}

func (m *WireMetrics) replayed() {
	if m != nil {
		m.replays.Inc()
	}
}

func (m *WireMetrics) doorbellFired() {
	if m != nil {
		m.doorbells.Inc()
	}
}
