package rdma

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"rdx/internal/mem"
	"rdx/internal/telemetry"
	"rdx/internal/verbchain"
)

// Verb-chain offload (DESIGN.md §15). A chain region is a window of the
// target's arena holding one pre-posted verbchain program plus its trigger
// count, status word, and register file (layout: verbchain.Off*). The
// initiator arms it with ordinary WRITEs (verbchain.EncodeRegion) and fires
// it with OpChainTrigger; the endpoint then runs the whole program on its
// DMA goroutine — zero initiator round trips between trigger and effect,
// and, like every verb, zero involvement of the target's simulated cores.
//
// Fencing composes exactly as for single verbs: every chain-op rkey is
// re-resolved against the live MR table at step-execution time, so a
// RotateMR lands on a resident chain mid-flight (the step fails
// StatusRevoked); a rotated chain-REGION rkey fails the trigger itself with
// StatusAccessErr before any step runs; and a program Guard re-reads a
// fencing word before every step, so an epoch bump revokes the remainder
// of an executing chain.

// ChainResult is the outcome of one OpChainTrigger: the chain's packed
// status word (also persisted in the region at verbchain.OffStatus), the
// steps executed, and the post-increment trigger count this firing saw.
type ChainResult struct {
	Status  uint64 // verbchain.PackStatus(code, pc)
	Steps   uint64
	Trigger uint64
}

// Code returns the chain's status code (verbchain.Status*).
func (r ChainResult) Code() uint8 { return verbchain.StatusCode(r.Status) }

// PC returns the op index the chain finished or faulted at.
func (r ChainResult) PC() int { return verbchain.StatusPC(r.Status) }

// Errors surfaced by the client for failed chain executions. Both are
// deterministic remote outcomes, not transport errors: the trigger itself
// completed, the resident program did not.
var (
	// ErrChainFault marks a chain stopped by a failing step: bounds or
	// permission violation, a lost CAS with AbortIfLost, an exhausted WAIT,
	// or malformed resident bytes.
	ErrChainFault = errors.New("rdma: verb chain faulted")
	// ErrChainRevoked marks a chain stopped by fencing: its guard word no
	// longer matched or a step's rkey had been rotated away mid-chain.
	ErrChainRevoked = errors.New("rdma: verb chain revoked by fencing")
)

// chainRespLen is the OpChainTrigger response body: status, steps, trigger.
const chainRespLen = 24

// chainInstruments is the process-wide chain execution instrument family,
// bound alongside the wire instruments (BindWireInstruments):
//
//	rdma.chain.triggers   counter    chain executions fired
//	rdma.chain.steps      histogram  steps executed per firing
//	rdma.chain.faults     counter    firings that ended StatusFault
//	rdma.chain.revoked    counter    firings revoked by fencing
//	rdma.chain.doorbells  counter    completion doorbells rung by chains
type chainInstruments struct {
	triggers  *telemetry.Counter
	steps     *telemetry.Histogram
	faults    *telemetry.Counter
	revoked   *telemetry.Counter
	doorbells *telemetry.Counter
}

var chainInstr atomic.Pointer[chainInstruments]

func bindChainInstruments(reg *telemetry.Registry) {
	chainInstr.Store(&chainInstruments{
		triggers:  reg.Counter("rdma.chain.triggers"),
		steps:     reg.Histogram("rdma.chain.steps"),
		faults:    reg.Counter("rdma.chain.faults"),
		revoked:   reg.Counter("rdma.chain.revoked"),
		doorbells: reg.Counter("rdma.chain.doorbells"),
	})
}

func recordChain(res verbchain.Result, doorbell bool) {
	ci := chainInstr.Load()
	if ci == nil {
		return
	}
	ci.triggers.Inc()
	ci.steps.Record(int64(res.Steps))
	switch res.Code() {
	case verbchain.StatusFault:
		ci.faults.Inc()
	case verbchain.StatusRevoked:
		ci.revoked.Inc()
	}
	if doorbell {
		ci.doorbells.Inc()
	}
}

// endpointEnv adapts the endpoint's arena + live MR table to the verbchain
// executor. Every access re-resolves its rkey under the MR lock, so a
// rotation that lands between two steps revokes the rest of the chain —
// identical semantics to a rotation landing between two single verbs.
type endpointEnv struct {
	e *Endpoint
}

// resolve maps an rkey to its live MR, or a verbchain.ErrRevoked-class
// error when the key has been rotated or deregistered away.
func (v endpointEnv) resolve(rkey uint32, addr mem.Addr, perm Perm) (*MR, error) {
	v.e.mu.RLock()
	mr, ok := v.e.mrs[rkey]
	v.e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: rkey %#x", verbchain.ErrRevoked, rkey)
	}
	if mr.Perm&perm != perm {
		return nil, fmt.Errorf("rdma: chain step permission denied on rkey %#x", rkey)
	}
	if addr < mr.Addr || mr.Len < 8 || addr-mr.Addr > mr.Len-8 {
		return nil, fmt.Errorf("rdma: chain step target %#x out of bounds", addr)
	}
	return mr, nil
}

func (v endpointEnv) LoadQword(rkey uint32, addr uint64) (uint64, error) {
	if _, err := v.resolve(rkey, mem.Addr(addr), PermRead); err != nil {
		return 0, err
	}
	return v.e.arena.ReadQword(mem.Addr(addr))
}

func (v endpointEnv) StoreQword(rkey uint32, addr uint64, val uint64) error {
	if _, err := v.resolve(rkey, mem.Addr(addr), PermWrite); err != nil {
		return err
	}
	return v.e.arena.WriteQword(mem.Addr(addr), val)
}

func (v endpointEnv) CompareAndSwap(rkey uint32, addr uint64, old, new uint64) (uint64, bool, error) {
	if _, err := v.resolve(rkey, mem.Addr(addr), PermAtomic); err != nil {
		return 0, false, err
	}
	return v.e.arena.CompareAndSwap(mem.Addr(addr), old, new)
}

func (v endpointEnv) FetchAdd(rkey uint32, addr uint64, delta uint64) (uint64, error) {
	if _, err := v.resolve(rkey, mem.Addr(addr), PermAtomic); err != nil {
		return 0, err
	}
	return v.e.arena.FetchAdd(mem.Addr(addr), delta)
}

func (v endpointEnv) Yield() { runtime.Gosched() }

var _ verbchain.Env = endpointEnv{}

// execChain serves one OpChainTrigger. The region rkey is resolved ONCE
// here — a rotated chain region fails the whole trigger with
// StatusAccessErr, the stale resident program provably never executes. The
// trigger count is bumped with a real arena FETCH-ADD (concurrent triggers
// from any number of QPs serialize there), the resident program is decoded
// fresh per firing (resident bytes are data, not trusted state), and the
// register file round-trips through the region so state persists across
// firings. out must hold chainRespLen bytes.
func (e *Endpoint) execChain(q *request, out []byte) (uint8, []byte) {
	e.mu.RLock()
	mr, ok := e.mrs[q.rkey]
	e.mu.RUnlock()
	if !ok {
		return StatusAccessErr, nil
	}
	// Triggering needs the full permission set: the chain mutates its own
	// trigger/status/register words and reads its program back.
	if mr.Perm&PermAll != PermAll {
		return StatusAccessErr, nil
	}
	base := q.addr
	if base < mr.Addr || uint64(verbchain.OffProg) > mr.Len || base-mr.Addr > mr.Len-uint64(verbchain.OffProg) {
		return StatusBoundsErr, nil
	}
	limit := mr.Len - (base - mr.Addr) // region bytes available at base

	prev, err := e.arena.FetchAdd(base+verbchain.OffTrigger, 1)
	if err != nil {
		return StatusOpErr, nil
	}
	trigger := prev + 1

	finish := func(res verbchain.Result, rang bool) (uint8, []byte) {
		// Persist the outcome even when the program never ran: pollers of
		// the status word see faults from malformed resident bytes too.
		_ = e.arena.WriteQword(base+verbchain.OffStatus, res.Status)
		recordChain(res, rang)
		binary.BigEndian.PutUint64(out[0:8], res.Status)
		binary.BigEndian.PutUint64(out[8:16], res.Steps)
		binary.BigEndian.PutUint64(out[16:24], trigger)
		return StatusOK, out[:chainRespLen]
	}

	progLen, err := e.arena.ReadQword(base + verbchain.OffProgLen)
	if err != nil || progLen == 0 || progLen > verbchain.MaxProgBytes ||
		uint64(verbchain.OffProg)+progLen > limit {
		return finish(verbchain.Result{Status: verbchain.PackStatus(verbchain.StatusFault, 0)}, false)
	}
	progBytes, err := e.arena.Read(base+verbchain.OffProg, int(progLen))
	if err != nil {
		return finish(verbchain.Result{Status: verbchain.PackStatus(verbchain.StatusFault, 0)}, false)
	}
	prog, err := verbchain.Decode(progBytes)
	if err != nil {
		return finish(verbchain.Result{Status: verbchain.PackStatus(verbchain.StatusFault, 0)}, false)
	}

	var regs [verbchain.NRegs]uint64
	for i := range regs {
		if regs[i], err = e.arena.ReadQword(base + verbchain.OffRegs + mem.Addr(8*i)); err != nil {
			return finish(verbchain.Result{Status: verbchain.PackStatus(verbchain.StatusFault, 0)}, false)
		}
	}
	regs[verbchain.ArgReg] = q.delta

	res := verbchain.Execute(prog, &regs, trigger, endpointEnv{e})

	for i := range regs {
		_ = e.arena.WriteQword(base+verbchain.OffRegs+mem.Addr(8*i), regs[i])
	}

	rang := false
	if res.Code() == verbchain.StatusOK && prog.Doorbell != nil {
		db := prog.Doorbell
		// The doorbell target is fencing-checked like any step: a rotated
		// rkey silently swallows the ring (the chain itself succeeded).
		if _, derr := (endpointEnv{e}).resolve(db.RKey, mem.Addr(db.Addr), PermWrite); derr == nil {
			e.fireDoorbells(db.Imm, mem.Addr(db.Addr), nil)
			rang = true
		}
	}
	return finish(res, rang)
}

// decodeChainResult parses an OpChainTrigger response body and maps the
// chain outcome to its typed error.
func decodeChainResult(data []byte) (ChainResult, error) {
	if len(data) != chainRespLen {
		return ChainResult{}, fmt.Errorf("rdma: bad CHAIN_TRIGGER response (%d bytes)", len(data))
	}
	r := ChainResult{
		Status:  binary.BigEndian.Uint64(data[0:8]),
		Steps:   binary.BigEndian.Uint64(data[8:16]),
		Trigger: binary.BigEndian.Uint64(data[16:24]),
	}
	switch r.Code() {
	case verbchain.StatusOK:
		return r, nil
	case verbchain.StatusRevoked:
		return r, fmt.Errorf("%w (pc %d)", ErrChainRevoked, r.PC())
	default:
		return r, fmt.Errorf("%w (pc %d)", ErrChainFault, r.PC())
	}
}

// ChainTrigger fires the chain resident at (rkey, addr); arg lands in the
// chain's argument register (verbchain.ArgReg) before the program runs.
func (qp *QP) ChainTrigger(rkey uint32, addr mem.Addr, arg uint64) (ChainResult, error) {
	return qp.ChainTriggerCtx(context.Background(), rkey, addr, arg)
}

// ChainTriggerCtx is ChainTrigger bounded by ctx. A rotated chain-region
// rkey fails with ErrAccess; a chain stopped by fencing mid-flight returns
// ErrChainRevoked; a failing step returns ErrChainFault. The ChainResult
// is meaningful whenever the trigger itself completed.
func (qp *QP) ChainTriggerCtx(ctx context.Context, rkey uint32, addr mem.Addr, arg uint64) (ChainResult, error) {
	c, err := qp.callCtx(ctx, request{op: OpChainTrigger, rkey: rkey, addr: addr, delta: arg})
	if err != nil {
		return ChainResult{}, err
	}
	return decodeChainResult(c.Data)
}

// RotateMR remotely re-keys the named region on the target endpoint,
// returning the new rkey. The old rkey — held by anyone, including a
// pre-posted chain's ops — fails StatusAccessErr from this point on.
func (qp *QP) RotateMR(name string) (uint32, error) {
	return qp.RotateMRCtx(context.Background(), name)
}

// RotateMRCtx is RotateMR bounded by ctx.
func (qp *QP) RotateMRCtx(ctx context.Context, name string) (uint32, error) {
	c, err := qp.callCtx(ctx, request{op: OpRotateMR, data: []byte(name)})
	if err != nil {
		return 0, err
	}
	if len(c.Data) != 4 {
		return 0, fmt.Errorf("rdma: bad ROTATE_MR response (%d bytes)", len(c.Data))
	}
	return binary.BigEndian.Uint32(c.Data), nil
}

// ChainTriggerCtx implements Verbs. A trigger is NOT idempotent (it bumps
// the trigger count and executes the resident program), so it follows the
// atomic replay rules: replayed only when provably unposted, ErrUncertain
// when its completion is lost after posting.
func (r *ReconnQP) ChainTriggerCtx(ctx context.Context, rkey uint32, addr mem.Addr, arg uint64) (res ChainResult, err error) {
	err = r.doCtx(ctx, false, func(qp *QP, rk func(uint32) uint32) error {
		var err error
		res, err = qp.ChainTriggerCtx(ctx, rk(rkey), addr, arg)
		if err != nil && (errors.Is(err, ErrChainFault) || errors.Is(err, ErrChainRevoked)) {
			// Deterministic chain outcomes are not transport errors; they
			// must not trigger a redial.
			return err
		}
		return err
	})
	return res, err
}

// ChainTrigger is ChainTriggerCtx without a bounding context.
func (r *ReconnQP) ChainTrigger(rkey uint32, addr mem.Addr, arg uint64) (ChainResult, error) {
	return r.ChainTriggerCtx(context.Background(), rkey, addr, arg)
}

// RotateMRCtx implements Verbs. Rotation is not idempotent (a replayed
// rotate would re-key a second time, invalidating the rkey the first
// rotation returned), so a lost completion surfaces as ErrUncertain. On
// success the wrapper adopts the new rkey as the region's live key and
// returns the caller's STABLE virtual rkey — existing handles keep
// working, while any peer holding the old real rkey is fenced.
func (r *ReconnQP) RotateMRCtx(ctx context.Context, name string) (uint32, error) {
	var newKey uint32
	err := r.doCtx(ctx, false, func(qp *QP, _ func(uint32) uint32) error {
		var err error
		newKey, err = qp.RotateMRCtx(ctx, name)
		return err
	})
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	virt := r.adoptLocked(name, newKey)
	r.current[name] = newKey
	r.mu.Unlock()
	return virt, nil
}

// RotateMR is RotateMRCtx without a bounding context.
func (r *ReconnQP) RotateMR(name string) (uint32, error) {
	return r.RotateMRCtx(context.Background(), name)
}
