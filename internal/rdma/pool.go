package rdma

import (
	"sync"
	"sync/atomic"

	"rdx/internal/telemetry"
)

// frameHdr is the 4-byte big-endian length prefix preceding every frame.
const frameHdr = 4

// RaceEnabled reports whether the race detector is compiled in. Exported
// because sync.Pool deliberately drops a fraction of puts under the race
// detector, so pool hit-rate assertions (rdxbench serve, the alloc gates)
// must relax themselves in race builds.
const RaceEnabled = raceEnabled

// classSizes are the frame-pool size classes. A borrow is served from the
// smallest class that fits; the top class covers a MaxFrame payload plus
// its length prefix so even writeFrame's assembled [hdr|payload] image is
// poolable. Classes are coarse on purpose: steady-state traffic touches one
// or two classes, and a coarse ladder keeps the per-class pools hot.
var classSizes = [...]int{512, 8 << 10, 128 << 10, 1 << 20, 4 << 20, MaxFrame + frameHdr}

var framePools [len(classSizes)]sync.Pool

// Pool accounting. hits/misses are process-wide (the arena is shared by
// every QP and endpoint in the process); borrows tracks buffers currently
// out of the pool, which the leak tests pin to zero at quiesce.
var (
	poolHits    atomic.Uint64
	poolMisses  atomic.Uint64
	poolBorrows atomic.Int64
)

// FrameBuf is one borrowed, reference-counted wire buffer. The borrower
// starts with one reference; Release returns the buffer to its size-class
// pool when the count reaches zero. Ownership rules (DESIGN.md §12): the
// bytes are valid only while a reference is held — any component that wants
// to keep payload bytes past its synchronous scope must either Retain (and
// later Release) the frame or copy out.
type FrameBuf struct {
	b    []byte // class-size backing array
	n    int    // live payload length
	cls  int32  // size class, -1 for oversize one-offs (never pooled)
	refs atomic.Int32
}

// Bytes returns the live payload view. Valid until the last Release.
func (f *FrameBuf) Bytes() []byte { return f.b[:f.n] }

// Retain adds a reference for a component that keeps the frame beyond the
// borrower's scope. Must be called while at least one reference is held.
func (f *FrameBuf) Retain() {
	if f.refs.Add(1) <= 1 {
		panic("rdma: Retain of a released FrameBuf")
	}
}

// Release drops one reference; the last release returns the buffer to its
// pool. Releasing more times than retained panics — a double release means
// two owners think they hold the frame, which is a correctness bug, not a
// recoverable condition.
func (f *FrameBuf) Release() {
	r := f.refs.Add(-1)
	if r > 0 {
		return
	}
	if r < 0 {
		panic("rdma: FrameBuf over-released")
	}
	poolBorrows.Add(-1)
	if f.cls >= 0 {
		framePools[f.cls].Put(f)
	}
}

func classFor(n int) int {
	for c, sz := range classSizes {
		if n <= sz {
			return c
		}
	}
	return -1
}

// getFrame borrows a buffer with capacity for n bytes (refcount 1, length
// pre-set to n).
func getFrame(n int) *FrameBuf {
	c := classFor(n)
	var f *FrameBuf
	if c >= 0 {
		if v := framePools[c].Get(); v != nil {
			f = v.(*FrameBuf)
			poolHits.Add(1)
			if wi := wireInstr.Load(); wi != nil {
				wi.hits.Inc()
			}
		}
	}
	if f == nil {
		poolMisses.Add(1)
		if wi := wireInstr.Load(); wi != nil {
			wi.misses.Inc()
		}
		size := n
		if c >= 0 {
			size = classSizes[c]
		}
		f = &FrameBuf{b: make([]byte, size), cls: int32(c)}
	}
	f.n = n
	f.refs.Store(1)
	poolBorrows.Add(1)
	return f
}

// wireInstruments is the registry binding for the process-wide wire
// instrument family:
//
//	rdma.wire.pool.hits       counter    frame borrows served from a pool
//	rdma.wire.pool.misses     counter    frame borrows that allocated
//	rdma.wire.frames_per_poll histogram  frames drained per poll pass
//	                                     (endpoint serve + QP completion)
type wireInstruments struct {
	hits, misses  *telemetry.Counter
	framesPerPoll *telemetry.Histogram
}

var wireInstr atomic.Pointer[wireInstruments]

// BindWireInstruments attaches the process-wide wire-path instruments
// (frame-pool hits/misses, frames-per-poll) to reg. The frame arena is
// shared by every QP and endpoint in the process, so the binding is global;
// the last binder wins. The package-level counters keep counting whether or
// not a registry is bound (see SnapshotPoolStats).
func BindWireInstruments(reg *telemetry.Registry) {
	wireInstr.Store(&wireInstruments{
		hits:          reg.Counter("rdma.wire.pool.hits"),
		misses:        reg.Counter("rdma.wire.pool.misses"),
		framesPerPoll: reg.Histogram("rdma.wire.frames_per_poll"),
	})
	bindChainInstruments(reg)
	bindTunerGauge(reg)
}

// recordPoll accounts one poll pass that drained n frames.
func recordPoll(n int) {
	if wi := wireInstr.Load(); wi != nil {
		wi.framesPerPoll.Record(int64(n))
	}
}

// PoolStats is a snapshot of the frame arena's counters.
type PoolStats struct {
	Hits        uint64 // borrows served from a size-class pool
	Misses      uint64 // borrows that had to allocate
	Outstanding int64  // buffers currently borrowed (0 at quiesce)
}

// HitRate is hits / (hits + misses), or 1 when nothing was borrowed.
func (s PoolStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 1
	}
	return float64(s.Hits) / float64(total)
}

// Delta returns the stats accumulated since an earlier snapshot.
func (s PoolStats) Delta(since PoolStats) PoolStats {
	return PoolStats{
		Hits:        s.Hits - since.Hits,
		Misses:      s.Misses - since.Misses,
		Outstanding: s.Outstanding,
	}
}

// SnapshotPoolStats reads the process-wide frame-arena counters.
func SnapshotPoolStats() PoolStats {
	return PoolStats{
		Hits:        poolHits.Load(),
		Misses:      poolMisses.Load(),
		Outstanding: poolBorrows.Load(),
	}
}
