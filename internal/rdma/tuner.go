package rdma

import (
	"math"
	"sync/atomic"

	"rdx/internal/telemetry"
)

// The writev threshold — the payload size above which a WRITE's data goes
// out as the second element of a net.Buffers writev instead of being
// memcpy'd into the assembled frame — used to be the fixed writevMin. The
// right crossover point is where the copy cost overtakes the cost of a
// second vector element, and that depends on the transport: net.Pipe (no
// writev, Buffers degrades to two sequential Writes) wants a much higher
// threshold than a real socket. wireTuner adapts it from an EWMA of
// observed per-write syscall cost: small writes estimate the fixed
// per-write overhead, large writes estimate the per-byte (copy+transfer)
// cost, and the threshold settles where one extra write-overhead equals
// the bytes' copy cost. Process-wide, like the frame pools: every QP's
// writes feed one estimate of the same host's syscall economics.
type wireTuner struct {
	overheadNs atomic.Uint64 // float64 bits: EWMA fixed cost of one write
	perByteNs  atomic.Uint64 // float64 bits: EWMA cost per payload byte
	threshold  atomic.Int64  // current writev threshold, bytes
}

const (
	// tunerDefault is the threshold before any samples arrive (the old
	// fixed writevMin).
	tunerDefault = 256 << 10
	// tunerMin/tunerMax clamp the adapted threshold: below 64 KiB the
	// second vector element never pays for itself, above 1 MiB the copy
	// dominates any conceivable syscall overhead.
	tunerMin = 64 << 10
	tunerMax = 1 << 20
	// tunerSmallMax bounds the writes used to estimate fixed overhead.
	tunerSmallMax = 4 << 10
	// tunerLargeMin bounds the writes used to estimate per-byte cost.
	tunerLargeMin = 64 << 10
	// tunerAlpha is the EWMA smoothing factor.
	tunerAlpha = 0.2
)

var tuner = newWireTuner()

func newWireTuner() *wireTuner {
	t := &wireTuner{}
	t.threshold.Store(tunerDefault)
	return t
}

func ewma(cell *atomic.Uint64, sample float64) float64 {
	for {
		oldBits := cell.Load()
		old := math.Float64frombits(oldBits)
		next := sample
		if oldBits != 0 {
			next = old + tunerAlpha*(sample-old)
		}
		if cell.CompareAndSwap(oldBits, math.Float64bits(next)) {
			return next
		}
	}
}

// observe feeds one completed write of n payload bytes that took durNs.
func (t *wireTuner) observe(n int, durNs int64) {
	if durNs <= 0 {
		return
	}
	switch {
	case n <= tunerSmallMax:
		ewma(&t.overheadNs, float64(durNs))
	case n >= tunerLargeMin:
		over := math.Float64frombits(t.overheadNs.Load())
		per := (float64(durNs) - over) / float64(n)
		if per <= 0 {
			return
		}
		perAvg := ewma(&t.perByteNs, per)
		overAvg := math.Float64frombits(t.overheadNs.Load())
		if overAvg <= 0 || perAvg <= 0 {
			return
		}
		// Crossover: payload sizes whose copy cost exceeds one extra
		// write's fixed overhead should writev instead of copy.
		th := int64(overAvg / perAvg)
		if th < tunerMin {
			th = tunerMin
		}
		if th > tunerMax {
			th = tunerMax
		}
		t.threshold.Store(th)
		if g := tunerGauge.Load(); g != nil {
			g.Set(th)
		}
	}
}

// writevThreshold is the live crossover the send path consults per write.
func (t *wireTuner) writevThreshold() int { return int(t.threshold.Load()) }

var tunerGauge atomic.Pointer[telemetry.Gauge]

// bindTunerGauge exposes the live threshold as rdma.wire.writev_threshold;
// bound with the rest of the process-wide wire instruments.
func bindTunerGauge(reg *telemetry.Registry) {
	g := reg.Gauge("rdma.wire.writev_threshold")
	g.Set(tuner.threshold.Load())
	tunerGauge.Store(g)
}
