package rdma

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"rdx/internal/faultnet"
	"rdx/internal/mem"
)

// swallowQP returns a QP whose peer accepts frames but never replies, so
// posted verbs stay in flight forever.
func swallowQP(t *testing.T) *QP {
	t.Helper()
	client, server := net.Pipe()
	go func() {
		br := bufio.NewReader(server)
		for {
			f, err := readFrame(br)
			if err != nil {
				return
			}
			f.Release()
		}
	}()
	qp := NewQP(client)
	t.Cleanup(func() {
		qp.Close()
		server.Close()
	})
	return qp
}

// TestPostCloseRaceNeverLosesCompletion is the regression for the
// post/failAll race: post used to check the sticky error and insert into
// pending in separate pendMu sections, so a verb registered between a
// failAll drain and the insert blocked its caller forever. Run with -race.
func TestPostCloseRaceNeverLosesCompletion(t *testing.T) {
	for iter := 0; iter < 60; iter++ {
		client, server := net.Pipe()
		go func() {
			br := bufio.NewReader(server)
			for {
				f, err := readFrame(br)
				if err != nil {
					return
				}
				f.Release()
			}
		}()
		qp := NewQP(client)

		const writers = 4
		chans := make(chan (<-chan Completion), writers*8)
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 8; i++ {
					ch, err := qp.PostWrite(1, 0, []byte{1})
					if err != nil {
						return // refused before the wire: nothing to wait on
					}
					chans <- ch
				}
			}()
		}
		go qp.Close()
		wg.Wait()
		server.Close()
		close(chans)

		// Every successfully posted verb MUST complete: a lost completion
		// here is exactly the hang this test pins down.
		for ch := range chans {
			select {
			case <-ch:
			case <-time.After(5 * time.Second):
				t.Fatalf("iter %d: completion lost to the post/failAll race", iter)
			}
		}
	}
}

func TestVerbDeadlineFailsWithErrTimeout(t *testing.T) {
	qp := swallowQP(t)
	qp.SetTimeout(30 * time.Millisecond)
	start := time.Now()
	err := qp.Write(1, 0, []byte("never acked"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("deadline took %v to fire", el)
	}
	if !IsTransportErr(err) {
		t.Error("ErrTimeout not classified as a transport error")
	}
}

func TestContextCancelUnblocksVerb(t *testing.T) {
	qp := swallowQP(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := qp.ReadCtx(ctx, 1, 0, 8)
	if !errors.Is(err, ErrTimeout) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrTimeout wrapping context.Canceled", err)
	}
}

func TestWriteBatchHonorsDeadline(t *testing.T) {
	qp := swallowQP(t)
	qp.SetTimeout(30 * time.Millisecond)
	ops := []BatchOp{
		{RKey: 1, Addr: 0, Data: []byte("a")},
		{RKey: 1, Addr: 8, Data: []byte("b")},
	}
	if err := qp.WriteBatch(ops); !errors.Is(err, ErrTimeout) {
		t.Fatalf("batch err = %v, want ErrTimeout", err)
	}
}

// TestDoorbellStraddlesWindowStart covers the fixed overlap check: a WRITE
// starting below the registered window whose payload spans into it must
// fire, and a write stopping exactly at the window start must not.
func TestDoorbellStraddlesWindowStart(t *testing.T) {
	ep := NewEndpoint(mem.NewArena(4096), nil)
	var mu sync.Mutex
	var fired []mem.Addr
	ep.RegisterDoorbell(100, 50, func(_ uint32, addr mem.Addr, _ []byte) {
		mu.Lock()
		fired = append(fired, addr)
		mu.Unlock()
	})

	ep.fireDoorbells(1, 90, make([]byte, 20)) // [90,110) straddles the start → fires
	ep.fireDoorbells(2, 95, make([]byte, 5))  // [95,100) stops at the boundary → no
	ep.fireDoorbells(3, 150, make([]byte, 8)) // starts at the window end → no
	ep.fireDoorbells(4, 149, make([]byte, 1)) // last byte of the window → fires
	ep.fireDoorbells(5, 149, nil)             // zero-length ring at last byte → fires
	ep.fireDoorbells(6, 150, nil)             // zero-length ring past the end → no

	mu.Lock()
	defer mu.Unlock()
	want := []mem.Addr{90, 149, 149}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
}

func TestDoorbellOverlapOverflowSafe(t *testing.T) {
	ep := NewEndpoint(mem.NewArena(16), nil)
	fired := 0
	top := ^mem.Addr(0) - 9
	ep.RegisterDoorbell(top, 10, func(uint32, mem.Addr, []byte) { fired++ })
	// d.addr+d.len wraps to 0; the subtraction form must still hit writes
	// inside the window and nothing else.
	ep.fireDoorbells(1, ^mem.Addr(0)-5, make([]byte, 2))
	if fired != 1 {
		t.Errorf("in-window write near the address-space top fired %d times, want 1", fired)
	}
	ep.fireDoorbells(2, 0, make([]byte, 8))
	if fired != 1 {
		t.Errorf("write at 0 fired a doorbell registered at the top of the address space")
	}
}

func TestWriteImmStraddlingDoorbellBoundaryFires(t *testing.T) {
	_, ep, qp := newTestRig(t, 4096, nil)
	mr, _ := ep.RegisterMR("all", 0, 4096, PermAll)
	fired := make(chan struct{}, 1)
	ep.RegisterDoorbell(128, 64, func(uint32, mem.Addr, []byte) { fired <- struct{}{} })
	// Payload [120, 136) enters the [128, 192) window from below.
	if err := qp.WriteImm(mr.RKey, 120, 7, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("doorbell never fired for a write straddling the window start")
	}
}

// logCapture is a concurrency-safe Endpoint.SetLogf sink.
type logCapture struct {
	mu    sync.Mutex
	lines []string
}

func (lc *logCapture) logf(format string, args ...interface{}) {
	lc.mu.Lock()
	lc.lines = append(lc.lines, fmt.Sprintf(format, args...))
	lc.mu.Unlock()
}

func (lc *logCapture) snapshot() []string {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return append([]string(nil), lc.lines...)
}

// TestMalformedFrameTearsDownConnection: a frame that fails decodeRequest
// must move the QP to error state (connection drop) — not produce a reply
// with a bogus id — and the endpoint must log it and keep serving others.
func TestMalformedFrameTearsDownConnection(t *testing.T) {
	arena := mem.NewArena(4096)
	ep := NewEndpoint(arena, nil)
	lc := &logCapture{}
	ep.SetLogf(lc.logf)
	ep.RegisterMR("all", 0, 4096, PermAll)
	fab := NewFabric()
	l, err := fab.Listen("n")
	if err != nil {
		t.Fatal(err)
	}
	go ep.Serve(l)
	defer ep.Close()

	conn, err := fab.Dial("n")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	if err := writeFrame(bw, []byte{99, 0, 0}); err != nil { // unknown op, truncated
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 16)); err == nil {
		t.Fatal("endpoint replied to a malformed frame instead of tearing down the QP")
	}

	// The endpoint is still healthy for other QPs.
	qp, err := fab.DialQP("n")
	if err != nil {
		t.Fatal(err)
	}
	defer qp.Close()
	if _, err := qp.QueryMRs(); err != nil {
		t.Fatalf("endpoint unhealthy after malformed frame: %v", err)
	}

	found := false
	for _, line := range lc.snapshot() {
		if strings.Contains(line, "malformed") {
			found = true
		}
	}
	if !found {
		t.Errorf("malformed frame not logged; lines: %v", lc.snapshot())
	}
}

func TestCleanDisconnectNotLogged(t *testing.T) {
	ep := NewEndpoint(mem.NewArena(64), nil)
	lc := &logCapture{}
	ep.SetLogf(lc.logf)
	fab := NewFabric()
	l, _ := fab.Listen("n")
	go ep.Serve(l)
	defer ep.Close()

	conn, err := fab.Dial("n")
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	time.Sleep(50 * time.Millisecond)
	if lines := lc.snapshot(); len(lines) != 0 {
		t.Errorf("clean EOF produced log noise: %v", lines)
	}
}

func TestTruncatedFrameLogged(t *testing.T) {
	ep := NewEndpoint(mem.NewArena(64), nil)
	lc := &logCapture{}
	ep.SetLogf(lc.logf)
	fab := NewFabric()
	l, _ := fab.Listen("n")
	go ep.Serve(l)
	defer ep.Close()

	conn, err := fab.Dial("n")
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte{0, 0}) // half a length prefix
	conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, line := range lc.snapshot() {
			if strings.Contains(line, "read error") {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("truncated frame never logged; lines: %v", lc.snapshot())
}

// chaosDialer dials an in-process fabric name through faultnet wrappers,
// keeping each connection so tests can kill a specific generation.
type chaosDialer struct {
	fab  *Fabric
	name string

	mu    sync.Mutex
	conns []*faultnet.Conn
}

func (d *chaosDialer) dial() (net.Conn, error) {
	c, err := d.fab.Dial(d.name)
	if err != nil {
		return nil, err
	}
	fc := faultnet.Wrap(c, faultnet.Options{})
	d.mu.Lock()
	d.conns = append(d.conns, fc)
	d.mu.Unlock()
	return fc, nil
}

func (d *chaosDialer) last() *faultnet.Conn {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.conns[len(d.conns)-1]
}

// reconnRig boots an endpoint with one all-permission MR and a ReconnQP
// dialing it through killable faultnet connections.
func reconnRig(t *testing.T, arenaSize int) (*mem.Arena, *MR, *chaosDialer, *ReconnQP) {
	t.Helper()
	arena := mem.NewArena(arenaSize)
	ep := NewEndpoint(arena, nil)
	ep.SetLogf((&logCapture{}).logf) // chaos tests tear connections down on purpose
	mr, err := ep.RegisterMR("all", 0, arena.Size(), PermAll)
	if err != nil {
		t.Fatal(err)
	}
	fab := NewFabric()
	l, err := fab.Listen("n")
	if err != nil {
		t.Fatal(err)
	}
	go ep.Serve(l)

	d := &chaosDialer{fab: fab, name: "n"}
	r, err := NewReconnQP(ReconnConfig{Dial: d.dial, VerbTimeout: 2 * time.Second, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		r.Close()
		ep.Close()
	})
	return arena, mr, d, r
}

func TestReconnQPReplaysWriteAfterMidStreamKill(t *testing.T) {
	arena, mr, d, r := reconnRig(t, 1<<16)

	if err := r.Write(mr.RKey, 0, []byte("before")); err != nil {
		t.Fatal(err)
	}
	d.last().Kill()
	if err := r.Write(mr.RKey, 100, []byte("after")); err != nil {
		t.Fatalf("write after kill not replayed: %v", err)
	}
	if g := r.Generation(); g != 2 {
		t.Errorf("generation = %d, want 2", g)
	}
	if b, _ := arena.Read(100, 5); !bytes.Equal(b, []byte("after")) {
		t.Error("replayed write never landed")
	}
}

func TestReconnQPWriteBatchSurvivesTruncatedFrame(t *testing.T) {
	arena, mr, d, r := reconnRig(t, 1<<16)

	if err := r.Write(mr.RKey, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	// Arm a byte-triggered kill landing mid-frame of the upcoming batch:
	// the endpoint sees a truncated frame, the initiator a dead transport.
	fc := d.last()
	fc.SetKillAfterBytes(fc.BytesWritten() + 200)

	payload := bytes.Repeat([]byte{0xAB}, 4096)
	ops := []BatchOp{
		{RKey: mr.RKey, Addr: 1024, Data: payload},
		{RKey: mr.RKey, Addr: 8192, Data: []byte("tail")},
	}
	if err := r.WriteBatch(ops); err != nil {
		t.Fatalf("batch not replayed after truncated frame: %v", err)
	}
	if g := r.Generation(); g != 2 {
		t.Errorf("generation = %d, want 2", g)
	}
	if b, _ := arena.Read(1024, len(payload)); !bytes.Equal(b, payload) {
		t.Error("batch payload missing after replay")
	}
	if b, _ := arena.Read(8192, 4); !bytes.Equal(b, []byte("tail")) {
		t.Error("batch tail missing after replay")
	}
}

func TestReconnQPRemapsRkeysAcrossRestart(t *testing.T) {
	fab := NewFabric()
	arenaA := mem.NewArena(4096)
	epA := NewEndpoint(arenaA, nil)
	epA.SetLogf((&logCapture{}).logf)
	mrA, _ := epA.RegisterMR("all", 0, 4096, PermAll)
	lA, _ := fab.Listen("a")
	go epA.Serve(lA)
	defer epA.Close()

	// The "restarted" node: same region name, different rkey numbering.
	arenaB := mem.NewArena(4096)
	epB := NewEndpoint(arenaB, nil)
	epB.SetLogf((&logCapture{}).logf)
	epB.RegisterMR("pad", 0, 8, PermRead)
	mrB, _ := epB.RegisterMR("all", 0, 4096, PermAll)
	lB, _ := fab.Listen("b")
	go epB.Serve(lB)
	defer epB.Close()
	if mrA.RKey == mrB.RKey {
		t.Fatal("test setup: restarted endpoint must hand out a different rkey")
	}

	var mu sync.Mutex
	var calls int
	var conns []*faultnet.Conn
	dial := func() (net.Conn, error) {
		mu.Lock()
		calls++
		name := "a"
		if calls > 1 {
			name = "b"
		}
		mu.Unlock()
		c, err := fab.Dial(name)
		if err != nil {
			return nil, err
		}
		fc := faultnet.Wrap(c, faultnet.Options{})
		mu.Lock()
		conns = append(conns, fc)
		mu.Unlock()
		return fc, nil
	}
	r, err := NewReconnQP(ReconnConfig{Dial: dial, VerbTimeout: 2 * time.Second, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	mu.Lock()
	first := conns[0]
	mu.Unlock()
	first.Kill()

	// The caller still holds the generation-1 rkey; the replay must
	// translate it to the restarted endpoint's rkey for the same region.
	if err := r.Write(mrA.RKey, 64, []byte("remapped")); err != nil {
		t.Fatalf("write with stale rkey: %v", err)
	}
	if b, _ := arenaB.Read(64, 8); !bytes.Equal(b, []byte("remapped")) {
		t.Error("write did not land on the restarted endpoint")
	}
}

// TestReconnQPAtomicUncertain: an atomic whose completion is lost AFTER the
// post must surface ErrUncertain, never replay. The server answers MR
// discovery but severs the stream on the first atomic.
func TestReconnQPAtomicUncertain(t *testing.T) {
	helper := NewEndpoint(mem.NewArena(4096), nil)
	helper.RegisterMR("all", 0, 4096, PermAll)
	table := helper.encodeMRTable()

	serve := func(conn net.Conn) {
		br := bufio.NewReader(conn)
		bw := bufio.NewWriter(conn)
		for {
			f, err := readFrame(br)
			if err != nil {
				return
			}
			q, err := decodeRequest(f.Bytes())
			f.Release()
			if err != nil {
				return
			}
			if q.op == OpCAS || q.op == OpFetchAdd {
				conn.Close() // posted, executed or not — completion lost
				return
			}
			var data []byte
			if q.op == OpQueryMRs {
				data = table
			}
			writeFrame(bw, (&response{id: q.id, status: StatusOK, data: data}).encode())
			bw.Flush()
		}
	}
	dial := func() (net.Conn, error) {
		c, s := net.Pipe()
		go serve(s)
		return c, nil
	}
	r, err := NewReconnQP(ReconnConfig{Dial: dial, VerbTimeout: 2 * time.Second, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	mrs, err := r.QueryMRs()
	if err != nil || len(mrs) != 1 {
		t.Fatalf("QueryMRs: %v (%d MRs)", err, len(mrs))
	}
	_, err = r.FetchAdd(mrs[0].RKey, 0, 1)
	if !errors.Is(err, ErrUncertain) {
		t.Fatalf("lost atomic completion = %v, want ErrUncertain", err)
	}
	// Idempotent verbs keep working: the wrapper redials transparently.
	if err := r.Write(mrs[0].RKey, 0, []byte{1}); err != nil {
		t.Fatalf("write after uncertain atomic: %v", err)
	}
}

// TestReconnQPReplaysAtomicWhenProvablyUnposted: a post refused by the
// sticky error never reached the wire (ErrUnposted), so even an atomic is
// safe to replay — and must execute exactly once per successful call.
func TestReconnQPReplaysAtomicWhenProvablyUnposted(t *testing.T) {
	arena, mr, d, r := reconnRig(t, 4096)

	prev, err := r.FetchAdd(mr.RKey, 0, 1)
	if err != nil || prev != 0 {
		t.Fatalf("prime FetchAdd = %d, %v", prev, err)
	}

	d.last().Kill()
	// Wait for the inner QP's sticky error, so the next post is refused
	// before the wire rather than racing the teardown.
	r.mu.Lock()
	inner := r.qp
	r.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for {
		inner.pendMu.Lock()
		sticky := inner.err
		inner.pendMu.Unlock()
		if sticky != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sticky error never set after kill")
		}
		time.Sleep(time.Millisecond)
	}

	prev, err = r.FetchAdd(mr.RKey, 0, 1)
	if err != nil {
		t.Fatalf("provably-unposted atomic not replayed: %v", err)
	}
	if prev != 1 {
		t.Errorf("replayed FetchAdd prev = %d, want 1", prev)
	}
	if v, _ := arena.ReadQword(0); v != 2 {
		t.Errorf("counter = %d, want exactly 2 executions", v)
	}
}

func TestReconnQPCloseStopsRedial(t *testing.T) {
	_, mr, _, r := reconnRig(t, 4096)
	r.Close()
	if err := r.Write(mr.RKey, 0, []byte{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after Close = %v, want ErrClosed", err)
	}
	if _, err := r.FetchAdd(mr.RKey, 0, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("atomic after Close = %v, want ErrClosed", err)
	}
}
