package rdma

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rdx/internal/mem"
	"rdx/internal/telemetry"
)

// Completion is the result of an asynchronously posted verb, delivered on
// the QP's completion queue channel.
type Completion struct {
	ID     uint64
	Err    error
	Data   []byte // READ payload, or 8-byte old value for CAS/FETCH_ADD
	OldVal uint64 // decoded atomic result, valid for CAS/FETCH_ADD

	// View is non-nil only for verbs posted through the view-read path
	// (ReadFrameCtx): it is the pooled wire frame backing Data, retained
	// for the consumer, who must Release it. Ordinary verbs copy Data out
	// of the frame and leave View nil.
	View *FrameBuf
}

// Verbs is the initiator-side verb surface shared by a raw QP and the
// fault-tolerant ReconnQP wrapper, so higher layers (core.RemoteMemory,
// CodeFlow) run unchanged over either.
//
// The surface is context-first: every data verb takes a ctx that bounds the
// wait for its completion and carries the operation's trace ID
// (telemetry.WithTraceID) down to the wire, where it is stamped into the
// request header for the target endpoint to correlate. Both implementations
// also provide ctx-free convenience wrappers (Read, Write, ...) for callers
// with no deadline or trace to propagate.
type Verbs interface {
	ReadCtx(ctx context.Context, rkey uint32, addr mem.Addr, n int) ([]byte, error)
	WriteCtx(ctx context.Context, rkey uint32, addr mem.Addr, data []byte) error
	WriteImmCtx(ctx context.Context, rkey uint32, addr mem.Addr, imm uint32, data []byte) error
	WriteBatchCtx(ctx context.Context, ops []BatchOp) error
	CompareAndSwapCtx(ctx context.Context, rkey uint32, addr mem.Addr, old, new uint64) (prev uint64, err error)
	FetchAddCtx(ctx context.Context, rkey uint32, addr mem.Addr, delta uint64) (prev uint64, err error)
	ChainTriggerCtx(ctx context.Context, rkey uint32, addr mem.Addr, arg uint64) (ChainResult, error)
	RotateMRCtx(ctx context.Context, name string) (uint32, error)
	QueryMRs() ([]MR, error)
	Close() error
}

// QP is an initiator-side queue pair: it posts verbs to a remote endpoint
// and matches completions by request id. All methods are safe for
// concurrent use; the endpoint executes this QP's requests in post order.
type QP struct {
	conn net.Conn

	sendMu sync.Mutex
	nextID uint64

	// tmo is the per-verb deadline in nanoseconds (0 = none): synchronous
	// verbs whose completion does not arrive in time fail with ErrTimeout
	// instead of blocking forever on a dead fabric link.
	tmo atomic.Int64

	pendMu  sync.Mutex
	pending map[uint64]*pendingVerb
	err     error // sticky transport error
	done    chan struct{}

	// instr is the optional observability binding (metrics + tracer +
	// node label), swappable at runtime so ReconnQP can instrument each
	// generation while verbs are in flight on others.
	instr atomic.Pointer[qpInstr]
}

// pendingVerb is one posted-but-uncompleted verb: its completion channel
// plus what the completion path needs to account for it (opcode, post time,
// payload size, and originating trace).
//
// pendingVerbs are pooled: wait recycles one only when its channel is
// provably empty and no sender can still hold the pointer — either the
// completion was received, or the abandon removed the entry from the
// pending map before any completer saw it. Every other path (post-write
// failure after a concurrent drain, an in-flight send racing a timeout)
// leaks the verb to the GC rather than risk a recycled channel receiving a
// stale completion.
type pendingVerb struct {
	ch    chan Completion
	id    uint64
	op    uint8
	bytes int  // payload bytes carried by the verb (data out, or READ length)
	view  bool // deliver READ payload as a retained frame view, no copy
	start time.Time
	trace telemetry.TraceID
}

var pvPool = sync.Pool{New: func() interface{} {
	return &pendingVerb{ch: make(chan Completion, 1)}
}}

// qpInstr bundles a QP's observability hooks so they swap atomically.
type qpInstr struct {
	m    *WireMetrics
	tr   *telemetry.TraceRecorder
	node string
}

// SetInstruments attaches verb metrics and a trace recorder to the QP; node
// labels this QP's trace events (conventionally the target node's ID). Any
// argument may be nil. Safe to call concurrently with verbs in flight.
func (qp *QP) SetInstruments(m *WireMetrics, tr *telemetry.TraceRecorder, node string) {
	qp.instr.Store(&qpInstr{m: m, tr: tr, node: node})
}

// instruments returns the current observability binding (nil-safe fields).
func (qp *QP) instruments() qpInstr {
	if i := qp.instr.Load(); i != nil {
		return *i
	}
	return qpInstr{}
}

// NewQP wraps an established connection to an endpoint.
func NewQP(conn net.Conn) *QP {
	qp := &QP{
		conn:    conn,
		pending: make(map[uint64]*pendingVerb),
		done:    make(chan struct{}),
	}
	go qp.readLoop()
	return qp
}

// Dial connects a new QP to an endpoint over the given network address.
func Dial(network, addr string) (*QP, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewQP(conn), nil
}

// Close tears the QP down; outstanding posts complete with ErrClosed.
func (qp *QP) Close() error {
	err := qp.conn.Close()
	<-qp.done
	return err
}

// SetTimeout installs a default per-verb deadline: synchronous verbs posted
// after this call complete with ErrTimeout if no completion arrives within
// d. Zero disables the deadline (the default). Safe to call concurrently
// with verbs in flight.
func (qp *QP) SetTimeout(d time.Duration) { qp.tmo.Store(int64(d)) }

func (qp *QP) readLoop() {
	defer close(qp.done)
	br := bufio.NewReaderSize(qp.conn, 64<<10)
	frames := 0
	for {
		f, err := readFrame(br)
		if err != nil {
			qp.failAll(ErrClosed)
			return
		}
		resp, err := decodeResponse(f.Bytes())
		if err != nil {
			// A malformed response means the stream framing can no longer
			// be trusted: the QP enters the error state. Wrapping ErrClosed
			// keeps the failure in the reconnectable transport class.
			f.Release()
			qp.failAll(fmt.Errorf("%w: protocol error: %v", ErrClosed, err))
			qp.conn.Close()
			return
		}
		qp.pendMu.Lock()
		pv, ok := qp.pending[resp.id]
		delete(qp.pending, resp.id)
		qp.pendMu.Unlock()
		if ok {
			// Data is attached even on error completions: batch responses
			// carry per-sub-verb statuses the initiator uses to locate the
			// failure. resp.data aliases the pooled frame, so it is copied
			// out; plain write completions carry no data and stay
			// allocation-free.
			c := Completion{ID: resp.id, Err: statusErr(resp.status)}
			if len(resp.data) > 0 {
				if c.Err == nil && len(resp.data) == 8 {
					c.OldVal = binary.BigEndian.Uint64(resp.data)
				}
				if pv.view {
					// Zero-copy delivery: hand the consumer a retained
					// reference to the pooled frame; Data aliases it. The
					// consumer owns the extra reference (FrameView.Release).
					f.Retain()
					c.View = f
					c.Data = resp.data
				} else {
					c.Data = append([]byte(nil), resp.data...)
				}
			}
			qp.completed(pv, len(resp.data), c.Err)
			pv.ch <- c
		}
		f.Release()
		// Batched completion accounting: completions that arrived while we
		// were handling this one drain in the same pass.
		frames++
		if !frameBuffered(br) {
			recordPoll(frames)
			frames = 0
		}
	}
}

// completed accounts one finished verb: per-opcode count, completion
// latency, inbound payload, and a wire-layer trace span.
func (qp *QP) completed(pv *pendingVerb, bytesIn int, err error) {
	in := qp.instruments()
	in.m.verbDone(pv.op, time.Since(pv.start).Nanoseconds(), bytesIn, err)
	if in.tr != nil {
		bytes := pv.bytes
		if pv.op == OpRead {
			bytes = bytesIn
		}
		in.tr.Span(pv.trace, "wire", OpName(pv.op), in.node, pv.start, bytes, err)
	}
}

func (qp *QP) failAll(err error) {
	qp.pendMu.Lock()
	qp.err = err
	drained := make([]*pendingVerb, 0, len(qp.pending))
	for id, pv := range qp.pending {
		delete(qp.pending, id)
		drained = append(drained, pv)
	}
	qp.pendMu.Unlock()
	// Account BEFORE sending, outside pendMu: the moment the completion is
	// sent, the waiter may recycle pv into the pool, so pv must not be
	// touched after the send (same ordering readLoop follows).
	for _, pv := range drained {
		qp.completed(pv, 0, err)
		pv.ch <- Completion{ID: pv.id, Err: err}
	}
}

// post sends a request and returns its pending entry, whose channel will
// receive the completion. The sticky-error check and the pending-map insert
// happen in ONE pendMu critical section: a concurrent failAll either
// already set qp.err (and the registration is refused with ErrUnposted —
// the verb is provably unexecuted) or will observe the entry and fail it.
// Checking and inserting in separate sections lost completions: a verb
// registered after the failAll drain blocked its caller forever.
func (qp *QP) post(q request) (*pendingVerb, error) {
	pv := pvPool.Get().(*pendingVerb)
	pv.op = q.op
	pv.bytes = q.payloadBytes()
	pv.view = q.view
	pv.trace = telemetry.TraceID(q.trace)

	qp.sendMu.Lock()
	qp.nextID++
	q.id = qp.nextID
	pv.id = q.id

	qp.pendMu.Lock()
	if qp.err != nil {
		err := qp.err
		qp.pendMu.Unlock()
		qp.sendMu.Unlock()
		pvPool.Put(pv) // never registered: no sender can hold it
		return nil, fmt.Errorf("%w: %w", ErrUnposted, err)
	}
	pv.start = time.Now()
	qp.pending[q.id] = pv
	qp.pendMu.Unlock()

	sent, err := qp.writeRequest(&q)
	qp.sendMu.Unlock()

	if err != nil {
		qp.pendMu.Lock()
		_, present := qp.pending[q.id]
		delete(qp.pending, q.id)
		qp.pendMu.Unlock()
		if present {
			// We removed the entry before any completer saw it: the channel
			// is empty and no sender can hold pv. If a concurrent failAll
			// already drained it, a send is in flight — leak pv to the GC.
			pvPool.Put(pv)
		}
		return nil, err
	}
	qp.instruments().m.sent(sent)
	return pv, nil
}

// writeRequest assembles and emits one request frame while holding sendMu.
// Small frames are assembled [hdr|payload] in a pooled buffer and emitted
// as a single conn.Write — one syscall per verb, zero steady-state
// allocations. Write payloads above the tuner's adaptive threshold (see
// wireTuner; fixed 256 KiB before any samples arrive) skip the copy: the
// header+meta prefix rides in the pooled buffer and the caller's data
// slice is chained on via net.Buffers (writev on real sockets; on the
// in-process fabric's net.Pipe — which has no writev — Buffers degrades
// to sequential Writes, safe only because sendMu is held across the whole
// emission). Each emission's wall time feeds the tuner. Returns the
// encoded payload size.
func (qp *QP) writeRequest(q *request) (int, error) {
	size := q.encodedSize() // exact for the hot opcodes, upper bound otherwise
	if size > MaxFrame {
		return 0, fmt.Errorf("rdma: frame of %d bytes exceeds max %d", size, MaxFrame)
	}
	if (q.op == OpWrite || q.op == OpWriteImm) && len(q.data) >= tuner.writevThreshold() {
		f := getFrame(frameHdr + size - len(q.data))
		b := f.b[:0]
		b = binary.BigEndian.AppendUint32(b, uint32(size))
		b = q.appendMeta(b)
		bufs := net.Buffers{b, q.data}
		start := time.Now()
		_, err := bufs.WriteTo(qp.conn)
		tuner.observe(size, time.Since(start).Nanoseconds())
		f.Release()
		return size, err
	}
	f := getFrame(frameHdr + size)
	b := append(f.b[:0], 0, 0, 0, 0)
	b = q.appendTo(b)
	// Back-patch the prefix with the true length: encodedSize may
	// overestimate for cold opcodes.
	binary.BigEndian.PutUint32(b[:frameHdr], uint32(len(b)-frameHdr))
	start := time.Now()
	_, err := qp.conn.Write(b)
	tuner.observe(len(b)-frameHdr, time.Since(start).Nanoseconds())
	f.Release()
	return len(b) - frameHdr, err
}

// payloadBytes is the data volume a verb moves: outbound payload for writes
// and batches, the requested length for READ.
func (q *request) payloadBytes() int {
	switch q.op {
	case OpRead:
		return int(q.len)
	case OpBatch:
		n := 0
		for i := range q.subs {
			n += len(q.subs[i].data)
		}
		return n
	default:
		return len(q.data)
	}
}

// abandon removes a pending verb whose caller stopped waiting, reporting
// whether this call won the race against the completion path (the entry was
// still registered); a completion arriving later is dropped by readLoop as
// stale.
func (qp *QP) abandon(id uint64) bool {
	qp.pendMu.Lock()
	_, ok := qp.pending[id]
	delete(qp.pending, id)
	qp.pendMu.Unlock()
	return ok
}

// wait blocks for the completion of posted verb pv, bounded by ctx and the
// QP's default timeout. On timeout or cancellation the verb completes as
// ErrTimeout and its pending entry is abandoned — the caller never blocks
// on a dead fabric link. Note the verb may still execute remotely; only
// the completion is lost (real RC-QP semantics).
//
// wait owns pv's recycling; see pendingVerb for the rules.
func (qp *QP) wait(ctx context.Context, pv *pendingVerb) (Completion, error) {
	var timeout <-chan time.Time
	if d := time.Duration(qp.tmo.Load()); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case c := <-pv.ch:
		pvPool.Put(pv)
		return c, c.Err
	case <-timeout:
	case <-ctx.Done():
	}
	id := pv.id
	won := qp.abandon(id)
	// The completion may have raced the deadline; prefer it if present.
	// (The completion path accounts a raced completion itself — won is
	// false then.)
	select {
	case c := <-pv.ch:
		pvPool.Put(pv)
		return c, c.Err
	default:
	}
	err := error(ErrTimeout)
	if ctxErr := ctx.Err(); ctxErr != nil {
		err = fmt.Errorf("%w: %w", ErrTimeout, ctxErr)
	}
	if won {
		in := qp.instruments()
		in.m.timedOut()
		if in.tr != nil {
			in.tr.Span(pv.trace, "wire", OpName(pv.op), in.node, pv.start, pv.bytes, err)
		}
		// We removed the entry before any completer saw it: nothing can
		// ever send on pv.ch, so it is safe to recycle. If abandon lost
		// (won == false) and the recheck above was empty, a send is in
		// flight — pv must leak to the GC.
		pvPool.Put(pv)
	}
	return Completion{ID: id, Err: err}, err
}

func (qp *QP) call(q request) (Completion, error) {
	return qp.callCtx(context.Background(), q)
}

// callCtx posts one verb and waits for its completion under ctx plus the
// QP's default deadline. The ctx's trace ID (if any) is stamped into the
// request header so the target endpoint can correlate its service events.
func (qp *QP) callCtx(ctx context.Context, q request) (Completion, error) {
	q.trace = uint64(telemetry.TraceIDFrom(ctx))
	pv, err := qp.post(q)
	if err != nil {
		return Completion{}, err
	}
	return qp.wait(ctx, pv)
}

// Read performs a one-sided READ of n bytes at addr within the region rkey.
func (qp *QP) Read(rkey uint32, addr mem.Addr, n int) ([]byte, error) {
	return qp.ReadCtx(context.Background(), rkey, addr, n)
}

// ReadCtx is Read bounded by ctx (in addition to the QP deadline).
func (qp *QP) ReadCtx(ctx context.Context, rkey uint32, addr mem.Addr, n int) ([]byte, error) {
	c, err := qp.callCtx(ctx, request{op: OpRead, rkey: rkey, addr: addr, len: uint32(n)})
	if err != nil {
		return nil, err
	}
	return c.Data, nil
}

// ReadQword reads one 8-byte little-endian word (arena layout) at addr.
func (qp *QP) ReadQword(rkey uint32, addr mem.Addr) (uint64, error) {
	b, err := qp.Read(rkey, addr, 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// WriteSeg is the transparent segmentation unit for large WRITEs.
const WriteSeg = 1 << 20

// batchBudget caps one OpBatch frame's coalesced payload, keeping each
// frame well under MaxFrame while still amortizing the per-verb base cost
// across several segments.
const batchBudget = 4 << 20

// Write performs a one-sided WRITE of data at addr. Writes larger than the
// frame budget are segmented transparently and coalesced into OpBatch
// chains posted back-to-back in flight — the initiator never stalls on a
// per-segment round trip. Segments apply in order (but, as on hardware, the
// overall write is not atomic — use CAS-based commit protocols for
// atomicity).
func (qp *QP) Write(rkey uint32, addr mem.Addr, data []byte) error {
	return qp.WriteCtx(context.Background(), rkey, addr, data)
}

// WriteCtx is Write bounded by ctx (in addition to the QP deadline).
func (qp *QP) WriteCtx(ctx context.Context, rkey uint32, addr mem.Addr, data []byte) error {
	if len(data) <= WriteSeg {
		_, err := qp.callCtx(ctx, request{op: OpWrite, rkey: rkey, addr: addr, data: data})
		return err
	}
	ops := make([]BatchOp, 0, (len(data)+WriteSeg-1)/WriteSeg)
	for off := 0; off < len(data); off += WriteSeg {
		end := off + WriteSeg
		if end > len(data) {
			end = len(data)
		}
		ops = append(ops, BatchOp{RKey: rkey, Addr: addr + mem.Addr(off), Data: data[off:end]})
	}
	return qp.WriteBatchCtx(ctx, ops)
}

// BatchOp is one sub-verb of an OpBatch chain: a WRITE, or — when HasImm is
// set — a WRITE_WITH_IMM that rings the target's doorbell. A chain carries
// many writes but typically only its final op carries the immediate, so one
// doorbell covers the whole coalesced update.
type BatchOp struct {
	RKey   uint32
	Addr   mem.Addr
	Data   []byte
	Imm    uint32
	HasImm bool
}

// PostBatch posts one OpBatch chain asynchronously. The endpoint executes
// the sub-verbs in order, charges the latency model once for the coalesced
// payload, and returns a single completion for the chain.
func (qp *QP) PostBatch(ops []BatchOp) (<-chan Completion, error) {
	pv, err := qp.postBatch(context.Background(), ops)
	if err != nil {
		return nil, err
	}
	return pv.ch, nil
}

func (qp *QP) postBatch(ctx context.Context, ops []BatchOp) (*pendingVerb, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("rdma: empty batch")
	}
	if len(ops) > 0xFFFF {
		return nil, fmt.Errorf("rdma: batch of %d sub-verbs exceeds 65535", len(ops))
	}
	size := 0
	subs := make([]request, len(ops))
	for i, op := range ops {
		if len(op.Data) > WriteSeg {
			return nil, fmt.Errorf("rdma: batch sub-verb %d payload %d exceeds segment %d", i, len(op.Data), WriteSeg)
		}
		subs[i] = request{op: OpWrite, rkey: op.RKey, addr: op.Addr, data: op.Data}
		if op.HasImm {
			subs[i].op = OpWriteImm
			subs[i].imm = op.Imm
		}
		size += 21 + len(op.Data)
	}
	if size > MaxFrame-64 {
		return nil, fmt.Errorf("rdma: batch payload %d exceeds frame budget; split first", size)
	}
	return qp.post(request{op: OpBatch, trace: uint64(telemetry.TraceIDFrom(ctx)), subs: subs})
}

// WriteBatch coalesces ops into OpBatch frames of at most batchBudget
// payload each, posts them all without waiting, then drains completions —
// the pipelined bulk path QP.Write and the injection scheduler share. On
// failure the error identifies the first failed sub-verb.
func (qp *QP) WriteBatch(ops []BatchOp) error {
	return qp.WriteBatchCtx(context.Background(), ops)
}

// WriteBatchCtx is WriteBatch bounded by ctx; every chain's drain also
// honors the QP deadline, so a dead link fails the batch instead of
// wedging it.
func (qp *QP) WriteBatchCtx(ctx context.Context, ops []BatchOp) error {
	var chains []*pendingVerb
	start, size := 0, 0
	flush := func(end int) error {
		if end == start {
			return nil
		}
		pv, err := qp.postBatch(ctx, ops[start:end])
		if err != nil {
			return err
		}
		chains = append(chains, pv)
		start, size = end, 0
		return nil
	}
	var postErr error
	for i, op := range ops {
		if size > 0 && size+len(op.Data) > batchBudget {
			if postErr = flush(i); postErr != nil {
				break
			}
		}
		size += len(op.Data)
	}
	if postErr == nil {
		postErr = flush(len(ops))
	}
	// Drain every posted chain even after a failure so no completion leaks.
	var firstErr error
	for _, pv := range chains {
		c, err := qp.wait(ctx, pv)
		if err != nil && firstErr == nil {
			firstErr = batchErr(c)
		}
	}
	if firstErr != nil {
		return firstErr
	}
	return postErr
}

// batchErr decorates a failed batch completion with the index of the first
// failed sub-verb, recovered from the per-sub status bytes.
func batchErr(c Completion) error {
	for i, st := range c.Data {
		if st != StatusOK && st != StatusFlushed {
			return fmt.Errorf("rdma: batch sub-verb %d: %w", i, c.Err)
		}
	}
	return c.Err
}

// WriteQword writes one 8-byte little-endian word at addr. Note this is a
// plain WRITE, not an atomic; pair with CAS when publishing pointers.
func (qp *QP) WriteQword(rkey uint32, addr mem.Addr, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return qp.Write(rkey, addr, b[:])
}

// CompareAndSwap atomically swaps the qword at addr from old to new,
// returning the value found there (swap happened iff prev == old).
func (qp *QP) CompareAndSwap(rkey uint32, addr mem.Addr, old, new uint64) (prev uint64, err error) {
	return qp.CompareAndSwapCtx(context.Background(), rkey, addr, old, new)
}

// CompareAndSwapCtx is CompareAndSwap bounded by ctx.
func (qp *QP) CompareAndSwapCtx(ctx context.Context, rkey uint32, addr mem.Addr, old, new uint64) (prev uint64, err error) {
	c, err := qp.callCtx(ctx, request{op: OpCAS, rkey: rkey, addr: addr, cmp: old, swap: new})
	if err != nil {
		return 0, err
	}
	return c.OldVal, nil
}

// FetchAdd atomically adds delta to the qword at addr, returning the prior
// value.
func (qp *QP) FetchAdd(rkey uint32, addr mem.Addr, delta uint64) (prev uint64, err error) {
	return qp.FetchAddCtx(context.Background(), rkey, addr, delta)
}

// FetchAddCtx is FetchAdd bounded by ctx.
func (qp *QP) FetchAddCtx(ctx context.Context, rkey uint32, addr mem.Addr, delta uint64) (prev uint64, err error) {
	c, err := qp.callCtx(ctx, request{op: OpFetchAdd, rkey: rkey, addr: addr, delta: delta})
	if err != nil {
		return 0, err
	}
	return c.OldVal, nil
}

// WriteImm performs a WRITE_WITH_IMMEDIATE: data lands at addr, then the
// endpoint's doorbell handlers fire with imm. RDX uses this for
// rdx_cc_event cacheline flushes.
func (qp *QP) WriteImm(rkey uint32, addr mem.Addr, imm uint32, data []byte) error {
	return qp.WriteImmCtx(context.Background(), rkey, addr, imm, data)
}

// WriteImmCtx is WriteImm bounded by ctx (in addition to the QP deadline).
func (qp *QP) WriteImmCtx(ctx context.Context, rkey uint32, addr mem.Addr, imm uint32, data []byte) error {
	_, err := qp.callCtx(ctx, request{op: OpWriteImm, rkey: rkey, addr: addr, imm: imm, data: data})
	return err
}

// PostWrite posts an asynchronous WRITE and returns its completion channel;
// used to pipeline many writes on one QP. data must fit one frame.
func (qp *QP) PostWrite(rkey uint32, addr mem.Addr, data []byte) (<-chan Completion, error) {
	if len(data) > MaxFrame-64 {
		return nil, fmt.Errorf("rdma: PostWrite payload %d too large; segment first", len(data))
	}
	pv, err := qp.post(request{op: OpWrite, rkey: rkey, addr: addr, data: data})
	if err != nil {
		return nil, err
	}
	return pv.ch, nil
}

// PostCAS posts an asynchronous CAS.
func (qp *QP) PostCAS(rkey uint32, addr mem.Addr, old, new uint64) (<-chan Completion, error) {
	pv, err := qp.post(request{op: OpCAS, rkey: rkey, addr: addr, cmp: old, swap: new})
	if err != nil {
		return nil, err
	}
	return pv.ch, nil
}

// QueryMRs fetches the endpoint's registered-region table. This is control
// metadata exchange (the equivalent of RDMA CM handshakes), used once when
// a CodeFlow is created and again by ReconnQP after every redial (rkeys may
// change across endpoint restarts).
func (qp *QP) QueryMRs() ([]MR, error) {
	c, err := qp.call(request{op: OpQueryMRs})
	if err != nil {
		return nil, err
	}
	return decodeMRTable(c.Data)
}

var _ Verbs = (*QP)(nil)
