package rdma

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"

	"rdx/internal/mem"
)

// Completion is the result of an asynchronously posted verb, delivered on
// the QP's completion queue channel.
type Completion struct {
	ID     uint64
	Err    error
	Data   []byte // READ payload, or 8-byte old value for CAS/FETCH_ADD
	OldVal uint64 // decoded atomic result, valid for CAS/FETCH_ADD
}

// QP is an initiator-side queue pair: it posts verbs to a remote endpoint
// and matches completions by request id. All methods are safe for
// concurrent use; the endpoint executes this QP's requests in post order.
type QP struct {
	conn net.Conn
	bw   *bufio.Writer

	sendMu sync.Mutex
	nextID uint64

	pendMu  sync.Mutex
	pending map[uint64]chan Completion
	err     error // sticky transport error
	done    chan struct{}
}

// NewQP wraps an established connection to an endpoint.
func NewQP(conn net.Conn) *QP {
	qp := &QP{
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, 64<<10),
		pending: make(map[uint64]chan Completion),
		done:    make(chan struct{}),
	}
	go qp.readLoop()
	return qp
}

// Dial connects a new QP to an endpoint over the given network address.
func Dial(network, addr string) (*QP, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewQP(conn), nil
}

// Close tears the QP down; outstanding posts complete with ErrClosed.
func (qp *QP) Close() error {
	err := qp.conn.Close()
	<-qp.done
	return err
}

func (qp *QP) readLoop() {
	defer close(qp.done)
	br := bufio.NewReaderSize(qp.conn, 64<<10)
	for {
		payload, err := readFrame(br)
		if err != nil {
			qp.failAll(ErrClosed)
			return
		}
		resp, err := decodeResponse(payload)
		if err != nil {
			qp.failAll(fmt.Errorf("rdma: protocol error: %w", err))
			return
		}
		qp.pendMu.Lock()
		ch, ok := qp.pending[resp.id]
		delete(qp.pending, resp.id)
		qp.pendMu.Unlock()
		if !ok {
			continue // stale completion; drop
		}
		// Data is attached even on error completions: batch responses carry
		// per-sub-verb statuses the initiator uses to locate the failure.
		c := Completion{ID: resp.id, Err: statusErr(resp.status), Data: resp.data}
		if c.Err == nil && len(resp.data) == 8 {
			c.OldVal = binary.BigEndian.Uint64(resp.data)
		}
		ch <- c
	}
}

func (qp *QP) failAll(err error) {
	qp.pendMu.Lock()
	qp.err = err
	for id, ch := range qp.pending {
		ch <- Completion{ID: id, Err: err}
		delete(qp.pending, id)
	}
	qp.pendMu.Unlock()
}

// post sends a request and returns a channel that will receive its
// completion.
func (qp *QP) post(q request) (<-chan Completion, error) {
	ch := make(chan Completion, 1)

	qp.pendMu.Lock()
	if qp.err != nil {
		err := qp.err
		qp.pendMu.Unlock()
		return nil, err
	}
	qp.pendMu.Unlock()

	qp.sendMu.Lock()
	qp.nextID++
	q.id = qp.nextID
	qp.pendMu.Lock()
	qp.pending[q.id] = ch
	qp.pendMu.Unlock()

	err := writeFrame(qp.bw, q.encode())
	if err == nil {
		err = qp.bw.Flush()
	}
	qp.sendMu.Unlock()

	if err != nil {
		qp.pendMu.Lock()
		delete(qp.pending, q.id)
		qp.pendMu.Unlock()
		return nil, err
	}
	return ch, nil
}

func (qp *QP) call(q request) (Completion, error) {
	ch, err := qp.post(q)
	if err != nil {
		return Completion{}, err
	}
	c := <-ch
	return c, c.Err
}

// Read performs a one-sided READ of n bytes at addr within the region rkey.
func (qp *QP) Read(rkey uint32, addr mem.Addr, n int) ([]byte, error) {
	c, err := qp.call(request{op: OpRead, rkey: rkey, addr: addr, len: uint32(n)})
	if err != nil {
		return nil, err
	}
	return c.Data, nil
}

// ReadQword reads one 8-byte little-endian word (arena layout) at addr.
func (qp *QP) ReadQword(rkey uint32, addr mem.Addr) (uint64, error) {
	b, err := qp.Read(rkey, addr, 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// WriteSeg is the transparent segmentation unit for large WRITEs.
const WriteSeg = 1 << 20

// batchBudget caps one OpBatch frame's coalesced payload, keeping each
// frame well under MaxFrame while still amortizing the per-verb base cost
// across several segments.
const batchBudget = 4 << 20

// Write performs a one-sided WRITE of data at addr. Writes larger than the
// frame budget are segmented transparently and coalesced into OpBatch
// chains posted back-to-back in flight — the initiator never stalls on a
// per-segment round trip. Segments apply in order (but, as on hardware, the
// overall write is not atomic — use CAS-based commit protocols for
// atomicity).
func (qp *QP) Write(rkey uint32, addr mem.Addr, data []byte) error {
	if len(data) <= WriteSeg {
		_, err := qp.call(request{op: OpWrite, rkey: rkey, addr: addr, data: data})
		return err
	}
	ops := make([]BatchOp, 0, (len(data)+WriteSeg-1)/WriteSeg)
	for off := 0; off < len(data); off += WriteSeg {
		end := off + WriteSeg
		if end > len(data) {
			end = len(data)
		}
		ops = append(ops, BatchOp{RKey: rkey, Addr: addr + mem.Addr(off), Data: data[off:end]})
	}
	return qp.WriteBatch(ops)
}

// BatchOp is one sub-verb of an OpBatch chain: a WRITE, or — when HasImm is
// set — a WRITE_WITH_IMM that rings the target's doorbell. A chain carries
// many writes but typically only its final op carries the immediate, so one
// doorbell covers the whole coalesced update.
type BatchOp struct {
	RKey   uint32
	Addr   mem.Addr
	Data   []byte
	Imm    uint32
	HasImm bool
}

// PostBatch posts one OpBatch chain asynchronously. The endpoint executes
// the sub-verbs in order, charges the latency model once for the coalesced
// payload, and returns a single completion for the chain.
func (qp *QP) PostBatch(ops []BatchOp) (<-chan Completion, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("rdma: empty batch")
	}
	if len(ops) > 0xFFFF {
		return nil, fmt.Errorf("rdma: batch of %d sub-verbs exceeds 65535", len(ops))
	}
	size := 0
	subs := make([]request, len(ops))
	for i, op := range ops {
		if len(op.Data) > WriteSeg {
			return nil, fmt.Errorf("rdma: batch sub-verb %d payload %d exceeds segment %d", i, len(op.Data), WriteSeg)
		}
		subs[i] = request{op: OpWrite, rkey: op.RKey, addr: op.Addr, data: op.Data}
		if op.HasImm {
			subs[i].op = OpWriteImm
			subs[i].imm = op.Imm
		}
		size += 21 + len(op.Data)
	}
	if size > MaxFrame-64 {
		return nil, fmt.Errorf("rdma: batch payload %d exceeds frame budget; split first", size)
	}
	return qp.post(request{op: OpBatch, subs: subs})
}

// WriteBatch coalesces ops into OpBatch frames of at most batchBudget
// payload each, posts them all without waiting, then drains completions —
// the pipelined bulk path QP.Write and the injection scheduler share. On
// failure the error identifies the first failed sub-verb.
func (qp *QP) WriteBatch(ops []BatchOp) error {
	var chans []<-chan Completion
	start, size := 0, 0
	flush := func(end int) error {
		if end == start {
			return nil
		}
		ch, err := qp.PostBatch(ops[start:end])
		if err != nil {
			return err
		}
		chans = append(chans, ch)
		start, size = end, 0
		return nil
	}
	var postErr error
	for i, op := range ops {
		if size > 0 && size+len(op.Data) > batchBudget {
			if postErr = flush(i); postErr != nil {
				break
			}
		}
		size += len(op.Data)
	}
	if postErr == nil {
		postErr = flush(len(ops))
	}
	// Drain every posted chain even after a failure so no completion leaks.
	var firstErr error
	for _, ch := range chans {
		c := <-ch
		if c.Err != nil && firstErr == nil {
			firstErr = batchErr(c)
		}
	}
	if firstErr != nil {
		return firstErr
	}
	return postErr
}

// batchErr decorates a failed batch completion with the index of the first
// failed sub-verb, recovered from the per-sub status bytes.
func batchErr(c Completion) error {
	for i, st := range c.Data {
		if st != StatusOK && st != StatusFlushed {
			return fmt.Errorf("rdma: batch sub-verb %d: %w", i, c.Err)
		}
	}
	return c.Err
}

// WriteQword writes one 8-byte little-endian word at addr. Note this is a
// plain WRITE, not an atomic; pair with CAS when publishing pointers.
func (qp *QP) WriteQword(rkey uint32, addr mem.Addr, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return qp.Write(rkey, addr, b[:])
}

// CompareAndSwap atomically swaps the qword at addr from old to new,
// returning the value found there (swap happened iff prev == old).
func (qp *QP) CompareAndSwap(rkey uint32, addr mem.Addr, old, new uint64) (prev uint64, err error) {
	c, err := qp.call(request{op: OpCAS, rkey: rkey, addr: addr, cmp: old, swap: new})
	if err != nil {
		return 0, err
	}
	return c.OldVal, nil
}

// FetchAdd atomically adds delta to the qword at addr, returning the prior
// value.
func (qp *QP) FetchAdd(rkey uint32, addr mem.Addr, delta uint64) (prev uint64, err error) {
	c, err := qp.call(request{op: OpFetchAdd, rkey: rkey, addr: addr, delta: delta})
	if err != nil {
		return 0, err
	}
	return c.OldVal, nil
}

// WriteImm performs a WRITE_WITH_IMMEDIATE: data lands at addr, then the
// endpoint's doorbell handlers fire with imm. RDX uses this for
// rdx_cc_event cacheline flushes.
func (qp *QP) WriteImm(rkey uint32, addr mem.Addr, imm uint32, data []byte) error {
	_, err := qp.call(request{op: OpWriteImm, rkey: rkey, addr: addr, imm: imm, data: data})
	return err
}

// PostWrite posts an asynchronous WRITE and returns its completion channel;
// used to pipeline many writes on one QP. data must fit one frame.
func (qp *QP) PostWrite(rkey uint32, addr mem.Addr, data []byte) (<-chan Completion, error) {
	if len(data) > MaxFrame-64 {
		return nil, fmt.Errorf("rdma: PostWrite payload %d too large; segment first", len(data))
	}
	return qp.post(request{op: OpWrite, rkey: rkey, addr: addr, data: data})
}

// PostCAS posts an asynchronous CAS.
func (qp *QP) PostCAS(rkey uint32, addr mem.Addr, old, new uint64) (<-chan Completion, error) {
	return qp.post(request{op: OpCAS, rkey: rkey, addr: addr, cmp: old, swap: new})
}

// QueryMRs fetches the endpoint's registered-region table. This is control
// metadata exchange (the equivalent of RDMA CM handshakes), used once when
// a CodeFlow is created.
func (qp *QP) QueryMRs() ([]MR, error) {
	c, err := qp.call(request{op: OpQueryMRs})
	if err != nil {
		return nil, err
	}
	return decodeMRTable(c.Data)
}
