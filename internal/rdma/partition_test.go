package rdma

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"rdx/internal/faultnet"
	"rdx/internal/mem"
)

// gatedDialer dials through faultnet connections sharing one Gate, so a
// test can partition and heal the whole client↔endpoint link without
// killing any socket — the ReconnQP-level counterpart of the simulator's
// cut/heal fault.
type gatedDialer struct {
	fab  *Fabric
	name string
	gate *faultnet.Gate
}

func (d *gatedDialer) dial() (net.Conn, error) {
	c, err := d.fab.Dial(d.name)
	if err != nil {
		return nil, err
	}
	return faultnet.Wrap(c, faultnet.Options{Gate: d.gate}), nil
}

// TestReconnQPPartitionHeal: verbs issued into a partition fail after the
// redial budget (every redial lands behind the same cut gate); healing
// lets the next verb dial a working generation, with nothing lost.
func TestReconnQPPartitionHeal(t *testing.T) {
	arena := mem.NewArena(1 << 12)
	ep := NewEndpoint(arena, nil)
	ep.SetLogf(func(string, ...interface{}) {})
	mr, err := ep.RegisterMR("all", 0, arena.Size(), PermAll)
	if err != nil {
		t.Fatal(err)
	}
	fab := NewFabric()
	l, err := fab.Listen("n")
	if err != nil {
		t.Fatal(err)
	}
	go ep.Serve(l)
	defer ep.Close()

	d := &gatedDialer{fab: fab, name: "n", gate: faultnet.NewGate()}
	r, err := NewReconnQP(ReconnConfig{
		Dial: d.dial, MaxRedials: 1, RedialBackoff: time.Millisecond,
		VerbTimeout: 2 * time.Second, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if err := r.Write(mr.RKey, 0, []byte("pre")); err != nil {
		t.Fatal(err)
	}

	d.gate.Cut()
	if err := r.Write(mr.RKey, 100, []byte("during")); err == nil {
		t.Fatal("write into a partition succeeded")
	}
	// The partitioned write never reached the endpoint.
	if b, _ := arena.Read(100, 6); bytes.Equal(b, []byte("during")) {
		t.Error("partitioned write landed")
	}

	d.gate.Heal()
	if err := r.Write(mr.RKey, 100, []byte("after")); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	if b, _ := arena.Read(100, 5); !bytes.Equal(b, []byte("after")) {
		t.Error("post-heal write missing")
	}
	if b, _ := arena.Read(0, 3); !bytes.Equal(b, []byte("pre")) {
		t.Error("pre-partition write lost")
	}
}

// faultAcceptor wraps every accepted connection so a test can inject
// faults on the ENDPOINT side of the wire (lost completions).
type faultAcceptor struct {
	net.Listener
	mu    sync.Mutex
	conns []*faultnet.Conn
}

func (l *faultAcceptor) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	fc := faultnet.Wrap(c, faultnet.Options{})
	l.mu.Lock()
	l.conns = append(l.conns, fc)
	l.mu.Unlock()
	return fc, nil
}

func (l *faultAcceptor) conn(i int) *faultnet.Conn {
	deadline := time.Now().Add(5 * time.Second)
	for {
		l.mu.Lock()
		if len(l.conns) > i {
			fc := l.conns[i]
			l.mu.Unlock()
			return fc
		}
		l.mu.Unlock()
		if time.Now().After(deadline) {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReconnQPDuplicateWriteDeliveryIdempotent models the RC-retransmit
// hazard the simulator's duplicate-delivery fault explores: the endpoint
// APPLIES a WRITE, but the completion is lost with the connection — so
// the initiator replays it on the next generation and the op executes
// twice. The protocol contract under test: a plain WRITE is idempotent,
// so memory converges to the same image and the caller sees one success.
func TestReconnQPDuplicateWriteDeliveryIdempotent(t *testing.T) {
	arena := mem.NewArena(1 << 12)
	ep := NewEndpoint(arena, nil)
	ep.SetLogf(func(string, ...interface{}) {})
	mr, err := ep.RegisterMR("all", 0, arena.Size(), PermAll)
	if err != nil {
		t.Fatal(err)
	}
	fab := NewFabric()
	inner, err := fab.Listen("n")
	if err != nil {
		t.Fatal(err)
	}
	l := &faultAcceptor{Listener: inner}
	go ep.Serve(l)
	defer ep.Close()

	d := &chaosDialer{fab: fab, name: "n"}
	r, err := NewReconnQP(ReconnConfig{
		Dial: d.dial, RedialBackoff: time.Millisecond,
		VerbTimeout: 2 * time.Second, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Arm the lost completion: the endpoint's next response write (the
	// completion of our upcoming WRITE) truncates after one byte and kills
	// the server-side connection — AFTER handle() applied the write.
	srv := l.conn(0)
	if srv == nil {
		t.Fatal("endpoint connection never accepted")
	}
	kill := srv.BytesWritten() + 1
	srv.SetKillAfterBytes(kill)

	payload := []byte("duplicated-delivery")
	if err := r.Write(mr.RKey, 64, payload); err != nil {
		t.Fatalf("write with lost completion not replayed: %v", err)
	}
	if g := r.Generation(); g != 2 {
		t.Errorf("generation = %d, want 2 (one redial)", g)
	}
	// The first delivery was applied: the killing response write proves the
	// endpoint handled the frame (responses are staged only after handle).
	if srv.BytesWritten() < kill {
		t.Error("endpoint never reached the armed completion write")
	}
	// Both deliveries applied; the image is the single-delivery image.
	if b, _ := arena.Read(64, len(payload)); !bytes.Equal(b, payload) {
		t.Errorf("memory diverged under duplicate delivery: %q", b)
	}
}
