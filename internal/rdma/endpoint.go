package rdma

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rdx/internal/mem"
	"rdx/internal/telemetry"
)

// Perm is a memory-region permission bitmask, mirroring ibv access flags.
type Perm uint8

const (
	PermRead   Perm = 1 << iota // remote READ allowed
	PermWrite                   // remote WRITE allowed
	PermAtomic                  // remote CAS / FETCH_ADD allowed
)

// PermAll grants read, write, and atomics.
const PermAll = PermRead | PermWrite | PermAtomic

// MR describes one registered memory region of the endpoint's arena.
type MR struct {
	Name string // symbolic name, exchanged during connection setup
	RKey uint32
	Addr mem.Addr
	Len  uint64
	Perm Perm
}

// DoorbellHandler runs on the RNIC (not on node cores) when a WRITE_WITH_IMM
// lands in the region it is registered for. RDX uses doorbells for
// rdx_cc_event: the handler invalidates the CPU cacheline so the data plane
// observes freshly injected objects immediately.
type DoorbellHandler func(imm uint32, addr mem.Addr, data []byte)

// Endpoint is the target-side software RNIC: it owns access to a node's
// DRAM arena and services verbs from any number of queue pairs.
type Endpoint struct {
	arena   *mem.Arena
	latency *LatencyModel

	mu        sync.RWMutex
	mrs       map[uint32]*MR
	mrsByName map[string]*MR
	nextRKey  uint32

	// doorbells is a copy-on-write registration list (writes under mu),
	// so the WRITE_IMM hot path reads it with one atomic load instead of
	// copying the slice per fire.
	doorbells atomic.Pointer[[]doorbellReg]

	closed  chan struct{}
	closeMu sync.Once
	wg      sync.WaitGroup

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	// instr is the optional observability binding; see SetInstruments.
	instr atomic.Pointer[qpInstr]

	// logf receives protocol-level errors; swapped atomically via SetLogf
	// because ServeConn goroutines read it while callers may install a
	// logger after Serve has started.
	logf atomic.Pointer[func(format string, args ...interface{})]
}

// SetLogf installs the protocol-error logger (default log.Printf); nil
// silences logging. Unlike the exported field it replaces, this is safe to
// call at any time, including while connections are being served.
func (e *Endpoint) SetLogf(f func(format string, args ...interface{})) {
	if f == nil {
		f = func(string, ...interface{}) {}
	}
	e.logf.Store(&f)
}

func (e *Endpoint) logFn() func(format string, args ...interface{}) {
	return *e.logf.Load()
}

// SetInstruments attaches served-verb metrics and a trace recorder to the
// endpoint; node labels this endpoint's trace events (its node ID). Served
// verbs carrying a wire trace ID are recorded as "endpoint"-layer spans, so
// an initiator's trace shows both sides of each verb. Any argument may be
// nil. Safe to call concurrently with connections being served.
func (e *Endpoint) SetInstruments(m *WireMetrics, tr *telemetry.TraceRecorder, node string) {
	e.instr.Store(&qpInstr{m: m, tr: tr, node: node})
}

func (e *Endpoint) instruments() qpInstr {
	if i := e.instr.Load(); i != nil {
		return *i
	}
	return qpInstr{}
}

type doorbellReg struct {
	addr mem.Addr
	len  uint64
	fn   DoorbellHandler
}

// NewEndpoint creates an RNIC over arena with the given latency model
// (nil means NoLatency).
func NewEndpoint(arena *mem.Arena, lat *LatencyModel) *Endpoint {
	if lat == nil {
		lat = NoLatency()
	}
	e := &Endpoint{
		arena:     arena,
		latency:   lat,
		mrs:       make(map[uint32]*MR),
		mrsByName: make(map[string]*MR),
		nextRKey:  0x1000,
		closed:    make(chan struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
	e.SetLogf(log.Printf)
	return e
}

// Arena returns the DRAM arena this endpoint serves.
func (e *Endpoint) Arena() *mem.Arena { return e.arena }

// RegisterMR registers [addr, addr+length) for remote access under a fresh
// rkey. Names must be unique per endpoint; they are how the control plane
// discovers regions during CodeFlow creation.
func (e *Endpoint) RegisterMR(name string, addr mem.Addr, length uint64, perm Perm) (*MR, error) {
	if length == 0 || addr > e.arena.Size() || length > e.arena.Size()-addr {
		return nil, fmt.Errorf("rdma: MR %q [%#x,+%d) outside arena", name, addr, length)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.mrsByName[name]; dup {
		return nil, fmt.Errorf("rdma: MR %q already registered", name)
	}
	mr := &MR{Name: name, RKey: e.nextRKey, Addr: addr, Len: length, Perm: perm}
	e.nextRKey++
	e.mrs[mr.RKey] = mr
	e.mrsByName[name] = mr
	return mr, nil
}

// RotateMR re-keys a registered region: the old rkey is invalidated and a
// fresh one issued for the same [addr, addr+length) window. This is the
// ibv_rereg_mr-style fencing primitive — any peer still holding the old
// rkey gets StatusAccessErr on its next verb, without tearing down its
// connection. Returns the re-keyed MR.
func (e *Endpoint) RotateMR(name string) (*MR, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	old, ok := e.mrsByName[name]
	if !ok {
		return nil, fmt.Errorf("rdma: rotate: unknown MR %q", name)
	}
	delete(e.mrs, old.RKey)
	mr := &MR{Name: name, RKey: e.nextRKey, Addr: old.Addr, Len: old.Len, Perm: old.Perm}
	e.nextRKey++
	e.mrs[mr.RKey] = mr
	e.mrsByName[name] = mr
	return mr, nil
}

// DeregisterMR removes a region; in-flight operations on it may still race
// to completion, as on real hardware.
func (e *Endpoint) DeregisterMR(rkey uint32) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	mr, ok := e.mrs[rkey]
	if !ok {
		return fmt.Errorf("rdma: unknown rkey %#x", rkey)
	}
	delete(e.mrs, rkey)
	delete(e.mrsByName, mr.Name)
	return nil
}

// MRByName returns the registered region with the given name, if any.
func (e *Endpoint) MRByName(name string) (*MR, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	mr, ok := e.mrsByName[name]
	return mr, ok
}

// RegisterDoorbell attaches a handler to WRITE_WITH_IMM operations landing
// within [addr, addr+length).
func (e *Endpoint) RegisterDoorbell(addr mem.Addr, length uint64, fn DoorbellHandler) {
	e.mu.Lock()
	var regs []doorbellReg
	if old := e.doorbells.Load(); old != nil {
		regs = append(regs, *old...)
	}
	regs = append(regs, doorbellReg{addr, length, fn})
	e.doorbells.Store(&regs)
	e.mu.Unlock()
}

// Serve accepts connections until the listener fails or Close is called.
// Each connection is one QP served on its own goroutine.
func (e *Endpoint) Serve(l net.Listener) error {
	defer l.Close()
	go func() {
		<-e.closed
		l.Close()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-e.closed:
				return nil
			default:
				return err
			}
		}
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.ServeConn(conn)
		}()
	}
}

// Close stops the endpoint: the listener and every active QP connection
// are closed, then connection handlers are drained.
func (e *Endpoint) Close() {
	e.closeMu.Do(func() {
		close(e.closed)
		e.connMu.Lock()
		for c := range e.conns {
			c.Close()
		}
		e.connMu.Unlock()
	})
	e.wg.Wait()
}

// Drain shuts the endpoint down gracefully: stop accepting new QPs, let
// in-flight frames finish for up to grace, then force-close whatever is
// left. Unlike Close, a request mid-service gets its reply written before
// the connection drops — peers observe a clean teardown (EOF after a
// complete frame) instead of ErrInjected-like truncation noise. Each
// handler's poll loop re-checks the closed channel between passes, so a
// drained connection exits after at most one more poll pass (its already
// buffered frames are served and flushed first).
func (e *Endpoint) Drain(grace time.Duration) {
	e.closeMu.Do(func() {
		close(e.closed)
		// A handler blocked in readFrame holds no request: unblock it by
		// expiring the read rather than severing the transport, so a frame
		// already being serviced still gets its reply flushed.
		e.connMu.Lock()
		for c := range e.conns {
			c.SetReadDeadline(time.Now().Add(grace))
		}
		e.connMu.Unlock()
	})
	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace + 100*time.Millisecond):
		// Stragglers (a handler stuck mid-write, a deadline that didn't
		// take): fall back to the hard teardown.
		e.connMu.Lock()
		for c := range e.conns {
			c.Close()
		}
		e.connMu.Unlock()
		<-done
	}
}

// CloseConns severs every active QP connection without stopping the
// endpoint: the listener keeps accepting, so clients behind a ReconnQP
// re-dial into the same (still-registered) MR table. This models a
// transport flap — the restart half of the reconnect story — as opposed
// to Close, which is the death of the node.
func (e *Endpoint) CloseConns() {
	e.connMu.Lock()
	for c := range e.conns {
		c.Close()
	}
	e.connMu.Unlock()
}

// scratchKeep caps the per-connection scratch buffers retained between
// frames: a one-off giant response or batch does not pin its buffer on an
// idle connection forever.
const scratchKeep = 128 << 10

// connScratch is one connection's reusable working memory: the response
// assembly buffer, the decoded batch sub-verb slice, per-sub status bytes,
// and the 8-byte atomic-result word. One instance lives per ServeConn
// goroutine, so the steady-state service path performs zero allocations.
type connScratch struct {
	resp     []byte
	read     []byte
	subs     []request
	statuses []byte
	qword    [8]byte
	chain    [chainRespLen]byte
}

// ServeConn services one QP until the peer disconnects. Requests execute
// strictly in order (RDMA per-QP ordering). Completion emission is batched
// per poll: after the blocking read delivers a frame, every further frame
// already sitting in the read buffer is served in the same pass and the
// responses are flushed once — pipelined initiators cost one write syscall
// per burst instead of one per verb. The pass never reads past the last
// fully-buffered frame (see frameBuffered), so a non-pipelined peer waiting
// on its reply always gets the flush before we block again.
func (e *Endpoint) ServeConn(conn net.Conn) {
	e.connMu.Lock()
	e.conns[conn] = struct{}{}
	e.connMu.Unlock()
	defer func() {
		conn.Close()
		e.connMu.Lock()
		delete(e.conns, conn)
		e.connMu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	var cs connScratch
	for {
		select {
		case <-e.closed:
			return
		default:
		}
		f, err := readFrame(br)
		if err != nil {
			// Normal teardown arrives as EOF or closed-pipe; anything
			// else (truncated frame, oversized length prefix, transport
			// fault) is a protocol error worth surfacing.
			if !isCleanTeardown(err) {
				e.logFn()("rdma: endpoint read error from %v: %v", conn.RemoteAddr(), err)
			}
			return
		}
		frames, ok := 0, true
		for {
			ok = e.serveFrame(bw, &cs, f, conn)
			frames++
			if !ok || !frameBuffered(br) {
				break
			}
			if f, err = readFrame(br); err != nil {
				e.logFn()("rdma: endpoint read error from %v: %v", conn.RemoteAddr(), err)
				ok = false
				break
			}
		}
		flushErr := bw.Flush()
		recordPoll(frames)
		if !ok || flushErr != nil {
			return
		}
	}
}

// serveFrame decodes and executes one request frame and stages its response
// into bw (the caller flushes once per poll pass). The frame is released
// here on every path; the response bytes never alias it (arena reads copy,
// atomics and batch statuses use connScratch). Returns false when the QP
// must drop: malformed frame, oversize response, or write failure.
func (e *Endpoint) serveFrame(bw *bufio.Writer, cs *connScratch, f *FrameBuf, conn net.Conn) bool {
	var q request
	if err := q.decodeInto(f.Bytes(), cs.subs); err != nil {
		// A malformed frame means the stream is unframed garbage: a
		// reply would carry a partially-decoded id (often 0) and the
		// initiator's real request would never complete. Move the QP
		// to error state instead — drop the connection so the client
		// fails fast via failAll.
		f.Release()
		e.logFn()("rdma: malformed frame from %v, closing QP: %v", conn.RemoteAddr(), err)
		return false
	}
	if q.op == OpBatch {
		cs.subs = q.subs[:0] // keep the grown sub-verb capacity for reuse
	}
	st, data := e.handle(&q, cs)
	f.Release()
	return e.respond(bw, cs, q.id, st, data)
}

// respond assembles [hdr|response] in the connection scratch and stages it
// into bw with a single Write.
func (e *Endpoint) respond(bw *bufio.Writer, cs *connScratch, id uint64, status uint8, data []byte) bool {
	if respHdr+len(data) > MaxFrame {
		return false // unframeable response: drop the QP, as writeFrame did
	}
	b := append(cs.resp[:0], 0, 0, 0, 0)
	b = appendResponse(b, id, status, data)
	binary.BigEndian.PutUint32(b[:frameHdr], uint32(len(b)-frameHdr))
	if cap(b) <= scratchKeep {
		cs.resp = b[:0]
	} else {
		cs.resp = nil
	}
	_, err := bw.Write(b)
	return err == nil
}

// isCleanTeardown reports whether a connection read error is an expected
// peer-disconnect rather than a protocol violation.
func isCleanTeardown(err error) bool {
	return errors.Is(err, io.EOF) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, io.ErrClosedPipe)
}

// handle executes one decoded request against the arena and returns the
// response status and data. Returned data must never alias the request's
// frame (the caller releases it before responding): arena reads copy,
// atomics return cs.qword, batches return cs.statuses.
func (e *Endpoint) handle(q *request, cs *connScratch) (uint8, []byte) {
	if q.op == OpQueryMRs {
		return StatusOK, e.encodeMRTable()
	}
	if q.op == OpRotateMR {
		// Control-plane op, like QueryMRs: no latency charge, no arena work.
		mr, err := e.RotateMR(string(q.data))
		if err != nil {
			return StatusOpErr, nil
		}
		binary.BigEndian.PutUint32(cs.qword[:4], mr.RKey)
		return StatusOK, cs.qword[:4]
	}
	if q.op == OpBatch {
		return e.handleBatch(q, cs)
	}
	if q.op == OpChainTrigger {
		// One trigger doorbell moves the whole resident program: the fabric
		// is charged for the 8-byte trigger write only — that is the point
		// of the offload.
		start := time.Now()
		e.latency.Wait(8)
		st, data := e.execChain(q, cs.chain[:])
		e.observe(q, st, 8, len(data), 8, start)
		return st, data
	}

	// Model fabric + RNIC processing latency for the verb.
	size := len(q.data)
	if q.op == OpRead {
		size = int(q.len)
	}
	start := time.Now()
	e.latency.Wait(size)
	st, data := e.exec(q, cs)
	e.observe(q, st, len(q.data), len(data), size, start)
	return st, data
}

// observe accounts one served verb and, when the request carries a trace
// ID, records the service span under the initiator's trace.
func (e *Endpoint) observe(q *request, st uint8, in, out, traceBytes int, start time.Time) {
	ins := e.instruments()
	if ins.m == nil && ins.tr == nil {
		return
	}
	err := statusErr(st)
	ins.m.served(q.op, time.Since(start).Nanoseconds(), in, out, err)
	if ins.tr != nil {
		ins.tr.Span(telemetry.TraceID(q.trace), "endpoint", OpName(q.op), ins.node, start, traceBytes, err)
	}
}

// handleBatch executes an OpBatch chain: the latency model is charged ONCE
// for the coalesced payload (one doorbell ring moves the whole chain), then
// the sub-verbs apply in posted order. The first failure flushes the rest,
// matching a QP's error-WQE semantics; the response carries per-sub statuses.
func (e *Endpoint) handleBatch(q *request, cs *connScratch) (uint8, []byte) {
	total := 0
	for i := range q.subs {
		total += len(q.subs[i].data)
	}
	start := time.Now()
	e.latency.Wait(total)
	if cap(cs.statuses) < len(q.subs) {
		cs.statuses = make([]byte, len(q.subs))
	}
	statuses := cs.statuses[:len(q.subs)]
	overall := StatusOK
	for i := range q.subs {
		if overall != StatusOK {
			statuses[i] = StatusFlushed
			continue
		}
		st, _ := e.exec(&q.subs[i], cs)
		statuses[i] = st
		if st != StatusOK {
			overall = st
		}
	}
	e.observe(q, overall, total, len(statuses), total, start)
	return overall, statuses
}

// exec applies one already-decoded verb to the arena with no latency charge
// (the caller models fabric cost per frame, not per sub-verb). Atomic results
// land in cs.qword and READ data in cs.read — caller-owned scratch, valid
// until the next frame on this connection, so the hot path allocates nothing.
func (e *Endpoint) exec(q *request, cs *connScratch) (uint8, []byte) {
	out := &cs.qword
	e.mu.RLock()
	mr, ok := e.mrs[q.rkey]
	e.mu.RUnlock()
	if !ok {
		return StatusAccessErr, nil
	}

	inBounds := func(addr mem.Addr, n uint64) bool {
		return addr >= mr.Addr && n <= mr.Len && addr-mr.Addr <= mr.Len-n
	}

	switch q.op {
	case OpRead:
		if mr.Perm&PermRead == 0 {
			return StatusAccessErr, nil
		}
		if !inBounds(q.addr, uint64(q.len)) {
			return StatusBoundsErr, nil
		}
		n := int(q.len)
		buf := cs.read
		if cap(buf) < n {
			if n <= scratchKeep {
				cs.read = make([]byte, n)
				buf = cs.read
			} else {
				buf = make([]byte, n) // one-off giant read: don't pin it
			}
		}
		buf = buf[:n]
		if err := e.arena.ReadInto(q.addr, buf); err != nil {
			return StatusBoundsErr, nil
		}
		return StatusOK, buf

	case OpWrite, OpWriteImm:
		if mr.Perm&PermWrite == 0 {
			return StatusAccessErr, nil
		}
		if !inBounds(q.addr, uint64(len(q.data))) {
			return StatusBoundsErr, nil
		}
		if err := e.arena.Write(q.addr, q.data); err != nil {
			return StatusBoundsErr, nil
		}
		if q.op == OpWriteImm {
			e.fireDoorbells(q.imm, q.addr, q.data)
		}
		return StatusOK, nil

	case OpCAS:
		if mr.Perm&PermAtomic == 0 {
			return StatusAccessErr, nil
		}
		if !inBounds(q.addr, 8) {
			return StatusBoundsErr, nil
		}
		prev, _, err := e.arena.CompareAndSwap(q.addr, q.cmp, q.swap)
		if err != nil {
			return StatusOpErr, nil
		}
		binary.BigEndian.PutUint64(out[:], prev)
		return StatusOK, out[:]

	case OpFetchAdd:
		if mr.Perm&PermAtomic == 0 {
			return StatusAccessErr, nil
		}
		if !inBounds(q.addr, 8) {
			return StatusBoundsErr, nil
		}
		prev, err := e.arena.FetchAdd(q.addr, q.delta)
		if err != nil {
			return StatusOpErr, nil
		}
		binary.BigEndian.PutUint64(out[:], prev)
		return StatusOK, out[:]
	}
	return StatusOpErr, nil
}

func (e *Endpoint) fireDoorbells(imm uint32, addr mem.Addr, data []byte) {
	p := e.doorbells.Load()
	if p == nil {
		return
	}
	regs := *p
	n := uint64(len(data))
	if n == 0 {
		n = 1 // zero-length WRITE_WITH_IMM still rings the doorbell at addr
	}
	for _, d := range regs {
		// Overlap of [addr, addr+n) with [d.addr, d.addr+d.len), written
		// with subtractions so d.addr+d.len cannot overflow and a write
		// starting below the window but spanning into it still fires.
		var hit bool
		if addr >= d.addr {
			hit = addr-d.addr < d.len
		} else {
			hit = d.addr-addr < n
		}
		if hit {
			e.instruments().m.doorbellFired()
			d.fn(imm, addr, data)
		}
	}
}

// MRs snapshots the registered MR table sorted by rkey — the local
// equivalent of a peer's QueryMRs, re-read by the sim transport at every
// fired verb so rotations propagate to in-flight operations.
func (e *Endpoint) MRs() []MR {
	e.mu.RLock()
	out := make([]MR, 0, len(e.mrs))
	for _, mr := range e.mrs {
		out = append(out, *mr)
	}
	e.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].RKey < out[j].RKey })
	return out
}

// encodeMRTable serializes the MR table:
// [2B count] then per MR: [4B rkey][8B addr][8B len][1B perm][2B nameLen][name].
func (e *Endpoint) encodeMRTable() []byte {
	e.mu.RLock()
	mrs := make([]*MR, 0, len(e.mrs))
	for _, mr := range e.mrs {
		mrs = append(mrs, mr)
	}
	e.mu.RUnlock()
	sort.Slice(mrs, func(i, j int) bool { return mrs[i].RKey < mrs[j].RKey })

	b := binary.BigEndian.AppendUint16(nil, uint16(len(mrs)))
	for _, mr := range mrs {
		b = binary.BigEndian.AppendUint32(b, mr.RKey)
		b = binary.BigEndian.AppendUint64(b, mr.Addr)
		b = binary.BigEndian.AppendUint64(b, mr.Len)
		b = append(b, byte(mr.Perm))
		b = binary.BigEndian.AppendUint16(b, uint16(len(mr.Name)))
		b = append(b, mr.Name...)
	}
	return b
}

func decodeMRTable(b []byte) ([]MR, error) {
	if len(b) < 2 {
		return nil, errors.New("rdma: short MR table")
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	out := make([]MR, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 23 {
			return nil, errors.New("rdma: truncated MR table")
		}
		var mr MR
		mr.RKey = binary.BigEndian.Uint32(b[0:4])
		mr.Addr = binary.BigEndian.Uint64(b[4:12])
		mr.Len = binary.BigEndian.Uint64(b[12:20])
		mr.Perm = Perm(b[20])
		nameLen := int(binary.BigEndian.Uint16(b[21:23]))
		b = b[23:]
		if len(b) < nameLen {
			return nil, errors.New("rdma: truncated MR name")
		}
		mr.Name = string(b[:nameLen])
		b = b[nameLen:]
		out = append(out, mr)
	}
	return out, nil
}

// LatencyModel injects per-operation fabric latency: a fixed base cost plus
// a bandwidth term. Waits sleep for the bulk of the duration and spin only
// a short tail (yielding to the scheduler each iteration), so microsecond
// fidelity survives OS sleep granularity without burning a host core per
// endpoint goroutine.
type LatencyModel struct {
	Base        time.Duration // per-operation cost (propagation + RNIC processing)
	BytesPerSec float64       // link bandwidth; 0 disables the size term

	// SpinTail bounds the busy-wait portion of Wait: the wait sleeps until
	// SpinTail remains, then spins (with runtime.Gosched) to the deadline.
	// Zero selects DefaultSpinTail; negative disables spinning entirely
	// (pure sleep, coarser but cheapest — right for latency-insensitive
	// tests and high-fan-out fleets).
	SpinTail time.Duration
}

// DefaultSpinTail is the spin budget used when SpinTail is zero: long
// enough to absorb typical timer overshoot, short enough that an endpoint
// goroutine spends most of a modeled microsecond-scale wait parked.
const DefaultSpinTail = 50 * time.Microsecond

// DefaultLatency approximates a CX-4-class RNIC on a 25 Gb/s rack fabric:
// ~1.8 µs per small verb, ~3.1 GB/s of payload bandwidth.
func DefaultLatency() *LatencyModel {
	return &LatencyModel{Base: 1800 * time.Nanosecond, BytesPerSec: 3.125e9}
}

// NoLatency returns a model with zero injected delay.
func NoLatency() *LatencyModel { return &LatencyModel{} }

// Duration returns the modeled latency for an operation moving n bytes.
func (m *LatencyModel) Duration(n int) time.Duration {
	d := m.Base
	if m.BytesPerSec > 0 && n > 0 {
		d += time.Duration(float64(n) / m.BytesPerSec * float64(time.Second))
	}
	return d
}

// Wait blocks for the modeled latency of an n-byte operation: sleep for all
// but the spin tail, then yield-spin to the deadline. The old behavior —
// hard-spinning every wait under 300µs — burned one host core per in-flight
// verb and starved co-scheduled goroutines under -race; the Gosched in the
// tail keeps the runtime scheduler fed even when every worker is waiting.
func (m *LatencyModel) Wait(n int) {
	d := m.Duration(n)
	if d <= 0 {
		return
	}
	end := time.Now().Add(d)
	tail := m.SpinTail
	if tail == 0 {
		tail = DefaultSpinTail
	}
	if tail < 0 {
		time.Sleep(d)
		return
	}
	if d > tail {
		time.Sleep(d - tail)
	}
	for time.Now().Before(end) {
		runtime.Gosched()
	}
}
