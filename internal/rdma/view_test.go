package rdma

import (
	"bytes"
	"testing"
)

// TestReadFrameView checks the zero-copy read path end to end: the view's
// bytes match the arena, and releasing returns the frame to its pool
// without disturbing a later read.
func TestReadFrameView(t *testing.T) {
	arena, ep, qp := newTestRig(t, 1<<16, nil)
	mr, err := ep.RegisterMR("all", 0, arena.Size(), PermAll)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0x5A}, 1024)
	if err := qp.Write(mr.RKey, 0x100, want); err != nil {
		t.Fatal(err)
	}
	v, err := qp.ReadFrame(mr.RKey, 0x100, len(want))
	if err != nil {
		t.Fatalf("view read: %v", err)
	}
	if !bytes.Equal(v.Bytes(), want) {
		t.Fatalf("view bytes mismatch (%d bytes)", len(v.Bytes()))
	}
	v.Release()
	// The pool may hand the released frame straight back; a second read
	// must still see correct bytes, not a recycled buffer's garbage.
	v2, err := qp.ReadFrame(mr.RKey, 0x100, len(want))
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Release()
	if !bytes.Equal(v2.Bytes(), want) {
		t.Fatal("second view read corrupted after release")
	}
}

// TestViewOfFallback pins the copy-fallback view: no-op Release, stable
// bytes.
func TestViewOfFallback(t *testing.T) {
	b := []byte("fallback")
	v := ViewOf(b)
	if !bytes.Equal(v.Bytes(), b) {
		t.Fatal("ViewOf bytes mismatch")
	}
	v.Release()
	v.Release() // must not panic: copy views have no refcount
	if !bytes.Equal(v.Bytes(), b) {
		t.Fatal("bytes changed after release")
	}
}

// TestReadHotPathZeroAllocs is the read-side companion of
// TestWriteHotPathZeroAllocs: a view read hands back the pooled response
// frame instead of a heap copy, so the steady-state READ round trip stays
// allocation-free.
func TestReadHotPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is meaningless under -race")
	}
	arena, ep, qp := newTestRig(t, 1<<16, nil)
	mr, err := ep.RegisterMR("all", 0, arena.Size(), PermAll)
	if err != nil {
		t.Fatal(err)
	}
	if err := qp.Write(mr.RKey, 0, bytes.Repeat([]byte{1}, 4096)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ { // warm the pools and the pending map
		v, err := qp.ReadFrame(mr.RKey, 0, 4096)
		if err != nil {
			t.Fatal(err)
		}
		v.Release()
	}
	avg := testing.AllocsPerRun(500, func() {
		v, err := qp.ReadFrame(mr.RKey, 0, 4096)
		if err != nil {
			t.Fatal(err)
		}
		v.Release()
	})
	if avg >= 1 {
		t.Errorf("view READ round trip allocates %.2f objects/op, want 0 steady-state", avg)
	}
}
