package rdma

import (
	"bufio"
	"bytes"
	"net"
	"testing"
	"time"

	"rdx/internal/mem"
)

// fuzzOps is the canonicalization table: arbitrary fuzzed opcodes map onto
// the real opcode set so every iteration exercises a codec path.
var fuzzOps = []uint8{OpRead, OpWrite, OpCAS, OpFetchAdd, OpWriteImm, OpQueryMRs, OpBatch}

// FuzzWireRoundTrip checks the request/response codec: any request built
// from fuzzed fields must encode → decode back to the same semantics, and
// decodeRequest must never panic on raw fuzzed bytes.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint64(1), uint64(0), uint32(1), uint64(0x1000), uint64(8), uint64(0), uint32(0), []byte{})
	f.Add(uint8(2), uint64(7), uint64(42), uint32(3), uint64(0x20000), uint64(0), uint64(0), uint32(0), []byte("payload"))
	f.Add(uint8(3), uint64(9), uint64(0), uint32(1), uint64(0x40), uint64(5), uint64(6), uint32(0), []byte{})
	f.Add(uint8(5), uint64(11), uint64(3), uint32(2), uint64(0x1040), uint64(0), uint64(0), uint32(0xdead), []byte{1, 2, 3})
	f.Add(uint8(7), uint64(13), uint64(1), uint32(4), uint64(0x2000), uint64(0), uint64(0), uint32(9), []byte("abcdefghijklmnop"))
	f.Fuzz(func(t *testing.T, op uint8, id, trace uint64, rkey uint32, addr, a, b uint64, imm uint32, data []byte) {
		// Raw decode must be panic-free on arbitrary bytes.
		decodeRequest(data)

		q := request{op: fuzzOps[int(op)%len(fuzzOps)], id: id, trace: trace, rkey: rkey, addr: addr}
		switch q.op {
		case OpRead:
			q.len = uint32(a)
		case OpWrite:
			q.data = data
		case OpCAS:
			q.cmp, q.swap = a, b
		case OpFetchAdd:
			q.delta = a
		case OpWriteImm:
			q.imm, q.data = imm, data
		case OpQueryMRs:
			q.rkey, q.addr = 0, 0 // QueryMRs carries no body
		case OpBatch:
			q.rkey, q.addr = 0, 0
			// Split the fuzzed data into alternating WRITE / WRITE_IMM
			// sub-verbs so batches of every shape are exercised.
			for i := 0; i < 3 && len(data) > 0; i++ {
				cut := len(data) / 2
				sub := request{rkey: rkey + uint32(i), addr: addr + uint64(i)*64, data: data[:cut]}
				if i%2 == 1 {
					sub.op, sub.imm = OpWriteImm, imm
				} else {
					sub.op = OpWrite
				}
				q.subs = append(q.subs, sub)
				data = data[cut:]
			}
		}

		got, err := decodeRequest(q.encode())
		if err != nil {
			t.Fatalf("decode of encoded %#x request: %v", q.op, err)
		}
		if got.op != q.op || got.id != q.id || got.trace != q.trace {
			t.Fatalf("header mismatch: got (%#x,%d,%d), want (%#x,%d,%d)",
				got.op, got.id, got.trace, q.op, q.id, q.trace)
		}
		if q.op != OpQueryMRs && q.op != OpBatch {
			if got.rkey != q.rkey || got.addr != q.addr {
				t.Fatalf("rkey/addr mismatch: got (%d,%#x), want (%d,%#x)", got.rkey, got.addr, q.rkey, q.addr)
			}
		}
		if got.len != q.len || got.cmp != q.cmp || got.swap != q.swap ||
			got.delta != q.delta || got.imm != q.imm {
			t.Fatalf("body field mismatch: got %+v, want %+v", got, q)
		}
		if !bytes.Equal(got.data, q.data) {
			t.Fatalf("data mismatch: got %x, want %x", got.data, q.data)
		}
		if len(got.subs) != len(q.subs) {
			t.Fatalf("batch count: got %d, want %d", len(got.subs), len(q.subs))
		}
		for i := range q.subs {
			gs, ws := &got.subs[i], &q.subs[i]
			if gs.op != ws.op || gs.rkey != ws.rkey || gs.addr != ws.addr || gs.imm != ws.imm || !bytes.Equal(gs.data, ws.data) {
				t.Fatalf("batch sub %d mismatch: got %+v, want %+v", i, gs, ws)
			}
		}

		// Response leg: id/status/data survive the trip.
		r := response{id: id, status: uint8(a % 5), data: data}
		gr, err := decodeResponse(r.encode())
		if err != nil {
			t.Fatalf("decode of encoded response: %v", err)
		}
		if gr.id != r.id || gr.status != r.status || !bytes.Equal(gr.data, r.data) {
			t.Fatalf("response mismatch: got %+v, want %+v", gr, r)
		}
	})
}

// FuzzEndpointFrame throws arbitrary frames at a live endpoint. The
// invariants: the endpoint never panics; a decodable request gets exactly
// one well-formed response carrying the request's id; a malformed frame
// tears the QP down (connection closed, serving goroutine exits) and never
// produces a reply.
func FuzzEndpointFrame(f *testing.F) {
	valid := request{op: OpRead, id: 3, rkey: 1, addr: 0, len: 8}
	f.Add(valid.encode())
	w := request{op: OpWrite, id: 4, rkey: 1, addr: 64, data: []byte("abcdefgh")}
	f.Add(w.encode())
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Add([]byte{OpCAS, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0})          // truncated CAS
	f.Add(append(valid.encode(), 0xee))                                           // trailing garbage
	f.Add([]byte{OpBatch, 0, 0, 0, 0, 0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 42}) // bad batch count
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) > 1<<16 {
			payload = payload[:1<<16]
		}
		arena := mem.NewArena(1 << 16)
		ep := NewEndpoint(arena, NoLatency())
		ep.SetLogf(nil) // malformed frames log by design; keep fuzzing quiet
		if _, err := ep.RegisterMR("all", 0, 1<<16, PermAll); err != nil {
			t.Fatal(err)
		}
		cli, srv := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			ep.ServeConn(srv)
		}()
		cli.SetDeadline(time.Now().Add(10 * time.Second))

		wantID, wantResp := uint64(0), false
		if q, err := decodeRequest(payload); err == nil {
			wantResp, wantID = true, q.id
		}
		// The write itself may fail if the endpoint already tore down —
		// only possible for malformed input, where no reply is expected
		// anyway.
		werr := writeFrame(cli, payload)

		respFrame, rerr := readFrame(bufio.NewReader(cli))
		if rerr == nil {
			defer respFrame.Release()
		}
		if wantResp {
			if werr != nil {
				t.Fatalf("endpoint refused a valid request frame: %v", werr)
			}
			if rerr != nil {
				t.Fatalf("valid request %x got no reply: %v", payload, rerr)
			}
			r, err := decodeResponse(respFrame.Bytes())
			if err != nil {
				t.Fatalf("endpoint replied garbage to %x: %v", payload, err)
			}
			if r.id != wantID {
				t.Fatalf("reply id %d for request id %d", r.id, wantID)
			}
		} else if rerr == nil {
			t.Fatalf("malformed frame %x drew a reply instead of a QP teardown", payload)
		}

		cli.Close()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("endpoint goroutine still serving after teardown: QP not torn down")
		}
	})
}
