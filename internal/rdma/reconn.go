package rdma

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"rdx/internal/mem"
	"rdx/internal/telemetry"
)

// ReconnConfig shapes a ReconnQP.
type ReconnConfig struct {
	// Dial opens a fresh transport to the endpoint. Required. It is called
	// once eagerly by NewReconnQP and again after every transport failure.
	Dial func() (net.Conn, error)

	// MaxRedials bounds how many times one verb tolerates a transport
	// failure (dial failures included) before giving up. Default 3.
	MaxRedials int

	// RedialBackoff is the initial delay before a redial, doubled per
	// consecutive failure. Default 2ms.
	RedialBackoff time.Duration

	// VerbTimeout is installed on every underlying QP (QP.SetTimeout): a
	// verb whose completion never arrives fails with ErrTimeout — treated
	// as a transport failure — instead of hanging. Default 2s; negative
	// disables the deadline.
	VerbTimeout time.Duration

	// Logf, if set, receives reconnect-path diagnostics.
	Logf func(format string, args ...interface{})

	// Metrics, if set, is installed on EVERY QP generation, so verb counts
	// and latency histograms accumulate seamlessly across reconnects (the
	// instruments are registry-owned; a fresh generation never resets
	// them). The wrapper itself feeds the reconnects and replays counters.
	Metrics *WireMetrics

	// Tracer, if set, is installed on every QP generation so wire-level
	// spans keep flowing after a redial.
	Tracer *telemetry.TraceRecorder

	// Node labels this connection's trace events (the target node's ID).
	Node string
}

func (c *ReconnConfig) fillDefaults() {
	if c.MaxRedials <= 0 {
		c.MaxRedials = 3
	}
	if c.RedialBackoff <= 0 {
		c.RedialBackoff = 2 * time.Millisecond
	}
	if c.VerbTimeout == 0 {
		c.VerbTimeout = 2 * time.Second
	}
	if c.VerbTimeout < 0 {
		c.VerbTimeout = 0
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
}

// ReconnQP is a fault-tolerant initiator: it drives verbs through an
// underlying QP and, when the transport dies, redials, re-runs QueryMRs to
// re-resolve rkeys (they may change across endpoint restarts — stale rkeys
// held by callers are translated by MR name), and replays the failed verb
// when that is provably safe:
//
//   - READ / WRITE / WriteBatch / WRITE_WITH_IMM are idempotent against a
//     stable region layout and are replayed transparently (a replayed
//     WriteImm re-fires the doorbell; RDX doorbell handlers — cacheline
//     invalidation — are idempotent by design).
//   - CAS / FETCH_ADD are replayed only when provably unexecuted (the post
//     was refused before reaching the wire, ErrUnposted). A lost completion
//     after posting surfaces as ErrUncertain, matching real RC-QP error
//     semantics: the initiator cannot know whether the atomic landed.
//
// Rkeys handed to callers (via this wrapper's QueryMRs) are VIRTUAL: the
// first rkey observed for a region name stays that region's caller-visible
// rkey across every reconnect, and the wrapper translates it to the live
// connection's real rkey at verb-issue time. A restarted endpoint may
// renumber its regions — even reusing an old rkey for a different region —
// without invalidating any handle the caller holds.
//
// The wrapper assumes the endpoint's *named* regions keep their address
// layout across restarts (true for RDX nodes, whose arena layout is
// deterministic); only rkeys are re-resolved.
//
// All methods are safe for concurrent use.
type ReconnQP struct {
	cfg ReconnConfig

	mu      sync.Mutex
	qp      *QP    // live QP, nil while disconnected
	gen     uint64 // connection generation, bumped per successful dial
	redials uint64
	closed  bool
	virt    map[string]uint32 // MR name → stable caller-visible rkey
	current map[string]uint32 // MR name → rkey on the live connection
}

// NewReconnQP dials the first connection eagerly (so configuration errors
// surface immediately) and returns the wrapper.
func NewReconnQP(cfg ReconnConfig) (*ReconnQP, error) {
	if cfg.Dial == nil {
		return nil, errors.New("rdma: ReconnConfig.Dial is required")
	}
	cfg.fillDefaults()
	r := &ReconnQP{
		cfg:     cfg,
		virt:    make(map[string]uint32),
		current: make(map[string]uint32),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.connectLocked(); err != nil {
		return nil, fmt.Errorf("rdma: initial connect: %w", err)
	}
	return r, nil
}

// connectLocked dials, installs the verb deadline, and refreshes the rkey
// translation tables from the endpoint's current MR table. Caller holds mu.
func (r *ReconnQP) connectLocked() error {
	conn, err := r.cfg.Dial()
	if err != nil {
		return err
	}
	qp := NewQP(conn)
	qp.SetTimeout(r.cfg.VerbTimeout)
	qp.SetInstruments(r.cfg.Metrics, r.cfg.Tracer, r.cfg.Node)
	mrs, err := qp.QueryMRs()
	if err != nil {
		qp.Close()
		return err
	}
	for _, mr := range mrs {
		r.adoptLocked(mr.Name, mr.RKey)
	}
	r.qp = qp
	r.gen++
	return nil
}

// adoptLocked records a region's live rkey and returns its stable virtual
// rkey, assigning one on first sight. The live rkey is preferred as the
// virtual value, but a restarted endpoint may hand a NEW region an rkey
// number an older region already owns virtually — then a free number is
// picked instead, keeping the virtual space collision-free. Caller holds mu.
func (r *ReconnQP) adoptLocked(name string, rkey uint32) uint32 {
	r.current[name] = rkey
	if v, ok := r.virt[name]; ok {
		return v
	}
	used := make(map[uint32]bool, len(r.virt))
	for _, v := range r.virt {
		used[v] = true
	}
	v := rkey
	for used[v] {
		v++
	}
	r.virt[name] = v
	return v
}

// Generation reports how many connections have been established; it starts
// at 1 and grows by one per successful redial.
// SetInstruments attaches wire metrics, a trace recorder, and a node label
// to this connection — the live QP immediately, and every future generation
// via the stored config — mirroring (*QP).SetInstruments so callers can
// instrument either issuer uniformly after construction.
func (r *ReconnQP) SetInstruments(m *WireMetrics, tr *telemetry.TraceRecorder, node string) {
	r.mu.Lock()
	r.cfg.Metrics, r.cfg.Tracer, r.cfg.Node = m, tr, node
	qp := r.qp
	r.mu.Unlock()
	if qp != nil {
		qp.SetInstruments(m, tr, node)
	}
}

func (r *ReconnQP) Generation() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen
}

// acquire returns the live QP, dialing one if the previous generation died.
func (r *ReconnQP) acquire() (*QP, uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, 0, ErrClosed
	}
	if r.qp == nil {
		r.redials++
		if err := r.connectLocked(); err != nil {
			return nil, 0, err
		}
		r.cfg.Metrics.reconnected()
		r.cfg.Logf("rdma: reconnected (generation %d)", r.gen)
	}
	return r.qp, r.gen, nil
}

// invalidate retires a dead generation so the next verb redials. The close
// runs outside mu: QP.Close blocks until the read loop drains.
func (r *ReconnQP) invalidate(gen uint64, qp *QP) {
	r.mu.Lock()
	dead := r.gen == gen && r.qp == qp
	if dead {
		r.qp = nil
	}
	r.mu.Unlock()
	if dead {
		qp.Close()
	}
}

// resolver snapshots the rkey translation: each region's stable virtual
// rkey maps to the same-named region's rkey on the live connection.
func (r *ReconnQP) resolver() func(uint32) uint32 {
	r.mu.Lock()
	remap := make(map[uint32]uint32, len(r.virt))
	for name, v := range r.virt {
		if cur, ok := r.current[name]; ok {
			remap[v] = cur
		}
	}
	r.mu.Unlock()
	return func(rkey uint32) uint32 {
		if cur, ok := remap[rkey]; ok {
			return cur
		}
		return rkey
	}
}

// do drives one verb with redial-and-replay. idempotent marks verbs safe to
// replay even if a previous attempt executed remotely.
func (r *ReconnQP) do(idempotent bool, op func(qp *QP, rkey func(uint32) uint32) error) error {
	return r.doCtx(context.Background(), idempotent, op)
}

// doCtx is do bounded by ctx: a cancellation fires during the redial
// backoff sleeps (the verb itself honors ctx through the QP wait path).
func (r *ReconnQP) doCtx(ctx context.Context, idempotent bool, op func(qp *QP, rkey func(uint32) uint32) error) error {
	backoff := r.cfg.RedialBackoff
	for attempt := 0; ; attempt++ {
		qp, gen, err := r.acquire()
		if err == nil {
			posted := false
			err = op(qp, r.resolver())
			if err == nil || !IsTransportErr(err) {
				return err
			}
			posted = !errors.Is(err, ErrUnposted)
			r.invalidate(gen, qp)
			if !idempotent && posted {
				// The verb reached the wire but its completion was lost:
				// the atomic may or may not have executed. Never replay.
				return fmt.Errorf("%w: %v", ErrUncertain, err)
			}
			// A verb that reached the wire and will run again on a fresh
			// connection is a replay; refused posts are plain retries.
			if posted && attempt < r.cfg.MaxRedials {
				r.cfg.Metrics.replayed()
			}
		} else if errors.Is(err, ErrClosed) && r.isClosed() {
			return err
		}
		if attempt >= r.cfg.MaxRedials {
			return err
		}
		r.cfg.Logf("rdma: transport failure (attempt %d/%d): %v", attempt+1, r.cfg.MaxRedials+1, err)
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return fmt.Errorf("%w: %w", ErrTimeout, ctx.Err())
		}
		backoff *= 2
	}
}

func (r *ReconnQP) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// ReadCtx implements Verbs with transparent redial and replay.
func (r *ReconnQP) ReadCtx(ctx context.Context, rkey uint32, addr mem.Addr, n int) ([]byte, error) {
	var out []byte
	err := r.doCtx(ctx, true, func(qp *QP, rk func(uint32) uint32) error {
		var err error
		out, err = qp.ReadCtx(ctx, rk(rkey), addr, n)
		return err
	})
	return out, err
}

// Read is ReadCtx without a bounding context.
func (r *ReconnQP) Read(rkey uint32, addr mem.Addr, n int) ([]byte, error) {
	return r.ReadCtx(context.Background(), rkey, addr, n)
}

// WriteCtx implements Verbs with transparent redial and replay.
func (r *ReconnQP) WriteCtx(ctx context.Context, rkey uint32, addr mem.Addr, data []byte) error {
	return r.doCtx(ctx, true, func(qp *QP, rk func(uint32) uint32) error {
		return qp.WriteCtx(ctx, rk(rkey), addr, data)
	})
}

// Write is WriteCtx without a bounding context.
func (r *ReconnQP) Write(rkey uint32, addr mem.Addr, data []byte) error {
	return r.WriteCtx(context.Background(), rkey, addr, data)
}

// WriteImmCtx implements Verbs with transparent redial and replay; a replay
// re-fires the doorbell.
func (r *ReconnQP) WriteImmCtx(ctx context.Context, rkey uint32, addr mem.Addr, imm uint32, data []byte) error {
	return r.doCtx(ctx, true, func(qp *QP, rk func(uint32) uint32) error {
		return qp.WriteImmCtx(ctx, rk(rkey), addr, imm, data)
	})
}

// WriteImm is WriteImmCtx without a bounding context.
func (r *ReconnQP) WriteImm(rkey uint32, addr mem.Addr, imm uint32, data []byte) error {
	return r.WriteImmCtx(context.Background(), rkey, addr, imm, data)
}

// WriteBatchCtx implements Verbs: on transport failure the WHOLE batch is
// replayed on the fresh connection (all sub-verbs are plain writes, so the
// replay converges to the same memory image regardless of how far the dead
// connection got).
func (r *ReconnQP) WriteBatchCtx(ctx context.Context, ops []BatchOp) error {
	return r.doCtx(ctx, true, func(qp *QP, rk func(uint32) uint32) error {
		translated := make([]BatchOp, len(ops))
		for i, op := range ops {
			op.RKey = rk(op.RKey)
			translated[i] = op
		}
		return qp.WriteBatchCtx(ctx, translated)
	})
}

// WriteBatch is WriteBatchCtx without a bounding context.
func (r *ReconnQP) WriteBatch(ops []BatchOp) error {
	return r.WriteBatchCtx(context.Background(), ops)
}

// CompareAndSwapCtx implements Verbs. It is replayed only when provably
// unexecuted; a completion lost after posting surfaces as ErrUncertain.
func (r *ReconnQP) CompareAndSwapCtx(ctx context.Context, rkey uint32, addr mem.Addr, old, new uint64) (prev uint64, err error) {
	err = r.doCtx(ctx, false, func(qp *QP, rk func(uint32) uint32) error {
		var err error
		prev, err = qp.CompareAndSwapCtx(ctx, rk(rkey), addr, old, new)
		return err
	})
	return prev, err
}

// CompareAndSwap is CompareAndSwapCtx without a bounding context.
func (r *ReconnQP) CompareAndSwap(rkey uint32, addr mem.Addr, old, new uint64) (prev uint64, err error) {
	return r.CompareAndSwapCtx(context.Background(), rkey, addr, old, new)
}

// FetchAddCtx implements Verbs. Same replay rules as CompareAndSwapCtx.
func (r *ReconnQP) FetchAddCtx(ctx context.Context, rkey uint32, addr mem.Addr, delta uint64) (prev uint64, err error) {
	err = r.doCtx(ctx, false, func(qp *QP, rk func(uint32) uint32) error {
		var err error
		prev, err = qp.FetchAddCtx(ctx, rk(rkey), addr, delta)
		return err
	})
	return prev, err
}

// FetchAdd is FetchAddCtx without a bounding context.
func (r *ReconnQP) FetchAdd(rkey uint32, addr mem.Addr, delta uint64) (prev uint64, err error) {
	return r.FetchAddCtx(context.Background(), rkey, addr, delta)
}

// QueryMRs implements Verbs. The returned table carries each region's
// stable virtual rkey, so handles built on it survive reconnects even when
// the endpoint renumbers its regions.
func (r *ReconnQP) QueryMRs() ([]MR, error) {
	var out []MR
	err := r.do(true, func(qp *QP, _ func(uint32) uint32) error {
		var err error
		out, err = qp.QueryMRs()
		return err
	})
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	for i := range out {
		out[i].RKey = r.adoptLocked(out[i].Name, out[i].RKey)
	}
	r.mu.Unlock()
	return out, nil
}

// Close implements Verbs: the live QP is torn down and every later verb
// (and redial) fails with ErrClosed.
func (r *ReconnQP) Close() error {
	r.mu.Lock()
	qp := r.qp
	r.qp = nil
	r.closed = true
	r.mu.Unlock()
	if qp != nil {
		return qp.Close()
	}
	return nil
}

var _ Verbs = (*ReconnQP)(nil)
