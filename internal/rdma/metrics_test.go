package rdma

import (
	"context"
	"testing"
	"time"

	"rdx/internal/mem"
	"rdx/internal/telemetry"
)

func TestOpNameLabels(t *testing.T) {
	for op, want := range map[uint8]string{
		OpRead: "read", OpWrite: "write", OpCAS: "cas",
		OpFetchAdd: "fetch_add", OpWriteImm: "write_imm",
		OpQueryMRs: "query_mrs", OpBatch: "batch",
	} {
		if got := OpName(op); got != want {
			t.Errorf("OpName(%d) = %q, want %q", op, got, want)
		}
	}
	if got := OpName(0xEE); got != "unknown" {
		t.Errorf("OpName(0xEE) = %q", got)
	}
}

// TestNilWireMetricsSafe pins the no-op contract: every record helper must
// be callable on a nil receiver (uninstrumented QPs and endpoints).
func TestNilWireMetricsSafe(t *testing.T) {
	var m *WireMetrics
	m.verbDone(OpWrite, 10, 5, nil)
	m.served(OpRead, 10, 5, 5, nil)
	m.sent(3)
	m.timedOut()
	m.reconnected()
	m.replayed()
	m.doorbellFired()
}

// TestWireMetricsAccumulateAcrossReconnect is the no-double-count guarantee:
// instruments are registry-owned and shared by every QP generation behind a
// ReconnQP, so a mid-stream connection kill must neither reset the counters
// nor record any completion twice — the verb counter and its latency
// histogram stay in lockstep across the redial.
func TestWireMetricsAccumulateAcrossReconnect(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewWireMetrics(reg, "rdma.qp")
	_, mr, d, r := reconnRig(t, 1<<16)
	r.SetInstruments(m, nil, "n")

	if err := r.Write(mr.RKey, 0, []byte("one")); err != nil {
		t.Fatal(err)
	}
	d.last().Kill()
	if err := r.Write(mr.RKey, 64, []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := r.Write(mr.RKey, 128, []byte("three")); err != nil {
		t.Fatal(err)
	}
	if g := r.Generation(); g != 2 {
		t.Fatalf("generation = %d, want 2 (test needs exactly one reconnect)", g)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["rdma.qp.reconnects"]; got != 1 {
		t.Errorf("reconnects = %d, want 1", got)
	}
	// Three writes succeeded across two generations; the one that straddled
	// the kill may additionally have completed with a transport error before
	// its replay. A generation that reset its instruments would report < 3.
	writes := snap.Counters["rdma.qp.verbs.write"]
	if writes < 3 {
		t.Errorf("verbs.write = %d, want >= 3 (counter reset across reconnect?)", writes)
	}
	if errs := snap.Counters["rdma.qp.errors"]; writes-errs != 3 {
		t.Errorf("successful writes = %d (verbs %d - errors %d), want exactly 3",
			writes-errs, writes, errs)
	}
	// Each completion records into the histogram exactly once: count drift
	// in either direction means double-counting or dropped samples.
	if h := snap.Histograms["rdma.qp.lat.write"]; h.Count != writes {
		t.Errorf("lat.write count = %d, verbs.write = %d; must match", h.Count, writes)
	}
	if got := snap.Counters["rdma.qp.bytes_out"]; got == 0 {
		t.Error("bytes_out = 0 after three writes")
	}
}

// TestEndpointServedMetricsAndTrace drives one traced verb through a live
// endpoint and checks the service-side accounting: the endpoint's registry
// counts the verb, and its trace recorder tags the span with the trace ID
// the initiator put on the wire.
func TestEndpointServedMetricsAndTrace(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTraceRecorder(16)
	arena := mem.NewArena(1 << 12)
	ep := NewEndpoint(arena, nil)
	ep.SetInstruments(NewWireMetrics(reg, "ep"), tr, "node-under-test")
	mr, err := ep.RegisterMR("all", 0, arena.Size(), PermAll)
	if err != nil {
		t.Fatal(err)
	}
	fab := NewFabric()
	l, err := fab.Listen("n")
	if err != nil {
		t.Fatal(err)
	}
	go ep.Serve(l)
	conn, err := fab.Dial("n")
	if err != nil {
		t.Fatal(err)
	}
	qp := NewQP(conn)
	t.Cleanup(func() {
		qp.Close()
		ep.Close()
	})

	trace := telemetry.NextTraceID()
	ctx := telemetry.WithTraceID(context.Background(), trace)
	if err := qp.WriteCtx(ctx, mr.RKey, 0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// The endpoint records after replying, so give its goroutine a moment.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if len(tr.Trace(trace)) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}

	if got := reg.Snapshot().Counters["ep.verbs.write"]; got != 1 {
		t.Errorf("endpoint verbs.write = %d, want 1", got)
	}
	evs := tr.Trace(trace)
	if len(evs) != 1 || evs[0].Layer != "endpoint" || evs[0].Name != "write" {
		t.Fatalf("trace events = %+v, want one endpoint write span", evs)
	}
	if evs[0].Node != "node-under-test" {
		t.Errorf("span node = %q", evs[0].Node)
	}
}
