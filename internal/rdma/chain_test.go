package rdma

import (
	"errors"
	"sync"
	"testing"

	"rdx/internal/mem"
	"rdx/internal/verbchain"
)

// armChain validates and writes a chain region into the rig's arena at base
// over the wire, then returns the region rkey to trigger with.
func armChain(t *testing.T, qp *QP, rkey uint32, base mem.Addr, prog *verbchain.Program, regions []verbchain.Region) {
	t.Helper()
	if err := prog.Validate(regions); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if err := qp.Write(rkey, base, verbchain.EncodeRegion(prog)); err != nil {
		t.Fatalf("arm: %v", err)
	}
}

func regionOf(mr *MR) verbchain.Region {
	return verbchain.Region{
		RKey:   mr.RKey,
		Addr:   uint64(mr.Addr),
		Len:    mr.Len,
		Read:   mr.Perm&PermRead != 0,
		Write:  mr.Perm&PermWrite != 0,
		Atomic: mr.Perm&PermAtomic != 0,
	}
}

// TestChainTriggerExecutes drives a two-op chain over the fabric: CAS a
// word and write the trigger argument elsewhere, one wire verb total.
func TestChainTriggerExecutes(t *testing.T) {
	arena, ep, qp := newTestRig(t, 1<<16, nil)
	mr, err := ep.RegisterMR("all", 0, arena.Size(), PermAll)
	if err != nil {
		t.Fatal(err)
	}
	const chainBase, target, argDst = 0x1000, 0x100, 0x108
	prog := &verbchain.Program{Ops: []verbchain.Op{
		{Kind: verbchain.KindCAS, RKey: mr.RKey, Addr: target,
			Cmp: verbchain.Imm(0), Src: verbchain.Imm(77), Dst: verbchain.NoReg, AbortIfLost: true},
		{Kind: verbchain.KindWrite, RKey: mr.RKey, Addr: argDst,
			Src: verbchain.Reg(verbchain.ArgReg), Dst: verbchain.NoReg},
	}}
	armChain(t, qp, mr.RKey, chainBase, prog, []verbchain.Region{regionOf(mr)})

	res, err := qp.ChainTrigger(mr.RKey, chainBase, 0xDEAD)
	if err != nil {
		t.Fatalf("trigger: %v", err)
	}
	if res.Trigger != 1 || res.Code() != verbchain.StatusOK {
		t.Fatalf("result = %+v", res)
	}
	if v, _ := arena.ReadQword(target); v != 77 {
		t.Errorf("CAS target = %d, want 77", v)
	}
	if v, _ := arena.ReadQword(argDst); v != 0xDEAD {
		t.Errorf("arg write = %#x, want 0xdead", v)
	}
	if st, _ := arena.ReadQword(chainBase + verbchain.OffStatus); verbchain.StatusCode(st) != verbchain.StatusOK {
		t.Errorf("persisted status = %#x", st)
	}
}

// TestChainRotatedRegionFailsTyped pins the acceptance criterion: a trigger
// against a rotated chain-region rkey fails ErrAccess — typed, and the
// stale resident program provably never executes.
func TestChainRotatedRegionFailsTyped(t *testing.T) {
	arena, ep, qp := newTestRig(t, 1<<16, nil)
	mr, err := ep.RegisterMR("chain", 0x1000, 0x1000, PermAll)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := ep.RegisterMR("data", 0, 0x100, PermAll)
	if err != nil {
		t.Fatal(err)
	}
	prog := &verbchain.Program{Ops: []verbchain.Op{
		{Kind: verbchain.KindWrite, RKey: tgt.RKey, Addr: 0x0,
			Src: verbchain.Imm(1), Dst: verbchain.NoReg},
	}}
	armChain(t, qp, mr.RKey, 0x1000, prog, []verbchain.Region{regionOf(mr), regionOf(tgt)})

	if _, err := ep.RotateMR("chain"); err != nil {
		t.Fatal(err)
	}
	_, err = qp.ChainTrigger(mr.RKey, 0x1000, 0)
	if !errors.Is(err, ErrAccess) {
		t.Fatalf("trigger on rotated region: err = %v, want ErrAccess", err)
	}
	if v, _ := arena.ReadQword(0x0); v != 0 {
		t.Errorf("stale program executed: target = %d", v)
	}
	if trig, _ := arena.ReadQword(0x1000 + verbchain.OffTrigger); trig != 0 {
		t.Errorf("trigger count bumped on rotated region: %d", trig)
	}
}

// TestChainStepRevokedByRotation rotates a STEP target's rkey after arming:
// the trigger itself executes (the region key is fine), but the step's
// fire-time re-resolution fails and the chain reports revoked.
func TestChainStepRevokedByRotation(t *testing.T) {
	arena, ep, qp := newTestRig(t, 1<<16, nil)
	mr, err := ep.RegisterMR("chain", 0x1000, 0x1000, PermAll)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := ep.RegisterMR("data", 0, 0x100, PermAll)
	if err != nil {
		t.Fatal(err)
	}
	prog := &verbchain.Program{Ops: []verbchain.Op{
		{Kind: verbchain.KindWrite, RKey: tgt.RKey, Addr: 0x0,
			Src: verbchain.Imm(9), Dst: verbchain.NoReg},
	}}
	armChain(t, qp, mr.RKey, 0x1000, prog, []verbchain.Region{regionOf(mr), regionOf(tgt)})

	if _, err := ep.RotateMR("data"); err != nil {
		t.Fatal(err)
	}
	res, err := qp.ChainTrigger(mr.RKey, 0x1000, 0)
	if !errors.Is(err, ErrChainRevoked) {
		t.Fatalf("err = %v, want ErrChainRevoked", err)
	}
	if res.Code() != verbchain.StatusRevoked {
		t.Errorf("status = %d, want revoked", res.Code())
	}
	if v, _ := arena.ReadQword(0x0); v != 0 {
		t.Errorf("revoked step executed: target = %d", v)
	}
}

// TestChainGuardRevokes points a program guard at an epoch word and bumps
// it: the armed chain revokes on its next firing without being touched.
func TestChainGuardRevokes(t *testing.T) {
	arena, ep, qp := newTestRig(t, 1<<16, nil)
	mr, err := ep.RegisterMR("all", 0, arena.Size(), PermAll)
	if err != nil {
		t.Fatal(err)
	}
	const chainBase, epochW, target = 0x1000, 0x100, 0x108
	if err := arena.WriteQword(epochW, 5); err != nil {
		t.Fatal(err)
	}
	prog := &verbchain.Program{
		Ops: []verbchain.Op{{Kind: verbchain.KindWrite, RKey: mr.RKey, Addr: target,
			Src: verbchain.Imm(1), Dst: verbchain.NoReg}},
		Guard: verbchain.Guard{Enabled: true, RKey: mr.RKey, Addr: epochW, Want: 5},
	}
	armChain(t, qp, mr.RKey, chainBase, prog, []verbchain.Region{regionOf(mr)})

	if _, err := qp.ChainTrigger(mr.RKey, chainBase, 0); err != nil {
		t.Fatalf("guarded trigger: %v", err)
	}
	// Epoch bump = fencing: the same resident chain now revokes.
	if _, err := qp.FetchAdd(mr.RKey, epochW, 1); err != nil {
		t.Fatal(err)
	}
	_, err = qp.ChainTrigger(mr.RKey, chainBase, 0)
	if !errors.Is(err, ErrChainRevoked) {
		t.Fatalf("post-bump trigger: err = %v, want ErrChainRevoked", err)
	}
}

// TestChainBarrierFanIn exercises the WhenTrigger CAS-enable edge: N-1
// triggers skip the commit op, the Nth fires it and rings the doorbell.
func TestChainBarrierFanIn(t *testing.T) {
	arena, ep, qp := newTestRig(t, 1<<16, nil)
	mr, err := ep.RegisterMR("all", 0, arena.Size(), PermAll)
	if err != nil {
		t.Fatal(err)
	}
	const chainBase, commit = 0x1000, 0x100
	const parties = 4
	var mu sync.Mutex
	rang := 0
	ep.RegisterDoorbell(commit, 8, func(imm uint32, addr mem.Addr, data []byte) {
		mu.Lock()
		rang++
		mu.Unlock()
	})
	prog := &verbchain.Program{
		Ops: []verbchain.Op{{Kind: verbchain.KindCAS, RKey: mr.RKey, Addr: commit,
			Cmp: verbchain.Imm(0), Src: verbchain.Imm(42), Dst: verbchain.NoReg,
			AbortIfLost: true, When: verbchain.WhenTrigger(parties)}},
		Doorbell: &verbchain.Doorbell{RKey: mr.RKey, Addr: commit, Imm: 1},
	}
	armChain(t, qp, mr.RKey, chainBase, prog, []verbchain.Region{regionOf(mr)})

	for i := 1; i <= parties; i++ {
		res, err := qp.ChainTrigger(mr.RKey, chainBase, 0)
		if err != nil {
			t.Fatalf("arrival %d: %v", i, err)
		}
		if res.Trigger != uint64(i) {
			t.Fatalf("arrival %d: trigger count %d", i, res.Trigger)
		}
		v, _ := arena.ReadQword(commit)
		if i < parties && v != 0 {
			t.Fatalf("commit flipped at arrival %d", i)
		}
		if i == parties && v != 42 {
			t.Fatalf("final arrival did not commit: word = %d", v)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if rang != parties {
		// The doorbell rides chain completion, so each successful firing
		// (skipped ops included) rings once.
		t.Errorf("doorbell rang %d times, want %d", rang, parties)
	}
}

// TestChainWaitAndLoop drives the remaining op kinds end to end: a WAIT
// satisfied by pre-set memory and a counted loop of FETCH-ADDs.
func TestChainWaitAndLoop(t *testing.T) {
	arena, ep, qp := newTestRig(t, 1<<16, nil)
	mr, err := ep.RegisterMR("all", 0, arena.Size(), PermAll)
	if err != nil {
		t.Fatal(err)
	}
	const chainBase, flag, counter = 0x1000, 0x100, 0x108
	if err := arena.WriteQword(flag, 7); err != nil {
		t.Fatal(err)
	}
	prog := &verbchain.Program{Ops: []verbchain.Op{
		{Kind: verbchain.KindWait, RKey: mr.RKey, Addr: flag,
			Src: verbchain.Imm(7), Dst: verbchain.NoReg, Spins: 16},
		{Kind: verbchain.KindFetchAdd, RKey: mr.RKey, Addr: counter,
			Src: verbchain.Imm(1), Dst: verbchain.NoReg},
		{Kind: verbchain.KindLoop, To: 1, Spins: 5},
	}}
	armChain(t, qp, mr.RKey, chainBase, prog, []verbchain.Region{regionOf(mr)})

	res, err := qp.ChainTrigger(mr.RKey, chainBase, 0)
	if err != nil {
		t.Fatalf("trigger: %v", err)
	}
	if v, _ := arena.ReadQword(counter); v != 5 {
		t.Errorf("counter = %d, want 5 (loop expansion)", v)
	}
	if res.Steps == 0 {
		t.Errorf("steps = 0")
	}
}

// TestRemoteRotateMR round-trips the OpRotateMR verb: the returned rkey is
// live, the old one is fenced.
func TestRemoteRotateMR(t *testing.T) {
	arena, ep, qp := newTestRig(t, 1<<12, nil)
	_ = arena
	mr, err := ep.RegisterMR("r", 0, 0x100, PermAll)
	if err != nil {
		t.Fatal(err)
	}
	oldKey := mr.RKey
	newKey, err := qp.RotateMR("r")
	if err != nil {
		t.Fatalf("rotate: %v", err)
	}
	if newKey == oldKey {
		t.Fatalf("rotation returned the same rkey %#x", oldKey)
	}
	if err := qp.Write(oldKey, 0, []byte{1}); !errors.Is(err, ErrAccess) {
		t.Errorf("old rkey write: err = %v, want ErrAccess", err)
	}
	if err := qp.Write(newKey, 0, []byte{1}); err != nil {
		t.Errorf("new rkey write: %v", err)
	}
	if _, err := qp.RotateMR("nonesuch"); !errors.Is(err, ErrOp) {
		t.Errorf("rotate unknown region: err = %v, want ErrOp", err)
	}
}

// TestReconnChainVerbs drives the new verbs through the reconnecting
// wrapper: virtual rkeys stay stable across a rotation it performed.
func TestReconnChainVerbs(t *testing.T) {
	arena, mr, _, r := reconnRig(t, 1<<16)
	mrs, err := r.QueryMRs()
	if err != nil {
		t.Fatal(err)
	}
	virt := mrs[0].RKey
	prog := &verbchain.Program{Ops: []verbchain.Op{
		{Kind: verbchain.KindWrite, RKey: mr.RKey, Addr: 0x1800,
			Src: verbchain.Reg(verbchain.ArgReg), Dst: verbchain.NoReg},
	}}
	if err := prog.Validate(nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Write(virt, 0x1000, verbchain.EncodeRegion(prog)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ChainTrigger(virt, 0x1000, 11); err != nil {
		t.Fatalf("trigger via reconn: %v", err)
	}
	if v, _ := arena.ReadQword(0x1800); v != 11 {
		t.Fatalf("arg = %d, want 11", v)
	}
	// Rotate through the wrapper: the wrapper's virtual key keeps reaching
	// the region (so the trigger verb itself still completes), but the
	// REAL rkey baked into the resident program's step is now fenced — the
	// chain revokes at fire time, exactly like a stale single verb.
	if _, err := r.RotateMR("all"); err != nil {
		t.Fatalf("rotate via reconn: %v", err)
	}
	_, err = r.ChainTrigger(virt, 0x1000, 12)
	if !errors.Is(err, ErrChainRevoked) {
		t.Fatalf("trigger after rotate: err = %v, want ErrChainRevoked", err)
	}
	if v, _ := arena.ReadQword(0x1800); v != 11 {
		t.Errorf("revoked chain wrote: arg = %d, want 11 still", v)
	}
}
