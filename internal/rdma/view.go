package rdma

import (
	"context"

	"rdx/internal/mem"
)

// FrameView is a borrowed, zero-copy view of READ payload bytes, backed by
// the pooled wire frame the response arrived in. The bytes are valid until
// Release; the consumer MUST Release exactly once (DESIGN.md §12 ownership
// rules), after which the backing frame may be recycled and the view's
// bytes scribbled over. A zero FrameView (or one built by ViewOf over an
// ordinary heap slice) is valid and its Release is a no-op — that is the
// copy fallback issuers without a frame-aware transport return.
type FrameView struct {
	f    *FrameBuf
	data []byte
}

// ViewOf wraps an ordinary heap slice in a releasable view — the fallback
// for transports that deliver copies (the simulator, pre-view issuers).
func ViewOf(b []byte) FrameView { return FrameView{data: b} }

// Bytes returns the payload. Valid until Release for frame-backed views.
func (v FrameView) Bytes() []byte { return v.data }

// Release returns the backing frame to its pool (no-op for copy views).
func (v FrameView) Release() {
	if v.f != nil {
		v.f.Release()
	}
}

// FrameReader is the optional zero-copy read surface an issuer may provide
// alongside Verbs. Callers type-assert for it and fall back to ReadCtx plus
// ViewOf when absent, so the view path is an optimization, never a
// requirement.
type FrameReader interface {
	ReadFrameCtx(ctx context.Context, rkey uint32, addr mem.Addr, n int) (FrameView, error)
}

// ReadFrame is ReadFrameCtx without a bounding context.
func (qp *QP) ReadFrame(rkey uint32, addr mem.Addr, n int) (FrameView, error) {
	return qp.ReadFrameCtx(context.Background(), rkey, addr, n)
}

// ReadFrameCtx performs a one-sided READ and delivers the payload as a
// zero-copy view of the pooled response frame instead of a heap copy — the
// bulk-read twin of the writev send path. The caller must Release the view.
//
// One sharp edge, inherent to zero-copy completions: if the verb times out
// but its completion is already in flight, the retained frame strands until
// the GC reclaims it (it can never be recycled safely). The ordinary copy
// path has no such window, which is why views are opt-in for hot paths that
// poll with generous deadlines, not the default READ.
func (qp *QP) ReadFrameCtx(ctx context.Context, rkey uint32, addr mem.Addr, n int) (FrameView, error) {
	c, err := qp.callCtx(ctx, request{op: OpRead, rkey: rkey, addr: addr, len: uint32(n), view: true})
	if err != nil {
		if c.View != nil {
			c.View.Release() // error completion with data (shouldn't happen for READ)
		}
		return FrameView{}, err
	}
	return FrameView{f: c.View, data: c.Data}, nil
}

// ReadFrameCtx implements FrameReader with transparent redial and replay
// (READs are idempotent).
func (r *ReconnQP) ReadFrameCtx(ctx context.Context, rkey uint32, addr mem.Addr, n int) (FrameView, error) {
	var out FrameView
	err := r.doCtx(ctx, true, func(qp *QP, rk func(uint32) uint32) error {
		var err error
		out, err = qp.ReadFrameCtx(ctx, rk(rkey), addr, n)
		return err
	})
	return out, err
}

// ReadFrame is ReadFrameCtx without a bounding context.
func (r *ReconnQP) ReadFrame(rkey uint32, addr mem.Addr, n int) (FrameView, error) {
	return r.ReadFrameCtx(context.Background(), rkey, addr, n)
}

var (
	_ FrameReader = (*QP)(nil)
	_ FrameReader = (*ReconnQP)(nil)
)
