//go:build race

package rdma

// raceEnabled reports whether the race detector is compiled in. The
// zero-alloc regression tests skip under -race: instrumented code allocates
// shadow state on paths that are allocation-free in normal builds.
const raceEnabled = true
