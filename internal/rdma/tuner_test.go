package rdma

import (
	"testing"

	"rdx/internal/telemetry"
)

// TestTunerAdaptsThreshold feeds a fresh tuner synthetic syscall costs and
// checks the crossover lands where overhead/perByte says, clamped to the
// legal range, with the gauge tracking it.
func TestTunerAdaptsThreshold(t *testing.T) {
	tu := newWireTuner()
	if tu.writevThreshold() != tunerDefault {
		t.Fatalf("default threshold = %d, want %d", tu.writevThreshold(), tunerDefault)
	}

	// Fixed overhead ~100µs per write, ~1ns per byte: crossover at 100k
	// bytes, inside the clamp range.
	for i := 0; i < 50; i++ {
		tu.observe(1024, 100_000)               // small write: pure overhead
		tu.observe(1<<20, 100_000+int64(1<<20)) // large write: overhead + 1ns/B
	}
	th := tu.writevThreshold()
	if th < 90_000 || th > 110_000 {
		t.Errorf("threshold = %d, want ~100000", th)
	}

	// Tiny overhead: the crossover would be below tunerMin — clamp floor.
	lo := newWireTuner()
	for i := 0; i < 50; i++ {
		lo.observe(1024, 10)                  // ~10ns overhead
		lo.observe(1<<20, 10+int64(10*1<<20)) // 10ns/B
	}
	if th := lo.writevThreshold(); th != tunerMin {
		t.Errorf("low-overhead threshold = %d, want clamp floor %d", th, tunerMin)
	}

	// Huge overhead: crossover above tunerMax — clamp ceiling.
	hi := newWireTuner()
	for i := 0; i < 50; i++ {
		hi.observe(1024, 1_000_000_000)
		hi.observe(1<<20, 1_000_000_000+int64(1<<20))
	}
	if th := hi.writevThreshold(); th != tunerMax {
		t.Errorf("high-overhead threshold = %d, want clamp ceiling %d", th, tunerMax)
	}
}

// TestTunerGauge checks the registry gauge publishes the live threshold.
func TestTunerGauge(t *testing.T) {
	reg := telemetry.NewRegistry()
	old := tunerGauge.Load()
	defer tunerGauge.Store(old)
	bindTunerGauge(reg)
	g := reg.Gauge("rdma.wire.writev_threshold")
	if g.Value() == 0 {
		t.Fatalf("gauge unset after bind")
	}
	// A large-write observation that moves the global tuner must move the
	// gauge too.
	before := g.Value()
	for i := 0; i < 50; i++ {
		tuner.observe(1024, 500_000)
		tuner.observe(1<<20, 500_000+int64(1<<20))
	}
	if g.Value() == before && g.Value() != tunerMax {
		t.Errorf("gauge did not track threshold: still %d", g.Value())
	}
}

// TestTunerIgnoresDegenerateSamples pins the guards: non-positive
// durations and large writes cheaper than the learned overhead must not
// poison the estimate.
func TestTunerIgnoresDegenerateSamples(t *testing.T) {
	tu := newWireTuner()
	tu.observe(1024, 0)
	tu.observe(1024, -5)
	tu.observe(1<<20, 0)
	if tu.writevThreshold() != tunerDefault {
		t.Errorf("degenerate samples moved threshold to %d", tu.writevThreshold())
	}
	// Overhead learned high, then a large write faster than the overhead:
	// per-byte would be negative — must be discarded.
	tu.observe(1024, 1_000_000)
	tu.observe(1<<20, 500_000)
	if tu.writevThreshold() != tunerDefault {
		t.Errorf("negative per-byte sample moved threshold to %d", tu.writevThreshold())
	}
}
