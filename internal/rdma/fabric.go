package rdma

import (
	"fmt"
	"net"
	"sync"
)

// Fabric is an in-process RDMA network: a named set of endpoints reachable
// through synchronous in-memory pipes. It lets a whole cluster — control
// plane plus many data-plane nodes — run in one test or benchmark process
// with the same QP/endpoint code paths used over real TCP.
type Fabric struct {
	mu    sync.Mutex
	ports map[string]*pipeListener
}

// NewFabric creates an empty fabric.
func NewFabric() *Fabric {
	return &Fabric{ports: make(map[string]*pipeListener)}
}

// Listen claims a name on the fabric and returns a listener for it; an
// endpoint typically passes this straight to Serve.
func (f *Fabric) Listen(name string) (net.Listener, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.ports[name]; dup {
		return nil, fmt.Errorf("rdma: fabric name %q already in use", name)
	}
	l := &pipeListener{
		name:   name,
		accept: make(chan net.Conn),
		closed: make(chan struct{}),
		onClose: func() {
			f.mu.Lock()
			delete(f.ports, name)
			f.mu.Unlock()
		},
	}
	f.ports[name] = l
	return l, nil
}

// Dial opens a connection (one QP's transport) to the named listener.
func (f *Fabric) Dial(name string) (net.Conn, error) {
	f.mu.Lock()
	l, ok := f.ports[name]
	f.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("rdma: no fabric listener named %q", name)
	}
	client, server := net.Pipe()
	select {
	case l.accept <- server:
		return client, nil
	case <-l.closed:
		client.Close()
		server.Close()
		return nil, fmt.Errorf("rdma: fabric listener %q closed", name)
	}
}

// DialQP is Dial followed by NewQP.
func (f *Fabric) DialQP(name string) (*QP, error) {
	conn, err := f.Dial(name)
	if err != nil {
		return nil, err
	}
	return NewQP(conn), nil
}

// pipeListener adapts a channel of pipes to net.Listener.
type pipeListener struct {
	name    string
	accept  chan net.Conn
	closed  chan struct{}
	once    sync.Once
	onClose func()
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		if l.onClose != nil {
			l.onClose()
		}
	})
	return nil
}

func (l *pipeListener) Addr() net.Addr { return pipeAddr(l.name) }

type pipeAddr string

func (a pipeAddr) Network() string { return "rdx-fabric" }
func (a pipeAddr) String() string  { return string(a) }
