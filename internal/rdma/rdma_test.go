package rdma

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"rdx/internal/mem"
)

// newTestRig boots an endpoint on an in-memory fabric and returns a
// connected QP plus cleanup.
func newTestRig(t *testing.T, arenaSize int, lat *LatencyModel) (*mem.Arena, *Endpoint, *QP) {
	t.Helper()
	arena := mem.NewArena(arenaSize)
	ep := NewEndpoint(arena, lat)
	fab := NewFabric()
	l, err := fab.Listen("node0")
	if err != nil {
		t.Fatal(err)
	}
	go ep.Serve(l)
	qp, err := fab.DialQP("node0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		qp.Close()
		ep.Close()
	})
	return arena, ep, qp
}

func TestWireRequestRoundTrip(t *testing.T) {
	cases := []request{
		{op: OpRead, id: 1, rkey: 7, addr: 0x100, len: 64},
		{op: OpWrite, id: 2, rkey: 7, addr: 0x200, data: []byte("hello")},
		{op: OpCAS, id: 3, rkey: 7, addr: 0x300, cmp: 10, swap: 20},
		{op: OpFetchAdd, id: 4, rkey: 7, addr: 0x400, delta: 5},
		{op: OpWriteImm, id: 5, rkey: 7, addr: 0x500, imm: 0xABCD, data: []byte{1, 2}},
		{op: OpQueryMRs, id: 6},
	}
	for _, want := range cases {
		got, err := decodeRequest(want.encode())
		if err != nil {
			t.Fatalf("op %d: %v", want.op, err)
		}
		if got.op != want.op || got.id != want.id || got.rkey != want.rkey ||
			got.addr != want.addr || got.len != want.len || got.cmp != want.cmp ||
			got.swap != want.swap || got.delta != want.delta || got.imm != want.imm ||
			!bytes.Equal(got.data, want.data) {
			t.Errorf("op %d: round trip mismatch: got %+v want %+v", want.op, got, want)
		}
	}
}

func TestWireRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		nil,
		{1},
		{99, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, // unknown op
		(&request{op: OpCAS, id: 1, rkey: 1, addr: 8}).encode()[:15],     // truncated
	}
	for i, b := range bad {
		if _, err := decodeRequest(b); err == nil {
			t.Errorf("case %d: expected decode error", i)
		}
	}
	if _, err := decodeResponse([]byte{OpResp}); err == nil {
		t.Error("short response should fail")
	}
	if _, err := decodeResponse((&request{op: OpRead, id: 1}).encode()); err == nil {
		t.Error("response with wrong opcode should fail")
	}
}

func TestWireResponseRoundTripProperty(t *testing.T) {
	f := func(id uint64, status uint8, data []byte) bool {
		r := response{id: id, status: status, data: data}
		got, err := decodeResponse(r.encode())
		return err == nil && got.id == id && got.status == status && bytes.Equal(got.data, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, make([]byte, MaxFrame+1)); err == nil {
		t.Error("oversized frame accepted on write")
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(hdr[:]))); err == nil {
		t.Error("oversized frame accepted on read")
	}
}

func TestReadWriteOverFabric(t *testing.T) {
	arena, ep, qp := newTestRig(t, 1<<16, nil)
	mr, err := ep.RegisterMR("all", 0, arena.Size(), PermAll)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5A}, 300)
	if err := qp.Write(mr.RKey, 1000, payload); err != nil {
		t.Fatal(err)
	}
	got, err := qp.Read(mr.RKey, 1000, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("read-back mismatch")
	}
	// One-sided: data landed in the arena directly.
	local, _ := arena.Read(1000, 300)
	if !bytes.Equal(local, payload) {
		t.Error("arena does not hold written data")
	}
}

func TestQwordAndAtomicsOverFabric(t *testing.T) {
	_, ep, qp := newTestRig(t, 4096, nil)
	mr, _ := ep.RegisterMR("all", 0, 4096, PermAll)

	if err := qp.WriteQword(mr.RKey, 64, 42); err != nil {
		t.Fatal(err)
	}
	if v, err := qp.ReadQword(mr.RKey, 64); err != nil || v != 42 {
		t.Fatalf("qword = %d err=%v", v, err)
	}

	prev, err := qp.CompareAndSwap(mr.RKey, 64, 42, 43)
	if err != nil || prev != 42 {
		t.Fatalf("CAS prev = %d err=%v", prev, err)
	}
	prev, err = qp.CompareAndSwap(mr.RKey, 64, 42, 99)
	if err != nil || prev != 43 {
		t.Fatalf("failed CAS prev = %d err=%v, want 43", prev, err)
	}
	if v, _ := qp.ReadQword(mr.RKey, 64); v != 43 {
		t.Errorf("value after failed CAS = %d", v)
	}

	prev, err = qp.FetchAdd(mr.RKey, 64, 7)
	if err != nil || prev != 43 {
		t.Fatalf("FetchAdd prev = %d err=%v", prev, err)
	}
	if v, _ := qp.ReadQword(mr.RKey, 64); v != 50 {
		t.Errorf("value after FetchAdd = %d", v)
	}
}

func TestPermissionEnforcement(t *testing.T) {
	_, ep, qp := newTestRig(t, 4096, nil)
	ro, _ := ep.RegisterMR("ro", 0, 1024, PermRead)
	wo, _ := ep.RegisterMR("wo", 1024, 1024, PermWrite)
	na, _ := ep.RegisterMR("na", 2048, 1024, PermRead|PermWrite)

	if err := qp.Write(ro.RKey, 0, []byte{1}); err != ErrAccess {
		t.Errorf("write to read-only MR: %v, want ErrAccess", err)
	}
	if _, err := qp.Read(wo.RKey, 1024, 1); err != ErrAccess {
		t.Errorf("read of write-only MR: %v, want ErrAccess", err)
	}
	if _, err := qp.CompareAndSwap(na.RKey, 2048, 0, 1); err != ErrAccess {
		t.Errorf("atomic on non-atomic MR: %v, want ErrAccess", err)
	}
	if _, err := qp.FetchAdd(na.RKey, 2048, 1); err != ErrAccess {
		t.Errorf("fetchadd on non-atomic MR: %v, want ErrAccess", err)
	}
	if _, err := qp.Read(0xDEAD, 0, 1); err != ErrAccess {
		t.Errorf("unknown rkey: %v, want ErrAccess", err)
	}
}

func TestBoundsEnforcement(t *testing.T) {
	_, ep, qp := newTestRig(t, 4096, nil)
	mr, _ := ep.RegisterMR("mid", 1024, 512, PermAll)

	if _, err := qp.Read(mr.RKey, 1023, 1); err != ErrBounds {
		t.Errorf("read below MR: %v", err)
	}
	if _, err := qp.Read(mr.RKey, 1024+512, 1); err != ErrBounds {
		t.Errorf("read past MR: %v", err)
	}
	if err := qp.Write(mr.RKey, 1534, []byte{1, 2, 3}); err != ErrBounds {
		t.Errorf("write straddling MR end: %v", err)
	}
	if _, err := qp.Read(mr.RKey, 1024, 512); err != nil {
		t.Errorf("full-region read should pass: %v", err)
	}
	// Overflow-probing address.
	if _, err := qp.Read(mr.RKey, ^uint64(0)-3, 8); err != ErrBounds {
		t.Errorf("overflow address: %v", err)
	}
}

func TestMRRegistration(t *testing.T) {
	arena := mem.NewArena(4096)
	ep := NewEndpoint(arena, nil)
	if _, err := ep.RegisterMR("a", 0, 4096, PermAll); err != nil {
		t.Fatal(err)
	}
	if _, err := ep.RegisterMR("a", 0, 10, PermRead); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := ep.RegisterMR("b", 4000, 200, PermAll); err == nil {
		t.Error("out-of-arena MR accepted")
	}
	if _, err := ep.RegisterMR("c", 0, 0, PermAll); err == nil {
		t.Error("zero-length MR accepted")
	}
	mr, ok := ep.MRByName("a")
	if !ok || mr.Len != 4096 {
		t.Error("MRByName lookup failed")
	}
	if err := ep.DeregisterMR(mr.RKey); err != nil {
		t.Fatal(err)
	}
	if _, ok := ep.MRByName("a"); ok {
		t.Error("MR survived deregistration")
	}
	if err := ep.DeregisterMR(mr.RKey); err == nil {
		t.Error("double deregistration accepted")
	}
}

func TestQueryMRs(t *testing.T) {
	_, ep, qp := newTestRig(t, 8192, nil)
	ep.RegisterMR("got", 0, 1024, PermRead)
	ep.RegisterMR("code", 1024, 4096, PermWrite|PermRead)

	mrs, err := qp.QueryMRs()
	if err != nil {
		t.Fatal(err)
	}
	if len(mrs) != 2 {
		t.Fatalf("got %d MRs, want 2", len(mrs))
	}
	byName := map[string]MR{}
	for _, mr := range mrs {
		byName[mr.Name] = mr
	}
	if got := byName["code"]; got.Addr != 1024 || got.Len != 4096 || got.Perm != (PermWrite|PermRead) {
		t.Errorf("code MR = %+v", got)
	}
}

func TestWriteImmFiresDoorbell(t *testing.T) {
	_, ep, qp := newTestRig(t, 4096, nil)
	mr, _ := ep.RegisterMR("cb", 0, 1024, PermAll)

	var mu sync.Mutex
	var gotImm uint32
	var gotAddr mem.Addr
	fired := make(chan struct{}, 1)
	ep.RegisterDoorbell(0, 1024, func(imm uint32, addr mem.Addr, data []byte) {
		mu.Lock()
		gotImm, gotAddr = imm, addr
		mu.Unlock()
		fired <- struct{}{}
	})

	if err := qp.WriteImm(mr.RKey, 128, 0xFEED, []byte{9, 9}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("doorbell never fired")
	}
	mu.Lock()
	defer mu.Unlock()
	if gotImm != 0xFEED || gotAddr != 128 {
		t.Errorf("doorbell imm=%#x addr=%d", gotImm, gotAddr)
	}
}

func TestDoorbellOutsideRangeNotFired(t *testing.T) {
	_, ep, qp := newTestRig(t, 4096, nil)
	mr, _ := ep.RegisterMR("all", 0, 4096, PermAll)
	fired := make(chan struct{}, 1)
	ep.RegisterDoorbell(0, 64, func(uint32, mem.Addr, []byte) { fired <- struct{}{} })
	if err := qp.WriteImm(mr.RKey, 2048, 1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
		t.Error("doorbell fired for out-of-range write")
	case <-time.After(20 * time.Millisecond):
	}
}

func TestLargeWriteSegmentation(t *testing.T) {
	arena, ep, qp := newTestRig(t, 5<<20, nil)
	mr, _ := ep.RegisterMR("all", 0, arena.Size(), PermAll)
	big := make([]byte, 3<<20) // forces 3 segments
	for i := range big {
		big[i] = byte(i * 31)
	}
	if err := qp.Write(mr.RKey, 0, big); err != nil {
		t.Fatal(err)
	}
	got, err := qp.Read(mr.RKey, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big[:1<<20]) {
		t.Error("segmented write corrupted data")
	}
	tail, _ := arena.Read(3<<20-16, 16)
	if !bytes.Equal(tail, big[len(big)-16:]) {
		t.Error("tail segment missing")
	}
}

func TestConcurrentQPs(t *testing.T) {
	arena := mem.NewArena(1 << 16)
	ep := NewEndpoint(arena, nil)
	mr, _ := ep.RegisterMR("all", 0, arena.Size(), PermAll)
	fab := NewFabric()
	l, _ := fab.Listen("n")
	go ep.Serve(l)
	defer ep.Close()

	const qps, opsPer = 4, 200
	var wg sync.WaitGroup
	for i := 0; i < qps; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			qp, err := fab.DialQP("n")
			if err != nil {
				t.Error(err)
				return
			}
			defer qp.Close()
			for j := 0; j < opsPer; j++ {
				if _, err := qp.FetchAdd(mr.RKey, 0, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if v, _ := arena.ReadQword(0); v != qps*opsPer {
		t.Errorf("counter = %d, want %d", v, qps*opsPer)
	}
}

func TestPipelinedAsyncWrites(t *testing.T) {
	arena, ep, qp := newTestRig(t, 1<<16, nil)
	mr, _ := ep.RegisterMR("all", 0, arena.Size(), PermAll)

	var chans []<-chan Completion
	for i := 0; i < 50; i++ {
		ch, err := qp.PostWrite(mr.RKey, mem.Addr(i*8), binary.LittleEndian.AppendUint64(nil, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for i, ch := range chans {
		if c := <-ch; c.Err != nil {
			t.Fatalf("write %d: %v", i, c.Err)
		}
	}
	for i := 0; i < 50; i++ {
		if v, _ := arena.ReadQword(mem.Addr(i * 8)); v != uint64(i) {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}

func TestQPCloseFailsPending(t *testing.T) {
	_, ep, qp := newTestRig(t, 4096, NoLatency())
	mr, _ := ep.RegisterMR("all", 0, 4096, PermAll)
	// Issue a valid op first to confirm liveness, then close and verify error.
	if err := qp.WriteQword(mr.RKey, 0, 1); err != nil {
		t.Fatal(err)
	}
	qp.Close()
	if err := qp.Write(mr.RKey, 0, []byte{1}); err == nil {
		t.Error("write on closed QP succeeded")
	}
}

func TestLatencyModelApplied(t *testing.T) {
	lat := &LatencyModel{Base: 200 * time.Microsecond}
	_, ep, qp := newTestRig(t, 4096, lat)
	mr, _ := ep.RegisterMR("all", 0, 4096, PermAll)

	start := time.Now()
	const ops = 10
	for i := 0; i < ops; i++ {
		if _, err := qp.ReadQword(mr.RKey, 0); err != nil {
			t.Fatal(err)
		}
	}
	el := time.Since(start)
	if el < ops*200*time.Microsecond {
		t.Errorf("10 ops with 200us base took %v, want >= 2ms", el)
	}
}

func TestLatencyModelDuration(t *testing.T) {
	m := &LatencyModel{Base: time.Microsecond, BytesPerSec: 1e9}
	if d := m.Duration(0); d != time.Microsecond {
		t.Errorf("zero-byte duration = %v", d)
	}
	if d := m.Duration(1e6); d != time.Microsecond+time.Millisecond {
		t.Errorf("1MB duration = %v", d)
	}
	if d := NoLatency().Duration(1 << 20); d != 0 {
		t.Errorf("NoLatency duration = %v", d)
	}
	if DefaultLatency().Duration(64) < time.Microsecond {
		t.Error("default latency implausibly low")
	}
}

func TestFabricDialUnknown(t *testing.T) {
	fab := NewFabric()
	if _, err := fab.Dial("nope"); err == nil {
		t.Error("dial to unknown name succeeded")
	}
}

func TestFabricNameReuseAfterClose(t *testing.T) {
	fab := NewFabric()
	l, err := fab.Listen("n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fab.Listen("n"); err == nil {
		t.Error("duplicate listen accepted")
	}
	l.Close()
	if _, err := fab.Listen("n"); err != nil {
		t.Errorf("name not released after close: %v", err)
	}
}

func TestOverTCP(t *testing.T) {
	// The same endpoint/QP code must work over real TCP (cmd/rdxd path).
	arena := mem.NewArena(8192)
	ep := NewEndpoint(arena, nil)
	mr, _ := ep.RegisterMR("all", 0, arena.Size(), PermAll)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ep.Serve(l)
	defer ep.Close()

	qp, err := Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer qp.Close()

	if err := qp.Write(mr.RKey, 100, []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	got, err := qp.Read(mr.RKey, 100, 8)
	if err != nil || !bytes.Equal(got, []byte("over tcp")) {
		t.Fatalf("got %q err=%v", got, err)
	}
	mrs, err := qp.QueryMRs()
	if err != nil || len(mrs) != 1 {
		t.Fatalf("QueryMRs over TCP: %v", err)
	}
}

func TestWireBatchRoundTrip(t *testing.T) {
	want := request{op: OpBatch, id: 9, subs: []request{
		{op: OpWrite, rkey: 7, addr: 0x100, data: []byte("abc")},
		{op: OpWrite, rkey: 8, addr: 0x200, data: nil},
		{op: OpWriteImm, rkey: 7, addr: 0x300, imm: 0xFEED, data: []byte{1}},
	}}
	got, err := decodeRequest(want.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.op != OpBatch || got.id != want.id || len(got.subs) != len(want.subs) {
		t.Fatalf("batch header mismatch: %+v", got)
	}
	for i, s := range got.subs {
		w := want.subs[i]
		if s.op != w.op || s.rkey != w.rkey || s.addr != w.addr || s.imm != w.imm || !bytes.Equal(s.data, w.data) {
			t.Errorf("sub %d: got %+v want %+v", i, s, w)
		}
	}
}

func TestWireBatchRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		(&request{op: OpBatch, id: 1}).encode()[:10],       // truncated count
		append((&request{op: OpBatch, id: 1}).encode(), 9), // trailing byte
	}
	// A sub-verb carrying a disallowed opcode (READ in a write chain).
	cas := (&request{op: OpBatch, id: 2, subs: []request{{op: OpCAS, rkey: 1, addr: 8}}}).encode()
	bad = append(bad, cas)
	for i, b := range bad {
		if _, err := decodeRequest(b); err == nil {
			t.Errorf("case %d: expected decode error", i)
		}
	}
}

func TestBatchExecutesInOrderWithDoorbell(t *testing.T) {
	arena, ep, qp := newTestRig(t, 1<<16, nil)
	mr, _ := ep.RegisterMR("all", 0, arena.Size(), PermAll)

	var mu sync.Mutex
	var rings []uint32
	ep.RegisterDoorbell(0, arena.Size(), func(imm uint32, _ mem.Addr, _ []byte) {
		mu.Lock()
		rings = append(rings, imm)
		mu.Unlock()
	})

	ops := []BatchOp{
		{RKey: mr.RKey, Addr: 0, Data: []byte("first")},
		{RKey: mr.RKey, Addr: 100, Data: []byte("second")},
		{RKey: mr.RKey, Addr: 200, Data: []byte{0xAA}, Imm: 0xD00B, HasImm: true},
	}
	ch, err := qp.PostBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	if c := <-ch; c.Err != nil {
		t.Fatal(c.Err)
	}
	if b, _ := arena.Read(0, 5); !bytes.Equal(b, []byte("first")) {
		t.Error("sub-verb 0 not applied")
	}
	if b, _ := arena.Read(100, 6); !bytes.Equal(b, []byte("second")) {
		t.Error("sub-verb 1 not applied")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(rings) != 1 || rings[0] != 0xD00B {
		t.Errorf("doorbell rings = %v, want exactly one 0xD00B (coalesced)", rings)
	}
}

func TestBatchFirstFailureFlushesRest(t *testing.T) {
	arena, ep, qp := newTestRig(t, 1<<16, nil)
	mr, _ := ep.RegisterMR("small", 0, 512, PermAll)

	ops := []BatchOp{
		{RKey: mr.RKey, Addr: 0, Data: []byte{1}},
		{RKey: mr.RKey, Addr: 4096, Data: []byte{2}}, // out of MR bounds
		{RKey: mr.RKey, Addr: 8, Data: []byte{3}},    // must be flushed
	}
	ch, err := qp.PostBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	c := <-ch
	if c.Err != ErrBounds {
		t.Fatalf("batch err = %v, want ErrBounds", c.Err)
	}
	if !bytes.Equal(c.Data, []byte{StatusOK, StatusBoundsErr, StatusFlushed}) {
		t.Errorf("per-sub statuses = %v", c.Data)
	}
	if b, _ := arena.Read(8, 1); b[0] != 0 {
		t.Error("flushed sub-verb applied")
	}
	// WriteBatch surfaces the failing index.
	if err := qp.WriteBatch(ops); err == nil || !strings.Contains(err.Error(), "sub-verb 1") {
		t.Errorf("WriteBatch err = %v, want sub-verb 1 identified", err)
	}
}

// TestLargeWriteCrossesTwoSegmentBoundaries is the regression for the
// batched QP.Write path: a >2 MiB payload spans three segments, all of
// which must be coalesced into one pipelined OpBatch chain and land intact.
func TestLargeWriteCrossesTwoSegmentBoundaries(t *testing.T) {
	arena, ep, qp := newTestRig(t, 4<<20, nil)
	mr, _ := ep.RegisterMR("all", 0, arena.Size(), PermAll)
	big := make([]byte, (2<<20)+4097) // crosses the 1 MiB and 2 MiB boundaries
	for i := range big {
		big[i] = byte(i*131 + i>>11)
	}
	const base = 1234
	if err := qp.Write(mr.RKey, base, big); err != nil {
		t.Fatal(err)
	}
	got, err := arena.Read(base, len(big))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		for i := range got {
			if got[i] != big[i] {
				t.Fatalf("first corruption at offset %d (segment %d)", i, i/WriteSeg)
			}
		}
	}
}

// TestBatchChargesLatencyOnce verifies the coalescing win: a multi-segment
// write costs ONE base latency charge, not one per segment.
func TestBatchChargesLatencyOnce(t *testing.T) {
	// Base is large enough to dominate transport copy cost (which is
	// substantial under -race): four sequential per-segment charges would
	// cost >=4x Base, a single coalesced charge stays well under 3x.
	lat := &LatencyModel{Base: 100 * time.Millisecond}
	arena, ep, qp := newTestRig(t, 5<<20, lat)
	mr, _ := ep.RegisterMR("all", 0, arena.Size(), PermAll)
	big := make([]byte, 4<<20) // four segments, one batch frame
	start := time.Now()
	if err := qp.Write(mr.RKey, 0, big); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 3*lat.Base {
		t.Errorf("4-segment batched write took %v; sequential per-segment charges?", el)
	}
}

// TestFailAllDeliversToEveryWaiter covers QP.failAll: closing the transport
// with many verbs in flight must deliver an error completion to every
// waiter, and the reader goroutine must exit (no leak).
func TestFailAllDeliversToEveryWaiter(t *testing.T) {
	before := runtime.NumGoroutine()

	// A server that accepts frames but never responds, so posts stay
	// in flight until the transport dies.
	client, server := net.Pipe()
	go func() {
		br := bufio.NewReader(server)
		for {
			f, err := readFrame(br)
			if err != nil {
				return
			}
			f.Release()
		}
	}()
	qp := NewQP(client)

	const inflight = 16
	var chans []<-chan Completion
	for i := 0; i < inflight; i++ {
		ch, err := qp.PostWrite(1, mem.Addr(i*8), []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	qp.Close()
	server.Close()

	// Drain: every waiter must receive exactly one error completion.
	for i, ch := range chans {
		select {
		case c := <-ch:
			if c.Err == nil {
				t.Errorf("post %d completed OK after close", i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("post %d never completed; failAll dropped a waiter", i)
		}
	}
	// A post after teardown fails immediately with the sticky error.
	if _, err := qp.PostWrite(1, 0, []byte{1}); err == nil {
		t.Error("post on failed QP succeeded")
	}

	// The read loop and helper goroutines must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after drain; reader leaked?", before, runtime.NumGoroutine())
}
