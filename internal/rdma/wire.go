// Package rdma implements a software RNIC: RDMA-style one-sided verbs
// (READ, WRITE, CAS, FETCH_ADD, WRITE_WITH_IMM) carried over a
// length-prefixed binary wire protocol on any net.Conn.
//
// The defining property of RDMA — and the one RDX depends on — is preserved
// faithfully: verbs execute against the target node's DRAM arena on the
// endpoint's own goroutines, never on the target's simulated CPU cores. The
// remote control plane can therefore read, write, and atomically update a
// data plane's memory while the data plane's cores stay dedicated to
// application work.
//
// Protocol. Every message is a frame: a 4-byte big-endian payload length
// followed by the payload. Request payloads are
//
//	[1B opcode][8B request id][8B trace id][opcode-specific body]
//
// (the trace id — zero when untraced — lets the target endpoint tag its
// service-side events with the initiator's trace, so one injection can be
// followed across machines) and responses are
//
//	[1B OpResp][8B request id][1B status][response body]
//
// A connection models one queue pair (QP): the endpoint executes its
// requests in arrival order, matching RDMA's per-QP ordering guarantee.
// Clients open multiple QPs for parallelism, exactly like real initiators.
package rdma

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
)

// Opcodes.
const (
	OpRead     uint8 = 1 // body: rkey u32, addr u64, length u32
	OpWrite    uint8 = 2 // body: rkey u32, addr u64, data
	OpCAS      uint8 = 3 // body: rkey u32, addr u64, compare u64, swap u64
	OpFetchAdd uint8 = 4 // body: rkey u32, addr u64, delta u64
	OpWriteImm uint8 = 5 // body: rkey u32, addr u64, imm u32, data
	OpQueryMRs uint8 = 6 // body: empty; resp: MR table (metadata exchange, as in RDMA CM)
	OpBatch    uint8 = 7 // body: count u16, then per sub-verb a WRITE/WRITE_IMM descriptor

	// OpChainTrigger fires a pre-posted verb chain resident in the region
	// rkey (see internal/verbchain): the endpoint FETCH-ADDs the region's
	// trigger qword, stores the 8-byte argument into the chain's argument
	// register, and runs the program on its own goroutine — never on node
	// cores. body: rkey u32, addr u64, arg u64; resp: packed status u64,
	// steps u64, trigger count u64.
	OpChainTrigger uint8 = 8
	// OpRotateMR remotely re-keys a named region (the fencing primitive,
	// ibv_rereg_mr style): any holder of the old rkey — including resident
	// chains — gets StatusAccessErr afterward. body: rkey u32 + addr u64
	// (both zero, kept for the uniform verb prefix), then the region name;
	// resp: new rkey u32.
	OpRotateMR uint8 = 9

	OpResp uint8 = 0x80
)

// Status codes carried in responses.
const (
	StatusOK        uint8 = 0
	StatusAccessErr uint8 = 1 // unknown rkey or permission violation
	StatusBoundsErr uint8 = 2 // access outside the registered region
	StatusOpErr     uint8 = 3 // malformed or unsupported request
	StatusFlushed   uint8 = 4 // batch sub-verb skipped after an earlier failure
)

// MaxFrame bounds a single frame's payload; large transfers are the
// caller's job to segment (the client does this transparently).
const MaxFrame = 16 << 20

// Errors surfaced by the client for non-OK statuses.
var (
	ErrAccess = errors.New("rdma: remote access error (rkey or permissions)")
	ErrBounds = errors.New("rdma: remote access out of registered bounds")
	ErrOp     = errors.New("rdma: malformed or unsupported operation")
	ErrClosed = errors.New("rdma: queue pair closed")

	// ErrTimeout marks a verb whose completion did not arrive within the
	// QP's deadline (or whose context expired). As on hardware, a timed-out
	// verb may still execute remotely; only the completion is lost.
	ErrTimeout = errors.New("rdma: verb deadline exceeded")

	// ErrUnposted marks a verb rejected before any byte reached the wire
	// (the QP already carried a sticky transport error). Such verbs are
	// provably unexecuted and always safe to replay — including atomics.
	ErrUnposted = errors.New("rdma: verb not posted")

	// ErrUncertain marks a non-idempotent verb (CAS, FETCH_ADD) whose
	// completion was lost to a transport failure after it was posted: the
	// remote side may or may not have executed it. Callers must re-derive
	// state (e.g. re-read the target qword) before retrying.
	ErrUncertain = errors.New("rdma: atomic verb outcome uncertain (completion lost)")
)

// IsTransportErr reports whether err is a transport-level failure — the QP
// (or its connection) died rather than the remote side refusing the verb.
// Transport failures are the reconnectable class: a fresh QP to the same
// endpoint can be expected to succeed. Remote status errors (ErrAccess,
// ErrBounds, ErrOp) and local validation failures are deterministic and are
// NOT transport errors.
func IsTransportErr(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrClosed) || errors.Is(err, ErrTimeout) || errors.Is(err, ErrUnposted) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var netErr net.Error
	return errors.As(err, &netErr)
}

func statusErr(s uint8) error {
	switch s {
	case StatusOK:
		return nil
	case StatusAccessErr:
		return ErrAccess
	case StatusBoundsErr:
		return ErrBounds
	default:
		return ErrOp
	}
}

// writeFrame writes one length-prefixed frame as a SINGLE w.Write call:
// header and payload are assembled into a pooled scratch buffer first, so a
// frame never straddles two writes (one syscall per frame, and no torn
// frames if two writers ever race on the same conn without holding the
// send lock across both halves).
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("rdma: frame of %d bytes exceeds max %d", len(payload), MaxFrame)
	}
	f := getFrame(frameHdr + len(payload))
	b := f.b[:0]
	b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	_, err := w.Write(b)
	f.Release()
	return err
}

// readFrame reads one length-prefixed frame into a pooled buffer. The
// caller owns the returned frame and must Release it (on every path,
// including decode errors). The length prefix is consumed via Peek/Discard
// on the bufio.Reader so the header costs no allocation.
func readFrame(br *bufio.Reader) (*FrameBuf, error) {
	hdr, err := br.Peek(frameHdr)
	if err != nil {
		if err == io.EOF && len(hdr) > 0 {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > MaxFrame {
		return nil, fmt.Errorf("rdma: frame of %d bytes exceeds max %d", n, MaxFrame)
	}
	br.Discard(frameHdr)
	f := getFrame(int(n))
	if _, err := io.ReadFull(br, f.Bytes()); err != nil {
		f.Release()
		return nil, err
	}
	return f, nil
}

// frameBuffered reports whether a complete frame is already sitting in br's
// buffer, i.e. the next readFrame cannot block. Poll loops use it to drain
// every ready frame in one pass and flush exactly once per pass — but never
// to keep reading past the last buffered frame, which would deadlock a peer
// that is itself waiting on our unflushed responses. Oversize prefixes
// report true so the drain loop surfaces the protocol error immediately.
func frameBuffered(br *bufio.Reader) bool {
	if br.Buffered() < frameHdr {
		return false
	}
	hdr, _ := br.Peek(frameHdr)
	n := binary.BigEndian.Uint32(hdr)
	return n > MaxFrame || br.Buffered() >= frameHdr+int(n)
}

// reqHdr is the fixed request header: opcode, request id, trace id.
const reqHdr = 1 + 8 + 8

// request is a decoded verb request.
type request struct {
	op    uint8
	id    uint64
	trace uint64 // originating trace id; 0 = untraced
	rkey  uint32
	addr  uint64
	len   uint32    // OpRead
	cmp   uint64    // OpCAS
	swap  uint64    // OpCAS
	delta uint64    // OpFetchAdd
	imm   uint32    // OpWriteImm
	data  []byte    // OpWrite / OpWriteImm / OpRotateMR (region name)
	subs  []request // OpBatch: sub-verbs, each OpWrite or OpWriteImm

	// view is initiator-local (never encoded): deliver this READ's payload
	// as a retained pooled-frame view instead of a copy.
	view bool
}

// Batch sub-verb descriptor layout (concatenated, one per sub-verb):
//
//	[1B subop][4B rkey][8B addr]
//	OpWrite:    [4B dataLen][data]
//	OpWriteImm: [4B imm][4B dataLen][data]
//
// Only WRITE and WRITE_WITH_IMM may ride in a batch: OpBatch models the
// posted-write chains an initiator doorbells as one unit; reads and atomics
// keep their own completions.

func (q *request) encodeBatch(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(q.subs)))
	for i := range q.subs {
		s := &q.subs[i]
		b = append(b, s.op)
		b = binary.BigEndian.AppendUint32(b, s.rkey)
		b = binary.BigEndian.AppendUint64(b, s.addr)
		if s.op == OpWriteImm {
			b = binary.BigEndian.AppendUint32(b, s.imm)
		}
		b = binary.BigEndian.AppendUint32(b, uint32(len(s.data)))
		b = append(b, s.data...)
	}
	return b
}

// decodeBatch decodes sub-verbs into scratch (appending from scratch[:0]),
// so a serving loop can reuse one subs slice across frames. Pass nil to
// allocate fresh. Sub-verb data aliases body.
func decodeBatch(q *request, body []byte, scratch []request) error {
	if len(body) < 2 {
		return errors.New("rdma: short BATCH body")
	}
	n := int(binary.BigEndian.Uint16(body))
	body = body[2:]
	if scratch == nil {
		scratch = make([]request, 0, n)
	}
	q.subs = scratch[:0]
	for i := 0; i < n; i++ {
		if len(body) < 13 {
			return errors.New("rdma: truncated BATCH sub-verb")
		}
		var s request
		s.op = body[0]
		s.rkey = binary.BigEndian.Uint32(body[1:5])
		s.addr = binary.BigEndian.Uint64(body[5:13])
		body = body[13:]
		switch s.op {
		case OpWriteImm:
			if len(body) < 4 {
				return errors.New("rdma: truncated BATCH sub-verb")
			}
			s.imm = binary.BigEndian.Uint32(body[0:4])
			body = body[4:]
		case OpWrite:
		default:
			return fmt.Errorf("rdma: opcode %#x not allowed in BATCH", s.op)
		}
		if len(body) < 4 {
			return errors.New("rdma: truncated BATCH sub-verb")
		}
		dn := int(binary.BigEndian.Uint32(body[0:4]))
		body = body[4:]
		if len(body) < dn {
			return errors.New("rdma: truncated BATCH sub-verb data")
		}
		s.data = body[:dn]
		body = body[dn:]
		q.subs = append(q.subs, s)
	}
	if len(body) != 0 {
		return errors.New("rdma: trailing bytes after BATCH sub-verbs")
	}
	return nil
}

// encodedSize returns the exact (or, for unknown opcodes, an upper-bound)
// encoded payload length, so the send path can borrow a right-sized pooled
// buffer and assemble without a single reallocation. Must never
// underestimate: appendTo growing past the borrowed capacity would
// reallocate and defeat the zero-alloc hot path.
func (q *request) encodedSize() int {
	switch q.op {
	case OpRead:
		return reqHdr + 16
	case OpWrite:
		return reqHdr + 12 + len(q.data)
	case OpWriteImm:
		return reqHdr + 16 + len(q.data)
	case OpCAS:
		return reqHdr + 28
	case OpFetchAdd, OpChainTrigger:
		return reqHdr + 20
	case OpRotateMR:
		return reqHdr + 12 + len(q.data)
	case OpBatch:
		size := reqHdr + 2
		for i := range q.subs {
			size += 17 + len(q.subs[i].data)
			if q.subs[i].op == OpWriteImm {
				size += 4
			}
		}
		return size
	default:
		// OpQueryMRs and anything unknown carries rkey+addr and no body.
		return reqHdr + 28
	}
}

// appendMeta appends everything up to but excluding the payload data. Only
// meaningful for OpWrite/OpWriteImm; the send path uses it to emit
// [hdr|meta] and the payload as one writev without copying the payload.
func (q *request) appendMeta(b []byte) []byte {
	b = append(b, q.op)
	b = binary.BigEndian.AppendUint64(b, q.id)
	b = binary.BigEndian.AppendUint64(b, q.trace)
	b = binary.BigEndian.AppendUint32(b, q.rkey)
	b = binary.BigEndian.AppendUint64(b, q.addr)
	if q.op == OpWriteImm {
		b = binary.BigEndian.AppendUint32(b, q.imm)
	}
	return b
}

// appendTo appends the encoded request payload to b.
func (q *request) appendTo(b []byte) []byte {
	b = append(b, q.op)
	b = binary.BigEndian.AppendUint64(b, q.id)
	b = binary.BigEndian.AppendUint64(b, q.trace)
	if q.op == OpBatch {
		return q.encodeBatch(b)
	}
	b = binary.BigEndian.AppendUint32(b, q.rkey)
	b = binary.BigEndian.AppendUint64(b, q.addr)
	switch q.op {
	case OpRead:
		b = binary.BigEndian.AppendUint32(b, q.len)
	case OpWrite:
		b = append(b, q.data...)
	case OpCAS:
		b = binary.BigEndian.AppendUint64(b, q.cmp)
		b = binary.BigEndian.AppendUint64(b, q.swap)
	case OpFetchAdd, OpChainTrigger:
		b = binary.BigEndian.AppendUint64(b, q.delta)
	case OpWriteImm:
		b = binary.BigEndian.AppendUint32(b, q.imm)
		b = append(b, q.data...)
	case OpRotateMR:
		b = append(b, q.data...)
	}
	return b
}

func (q *request) encode() []byte {
	return q.appendTo(make([]byte, 0, q.encodedSize()))
}

func decodeRequest(p []byte) (request, error) {
	var q request
	err := q.decodeInto(p, nil)
	return q, err
}

// decodeInto decodes p into q, reusing subsScratch (may be nil) for batch
// sub-verbs. Decoded data/subs alias p: they are valid only while the
// frame that backs p is retained.
func (q *request) decodeInto(p []byte, subsScratch []request) error {
	if len(p) < reqHdr {
		return fmt.Errorf("rdma: short request (%d bytes)", len(p))
	}
	q.op = p[0]
	q.id = binary.BigEndian.Uint64(p[1:9])
	q.trace = binary.BigEndian.Uint64(p[9:17])
	body := p[reqHdr:]
	if q.op == OpQueryMRs {
		return nil
	}
	if q.op == OpBatch {
		return decodeBatch(q, body, subsScratch)
	}
	if len(body) < 12 {
		return fmt.Errorf("rdma: short verb body (%d bytes)", len(body))
	}
	q.rkey = binary.BigEndian.Uint32(body[0:4])
	q.addr = binary.BigEndian.Uint64(body[4:12])
	rest := body[12:]
	switch q.op {
	case OpRead:
		if len(rest) != 4 {
			return errors.New("rdma: bad READ body")
		}
		q.len = binary.BigEndian.Uint32(rest)
	case OpWrite:
		q.data = rest
	case OpCAS:
		if len(rest) != 16 {
			return errors.New("rdma: bad CAS body")
		}
		q.cmp = binary.BigEndian.Uint64(rest[0:8])
		q.swap = binary.BigEndian.Uint64(rest[8:16])
	case OpFetchAdd:
		if len(rest) != 8 {
			return errors.New("rdma: bad FETCH_ADD body")
		}
		q.delta = binary.BigEndian.Uint64(rest)
	case OpChainTrigger:
		if len(rest) != 8 {
			return errors.New("rdma: bad CHAIN_TRIGGER body")
		}
		q.delta = binary.BigEndian.Uint64(rest)
	case OpRotateMR:
		q.data = rest
	case OpWriteImm:
		if len(rest) < 4 {
			return errors.New("rdma: bad WRITE_IMM body")
		}
		q.imm = binary.BigEndian.Uint32(rest[0:4])
		q.data = rest[4:]
	default:
		return fmt.Errorf("rdma: unknown opcode %#x", q.op)
	}
	return nil
}

// response is a decoded verb response.
type response struct {
	id     uint64
	status uint8
	data   []byte
}

// respHdr is the fixed response header: OpResp, request id, status.
const respHdr = 1 + 8 + 1

// appendResponse appends an encoded response payload to b.
func appendResponse(b []byte, id uint64, status uint8, data []byte) []byte {
	b = append(b, OpResp)
	b = binary.BigEndian.AppendUint64(b, id)
	b = append(b, status)
	return append(b, data...)
}

func (r *response) encode() []byte {
	return appendResponse(make([]byte, 0, respHdr+len(r.data)), r.id, r.status, r.data)
}

func decodeResponse(p []byte) (response, error) {
	var r response
	if len(p) < 10 || p[0] != OpResp {
		return r, fmt.Errorf("rdma: malformed response (%d bytes)", len(p))
	}
	r.id = binary.BigEndian.Uint64(p[1:9])
	r.status = p[9]
	r.data = p[10:]
	return r, nil
}
