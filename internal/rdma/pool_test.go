package rdma

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"rdx/internal/mem"
)

func TestFrameBufSizeClasses(t *testing.T) {
	cases := []struct {
		n       int
		wantCap int
	}{
		{0, 512},
		{1, 512},
		{512, 512},
		{513, 8 << 10},
		{8 << 10, 8 << 10},
		{100 << 10, 128 << 10},
		{1 << 20, 1 << 20},
		{MaxFrame, MaxFrame + frameHdr},
		{MaxFrame + frameHdr, MaxFrame + frameHdr},
	}
	for _, c := range cases {
		f := getFrame(c.n)
		if len(f.Bytes()) != c.n {
			t.Errorf("getFrame(%d): len = %d", c.n, len(f.Bytes()))
		}
		if cap(f.b) != c.wantCap {
			t.Errorf("getFrame(%d): class cap = %d, want %d", c.n, cap(f.b), c.wantCap)
		}
		f.Release()
	}
}

func TestFrameBufReuseAndAccounting(t *testing.T) {
	before := SnapshotPoolStats()
	f := getFrame(100)
	buf := &f.b[0]
	f.Release()
	g := getFrame(200)
	defer g.Release()
	// Same P, nothing else borrowing this class: the sync.Pool should hand
	// the buffer straight back.
	if &g.b[0] != buf {
		t.Log("note: pool did not reuse the buffer (GC or scheduling); accounting still checked")
	}
	after := SnapshotPoolStats()
	d := after.Delta(before)
	if d.Hits+d.Misses < 2 {
		t.Errorf("borrow accounting lost borrows: %+v", d)
	}
	if after.Outstanding != before.Outstanding+1 {
		t.Errorf("outstanding = %d, want %d", after.Outstanding, before.Outstanding+1)
	}
}

func TestFrameBufRetainRelease(t *testing.T) {
	f := getFrame(64)
	f.Retain()
	f.Release() // still one reference held
	if got := len(f.Bytes()); got != 64 {
		t.Fatalf("frame invalidated while retained: len = %d", got)
	}
	f.Release()

	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	f.Release()
}

// waitOutstanding polls until the arena's outstanding-borrow count returns
// to the baseline, failing the test if frames leaked.
func waitOutstanding(t *testing.T, base int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if SnapshotPoolStats().Outstanding <= base {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("frame buffers leaked: outstanding = %d, baseline %d",
		SnapshotPoolStats().Outstanding, base)
}

// TestFramePoolNoLeakMalformedTeardown: a malformed frame tears the QP
// down; the borrowed frame must be released on that error path.
func TestFramePoolNoLeakMalformedTeardown(t *testing.T) {
	base := SnapshotPoolStats().Outstanding
	ep := NewEndpoint(mem.NewArena(4096), nil)
	ep.SetLogf(nil)
	ep.RegisterMR("all", 0, 4096, PermAll)
	fab := NewFabric()
	l, err := fab.Listen("n")
	if err != nil {
		t.Fatal(err)
	}
	go ep.Serve(l)

	conn, err := fab.Dial("n")
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, []byte{0xEE, 1, 2, 3}); err != nil { // unknown opcode
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("endpoint replied to a malformed frame")
	}
	conn.Close()
	ep.Close()
	waitOutstanding(t, base)
}

// TestFramePoolNoLeakDrain: frames in flight when the endpoint drains are
// all returned once the handlers exit.
func TestFramePoolNoLeakDrain(t *testing.T) {
	base := SnapshotPoolStats().Outstanding
	arena := mem.NewArena(1 << 16)
	ep := NewEndpoint(arena, &LatencyModel{Base: 200 * time.Microsecond, SpinTail: -1})
	mr, _ := ep.RegisterMR("all", 0, arena.Size(), PermAll)
	fab := NewFabric()
	l, _ := fab.Listen("n")
	go ep.Serve(l)
	qp, err := fab.DialQP("n")
	if err != nil {
		t.Fatal(err)
	}
	qp.SetTimeout(2 * time.Second)

	var chans []<-chan Completion
	for i := 0; i < 16; i++ {
		ch, err := qp.PostWrite(mr.RKey, mem.Addr(i*64), bytes.Repeat([]byte{byte(i)}, 48))
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	ep.Drain(500 * time.Millisecond)
	for _, ch := range chans {
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatal("completion lost across Drain")
		}
	}
	qp.Close()
	waitOutstanding(t, base)
}

// TestFramePoolNoLeakCloseConns: severing every conn mid-traffic (the
// transport-flap path) releases all borrowed frames on both sides.
func TestFramePoolNoLeakCloseConns(t *testing.T) {
	base := SnapshotPoolStats().Outstanding
	arena := mem.NewArena(1 << 16)
	ep := NewEndpoint(arena, &LatencyModel{Base: 100 * time.Microsecond, SpinTail: -1})
	mr, _ := ep.RegisterMR("all", 0, arena.Size(), PermAll)
	fab := NewFabric()
	l, _ := fab.Listen("n")
	go ep.Serve(l)
	defer ep.Close()

	var qps []*QP
	for i := 0; i < 4; i++ {
		qp, err := fab.DialQP("n")
		if err != nil {
			t.Fatal(err)
		}
		qp.SetTimeout(2 * time.Second)
		qps = append(qps, qp)
	}
	var wg sync.WaitGroup
	for _, qp := range qps {
		wg.Add(1)
		go func(qp *QP) {
			defer wg.Done()
			for i := 0; ; i++ {
				if err := qp.Write(mr.RKey, mem.Addr((i%100)*64), []byte("payload")); err != nil {
					return // transport severed — expected
				}
			}
		}(qp)
	}
	time.Sleep(20 * time.Millisecond)
	ep.CloseConns()
	wg.Wait()
	for _, qp := range qps {
		qp.Close()
	}
	waitOutstanding(t, base)
}

// TestConcurrentWritersShareConn exercises the coalesced-frame send path
// with several goroutines racing on ONE QP (run under -race in CI): every
// frame must go out whole, so all writes land intact and none interleave.
func TestConcurrentWritersShareConn(t *testing.T) {
	arena, ep, qp := newTestRig(t, 1<<20, nil)
	mr, err := ep.RegisterMR("all", 0, arena.Size(), PermAll)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	const perWriter = 200
	const sz = 512
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(0xA0 + w)}, sz)
			for i := 0; i < perWriter; i++ {
				addr := mem.Addr((w*perWriter + i%perWriter) * sz)
				if err := qp.Write(mr.RKey, addr, payload); err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		want := bytes.Repeat([]byte{byte(0xA0 + w)}, sz)
		for i := 0; i < perWriter; i++ {
			got, err := arena.Read(mem.Addr((w*perWriter+i)*sz), sz)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("writer %d slot %d corrupted: frames interleaved on the shared conn", w, i)
			}
		}
	}
}

// TestWriteHotPathZeroAllocs is the allocs/op regression gate for the
// tentpole claim: a steady-state WRITE round trip — client encode+send,
// endpoint serve+respond, client completion — performs zero heap
// allocations. Runs without -race only (instrumented builds allocate).
func TestWriteHotPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is meaningless under -race")
	}
	arena, ep, qp := newTestRig(t, 1<<16, nil)
	mr, err := ep.RegisterMR("all", 0, arena.Size(), PermAll)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x42}, 128)
	for i := 0; i < 200; i++ { // warm the pools and the pending map
		if err := qp.Write(mr.RKey, 0, payload); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(500, func() {
		if err := qp.Write(mr.RKey, 0, payload); err != nil {
			t.Fatal(err)
		}
	})
	// The whole round trip is measured (AllocsPerRun counts process-wide
	// mallocs), so the endpoint's serve path and the client's completion
	// path are covered too. Sub-1 average tolerates a GC clearing the
	// pools mid-measurement; a real per-op allocation shows up as >= 1.
	if avg >= 1 {
		t.Errorf("WRITE round trip allocates %.2f objects/op, want 0 steady-state", avg)
	}
}

// TestBatchHotPathZeroAllocs pins the per-response allocation fix in
// handleBatch/respond: batch statuses and the response frame ride in
// per-conn scratch.
func TestBatchHotPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is meaningless under -race")
	}
	arena, ep, qp := newTestRig(t, 1<<16, nil)
	mr, err := ep.RegisterMR("all", 0, arena.Size(), PermAll)
	if err != nil {
		t.Fatal(err)
	}
	ops := make([]BatchOp, 8)
	for i := range ops {
		ops[i] = BatchOp{RKey: mr.RKey, Addr: mem.Addr(i * 256), Data: bytes.Repeat([]byte{byte(i)}, 128)}
	}
	for i := 0; i < 100; i++ {
		if err := qp.WriteBatch(ops); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(300, func() {
		if err := qp.WriteBatch(ops); err != nil {
			t.Fatal(err)
		}
	})
	// The batch client path still builds its subs slice and completion
	// data copy per call (bounded, small); the gate holds the endpoint's
	// per-response allocations at zero and the total far below the old
	// one-alloc-per-sub-verb behavior.
	if avg > 8 {
		t.Errorf("BATCH round trip allocates %.2f objects/op, want <= 8", avg)
	}
}

// BenchmarkVerbRoundTrip measures the synchronous verb hot path over the
// in-process fabric. CI runs it with -benchtime=1x as a smoke check; the
// allocs/op regression threshold is enforced by TestWriteHotPathZeroAllocs.
func BenchmarkVerbRoundTrip(b *testing.B) {
	arena := mem.NewArena(1 << 16)
	ep := NewEndpoint(arena, nil)
	mr, err := ep.RegisterMR("all", 0, arena.Size(), PermAll)
	if err != nil {
		b.Fatal(err)
	}
	fab := NewFabric()
	l, _ := fab.Listen("bench")
	go ep.Serve(l)
	qp, err := fab.DialQP("bench")
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		qp.Close()
		ep.Close()
	}()

	b.Run("write128", func(b *testing.B) {
		payload := bytes.Repeat([]byte{0x42}, 128)
		b.SetBytes(128)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := qp.Write(mr.RKey, 0, payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read128", func(b *testing.B) {
		b.SetBytes(128)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := qp.Read(mr.RKey, 0, 128); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cas", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := qp.CompareAndSwap(mr.RKey, 64, uint64(i), uint64(i+1)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
