package controlha

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"rdx/internal/core"
	"rdx/internal/rdma"
	"rdx/internal/sim"
	"rdx/internal/telemetry"
)

// hostRig serves a Host on a fabric and hands out connected verb QPs plus
// the discovered MR table.
type hostRig struct {
	host *Host
	fab  *rdma.Fabric
}

func newHostRig(t *testing.T, ringCap uint64) *hostRig {
	t.Helper()
	h, err := NewHost(ringCap)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	fab := rdma.NewFabric()
	l, err := fab.Listen("standby")
	if err != nil {
		t.Fatal(err)
	}
	go h.Serve(l)
	return &hostRig{host: h, fab: fab}
}

func (r *hostRig) connect(t *testing.T) (*core.RemoteMemory, rdma.MR, rdma.MR) {
	t.Helper()
	conn, err := r.fab.Dial("standby")
	if err != nil {
		t.Fatal(err)
	}
	qp := rdma.NewQP(conn)
	mrs, err := qp.QueryMRs()
	if err != nil {
		t.Fatal(err)
	}
	witness, err := findMR(mrs, WitnessMRName)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := findMR(mrs, RingMRName)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewRemoteMemory(qp, mrs), witness, ring
}

func TestLeaseAcquireStealAndFence(t *testing.T) {
	rig := newHostRig(t, 0)
	mem1, w, _ := rig.connect(t)
	mem2, _, _ := rig.connect(t)
	reg := telemetry.NewRegistry()

	l1 := NewLease(mem1, w.Addr, 1, time.Minute, reg)
	if err := l1.Acquire(); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if l1.Epoch() != 1 || !l1.Held() {
		t.Fatalf("epoch=%d held=%v after first acquire", l1.Epoch(), l1.Held())
	}
	if err := l1.Check(); err != nil {
		t.Fatalf("check while holding: %v", err)
	}
	if err := l1.Renew(); err != nil {
		t.Fatalf("renew while holding: %v", err)
	}

	// A second controller cannot acquire a live lease...
	l2 := NewLease(mem2, w.Addr, 2, time.Minute, reg)
	if err := l2.Acquire(); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("acquire of live lease: %v, want ErrLeaseHeld", err)
	}
	// ...but can steal it, bumping the epoch past l1's term.
	if err := l2.Steal(); err != nil {
		t.Fatalf("steal: %v", err)
	}
	if l2.Epoch() != 2 {
		t.Fatalf("epoch after steal = %d", l2.Epoch())
	}

	// l1 discovers its deposal via the fencing epoch: Check and Renew fail
	// with the typed error and l1 marks itself deposed.
	if err := l1.Check(); !errors.Is(err, core.ErrFenced) {
		t.Fatalf("deposed check: %v, want ErrFenced", err)
	}
	if l1.Held() {
		t.Error("l1 still believes it holds the lease after fenced check")
	}
	if err := l1.Renew(); !errors.Is(err, core.ErrFenced) {
		t.Fatalf("deposed renew: %v, want ErrFenced", err)
	}
	if got := reg.Counter("controlha.lease.fenced_rejects").Value(); got == 0 {
		t.Error("fenced_rejects counter never incremented")
	}
	if got := reg.Counter("controlha.lease.acquired").Value(); got != 2 {
		t.Errorf("acquired counter = %d, want 2", got)
	}
}

func TestLeaseExpiredTakeover(t *testing.T) {
	rig := newHostRig(t, 0)
	mem1, w, _ := rig.connect(t)
	mem2, _, _ := rig.connect(t)

	// A virtual clock shared by both leases makes the expiry a single
	// deterministic jump instead of a real sleep racing a 1ms TTL.
	clk := sim.NewVirtualClock(time.Now())
	l1 := NewLeaseClock(mem1, w.Addr, 1, time.Millisecond, nil, clk)
	if err := l1.Acquire(); err != nil {
		t.Fatal(err)
	}
	clk.Advance(5 * time.Millisecond)
	// The TTL lapsed: a standby acquires without stealing.
	l2 := NewLeaseClock(mem2, w.Addr, 2, time.Minute, nil, clk)
	if err := l2.Acquire(); err != nil {
		t.Fatalf("acquire of expired lease: %v", err)
	}
	if l2.Epoch() != 2 {
		t.Fatalf("epoch = %d", l2.Epoch())
	}
	// The locally-expired holder fails closed even before reading remotely.
	if err := l1.Check(); !errors.Is(err, core.ErrFenced) {
		t.Fatalf("expired holder check: %v, want ErrFenced", err)
	}
}

func TestReplicationPumpAndWrap(t *testing.T) {
	// A deliberately tiny ring: every entry is ~90 bytes, so appends wrap
	// the 160-byte data region repeatedly, exercising the split WRITE and
	// split Pump paths. The standby pumps after every append, so its local
	// journal copy stays complete even though the ring holds only a window.
	rig := newHostRig(t, 160)
	mem, w, ring := rig.connect(t)

	lease := NewLease(mem, w.Addr, 1, time.Minute, nil)
	if err := lease.Acquire(); err != nil {
		t.Fatal(err)
	}
	rep := NewReplicator(mem, ring.Addr, 0, lease.Epoch(), nil)
	if err := rep.Activate(); err != nil {
		t.Fatal(err)
	}
	j := NewJournal(telemetry.NewRegistry())
	j.SetFenceSource(lease.Epoch)
	j.SetReplicator(rep)

	for i := 1; i <= 8; i++ {
		j.JournalPublish("0x1", "ingress", core.Deployed{
			Blob: uint64(0x100 * i), Version: uint64(i),
			Name: fmt.Sprintf("v%d", i), Digest: fmt.Sprintf("sha256:%04d", i),
		})
		if _, err := rig.host.Pump(); err != nil {
			t.Fatalf("pump after entry %d: %v", i, err)
		}
	}

	// The pumped copy replays identically to the leader's local journal.
	want, err := Replay(j.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Replay(rig.host.JournalBytes())
	if err != nil {
		t.Fatalf("replay of pumped copy: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("pumped replay diverged:\n%+v\n%+v", want, got)
	}
	if got.LastSeq != 8 {
		t.Fatalf("lastSeq = %d", got.LastSeq)
	}

	// The wrapped ring no longer holds full history for late readers.
	if _, err := FetchJournal(mem, ring.Addr); !errors.Is(err, ErrRingOverrun) {
		t.Fatalf("FetchJournal on wrapped ring: %v, want ErrRingOverrun", err)
	}

	// A standby that stops pumping past one full capacity loses bytes —
	// typed overrun, not silent corruption.
	for i := 0; i < 4; i++ {
		j.JournalClaim("0x1", uint64(i))
	}
	if _, err := rig.host.Pump(); !errors.Is(err, ErrRingOverrun) {
		t.Fatalf("lagged pump: %v, want ErrRingOverrun", err)
	}
}

func TestReplicatorFencedAppend(t *testing.T) {
	rig := newHostRig(t, 0)
	mem1, w, ring := rig.connect(t)
	mem2, _, _ := rig.connect(t)
	reg := telemetry.NewRegistry()

	l1 := NewLease(mem1, w.Addr, 1, time.Minute, reg)
	if err := l1.Acquire(); err != nil {
		t.Fatal(err)
	}
	rep1 := NewReplicator(mem1, ring.Addr, 0, l1.Epoch(), reg)
	if err := rep1.Activate(); err != nil {
		t.Fatal(err)
	}
	e1 := Entry{Type: EntryValidate, Seq: 1, Fence: 1, Digest: "d"}
	if err := rep1.Append(e1.Encode()); err != nil {
		t.Fatalf("append under own term: %v", err)
	}

	// A successor steals and re-stamps the ring epoch.
	l2 := NewLease(mem2, w.Addr, 2, time.Minute, reg)
	if err := l2.Steal(); err != nil {
		t.Fatal(err)
	}
	rep2 := NewReplicator(mem2, ring.Addr, 0, l2.Epoch(), reg)
	if err := rep2.Activate(); err != nil {
		t.Fatal(err)
	}

	// The deposed leader's next append is rejected by the epoch word and
	// must not grow the committed journal.
	hwmBefore, _ := mem1.ReadMem(ring.Addr+ringOffHwm, 8)
	e2 := Entry{Type: EntryValidate, Seq: 2, Fence: 1, Digest: "d2"}
	if err := rep1.Append(e2.Encode()); !errors.Is(err, ErrFencedAppend) {
		t.Fatalf("deposed append: %v, want ErrFencedAppend", err)
	}
	hwmAfter, _ := mem1.ReadMem(ring.Addr+ringOffHwm, 8)
	if hwmBefore != hwmAfter {
		t.Fatalf("fenced append moved hwm %d -> %d", hwmBefore, hwmAfter)
	}
	if got := reg.Counter("controlha.journal.fenced_appends").Value(); got != 1 {
		t.Errorf("fenced_appends = %d", got)
	}

	// The new term appends fine, seq continuing.
	if err := rep2.Append(e2.Encode()); err != nil {
		t.Fatalf("successor append: %v", err)
	}
}
