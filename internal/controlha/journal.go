// Package controlha replicates the RDX control plane using the fabric's
// own one-sided primitives — the same WRITE / CAS / FETCH_ADD verbs RDX
// uses to inject code into data-plane nodes also carry the controller's
// deployment journal to standbys, elect a leader through a CAS lease word,
// and fence a deposed leader out of every publish path.
//
// Three pieces compose:
//
//   - an append-only, checksummed deployment journal (Journal) recording
//     every control-plane intent and outcome, with a deterministic replay
//     (Replay) that reconstructs the deployed-version map and per-hook
//     rollback stacks on a fresh ControlPlane;
//   - journal replication (Replicator) into a standby-owned ring MR via
//     one-sided WRITEs: FETCH_ADD reserves ring space, a CAS commits the
//     high-watermark, and the standby pumps committed bytes with local
//     reads only;
//   - leader election (Lease) via a CAS lease word in a witness MR, with a
//     monotonically increasing fencing epoch threaded into core's publish
//     paths as a core.FenceCheck — the HA analogue of the wrapEpoch guard.
package controlha

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"rdx/internal/core"
	"rdx/internal/native"
	"rdx/internal/telemetry"
)

// Journal format errors. Replay fails with one of these — typed, never a
// panic — on any corrupted, truncated, or reordered input.
var (
	// ErrCorrupt reports a bad magic, an insane length, or a checksum
	// mismatch: the bytes are not a journal entry.
	ErrCorrupt = errors.New("controlha: corrupt journal entry")
	// ErrTruncated reports a well-formed prefix that ends mid-entry.
	ErrTruncated = errors.New("controlha: truncated journal")
	// ErrBadSequence reports entries whose sequence numbers are not
	// contiguous from 1 or whose fencing epochs regress — a reordered or
	// spliced journal must not replay into plausible-but-divergent state.
	ErrBadSequence = errors.New("controlha: broken journal sequence")
)

// EntryType discriminates journal records. Values are part of the wire
// format; append only.
type EntryType uint8

const (
	EntryInvalid  EntryType = iota
	EntryValidate           // validator ran for Digest
	EntryCompile            // JIT ran for (Digest, Arch)
	EntryStage              // blob staged (written, not dispatched) on (Node, Hook)
	EntryPublish            // dispatch CAS landed on (Node, Hook)
	EntryRollback           // hook reverted to a prior version
	EntryClaim              // standby blob claimed as a delta target on Node
	EntryReclaim            // Node's code ring wrapped; Epoch = new wrap epoch
	EntryHandoff            // shard rebalance barrier; Epoch = departing ring epoch
)

func (t EntryType) String() string {
	switch t {
	case EntryValidate:
		return "validate"
	case EntryCompile:
		return "compile"
	case EntryStage:
		return "stage"
	case EntryPublish:
		return "publish"
	case EntryRollback:
		return "rollback"
	case EntryClaim:
		return "claim"
	case EntryReclaim:
		return "reclaim"
	case EntryHandoff:
		return "handoff"
	}
	return fmt.Sprintf("entry(%d)", uint8(t))
}

// Entry is one journal record. Every type shares the field set; unused
// fields encode as zero/empty. Seq numbers are contiguous from 1 and Fence
// carries the leader's fencing epoch at append time, so replay can reject
// splices and a standby can observe exactly which leadership term produced
// each record.
type Entry struct {
	Type    EntryType
	Seq     uint64
	Fence   uint64
	Node    string
	Hook    string
	Name    string
	Digest  string
	Arch    uint32
	Version uint64
	Blob    uint64
	Epoch   uint64 // wrap epoch (EntryReclaim) / departing ring epoch (EntryHandoff)
	Flags   uint8  // bit 0: the referenced version was already Reclaimed
}

const (
	entryMagic  = 0x4A52 // "RJ"
	entryHdrLen = 2 + 1 + 1 + 8 + 8 + 4
	// maxEntryPayload bounds decoded payload lengths; node keys, hook names
	// and digests are all short, so anything near this is corruption.
	maxEntryPayload = 1 << 16
)

// appendString encodes s as u16 length + bytes.
func appendString(b []byte, s string) []byte {
	b = append(b, byte(len(s)), byte(len(s)>>8))
	return append(b, s...)
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// Encode serializes the entry:
//
//	[magic u16][type u8][flags u8][seq u64][fence u64][payloadLen u32]
//	[payload: node hook name digest (len-prefixed), arch u32, version u64,
//	 blob u64, epoch u64]
//	[crc32(IEEE) over header+payload u32]
func (e *Entry) Encode() []byte {
	payload := make([]byte, 0, 64)
	payload = appendString(payload, e.Node)
	payload = appendString(payload, e.Hook)
	payload = appendString(payload, e.Name)
	payload = appendString(payload, e.Digest)
	payload = appendU32(payload, e.Arch)
	payload = appendU64(payload, e.Version)
	payload = appendU64(payload, e.Blob)
	payload = appendU64(payload, e.Epoch)

	out := make([]byte, 0, entryHdrLen+len(payload)+4)
	out = append(out, byte(entryMagic&0xff), byte(entryMagic>>8))
	out = append(out, byte(e.Type), e.Flags)
	out = appendU64(out, e.Seq)
	out = appendU64(out, e.Fence)
	out = appendU32(out, uint32(len(payload)))
	out = append(out, payload...)
	return appendU32(out, crc32.ChecksumIEEE(out))
}

type decoder struct {
	b   []byte
	off int
}

func (d *decoder) u16() (uint16, bool) {
	if d.off+2 > len(d.b) {
		return 0, false
	}
	v := uint16(d.b[d.off]) | uint16(d.b[d.off+1])<<8
	d.off += 2
	return v, true
}

func (d *decoder) u32() (uint32, bool) {
	if d.off+4 > len(d.b) {
		return 0, false
	}
	v := uint32(d.b[d.off]) | uint32(d.b[d.off+1])<<8 |
		uint32(d.b[d.off+2])<<16 | uint32(d.b[d.off+3])<<24
	d.off += 4
	return v, true
}

func (d *decoder) u64() (uint64, bool) {
	lo, ok := d.u32()
	if !ok {
		return 0, false
	}
	hi, ok := d.u32()
	if !ok {
		return 0, false
	}
	return uint64(lo) | uint64(hi)<<32, true
}

func (d *decoder) str() (string, bool) {
	n, ok := d.u16()
	if !ok || d.off+int(n) > len(d.b) {
		return "", false
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, true
}

// DecodeEntry parses one entry from the front of b, returning the entry
// and the number of bytes consumed. Truncation inside an otherwise valid
// frame is ErrTruncated; any structural or checksum violation is
// ErrCorrupt.
func DecodeEntry(b []byte) (Entry, int, error) {
	if len(b) < entryHdrLen {
		return Entry{}, 0, fmt.Errorf("%w: %d header bytes of %d", ErrTruncated, len(b), entryHdrLen)
	}
	d := &decoder{b: b}
	magic, _ := d.u16()
	if magic != entryMagic {
		return Entry{}, 0, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, magic)
	}
	var e Entry
	e.Type = EntryType(b[d.off])
	e.Flags = b[d.off+1]
	d.off += 2
	e.Seq, _ = d.u64()
	e.Fence, _ = d.u64()
	plen, _ := d.u32()
	if plen > maxEntryPayload {
		return Entry{}, 0, fmt.Errorf("%w: payload length %d", ErrCorrupt, plen)
	}
	total := entryHdrLen + int(plen) + 4
	if len(b) < total {
		return Entry{}, 0, fmt.Errorf("%w: entry needs %d bytes, have %d", ErrTruncated, total, len(b))
	}
	if e.Type == EntryInvalid || e.Type > EntryHandoff {
		return Entry{}, 0, fmt.Errorf("%w: unknown entry type %d", ErrCorrupt, e.Type)
	}
	body := b[:entryHdrLen+int(plen)]
	sum := uint32(b[total-4]) | uint32(b[total-3])<<8 | uint32(b[total-2])<<16 | uint32(b[total-1])<<24
	if got := crc32.ChecksumIEEE(body); got != sum {
		return Entry{}, 0, fmt.Errorf("%w: checksum %#x != %#x (seq %d)", ErrCorrupt, got, sum, e.Seq)
	}
	pd := &decoder{b: body, off: entryHdrLen}
	var ok bool
	if e.Node, ok = pd.str(); !ok {
		return Entry{}, 0, fmt.Errorf("%w: node string", ErrCorrupt)
	}
	if e.Hook, ok = pd.str(); !ok {
		return Entry{}, 0, fmt.Errorf("%w: hook string", ErrCorrupt)
	}
	if e.Name, ok = pd.str(); !ok {
		return Entry{}, 0, fmt.Errorf("%w: name string", ErrCorrupt)
	}
	if e.Digest, ok = pd.str(); !ok {
		return Entry{}, 0, fmt.Errorf("%w: digest string", ErrCorrupt)
	}
	if e.Arch, ok = pd.u32(); !ok {
		return Entry{}, 0, fmt.Errorf("%w: arch field", ErrCorrupt)
	}
	if e.Version, ok = pd.u64(); !ok {
		return Entry{}, 0, fmt.Errorf("%w: version field", ErrCorrupt)
	}
	if e.Blob, ok = pd.u64(); !ok {
		return Entry{}, 0, fmt.Errorf("%w: blob field", ErrCorrupt)
	}
	if e.Epoch, ok = pd.u64(); !ok {
		return Entry{}, 0, fmt.Errorf("%w: epoch field", ErrCorrupt)
	}
	if pd.off != entryHdrLen+int(plen) {
		return Entry{}, 0, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, entryHdrLen+int(plen)-pd.off)
	}
	return e, total, nil
}

// Journal is the leader-side deployment journal: an append-only encoded
// log plus the decoded entries, implementing core.JournalSink. Appends are
// serialized, stamped with a contiguous sequence number and the current
// fencing epoch, and (when a Replicator is attached) pushed to the standby
// ring before the append returns — so on the publish path, a record is
// remote before the publish is reported done.
type Journal struct {
	mu      sync.Mutex
	entries []Entry
	buf     []byte
	seq     uint64
	fence   func() uint64
	rep     *Replicator
	reg     *telemetry.Registry
}

// NewJournal creates an empty journal registering its instruments in reg.
func NewJournal(reg *telemetry.Registry) *Journal {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &Journal{reg: reg}
}

// SetFenceSource installs the fencing-epoch source stamped into every
// appended entry (typically Lease.Epoch).
func (j *Journal) SetFenceSource(f func() uint64) {
	j.mu.Lock()
	j.fence = f
	j.mu.Unlock()
}

// SetReplicator attaches the standby replication stream.
func (j *Journal) SetReplicator(r *Replicator) {
	j.mu.Lock()
	j.rep = r
	j.mu.Unlock()
}

// SeedSeq continues the sequence from a replayed journal: the next entry
// gets seq n+1. Used by a standby that took over after replaying n entries.
func (j *Journal) SeedSeq(n uint64) {
	j.mu.Lock()
	j.seq = n
	j.mu.Unlock()
}

// append assigns seq + fence, encodes, appends, and replicates. Journal
// replication failures do not fail the control-plane operation (the
// publish already landed); they are counted and surfaced via the lag
// gauge, which stops converging to zero.
func (j *Journal) append(e Entry) {
	j.appendChecked(e) //nolint:errcheck // replication outcome surfaced via instruments
}

// appendChecked is append surfacing the replication outcome: entries whose
// durability on the standby gates a protocol step (the rebalance handoff
// marker) must know whether the ring took the bytes — a fenced append means
// a successor owns the ring and this term must stop, not proceed on a
// local-only record.
func (j *Journal) appendChecked(e Entry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	e.Seq = j.seq
	if j.fence != nil {
		e.Fence = j.fence()
	}
	enc := e.Encode()
	j.entries = append(j.entries, e)
	j.buf = append(j.buf, enc...)
	j.reg.Counter("controlha.journal.appended").Inc()
	if j.rep == nil {
		return nil
	}
	err := j.rep.Append(enc)
	if err != nil {
		j.reg.Counter("controlha.journal.replication_errors").Inc()
	} else {
		j.reg.Counter("controlha.journal.replicated").Inc()
	}
	j.reg.Gauge("controlha.journal.lag").Set(int64(uint64(len(j.buf)) - j.rep.Replicated()))
	return err
}

// Append journals an arbitrary entry and surfaces the replication
// outcome, like JournalHandoff: callers that acknowledge work only after
// the standby holds it (and the simulator's acked-publish scenarios)
// append through here and treat an error as "not acked".
func (j *Journal) Append(e Entry) error {
	return j.appendChecked(e)
}

// Bytes snapshots the encoded journal.
func (j *Journal) Bytes() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]byte(nil), j.buf...)
}

// Entries snapshots the decoded entries.
func (j *Journal) Entries() []Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Entry(nil), j.entries...)
}

// Len returns the number of appended entries.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// core.JournalSink implementation.

// JournalValidate records a validator run.
func (j *Journal) JournalValidate(digest string) {
	j.append(Entry{Type: EntryValidate, Digest: digest})
}

// JournalCompile records a JIT compilation.
func (j *Journal) JournalCompile(digest string, arch native.Arch) {
	j.append(Entry{Type: EntryCompile, Digest: digest, Arch: uint32(arch)})
}

// JournalStage records a staged-but-unpublished blob.
func (j *Journal) JournalStage(node, hook, name, digest string, version, blob uint64) {
	j.append(Entry{Type: EntryStage, Node: node, Hook: hook, Name: name,
		Digest: digest, Version: version, Blob: blob})
}

// JournalPublish records a landed dispatch CAS.
func (j *Journal) JournalPublish(node, hook string, d core.Deployed) {
	var flags uint8
	if d.Reclaimed {
		flags = 1
	}
	j.append(Entry{Type: EntryPublish, Node: node, Hook: hook, Name: d.Name,
		Digest: d.Digest, Version: d.Version, Blob: d.Blob, Flags: flags})
}

// JournalRollback records a reversion to a prior version.
func (j *Journal) JournalRollback(node, hook string, to core.Deployed) {
	j.append(Entry{Type: EntryRollback, Node: node, Hook: hook, Name: to.Name,
		Digest: to.Digest, Version: to.Version, Blob: to.Blob})
}

// JournalClaim records a standby blob claimed for delta staging.
func (j *Journal) JournalClaim(node string, blob uint64) {
	j.append(Entry{Type: EntryClaim, Node: node, Blob: blob})
}

// JournalReclaim records a code-ring wrap.
func (j *Journal) JournalReclaim(node string, wrapEpoch uint64) {
	j.append(Entry{Type: EntryReclaim, Node: node, Epoch: wrapEpoch})
}

// JournalHandoff records a shard-rebalance barrier stamped with the
// departing ring epoch. Unlike the other sinks it fails on a replication
// error: the marker is the fence between "this shard still owns its keys"
// and "the replayed state below is complete and migratable" — a leader
// that cannot land it on the standby ring (typed ErrFencedAppend when a
// successor stamped the ring) has been deposed and must abort the handoff
// instead of migrating state it no longer owns.
func (j *Journal) JournalHandoff(ringEpoch uint64) error {
	return j.appendChecked(Entry{Type: EntryHandoff, Epoch: ringEpoch})
}

var _ core.JournalSink = (*Journal)(nil)
