//go:build simregression

package controlha

// Regression build: resident HA chains are armed WITHOUT the witness-epoch
// guard, restoring the historical protocol in which chain fencing relied on
// the programs' own CAS steps alone. The renew chain survives that (its
// ownership CAS aborts once a successor rewrites the owner word), but the
// heartbeat chain touches only chain-MR words — so a deposed leader keeps
// beating, the standby's deadman stays quiet, and failover detection is
// masked. The simulator's stale-chain-rejected invariant catches it
// (go test -tags simregression ./internal/sim/...).
const guardChains = false
