package controlha

import (
	"fmt"

	"rdx/internal/core"
)

// Key identifies one (node, hook) pair in replayed state.
type Key struct {
	Node string
	Hook string
}

// Intent is a staged-but-never-published deployment surviving in the
// journal — the work a successor re-drives after takeover. The stage's
// writes are idempotent and the artifact cache already holds the compiled
// binary, so re-driving costs no recompiles.
type Intent struct {
	Node    string
	Hook    string
	Name    string
	Digest  string
	Version uint64
	Blob    uint64
}

// State is the deterministic result of replaying a journal: exactly the
// bookkeeping a leader accumulated in core — the deployed-version map,
// per-hook rollback stacks (with reclamation tombstones), the set of
// validated/compiled digests, and the open (staged, unpublished) intents.
type State struct {
	Versions  map[Key]core.DeployedVersion
	History   map[Key][]core.Deployed
	Open      []Intent
	Validated map[string]bool
	Compiled  map[string]bool // digest@arch
	Entries   int
	LastSeq   uint64
	LastFence uint64
	// Handoffs counts rebalance barrier markers; LastHandoffEpoch is the
	// departing ring epoch the most recent marker carried. A snapshot taken
	// for a handoff is complete exactly when LastHandoffEpoch matches the
	// epoch the migrating router journaled.
	Handoffs         int
	LastHandoffEpoch uint64
}

// Replay decodes and applies every entry in data, in order. Replay is
// strict: sequence numbers must be contiguous from 1 and fencing epochs
// monotone non-decreasing, so a truncated, corrupted, spliced, or
// reordered journal fails with a typed error (ErrTruncated / ErrCorrupt /
// ErrBadSequence) instead of reconstructing divergent state. Replay of the
// same bytes always yields the same State.
func Replay(data []byte) (*State, error) {
	s := &State{
		Versions:  map[Key]core.DeployedVersion{},
		History:   map[Key][]core.Deployed{},
		Validated: map[string]bool{},
		Compiled:  map[string]bool{},
	}
	off := 0
	for off < len(data) {
		e, n, err := DecodeEntry(data[off:])
		if err != nil {
			return nil, fmt.Errorf("entry %d at offset %d: %w", s.Entries+1, off, err)
		}
		off += n
		if e.Seq != s.LastSeq+1 {
			return nil, fmt.Errorf("%w: entry %d has seq %d, want %d",
				ErrBadSequence, s.Entries+1, e.Seq, s.LastSeq+1)
		}
		if e.Fence < s.LastFence {
			return nil, fmt.Errorf("%w: entry %d fence %d regresses from %d",
				ErrBadSequence, s.Entries+1, e.Fence, s.LastFence)
		}
		s.LastSeq = e.Seq
		s.LastFence = e.Fence
		s.apply(e)
		s.Entries++
	}
	return s, nil
}

// apply folds one entry into the state, mirroring what core's bookkeeping
// did when the entry was journaled.
func (s *State) apply(e Entry) {
	k := Key{Node: e.Node, Hook: e.Hook}
	switch e.Type {
	case EntryValidate:
		s.Validated[e.Digest] = true
	case EntryCompile:
		s.Compiled[fmt.Sprintf("%s@%d", e.Digest, e.Arch)] = true
	case EntryStage:
		s.Open = append(s.Open, Intent{Node: e.Node, Hook: e.Hook, Name: e.Name,
			Digest: e.Digest, Version: e.Version, Blob: e.Blob})
	case EntryPublish:
		d := core.Deployed{Blob: e.Blob, Version: e.Version, Name: e.Name,
			Digest: e.Digest, Reclaimed: e.Flags&1 != 0}
		s.History[k] = append(s.History[k], d)
		// Same last-writer-wins guard as ControlPlane.recordDeployed:
		// versions come from the node's epoch FETCH_ADD, so the highest
		// wins regardless of journal interleaving across hooks.
		if cur, ok := s.Versions[k]; !ok || cur.Version <= e.Version {
			s.Versions[k] = core.DeployedVersion{Digest: e.Digest, Version: e.Version, Blob: e.Blob}
		}
		s.closeIntent(e)
	case EntryRollback:
		// Rollback pops the history stack and forces the version map past
		// the last-writer-wins guard, exactly like CodeFlow.Rollback.
		if h := s.History[k]; len(h) > 0 {
			s.History[k] = h[:len(h)-1]
		}
		s.Versions[k] = core.DeployedVersion{Digest: e.Digest, Version: e.Version, Blob: e.Blob}
	case EntryClaim:
		// The claimed blob's bytes are gone: tombstone every history entry
		// referencing it on that node (it may sit in other hooks' stacks).
		for hk, hist := range s.History {
			if hk.Node != e.Node {
				continue
			}
			for i := range hist {
				if hist[i].Blob == e.Blob {
					hist[i].Reclaimed = true
				}
			}
		}
	case EntryReclaim:
		// A ring wrap reclaims the node's whole code region history.
		for hk, hist := range s.History {
			if hk.Node != e.Node {
				continue
			}
			for i := range hist {
				hist[i].Reclaimed = true
			}
		}
	case EntryHandoff:
		// Rebalance barrier: everything before this marker is the complete
		// state of the shard as of the carried ring epoch.
		s.Handoffs++
		s.LastHandoffEpoch = e.Epoch
	}
}

// closeIntent removes the open stage matched by a publish: same node,
// hook, and version.
func (s *State) closeIntent(e Entry) {
	for i, in := range s.Open {
		if in.Node == e.Node && in.Hook == e.Hook && in.Version == e.Version {
			s.Open = append(s.Open[:i], s.Open[i+1:]...)
			return
		}
	}
}

// Filter projects the state onto the (node, hook) keys keep accepts: the
// sub-state a rebalance migrates into one receiving shard. Versions,
// History, and Open intents are filtered per key; the Validated and
// Compiled digest sets travel whole (they are properties of the shared
// artifact cache, not of any key, and carrying them is what keeps
// re-driven intents recompile-free on the receiver). Maps are deep-copied
// down to the history slices so the receiver can mutate its copy freely.
func (s *State) Filter(keep func(node, hook string) bool) *State {
	out := &State{
		Versions:         map[Key]core.DeployedVersion{},
		History:          map[Key][]core.Deployed{},
		Validated:        map[string]bool{},
		Compiled:         map[string]bool{},
		Entries:          s.Entries,
		LastSeq:          s.LastSeq,
		LastFence:        s.LastFence,
		Handoffs:         s.Handoffs,
		LastHandoffEpoch: s.LastHandoffEpoch,
	}
	for k, dv := range s.Versions {
		if keep(k.Node, k.Hook) {
			out.Versions[k] = dv
		}
	}
	for k, hist := range s.History {
		if keep(k.Node, k.Hook) {
			out.History[k] = append([]core.Deployed(nil), hist...)
		}
	}
	for _, in := range s.Open {
		if keep(in.Node, in.Hook) {
			out.Open = append(out.Open, in)
		}
	}
	for d := range s.Validated {
		out.Validated[d] = true
	}
	for d := range s.Compiled {
		out.Compiled[d] = true
	}
	return out
}

// OpenFor returns the open intents targeting one node.
func (s *State) OpenFor(node string) []Intent {
	var out []Intent
	for _, in := range s.Open {
		if in.Node == node {
			out = append(out, in)
		}
	}
	return out
}

// ApplyTo installs the replayed state on a fresh control plane and its
// re-attached CodeFlows (keyed by CodeFlow.NodeKey()). The version map is
// restored verbatim; each history stack is restored on its flow, seeding
// the dispatch shadow and resident index from the live top entry. Flows
// the map doesn't cover keep only the version-map entries — their stacks
// reappear when the node is re-attached and restored later.
func (s *State) ApplyTo(cp *core.ControlPlane, flows map[string]*core.CodeFlow) {
	for k, dv := range s.Versions {
		cp.RestoreDeployed(k.Node, k.Hook, dv)
	}
	for k, stack := range s.History {
		if cf := flows[k.Node]; cf != nil {
			cf.RestoreHistory(k.Hook, stack)
		}
	}
}
