package controlha

import (
	"context"
	"errors"
	"testing"
	"time"

	"rdx/internal/core"
	"rdx/internal/rdma"
	"rdx/internal/sim"
	"rdx/internal/telemetry"
)

// connectChain dials the rig's standby and returns the remote-memory view
// plus the raw MR table (NewChainOffload wants both).
func (r *hostRig) connectChain(t *testing.T) (*core.RemoteMemory, []rdma.MR) {
	t.Helper()
	conn, err := r.fab.Dial("standby")
	if err != nil {
		t.Fatal(err)
	}
	qp := rdma.NewQP(conn)
	mrs, err := qp.QueryMRs()
	if err != nil {
		t.Fatal(err)
	}
	return core.NewRemoteMemory(qp, mrs), mrs
}

// armedLease acquires a lease on the rig and routes its renewals through a
// freshly armed renew chain.
func armedLease(t *testing.T, rig *hostRig, clk sim.Clock, reg *telemetry.Registry) (*Lease, *ChainOffload) {
	t.Helper()
	mem, mrs := rig.connectChain(t)
	w, err := findMR(mrs, WitnessMRName)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLeaseClock(mem, w.Addr, 1, time.Minute, reg, clk)
	if err := l.Acquire(); err != nil {
		t.Fatal(err)
	}
	co, err := NewChainOffload(mem, mrs, 1, l.Epoch(), reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := co.ArmRenew(); err != nil {
		t.Fatalf("arm renew: %v", err)
	}
	l.UseChain(co)
	return l, co
}

// TestChainRenewExtendsLease drives a lease renewal through the pre-posted
// renew chain: one trigger verb on the wire, and the witness expiry word
// lands at now+ttl — written by the standby's NIC, not by a leader WRITE.
func TestChainRenewExtendsLease(t *testing.T) {
	rig := newHostRig(t, 0)
	reg := telemetry.NewRegistry()
	clk := sim.NewVirtualClock(time.Unix(1000, 0))
	l, _ := armedLease(t, rig, clk, reg)

	clk.Advance(30 * time.Second)
	if err := l.Renew(); err != nil {
		t.Fatalf("chained renew: %v", err)
	}
	want := uint64(clk.Now().Add(time.Minute).UnixNano())
	got, err := rig.host.arena.ReadQword(hostWitnessBase + witnessOffExpiry)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("expiry word = %d, want %d (chain did not write it)", got, want)
	}
	if n := reg.Counter("controlha.chain.renews").Value(); n != 1 {
		t.Errorf("chain.renews = %d, want 1", n)
	}
	if n := reg.Counter("controlha.lease.renewed").Value(); n != 1 {
		t.Errorf("lease.renewed = %d, want 1", n)
	}
}

// TestChainRenewRevokedBySteal pins the fencing contract: a successor's
// epoch bump revokes the resident renew chain (its witness-epoch guard
// fails), the stale leader's next renewal surfaces core.ErrFenced, and it
// deposes itself — the same outcome the unoffloaded Renew reaches by
// reading the witness.
func TestChainRenewRevokedBySteal(t *testing.T) {
	rig := newHostRig(t, 0)
	reg := telemetry.NewRegistry()
	l1, _ := armedLease(t, rig, nil, reg)

	mem2, mrs2 := rig.connectChain(t)
	w, _ := findMR(mrs2, WitnessMRName)
	l2 := NewLease(mem2, w.Addr, 2, time.Minute, reg)
	if err := l2.Steal(); err != nil {
		t.Fatal(err)
	}

	err := l1.Renew()
	if !errors.Is(err, core.ErrFenced) {
		t.Fatalf("stale chained renew: %v, want core.ErrFenced", err)
	}
	if l1.Held() {
		t.Error("stale leader still believes it holds the lease")
	}
	// The guard revoked the chain before its expiry write: the successor's
	// term must not have been extended by the stale trigger.
	owner, _ := rig.host.arena.ReadQword(hostWitnessBase + witnessOffOwner)
	if owner != 2 {
		t.Fatalf("owner word = %d after stale renew, want 2", owner)
	}
}

// TestChainRenewFencedByRotation pins the other revocation edge: rotating
// the ha-chain MR (Host.FenceChains, a successor's first act against chain
// state) invalidates the stale leader's baked chain-region rkey, so its
// trigger fails typed with ErrAccess — surfaced as a deposal — and the
// resident program never runs.
func TestChainRenewFencedByRotation(t *testing.T) {
	rig := newHostRig(t, 0)
	l, _ := armedLease(t, rig, nil, nil)

	before, _ := rig.host.arena.ReadQword(hostWitnessBase + witnessOffExpiry)
	if err := rig.host.FenceChains(); err != nil {
		t.Fatal(err)
	}
	err := l.Renew()
	if !errors.Is(err, core.ErrFenced) {
		t.Fatalf("renew after chain fence: %v, want core.ErrFenced", err)
	}
	after, _ := rig.host.arena.ReadQword(hostWitnessBase + witnessOffExpiry)
	if after != before {
		t.Fatalf("fenced trigger still moved expiry %d -> %d", before, after)
	}
}

// TestChainHeartbeatAndDeadman exercises the liveness offload end to end:
// each trigger advances the beat sequence and stamps the deadman qword
// NIC-side, the standby's deadman watcher stays quiet while beats flow, and
// fires exactly once after they stop.
func TestChainHeartbeatAndDeadman(t *testing.T) {
	rig := newHostRig(t, 0)
	reg := telemetry.NewRegistry()
	_, co := armedLease(t, rig, nil, reg)
	if err := co.ArmHeartbeat(); err != nil {
		t.Fatalf("arm heartbeat: %v", err)
	}

	for i := 0; i < 3; i++ {
		if _, err := co.TriggerHeartbeat(context.Background()); err != nil {
			t.Fatalf("beat %d: %v", i, err)
		}
	}
	if seq, _ := rig.host.HeartbeatSeq(); seq != 3 {
		t.Fatalf("heartbeat seq = %d, want 3", seq)
	}
	if dm, _ := rig.host.Deadman(); dm != 3 {
		t.Fatalf("deadman word = %d, want trigger count 3", dm)
	}
	if n := reg.Counter("controlha.chain.heartbeats").Value(); n != 3 {
		t.Errorf("chain.heartbeats = %d, want 3", n)
	}

	// Standby-side detection: the watcher polls the seq word locally — no
	// verbs — and fires once the beats stall past the timeout.
	dead := make(chan struct{})
	stop := rig.host.StartDeadman(time.Millisecond, 20*time.Millisecond, func() { close(dead) })
	defer stop()

	co.StartHeartbeat(nil, time.Millisecond)
	select {
	case <-dead:
		t.Fatal("deadman fired while heartbeats were flowing")
	case <-time.After(60 * time.Millisecond):
	}
	co.StopHeartbeat()
	select {
	case <-dead:
	case <-time.After(5 * time.Second):
		t.Fatal("deadman never fired after heartbeats stopped")
	}
}

// TestChainHeartbeatFenced pins FenceHeartbeats: bumping the liveness epoch
// word makes the resident chain's leading CAS lose, the chain aborts
// (ErrChainFault) before touching the sequence, and the beat loop exits on
// its own.
func TestChainHeartbeatFenced(t *testing.T) {
	rig := newHostRig(t, 0)
	_, co := armedLease(t, rig, nil, nil)
	if err := co.ArmHeartbeat(); err != nil {
		t.Fatal(err)
	}
	if _, err := co.TriggerHeartbeat(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := rig.host.FenceHeartbeats(); err != nil {
		t.Fatal(err)
	}
	_, err := co.TriggerHeartbeat(context.Background())
	if !errors.Is(err, rdma.ErrChainFault) {
		t.Fatalf("fenced beat: %v, want rdma.ErrChainFault", err)
	}
	if seq, _ := rig.host.HeartbeatSeq(); seq != 1 {
		t.Fatalf("fenced beat advanced seq to %d", seq)
	}
}

// TestTakeOverRemoteFencesStaleAppend is the regression for remote ring
// rotation: TakeOverRemote's FIRST act rotates the ring MR's rkey via the
// wire verb (no host handle), so a deposed leader's in-flight append —
// which may already hold a tail reservation that passed the epoch check —
// dies on the revoked rkey (ErrFencedAppend) instead of committing a
// duplicate-seq entry into the successor's replayed ring.
func TestTakeOverRemoteFencesStaleAppend(t *testing.T) {
	rig := newHostRig(t, 0)
	reg := telemetry.NewRegistry()
	mem1, mrs1 := rig.connectChain(t)
	w, _ := findMR(mrs1, WitnessMRName)
	ring, _ := findMR(mrs1, RingMRName)

	l1 := NewLease(mem1, w.Addr, 1, time.Minute, reg)
	if err := l1.Acquire(); err != nil {
		t.Fatal(err)
	}
	rep1 := NewReplicator(mem1, ring.Addr, 0, l1.Epoch(), reg)
	if err := rep1.Activate(); err != nil {
		t.Fatal(err)
	}
	e1 := Entry{Type: EntryValidate, Seq: 1, Fence: 1, Digest: "d1"}
	if err := rep1.Append(e1.Encode()); err != nil {
		t.Fatal(err)
	}

	// Remote takeover from a controller with no host handle: only verbs.
	cp := core.NewControlPlane()
	_, _, err := TakeOverRemote(cp, rig.hostQP(t), 2, time.Minute, nil)
	if err != nil {
		t.Fatalf("TakeOverRemote: %v", err)
	}

	// The stale leader's next append must fail on the rotated rkey — its
	// epoch-check CAS never even reads the ring — and leave the committed
	// watermark where the successor's replay put it.
	memAfter, _ := rig.connectChain(t)
	hwmBefore, err := memAfter.ReadMem(ring.Addr+ringOffHwm, 8)
	if err != nil {
		t.Fatal(err)
	}
	e2 := Entry{Type: EntryValidate, Seq: 2, Fence: 1, Digest: "d2"}
	if err := rep1.Append(e2.Encode()); !errors.Is(err, ErrFencedAppend) {
		t.Fatalf("stale append after remote rotation: %v, want ErrFencedAppend", err)
	}
	hwmAfter, err := memAfter.ReadMem(ring.Addr+ringOffHwm, 8)
	if err != nil {
		t.Fatal(err)
	}
	if hwmAfter != hwmBefore {
		t.Fatalf("stale append moved hwm %d -> %d", hwmBefore, hwmAfter)
	}
}

// hostQP dials the standby and wraps the conn in a plain QP.
func (r *hostRig) hostQP(t *testing.T) rdma.Verbs {
	t.Helper()
	conn, err := r.fab.Dial("standby")
	if err != nil {
		t.Fatal(err)
	}
	return rdma.NewQP(conn)
}
