package controlha

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"rdx/internal/core"
	"rdx/internal/rdma"
	"rdx/internal/sim"
	"rdx/internal/telemetry"
	"rdx/internal/verbchain"
)

// ChainOffload arms and fires the HA control chains resident in a standby
// host's ha-chain MR (DESIGN.md §15): lease renewal and heartbeating as
// pre-posted verbchain programs, each fired by a single OpChainTrigger.
//
// What the offload buys: both paths collapse from multi-round-trip verb
// sequences driven by the leader's CPU into one wire verb whose multi-step
// effect executes on the STANDBY's NIC. A leader whose cores are saturated
// still renews its lease and still beats its heart at fabric speed — the
// only leader-side work per period is posting one trigger. Conversely a
// leader that is actually dead stops posting triggers, and the standby's
// deadman (Host.StartDeadman) notices with local reads alone.
//
// Fencing composes with the witness exactly like the unoffloaded paths:
// every program is guarded on the witness epoch word, so the instant a
// successor's FETCH-ADD bumps the epoch, resident chains revoke themselves
// mid-flight — the stale leader's next trigger returns ErrChainRevoked and
// it deposes locally, the same contract Renew enforces with reads.
type ChainOffload struct {
	mem   *core.RemoteMemory
	base  uint64 // ha-chain MR base
	wbase uint64 // witness MR base
	id    uint64
	epoch uint64
	reg   *telemetry.Registry

	mu      sync.Mutex
	hbArmed bool
	rnArmed bool
	hbStop  chan struct{}
	hbDone  chan struct{}
}

// NewChainOffload binds a chain view over a host's MR table for the leader
// (id) holding fencing epoch. Arm the individual chains before triggering.
func NewChainOffload(mem *core.RemoteMemory, mrs []rdma.MR, id, epoch uint64, reg *telemetry.Registry) (*ChainOffload, error) {
	chain, err := findMR(mrs, ChainMRName)
	if err != nil {
		return nil, err
	}
	witness, err := findMR(mrs, WitnessMRName)
	if err != nil {
		return nil, err
	}
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &ChainOffload{
		mem:   mem,
		base:  chain.Addr,
		wbase: witness.Addr,
		id:    id,
		epoch: epoch,
		reg:   reg,
	}, nil
}

// guard returns the fencing predicate every HA chain carries: the witness
// epoch must still equal the arming epoch before EVERY step, or the chain
// revokes itself.
func (c *ChainOffload) guard() (verbchain.Guard, error) {
	if !guardChains {
		return verbchain.Guard{}, nil
	}
	rkey, err := c.mem.RKeyFor(c.wbase+witnessOffEpoch, 8)
	if err != nil {
		return verbchain.Guard{}, err
	}
	return verbchain.Guard{Enabled: true, RKey: rkey, Addr: c.wbase + witnessOffEpoch, Want: c.epoch}, nil
}

// arm validates prog against the live MR table and writes the freshly
// initialized chain region at slot.
func (c *ChainOffload) arm(slot uint64, prog *verbchain.Program) error {
	if err := prog.Validate(c.mem.Regions()); err != nil {
		return fmt.Errorf("controlha: chain validate: %w", err)
	}
	region := verbchain.EncodeRegion(prog)
	if uint64(len(region)) > ChainHeartbeatOff-ChainRenewOff {
		return fmt.Errorf("controlha: chain region %d bytes exceeds slot", len(region))
	}
	if err := c.mem.WriteBytes(c.base+slot, region); err != nil {
		return fmt.Errorf("controlha: chain arm: %w", err)
	}
	return nil
}

// ArmRenew pre-posts the lease-renewal chain: verify ownership with a CAS
// on the owner word (abort if another controller took it), then write the
// new expiry — which arrives per-firing as the trigger argument, so one
// armed program serves every renewal of the term. Under the witness-epoch
// guard, a deposal revokes the chain before it can extend a stale lease.
func (c *ChainOffload) ArmRenew() error {
	g, err := c.guard()
	if err != nil {
		return err
	}
	wrkey, err := c.mem.RKeyFor(c.wbase, WitnessSize)
	if err != nil {
		return err
	}
	prog := &verbchain.Program{
		Ops: []verbchain.Op{
			{
				Kind: verbchain.KindCAS, RKey: wrkey, Addr: c.wbase + witnessOffOwner,
				Cmp: verbchain.Imm(c.id), Src: verbchain.Imm(c.id),
				Dst: verbchain.NoReg, AbortIfLost: true,
			},
			{
				Kind: verbchain.KindWrite, RKey: wrkey, Addr: c.wbase + witnessOffExpiry,
				Src: verbchain.Reg(verbchain.ArgReg), Dst: verbchain.NoReg,
			},
		},
		Guard: g,
	}
	if err := c.arm(ChainRenewOff, prog); err != nil {
		return err
	}
	c.mu.Lock()
	c.rnArmed = true
	c.mu.Unlock()
	return nil
}

// TriggerRenew fires the renew chain with the new expiry (unix nanos) as
// the trigger argument: one verb on the wire, ownership check + expiry
// write on the standby's NIC. Callers map ErrChainRevoked / ErrChainFault /
// ErrAccess to deposal (Lease.RenewChain does).
func (c *ChainOffload) TriggerRenew(ctx context.Context, expiry uint64) (rdma.ChainResult, error) {
	c.mu.Lock()
	armed := c.rnArmed
	c.mu.Unlock()
	if !armed {
		return rdma.ChainResult{}, fmt.Errorf("controlha: renew chain not armed")
	}
	res, err := c.mem.WithContext(ctx).ChainTrigger(c.base+ChainRenewOff, expiry)
	if err == nil {
		c.reg.Counter("controlha.chain.renews").Inc()
	}
	return res, err
}

// ArmHeartbeat pre-posts the heartbeat chain and seeds the liveness epoch:
// CAS the liveness word against the arming epoch (abort if the standby
// fenced heartbeats), FETCH-ADD the beat sequence, and write the trigger
// count into the deadman qword. The standby detects leader death purely by
// watching the sequence word stall.
func (c *ChainOffload) ArmHeartbeat() error {
	g, err := c.guard()
	if err != nil {
		return err
	}
	crkey, err := c.mem.RKeyFor(c.base+ChainHBEpochOff, 8)
	if err != nil {
		return err
	}
	if err := c.mem.WriteMem(c.base+ChainHBEpochOff, 8, c.epoch); err != nil {
		return fmt.Errorf("controlha: liveness epoch seed: %w", err)
	}
	prog := &verbchain.Program{
		Ops: []verbchain.Op{
			{
				Kind: verbchain.KindCAS, RKey: crkey, Addr: c.base + ChainHBEpochOff,
				Cmp: verbchain.Imm(c.epoch), Src: verbchain.Imm(c.epoch),
				Dst: verbchain.NoReg, AbortIfLost: true,
			},
			{
				Kind: verbchain.KindFetchAdd, RKey: crkey, Addr: c.base + ChainHBSeqOff,
				Src: verbchain.Imm(1), Dst: verbchain.NoReg,
			},
			{
				Kind: verbchain.KindWrite, RKey: crkey, Addr: c.base + ChainDeadmanOff,
				Src: verbchain.Trigger(), Dst: verbchain.NoReg,
			},
		},
		Guard: g,
	}
	if err := c.arm(ChainHeartbeatOff, prog); err != nil {
		return err
	}
	c.mu.Lock()
	c.hbArmed = true
	c.mu.Unlock()
	return nil
}

// TriggerHeartbeat fires one beat.
func (c *ChainOffload) TriggerHeartbeat(ctx context.Context) (rdma.ChainResult, error) {
	c.mu.Lock()
	armed := c.hbArmed
	c.mu.Unlock()
	if !armed {
		return rdma.ChainResult{}, fmt.Errorf("controlha: heartbeat chain not armed")
	}
	res, err := c.mem.WithContext(ctx).ChainTrigger(c.base+ChainHeartbeatOff, 0)
	if err == nil {
		c.reg.Counter("controlha.chain.heartbeats").Inc()
	}
	return res, err
}

// StartHeartbeat fires the heartbeat chain every interval on clock until
// StopHeartbeat, a revoked/faulted chain, or an access error (a takeover
// rotated the chain MR) — all of which stop the loop, since each means this
// leader's term is over. Starting an already beating offload is a no-op.
func (c *ChainOffload) StartHeartbeat(clock sim.Clock, interval time.Duration) {
	if clock == nil {
		clock = sim.Real{}
	}
	if interval <= 0 {
		interval = 5 * time.Millisecond
	}
	c.mu.Lock()
	if c.hbStop != nil {
		c.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	c.hbStop, c.hbDone = stop, done
	c.mu.Unlock()
	go func() {
		defer close(done)
		t := clock.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C():
				if _, err := c.TriggerHeartbeat(context.Background()); err != nil {
					if errors.Is(err, rdma.ErrChainRevoked) || errors.Is(err, rdma.ErrChainFault) ||
						errors.Is(err, rdma.ErrAccess) {
						return
					}
				}
			}
		}
	}()
}

// StopHeartbeat stops the heartbeat loop, waiting for the in-flight beat.
func (c *ChainOffload) StopHeartbeat() {
	c.mu.Lock()
	stop, done := c.hbStop, c.hbDone
	c.hbStop, c.hbDone = nil, nil
	c.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// AttachChain arms the HA control chains for an established leadership term
// and routes the term's lease renewal through the renew chain (one verb per
// renewal instead of three round trips). Call after AttachLeader/TakeOver;
// the returned offload also serves heartbeating (StartHeartbeat).
func AttachChain(l *Leader, qp rdma.Verbs) (*ChainOffload, error) {
	mrs, err := qp.QueryMRs()
	if err != nil {
		return nil, fmt.Errorf("controlha: MR discovery: %w", err)
	}
	mem := core.NewRemoteMemory(qp, mrs)
	co, err := NewChainOffload(mem, mrs, l.Lease.id, l.Lease.Epoch(), l.CP.Registry)
	if err != nil {
		return nil, err
	}
	if err := co.ArmRenew(); err != nil {
		return nil, err
	}
	if err := co.ArmHeartbeat(); err != nil {
		return nil, err
	}
	l.Lease.UseChain(co)
	return co, nil
}
