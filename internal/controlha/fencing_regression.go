//go:build simregression

package controlha

// Regression build: takeover does NOT rotate the ring rkey, restoring the
// historical protocol in which fencing relied on the epoch-word CAS check
// alone. Under that protocol a stale leader that passed the epoch check
// and held a tail reservation could commit a duplicate-sequence entry
// after the successor re-seeded — the bug the simulator's journal
// invariants catch (go test -tags simregression ./internal/sim/...).
const rotateRingOnTakeover = false
