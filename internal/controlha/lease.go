package controlha

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"rdx/internal/core"
	"rdx/internal/rdma"
	"rdx/internal/sim"
	"rdx/internal/telemetry"
)

// Witness MR layout. The witness is any memory both controllers can reach
// with one-sided verbs — in practice a region on a standby (or a third
// node); leadership needs no process on the witness's CPUs, only its RNIC.
//
//	+0  owner      controller ID holding the lease, 0 = vacant
//	+8  expiry     lease deadline, unix nanoseconds
//	+16 epoch      fencing epoch, bumped by FETCH_ADD on every acquisition
//	+24 (reserved)
const (
	WitnessMRName = "ha-witness"
	WitnessSize   = 32

	witnessOffOwner  = 0
	witnessOffExpiry = 8
	witnessOffEpoch  = 16
)

// ErrLeaseHeld reports an acquisition attempt while another controller's
// lease is current.
var ErrLeaseHeld = errors.New("controlha: lease held by another controller")

// Lease is one controller's view of the CAS lease word. Acquire CASes the
// owner word (vacant, or expired-owner takeover) and then FETCH_ADDs the
// fencing epoch: every successful acquisition observes a strictly higher
// epoch than every earlier one, so an old leader's Check — a remote read
// of the epoch word — can detect its own deposal without any channel to
// the new leader. Check is wired into core as the FenceCheck consulted
// before every dispatch CAS.
type Lease struct {
	mem   *core.RemoteMemory
	base  uint64
	id    uint64
	ttl   time.Duration
	reg   *telemetry.Registry
	clock sim.Clock

	mu     sync.Mutex
	held   bool
	epoch  uint64
	expiry time.Time
	stop   chan struct{}
	chain  *ChainOffload
}

// NewLease binds a lease view over the witness MR at base, on the wall
// clock.
func NewLease(mem *core.RemoteMemory, base uint64, id uint64, ttl time.Duration, reg *telemetry.Registry) *Lease {
	return NewLeaseClock(mem, base, id, ttl, reg, sim.Real{})
}

// NewLeaseClock is NewLease with an injected clock — the simulator binds a
// virtual clock here so TTL expiry is a schedule step, not a wall-clock
// race. All leases sharing a witness must share one clock: expiry
// comparisons only mean anything on a common timeline.
func NewLeaseClock(mem *core.RemoteMemory, base uint64, id uint64, ttl time.Duration, reg *telemetry.Registry, clock sim.Clock) *Lease {
	if ttl <= 0 {
		ttl = 2 * time.Second
	}
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	if clock == nil {
		clock = sim.Real{}
	}
	return &Lease{mem: mem, base: base, id: id, ttl: ttl, reg: reg, clock: clock}
}

// Epoch returns the fencing epoch of the currently held term (0 if never
// held). It is the value Journal stamps into every entry.
func (l *Lease) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// Held reports whether this controller believes it holds the lease.
func (l *Lease) Held() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.held
}

// Acquire takes the lease if it is vacant or expired: CAS the owner word,
// then bump the fencing epoch and write the expiry. A live foreign lease
// fails with ErrLeaseHeld.
func (l *Lease) Acquire() error {
	owner, err := l.mem.ReadMem(l.base+witnessOffOwner, 8)
	if err != nil {
		return fmt.Errorf("controlha: witness read: %w", err)
	}
	switch {
	case owner == 0 || owner == l.id:
		if _, ok, err := l.mem.CompareAndSwapMem(l.base+witnessOffOwner, owner, l.id); err != nil {
			return fmt.Errorf("controlha: lease CAS: %w", err)
		} else if !ok {
			return ErrLeaseHeld
		}
	default:
		expiry, err := l.mem.ReadMem(l.base+witnessOffExpiry, 8)
		if err != nil {
			return fmt.Errorf("controlha: witness read: %w", err)
		}
		if l.clock.Now().UnixNano() < int64(expiry) {
			return fmt.Errorf("%w (owner %#x)", ErrLeaseHeld, owner)
		}
		// Expired owner: take over its word. Losing this CAS means another
		// standby won the race.
		if _, ok, err := l.mem.CompareAndSwapMem(l.base+witnessOffOwner, owner, l.id); err != nil {
			return fmt.Errorf("controlha: lease CAS: %w", err)
		} else if !ok {
			return ErrLeaseHeld
		}
	}
	return l.install()
}

// Steal takes the lease unconditionally — the administrative failover path
// (rdxctl failover, the chaos experiment's forced deposal). The epoch bump
// fences the previous holder even though its TTL had not expired.
func (l *Lease) Steal() error {
	for {
		owner, err := l.mem.ReadMem(l.base+witnessOffOwner, 8)
		if err != nil {
			return fmt.Errorf("controlha: witness read: %w", err)
		}
		if _, ok, err := l.mem.CompareAndSwapMem(l.base+witnessOffOwner, owner, l.id); err != nil {
			return fmt.Errorf("controlha: lease CAS: %w", err)
		} else if ok {
			break
		}
	}
	return l.install()
}

// install finishes an acquisition: bump the fencing epoch (FETCH_ADD, so
// concurrent acquirers get distinct, increasing epochs), write the expiry,
// and record the term locally.
func (l *Lease) install() error {
	prev, err := l.mem.FetchAddMem(l.base+witnessOffEpoch, 1)
	if err != nil {
		return fmt.Errorf("controlha: epoch bump: %w", err)
	}
	expiry := l.clock.Now().Add(l.ttl)
	if err := l.mem.WriteMem(l.base+witnessOffExpiry, 8, uint64(expiry.UnixNano())); err != nil {
		return fmt.Errorf("controlha: expiry write: %w", err)
	}
	l.mu.Lock()
	l.held = true
	l.epoch = prev + 1
	l.expiry = expiry
	l.mu.Unlock()
	l.reg.Counter("controlha.lease.acquired").Inc()
	return nil
}

// UseChain routes this lease's renewals through an armed renew chain (see
// ChainOffload): Renew becomes one ChainTrigger verb instead of two reads
// and a write. A nil offload restores the unoffloaded path.
func (l *Lease) UseChain(co *ChainOffload) {
	l.mu.Lock()
	l.chain = co
	l.mu.Unlock()
}

// RenewChain extends a held lease by firing the pre-posted renew chain with
// the new expiry as the trigger argument. The chain's ownership CAS and
// epoch guard run on the witness host's NIC; a revoked or faulted chain —
// or an access error from a rotated chain MR — means this controller was
// deposed, and the lease is marked lost locally (core.ErrFenced), exactly
// like Renew discovering a foreign owner.
func (l *Lease) RenewChain() error {
	l.mu.Lock()
	held, co := l.held, l.chain
	l.mu.Unlock()
	if !held {
		return fmt.Errorf("controlha: renew without lease: %w", core.ErrFenced)
	}
	if co == nil {
		return fmt.Errorf("controlha: no renew chain armed")
	}
	expiry := l.clock.Now().Add(l.ttl)
	if _, err := co.TriggerRenew(context.Background(), uint64(expiry.UnixNano())); err != nil {
		if errors.Is(err, rdma.ErrChainRevoked) || errors.Is(err, rdma.ErrChainFault) ||
			errors.Is(err, rdma.ErrAccess) {
			l.depose()
			return fmt.Errorf("controlha: renew chain refused (%v): %w", err, core.ErrFenced)
		}
		return fmt.Errorf("controlha: renew chain: %w", err)
	}
	l.mu.Lock()
	l.expiry = expiry
	l.mu.Unlock()
	l.reg.Counter("controlha.lease.renewed").Inc()
	return nil
}

// Renew extends a held lease after verifying remote ownership. Discovering
// a foreign owner (or epoch) marks the lease lost locally. When a renew
// chain is attached (UseChain), the whole sequence is offloaded to the
// witness host's NIC via RenewChain.
func (l *Lease) Renew() error {
	l.mu.Lock()
	held, epoch := l.held, l.epoch
	chained := l.chain != nil
	l.mu.Unlock()
	if chained {
		return l.RenewChain()
	}
	if !held {
		return fmt.Errorf("controlha: renew without lease: %w", core.ErrFenced)
	}
	owner, err := l.mem.ReadMem(l.base+witnessOffOwner, 8)
	if err != nil {
		return fmt.Errorf("controlha: witness read: %w", err)
	}
	cur, err := l.mem.ReadMem(l.base+witnessOffEpoch, 8)
	if err != nil {
		return fmt.Errorf("controlha: witness read: %w", err)
	}
	if owner != l.id || cur != epoch {
		l.depose()
		return fmt.Errorf("controlha: lease taken by %#x (epoch %d, held %d): %w",
			owner, cur, epoch, core.ErrFenced)
	}
	expiry := l.clock.Now().Add(l.ttl)
	if err := l.mem.WriteMem(l.base+witnessOffExpiry, 8, uint64(expiry.UnixNano())); err != nil {
		return fmt.Errorf("controlha: expiry write: %w", err)
	}
	l.mu.Lock()
	l.expiry = expiry
	l.mu.Unlock()
	l.reg.Counter("controlha.lease.renewed").Inc()
	return nil
}

// depose marks the lease lost locally.
func (l *Lease) depose() {
	l.mu.Lock()
	l.held = false
	l.mu.Unlock()
}

// Check implements core.FenceCheck: fail unless this controller still
// holds the current term. Locally, the lease must be held and unexpired;
// remotely, the witness epoch word must still equal the held epoch (one
// READ — cheap enough to sit in front of every dispatch CAS). Everything
// fails closed: an unreadable witness refuses the publish rather than
// risking a split-brain pointer flip. Like wrappedSince, the check cannot
// close the window completely — a deposal can land between the READ and
// the CAS — but it narrows it to a single in-flight verb, and the replay
// path makes any such lost publish converge by last-writer-wins.
func (l *Lease) Check() error {
	l.mu.Lock()
	held, epoch, expiry := l.held, l.epoch, l.expiry
	l.mu.Unlock()
	if !held {
		l.reg.Counter("controlha.lease.fenced_rejects").Inc()
		return fmt.Errorf("controlha: lease not held: %w", core.ErrFenced)
	}
	if l.clock.Now().After(expiry) {
		l.reg.Counter("controlha.lease.fenced_rejects").Inc()
		return fmt.Errorf("controlha: lease expired locally: %w", core.ErrFenced)
	}
	cur, err := l.mem.ReadMem(l.base+witnessOffEpoch, 8)
	if err != nil {
		return fmt.Errorf("controlha: fence check unreadable (failing closed): %w", err)
	}
	if cur != epoch {
		l.depose()
		l.reg.Counter("controlha.lease.fenced_rejects").Inc()
		return fmt.Errorf("controlha: fencing epoch %d superseded by %d: %w",
			epoch, cur, core.ErrFenced)
	}
	return nil
}

// StartRenewal renews the lease every ttl/3 until StopRenewal (or a failed
// renewal, which deposes locally and stops the loop).
func (l *Lease) StartRenewal() {
	l.mu.Lock()
	if l.stop != nil {
		l.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	l.stop = stop
	l.mu.Unlock()
	interval := l.ttl / 3
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		t := l.clock.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C():
				if err := l.Renew(); err != nil {
					return
				}
			}
		}
	}()
}

// StopRenewal stops the renewal loop, if running.
func (l *Lease) StopRenewal() {
	l.mu.Lock()
	if l.stop != nil {
		close(l.stop)
		l.stop = nil
	}
	l.mu.Unlock()
}

// Release stops renewing and vacates the owner word if still held by this
// controller (best effort; an expired lease simply lapses).
func (l *Lease) Release() error {
	l.StopRenewal()
	l.mu.Lock()
	held := l.held
	l.held = false
	l.mu.Unlock()
	if !held {
		return nil
	}
	_, _, err := l.mem.CompareAndSwapMem(l.base+witnessOffOwner, l.id, 0)
	return err
}
