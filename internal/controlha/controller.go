package controlha

import (
	"context"
	"fmt"
	"time"

	"rdx/internal/core"
	"rdx/internal/rdma"
	"rdx/internal/sim"
)

// Leader bundles one controller's leadership term: the lease it holds, the
// journal it appends, and the replication stream pushing that journal to
// the standby. Dropping leadership (voluntarily or by deposal) leaves the
// ControlPlane usable but fenced — every publish fails with core.ErrFenced
// until a new term is attached.
type Leader struct {
	CP      *core.ControlPlane
	Lease   *Lease
	Journal *Journal
	Rep     *Replicator
}

// findMR locates a named MR in a discovered table.
func findMR(mrs []rdma.MR, name string) (rdma.MR, error) {
	for _, mr := range mrs {
		if mr.Name == name {
			return mr, nil
		}
	}
	return rdma.MR{}, fmt.Errorf("controlha: peer exposes no %q MR", name)
}

// AttachLeader makes cp the fleet's leader: over qp (a connection to the
// standby host), acquire the CAS lease in the witness MR, stamp the
// journal ring with the new fencing epoch, and wire a replicated journal
// plus the lease fence into cp's publish paths. The returned Leader's
// lease is NOT auto-renewed; call Leader.Lease.StartRenewal for
// long-running deployments.
func AttachLeader(cp *core.ControlPlane, qp rdma.Verbs, id uint64, ttl time.Duration) (*Leader, error) {
	return AttachLeaderClock(cp, qp, id, ttl, sim.Real{})
}

// AttachLeaderClock is AttachLeader with an injected clock for the lease's
// TTL arithmetic (the simulator's seam).
func AttachLeaderClock(cp *core.ControlPlane, qp rdma.Verbs, id uint64, ttl time.Duration, clock sim.Clock) (*Leader, error) {
	mrs, err := qp.QueryMRs()
	if err != nil {
		return nil, fmt.Errorf("controlha: MR discovery: %w", err)
	}
	mem := core.NewRemoteMemory(qp, mrs)
	witness, err := findMR(mrs, WitnessMRName)
	if err != nil {
		return nil, err
	}
	ring, err := findMR(mrs, RingMRName)
	if err != nil {
		return nil, err
	}
	lease := NewLeaseClock(mem, witness.Addr, id, ttl, cp.Registry, clock)
	if err := lease.Acquire(); err != nil {
		return nil, err
	}
	rep := NewReplicator(mem, ring.Addr, 0, lease.Epoch(), cp.Registry)
	if err := rep.Activate(); err != nil {
		return nil, err
	}
	j := NewJournal(cp.Registry)
	j.SetFenceSource(lease.Epoch)
	j.SetReplicator(rep)
	cp.SetJournal(j)
	cp.SetFence(lease.Check)
	return &Leader{CP: cp, Lease: lease, Journal: j, Rep: rep}, nil
}

// TakeOver promotes a standby: steal the lease (the epoch bump fences the
// old leader out of every dispatch CAS and ring append), pump the
// replicated journal, replay it onto cp, and install the reconstructed
// deployed-version map and rollback stacks on the re-attached CodeFlows
// (keyed by NodeKey). The new term continues journaling into the same
// ring — sequence numbers carry on from the replayed tail, so the ring
// stays replayable end to end across any number of failovers. qp must
// reach the standby's own host endpoint (a fabric loopback works: the
// coordination machinery is built from the fabric's own verbs, so the
// successor uses them even against itself).
//
// Returns the new leadership term and the replayed state; State.Open lists
// the interrupted jobs the caller should re-drive. Takeover latency lands
// in the controlha.takeover.latency histogram.
func TakeOver(cp *core.ControlPlane, host *Host, qp rdma.Verbs, id uint64, ttl time.Duration, flows map[string]*core.CodeFlow) (*Leader, *State, error) {
	return TakeOverClock(cp, host, qp, id, ttl, flows, sim.Real{})
}

// TakeOverClock is TakeOver with an injected clock (the simulator's seam).
//
// The FIRST act of a takeover is rotating the ring MR's rkey on the
// standby's endpoint (FenceRing). The epoch-word CAS check inside Append
// narrows but cannot close the deposal window: a stale leader that passed
// the check and already holds a tail reservation can land its WRITE and
// plain hwm CAS after the successor replayed and re-seeded sequence
// numbers, committing a duplicate-seq entry into the live ring. Rotation
// revokes the stale leader's rkey before the successor queries the fresh
// MR table, so no pre-takeover verb can mutate the ring afterwards —
// which is also what makes Reconcile (collapsing a dead reservation so
// the ring un-wedges) safe to run. The rotation happens before the lease
// steal: if the steal then fails, the old leader is fenced off its ring
// without a successor — acceptable for this administrative failover path,
// where the operator retries.
func TakeOverClock(cp *core.ControlPlane, host *Host, qp rdma.Verbs, id uint64, ttl time.Duration, flows map[string]*core.CodeFlow, clock sim.Clock) (*Leader, *State, error) {
	if clock == nil {
		clock = sim.Real{}
	}
	start := clock.Now()
	if rotateRingOnTakeover {
		if err := host.FenceRing(); err != nil {
			return nil, nil, fmt.Errorf("controlha: ring fence: %w", err)
		}
	}
	mrs, err := qp.QueryMRs()
	if err != nil {
		return nil, nil, fmt.Errorf("controlha: MR discovery: %w", err)
	}
	mem := core.NewRemoteMemory(qp, mrs)
	witness, err := findMR(mrs, WitnessMRName)
	if err != nil {
		return nil, nil, err
	}
	ring, err := findMR(mrs, RingMRName)
	if err != nil {
		return nil, nil, err
	}
	lease := NewLeaseClock(mem, witness.Addr, id, ttl, cp.Registry, clock)
	if err := lease.Steal(); err != nil {
		return nil, nil, err
	}
	rep := NewReplicator(mem, ring.Addr, 0, lease.Epoch(), cp.Registry)
	if err := rep.Activate(); err != nil {
		return nil, nil, err
	}
	if rotateRingOnTakeover {
		if err := rep.Reconcile(); err != nil {
			return nil, nil, err
		}
	}
	if _, err := host.Pump(); err != nil {
		return nil, nil, fmt.Errorf("controlha: final pump: %w", err)
	}
	state, err := Replay(host.JournalBytes())
	if err != nil {
		return nil, nil, fmt.Errorf("controlha: journal replay: %w", err)
	}
	state.ApplyTo(cp, flows)
	j := NewJournal(cp.Registry)
	j.SeedSeq(state.LastSeq)
	j.SetFenceSource(lease.Epoch)
	j.SetReplicator(rep)
	cp.SetJournal(j)
	cp.SetFence(lease.Check)
	cp.Registry.Histogram("controlha.takeover.latency").RecordDuration(clock.Since(start))
	return &Leader{CP: cp, Lease: lease, Journal: j, Rep: rep}, state, nil
}

// Detach removes the term's hooks from the control plane and stops lease
// renewal, without vacating the lease word (a successor Steals it, or the
// TTL lapses).
func (l *Leader) Detach() {
	l.Lease.StopRenewal()
	l.CP.SetFence(nil)
	l.CP.SetJournal(nil)
}

// FetchJournalView reads the committed journal prefix out of a ring MR
// with one-sided READs, delivering the bytes as a zero-copy view of the
// pooled response frame when the underlying issuer supports it (see
// core.RemoteMemory.ReadBytesView). The CAS-committed high-watermark
// bounds what is trusted, and a ring that has wrapped past its capacity no
// longer holds its full history (ErrRingOverrun — a standby that pumped
// continuously still has the complete copy; this path is for late readers
// like rdxctl). The caller must Release the view; Replay copies everything
// it keeps, so releasing right after replay is safe.
func FetchJournalView(mem *core.RemoteMemory, base uint64) (rdma.FrameView, error) {
	hwm, err := mem.ReadMem(base+ringOffHwm, 8)
	if err != nil {
		return rdma.FrameView{}, fmt.Errorf("controlha: ring read: %w", err)
	}
	dataCap, err := mem.ReadMem(base+ringOffCap, 8)
	if err != nil {
		return rdma.FrameView{}, fmt.Errorf("controlha: ring read: %w", err)
	}
	if hwm > dataCap {
		return rdma.FrameView{}, fmt.Errorf("%w: %d committed bytes exceed ring capacity %d (oldest entries overwritten)",
			ErrRingOverrun, hwm, dataCap)
	}
	if hwm == 0 {
		return rdma.FrameView{}, nil
	}
	return mem.ReadBytesView(base+RingHdrSize, int(hwm))
}

// FetchJournal is FetchJournalView for callers that keep the bytes: the
// view is copied to the heap and released.
func FetchJournal(mem *core.RemoteMemory, base uint64) ([]byte, error) {
	view, err := FetchJournalView(mem, base)
	if err != nil {
		return nil, err
	}
	defer view.Release()
	if len(view.Bytes()) == 0 {
		return nil, nil
	}
	return append([]byte(nil), view.Bytes()...), nil
}

// TakeOverRemote is TakeOver for a controller that does not own the standby
// host's arena (rdxctl failover): the journal is fetched over one-sided
// READs from the ring MR instead of pumped locally. Requires an unwrapped
// ring; a continuously pumping standby should promote itself with TakeOver
// instead. Like TakeOverClock, the FIRST act is fencing the ring — here by
// the remote OpRotateMR verb instead of a host-handle call — so a stale
// leader's already-reserved WRITE/commit cannot land after the successor
// replays (the window epoch-only fencing left open).
func TakeOverRemote(cp *core.ControlPlane, qp rdma.Verbs, id uint64, ttl time.Duration, flows map[string]*core.CodeFlow) (*Leader, *State, error) {
	start := time.Now()
	if rotateRingOnTakeover {
		if _, err := qp.RotateMRCtx(context.Background(), RingMRName); err != nil {
			return nil, nil, fmt.Errorf("controlha: remote ring fence: %w", err)
		}
	}
	mrs, err := qp.QueryMRs()
	if err != nil {
		return nil, nil, fmt.Errorf("controlha: MR discovery: %w", err)
	}
	mem := core.NewRemoteMemory(qp, mrs)
	witness, err := findMR(mrs, WitnessMRName)
	if err != nil {
		return nil, nil, err
	}
	ring, err := findMR(mrs, RingMRName)
	if err != nil {
		return nil, nil, err
	}
	lease := NewLease(mem, witness.Addr, id, ttl, cp.Registry)
	if err := lease.Steal(); err != nil {
		return nil, nil, err
	}
	rep := NewReplicator(mem, ring.Addr, 0, lease.Epoch(), cp.Registry)
	if err := rep.Activate(); err != nil {
		return nil, nil, err
	}
	if rotateRingOnTakeover {
		// The rotation may have fenced a dead reservation mid-flight;
		// collapse it so the ring un-wedges (same as TakeOverClock).
		if err := rep.Reconcile(); err != nil {
			return nil, nil, err
		}
	}
	view, err := FetchJournalView(mem, ring.Addr)
	if err != nil {
		return nil, nil, err
	}
	state, err := Replay(view.Bytes())
	view.Release()
	if err != nil {
		return nil, nil, fmt.Errorf("controlha: journal replay: %w", err)
	}
	state.ApplyTo(cp, flows)
	j := NewJournal(cp.Registry)
	j.SeedSeq(state.LastSeq)
	j.SetFenceSource(lease.Epoch)
	j.SetReplicator(rep)
	cp.SetJournal(j)
	cp.SetFence(lease.Check)
	cp.Registry.Histogram("controlha.takeover.latency").RecordDuration(time.Since(start))
	return &Leader{CP: cp, Lease: lease, Journal: j, Rep: rep}, state, nil
}

// HAStatus is a read-only snapshot of a standby host's coordination state,
// taken entirely with one-sided READs (rdxctl stats -ha).
type HAStatus struct {
	Owner     uint64    // lease owner ID, 0 = vacant
	Expiry    time.Time // lease deadline
	Epoch     uint64    // fencing epoch
	RingTail  uint64    // reserved bytes
	RingHwm   uint64    // committed bytes
	RingEpoch uint64    // epoch stamped into the ring
	RingCap   uint64    // ring data capacity
	State     *State    // replayed journal state; nil if the ring wrapped
	ReplayErr error     // why State is nil (wrap, corruption), if so
}

// Inspect reads a standby host's witness and ring over qp and replays the
// journal (when the ring still holds it whole) into a status snapshot.
func Inspect(qp rdma.Verbs) (*HAStatus, error) {
	mrs, err := qp.QueryMRs()
	if err != nil {
		return nil, fmt.Errorf("controlha: MR discovery: %w", err)
	}
	mem := core.NewRemoteMemory(qp, mrs)
	witness, err := findMR(mrs, WitnessMRName)
	if err != nil {
		return nil, err
	}
	ring, err := findMR(mrs, RingMRName)
	if err != nil {
		return nil, err
	}
	st := &HAStatus{}
	reads := []struct {
		addr uint64
		dst  *uint64
	}{
		{witness.Addr + witnessOffOwner, &st.Owner},
		{witness.Addr + witnessOffEpoch, &st.Epoch},
		{ring.Addr + ringOffTail, &st.RingTail},
		{ring.Addr + ringOffHwm, &st.RingHwm},
		{ring.Addr + ringOffEpoch, &st.RingEpoch},
		{ring.Addr + ringOffCap, &st.RingCap},
	}
	for _, r := range reads {
		v, err := mem.ReadMem(r.addr, 8)
		if err != nil {
			return nil, fmt.Errorf("controlha: status read: %w", err)
		}
		*r.dst = v
	}
	expiry, err := mem.ReadMem(witness.Addr+witnessOffExpiry, 8)
	if err != nil {
		return nil, fmt.Errorf("controlha: status read: %w", err)
	}
	if expiry != 0 {
		st.Expiry = time.Unix(0, int64(expiry))
	}
	journal, err := FetchJournal(mem, ring.Addr)
	if err != nil {
		st.ReplayErr = err
		return st, nil
	}
	st.State, st.ReplayErr = Replay(journal)
	return st, nil
}
