//go:build !simregression

package controlha

// rotateRingOnTakeover gates the rkey-rotation fence in TakeOverClock. It
// is a const, not a flag: the only build that turns it off is the
// simregression one, which deliberately re-opens the historical
// stale-leader append window so the simulator can demonstrate it finds
// the bug (see internal/sim/scenario).
const rotateRingOnTakeover = true
