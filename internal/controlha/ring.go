package controlha

import (
	"errors"
	"fmt"
	"sync"

	"rdx/internal/core"
	"rdx/internal/rdma"
	"rdx/internal/telemetry"
)

// Replication ring MR layout (standby-owned). The leader pushes journal
// bytes with the same verb sequence RDX uses to inject code: FETCH_ADD
// reserves ring space (the tail), one-sided WRITEs carry the bytes, and a
// CAS commits the high-watermark — the standby trusts only bytes below the
// watermark, so a leader that dies mid-WRITE can never expose a torn
// journal suffix.
//
//	+0  magic
//	+8  tail        reservation bump pointer (FETCH_ADD), monotonic
//	+16 hwm         committed high-watermark (CAS), monotonic
//	+24 ringEpoch   fencing epoch of the leader the standby accepts
//	+32 dataCap     ring data capacity in bytes
//	+40 data[dataCap]
const (
	RingMRName     = "ha-journal"
	RingMagic      = 0x52444a52 // "RJDR"
	ringOffMagic   = 0
	ringOffTail    = 8
	ringOffHwm     = 16
	ringOffEpoch   = 24
	ringOffCap     = 32
	RingHdrSize    = 40
	DefaultRingCap = 1 << 20
)

// Replication errors.
var (
	// ErrFencedAppend reports an append attempted after the ring's epoch
	// word moved past this leader's term: a deposed leader must not grow
	// the standby's journal.
	ErrFencedAppend = errors.New("controlha: journal append fenced (ring epoch superseded)")
	// ErrSplitBrain reports a lost high-watermark CAS: some other writer
	// committed bytes into the reservation window, which only happens when
	// two controllers both believe they lead.
	ErrSplitBrain = errors.New("controlha: replication high-watermark conflict (split brain)")
	// ErrRingOverrun reports committed bytes further ahead than the ring
	// can hold — the standby lagged more than one capacity behind and the
	// oldest unread bytes were overwritten.
	ErrRingOverrun = errors.New("controlha: replication ring overrun")
)

// Replicator is the leader-side half of journal replication: it appends
// encoded entries into a standby's ring MR using only one-sided verbs.
// Appends are serialized by the owning Journal, so the tail reservation
// and the high-watermark commit advance in lockstep; a hwm CAS that still
// fails means a second writer — split brain — and is surfaced as a typed
// error rather than retried.
type Replicator struct {
	mem   *core.RemoteMemory
	base  uint64
	cap   uint64
	epoch uint64
	reg   *telemetry.Registry

	mu         sync.Mutex
	replicated uint64
}

// NewReplicator binds a replication stream onto the ring MR at base. epoch
// is the leader's fencing epoch; Activate stamps it into the ring before
// the first append.
func NewReplicator(mem *core.RemoteMemory, base, dataCap uint64, epoch uint64, reg *telemetry.Registry) *Replicator {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &Replicator{mem: mem, base: base, cap: dataCap, epoch: epoch, reg: reg}
}

// Activate claims the ring for this leader's term by writing its fencing
// epoch into the ring's epoch word. Any previous leader's next append sees
// the foreign epoch and fails fenced.
func (r *Replicator) Activate() error {
	magic, err := r.mem.ReadMem(r.base+ringOffMagic, 8)
	if err != nil {
		return fmt.Errorf("controlha: ring read: %w", err)
	}
	if uint32(magic) != RingMagic {
		return fmt.Errorf("controlha: target MR is not a journal ring (magic %#x)", magic)
	}
	cap, err := r.mem.ReadMem(r.base+ringOffCap, 8)
	if err != nil {
		return fmt.Errorf("controlha: ring read: %w", err)
	}
	if r.cap == 0 {
		r.cap = cap
	} else if r.cap != cap {
		return fmt.Errorf("controlha: ring capacity mismatch: standby %d, leader %d", cap, r.cap)
	}
	if err := r.mem.WriteMem(r.base+ringOffEpoch, 8, r.epoch); err != nil {
		return fmt.Errorf("controlha: ring epoch write: %w", err)
	}
	return nil
}

// classifyAppendErr maps transport errors onto the replication taxonomy.
// An access error means the standby rotated the ring rkey out from under
// us — the RDMA-native fencing a successor applies during takeover — so it
// surfaces as ErrFencedAppend, not as an opaque wire failure.
func (r *Replicator) classifyAppendErr(stage string, err error) error {
	if errors.Is(err, rdma.ErrAccess) {
		r.reg.Counter("controlha.journal.fenced_appends").Inc()
		return fmt.Errorf("%w: ring %s revoked: %v", ErrFencedAppend, stage, err)
	}
	return fmt.Errorf("controlha: ring %s: %w", stage, err)
}

// Replicated returns the bytes committed to the standby so far.
func (r *Replicator) Replicated() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.replicated
}

// Append pushes one encoded entry: verify the ring still belongs to this
// term (a no-op CAS of the epoch word — like the wrappedSince guard it
// narrows, not closes, the deposal window; the hwm CAS below closes the
// torn-commit case), reserve [off, off+n) with FETCH_ADD on the tail,
// WRITE the bytes (split across the ring's wrap boundary), then commit by
// CASing the high-watermark from off to off+n.
func (r *Replicator) Append(b []byte) error {
	n := uint64(len(b))
	if n == 0 {
		return nil
	}
	if n > r.cap {
		return fmt.Errorf("%w: entry of %d bytes exceeds ring capacity %d", ErrRingOverrun, n, r.cap)
	}
	// Epoch verify: CAS(epoch, epoch) mutates nothing and returns the
	// current word, failing the append once a successor stamped its term.
	if prev, ok, err := r.mem.CompareAndSwapMem(r.base+ringOffEpoch, r.epoch, r.epoch); err != nil {
		return r.classifyAppendErr("epoch check", err)
	} else if !ok {
		r.reg.Counter("controlha.journal.fenced_appends").Inc()
		return fmt.Errorf("%w: ring epoch %d, leader epoch %d", ErrFencedAppend, prev, r.epoch)
	}
	off, err := r.mem.FetchAddMem(r.base+ringOffTail, n)
	if err != nil {
		return r.classifyAppendErr("reserve", err)
	}
	pos := off % r.cap
	first := n
	if pos+n > r.cap {
		first = r.cap - pos
	}
	if err := r.mem.WriteBytes(r.base+RingHdrSize+pos, b[:first]); err != nil {
		return r.classifyAppendErr("write", err)
	}
	if first < n {
		if err := r.mem.WriteBytes(r.base+RingHdrSize, b[first:]); err != nil {
			return r.classifyAppendErr("write", err)
		}
	}
	if prev, ok, err := r.mem.CompareAndSwapMem(r.base+ringOffHwm, off, off+n); err != nil {
		return r.classifyAppendErr("commit", err)
	} else if !ok {
		return fmt.Errorf("%w: hwm %d, reserved at %d", ErrSplitBrain, prev, off)
	}
	r.mu.Lock()
	r.replicated = off + n
	r.mu.Unlock()
	return nil
}

// Reconcile collapses a dead reservation: a predecessor that reserved
// tail space (FETCH_ADD landed) but never committed it leaves tail > hwm
// forever, and every later append would lose its hwm CAS against the
// stale base. The successor CASes the tail back down to the committed
// high-watermark. ONLY safe after the ring rkey has been rotated —
// otherwise the dead reservation's WRITE could still be in flight and
// land inside space a future append re-reserves.
func (r *Replicator) Reconcile() error {
	hwm, err := r.mem.ReadMem(r.base+ringOffHwm, 8)
	if err != nil {
		return fmt.Errorf("controlha: ring read: %w", err)
	}
	tail, err := r.mem.ReadMem(r.base+ringOffTail, 8)
	if err != nil {
		return fmt.Errorf("controlha: ring read: %w", err)
	}
	if tail == hwm {
		return nil
	}
	if prev, ok, err := r.mem.CompareAndSwapMem(r.base+ringOffTail, tail, hwm); err != nil {
		return fmt.Errorf("controlha: ring reconcile: %w", err)
	} else if !ok {
		return fmt.Errorf("%w: tail moved %d→%d during reconcile", ErrSplitBrain, tail, prev)
	}
	r.reg.Counter("controlha.journal.reconciled_reservations").Inc()
	r.mu.Lock()
	r.replicated = hwm
	r.mu.Unlock()
	return nil
}
