package controlha_test

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rdx/internal/artifact"
	"rdx/internal/cluster"
	"rdx/internal/controlha"
	"rdx/internal/core"
	"rdx/internal/ext"
	"rdx/internal/node"
	"rdx/internal/rdma"
	"rdx/internal/telemetry"
	"rdx/internal/xabi"
)

// haRig is a fleet of served nodes plus a standby host, all on one fabric.
type haRig struct {
	fab   *rdma.Fabric
	host  *controlha.Host
	nodes []*node.Node
	reg   *telemetry.Registry
	arts  *artifact.Cache
}

func newHARig(t *testing.T, n int) *haRig {
	t.Helper()
	r := &haRig{fab: rdma.NewFabric(), reg: telemetry.NewRegistry()}
	r.arts = artifact.NewCache(artifact.Config{Registry: r.reg})
	h, err := controlha.NewHost(0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	r.host = h
	hl, err := r.fab.Listen("standby")
	if err != nil {
		t.Fatal(err)
	}
	go h.Serve(hl)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("ha-%d", i)
		nd, err := node.New(node.Config{
			ID: id, Hooks: []string{"ingress"}, Cores: 2, Latency: rdma.NoLatency(), Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(nd.Close)
		l, err := r.fab.Listen(id)
		if err != nil {
			t.Fatal(err)
		}
		go nd.Serve(l)
		r.nodes = append(r.nodes, nd)
	}
	return r
}

// controller binds a fresh control plane (sharing the rig's artifact cache)
// to every node, returning the plane, the broadcast group, and the flow map
// keyed by NodeKey for journal replay.
func (r *haRig) controller(t *testing.T) (*core.ControlPlane, core.Group, map[string]*core.CodeFlow) {
	t.Helper()
	cp := core.NewControlPlaneWith(r.arts, r.reg)
	flows := map[string]*core.CodeFlow{}
	var g core.Group
	for _, nd := range r.nodes {
		conn, err := r.fab.Dial(nd.ID)
		if err != nil {
			t.Fatal(err)
		}
		cf, err := cp.CreateCodeFlow(conn)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cf.Close() })
		flows[cf.NodeKey()] = cf
		g = append(g, cf)
	}
	return cp, g, flows
}

func (r *haRig) hostQP(t *testing.T) rdma.Verbs {
	t.Helper()
	conn, err := r.fab.Dial("standby")
	if err != nil {
		t.Fatal(err)
	}
	return rdma.NewQP(conn)
}

// TestReplayReconstructsLiveControlPlane is the determinism acceptance test:
// replaying the replicated journal on a fresh ControlPlane reproduces the
// leader's deployed-version map and rollback stacks exactly, a second replay
// of the same bytes is identical, and re-driving a deployment through the
// successor hits the shared artifact cache with zero new compiles.
func TestReplayReconstructsLiveControlPlane(t *testing.T) {
	rig := newHARig(t, 2)
	cp1, g1, _ := rig.controller(t)
	if _, err := controlha.AttachLeader(cp1, rig.hostQP(t), 1, time.Minute); err != nil {
		t.Fatal(err)
	}

	// A history with texture: two generations everywhere, a third on node 0
	// only, then a rollback on node 0.
	e1 := cluster.GenerationExt(ext.KindEBPF, 1, 200)
	e2 := cluster.GenerationExt(ext.KindEBPF, 2, 200)
	e3 := cluster.GenerationExt(ext.KindEBPF, 3, 200)
	for _, cf := range g1 {
		if _, err := cf.InjectExtension(e1, "ingress"); err != nil {
			t.Fatal(err)
		}
		if _, err := cf.InjectExtension(e2, "ingress"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g1[0].InjectExtension(e3, "ingress"); err != nil {
		t.Fatal(err)
	}
	if _, err := g1[0].Rollback("ingress"); err != nil {
		t.Fatal(err)
	}

	if _, err := rig.host.Pump(); err != nil {
		t.Fatal(err)
	}
	data := rig.host.JournalBytes()
	s1, err := controlha.Replay(data)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := controlha.Replay(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("two replays of the same bytes diverged")
	}

	// The replayed version map is byte-identical to the live one.
	live := cp1.DeployedVersions()
	if len(live) != len(s1.Versions) {
		t.Fatalf("replayed %d version entries, live has %d", len(s1.Versions), len(live))
	}
	for k, dv := range live {
		if got := s1.Versions[controlha.Key{Node: k.Node, Hook: k.Hook}]; got != dv {
			t.Errorf("version %v: replayed %+v, live %+v", k, got, dv)
		}
	}
	// And so is each node's rollback stack.
	for _, cf := range g1 {
		want := cf.History("ingress")
		got := s1.History[controlha.Key{Node: cf.NodeKey(), Hook: "ingress"}]
		if !reflect.DeepEqual(got, want) {
			t.Errorf("history %s:\nreplayed %+v\nlive     %+v", cf.NodeKey(), got, want)
		}
	}
	if len(s1.Open) != 0 {
		t.Errorf("open intents after fully published history: %+v", s1.Open)
	}

	// Install the state on a fresh plane: the maps transfer verbatim, and a
	// re-driven deployment through the successor costs zero new compiles.
	cp2, g2, flows2 := rig.controller(t)
	s1.ApplyTo(cp2, flows2)
	if !reflect.DeepEqual(cp2.DeployedVersions(), live) {
		t.Error("restored version map differs from the leader's")
	}
	compiles := rig.reg.Counter("artifact.compile.invocations").Value()
	if _, err := g2[1].InjectExtension(e3, "ingress"); err != nil {
		t.Fatal(err)
	}
	if got := rig.reg.Counter("artifact.compile.invocations").Value(); got != compiles {
		t.Errorf("re-drive recompiled: %d -> %d", compiles, got)
	}
}

// TestFailoverChaosUnderBroadcast is the chaos acceptance test (run it with
// -race): a leader broadcasts generation after generation to the fleet while
// readers hammer every node's hook; mid-stream a standby steals the lease
// and replays the journal. The deposed leader's in-flight and subsequent
// publishes must fail with core.ErrFenced and must not flip any pointer to
// a torn blob — every ExecHook during the whole run returns a whole
// generation's verdict — and after the successor re-drives, the fleet
// converges on exactly one version.
func TestFailoverChaosUnderBroadcast(t *testing.T) {
	rig := newHARig(t, 3)
	cp1, g1, _ := rig.controller(t)
	if _, err := controlha.AttachLeader(cp1, rig.hostQP(t), 1, time.Minute); err != nil {
		t.Fatal(err)
	}

	gen := func(i int) *ext.Extension { return cluster.GenerationExt(ext.KindEBPF, i, 200) }

	// Readers: every node's hook must always execute a whole blob — the
	// initial pass-through or some generation's verdict, never garbage.
	stopRead := make(chan struct{})
	var readers sync.WaitGroup
	var torn atomic.Int64
	for _, nd := range rig.nodes {
		readers.Add(1)
		go func(nd *node.Node) {
			defer readers.Done()
			ctx := make([]byte, xabi.CtxSize)
			for {
				select {
				case <-stopRead:
					return
				default:
				}
				res, err := nd.ExecHook("ingress", ctx, nil)
				if err != nil || (res.Verdict != xabi.VerdictPass && (res.Verdict < 100 || res.Verdict > 200)) {
					torn.Add(1)
					t.Errorf("node %s: verdict %d err %v", nd.ID, res.Verdict, err)
					return
				}
			}
		}(nd)
	}

	// The doomed leader: broadcast generations until fenced.
	okGens := make(chan int, 64)
	fenced := make(chan error, 1)
	go func() {
		for i := 1; ; i++ {
			_, err := g1.Broadcast(gen(i), core.BroadcastOptions{Hook: "ingress"})
			if err != nil {
				fenced <- err
				return
			}
			okGens <- i
		}
	}()

	// Let a couple of generations land, then the standby takes over.
	var lastOK int
	for lastOK < 2 {
		select {
		case lastOK = <-okGens:
		case err := <-fenced:
			t.Fatalf("leader fenced before takeover: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("leader made no progress")
		}
	}
	cp2, g2, flows2 := rig.controller(t)
	_, state, err := controlha.TakeOver(cp2, rig.host, rig.hostQP(t), 2, time.Minute, flows2)
	if err != nil {
		t.Fatalf("takeover: %v", err)
	}
	if state.LastSeq == 0 || len(state.Versions) != len(rig.nodes) {
		t.Fatalf("replayed state: lastSeq=%d versions=%d", state.LastSeq, len(state.Versions))
	}

	// The deposed leader's broadcast loop must die on the fencing epoch.
	select {
	case err := <-fenced:
		if !errors.Is(err, core.ErrFenced) {
			t.Fatalf("deposed broadcast failed with %v, want ErrFenced", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("deposed leader kept publishing after takeover")
	}
	// Regression: a straggling direct publish is rejected with the typed
	// error too — the deposed leader can never flip a pointer.
	if _, err := g1[0].InjectExtension(gen(1), "ingress"); !errors.Is(err, core.ErrFenced) {
		t.Fatalf("late publish: %v, want ErrFenced", err)
	}

	// Drain any remaining ok signals (the fenced broadcast may have been a
	// few generations past lastOK).
	for {
		select {
		case lastOK = <-okGens:
			continue
		default:
		}
		break
	}

	// The successor re-drives one generation past everything the old leader
	// managed; the whole fleet must converge on it.
	final := lastOK + 10
	if _, err := g2.Broadcast(gen(final), core.BroadcastOptions{Hook: "ingress"}); err != nil {
		t.Fatalf("re-driven broadcast: %v", err)
	}

	close(stopRead)
	readers.Wait()
	if torn.Load() != 0 {
		t.Fatalf("%d torn executions observed", torn.Load())
	}
	for _, nd := range rig.nodes {
		res, err := nd.ExecHook("ingress", make([]byte, xabi.CtxSize), nil)
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(100 + final); res.Verdict != want {
			t.Errorf("node %s: verdict %d, want %d", nd.ID, res.Verdict, want)
		}
	}
	if lat := rig.reg.Histogram("controlha.takeover.latency").Median(); lat == 0 {
		t.Error("takeover latency histogram empty")
	}
}
