package controlha

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"rdx/internal/core"
	"rdx/internal/sim"
)

// FuzzJournalReplay feeds arbitrary byte streams to Replay. The contract
// under attack: corrupted, truncated, or reordered journals must produce a
// typed error (ErrCorrupt / ErrTruncated / ErrBadSequence) — never a panic
// — and any stream that does replay must replay deterministically.
func FuzzJournalReplay(f *testing.F) {
	valid := sampleJournal().Bytes()
	f.Add([]byte{})
	f.Add([]byte("not a journal at all"))
	f.Add(valid)
	f.Add(valid[:len(valid)-5])           // truncated mid-entry
	f.Add(append([]byte{0xff}, valid...)) // misaligned prefix
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/2] ^= 0x80
	f.Add(corrupt)
	// Two entries swapped: decodes cleanly, fails the sequence check.
	entries := sampleJournal().Entries()
	entries[0], entries[1] = entries[1], entries[0]
	var swapped []byte
	for i := range entries {
		swapped = append(swapped, entries[i].Encode()...)
	}
	f.Add(swapped)

	f.Fuzz(func(t *testing.T, data []byte) {
		s1, err1 := Replay(data)
		s2, err2 := Replay(data)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic error: %v vs %v", err1, err2)
		}
		if err1 != nil {
			if !errors.Is(err1, ErrCorrupt) && !errors.Is(err1, ErrTruncated) && !errors.Is(err1, ErrBadSequence) {
				t.Fatalf("untyped replay error: %v", err1)
			}
			return
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("replay diverged on identical input:\n%+v\n%+v", s1, s2)
		}
		if s1.Entries > 0 && s1.LastSeq == 0 {
			t.Fatalf("replayed %d entries with lastSeq 0", s1.Entries)
		}
	})
}

// FuzzJournalPumpThroughSim drives arbitrary journal bytes through the
// REAL lease-acquire + replicator-append protocol over the simulator's
// step-controlled transport (the same fabric the model checker schedules)
// and asserts wire faithfulness: the bytes committed to the standby's
// ring are bit-identical to what was appended, and replaying the pumped
// copy agrees exactly — same typed error or same state — with replaying
// the input directly. Any divergence means the transport or the ring
// framing mangled journal bytes in flight.
func FuzzJournalPumpThroughSim(f *testing.F) {
	valid := sampleJournal().Bytes()
	f.Add([]byte{})
	f.Add([]byte("not a journal at all"))
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/2] ^= 0x80
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<13 {
			return // beyond ring capacity by construction; Append refuses
		}
		host, err := NewHost(1 << 14)
		if err != nil {
			t.Fatal(err)
		}
		defer host.Close()

		s := sim.New(sim.Config{Det: true})
		net := sim.NewNet(s)
		net.AddHost("standby", host.Endpoint().Arena(), host.Endpoint().MRs)

		var appendErr error
		s.Setup("pump", func() {
			qp := net.QP("ctrl", "standby")
			mrs, err := qp.QueryMRs()
			if err != nil {
				t.Errorf("sim QueryMRs: %v", err)
				return
			}
			witness, err := findMR(mrs, WitnessMRName)
			if err != nil {
				t.Error(err)
				return
			}
			ring, err := findMR(mrs, RingMRName)
			if err != nil {
				t.Error(err)
				return
			}
			rm := core.NewRemoteMemory(qp, mrs)
			lease := NewLeaseClock(rm, witness.Addr, 1, time.Minute, nil, s.Clock())
			if err := lease.Acquire(); err != nil {
				t.Errorf("sim lease acquire: %v", err)
				return
			}
			rep := NewReplicator(rm, ring.Addr, 0, lease.Epoch(), nil)
			if err := rep.Activate(); err != nil {
				t.Errorf("sim replicator activate: %v", err)
				return
			}
			appendErr = rep.Append(data)
		})
		if t.Failed() || appendErr != nil {
			return // protocol setup failed the test, or the ring refused the payload
		}

		pumped, err := host.CommittedBytes()
		if err != nil {
			t.Fatalf("committed bytes: %v", err)
		}
		if !bytes.Equal(pumped, data) {
			t.Fatalf("wire mangled journal bytes: sent %d bytes, committed %d", len(data), len(pumped))
		}
		sd, errD := Replay(data)
		sp, errP := Replay(pumped)
		if (errD == nil) != (errP == nil) {
			t.Fatalf("replay divergence through the sim wire: direct %v, pumped %v", errD, errP)
		}
		if errD == nil && !reflect.DeepEqual(sd, sp) {
			t.Fatalf("replayed state diverged:\n%+v\n%+v", sd, sp)
		}
	})
}
