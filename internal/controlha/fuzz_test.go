package controlha

import (
	"errors"
	"reflect"
	"testing"
)

// FuzzJournalReplay feeds arbitrary byte streams to Replay. The contract
// under attack: corrupted, truncated, or reordered journals must produce a
// typed error (ErrCorrupt / ErrTruncated / ErrBadSequence) — never a panic
// — and any stream that does replay must replay deterministically.
func FuzzJournalReplay(f *testing.F) {
	valid := sampleJournal().Bytes()
	f.Add([]byte{})
	f.Add([]byte("not a journal at all"))
	f.Add(valid)
	f.Add(valid[:len(valid)-5])           // truncated mid-entry
	f.Add(append([]byte{0xff}, valid...)) // misaligned prefix
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/2] ^= 0x80
	f.Add(corrupt)
	// Two entries swapped: decodes cleanly, fails the sequence check.
	entries := sampleJournal().Entries()
	entries[0], entries[1] = entries[1], entries[0]
	var swapped []byte
	for i := range entries {
		swapped = append(swapped, entries[i].Encode()...)
	}
	f.Add(swapped)

	f.Fuzz(func(t *testing.T, data []byte) {
		s1, err1 := Replay(data)
		s2, err2 := Replay(data)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic error: %v vs %v", err1, err2)
		}
		if err1 != nil {
			if !errors.Is(err1, ErrCorrupt) && !errors.Is(err1, ErrTruncated) && !errors.Is(err1, ErrBadSequence) {
				t.Fatalf("untyped replay error: %v", err1)
			}
			return
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("replay diverged on identical input:\n%+v\n%+v", s1, s2)
		}
		if s1.Entries > 0 && s1.LastSeq == 0 {
			t.Fatalf("replayed %d entries with lastSeq 0", s1.Entries)
		}
	})
}
