package controlha

import (
	"fmt"
	"net"
	"sync"
	"time"

	"rdx/internal/mem"
	"rdx/internal/rdma"
)

// Arena layout of a standby host: the witness region first (8-aligned,
// padded to 64), then the replication ring (header + data), then the
// ha-chain region (pre-posted control chains + deadman words).
const hostWitnessBase = 0
const hostRingBase = 64

// Ha-chain MR layout (offsets within the ChainMRName region). Two chain
// slots hold the pre-posted lease-renew and heartbeat programs; the words
// after them are the heartbeat state the standby polls locally.
//
//	+0     lease-renew chain region (trigger/status/regs/program)
//	+1024  heartbeat chain region
//	+2048  heartbeat liveness epoch — the heartbeat chain CASes it
//	       against the arming epoch; the standby bumps it to fence
//	       resident heartbeats without touching the witness
//	+2056  heartbeat sequence — FETCH-ADDed once per beat
//	+2064  deadman qword — last beat's trigger count, written by the chain
const (
	ChainMRName = "ha-chain"

	ChainRenewOff     = 0
	ChainHeartbeatOff = 1024
	ChainHBEpochOff   = 2048
	ChainHBSeqOff     = 2056
	ChainDeadmanOff   = 2064

	ChainMRSize = 2112
)

// Host is the standby-owned memory a leader replicates into: one arena
// behind one endpoint, exposing the witness MR (lease word + fencing
// epoch) and the journal ring MR. The standby itself touches this memory
// only with local reads (Pump) — all mutation arrives as one-sided verbs
// from whichever controller currently leads, so the host doubles as the
// election witness: no standby-side logic can disagree with the CAS
// outcomes in its own arena.
type Host struct {
	arena   *mem.Arena
	ep      *rdma.Endpoint
	ringCap uint64

	mu       sync.Mutex
	consumed uint64
	journal  []byte

	pumpMu   sync.Mutex
	pumpStop chan struct{}
	pumpDone chan struct{}
}

// NewHost creates a standby host with a journal ring of ringCap data bytes
// (DefaultRingCap if zero) and registers the witness and ring MRs.
func NewHost(ringCap uint64) (*Host, error) {
	return NewHostWith(ringCap, nil)
}

// NewHostWith is NewHost with a latency model on the host's endpoint, so
// simulated deployments pay a realistic per-verb cost on the replication
// and election paths (nil injects no delay). The journal ring and the
// lease words are the one serialization every publish of a control plane
// crosses — modeling their latency is what makes shard-scaling experiments
// honest about what sharding actually buys.
func NewHostWith(ringCap uint64, lat *rdma.LatencyModel) (*Host, error) {
	if ringCap == 0 {
		ringCap = DefaultRingCap
	}
	chainBase := hostRingBase + RingHdrSize + ringCap
	arena := mem.NewArena(int(chainBase + ChainMRSize))
	ep := rdma.NewEndpoint(arena, lat)
	if _, err := ep.RegisterMR(WitnessMRName, hostWitnessBase, WitnessSize, rdma.PermAll); err != nil {
		return nil, err
	}
	if _, err := ep.RegisterMR(RingMRName, hostRingBase, RingHdrSize+ringCap, rdma.PermAll); err != nil {
		return nil, err
	}
	if _, err := ep.RegisterMR(ChainMRName, chainBase, ChainMRSize, rdma.PermAll); err != nil {
		return nil, err
	}
	if err := arena.WriteQword(hostRingBase+ringOffMagic, RingMagic); err != nil {
		return nil, err
	}
	if err := arena.WriteQword(hostRingBase+ringOffCap, ringCap); err != nil {
		return nil, err
	}
	return &Host{arena: arena, ep: ep, ringCap: ringCap}, nil
}

// Endpoint exposes the host's RNIC (for Serve / instrument wiring).
func (h *Host) Endpoint() *rdma.Endpoint { return h.ep }

// Serve accepts controller connections on l (blocking, like rdma.Endpoint.Serve).
func (h *Host) Serve(l net.Listener) error { return h.ep.Serve(l) }

// Close stops any background pump and tears down the host's endpoint.
func (h *Host) Close() {
	h.StopPump()
	h.ep.Close()
}

// WitnessBase and RingBase return the arena addresses of the two MRs, as
// remote controllers will see them in the MR table.
func (h *Host) WitnessBase() uint64 { return hostWitnessBase }
func (h *Host) RingBase() uint64    { return hostRingBase }

// RingCap returns the ring's data capacity in bytes.
func (h *Host) RingCap() uint64 { return h.ringCap }

// FenceRing rotates the journal ring's rkey, invalidating every rkey a
// previous leader resolved: its in-flight and future ring verbs fail with
// an access error (classified as ErrFencedAppend on the leader side)
// instead of landing. This is the RDMA-native fence a successor applies
// FIRST during takeover — unlike the epoch-word CAS check, it closes the
// window where a stale leader's already-reserved WRITE/commit races the
// successor's replay. The witness MR is deliberately NOT rotated: deposed
// leaders must still be able to read the epoch word to observe their own
// deposal (core.ErrFenced via Lease.Check).
func (h *Host) FenceRing() error {
	_, err := h.ep.RotateMR(RingMRName)
	return err
}

// ChainBase returns the arena address of the ha-chain MR, as remote
// controllers will see it in the MR table.
func (h *Host) ChainBase() uint64 { return hostRingBase + RingHdrSize + h.ringCap }

// FenceChains rotates the ha-chain MR's rkey: a stale leader's pre-posted
// renew and heartbeat chains become untriggerable — the trigger verb itself
// fails with an access error before any resident step runs. The successor's
// takeover applies this alongside FenceRing.
func (h *Host) FenceChains() error {
	_, err := h.ep.RotateMR(ChainMRName)
	return err
}

// HeartbeatSeq reads the heartbeat sequence word locally — the standby's
// failure-detection signal, polled with plain arena reads (zero verbs, zero
// dependence on the leader's CPU).
func (h *Host) HeartbeatSeq() (uint64, error) {
	return h.arena.ReadQword(h.ChainBase() + ChainHBSeqOff)
}

// Deadman reads the deadman qword locally: the trigger count of the last
// heartbeat firing, written by the resident chain's final WRITE.
func (h *Host) Deadman() (uint64, error) {
	return h.arena.ReadQword(h.ChainBase() + ChainDeadmanOff)
}

// FenceHeartbeats bumps the heartbeat liveness epoch locally: the resident
// heartbeat chain's epoch CAS loses on its next firing and the chain aborts,
// so a standby that has decided to take over stops accepting beats from the
// old leader without touching the witness.
func (h *Host) FenceHeartbeats() error {
	_, err := h.arena.FetchAdd(h.ChainBase()+ChainHBEpochOff, 1)
	return err
}

// StartDeadman watches the heartbeat sequence: every interval it re-reads
// the word locally, and if the sequence fails to advance for longer than
// timeout, onDead fires once and the watcher exits. This is the standby's
// failure detector — it costs zero verbs and keeps working regardless of
// how saturated the leader's cores are, because the beats it watches are
// executed by the leader's single trigger verb on THIS host's endpoint.
// The returned stop function is idempotent and waits for the watcher to
// exit.
func (h *Host) StartDeadman(interval, timeout time.Duration, onDead func()) (stop func()) {
	if interval <= 0 {
		interval = time.Millisecond
	}
	stopCh := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		lastSeq, _ := h.HeartbeatSeq()
		lastBeat := time.Now()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-t.C:
				seq, err := h.HeartbeatSeq()
				if err != nil {
					continue
				}
				if seq != lastSeq {
					lastSeq, lastBeat = seq, time.Now()
					continue
				}
				if time.Since(lastBeat) > timeout {
					onDead()
					return
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(stopCh) })
		<-done
	}
}

// WitnessEpoch reads the fencing epoch word locally (invariant checkers;
// no verbs involved).
func (h *Host) WitnessEpoch() (uint64, error) {
	return h.arena.ReadQword(hostWitnessBase + witnessOffEpoch)
}

// CommittedBytes reads the committed ring prefix locally, without moving
// the consumption cursor — the raw material for cross-replica
// prefix-consistency checks. Fails with ErrRingOverrun once the ring has
// wrapped (the prefix is no longer fully resident).
func (h *Host) CommittedBytes() ([]byte, error) {
	hwm, err := h.arena.ReadQword(hostRingBase + ringOffHwm)
	if err != nil {
		return nil, err
	}
	if hwm > h.ringCap {
		return nil, fmt.Errorf("%w: hwm %d past capacity %d", ErrRingOverrun, hwm, h.ringCap)
	}
	return h.arena.Read(hostRingBase+RingHdrSize, int(hwm))
}

// Pump consumes newly committed ring bytes into the host's local journal
// copy, returning how many bytes it advanced. Only bytes at or below the
// CAS-committed high-watermark are trusted; a gap larger than the ring's
// capacity means the oldest unconsumed bytes were overwritten before this
// standby read them — ErrRingOverrun, unrecoverable without a full
// journal transfer.
func (h *Host) Pump() (uint64, error) {
	hwm, err := h.arena.ReadQword(hostRingBase + ringOffHwm)
	if err != nil {
		return 0, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if hwm <= h.consumed {
		return 0, nil
	}
	n := hwm - h.consumed
	if n > h.ringCap {
		return 0, fmt.Errorf("%w: %d committed bytes beyond consumption, capacity %d",
			ErrRingOverrun, n, h.ringCap)
	}
	pos := h.consumed % h.ringCap
	first := n
	if pos+n > h.ringCap {
		first = h.ringCap - pos
	}
	chunk, err := h.arena.Read(hostRingBase+RingHdrSize+pos, int(first))
	if err != nil {
		return 0, err
	}
	h.journal = append(h.journal, chunk...)
	if first < n {
		rest, err := h.arena.Read(hostRingBase+RingHdrSize, int(n-first))
		if err != nil {
			return 0, err
		}
		h.journal = append(h.journal, rest...)
	}
	h.consumed = hwm
	return n, nil
}

// JournalBytes snapshots the pumped journal copy.
func (h *Host) JournalBytes() []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]byte(nil), h.journal...)
}

// JournalSource returns a snapshot function that pumps any freshly
// committed ring bytes and returns the full journal copy — the shape
// shard.CPExecutor wants for handoff replay (a leader co-located with its
// standby host; remote deployments use FetchJournal over a QP instead).
func (h *Host) JournalSource() func() ([]byte, error) {
	return func() ([]byte, error) {
		if _, err := h.Pump(); err != nil {
			return nil, err
		}
		return h.JournalBytes(), nil
	}
}

// Consumed returns how many replicated bytes this standby has pumped.
func (h *Host) Consumed() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.consumed
}

// StartPump begins pumping the replication ring into the local journal
// copy every interval (default 50ms), so a later promotion never depends
// on the ring still holding the whole history. Pump errors — including a
// fatal ring overrun — go to logf when non-nil. Starting an already
// pumping host is a no-op; StopPump (or Close) stops it.
func (h *Host) StartPump(interval time.Duration, logf func(format string, args ...interface{})) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	h.pumpMu.Lock()
	defer h.pumpMu.Unlock()
	if h.pumpStop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	h.pumpStop, h.pumpDone = stop, done
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if _, err := h.Pump(); err != nil && logf != nil {
					logf("controlha: standby pump: %v", err)
				}
			}
		}
	}()
}

// StopPump stops the background pump started by StartPump, waiting for the
// in-flight tick to finish. No-op if the pump is not running.
func (h *Host) StopPump() {
	h.pumpMu.Lock()
	stop, done := h.pumpStop, h.pumpDone
	h.pumpStop, h.pumpDone = nil, nil
	h.pumpMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
