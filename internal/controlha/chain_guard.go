//go:build !simregression

package controlha

// guardChains gates the witness-epoch guard baked into every resident HA
// chain. It is a const, not a flag: the only build that turns it off is
// the simregression one, which re-opens the historical unguarded-chain
// window — a deposed leader's pre-posted heartbeat program keeps
// certifying liveness after the successor's epoch bump — so the simulator
// can demonstrate it finds the bug (see internal/sim/scenario).
const guardChains = true
