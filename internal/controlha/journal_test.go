package controlha

import (
	"errors"
	"reflect"
	"testing"

	"rdx/internal/core"
	"rdx/internal/native"
	"rdx/internal/telemetry"
)

func fullEntry(t EntryType, seq uint64) Entry {
	return Entry{
		Type: t, Seq: seq, Fence: 3,
		Node: "0x1a2b", Hook: "ingress", Name: "gen-7", Digest: "sha256:abcdef0123456789",
		Arch: 1, Version: 7, Blob: 0xdead0000, Epoch: 2, Flags: 1,
	}
}

func TestEntryEncodeDecodeRoundTrip(t *testing.T) {
	for ty := EntryValidate; ty <= EntryReclaim; ty++ {
		e := fullEntry(ty, 42)
		enc := e.Encode()
		got, n, err := DecodeEntry(enc)
		if err != nil {
			t.Fatalf("%v: decode: %v", ty, err)
		}
		if n != len(enc) {
			t.Errorf("%v: consumed %d of %d bytes", ty, n, len(enc))
		}
		if got != e {
			t.Errorf("%v: round trip\n got %+v\nwant %+v", ty, got, e)
		}
	}
	// Empty strings and zero fields survive too.
	min := Entry{Type: EntryValidate, Seq: 1}
	got, _, err := DecodeEntry(min.Encode())
	if err != nil || got != min {
		t.Errorf("minimal entry round trip: %+v, %v", got, err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	e9 := fullEntry(EntryPublish, 9)
	enc := e9.Encode()
	// Flipping any single byte must yield a typed error (or, for a byte in
	// the length fields, possibly a truncation) — never a panic, never a
	// silently different entry.
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x5a
		e, _, err := DecodeEntry(mut)
		if err == nil {
			if e == fullEntry(EntryPublish, 9) {
				t.Fatalf("flip at %d: checksum failed to catch mutation", i)
			}
			t.Fatalf("flip at %d: decoded mutated bytes into %+v", i, e)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("flip at %d: untyped error %v", i, err)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	e1 := fullEntry(EntryStage, 1)
	enc := e1.Encode()
	for n := 0; n < len(enc); n++ {
		_, _, err := DecodeEntry(enc[:n])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded", n, len(enc))
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("prefix of %d bytes: untyped error %v", n, err)
		}
	}
}

// sampleJournal appends a representative entry mix through the sink API.
func sampleJournal() *Journal {
	j := NewJournal(telemetry.NewRegistry())
	fence := uint64(1)
	j.SetFenceSource(func() uint64 { return fence })
	j.JournalValidate("sha256:aaaa")
	j.JournalCompile("sha256:aaaa", native.Arch(1))
	j.JournalStage("0x1", "ingress", "v1", "sha256:aaaa", 1, 0x100)
	j.JournalPublish("0x1", "ingress", core.Deployed{Blob: 0x100, Version: 1, Name: "v1", Digest: "sha256:aaaa"})
	j.JournalStage("0x1", "ingress", "v2", "sha256:bbbb", 2, 0x200)
	j.JournalPublish("0x1", "ingress", core.Deployed{Blob: 0x200, Version: 2, Name: "v2", Digest: "sha256:bbbb"})
	fence = 2
	j.JournalRollback("0x1", "ingress", core.Deployed{Blob: 0x100, Version: 1, Name: "v1", Digest: "sha256:aaaa"})
	j.JournalClaim("0x1", 0x100)
	j.JournalReclaim("0x1", 5)
	return j
}

func TestReplayReconstructsState(t *testing.T) {
	j := sampleJournal()
	s, err := Replay(j.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if s.Entries != j.Len() || s.LastSeq != uint64(j.Len()) || s.LastFence != 2 {
		t.Fatalf("entries=%d lastSeq=%d lastFence=%d", s.Entries, s.LastSeq, s.LastFence)
	}
	k := Key{Node: "0x1", Hook: "ingress"}
	// Rollback forced the version map back to v1.
	if dv := s.Versions[k]; dv.Version != 1 || dv.Blob != 0x100 {
		t.Errorf("version after rollback = %+v", dv)
	}
	// v2's stage was closed by its publish; nothing is left open.
	if len(s.Open) != 0 {
		t.Errorf("open intents = %+v", s.Open)
	}
	// Claim + ring reclaim tombstoned the remaining history.
	for i, d := range s.History[k] {
		if !d.Reclaimed {
			t.Errorf("history[%d] = %+v not tombstoned", i, d)
		}
	}
	if !s.Validated["sha256:aaaa"] || !s.Compiled["sha256:aaaa@1"] {
		t.Errorf("validated/compiled sets: %+v %+v", s.Validated, s.Compiled)
	}
}

func TestReplayDeterministic(t *testing.T) {
	data := sampleJournal().Bytes()
	s1, err1 := Replay(data)
	s2, err2 := Replay(data)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("replay diverged:\n%+v\n%+v", s1, s2)
	}
}

func TestReplayRejectsReorderAndSplice(t *testing.T) {
	j := sampleJournal()
	entries := j.Entries()

	reencode := func(es []Entry) []byte {
		var out []byte
		for i := range es {
			out = append(out, es[i].Encode()...)
		}
		return out
	}

	// Swap two adjacent entries: seq 3 arrives before 2.
	swapped := append([]Entry(nil), entries...)
	swapped[1], swapped[2] = swapped[2], swapped[1]
	if _, err := Replay(reencode(swapped)); !errors.Is(err, ErrBadSequence) {
		t.Errorf("reordered journal: %v, want ErrBadSequence", err)
	}

	// Drop an interior entry: seq skips.
	spliced := append(append([]Entry(nil), entries[:2]...), entries[3:]...)
	if _, err := Replay(reencode(spliced)); !errors.Is(err, ErrBadSequence) {
		t.Errorf("spliced journal: %v, want ErrBadSequence", err)
	}

	// Fencing epoch regression: a later entry claims an earlier term.
	regressed := append([]Entry(nil), entries...)
	regressed[len(regressed)-1].Fence = 0
	if _, err := Replay(reencode(regressed)); !errors.Is(err, ErrBadSequence) {
		t.Errorf("fence regression: %v, want ErrBadSequence", err)
	}

	// Truncation mid-entry.
	data := j.Bytes()
	if _, err := Replay(data[:len(data)-3]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated journal: %v, want ErrTruncated", err)
	}

	// Corruption inside an entry body.
	corrupt := append([]byte(nil), data...)
	corrupt[len(data)/2] ^= 0xff
	if _, err := Replay(corrupt); !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
		t.Errorf("corrupted journal: %v, want typed error", err)
	}

	// The intact journal still replays.
	if _, err := Replay(data); err != nil {
		t.Errorf("intact journal failed: %v", err)
	}
}

func TestJournalSeedSeqContinues(t *testing.T) {
	j1 := sampleJournal()
	s, err := Replay(j1.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	j2 := NewJournal(telemetry.NewRegistry())
	j2.SeedSeq(s.LastSeq)
	j2.SetFenceSource(func() uint64 { return 3 })
	j2.JournalPublish("0x2", "kv", core.Deployed{Blob: 0x300, Version: 1, Name: "v3", Digest: "sha256:cccc"})
	// The concatenated stream — old term then new — replays end to end.
	joined := append(j1.Bytes(), j2.Bytes()...)
	s2, err := Replay(joined)
	if err != nil {
		t.Fatalf("cross-term replay: %v", err)
	}
	if s2.LastSeq != s.LastSeq+1 || s2.LastFence != 3 {
		t.Errorf("lastSeq=%d lastFence=%d", s2.LastSeq, s2.LastFence)
	}
}
