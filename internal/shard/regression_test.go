package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"rdx/internal/core"
	"rdx/internal/telemetry"
)

// TestRefundOnDownedShard: a tenant whose key routes to a downed shard
// keeps its quota. Every post-admit failure path refunds the admission
// charge, so retries surface ErrShardUnavailable for as long as the shard
// is down — without the refund the tenant's bucket drains and the error
// mutates into ErrQuotaExceeded, pointing the operator at the wrong
// subsystem entirely.
func TestRefundOnDownedShard(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := NewRouter(Config{Registry: reg, Workers: 1})
	defer r.Close()
	if err := r.AddShard(0, ExecFunc(func(ctx context.Context, j *Job) error {
		return fmt.Errorf("lease lost: %w", core.ErrFenced)
	})); err != nil {
		t.Fatalf("AddShard: %v", err)
	}
	r.SetQuota("t", TenantQuota{PublishPerSec: 0.001, PublishBurst: 2})

	// First publish executes, fences the shard.
	if err := r.Publish(context.Background(), testJob("t", "h")); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("fencing publish: got %v, want ErrShardUnavailable", err)
	}
	// Burst is 2 and the rate refills one token per ~17 minutes: attempts
	// 2..6 only stay ErrShardUnavailable if each one refunds its token.
	for i := 0; i < 5; i++ {
		err := r.Publish(context.Background(), testJob("t", "h"))
		if errors.Is(err, ErrQuotaExceeded) {
			t.Fatalf("attempt %d: retry against downed shard consumed quota: %v", i+2, err)
		}
		if !errors.Is(err, ErrShardUnavailable) {
			t.Fatalf("attempt %d: got %v, want ErrShardUnavailable", i+2, err)
		}
	}
	if got := reg.Counter("shard.admission.refunded").Value(); got < 5 {
		t.Errorf("refunded counter = %d, want >= 5", got)
	}

	// The shard repaired: the tenant's surviving token admits immediately.
	if err := r.Reinstate(0, okExec(nil)); err != nil {
		t.Fatalf("Reinstate: %v", err)
	}
	if err := r.Publish(context.Background(), testJob("t", "h")); err != nil {
		t.Fatalf("publish after repair: %v (quota should have survived the outage)", err)
	}
}

// TestRefundOnEmptyRing: the no-shards path refunds too.
func TestRefundOnEmptyRing(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := NewRouter(Config{Registry: reg})
	defer r.Close()
	r.SetQuota("t", TenantQuota{PublishPerSec: 0.001, PublishBurst: 1})
	for i := 0; i < 4; i++ {
		if err := r.Publish(context.Background(), testJob("t", "h")); !errors.Is(err, ErrShardUnavailable) {
			t.Fatalf("attempt %d on empty ring: got %v, want ErrShardUnavailable", i+1, err)
		}
	}
}

// TestAddShardAfterClose: membership mutations on a closed router refuse
// with the typed error instead of starting a worker pool nothing stops.
func TestAddShardAfterClose(t *testing.T) {
	r := NewRouter(Config{})
	if err := r.AddShard(0, okExec(nil)); err != nil {
		t.Fatalf("AddShard on open router: %v", err)
	}
	r.Close()
	if err := r.AddShard(1, okExec(nil)); !errors.Is(err, ErrRouterClosed) {
		t.Errorf("AddShard after Close: got %v, want ErrRouterClosed", err)
	}
	if err := r.Reinstate(0, okExec(nil)); !errors.Is(err, ErrRouterClosed) {
		t.Errorf("Reinstate after Close: got %v, want ErrRouterClosed", err)
	}
	if _, err := r.Rebalance(context.Background(), 0); !errors.Is(err, ErrRouterClosed) {
		t.Errorf("Rebalance after Close: got %v, want ErrRouterClosed", err)
	}
	if _, err := r.RebalanceAdd(context.Background(), 9, okExec(nil)); !errors.Is(err, ErrRouterClosed) {
		t.Errorf("RebalanceAdd after Close: got %v, want ErrRouterClosed", err)
	}
}

// TestCloseReinstateRace: Close racing Reinstate must end with every
// shard front stopped — either Reinstate loses and returns the typed
// error, or it wins and Close stops the front it installed. Run with
// -race; the leak this guards against is a reinstated worker pool (and
// its queue goroutines) surviving Close.
func TestCloseReinstateRace(t *testing.T) {
	for i := 0; i < 50; i++ {
		r := NewRouter(Config{Workers: 2})
		if err := r.AddShard(0, okExec(nil)); err != nil {
			t.Fatalf("AddShard: %v", err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		errCh := make(chan error, 1)
		go func() {
			defer wg.Done()
			errCh <- r.Reinstate(0, okExec(nil))
		}()
		go func() {
			defer wg.Done()
			r.Close()
		}()
		wg.Wait()
		if err := <-errCh; err != nil && !errors.Is(err, ErrRouterClosed) {
			t.Fatalf("iteration %d: Reinstate: %v", i, err)
		}
		// Whoever won, the installed front must be stopped: a submit must
		// fail, not enqueue into a live pool.
		if err := r.Publish(context.Background(), testJob("t", "h")); !errors.Is(err, ErrShardUnavailable) {
			t.Fatalf("iteration %d: publish after close raced: %v", i, err)
		}
	}
}

// TestStopMidExecuteTypedError: tearing a shard down mid-Execute must
// surface ErrShardUnavailable (the shard went away), not a raw
// context.Canceled (which reads as the tenant's publish failing on its
// own terms), and must not count toward shard.<id>.failed.
func TestStopMidExecuteTypedError(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := NewRouter(Config{Registry: reg, Workers: 1})
	started := make(chan struct{})
	if err := r.AddShard(0, ExecFunc(func(ctx context.Context, j *Job) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	})); err != nil {
		t.Fatalf("AddShard: %v", err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- r.Publish(context.Background(), testJob("t", "h")) }()
	<-started
	r.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrShardUnavailable) {
			t.Errorf("stop mid-execute: got %v, want ErrShardUnavailable", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("stop mid-execute: %v should still wrap the cancellation cause", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("publish never completed after shard stop")
	}
	if got := reg.Counter("shard.0.failed").Value(); got != 0 {
		t.Errorf("shard.0.failed = %d after teardown, want 0 (teardown is not a tenant failure)", got)
	}
}
