package shard

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"rdx/internal/sim"
	"rdx/internal/telemetry"
)

// ErrQuotaExceeded reports that a tenant's token bucket (publishes/sec or
// staged bytes/sec) refused the job. It is a deterministic admission
// verdict, not a transport failure: retrying immediately only re-spends
// the tenant's tokens, so callers should back off or shed load.
var ErrQuotaExceeded = errors.New("shard: tenant quota exceeded")

// ErrShardUnavailable reports that the shard owning the job's (tenant,
// hook) key cannot take work: its leader is fenced or deposed, it is
// draining after a failure, or no shard owns the key yet. Only that
// shard's key range is affected — the router keeps dispatching to every
// other shard.
var ErrShardUnavailable = errors.New("shard: shard unavailable")

// TenantQuota bounds one tenant's admission rate. A zero or negative rate
// leaves that dimension unlimited; a zero burst defaults to one second of
// rate (so a fresh bucket admits a brief spike before throttling to
// steady state).
type TenantQuota struct {
	PublishPerSec float64 // publish jobs admitted per second
	PublishBurst  float64 // bucket depth in jobs
	BytesPerSec   float64 // staged bytes admitted per second
	BytesBurst    float64 // bucket depth in bytes
}

// tokenBucket is a standard leaky token bucket on a monotonic clock.
type tokenBucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(rate, burst float64, now time.Time) *tokenBucket {
	if burst <= 0 {
		burst = rate
	}
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// take refills by elapsed time and withdraws n tokens if available.
func (b *tokenBucket) take(now time.Time, n float64) bool {
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// tenantBuckets is one tenant's admission state. Either bucket may be nil
// (unlimited dimension).
type tenantBuckets struct {
	publish *tokenBucket
	bytes   *tokenBucket
}

// Admission is the router's per-tenant admission controller. Tenants get
// the default quota on first sight; SetQuota overrides per tenant.
type Admission struct {
	clock sim.Clock

	mu      sync.Mutex
	def     TenantQuota
	tenants map[string]*tenantBuckets
	quotas  map[string]TenantQuota

	admitted      *telemetry.Counter
	rejectedRate  *telemetry.Counter
	rejectedBytes *telemetry.Counter
	refunded      *telemetry.Counter
}

// NewAdmission builds an admission controller registering its counters
// ("shard.admission.*") in reg.
func NewAdmission(def TenantQuota, reg *telemetry.Registry) *Admission {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &Admission{
		clock:         sim.Real{},
		def:           def,
		tenants:       map[string]*tenantBuckets{},
		quotas:        map[string]TenantQuota{},
		admitted:      reg.Counter("shard.admission.admitted"),
		rejectedRate:  reg.Counter("shard.admission.rejected.publishes"),
		rejectedBytes: reg.Counter("shard.admission.rejected.bytes"),
		refunded:      reg.Counter("shard.admission.refunded"),
	}
}

// WithClock rebinds bucket-refill time onto clock (the simulator's seam;
// production stays on the wall clock). Call before first Admit.
func (a *Admission) WithClock(clock sim.Clock) *Admission {
	if clock != nil {
		a.clock = clock
	}
	return a
}

// SetQuota overrides a tenant's quota, resetting its buckets so the new
// limits take effect immediately.
func (a *Admission) SetQuota(tenant string, q TenantQuota) {
	a.mu.Lock()
	a.quotas[tenant] = q
	delete(a.tenants, tenant)
	a.mu.Unlock()
}

// buckets returns (lazily creating) the tenant's admission state.
func (a *Admission) buckets(tenant string, now time.Time) *tenantBuckets {
	tb, ok := a.tenants[tenant]
	if ok {
		return tb
	}
	q, ok := a.quotas[tenant]
	if !ok {
		q = a.def
	}
	tb = &tenantBuckets{}
	if q.PublishPerSec > 0 {
		tb.publish = newBucket(q.PublishPerSec, q.PublishBurst, now)
	}
	if q.BytesPerSec > 0 {
		tb.bytes = newBucket(q.BytesPerSec, q.BytesBurst, now)
	}
	a.tenants[tenant] = tb
	return tb
}

// Admit charges one publish plus bytes staged bytes against the tenant's
// buckets, refusing with a typed ErrQuotaExceeded when either is dry. The
// charge is atomic: a job refused on bytes does not burn a publish token.
func (a *Admission) Admit(tenant string, bytes int) error {
	now := a.clock.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	tb := a.buckets(tenant, now)
	// Peek both buckets before withdrawing from either.
	if tb.publish != nil && !tb.publish.take(now, 1) {
		a.rejectedRate.Inc()
		return fmt.Errorf("%w: tenant %q over publish rate", ErrQuotaExceeded, tenant)
	}
	if tb.bytes != nil && bytes > 0 && !tb.bytes.take(now, float64(bytes)) {
		if tb.publish != nil {
			tb.publish.credit(1) // refund the publish token: the job was not admitted
		}
		a.rejectedBytes.Inc()
		return fmt.Errorf("%w: tenant %q over staged-bytes rate (%d bytes)", ErrQuotaExceeded, tenant, bytes)
	}
	a.admitted.Inc()
	return nil
}

// credit returns n tokens to a bucket, never past its burst depth.
func (b *tokenBucket) credit(n float64) {
	b.tokens += n
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// Refund returns one publish token plus bytes staged bytes to the tenant —
// the undo of Admit for a job that never reached a shard (ring empty,
// owner absent or fenced, queue closed under the submitter). Admission is
// a charge for control-plane work; a job the control plane never saw must
// not consume quota, or retries against a downed shard would convert
// ErrShardUnavailable into ErrQuotaExceeded. Credits are capped at each
// bucket's burst, so a refund can never mint tokens the quota would not
// have granted.
func (a *Admission) Refund(tenant string, bytes int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	tb, ok := a.tenants[tenant]
	if !ok {
		return // quota reset (SetQuota) since admission: nothing to return to
	}
	if tb.publish != nil {
		tb.publish.credit(1)
	}
	if tb.bytes != nil && bytes > 0 {
		tb.bytes.credit(float64(bytes))
	}
	a.refunded.Inc()
}
