package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rdx/internal/core"
	"rdx/internal/ext"
	"rdx/internal/sim"
	"rdx/internal/telemetry"
)

// Job is one tenant publish: deploy Ext to Hook on the listed nodes,
// executed by whichever shard owns the (Tenant, Hook) key.
type Job struct {
	Tenant string
	Hook   string
	Ext    *ext.Extension
	// Nodes names the target nodes (executor-defined names); empty means
	// every node the shard's executor is bound to.
	Nodes []string
	// Bytes is the staged-bytes estimate charged against the tenant's
	// bytes quota; 0 charges only a publish token.
	Bytes int

	weight      int
	routedEpoch uint64
	done        chan error
	once        sync.Once
	enq         time.Time
}

// RoutedEpoch reveals the ring epoch the router resolved this job's owner
// under (0 before Publish routes it). The epoch and the owner are read
// atomically, so for any (tenant, hook) key, jobs stamped with the same
// epoch always resolved to the same shard — the bench's double-ownership
// probe keys on exactly this.
func (j *Job) RoutedEpoch() uint64 { return j.routedEpoch }

// finish delivers the job's outcome exactly once.
func (j *Job) finish(err error) {
	j.once.Do(func() { j.done <- err })
}

// Executor runs one admitted, scheduled job on a shard's control plane.
// An error wrapping core.ErrFenced marks the whole shard fenced: its
// leader lost the lease, so every queued and future job for its key range
// fails with ErrShardUnavailable until Router.Reinstate installs a
// successor.
type Executor interface {
	Execute(ctx context.Context, j *Job) error
}

// ExecFunc adapts a function to Executor.
type ExecFunc func(context.Context, *Job) error

// Execute implements Executor.
func (f ExecFunc) Execute(ctx context.Context, j *Job) error { return f(ctx, j) }

// Shard is one control-plane shard as the router sees it: a fair-share
// queue of admitted jobs, a bounded worker pool draining it into the
// shard's executor, and the shard's slice of the fleet registry. The
// executor wraps the shard's own ControlPlane — with its own lease,
// journal, and standby from internal/controlha — so nothing here is
// shared across shards except the process-wide artifact cache and the
// registry the instruments live in.
type Shard struct {
	ID int

	q        *fairQueue
	exec     Executor
	workers  int
	clock    sim.Clock
	down     atomic.Bool
	draining atomic.Bool
	cause    atomic.Pointer[error]
	wg       sync.WaitGroup
	ctx      context.Context
	cancel   context.CancelFunc

	depth     *telemetry.Gauge
	queueWait *telemetry.Histogram
	latency   *telemetry.Histogram
	published *telemetry.Counter
	failed    *telemetry.Counter
	fenced    *telemetry.Counter
}

// newShard builds and starts a shard front: workers goroutines draining a
// queueCap-deep fair queue into ex. Instruments are named "shard.<id>.*"
// so N shards sharing one registry stay distinguishable.
func newShard(id, workers, queueCap int, ex Executor, clock sim.Clock, reg *telemetry.Registry) *Shard {
	if clock == nil {
		clock = sim.Real{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Shard{
		ID:        id,
		q:         newFairQueue(queueCap),
		exec:      ex,
		workers:   workers,
		clock:     clock,
		ctx:       ctx,
		cancel:    cancel,
		depth:     reg.Gauge(fmt.Sprintf("shard.%d.queue.depth", id)),
		queueWait: reg.Histogram(fmt.Sprintf("shard.%d.queue.wait", id)),
		latency:   reg.Histogram(fmt.Sprintf("shard.%d.publish.latency", id)),
		published: reg.Counter(fmt.Sprintf("shard.%d.published", id)),
		failed:    reg.Counter(fmt.Sprintf("shard.%d.failed", id)),
		fenced:    reg.Counter(fmt.Sprintf("shard.%d.fenced", id)),
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.run()
	}
	return s
}

// submit queues a job (blocking on a full queue). The shard may go down
// while the caller is blocked; the queue's close error is returned then. A
// draining shard (mid-rebalance) refuses new work typed ErrRebalancing —
// already queued jobs still complete behind the drain barrier.
func (s *Shard) submit(j *Job) error {
	if s.down.Load() {
		return s.unavailable()
	}
	if s.draining.Load() {
		return fmt.Errorf("%w: shard %d draining", ErrRebalancing, s.ID)
	}
	j.enq = s.clock.Now()
	if err := s.q.push(j); err != nil {
		return err
	}
	s.depth.Set(int64(s.q.len()))
	return nil
}

// run is one worker: pop by fair share, execute, account. An executor
// error wrapping core.ErrFenced downs the whole shard — this leader can
// no longer flip any pointer in its key range, so queued jobs fail fast
// instead of each discovering the fence one CAS at a time.
func (s *Shard) run() {
	defer s.wg.Done()
	for {
		j, ok := s.q.pop()
		if !ok {
			return
		}
		s.runOne(j)
		s.q.jobDone()
	}
}

// runOne executes one popped job and delivers its outcome.
func (s *Shard) runOne(j *Job) {
	s.depth.Set(int64(s.q.len()))
	s.queueWait.RecordDuration(s.clock.Since(j.enq))
	start := s.clock.Now()
	err := s.exec.Execute(s.ctx, j)
	s.latency.RecordDuration(s.clock.Since(start))
	if err == nil {
		s.published.Inc()
		j.finish(nil)
		return
	}
	if s.ctx.Err() != nil && errors.Is(err, context.Canceled) {
		// Shard teardown (stop/Reinstate) cancelled the executor context
		// mid-job: that is the shard going away, not the tenant's publish
		// failing on its own terms — surface the documented typed error and
		// keep shard.<id>.failed a tenant-visible-failure counter.
		j.finish(fmt.Errorf("%w: shard %d stopped mid-execute: %w", ErrShardUnavailable, s.ID, err))
		return
	}
	s.failed.Inc()
	if errors.Is(err, core.ErrFenced) {
		s.fence(err)
		j.finish(fmt.Errorf("%w: %w", ErrShardUnavailable, err))
		return
	}
	j.finish(err)
}

// fence marks the shard down with cause and fails every queued job. Idempotent.
func (s *Shard) fence(cause error) {
	if s.down.Swap(true) {
		return
	}
	s.fenced.Inc()
	wrapped := fmt.Errorf("%w: %w", ErrShardUnavailable, cause)
	s.cause.Store(&wrapped)
	s.q.close(wrapped)
	s.depth.Set(0)
}

// unavailable returns the shard's typed down error.
func (s *Shard) unavailable() error {
	if p := s.cause.Load(); p != nil {
		return *p
	}
	return fmt.Errorf("%w: shard %d down", ErrShardUnavailable, s.ID)
}

// Down reports whether the shard is fenced or stopped.
func (s *Shard) Down() bool { return s.down.Load() }

// beginDrain flips the shard into the draining state: new submits fail
// typed ErrRebalancing while already queued jobs keep executing. Reports
// whether the flip happened (false if already draining).
func (s *Shard) beginDrain() bool { return !s.draining.Swap(true) }

// endDrain reopens a draining shard (rebalance aborted, or a scale-out
// source resuming after its snapshot was taken).
func (s *Shard) endDrain() { s.draining.Store(false) }

// awaitDrain blocks until the shard is quiescent — queue empty and no
// worker mid-Execute — or ctx expires. With submits refused since
// beginDrain, quiescence is the typed barrier: every job admitted before
// the drain has delivered its outcome, so the journal now holds the
// shard's complete, final state. A shard that went down mid-drain is
// already quiescent for migration purposes (its queue failed everything
// typed), so the barrier returns instead of spinning on a dead front.
func (s *Shard) awaitDrain(ctx context.Context) error {
	// Deliberately on the wall clock, not s.clock: this is a spin-wait on
	// worker-goroutine progress (which the simulator does not schedule),
	// not timing logic — a virtual ticker here would never fire.
	tick := time.NewTicker(500 * time.Microsecond)
	defer tick.Stop()
	for {
		if s.q.quiescent() || s.down.Load() {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("%w: drain barrier: %w", ErrRebalancing, ctx.Err())
		case <-tick.C:
		}
	}
}

// stop tears the shard front down (router Close / Reinstate): queued jobs
// fail with ErrShardUnavailable, workers drain and exit.
func (s *Shard) stop() {
	if !s.down.Swap(true) {
		err := fmt.Errorf("%w: shard %d stopped", ErrShardUnavailable, s.ID)
		s.cause.Store(&err)
		s.q.close(err)
	}
	s.cancel()
	s.wg.Wait()
}
