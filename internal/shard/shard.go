package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rdx/internal/core"
	"rdx/internal/ext"
	"rdx/internal/telemetry"
)

// Job is one tenant publish: deploy Ext to Hook on the listed nodes,
// executed by whichever shard owns the (Tenant, Hook) key.
type Job struct {
	Tenant string
	Hook   string
	Ext    *ext.Extension
	// Nodes names the target nodes (executor-defined names); empty means
	// every node the shard's executor is bound to.
	Nodes []string
	// Bytes is the staged-bytes estimate charged against the tenant's
	// bytes quota; 0 charges only a publish token.
	Bytes int

	weight int
	done   chan error
	once   sync.Once
	enq    time.Time
}

// finish delivers the job's outcome exactly once.
func (j *Job) finish(err error) {
	j.once.Do(func() { j.done <- err })
}

// Executor runs one admitted, scheduled job on a shard's control plane.
// An error wrapping core.ErrFenced marks the whole shard fenced: its
// leader lost the lease, so every queued and future job for its key range
// fails with ErrShardUnavailable until Router.Reinstate installs a
// successor.
type Executor interface {
	Execute(ctx context.Context, j *Job) error
}

// ExecFunc adapts a function to Executor.
type ExecFunc func(context.Context, *Job) error

// Execute implements Executor.
func (f ExecFunc) Execute(ctx context.Context, j *Job) error { return f(ctx, j) }

// Shard is one control-plane shard as the router sees it: a fair-share
// queue of admitted jobs, a bounded worker pool draining it into the
// shard's executor, and the shard's slice of the fleet registry. The
// executor wraps the shard's own ControlPlane — with its own lease,
// journal, and standby from internal/controlha — so nothing here is
// shared across shards except the process-wide artifact cache and the
// registry the instruments live in.
type Shard struct {
	ID int

	q       *fairQueue
	exec    Executor
	workers int
	down    atomic.Bool
	cause   atomic.Pointer[error]
	wg      sync.WaitGroup
	ctx     context.Context
	cancel  context.CancelFunc

	depth     *telemetry.Gauge
	queueWait *telemetry.Histogram
	latency   *telemetry.Histogram
	published *telemetry.Counter
	failed    *telemetry.Counter
	fenced    *telemetry.Counter
}

// newShard builds and starts a shard front: workers goroutines draining a
// queueCap-deep fair queue into ex. Instruments are named "shard.<id>.*"
// so N shards sharing one registry stay distinguishable.
func newShard(id, workers, queueCap int, ex Executor, reg *telemetry.Registry) *Shard {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Shard{
		ID:        id,
		q:         newFairQueue(queueCap),
		exec:      ex,
		workers:   workers,
		ctx:       ctx,
		cancel:    cancel,
		depth:     reg.Gauge(fmt.Sprintf("shard.%d.queue.depth", id)),
		queueWait: reg.Histogram(fmt.Sprintf("shard.%d.queue.wait", id)),
		latency:   reg.Histogram(fmt.Sprintf("shard.%d.publish.latency", id)),
		published: reg.Counter(fmt.Sprintf("shard.%d.published", id)),
		failed:    reg.Counter(fmt.Sprintf("shard.%d.failed", id)),
		fenced:    reg.Counter(fmt.Sprintf("shard.%d.fenced", id)),
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.run()
	}
	return s
}

// submit queues a job (blocking on a full queue). The shard may go down
// while the caller is blocked; the queue's close error is returned then.
func (s *Shard) submit(j *Job) error {
	if s.down.Load() {
		return s.unavailable()
	}
	j.enq = time.Now()
	if err := s.q.push(j); err != nil {
		return err
	}
	s.depth.Set(int64(s.q.len()))
	return nil
}

// run is one worker: pop by fair share, execute, account. An executor
// error wrapping core.ErrFenced downs the whole shard — this leader can
// no longer flip any pointer in its key range, so queued jobs fail fast
// instead of each discovering the fence one CAS at a time.
func (s *Shard) run() {
	defer s.wg.Done()
	for {
		j, ok := s.q.pop()
		if !ok {
			return
		}
		s.depth.Set(int64(s.q.len()))
		s.queueWait.RecordDuration(time.Since(j.enq))
		start := time.Now()
		err := s.exec.Execute(s.ctx, j)
		s.latency.RecordDuration(time.Since(start))
		if err == nil {
			s.published.Inc()
			j.finish(nil)
			continue
		}
		s.failed.Inc()
		if errors.Is(err, core.ErrFenced) {
			s.fence(err)
			j.finish(fmt.Errorf("%w: %w", ErrShardUnavailable, err))
			continue
		}
		j.finish(err)
	}
}

// fence marks the shard down with cause and fails every queued job. Idempotent.
func (s *Shard) fence(cause error) {
	if s.down.Swap(true) {
		return
	}
	s.fenced.Inc()
	wrapped := fmt.Errorf("%w: %w", ErrShardUnavailable, cause)
	s.cause.Store(&wrapped)
	s.q.close(wrapped)
	s.depth.Set(0)
}

// unavailable returns the shard's typed down error.
func (s *Shard) unavailable() error {
	if p := s.cause.Load(); p != nil {
		return *p
	}
	return fmt.Errorf("%w: shard %d down", ErrShardUnavailable, s.ID)
}

// Down reports whether the shard is fenced or stopped.
func (s *Shard) Down() bool { return s.down.Load() }

// stop tears the shard front down (router Close / Reinstate): queued jobs
// fail with ErrShardUnavailable, workers drain and exit.
func (s *Shard) stop() {
	if !s.down.Swap(true) {
		err := fmt.Errorf("%w: shard %d stopped", ErrShardUnavailable, s.ID)
		s.cause.Store(&err)
		s.q.close(err)
	}
	s.cancel()
	s.wg.Wait()
}
