package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"
)

// ErrRebalancing reports a job refused because its owning shard is inside
// a rebalance drain window, or a rebalance step that could not complete.
// It is transient by construction: the window closes when the ring flips
// (the key then routes to its new owner) or the rebalance aborts (the
// shard reopens), so callers should retry with backoff rather than shed
// the tenant.
var ErrRebalancing = errors.New("shard: rebalancing")

// MigratedKey names one (tenant, hook) key a rebalance moves, with the
// executor node names its jobs ever targeted. All means some job targeted
// every node the shard's executor is bound to.
type MigratedKey struct {
	Tenant string
	Hook   string
	Nodes  []string
	All    bool
}

// Migrator is the optional Executor capability live rebalancing needs: a
// departing (or scale-out source) shard snapshots its deployed state
// behind a journaled handoff marker, and a receiving shard absorbs the
// slice of that state covering the keys the ring hands it. CPExecutor
// implements it when wired to a journal source; executors without it
// still rebalance, but state stays behind (RemoveShard semantics) and the
// report says so.
type Migrator interface {
	// HandoffSnapshot journals a handoff marker stamped with ringEpoch,
	// confirms it is durable on the shard's standby (a fenced append means
	// this leader was deposed and must not migrate state it no longer
	// owns), and returns the deterministic replay of the shard's full
	// journal — complete up to and including the marker.
	HandoffSnapshot(ringEpoch uint64) (*RebalanceState, error)
	// AbsorbKeys installs the listed keys' slice of a departing shard's
	// snapshot into this shard's control plane: versions and rollback
	// stacks replayed via the deterministic State machinery, compiled
	// artifacts found in the shared cache — zero recompiles.
	AbsorbKeys(st *RebalanceState, keys []MigratedKey) error
}

// RebalanceReport summarizes one membership change.
type RebalanceReport struct {
	Removed     int         // departing shard ID (-1 on a join)
	Added       int         // joining shard ID (-1 on a removal)
	RingEpoch   uint64      // membership epoch after the atomic flip
	MovedKeys   int         // (tenant, hook) keys whose owner changed
	Receivers   map[int]int // shard ID -> keys it absorbed responsibility for
	Migrated    bool        // deployed state moved (both sides Migrator-capable)
	OpenIntents int         // staged-unpublished intents found behind the barrier (0 when the drain was clean)
	Drain       time.Duration
	Total       time.Duration
}

// Rebalance removes a shard with live state migration — the elastic
// scale-in RemoveShard is not:
//
//  1. Drain: the departing front stops admitting (new submits fail typed
//     ErrRebalancing, refunding admission) and the barrier waits until
//     every queued job has delivered its outcome.
//  2. Handoff: the departing shard journals a handoff marker carrying the
//     current ring epoch, confirms it replicated, and replays its own
//     journal into a snapshot — the marker proves the snapshot is the
//     shard's final word, and a fenced marker append aborts the whole
//     rebalance (a deposed leader must not export state).
//  3. Absorb: each receiving shard installs the slice of the snapshot for
//     the keys the ring will hand it. The shared artifact cache means the
//     receivers re-stage from journaled digests without one recompile.
//  4. Flip: the ring drops the departing shard in one epoch bump — every
//     Lookup before the flip resolved to the (refusing) departing shard,
//     every Lookup after resolves to a receiver that already holds the
//     state, so no key is ever served by two live owners.
//
// In-flight jobs at step 1 complete normally; jobs arriving during the
// window fail typed ErrRebalancing and retry against the new owner once
// the ring flips. Aborting at any step reopens the departing shard with
// the ring untouched, so a failed rebalance (fenced leader, ctx expiry)
// is retryable after the usual TakeOver + Reinstate repair.
func (r *Router) Rebalance(ctx context.Context, removeID int) (*RebalanceReport, error) {
	r.rebMu.Lock()
	defer r.rebMu.Unlock()
	start := r.cfg.Clock.Now()

	r.mu.RLock()
	closed, s := r.closed, r.shards[removeID]
	live := len(r.shards)
	r.mu.RUnlock()
	if closed {
		return nil, ErrRouterClosed
	}
	if s == nil {
		return nil, fmt.Errorf("shard: rebalance of unknown shard %d", removeID)
	}
	if live < 2 {
		return nil, fmt.Errorf("shard: rebalance would leave the ring empty (shard %d is the last)", removeID)
	}

	// 1. Drain barrier.
	if !s.beginDrain() {
		return nil, fmt.Errorf("%w: shard %d already draining", ErrRebalancing, removeID)
	}
	reopen := true
	defer func() {
		if reopen {
			s.endDrain()
		}
	}()
	if err := s.awaitDrain(ctx); err != nil {
		return nil, err
	}
	drained := r.cfg.Clock.Since(start)

	// 2. Plan: every published key the departing shard owns moves to the
	// shard the ring resolves once the departing points are gone.
	epoch := r.ring.Epoch()
	plan := map[int][]MigratedKey{}
	moved := 0
	for _, mk := range r.snapshotKeys() {
		owner, ok := r.ring.Lookup(mk.Tenant, mk.Hook)
		if !ok || owner != removeID {
			continue
		}
		recv, ok := r.ring.LookupExcluding(removeID, mk.Tenant, mk.Hook)
		if !ok {
			return nil, fmt.Errorf("shard: no receiver for key (%s, %s)", mk.Tenant, mk.Hook)
		}
		plan[recv] = append(plan[recv], mk)
		moved++
	}

	// 3 + 4. Handoff snapshot, then absorb per receiver.
	rep := &RebalanceReport{Removed: removeID, Added: -1, MovedKeys: moved, Receivers: map[int]int{}}
	for id, keys := range plan {
		rep.Receivers[id] = len(keys)
	}
	if m, ok := s.exec.(Migrator); ok && moved > 0 {
		st, err := m.HandoffSnapshot(epoch)
		if err != nil {
			return nil, fmt.Errorf("%w: handoff of shard %d: %w", ErrRebalancing, removeID, err)
		}
		rep.OpenIntents = len(st.Open)
		if err := r.absorb(plan, st); err != nil {
			return nil, err
		}
		rep.Migrated = true
	}

	// 5. Flip the ring (one epoch bump — no Lookup ever sees a half-moved
	// ring), retire the front, then forget the shard.
	r.ring.Remove(removeID)
	r.mu.Lock()
	delete(r.shards, removeID)
	r.mu.Unlock()
	reopen = false
	s.stop()

	rep.RingEpoch = r.ring.Epoch()
	rep.Drain = drained
	rep.Total = r.cfg.Clock.Since(start)
	r.reg.Counter("shard.rebalance.removals").Inc()
	r.reg.Counter("shard.rebalance.moved_keys").Add(uint64(moved))
	r.reg.Histogram("shard.rebalance.latency").RecordDuration(rep.Total)
	return rep, nil
}

// RebalanceAdd joins a new shard with live state migration — the scale-out
// dual of Rebalance. The keys the enlarged ring will hand the newcomer are
// computed hypothetically (LookupWith) before anything changes; each
// source shard owning such keys is drained, snapshots its state behind a
// journaled handoff marker, and the newcomer absorbs its slice. Only then
// does the ring admit the new shard — again one epoch bump — and the
// sources reopen. Sources without migrating keys are never paused.
func (r *Router) RebalanceAdd(ctx context.Context, id int, ex Executor) (*RebalanceReport, error) {
	r.rebMu.Lock()
	defer r.rebMu.Unlock()
	start := r.cfg.Clock.Now()

	r.mu.RLock()
	closed, exists := r.closed, r.shards[id] != nil
	r.mu.RUnlock()
	if closed {
		return nil, ErrRouterClosed
	}
	if exists {
		return nil, fmt.Errorf("shard: rebalance-add of existing shard %d", id)
	}

	// Plan: keys whose owner under ring ∪ {id} is the newcomer.
	plan := map[int][]MigratedKey{}
	moved := 0
	for _, mk := range r.snapshotKeys() {
		fut, ok := r.ring.LookupWith(id, mk.Tenant, mk.Hook)
		if !ok || fut != id {
			continue
		}
		src, ok := r.ring.Lookup(mk.Tenant, mk.Hook)
		if !ok {
			continue // empty ring: the newcomer starts fresh, nothing to move
		}
		plan[src] = append(plan[src], mk)
		moved++
	}

	news := newShard(id, r.cfg.Workers, r.cfg.QueueCap, ex, r.cfg.Clock, r.reg)
	newMig, newCanAbsorb := ex.(Migrator)
	rep := &RebalanceReport{Removed: -1, Added: id, MovedKeys: moved, Receivers: map[int]int{id: moved}}

	// Drain each source in a stable order, snapshot behind its marker, and
	// hand the newcomer its slice. Sources reopen only after the flip: a
	// reopened source must never again serve a key the newcomer now holds
	// state for, and before the flip the ring still routes those keys to
	// the source.
	var drainedShards []*Shard
	abort := func() {
		for _, ds := range drainedShards {
			ds.endDrain()
		}
		news.stop()
	}
	srcIDs := make([]int, 0, len(plan))
	for sid := range plan {
		srcIDs = append(srcIDs, sid)
	}
	sort.Ints(srcIDs)
	for _, sid := range srcIDs {
		r.mu.RLock()
		src := r.shards[sid]
		r.mu.RUnlock()
		if src == nil {
			continue // source vanished (failover removed it); nothing to export
		}
		srcMig, ok := src.exec.(Migrator)
		if !ok || !newCanAbsorb {
			continue // no migration possible for this pair; keys still move, state stays
		}
		if !src.beginDrain() {
			abort()
			return nil, fmt.Errorf("%w: source shard %d already draining", ErrRebalancing, sid)
		}
		drainedShards = append(drainedShards, src)
		if err := src.awaitDrain(ctx); err != nil {
			abort()
			return nil, err
		}
		st, err := srcMig.HandoffSnapshot(r.ring.Epoch())
		if err != nil {
			abort()
			return nil, fmt.Errorf("%w: handoff of source shard %d: %w", ErrRebalancing, sid, err)
		}
		rep.OpenIntents += len(st.Open)
		if err := newMig.AbsorbKeys(st, plan[sid]); err != nil {
			abort()
			return nil, fmt.Errorf("%w: shard %d absorbing from %d: %w", ErrRebalancing, id, sid, err)
		}
		rep.Migrated = true
	}

	// Flip: install the front, admit it to the ring in one epoch bump,
	// reopen the sources.
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		abort()
		return nil, ErrRouterClosed
	}
	r.shards[id] = news
	r.mu.Unlock()
	r.ring.Add(id)
	for _, ds := range drainedShards {
		ds.endDrain()
	}

	rep.RingEpoch = r.ring.Epoch()
	rep.Total = r.cfg.Clock.Since(start)
	r.reg.Counter("shard.rebalance.additions").Inc()
	r.reg.Counter("shard.rebalance.moved_keys").Add(uint64(moved))
	r.reg.Histogram("shard.rebalance.latency").RecordDuration(rep.Total)
	return rep, nil
}

// absorb routes one departing snapshot to the planned receivers.
func (r *Router) absorb(plan map[int][]MigratedKey, st *RebalanceState) error {
	ids := make([]int, 0, len(plan))
	for id := range plan {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		r.mu.RLock()
		recv := r.shards[id]
		r.mu.RUnlock()
		if recv == nil {
			return fmt.Errorf("%w: receiver shard %d absent", ErrRebalancing, id)
		}
		m, ok := recv.exec.(Migrator)
		if !ok {
			continue // receiver takes the keys but cannot hold the state
		}
		if err := m.AbsorbKeys(st, plan[id]); err != nil {
			return fmt.Errorf("%w: shard %d absorbing keys: %w", ErrRebalancing, id, err)
		}
	}
	return nil
}

// snapshotKeys exports the published-key table for planning. The rows are
// deep copies built under keyMu — concurrent Publish calls keep mutating
// the live table (recordKey) while a rebalance iterates its plan.
func (r *Router) snapshotKeys() []MigratedKey {
	r.keyMu.Lock()
	defer r.keyMu.Unlock()
	out := make([]MigratedKey, 0, len(r.keys))
	for _, ki := range r.keys {
		mk := MigratedKey{Tenant: ki.tenant, Hook: ki.hook, All: ki.all}
		for n := range ki.nodes {
			mk.Nodes = append(mk.Nodes, n)
		}
		sort.Strings(mk.Nodes)
		out = append(out, mk)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tenant != out[j].Tenant {
			return out[i].Tenant < out[j].Tenant
		}
		return out[i].Hook < out[j].Hook
	})
	return out
}
