package shard

import (
	"fmt"
	"net"
	"strconv"
)

// Addrs expands a base listen address into n consecutive-port addresses:
// ":7800" with n=3 yields :7800, :7801, :7802. This is the deployment
// convention shared by rdxd -standby -shards N (which serves one
// witness+ring host per shard on those ports) and rdxctl stats -shards
// (which inspects them).
func Addrs(listen string, n int) ([]string, error) {
	if n == 1 {
		return []string{listen}, nil
	}
	host, portStr, err := net.SplitHostPort(listen)
	if err != nil {
		return nil, fmt.Errorf("shard addresses need host:port: %w", err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, fmt.Errorf("shard addresses need a numeric port: %w", err)
	}
	out := make([]string, n)
	for i := range out {
		out[i] = net.JoinHostPort(host, strconv.Itoa(port+i))
	}
	return out, nil
}
