package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rdx/internal/artifact"
	"rdx/internal/cluster"
	"rdx/internal/controlha"
	"rdx/internal/core"
	"rdx/internal/ext"
	"rdx/internal/node"
	"rdx/internal/rdma"
	"rdx/internal/telemetry"
	"rdx/internal/xabi"
)

// TestShardFailoverChaos is the race-detector failover drill: three shards
// with real controlha leaders publish for a small multi-tenant fleet under
// continuous concurrent load while one shard's lease is stolen mid-run.
// Only the victim shard's tenants may fail, every failure must be typed
// ErrShardUnavailable, and after controlha.TakeOver + Router.Reinstate the
// whole key space converges. Run it with -race: the steal lands while the
// deposed leader's workers are mid-dispatch.
func TestShardFailoverChaos(t *testing.T) {
	const (
		nodesN  = 2
		hooksN  = 4
		shardsN = 3
	)
	ttl := time.Minute // deposal below is by Steal, never by expiry

	fab := rdma.NewFabric()
	hookNames := make([]string, hooksN)
	for h := range hookNames {
		hookNames[h] = fmt.Sprintf("h%02d", h)
	}
	fleet := make([]*node.Node, nodesN)
	nodeNames := make([]string, nodesN)
	for i := range fleet {
		nodeNames[i] = fmt.Sprintf("chaos-node-%d", i)
		n, err := node.New(node.Config{
			ID: nodeNames[i], Hooks: hookNames, Cores: 2,
			Latency: rdma.NoLatency(), Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		l, err := fab.Listen(nodeNames[i])
		if err != nil {
			t.Fatal(err)
		}
		go n.Serve(l)
		fleet[i] = n
	}

	type tenantRef struct{ name, hook, nodeName string }
	var tenants []tenantRef
	for i := 0; i < nodesN; i++ {
		for h := 0; h < hooksN; h++ {
			tenants = append(tenants, tenantRef{
				name:     fmt.Sprintf("chaos-tenant-%02d", i*hooksN+h),
				hook:     hookNames[h],
				nodeName: nodeNames[i],
			})
		}
	}

	reg := telemetry.NewRegistry()
	arts := artifact.NewCache(artifact.Config{Registry: reg})
	gen1 := cluster.GenerationExt(ext.KindEBPF, 1, 500)
	gen2 := cluster.GenerationExt(ext.KindEBPF, 2, 500)

	type rig struct {
		host      *controlha.Host
		cp        *core.ControlPlane
		flowsName map[string]*core.CodeFlow
		flowsKey  map[string]*core.CodeFlow
	}
	buildCP := func(label string) (*core.ControlPlane, map[string]*core.CodeFlow, map[string]*core.CodeFlow) {
		cp := core.NewControlPlaneLabeled(arts, reg, label)
		byName := map[string]*core.CodeFlow{}
		byKey := map[string]*core.CodeFlow{}
		for _, nn := range nodeNames {
			conn, err := fab.Dial(nn)
			if err != nil {
				t.Fatal(err)
			}
			cf, err := cp.CreateCodeFlow(conn)
			if err != nil {
				t.Fatal(err)
			}
			byName[nn] = cf
			byKey[cf.NodeKey()] = cf
		}
		return cp, byName, byKey
	}
	rigs := make([]*rig, shardsN)
	for s := 0; s < shardsN; s++ {
		host, err := controlha.NewHost(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		hostName := fmt.Sprintf("chaos-stby-%d", s)
		hl, err := fab.Listen(hostName)
		if err != nil {
			t.Fatal(err)
		}
		go host.Serve(hl)
		cp, byName, byKey := buildCP(fmt.Sprintf("rdma.qp.chaos%d", s))
		conn, err := fab.Dial(hostName)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := controlha.AttachLeader(cp, rdma.NewQP(conn), uint64(1+s), ttl); err != nil {
			t.Fatalf("shard %d: attach leader: %v", s, err)
		}
		rigs[s] = &rig{host: host, cp: cp, flowsName: byName, flowsKey: byKey}
	}

	r := NewRouter(Config{Registry: reg})
	for s := 0; s < shardsN; s++ {
		r.AddShard(s, NewCPExecutor(rigs[s].cp, rigs[s].flowsName))
	}
	defer r.Close()

	// Stage both generations everywhere so the chaos load runs the
	// resident fast path and a replayed journal re-publishes known digests.
	for _, g := range []*ext.Extension{gen1, gen2} {
		for _, tn := range tenants {
			if err := r.Publish(context.Background(), &Job{
				Tenant: tn.name, Hook: tn.hook, Ext: g,
				Nodes: []string{tn.nodeName}, Bytes: 128,
			}); err != nil {
				t.Fatalf("warmup %s: %v", tn.name, err)
			}
		}
	}

	victim, _ := r.ShardFor(tenants[0].name, tenants[0].hook)
	owner := make([]int, len(tenants))
	for i, tn := range tenants {
		owner[i], _ = r.ShardFor(tn.name, tn.hook)
	}

	// Chaos load: concurrent publishers hammer every tenant with
	// alternating generations until told to stop. The only acceptable
	// failure is a typed ErrShardUnavailable on a victim-owned tenant.
	var (
		stop        = make(chan struct{})
		wg          sync.WaitGroup
		victimFails atomic.Uint64
	)
	gens := []*ext.Extension{gen1, gen2}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; ; iter++ {
				select {
				case <-stop:
					return
				default:
				}
				i := (iter*4 + w) % len(tenants)
				tn := tenants[i]
				err := r.Publish(context.Background(), &Job{
					Tenant: tn.name, Hook: tn.hook, Ext: gens[iter%2],
					Nodes: []string{tn.nodeName}, Bytes: 128,
				})
				if err == nil {
					continue
				}
				if owner[i] != victim {
					t.Errorf("fence leaked: tenant %s on shard %d failed: %v", tn.name, owner[i], err)
					return
				}
				if !errors.Is(err, ErrShardUnavailable) {
					t.Errorf("victim tenant %s failed untyped: %v", tn.name, err)
					return
				}
				victimFails.Add(1)
			}
		}(w)
	}

	// Mid-run: steal the victim's lease. The deposed leader's next lease
	// check fails closed; its shard front fences; the successor replays the
	// shard's journal against its own flows.
	waitUntil(t, "every shard publishing under chaos load", func() bool {
		for _, st := range r.Status() {
			if st.Published == 0 {
				return false
			}
		}
		return true
	})
	before := statusByID(r)
	succCP, succName, succKey := buildCP(fmt.Sprintf("rdma.qp.chaos%d succ", victim))
	sconn, err := fab.Dial(fmt.Sprintf("chaos-stby-%d", victim))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := controlha.TakeOver(succCP, rigs[victim].host, rdma.NewQP(sconn), 42, ttl, succKey); err != nil {
		t.Fatalf("takeover of shard %d: %v", victim, err)
	}

	// Deterministic fence probe: with the old leader deposed and the
	// successor not yet installed, a victim-owned publish must fail typed.
	if err := r.Publish(context.Background(), &Job{
		Tenant: tenants[0].name, Hook: tenants[0].hook, Ext: gen1,
		Nodes: []string{tenants[0].nodeName}, Bytes: 128,
	}); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("fenced-shard publish got %v, want ErrShardUnavailable", err)
	}
	// Hold the fence window open until the end-of-test assertions are
	// guaranteed: a worker (not just the probe) hit the fenced victim, and
	// every healthy shard made progress past the pre-takeover snapshot.
	waitUntil(t, "fence window effects (victim failure + sibling progress)", func() bool {
		if victimFails.Load() == 0 {
			return false
		}
		for id, st := range statusByID(r) {
			if id != victim && st.Published <= before[id].Published {
				return false
			}
		}
		return true
	})
	if err := r.Reinstate(victim, NewCPExecutor(succCP, succName)); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if victimFails.Load() == 0 {
		t.Error("no victim-tenant failure observed during the fence window (probe aside)")
	}
	after := statusByID(r)
	for id, st := range after {
		if id != victim && st.Published <= before[id].Published {
			t.Errorf("healthy shard %d stalled during sibling fence (%d -> %d)",
				id, before[id].Published, st.Published)
		}
	}
	if reg.Counter(fmt.Sprintf("shard.%d.fenced", victim)).Value() == 0 {
		t.Errorf("shard.%d.fenced did not advance", victim)
	}

	// Post-failover: the whole key space, victim range included, converges
	// on gen2 through the reinstated successor.
	for i, tn := range tenants {
		if err := r.Publish(context.Background(), &Job{
			Tenant: tn.name, Hook: tn.hook, Ext: gen2,
			Nodes: []string{tn.nodeName}, Bytes: 128,
		}); err != nil {
			t.Fatalf("post-reinstate publish %s: %v", tn.name, err)
		}
		res, err := fleet[i/hooksN].ExecHook(tn.hook, make([]byte, xabi.CtxSize), nil)
		if err != nil {
			t.Fatalf("tenant %s hook exec: %v", tn.name, err)
		}
		if res.Verdict != 102 {
			t.Fatalf("tenant %s verdict %d, want 102 (did not converge)", tn.name, res.Verdict)
		}
	}
}

// statusByID indexes the router's per-shard snapshot by ID.
func statusByID(r *Router) map[int]ShardStatus {
	out := map[int]ShardStatus{}
	for _, st := range r.Status() {
		out[st.ID] = st
	}
	return out
}
