package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"rdx/internal/sim"
	"rdx/internal/telemetry"
)

// AutoscalerConfig shapes the router's elastic scaling loop.
type AutoscalerConfig struct {
	// Min and Max bound the shard count (defaults 1 and 8). The autoscaler
	// never scales below Min or above Max no matter what the signals say.
	Min int
	Max int
	// HighDepth is the per-shard queue depth that counts as pressure
	// (default 64): any shard at or above it marks the tick high.
	HighDepth int64
	// HighWait is the queue-wait p99 that counts as pressure (default
	// 50ms). Only ticks that saw new wait samples consult it — the
	// histograms are cumulative, and a stale p99 must not hold the fleet
	// scaled out after the burst has passed.
	HighWait time.Duration
	// LowDepth marks a tick low when every shard's depth is at or below it
	// (default 0 — scale in only on empty queues).
	LowDepth int64
	// HighTicks and LowTicks are the hysteresis: how many consecutive
	// high (low) ticks before the autoscaler acts (defaults 3 and 10, so
	// scale-out is eager and scale-in reluctant).
	HighTicks int
	LowTicks  int
	// Interval is the sampling period (default 100ms).
	Interval time.Duration
	// Cooldown is the minimum gap between membership changes (default
	// 10×Interval): a rebalance shifts load and resets the signals, so the
	// loop waits for them to mean something again.
	Cooldown time.Duration
	// DrainTimeout bounds each rebalance's drain barrier (default 30s).
	DrainTimeout time.Duration
	// Provision builds the executor for a newly added shard. Required for
	// scale-out; an autoscaler without it only scales in.
	Provision func(id int) (Executor, error)
	// Clock drives the sampling ticker and the cooldown arithmetic (wall
	// clock if nil). A test can bind a sim.VirtualClock and step the loop
	// tick by tick with Advance, no wall-clock sleeps involved.
	Clock sim.Clock
}

func (c *AutoscalerConfig) fillDefaults() {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = 8
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.HighDepth <= 0 {
		c.HighDepth = 64
	}
	if c.HighWait <= 0 {
		c.HighWait = 50 * time.Millisecond
	}
	if c.HighTicks <= 0 {
		c.HighTicks = 3
	}
	if c.LowTicks <= 0 {
		c.LowTicks = 10
	}
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * c.Interval
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.Clock == nil {
		c.Clock = sim.Real{}
	}
}

// Autoscaler drives elastic shard membership from the router's own
// instruments: sustained queue pressure (depth gauges, queue-wait p99)
// adds a shard through RebalanceAdd; sustained idleness retires the
// highest-numbered shard through Rebalance. Hysteresis (consecutive-tick
// thresholds) plus a post-change cooldown keep it from flapping — a
// single burst or the load dip right after a rebalance never triggers a
// membership change by itself.
type Autoscaler struct {
	r   *Router
	cfg AutoscalerConfig
	reg *telemetry.Registry

	mu     sync.Mutex
	stopCh chan struct{}
	wg     sync.WaitGroup

	highStreak int
	lowStreak  int
	lastChange time.Time
	waitCounts map[int]uint64 // per-shard queue.wait sample count at last tick

	scaleOuts *telemetry.Counter
	scaleIns  *telemetry.Counter
	errors    *telemetry.Counter
	shardsNow *telemetry.Gauge
}

// NewAutoscaler builds an autoscaler over r, registering its instruments
// ("shard.autoscale.*") in the router's registry. Call Start to run it.
func NewAutoscaler(r *Router, cfg AutoscalerConfig) *Autoscaler {
	cfg.fillDefaults()
	reg := r.Registry()
	return &Autoscaler{
		r:          r,
		cfg:        cfg,
		reg:        reg,
		waitCounts: map[int]uint64{},
		scaleOuts:  reg.Counter("shard.autoscale.scale_outs"),
		scaleIns:   reg.Counter("shard.autoscale.scale_ins"),
		errors:     reg.Counter("shard.autoscale.errors"),
		shardsNow:  reg.Gauge("shard.autoscale.shards"),
	}
}

// Start launches the sampling loop. Stop (or Close on the router plus
// Stop) shuts it down; Start after Stop restarts it.
func (a *Autoscaler) Start() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.stopCh != nil {
		return
	}
	ch := make(chan struct{})
	a.stopCh = ch
	a.wg.Add(1)
	go a.loop(ch)
}

// Stop halts the sampling loop and waits for any in-flight rebalance the
// loop started to finish.
func (a *Autoscaler) Stop() {
	a.mu.Lock()
	ch := a.stopCh
	a.stopCh = nil
	a.mu.Unlock()
	if ch == nil {
		return
	}
	close(ch)
	a.wg.Wait()
}

func (a *Autoscaler) loop(stop chan struct{}) {
	defer a.wg.Done()
	tick := a.cfg.Clock.NewTicker(a.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C():
			a.tick()
		}
	}
}

// tick samples the fleet and acts when the hysteresis thresholds trip.
func (a *Autoscaler) tick() {
	st := a.r.Status()
	a.shardsNow.Set(int64(len(st)))
	if len(st) == 0 {
		return
	}
	high, low := a.classify(st)
	if high {
		a.highStreak++
		a.lowStreak = 0
	} else if low {
		a.lowStreak++
		a.highStreak = 0
	} else {
		a.highStreak, a.lowStreak = 0, 0
	}
	if a.cfg.Clock.Since(a.lastChange) < a.cfg.Cooldown {
		return
	}
	switch {
	case a.highStreak >= a.cfg.HighTicks && len(st) < a.cfg.Max && a.cfg.Provision != nil:
		a.scaleOut(st)
	case a.lowStreak >= a.cfg.LowTicks && len(st) > a.cfg.Min:
		a.scaleIn(st)
	}
}

// classify reads the pressure signals for one tick: high when any shard's
// queue is deep or queue waits crossed HighWait since the last tick, low
// when every queue sits at or below LowDepth.
func (a *Autoscaler) classify(st []ShardStatus) (high, low bool) {
	low = true
	seen := map[int]uint64{}
	for _, s := range st {
		if int64(s.QueueDepth) >= a.cfg.HighDepth {
			high = true
		}
		if int64(s.QueueDepth) > a.cfg.LowDepth {
			low = false
		}
		h := a.reg.Histogram(fmt.Sprintf("shard.%d.queue.wait", s.ID))
		n := h.Count()
		seen[s.ID] = n
		// Consult the cumulative p99 only when this shard recorded new
		// waits since the last tick; an idle shard's history is not
		// pressure.
		if n > a.waitCounts[s.ID] && time.Duration(h.Percentile(99)) >= a.cfg.HighWait {
			high = true
		}
	}
	a.waitCounts = seen
	return high, low
}

// scaleOut provisions and joins one shard at max(ID)+1.
func (a *Autoscaler) scaleOut(st []ShardStatus) {
	id := 0
	for _, s := range st {
		if s.ID >= id {
			id = s.ID + 1
		}
	}
	ex, err := a.cfg.Provision(id)
	if err != nil {
		a.errors.Inc()
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), a.cfg.DrainTimeout)
	defer cancel()
	if _, err := a.r.RebalanceAdd(ctx, id, ex); err != nil {
		a.errors.Inc()
		if errors.Is(err, ErrRouterClosed) {
			return
		}
		return
	}
	a.scaleOuts.Inc()
	a.lastChange = a.cfg.Clock.Now()
	a.highStreak, a.lowStreak = 0, 0
}

// scaleIn retires the highest-numbered live shard. Downed shards are
// skipped — they are the failover path's problem (TakeOver + Reinstate),
// not capacity to reclaim.
func (a *Autoscaler) scaleIn(st []ShardStatus) {
	id, found := -1, false
	for _, s := range st {
		if !s.Down && s.ID > id {
			id, found = s.ID, true
		}
	}
	if !found {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), a.cfg.DrainTimeout)
	defer cancel()
	if _, err := a.r.Rebalance(ctx, id); err != nil {
		a.errors.Inc()
		return
	}
	a.scaleIns.Inc()
	a.lastChange = a.cfg.Clock.Now()
	a.highStreak, a.lowStreak = 0, 0
}
