package shard

import (
	"container/heap"
	"sync"
)

// strideScale is the stride numerator: a tenant of weight w advances its
// virtual-time pass by strideScale/w per dispatched job, so long-run
// dispatch shares converge to weights regardless of queue depths.
const strideScale = 1 << 20

// fairQueue schedules queued jobs across tenants within one shard by
// stride scheduling: every push lands in the tenant's FIFO, every pop
// takes the head of the tenant with the minimum pass value and advances
// that tenant's pass by its stride. A tenant entering (or re-entering)
// the queue starts at the current minimum pass, so idleness banks no
// credit and a burst from a heavy tenant cannot starve light ones.
//
// push blocks while the queue is at capacity; pop blocks while it is
// empty. close(err) unblocks everything: queued jobs complete with err,
// pushers and poppers return closed.
type fairQueue struct {
	mu   sync.Mutex
	full *sync.Cond
	work *sync.Cond

	cap       int
	depth     int
	executing int                 // popped but not yet acknowledged done (drain barrier)
	active    tenantHeap          // non-empty tenants, min-pass at the root
	tenants   map[string]*tenantQ // every tenant ever seen (pass retained while idle)
	closed    bool
	err       error
}

// tenantQ is one tenant's FIFO plus its stride-scheduling state.
type tenantQ struct {
	name   string
	jobs   []*Job
	pass   uint64
	stride uint64
	idx    int // heap index, -1 when idle
}

func newFairQueue(capacity int) *fairQueue {
	q := &fairQueue{cap: capacity, tenants: map[string]*tenantQ{}}
	q.full = sync.NewCond(&q.mu)
	q.work = sync.NewCond(&q.mu)
	return q
}

// push enqueues j under its tenant, blocking while the shard's queue is at
// capacity. Returns the close error (or ErrShardUnavailable) if the queue
// closed first.
func (q *fairQueue) push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.depth >= q.cap && !q.closed {
		q.full.Wait()
	}
	if q.closed {
		return q.closeErr()
	}
	tq := q.tenant(j.Tenant, j.weight)
	tq.jobs = append(tq.jobs, j)
	if tq.idx == -1 {
		// (Re-)activation: start at the current minimum pass so the tenant
		// competes from now, not from banked history.
		if len(q.active) > 0 && q.active[0].pass > tq.pass {
			tq.pass = q.active[0].pass
		}
		heap.Push(&q.active, tq)
	}
	q.depth++
	q.work.Signal()
	return nil
}

// pop dequeues the next job by fair share, blocking while the queue is
// empty. ok is false once the queue closed and drained its jobs via
// close(err) — pending jobs are never silently dropped.
func (q *fairQueue) pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.depth == 0 && !q.closed {
		q.work.Wait()
	}
	if q.depth == 0 {
		return nil, false
	}
	tq := q.active[0]
	j := tq.jobs[0]
	tq.jobs = tq.jobs[1:]
	tq.pass += tq.stride
	if len(tq.jobs) == 0 {
		heap.Pop(&q.active)
		tq.idx = -1
	} else {
		heap.Fix(&q.active, 0)
	}
	q.depth--
	q.executing++
	q.full.Signal()
	return j, true
}

// jobDone acknowledges that a popped job delivered its outcome. Pops and
// acks pair under the queue mutex so the quiescent predicate can never
// observe a job that is neither queued nor executing.
func (q *fairQueue) jobDone() {
	q.mu.Lock()
	q.executing--
	q.mu.Unlock()
}

// quiescent reports an empty queue with no popped job still executing —
// the drain barrier's termination predicate.
func (q *fairQueue) quiescent() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depth == 0 && q.executing == 0
}

// close marks the queue dead and fails every queued job with err, waking
// all blocked pushers and poppers.
func (q *fairQueue) close(err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.err = err
	for _, tq := range q.active {
		for _, j := range tq.jobs {
			j.finish(q.closeErr())
		}
		tq.jobs = nil
	}
	q.active = nil
	q.depth = 0
	q.full.Broadcast()
	q.work.Broadcast()
}

func (q *fairQueue) closeErr() error {
	if q.err != nil {
		return q.err
	}
	return ErrShardUnavailable
}

// tenant returns (lazily creating) the tenant's queue state with the
// given weight (minimum 1). Weight changes take effect on the tenant's
// next dispatch.
func (q *fairQueue) tenant(name string, weight int) *tenantQ {
	if weight < 1 {
		weight = 1
	}
	tq, ok := q.tenants[name]
	if !ok {
		tq = &tenantQ{name: name, idx: -1}
		q.tenants[name] = tq
	}
	tq.stride = strideScale / uint64(weight)
	return tq
}

// len reports the current queue depth.
func (q *fairQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depth
}

// tenantHeap is a min-heap of active tenants by pass value.
type tenantHeap []*tenantQ

func (h tenantHeap) Len() int            { return len(h) }
func (h tenantHeap) Less(i, j int) bool  { return h[i].pass < h[j].pass }
func (h tenantHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *tenantHeap) Push(x interface{}) { tq := x.(*tenantQ); tq.idx = len(*h); *h = append(*h, tq) }
func (h *tenantHeap) Pop() interface{} {
	old := *h
	n := len(old)
	tq := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return tq
}
