package shard

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func job(tenant string, weight int) *Job {
	return &Job{Tenant: tenant, weight: weight, done: make(chan error, 1)}
}

// TestFairShareWeights: with three backlogged tenants of weights 3/2/1,
// dispatch counts over a long run converge to the weight ratio.
func TestFairShareWeights(t *testing.T) {
	q := newFairQueue(10000)
	weights := map[string]int{"a": 3, "b": 2, "c": 1}
	const per = 600
	for tn, w := range weights {
		for i := 0; i < per; i++ {
			if err := q.push(job(tn, w)); err != nil {
				t.Fatal(err)
			}
		}
	}
	counts := map[string]int{}
	const draws = 600 // all tenants stay backlogged throughout
	for i := 0; i < draws; i++ {
		j, ok := q.pop()
		if !ok {
			t.Fatal("pop failed with jobs queued")
		}
		counts[j.Tenant]++
	}
	// Exact stride shares: 300/200/100 of 600. Allow ±2 for heap tie-breaks.
	want := map[string]int{"a": 300, "b": 200, "c": 100}
	for tn, w := range want {
		if d := counts[tn] - w; d < -2 || d > 2 {
			t.Errorf("tenant %s dispatched %d of %d, want ~%d (weights 3:2:1)", tn, counts[tn], draws, w)
		}
	}
}

// TestFairShareFIFOWithinTenant: a tenant's own jobs dispatch in push order.
func TestFairShareFIFOWithinTenant(t *testing.T) {
	q := newFairQueue(100)
	var jobs []*Job
	for i := 0; i < 10; i++ {
		j := job("tn", 1)
		j.Hook = fmt.Sprintf("h%d", i)
		jobs = append(jobs, j)
		if err := q.push(j); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		j, ok := q.pop()
		if !ok || j != jobs[i] {
			t.Fatalf("pop %d returned %v, want job %s", i, j.Hook, jobs[i].Hook)
		}
	}
}

// TestFairShareNoBankedCredit: a tenant idle while another drains the
// queue re-enters at the current minimum pass — it does not get a
// monopolizing run from "saved up" virtual time.
func TestFairShareNoBankedCredit(t *testing.T) {
	q := newFairQueue(1000)
	// Busy tenant runs alone for a while, advancing its pass far ahead.
	for i := 0; i < 50; i++ {
		q.push(job("busy", 1))
	}
	for i := 0; i < 50; i++ {
		q.pop()
	}
	// Now both queue up. The idler must not win every draw until it
	// "catches up" 50 strides — shares should be ~even from here on.
	for i := 0; i < 40; i++ {
		q.push(job("busy", 1))
		q.push(job("idler", 1))
	}
	counts := map[string]int{}
	for i := 0; i < 40; i++ {
		j, _ := q.pop()
		counts[j.Tenant]++
	}
	if counts["idler"] > 25 {
		t.Errorf("idle tenant won %d of 40 draws: banked credit not clamped", counts["idler"])
	}
	if counts["busy"] < 15 {
		t.Errorf("busy tenant won only %d of 40 draws", counts["busy"])
	}
}

// TestFairQueueBlockingBackpressure: push blocks at capacity and resumes
// after a pop frees a slot.
func TestFairQueueBlockingBackpressure(t *testing.T) {
	q := newFairQueue(2)
	q.push(job("tn", 1))
	q.push(job("tn", 1))
	released := make(chan error, 1)
	go func() { released <- q.push(job("tn", 1)) }()
	select {
	case err := <-released:
		t.Fatalf("push returned (%v) with the queue at capacity", err)
	default:
	}
	if _, ok := q.pop(); !ok {
		t.Fatal("pop failed")
	}
	if err := <-released; err != nil {
		t.Fatalf("blocked push failed after slot freed: %v", err)
	}
	if got := q.len(); got != 2 {
		t.Errorf("depth = %d, want 2", got)
	}
}

// TestFairQueueClose: close fails every queued job with the close error,
// wakes blocked pushers, and makes pop return !ok.
func TestFairQueueClose(t *testing.T) {
	q := newFairQueue(2)
	j1, j2 := job("a", 1), job("b", 1)
	q.push(j1)
	q.push(j2)
	blockedPush := make(chan error, 1)
	go func() { blockedPush <- q.push(job("c", 1)) }()

	cause := fmt.Errorf("%w: leader deposed", ErrShardUnavailable)
	q.close(cause)

	for i, j := range []*Job{j1, j2} {
		select {
		case err := <-j.done:
			if !errors.Is(err, ErrShardUnavailable) {
				t.Errorf("queued job %d drained with %v, want ErrShardUnavailable", i, err)
			}
		default:
			t.Errorf("queued job %d not drained on close", i)
		}
	}
	if err := <-blockedPush; !errors.Is(err, ErrShardUnavailable) {
		t.Errorf("blocked push returned %v, want ErrShardUnavailable", err)
	}
	if _, ok := q.pop(); ok {
		t.Error("pop succeeded on a closed, drained queue")
	}
	q.close(cause) // idempotent
}

// TestFairQueueConcurrent hammers the queue from many pushers and poppers
// (run with -race) and checks nothing is lost or duplicated.
func TestFairQueueConcurrent(t *testing.T) {
	q := newFairQueue(64)
	const pushers, perPusher = 8, 200
	var wg sync.WaitGroup
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPusher; i++ {
				if err := q.push(job(fmt.Sprintf("t%d", p), 1+p%3)); err != nil {
					t.Errorf("push: %v", err)
					return
				}
			}
		}(p)
	}
	popped := make(chan *Job, pushers*perPusher)
	var poppers sync.WaitGroup
	for w := 0; w < 4; w++ {
		poppers.Add(1)
		go func() {
			defer poppers.Done()
			for {
				j, ok := q.pop()
				if !ok {
					return
				}
				popped <- j
			}
		}()
	}
	wg.Wait()
	// Let the poppers drain the remainder, then close to release them.
	waitUntil(t, "fair queue drained", func() bool { return q.len() == 0 })
	q.close(nil)
	poppers.Wait()
	close(popped)
	n := 0
	for range popped {
		n++
	}
	if n != pushers*perPusher {
		t.Errorf("popped %d jobs, pushed %d", n, pushers*perPusher)
	}
}
