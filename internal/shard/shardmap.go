// Package shard partitions the RDX control plane: CodeFlows are owned by
// N independent control-plane shards, each with its own leadership lease,
// deployment journal, standby, and publish serialization from
// internal/controlha — so shards elect leaders, replicate, and fail over
// independently, and a deposed shard leader fences only its own key range.
//
// In front of the shards sits a thin Router keyed by consistent hashing
// over (tenant, hook): per-tenant token-bucket admission control (publish
// rate and staged bytes), weighted fair-share scheduling of queued jobs
// across tenants within each shard, and per-shard telemetry wired into the
// fleet registry. The deployment model gives each tenant a disjoint hook
// namespace, so the shard owning a (tenant, hook) key exclusively owns the
// (node, hook) dispatch slots reachable through it — the per-shard pubMu
// argument of DESIGN.md §11 depends on that disjointness.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// DefaultVNodes is the virtual-node count per shard when Config.VNodes is
// zero. 64 points per shard keeps the maximum/mean key-share imbalance
// under ~30% for small shard counts without bloating the ring.
const DefaultVNodes = 64

// Map is a consistent-hash ring assigning (tenant, hook) keys to shard
// IDs. Each shard contributes vnodes points; a key belongs to the first
// point clockwise from its hash. Assignment is stable across Add/Remove:
// only keys on arcs adjacent to the changed shard's points move, so a
// shard add/remove reshuffles ~1/N of the key space instead of all of it.
// All methods are safe for concurrent use.
type Map struct {
	vnodes int

	mu     sync.RWMutex
	points []point // sorted by hash
	shards map[int]struct{}
}

type point struct {
	hash uint64
	id   int
}

// NewMap builds an empty ring with vnodes virtual nodes per shard
// (DefaultVNodes if <= 0).
func NewMap(vnodes int) *Map {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Map{vnodes: vnodes, shards: map[int]struct{}{}}
}

// hash64 collapses a string onto the ring. SHA-256 (truncated) rather than
// a multiplicative hash: vnode placement quality is what bounds shard
// imbalance, and this is far off any hot path — Lookup only hashes the
// key, never the ring.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Key composes the routing key for a tenant's hook. The NUL separator
// keeps ("ab","c") and ("a","bc") distinct.
func Key(tenant, hook string) string { return tenant + "\x00" + hook }

// Add inserts a shard's virtual nodes into the ring (no-op if present).
func (m *Map) Add(id int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.shards[id]; ok {
		return
	}
	m.shards[id] = struct{}{}
	for v := 0; v < m.vnodes; v++ {
		m.points = append(m.points, point{hash: hash64(fmt.Sprintf("shard-%d-vnode-%d", id, v)), id: id})
	}
	sort.Slice(m.points, func(i, j int) bool { return m.points[i].hash < m.points[j].hash })
}

// Remove deletes a shard's virtual nodes from the ring (no-op if absent).
// Keys it owned fall to the next point clockwise; everything else stays
// put.
func (m *Map) Remove(id int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.shards[id]; !ok {
		return
	}
	delete(m.shards, id)
	kept := m.points[:0]
	for _, p := range m.points {
		if p.id != id {
			kept = append(kept, p)
		}
	}
	m.points = kept
}

// Lookup returns the shard owning (tenant, hook); ok is false on an empty
// ring.
func (m *Map) Lookup(tenant, hook string) (id int, ok bool) {
	h := hash64(Key(tenant, hook))
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(m.points) == 0 {
		return 0, false
	}
	i := sort.Search(len(m.points), func(i int) bool { return m.points[i].hash >= h })
	if i == len(m.points) {
		i = 0 // wrap: first point clockwise from the top of the ring
	}
	return m.points[i].id, true
}

// Shards lists the member shard IDs, sorted.
func (m *Map) Shards() []int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]int, 0, len(m.shards))
	for id := range m.shards {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
