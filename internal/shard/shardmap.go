// Package shard partitions the RDX control plane: CodeFlows are owned by
// N independent control-plane shards, each with its own leadership lease,
// deployment journal, standby, and publish serialization from
// internal/controlha — so shards elect leaders, replicate, and fail over
// independently, and a deposed shard leader fences only its own key range.
//
// In front of the shards sits a thin Router keyed by consistent hashing
// over (tenant, hook): per-tenant token-bucket admission control (publish
// rate and staged bytes), weighted fair-share scheduling of queued jobs
// across tenants within each shard, and per-shard telemetry wired into the
// fleet registry. The deployment model gives each tenant a disjoint hook
// namespace, so the shard owning a (tenant, hook) key exclusively owns the
// (node, hook) dispatch slots reachable through it — the per-shard pubMu
// argument of DESIGN.md §11 depends on that disjointness.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// DefaultVNodes is the virtual-node count per shard when Config.VNodes is
// zero. 64 points per shard keeps the maximum/mean key-share imbalance
// under ~30% for small shard counts without bloating the ring.
const DefaultVNodes = 64

// Map is a consistent-hash ring assigning (tenant, hook) keys to shard
// IDs. Each shard contributes vnodes points; a key belongs to the first
// point clockwise from its hash. Assignment is stable across Add/Remove:
// only keys on arcs adjacent to the changed shard's points move, so a
// shard add/remove reshuffles ~1/N of the key space instead of all of it.
// All methods are safe for concurrent use.
type Map struct {
	vnodes int

	mu     sync.RWMutex
	points []point // sorted by hash
	shards map[int]struct{}
	epoch  uint64 // bumped on every membership change
}

type point struct {
	hash uint64
	id   int
}

// NewMap builds an empty ring with vnodes virtual nodes per shard
// (DefaultVNodes if <= 0).
func NewMap(vnodes int) *Map {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Map{vnodes: vnodes, shards: map[int]struct{}{}}
}

// hash64 collapses a string onto the ring. SHA-256 (truncated) rather than
// a multiplicative hash: vnode placement quality is what bounds shard
// imbalance, and this is far off any hot path — Lookup only hashes the
// key, never the ring.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Key composes the routing key for a tenant's hook. The NUL separator
// keeps ("ab","c") and ("a","bc") distinct.
func Key(tenant, hook string) string { return tenant + "\x00" + hook }

// pointsFor computes a shard's vnode placement (deterministic in id).
func (m *Map) pointsFor(id int) []point {
	pts := make([]point, 0, m.vnodes)
	for v := 0; v < m.vnodes; v++ {
		pts = append(pts, point{hash: hash64(fmt.Sprintf("shard-%d-vnode-%d", id, v)), id: id})
	}
	return pts
}

// Add inserts a shard's virtual nodes into the ring (no-op if present).
func (m *Map) Add(id int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.shards[id]; ok {
		return
	}
	m.shards[id] = struct{}{}
	m.points = append(m.points, m.pointsFor(id)...)
	sort.Slice(m.points, func(i, j int) bool { return m.points[i].hash < m.points[j].hash })
	m.epoch++
}

// Remove deletes a shard's virtual nodes from the ring (no-op if absent).
// Keys it owned fall to the next point clockwise; everything else stays
// put.
func (m *Map) Remove(id int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.shards[id]; !ok {
		return
	}
	delete(m.shards, id)
	kept := m.points[:0]
	for _, p := range m.points {
		if p.id != id {
			kept = append(kept, p)
		}
	}
	m.points = kept
	m.epoch++
}

// Epoch returns the ring's membership epoch: it advances on every Add and
// Remove, so an ownership decision can be pinned to the exact ring it was
// made against. Two lookups of the same key under the same epoch always
// resolve to the same shard — the no-double-owner invariant the rebalance
// bench asserts.
func (m *Map) Epoch() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.epoch
}

// lookupLocked resolves the owner of hash h among points, skipping shard
// skip (none if < 0). Caller holds m.mu.
func lookupLocked(points []point, h uint64, skip int) (int, bool) {
	n := len(points)
	if n == 0 {
		return 0, false
	}
	i := sort.Search(n, func(i int) bool { return points[i].hash >= h })
	// The modulo wraps i == n to the first point clockwise from the top of
	// the ring; further probes keep walking clockwise past skipped points.
	for probes := 0; probes < n; probes++ {
		p := points[(i+probes)%n]
		if p.id != skip {
			return p.id, true
		}
	}
	return 0, false
}

// Lookup returns the shard owning (tenant, hook); ok is false on an empty
// ring.
func (m *Map) Lookup(tenant, hook string) (id int, ok bool) {
	id, _, ok = m.LookupEpoch(tenant, hook)
	return id, ok
}

// LookupEpoch is Lookup returning, atomically with the owner, the ring
// epoch the decision was made under.
func (m *Map) LookupEpoch(tenant, hook string) (id int, epoch uint64, ok bool) {
	h := hash64(Key(tenant, hook))
	m.mu.RLock()
	defer m.mu.RUnlock()
	id, ok = lookupLocked(m.points, h, -1)
	return id, m.epoch, ok
}

// LookupExcluding resolves (tenant, hook) as if shard exclude had already
// left the ring — the receiver a rebalance will migrate the key to. The
// ring itself is unchanged.
func (m *Map) LookupExcluding(exclude int, tenant, hook string) (id int, ok bool) {
	h := hash64(Key(tenant, hook))
	m.mu.RLock()
	defer m.mu.RUnlock()
	return lookupLocked(m.points, h, exclude)
}

// LookupWith resolves (tenant, hook) as if shard extra had already joined
// the ring — the owner a scale-out rebalance will hand the key to. The
// ring itself is unchanged. A key whose hypothetical owner differs from
// its current owner is exactly a key the join migrates.
func (m *Map) LookupWith(extra int, tenant, hook string) (id int, ok bool) {
	h := hash64(Key(tenant, hook))
	m.mu.RLock()
	defer m.mu.RUnlock()
	if _, ok := m.shards[extra]; ok {
		return lookupLocked(m.points, h, -1)
	}
	merged := append(append([]point(nil), m.points...), m.pointsFor(extra)...)
	sort.Slice(merged, func(i, j int) bool { return merged[i].hash < merged[j].hash })
	return lookupLocked(merged, h, -1)
}

// Shards lists the member shard IDs, sorted.
func (m *Map) Shards() []int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]int, 0, len(m.shards))
	for id := range m.shards {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
