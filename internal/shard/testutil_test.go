package shard

import (
	"testing"
	"time"
)

// waitUntil polls cond until it holds, failing the test after a generous
// deadline. Condition-based waiting replaces the fixed time.Sleep calls
// that made the chaos tests timing-sensitive on loaded machines: a poll
// proceeds the instant the observable state is right, and a genuinely
// stuck system fails with a named condition instead of passing by luck.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
