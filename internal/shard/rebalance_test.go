package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"rdx/internal/artifact"
	"rdx/internal/cluster"
	"rdx/internal/controlha"
	"rdx/internal/core"
	"rdx/internal/ext"
	"rdx/internal/node"
	"rdx/internal/rdma"
	"rdx/internal/telemetry"
	"rdx/internal/xabi"
)

// fakeMig is a Migrator-capable executor that records the protocol's
// calls instead of touching a control plane.
type fakeMig struct {
	mu        sync.Mutex
	executed  int
	snapshots []uint64       // ring epochs HandoffSnapshot saw
	absorbed  [][]MigratedKey
	snapErr   error
}

func (f *fakeMig) Execute(ctx context.Context, j *Job) error {
	f.mu.Lock()
	f.executed++
	f.mu.Unlock()
	return nil
}

func (f *fakeMig) HandoffSnapshot(ringEpoch uint64) (*RebalanceState, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.snapErr != nil {
		return nil, f.snapErr
	}
	f.snapshots = append(f.snapshots, ringEpoch)
	return &RebalanceState{LastHandoffEpoch: ringEpoch}, nil
}

func (f *fakeMig) AbsorbKeys(st *RebalanceState, keys []MigratedKey) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.absorbed = append(f.absorbed, keys)
	return nil
}

func (f *fakeMig) absorbedCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, ks := range f.absorbed {
		n += len(ks)
	}
	return n
}

// TestRebalanceScaleIn: removing a shard drains it, snapshots exactly
// once at the pre-flip ring epoch, hands every owned key to the planned
// receivers, and flips the ring in one epoch bump.
func TestRebalanceScaleIn(t *testing.T) {
	r := NewRouter(Config{Workers: 2})
	defer r.Close()
	migs := map[int]*fakeMig{}
	for id := 0; id < 3; id++ {
		migs[id] = &fakeMig{}
		if err := r.AddShard(id, migs[id]); err != nil {
			t.Fatal(err)
		}
	}
	const tenantsN = 24
	owners := map[string]int{}
	for i := 0; i < tenantsN; i++ {
		tn := fmt.Sprintf("t%02d", i)
		if err := r.Publish(context.Background(), testJob(tn, "h")); err != nil {
			t.Fatalf("publish %s: %v", tn, err)
		}
		owners[tn], _ = r.ShardFor(tn, "h")
	}
	victim := owners["t00"]
	victimKeys := 0
	for _, id := range owners {
		if id == victim {
			victimKeys++
		}
	}
	epochBefore := r.RingEpoch()

	rep, err := r.Rebalance(context.Background(), victim)
	if err != nil {
		t.Fatalf("Rebalance(%d): %v", victim, err)
	}
	if rep.Removed != victim || rep.Added != -1 {
		t.Errorf("report removed/added = %d/%d, want %d/-1", rep.Removed, rep.Added, victim)
	}
	if rep.MovedKeys != victimKeys {
		t.Errorf("report moved %d keys, victim owned %d", rep.MovedKeys, victimKeys)
	}
	if !rep.Migrated {
		t.Error("report says state did not migrate despite Migrator executors")
	}
	if rep.RingEpoch != epochBefore+1 {
		t.Errorf("ring epoch %d -> %d, want exactly one bump", epochBefore, rep.RingEpoch)
	}
	if got := migs[victim].snapshots; len(got) != 1 || got[0] != epochBefore {
		t.Errorf("victim snapshots = %v, want exactly [%d]", got, epochBefore)
	}
	gotAbsorbed := 0
	for id, m := range migs {
		if id == victim {
			if m.absorbedCount() != 0 {
				t.Errorf("departing shard absorbed %d keys", m.absorbedCount())
			}
			continue
		}
		if m.absorbedCount() != rep.Receivers[id] {
			t.Errorf("shard %d absorbed %d keys, report says %d", id, m.absorbedCount(), rep.Receivers[id])
		}
		gotAbsorbed += m.absorbedCount()
	}
	if gotAbsorbed != victimKeys {
		t.Errorf("receivers absorbed %d keys total, want %d", gotAbsorbed, victimKeys)
	}
	if _, ok := statusByID(r)[victim]; ok {
		t.Error("victim still in Status after rebalance")
	}
	// Every key still publishes, and none resolves to the removed shard.
	for tn := range owners {
		if id, _ := r.ShardFor(tn, "h"); id == victim {
			t.Fatalf("key %s still resolves to removed shard %d", tn, victim)
		}
		if err := r.Publish(context.Background(), testJob(tn, "h")); err != nil {
			t.Fatalf("post-rebalance publish %s: %v", tn, err)
		}
	}

	// Guard rails: unknown shard and last-shard removals refuse.
	if _, err := r.Rebalance(context.Background(), victim); err == nil {
		t.Error("rebalance of already-removed shard succeeded")
	}
}

// TestRebalanceLastShardRefused: the ring must never be drained empty.
func TestRebalanceLastShardRefused(t *testing.T) {
	r := NewRouter(Config{})
	defer r.Close()
	if err := r.AddShard(0, &fakeMig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Rebalance(context.Background(), 0); err == nil {
		t.Error("rebalance of the last shard succeeded")
	}
}

// TestRebalanceAddScaleOut: joining a shard migrates exactly the keys the
// enlarged ring assigns it, sources reopen, and the newcomer serves its
// range.
func TestRebalanceAddScaleOut(t *testing.T) {
	r := NewRouter(Config{Workers: 2})
	defer r.Close()
	migs := map[int]*fakeMig{}
	for id := 0; id < 2; id++ {
		migs[id] = &fakeMig{}
		if err := r.AddShard(id, migs[id]); err != nil {
			t.Fatal(err)
		}
	}
	const tenantsN = 32
	for i := 0; i < tenantsN; i++ {
		if err := r.Publish(context.Background(), testJob(fmt.Sprintf("t%02d", i), "h")); err != nil {
			t.Fatal(err)
		}
	}
	epochBefore := r.RingEpoch()
	newMig := &fakeMig{}
	rep, err := r.RebalanceAdd(context.Background(), 2, newMig)
	if err != nil {
		t.Fatalf("RebalanceAdd: %v", err)
	}
	if rep.Added != 2 || rep.Removed != -1 {
		t.Errorf("report added/removed = %d/%d, want 2/-1", rep.Added, rep.Removed)
	}
	if rep.RingEpoch != epochBefore+1 {
		t.Errorf("ring epoch %d -> %d, want exactly one bump", epochBefore, rep.RingEpoch)
	}
	// With 32 keys over 2->3 shards the newcomer should own some of them.
	if rep.MovedKeys == 0 {
		t.Error("no keys moved to the joining shard (suspicious ring)")
	}
	if newMig.absorbedCount() != rep.MovedKeys {
		t.Errorf("newcomer absorbed %d keys, report moved %d", newMig.absorbedCount(), rep.MovedKeys)
	}
	// Sources reopened and the whole key space publishes; keys owned by
	// the newcomer execute there.
	newExecBefore := newMig.executed
	servedNew := false
	for i := 0; i < tenantsN; i++ {
		tn := fmt.Sprintf("t%02d", i)
		if err := r.Publish(context.Background(), testJob(tn, "h")); err != nil {
			t.Fatalf("post-join publish %s: %v", tn, err)
		}
		if id, _ := r.ShardFor(tn, "h"); id == 2 {
			servedNew = true
		}
	}
	if !servedNew {
		t.Error("no key routed to the joined shard")
	}
	newMig.mu.Lock()
	newExecuted := newMig.executed
	newMig.mu.Unlock()
	if newExecuted <= newExecBefore {
		t.Error("joined shard executed nothing after the flip")
	}
	if _, err := r.RebalanceAdd(context.Background(), 2, &fakeMig{}); err == nil {
		t.Error("rebalance-add of existing shard succeeded")
	}
}

// TestRebalanceDrainWindow: while the departing shard drains, new submits
// to its key range fail typed ErrRebalancing (with admission refunded)
// and in-flight jobs complete — the barrier is typed, not a drop.
func TestRebalanceDrainWindow(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := NewRouter(Config{Registry: reg, Workers: 1})
	defer r.Close()
	release := make(chan struct{})
	started := make(chan struct{})
	blocking := &blockingMig{release: release, started: started}
	if err := r.AddShard(0, blocking); err != nil {
		t.Fatal(err)
	}
	if err := r.AddShard(1, &fakeMig{}); err != nil {
		t.Fatal(err)
	}
	// A tenant owned by shard 0.
	tn := ""
	for i := 0; ; i++ {
		cand := fmt.Sprintf("drain-t%d", i)
		if id, _ := r.ShardFor(cand, "h"); id == 0 {
			tn = cand
			break
		}
	}
	inflight := make(chan error, 1)
	go func() { inflight <- r.Publish(context.Background(), testJob(tn, "h")) }()
	<-started

	rebErr := make(chan error, 1)
	go func() {
		_, err := r.Rebalance(context.Background(), 0)
		rebErr <- err
	}()
	// Wait for the drain window to open (a pre-drain probe would enqueue
	// behind the blocked worker and wait forever), then probe: a submit
	// during the window is refused typed and refunded.
	r.mu.RLock()
	victim := r.shards[0]
	r.mu.RUnlock()
	deadline := time.After(5 * time.Second)
	for !victim.draining.Load() {
		select {
		case <-deadline:
			t.Fatal("rebalance never began draining")
		case <-time.After(time.Millisecond):
		}
	}
	if err := r.Publish(context.Background(), testJob(tn, "h")); !errors.Is(err, ErrRebalancing) {
		t.Fatalf("drain-window publish: %v, want ErrRebalancing", err)
	}
	if reg.Counter("shard.admission.refunded").Value() == 0 {
		t.Error("drain-window refusal did not refund admission")
	}
	close(release) // let the in-flight job finish; the barrier lifts
	if err := <-inflight; err != nil {
		t.Errorf("in-flight job failed across the drain barrier: %v", err)
	}
	if err := <-rebErr; err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	// The window is over: the key now publishes on its new owner.
	if err := r.Publish(context.Background(), testJob(tn, "h")); err != nil {
		t.Fatalf("post-flip publish: %v", err)
	}
}

// blockingMig executes its first job only after release closes.
type blockingMig struct {
	fakeMig
	once    sync.Once
	started chan struct{}
	release chan struct{}
}

func (b *blockingMig) Execute(ctx context.Context, j *Job) error {
	b.once.Do(func() {
		close(b.started)
		<-b.release
	})
	return b.fakeMig.Execute(ctx, j)
}

// sabotagedMig deposes its own shard's leader at the top of the handoff —
// the tightest possible "leader dies mid-handoff" interleaving: the drain
// barrier has passed, the marker append is next, and the steal lands
// between them.
type sabotagedMig struct {
	*CPExecutor
	once  sync.Once
	steal func()
}

func (m *sabotagedMig) HandoffSnapshot(ringEpoch uint64) (*RebalanceState, error) {
	m.once.Do(m.steal)
	return m.CPExecutor.HandoffSnapshot(ringEpoch)
}

// ownerProbe records which shard executed each (key, routedEpoch) — the
// double-ownership detector. For any key, all jobs stamped with the same
// ring epoch must have executed on one shard.
type ownerProbe struct {
	mu   sync.Mutex
	seen map[string]map[uint64]map[int]bool
}

func newOwnerProbe() *ownerProbe {
	return &ownerProbe{seen: map[string]map[uint64]map[int]bool{}}
}

func (p *ownerProbe) note(key string, epoch uint64, shard int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	byEpoch := p.seen[key]
	if byEpoch == nil {
		byEpoch = map[uint64]map[int]bool{}
		p.seen[key] = byEpoch
	}
	owners := byEpoch[epoch]
	if owners == nil {
		owners = map[int]bool{}
		byEpoch[epoch] = owners
	}
	owners[shard] = true
}

func (p *ownerProbe) check(t *testing.T) {
	t.Helper()
	p.mu.Lock()
	defer p.mu.Unlock()
	for key, byEpoch := range p.seen {
		for epoch, owners := range byEpoch {
			if len(owners) > 1 {
				t.Errorf("key %q double-owned at ring epoch %d: shards %v", key, epoch, owners)
			}
		}
	}
}

// probedExec wraps an executor to feed the owner probe.
type probedExec struct {
	*CPExecutor
	id    int
	probe *ownerProbe
}

func (p *probedExec) Execute(ctx context.Context, j *Job) error {
	p.probe.note(Key(j.Tenant, j.Hook), j.RoutedEpoch(), p.id)
	return p.CPExecutor.Execute(ctx, j)
}

// TestRebalanceChaos is the race-detector rebalance drill: real controlha
// leaders per shard, sustained multi-tenant load, and the departing
// shard's leader deposed mid-handoff. The journaled marker must fence the
// stale leader (typed abort, ring untouched), the usual TakeOver +
// Reinstate repair must make the retry succeed with the successor
// exporting the journal-replayed state, every migrated key must converge,
// and no (key, ring-epoch) pair may ever execute on two shards.
func TestRebalanceChaos(t *testing.T) {
	const (
		nodesN  = 2
		hooksN  = 3
		shardsN = 3
	)
	ttl := time.Minute

	fab := rdma.NewFabric()
	hookNames := make([]string, hooksN)
	for h := range hookNames {
		hookNames[h] = fmt.Sprintf("h%02d", h)
	}
	fleet := make([]*node.Node, nodesN)
	nodeNames := make([]string, nodesN)
	for i := range fleet {
		nodeNames[i] = fmt.Sprintf("reb-node-%d", i)
		n, err := node.New(node.Config{
			ID: nodeNames[i], Hooks: hookNames, Cores: 2,
			Latency: rdma.NoLatency(), Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		l, err := fab.Listen(nodeNames[i])
		if err != nil {
			t.Fatal(err)
		}
		go n.Serve(l)
		fleet[i] = n
	}

	type tenantRef struct{ name, hook, nodeName string }
	var tenants []tenantRef
	for i := 0; i < nodesN; i++ {
		for h := 0; h < hooksN; h++ {
			tenants = append(tenants, tenantRef{
				name:     fmt.Sprintf("reb-tenant-%02d", i*hooksN+h),
				hook:     hookNames[h],
				nodeName: nodeNames[i],
			})
		}
	}

	reg := telemetry.NewRegistry()
	arts := artifact.NewCache(artifact.Config{Registry: reg})
	gen1 := cluster.GenerationExt(ext.KindEBPF, 1, 500)
	gen2 := cluster.GenerationExt(ext.KindEBPF, 2, 500)

	type rig struct {
		host      *controlha.Host
		cp        *core.ControlPlane
		flowsName map[string]*core.CodeFlow
		flowsKey  map[string]*core.CodeFlow
	}
	buildCP := func(label string) (*core.ControlPlane, map[string]*core.CodeFlow, map[string]*core.CodeFlow) {
		cp := core.NewControlPlaneLabeled(arts, reg, label)
		byName := map[string]*core.CodeFlow{}
		byKey := map[string]*core.CodeFlow{}
		for _, nn := range nodeNames {
			conn, err := fab.Dial(nn)
			if err != nil {
				t.Fatal(err)
			}
			cf, err := cp.CreateCodeFlow(conn)
			if err != nil {
				t.Fatal(err)
			}
			byName[nn] = cf
			byKey[cf.NodeKey()] = cf
		}
		return cp, byName, byKey
	}
	rigs := make([]*rig, shardsN)
	for s := 0; s < shardsN; s++ {
		host, err := controlha.NewHost(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		hostName := fmt.Sprintf("reb-stby-%d", s)
		hl, err := fab.Listen(hostName)
		if err != nil {
			t.Fatal(err)
		}
		go host.Serve(hl)
		cp, byName, byKey := buildCP(fmt.Sprintf("rdma.qp.reb%d", s))
		conn, err := fab.Dial(hostName)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := controlha.AttachLeader(cp, rdma.NewQP(conn), uint64(1+s), ttl); err != nil {
			t.Fatalf("shard %d: attach leader: %v", s, err)
		}
		rigs[s] = &rig{host: host, cp: cp, flowsName: byName, flowsKey: byKey}
	}

	probe := newOwnerProbe()
	r := NewRouter(Config{Registry: reg})
	hostSrc := func(s int) func() ([]byte, error) { return rigs[s].host.JournalSource() }
	for s := 0; s < shardsN; s++ {
		ex := NewCPExecutorHA(rigs[s].cp, rigs[s].flowsName, hostSrc(s))
		if err := r.AddShard(s, &probedExec{CPExecutor: ex, id: s, probe: probe}); err != nil {
			t.Fatal(err)
		}
	}
	defer r.Close()

	for _, g := range []*ext.Extension{gen1, gen2} {
		for _, tn := range tenants {
			if err := r.Publish(context.Background(), &Job{
				Tenant: tn.name, Hook: tn.hook, Ext: g,
				Nodes: []string{tn.nodeName}, Bytes: 128,
			}); err != nil {
				t.Fatalf("warmup %s: %v", tn.name, err)
			}
		}
	}
	victim, _ := r.ShardFor(tenants[0].name, tenants[0].hook)

	// Chaos load: every failure must be typed — ErrRebalancing during a
	// drain window, ErrShardUnavailable while the victim's leader is dead.
	var (
		stop = make(chan struct{})
		wg   sync.WaitGroup
	)
	gens := []*ext.Extension{gen1, gen2}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; ; iter++ {
				select {
				case <-stop:
					return
				default:
				}
				tn := tenants[(iter*4+w)%len(tenants)]
				err := r.Publish(context.Background(), &Job{
					Tenant: tn.name, Hook: tn.hook, Ext: gens[iter%2],
					Nodes: []string{tn.nodeName}, Bytes: 128,
				})
				if err != nil && !errors.Is(err, ErrRebalancing) && !errors.Is(err, ErrShardUnavailable) {
					t.Errorf("untyped chaos failure on %s: %v", tn.name, err)
					return
				}
			}
		}(w)
	}

	// First rebalance attempt: the departing leader is deposed at the top
	// of the handoff (drain passed, marker append next). The marker must
	// fence — typed abort, no state exported, ring untouched.
	waitUntil(t, "chaos traffic flowing before the sabotaged handoff", func() bool {
		var total uint64
		for _, st := range r.Status() {
			total += st.Published
		}
		return total > 0
	})
	var succCP *core.ControlPlane
	var succName map[string]*core.CodeFlow
	epochBefore := r.RingEpoch()
	sab := &sabotagedMig{
		CPExecutor: NewCPExecutorHA(rigs[victim].cp, rigs[victim].flowsName, hostSrc(victim)),
		steal: func() {
			cp, byName, byKey := buildCP(fmt.Sprintf("rdma.qp.reb%d succ", victim))
			sconn, err := fab.Dial(fmt.Sprintf("reb-stby-%d", victim))
			if err != nil {
				t.Error(err)
				return
			}
			if _, _, err := controlha.TakeOver(cp, rigs[victim].host, rdma.NewQP(sconn), 42, ttl, byKey); err != nil {
				t.Errorf("takeover of shard %d: %v", victim, err)
				return
			}
			succCP, succName = cp, byName
		},
	}
	if err := r.Reinstate(victim, sab); err != nil {
		t.Fatal(err)
	}
	_, err := r.Rebalance(context.Background(), victim)
	if !errors.Is(err, ErrRebalancing) {
		t.Fatalf("sabotaged rebalance: got %v, want ErrRebalancing", err)
	}
	if !errors.Is(err, controlha.ErrFencedAppend) {
		t.Fatalf("sabotaged rebalance: %v should wrap ErrFencedAppend (the marker fences the stale leader)", err)
	}
	if r.RingEpoch() != epochBefore {
		t.Fatalf("aborted rebalance moved the ring: epoch %d -> %d", epochBefore, r.RingEpoch())
	}
	if _, ok := statusByID(r)[victim]; !ok {
		t.Fatal("aborted rebalance removed the victim shard")
	}
	if succCP == nil {
		t.Fatal("sabotage takeover never ran")
	}

	// Repair: reinstate the successor (its control plane already replayed
	// the shard's journal), then retry. This time the handoff succeeds:
	// the successor's journal marker replicates under its own epoch.
	if err := r.Reinstate(victim, &probedExec{
		CPExecutor: NewCPExecutorHA(succCP, succName, hostSrc(victim)),
		id:         victim, probe: probe,
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Rebalance(context.Background(), victim)
	if err != nil {
		t.Fatalf("retry rebalance: %v", err)
	}
	if !rep.Migrated {
		t.Error("retry rebalance moved keys without state")
	}
	if rep.RingEpoch != epochBefore+1 {
		t.Errorf("ring epoch %d -> %d across rebalance, want one bump", epochBefore, rep.RingEpoch)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Convergence: every tenant (migrated range included) publishes gen2
	// and its hook executes the new generation; nothing routes to the
	// removed shard; no (key, epoch) ever ran on two shards.
	for i, tn := range tenants {
		if id, _ := r.ShardFor(tn.name, tn.hook); id == victim {
			t.Fatalf("key %s still resolves to removed shard %d", tn.name, victim)
		}
		if err := r.Publish(context.Background(), &Job{
			Tenant: tn.name, Hook: tn.hook, Ext: gen2,
			Nodes: []string{tn.nodeName}, Bytes: 128,
		}); err != nil {
			t.Fatalf("post-rebalance publish %s: %v", tn.name, err)
		}
		res, err := fleet[i/hooksN].ExecHook(tn.hook, make([]byte, xabi.CtxSize), nil)
		if err != nil {
			t.Fatalf("tenant %s hook exec: %v", tn.name, err)
		}
		if res.Verdict != 102 {
			t.Fatalf("tenant %s verdict %d, want 102 (did not converge)", tn.name, res.Verdict)
		}
	}
	probe.check(t)
}
