package shard

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"rdx/internal/core"
	"rdx/internal/ext"
	"rdx/internal/telemetry"
)

func okExec(counter *atomic.Int64) ExecFunc {
	return func(ctx context.Context, j *Job) error {
		if counter != nil {
			counter.Add(1)
		}
		return nil
	}
}

func testJob(tenant, hook string) *Job {
	return &Job{Tenant: tenant, Hook: hook, Ext: &ext.Extension{}}
}

// TestRouterRoutesByKey: jobs land on the shard the ring assigns, and the
// per-shard published counters in the shared registry reflect that split.
func TestRouterRoutesByKey(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := NewRouter(Config{Registry: reg, Workers: 2})
	defer r.Close()
	var n0, n1 atomic.Int64
	r.AddShard(0, okExec(&n0))
	r.AddShard(1, okExec(&n1))

	const jobs = 200
	want := map[int]int64{}
	for i := 0; i < jobs; i++ {
		tn := fmt.Sprintf("tenant-%d", i)
		id, ok := r.ShardFor(tn, "h")
		if !ok {
			t.Fatal("ShardFor on populated router failed")
		}
		want[id]++
		if err := r.Publish(context.Background(), testJob(tn, "h")); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	if n0.Load() != want[0] || n1.Load() != want[1] {
		t.Errorf("executor split (%d, %d) != ring split (%d, %d)", n0.Load(), n1.Load(), want[0], want[1])
	}
	if want[0] == 0 || want[1] == 0 {
		t.Error("ring routed all keys to one shard")
	}
	st := r.Status()
	if len(st) != 2 || st[0].Published != uint64(want[0]) || st[1].Published != uint64(want[1]) {
		t.Errorf("Status() = %+v, want published (%d, %d)", st, want[0], want[1])
	}
}

// TestRouterTypedErrors: missing fields, empty ring, and quota rejections
// all surface their distinct typed errors.
func TestRouterTypedErrors(t *testing.T) {
	r := NewRouter(Config{})
	defer r.Close()
	if err := r.Publish(context.Background(), &Job{Tenant: "t"}); err == nil {
		t.Error("publish with missing fields succeeded")
	}
	if err := r.Publish(context.Background(), testJob("t", "h")); !errors.Is(err, ErrShardUnavailable) {
		t.Errorf("empty ring: got %v, want ErrShardUnavailable", err)
	}
	r.AddShard(0, okExec(nil))
	r.SetQuota("starved", TenantQuota{PublishPerSec: 0.001, PublishBurst: 1})
	if err := r.Publish(context.Background(), testJob("starved", "h")); err != nil {
		t.Fatalf("first publish within burst: %v", err)
	}
	err := r.Publish(context.Background(), testJob("starved", "h"))
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Errorf("over quota: got %v, want ErrQuotaExceeded", err)
	}
	if errors.Is(err, ErrShardUnavailable) {
		t.Error("quota rejection also matches ErrShardUnavailable; the types must stay distinct")
	}
}

// TestRouterExecutorErrorPassthrough: a plain executor error reaches the
// publisher untyped and does NOT down the shard.
func TestRouterExecutorErrorPassthrough(t *testing.T) {
	r := NewRouter(Config{})
	defer r.Close()
	boom := errors.New("verifier rejected program")
	fail := true
	r.AddShard(0, ExecFunc(func(ctx context.Context, j *Job) error {
		if fail {
			return boom
		}
		return nil
	}))
	if err := r.Publish(context.Background(), testJob("t", "h")); !errors.Is(err, boom) {
		t.Fatalf("got %v, want executor error", err)
	}
	if r.ShardDown(0) {
		t.Fatal("plain executor error fenced the shard")
	}
	fail = false
	if err := r.Publish(context.Background(), testJob("t", "h")); err != nil {
		t.Fatalf("publish after transient failure: %v", err)
	}
}

// TestRouterFenceIsolation is the per-shard fencing contract: an executor
// error wrapping core.ErrFenced downs exactly one shard — its tenants get
// ErrShardUnavailable, every other shard's tenants keep publishing — and
// Reinstate restores the fenced range without disturbing the ring.
func TestRouterFenceIsolation(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := NewRouter(Config{Registry: reg})
	defer r.Close()

	var healthy atomic.Int64
	fenceHits := atomic.Bool{}
	r.AddShard(0, ExecFunc(func(ctx context.Context, j *Job) error {
		fenceHits.Store(true)
		return fmt.Errorf("publish %s: %w", j.Hook, core.ErrFenced)
	}))
	r.AddShard(1, okExec(&healthy))
	r.AddShard(2, okExec(&healthy))

	// Find tenants for each shard deterministically.
	tenantOn := func(id int) string {
		for i := 0; ; i++ {
			tn := fmt.Sprintf("iso-%d", i)
			if got, _ := r.ShardFor(tn, "h"); got == id {
				return tn
			}
		}
	}
	t0, t1, t2 := tenantOn(0), tenantOn(1), tenantOn(2)

	err := r.Publish(context.Background(), testJob(t0, "h"))
	if !errors.Is(err, ErrShardUnavailable) || !errors.Is(err, core.ErrFenced) {
		t.Fatalf("fenced shard publish: got %v, want ErrShardUnavailable wrapping core.ErrFenced", err)
	}
	if !r.ShardDown(0) {
		t.Fatal("shard 0 not marked down after fenced executor error")
	}
	// Subsequent jobs for the fenced range fail fast without reaching the
	// executor again; other shards are untouched.
	fenceHits.Store(false)
	if err := r.Publish(context.Background(), testJob(t0, "h")); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("second publish to fenced shard: got %v", err)
	}
	if fenceHits.Load() {
		t.Error("fenced shard still reached its executor")
	}
	for i := 0; i < 10; i++ {
		if err := r.Publish(context.Background(), testJob(t1, "h")); err != nil {
			t.Fatalf("healthy shard 1 publish failed during sibling fence: %v", err)
		}
		if err := r.Publish(context.Background(), testJob(t2, "h")); err != nil {
			t.Fatalf("healthy shard 2 publish failed during sibling fence: %v", err)
		}
	}
	if healthy.Load() != 20 {
		t.Errorf("healthy shards executed %d jobs, want 20", healthy.Load())
	}
	if r.ShardDown(1) || r.ShardDown(2) {
		t.Error("fence leaked to a sibling shard")
	}
	if got := reg.Counter("shard.0.fenced").Value(); got != 1 {
		t.Errorf("shard.0.fenced = %d, want 1", got)
	}

	// Failover: a successor executor reinstates the shard, same ring range.
	var revived atomic.Int64
	if err := r.Reinstate(0, okExec(&revived)); err != nil {
		t.Fatalf("reinstate: %v", err)
	}
	if r.ShardDown(0) {
		t.Fatal("shard 0 still down after reinstate")
	}
	if id, _ := r.ShardFor(t0, "h"); id != 0 {
		t.Fatalf("tenant %s moved to shard %d across reinstate", t0, id)
	}
	if err := r.Publish(context.Background(), testJob(t0, "h")); err != nil {
		t.Fatalf("publish after reinstate: %v", err)
	}
	if revived.Load() != 1 {
		t.Errorf("successor executed %d jobs, want 1", revived.Load())
	}
	if err := r.Reinstate(99, okExec(nil)); err == nil {
		t.Error("reinstate of unknown shard succeeded")
	}
}

// TestRouterQueuedJobsFailOnFence: jobs already queued behind a fencing
// job drain with ErrShardUnavailable instead of hanging.
func TestRouterQueuedJobsFailOnFence(t *testing.T) {
	r := NewRouter(Config{Workers: 1, QueueCap: 16})
	defer r.Close()
	gate := make(chan struct{})
	r.AddShard(0, ExecFunc(func(ctx context.Context, j *Job) error {
		<-gate
		return fmt.Errorf("deposed: %w", core.ErrFenced)
	}))

	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(i int) {
			errs <- r.Publish(context.Background(), testJob("t", fmt.Sprintf("h%d", i)))
		}(i)
	}
	// Let the jobs queue up behind the gated worker, then release it: the
	// first job fences the shard, the rest must drain with the typed error.
	waitUntil(t, "three jobs queued behind the gated worker", func() bool {
		return r.Status()[0].QueueDepth == 3
	})
	close(gate)
	for i := 0; i < 4; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrShardUnavailable) {
				t.Errorf("queued job got %v, want ErrShardUnavailable", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("queued job hung after shard fence")
		}
	}
}

// TestRouterContextCancel: a publisher abandoned by its context returns
// promptly while the job may still complete behind it.
func TestRouterContextCancel(t *testing.T) {
	r := NewRouter(Config{Workers: 1})
	defer r.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	r.AddShard(0, ExecFunc(func(ctx context.Context, j *Job) error {
		close(started)
		<-block
		return nil
	}))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- r.Publish(ctx, testJob("t", "h")) }()
	// Cancel only once the job is demonstrably inside the executor.
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("publish did not observe context cancellation")
	}
	close(block)
}

// TestRouterRemoveShardRebalances: removing a shard redistributes its keys
// to survivors and leaves the survivors' assignments alone.
func TestRouterRemoveShardRebalances(t *testing.T) {
	r := NewRouter(Config{})
	defer r.Close()
	r.AddShard(0, okExec(nil))
	r.AddShard(1, okExec(nil))
	r.AddShard(2, okExec(nil))
	before := map[string]int{}
	for i := 0; i < 300; i++ {
		tn := fmt.Sprintf("t%d", i)
		before[tn], _ = r.ShardFor(tn, "h")
	}
	r.RemoveShard(1)
	for tn, was := range before {
		now, ok := r.ShardFor(tn, "h")
		if !ok {
			t.Fatal("lookup failed after remove")
		}
		if was != 1 && now != was {
			t.Errorf("tenant %s moved %d -> %d though shard 1's removal should not touch it", tn, was, now)
		}
		if was == 1 && now == 1 {
			t.Errorf("tenant %s still on removed shard", tn)
		}
	}
	// Publishing to a removed shard's old range lands on its new owner.
	for tn, was := range before {
		if was == 1 {
			if err := r.Publish(context.Background(), testJob(tn, "h")); err != nil {
				t.Fatalf("publish to rebalanced tenant: %v", err)
			}
			break
		}
	}
}
