package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"rdx/internal/controlha"
	"rdx/internal/core"
	"rdx/internal/pipeline"
)

// RebalanceState is the deterministic journal replay a rebalance hands
// from a departing shard to its receivers (see controlha.Replay). The
// alias keeps shard's Migrator interface free of a second import for
// callers that only wire executors together.
type RebalanceState = controlha.State

// CPExecutor runs jobs on one shard's control plane. Flows maps node
// names to the shard's own CodeFlows — every shard dials the fleet
// itself, so a publish here serializes only against this shard's pubMu,
// journal, and lease, never a sibling shard's. Single-node jobs take the
// direct InjectExtension path; multi-node jobs fan out through the
// shard's injection scheduler (one validate/JIT per digest, parallel
// staging, coalesced doorbells).
type CPExecutor struct {
	CP    *core.ControlPlane
	Flows map[string]*core.CodeFlow

	// JournalSource reads back the shard's authoritative journal bytes
	// (typically controlha.Host.JournalSource, which pumps the standby
	// first). Nil leaves the executor working but not Migrator-capable:
	// rebalances still move its keys, deployed state stays behind.
	JournalSource func() ([]byte, error)
}

// NewCPExecutor builds an executor over a shard's control plane and its
// node flows.
func NewCPExecutor(cp *core.ControlPlane, flows map[string]*core.CodeFlow) *CPExecutor {
	return &CPExecutor{CP: cp, Flows: flows}
}

// NewCPExecutorHA builds a Migrator-capable executor: src feeds
// HandoffSnapshot the journal bytes a rebalance replays on the way out.
func NewCPExecutorHA(cp *core.ControlPlane, flows map[string]*core.CodeFlow, src func() ([]byte, error)) *CPExecutor {
	return &CPExecutor{CP: cp, Flows: flows, JournalSource: src}
}

// Execute implements Executor.
func (x *CPExecutor) Execute(ctx context.Context, j *Job) error {
	flows, err := x.resolve(j.Nodes)
	if err != nil {
		return err
	}
	if len(flows) == 1 {
		_, err := flows[0].InjectExtension(j.Ext, j.Hook)
		return err
	}
	targets := make([]pipeline.Target, len(flows))
	for i, cf := range flows {
		targets[i] = cf
	}
	res, err := x.CP.Scheduler().Inject(pipeline.Request{Ext: j.Ext, Hook: j.Hook, Targets: targets})
	if err != nil {
		return err
	}
	// Surface a fenced outcome over any other per-node failure: it means
	// this shard's whole key range is dead, and the Shard worker loop
	// keys its fencing decision off errors.Is(err, core.ErrFenced).
	var first error
	for i := range res.Outcomes {
		oErr := res.Outcomes[i].Err
		if oErr == nil {
			continue
		}
		if errors.Is(oErr, core.ErrFenced) {
			return oErr
		}
		if first == nil {
			first = oErr
		}
	}
	return first
}

// resolve maps job node names onto the shard's flows (all flows when the
// job names none). The returned order is unspecified for the empty case —
// multi-node jobs go through the scheduler, which fans out anyway.
func (x *CPExecutor) resolve(nodes []string) ([]*core.CodeFlow, error) {
	if len(nodes) == 0 {
		if len(x.Flows) == 0 {
			return nil, fmt.Errorf("shard: executor has no node flows")
		}
		out := make([]*core.CodeFlow, 0, len(x.Flows))
		for _, cf := range x.Flows {
			out = append(out, cf)
		}
		return out, nil
	}
	out := make([]*core.CodeFlow, 0, len(nodes))
	for _, n := range nodes {
		cf, ok := x.Flows[n]
		if !ok {
			return nil, fmt.Errorf("shard: executor knows no node %q", n)
		}
		out = append(out, cf)
	}
	return out, nil
}

// HandoffSnapshot implements Migrator: journal the rebalance barrier
// marker stamped with ringEpoch, confirm it replicated (a fenced append
// means this leader was deposed mid-rebalance — the typed error aborts
// the migration before any state leaves a shard it no longer owns), then
// replay the full journal and verify the snapshot closes with exactly our
// marker. The replay is deterministic, so two calls over the same journal
// yield byte-identical state.
func (x *CPExecutor) HandoffSnapshot(ringEpoch uint64) (*RebalanceState, error) {
	if x.JournalSource == nil {
		return nil, fmt.Errorf("shard: executor has no journal source for handoff")
	}
	if err := x.CP.JournalHandoff(ringEpoch); err != nil {
		return nil, fmt.Errorf("handoff marker: %w", err)
	}
	data, err := x.JournalSource()
	if err != nil {
		return nil, fmt.Errorf("handoff journal read: %w", err)
	}
	st, err := controlha.Replay(data)
	if err != nil {
		return nil, fmt.Errorf("handoff replay: %w", err)
	}
	if st.LastHandoffEpoch != ringEpoch {
		// The journal we read back does not end at our marker: either a
		// stale read or a concurrent handoff — both mean this snapshot is
		// not the shard's final word for this rebalance.
		return nil, fmt.Errorf("shard: handoff snapshot at ring epoch %d, want %d",
			st.LastHandoffEpoch, ringEpoch)
	}
	return st, nil
}

// AbsorbKeys implements Migrator: install the listed keys' slice of a
// departing shard's snapshot on this shard's control plane. Key tracking
// is by executor node name; the journal keys state by the node's stable
// NodeKey, so the translation goes through this executor's own flows — a
// named node this shard is not bound to simply has nowhere to land and is
// skipped. Versions and rollback stacks replay through State.ApplyTo;
// compiled artifacts resolve from the shared cache, so absorbing costs
// zero recompiles.
func (x *CPExecutor) AbsorbKeys(st *RebalanceState, keys []MigratedKey) error {
	if st == nil {
		return fmt.Errorf("shard: absorb of nil snapshot")
	}
	byKey := make(map[string]*core.CodeFlow, len(x.Flows))
	for _, cf := range x.Flows {
		byKey[cf.NodeKey()] = cf
	}
	// keep is the (nodeKey, hook) set the migrated keys expand to. A key
	// whose jobs named no nodes (or every node) covers all of this shard's
	// flows for its hook.
	keep := map[controlha.Key]bool{}
	for _, mk := range keys {
		if mk.All || len(mk.Nodes) == 0 {
			for nk := range byKey {
				keep[controlha.Key{Node: nk, Hook: mk.Hook}] = true
			}
			continue
		}
		for _, name := range mk.Nodes {
			if cf, ok := x.Flows[name]; ok {
				keep[controlha.Key{Node: cf.NodeKey(), Hook: mk.Hook}] = true
			}
		}
	}
	sub := st.Filter(func(node, hook string) bool {
		return keep[controlha.Key{Node: node, Hook: hook}]
	})
	sub.ApplyTo(x.CP, byKey)
	x.journalAbsorbed(sub)
	return nil
}

// journalAbsorbed re-journals an absorbed sub-state through this shard's
// own sink. Without this the migrated state would exist only in this
// control plane's in-memory bookkeeping: a later failover (TakeOver
// replays this shard's journal) or a second rebalance hop (HandoffSnapshot
// is also a journal replay) would silently drop everything this shard ever
// absorbed. History stacks re-journal as publish entries in stack order —
// replay rebuilds them byte-identically, tombstones included, and the
// version map follows from the same last-writer-wins rule that built the
// snapshot. Best-effort like every publish-path sink call; the next
// handoff's checked marker is where durability is enforced.
func (x *CPExecutor) journalAbsorbed(sub *RebalanceState) {
	sink := x.CP.Journal()
	if sink == nil {
		return
	}
	hooks := make([]controlha.Key, 0, len(sub.History))
	for k := range sub.History {
		hooks = append(hooks, k)
	}
	sort.Slice(hooks, func(i, j int) bool {
		if hooks[i].Node != hooks[j].Node {
			return hooks[i].Node < hooks[j].Node
		}
		return hooks[i].Hook < hooks[j].Hook
	})
	for _, k := range hooks {
		for _, d := range sub.History[k] {
			sink.JournalPublish(k.Node, k.Hook, d)
		}
	}
	for _, in := range sub.Open {
		sink.JournalStage(in.Node, in.Hook, in.Name, in.Digest, in.Version, in.Blob)
	}
}
