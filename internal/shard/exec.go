package shard

import (
	"context"
	"errors"
	"fmt"

	"rdx/internal/core"
	"rdx/internal/pipeline"
)

// CPExecutor runs jobs on one shard's control plane. Flows maps node
// names to the shard's own CodeFlows — every shard dials the fleet
// itself, so a publish here serializes only against this shard's pubMu,
// journal, and lease, never a sibling shard's. Single-node jobs take the
// direct InjectExtension path; multi-node jobs fan out through the
// shard's injection scheduler (one validate/JIT per digest, parallel
// staging, coalesced doorbells).
type CPExecutor struct {
	CP    *core.ControlPlane
	Flows map[string]*core.CodeFlow
}

// NewCPExecutor builds an executor over a shard's control plane and its
// node flows.
func NewCPExecutor(cp *core.ControlPlane, flows map[string]*core.CodeFlow) *CPExecutor {
	return &CPExecutor{CP: cp, Flows: flows}
}

// Execute implements Executor.
func (x *CPExecutor) Execute(ctx context.Context, j *Job) error {
	flows, err := x.resolve(j.Nodes)
	if err != nil {
		return err
	}
	if len(flows) == 1 {
		_, err := flows[0].InjectExtension(j.Ext, j.Hook)
		return err
	}
	targets := make([]pipeline.Target, len(flows))
	for i, cf := range flows {
		targets[i] = cf
	}
	res, err := x.CP.Scheduler().Inject(pipeline.Request{Ext: j.Ext, Hook: j.Hook, Targets: targets})
	if err != nil {
		return err
	}
	// Surface a fenced outcome over any other per-node failure: it means
	// this shard's whole key range is dead, and the Shard worker loop
	// keys its fencing decision off errors.Is(err, core.ErrFenced).
	var first error
	for i := range res.Outcomes {
		oErr := res.Outcomes[i].Err
		if oErr == nil {
			continue
		}
		if errors.Is(oErr, core.ErrFenced) {
			return oErr
		}
		if first == nil {
			first = oErr
		}
	}
	return first
}

// resolve maps job node names onto the shard's flows (all flows when the
// job names none). The returned order is unspecified for the empty case —
// multi-node jobs go through the scheduler, which fans out anyway.
func (x *CPExecutor) resolve(nodes []string) ([]*core.CodeFlow, error) {
	if len(nodes) == 0 {
		if len(x.Flows) == 0 {
			return nil, fmt.Errorf("shard: executor has no node flows")
		}
		out := make([]*core.CodeFlow, 0, len(x.Flows))
		for _, cf := range x.Flows {
			out = append(out, cf)
		}
		return out, nil
	}
	out := make([]*core.CodeFlow, 0, len(nodes))
	for _, n := range nodes {
		cf, ok := x.Flows[n]
		if !ok {
			return nil, fmt.Errorf("shard: executor knows no node %q", n)
		}
		out = append(out, cf)
	}
	return out, nil
}
