package shard

import (
	"fmt"
	"testing"
)

// TestMapBalance: with virtual nodes, key shares across shards stay within
// a reasonable band of the mean.
func TestMapBalance(t *testing.T) {
	m := NewMap(0)
	const shards = 8
	for i := 0; i < shards; i++ {
		m.Add(i)
	}
	counts := map[int]int{}
	const keys = 8000
	for i := 0; i < keys; i++ {
		id, ok := m.Lookup(fmt.Sprintf("tenant-%d", i), "ingress")
		if !ok {
			t.Fatal("lookup on populated ring failed")
		}
		counts[id]++
	}
	mean := keys / shards
	for id, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Errorf("shard %d owns %d of %d keys (mean %d): imbalance beyond 2x", id, c, keys, mean)
		}
	}
	if len(counts) != shards {
		t.Errorf("only %d of %d shards own keys", len(counts), shards)
	}
}

// TestMapStableAssignment: removing one shard moves only the keys it
// owned; every other key keeps its shard. Adding it back restores the
// original assignment exactly (placement is deterministic in shard ID).
func TestMapStableAssignment(t *testing.T) {
	m := NewMap(0)
	for i := 0; i < 8; i++ {
		m.Add(i)
	}
	const keys = 4000
	before := make([]int, keys)
	for i := range before {
		before[i], _ = m.Lookup(fmt.Sprintf("t%d", i), "h")
	}

	m.Remove(3)
	moved := 0
	for i := range before {
		id, _ := m.Lookup(fmt.Sprintf("t%d", i), "h")
		if before[i] == 3 {
			if id == 3 {
				t.Fatalf("key t%d still maps to removed shard 3", i)
			}
			moved++
			continue
		}
		if id != before[i] {
			t.Errorf("key t%d moved %d -> %d though shard 3's removal should not touch it", i, before[i], id)
		}
	}
	if moved == 0 {
		t.Fatal("shard 3 owned no keys before removal; balance test should have caught this")
	}

	m.Add(3)
	for i := range before {
		if id, _ := m.Lookup(fmt.Sprintf("t%d", i), "h"); id != before[i] {
			t.Errorf("key t%d: %d after re-add, want original %d", i, id, before[i])
		}
	}
}

// TestMapKeyComposition: the tenant/hook separator keeps adjacent
// compositions distinct, and the empty ring reports !ok.
func TestMapKeyComposition(t *testing.T) {
	if Key("ab", "c") == Key("a", "bc") {
		t.Error("Key collapses (ab,c) and (a,bc)")
	}
	m := NewMap(4)
	if _, ok := m.Lookup("t", "h"); ok {
		t.Error("empty ring returned a shard")
	}
	m.Add(1)
	id, ok := m.Lookup("t", "h")
	if !ok || id != 1 {
		t.Errorf("single-shard ring: got (%d, %v), want (1, true)", id, ok)
	}
	if got := m.Shards(); len(got) != 1 || got[0] != 1 {
		t.Errorf("Shards() = %v", got)
	}
}
