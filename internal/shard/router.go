package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"rdx/internal/sim"
	"rdx/internal/telemetry"
)

// Config shapes a Router. The zero value is usable: defaults are filled
// by NewRouter.
type Config struct {
	// VNodes is the virtual-node count per shard on the consistent-hash
	// ring (DefaultVNodes if 0).
	VNodes int
	// Workers bounds concurrently executing jobs per shard (default 4 —
	// matched to the per-shard scheduler's work-queue width).
	Workers int
	// QueueCap bounds each shard's fair-share queue (default 1024).
	// Submitters block (not fail) on a full queue: the token buckets are
	// the admission verdict, the queue bound is backpressure.
	QueueCap int
	// DefaultQuota admits tenants with no explicit quota. The zero value
	// is unlimited.
	DefaultQuota TenantQuota
	// DefaultWeight is the fair-share weight of tenants with no explicit
	// weight (default 1).
	DefaultWeight int
	// Registry receives every shard.* instrument; nil creates a private
	// registry.
	Registry *telemetry.Registry
	// Clock is the time source for admission refill, queue-wait stamps, and
	// rebalance latency (wall clock if nil — the simulator's seam).
	Clock sim.Clock
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
	if c.DefaultWeight <= 0 {
		c.DefaultWeight = 1
	}
	if c.Registry == nil {
		c.Registry = telemetry.NewRegistry()
	}
	if c.Clock == nil {
		c.Clock = sim.Real{}
	}
}

// Router fronts N control-plane shards: it admits jobs against per-tenant
// token buckets, routes each to the shard owning its (tenant, hook) key,
// and waits for the shard's fair-share workers to execute it. A fenced
// shard fails only its own key range — Publish keeps succeeding for every
// other shard's tenants, which is the whole point of sharding the control
// plane.
type Router struct {
	cfg  Config
	reg  *telemetry.Registry
	ring *Map
	adm  *Admission

	mu      sync.RWMutex
	shards  map[int]*Shard
	weights map[string]int
	closed  bool

	// keyMu guards the published-key table feeding rebalance planning: for
	// every key that ever published successfully, which executor nodes its
	// jobs targeted. Separate from mu — Publish appends here on its success
	// path and must not contend with shard membership reads.
	keyMu sync.Mutex
	keys  map[string]*keyInfo

	// rebMu serializes rebalances: one membership change migrates state at
	// a time, so two concurrent Rebalance calls cannot drain each other's
	// receivers mid-handoff.
	rebMu sync.Mutex
}

// ErrRouterClosed reports an operation on a router after Close. Installing
// a shard front past Close would start a worker pool nothing ever stops —
// the Close-vs-Reinstate race this error fails instead.
var ErrRouterClosed = errors.New("shard: router closed")

// keyInfo is one published (tenant, hook) key's routing footprint.
type keyInfo struct {
	tenant, hook string
	nodes        map[string]struct{} // executor node names jobs named
	all          bool                // some job targeted every node
}

// NewRouter builds an empty router; add shards with AddShard.
func NewRouter(cfg Config) *Router {
	cfg.fillDefaults()
	return &Router{
		cfg:     cfg,
		reg:     cfg.Registry,
		ring:    NewMap(cfg.VNodes),
		adm:     NewAdmission(cfg.DefaultQuota, cfg.Registry).WithClock(cfg.Clock),
		shards:  map[int]*Shard{},
		weights: map[string]int{},
		keys:    map[string]*keyInfo{},
	}
}

// Registry exposes the router's instrument registry.
func (r *Router) Registry() *telemetry.Registry { return r.reg }

// AddShard registers a shard and inserts it into the hash ring, starting
// its worker pool. Adding an existing ID replaces the front (the old one
// is stopped) without moving the ring. A closed router refuses with typed
// ErrRouterClosed — the shard front owns goroutines, and one installed
// after Close would never be stopped.
func (r *Router) AddShard(id int, ex Executor) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return fmt.Errorf("%w: cannot add shard %d", ErrRouterClosed, id)
	}
	s := newShard(id, r.cfg.Workers, r.cfg.QueueCap, ex, r.cfg.Clock, r.reg)
	old := r.shards[id]
	r.shards[id] = s
	r.mu.Unlock()
	r.ring.Add(id)
	if old != nil {
		old.stop()
	}
	return nil
}

// Reinstate installs a successor executor for a fenced shard — the
// post-failover step after controlha.TakeOver hands a new leader the
// shard's replayed journal. The shard's key range resumes; its ring
// position, instruments, and accumulated counters are unchanged. Racing
// Close refuses with typed ErrRouterClosed instead of leaking a worker
// pool and queue nothing will ever stop.
func (r *Router) Reinstate(id int, ex Executor) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return fmt.Errorf("%w: cannot reinstate shard %d", ErrRouterClosed, id)
	}
	old, ok := r.shards[id]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("shard: reinstate of unknown shard %d", id)
	}
	r.shards[id] = newShard(id, r.cfg.Workers, r.cfg.QueueCap, ex, r.cfg.Clock, r.reg)
	r.mu.Unlock()
	old.stop()
	return nil
}

// RemoveShard takes a shard out of the ring and stops it; its key range
// redistributes to the remaining shards but its deployed state does NOT
// move — the abrupt-departure path (a shard lost for good). For elastic
// scale-in use Rebalance, which drains the front, journals the handoff
// marker, and replays the departing keys' state into the receivers first.
func (r *Router) RemoveShard(id int) {
	r.ring.Remove(id)
	r.mu.Lock()
	s := r.shards[id]
	delete(r.shards, id)
	r.mu.Unlock()
	if s != nil {
		s.stop()
	}
}

// SetQuota overrides a tenant's admission quota.
func (r *Router) SetQuota(tenant string, q TenantQuota) { r.adm.SetQuota(tenant, q) }

// SetWeight overrides a tenant's fair-share weight (minimum 1).
func (r *Router) SetWeight(tenant string, w int) {
	r.mu.Lock()
	r.weights[tenant] = w
	r.mu.Unlock()
}

// ShardFor reveals which shard owns (tenant, hook) — the bench and the
// stats surface use it; Publish routes internally.
func (r *Router) ShardFor(tenant, hook string) (int, bool) {
	return r.ring.Lookup(tenant, hook)
}

// ShardDown reports whether a shard is currently fenced/stopped (unknown
// shards count as down).
func (r *Router) ShardDown(id int) bool {
	r.mu.RLock()
	s := r.shards[id]
	r.mu.RUnlock()
	return s == nil || s.Down()
}

// Publish admits, routes, schedules, and executes one job, blocking until
// the owning shard finishes it (or ctx expires). Errors are typed:
// ErrQuotaExceeded from admission, ErrShardUnavailable when the owning
// shard is fenced or absent, ErrRebalancing while the owner is mid-drain,
// executor errors otherwise. A job that never reaches a shard's queue
// refunds its admission tokens: the quota charges work the control plane
// might do, and without the refund a tenant retrying against a downed
// shard would watch ErrShardUnavailable mutate into ErrQuotaExceeded as
// the failed attempts drained its buckets.
func (r *Router) Publish(ctx context.Context, j *Job) error {
	if j.Tenant == "" || j.Hook == "" || j.Ext == nil {
		return fmt.Errorf("shard: job needs tenant, hook, and extension")
	}
	if err := r.adm.Admit(j.Tenant, j.Bytes); err != nil {
		return err
	}
	id, epoch, ok := r.ring.LookupEpoch(j.Tenant, j.Hook)
	if !ok {
		r.adm.Refund(j.Tenant, j.Bytes)
		return fmt.Errorf("%w: no shards registered", ErrShardUnavailable)
	}
	r.mu.RLock()
	s := r.shards[id]
	w, okw := r.weights[j.Tenant]
	r.mu.RUnlock()
	if s == nil {
		r.adm.Refund(j.Tenant, j.Bytes)
		return fmt.Errorf("%w: shard %d absent", ErrShardUnavailable, id)
	}
	if !okw {
		w = r.cfg.DefaultWeight
	}
	j.weight = w
	j.routedEpoch = epoch
	j.done = make(chan error, 1)
	if err := s.submit(j); err != nil {
		r.adm.Refund(j.Tenant, j.Bytes)
		return err
	}
	select {
	case err := <-j.done:
		if err == nil {
			r.recordKey(j)
		}
		return err
	case <-ctx.Done():
		// The job may still execute; its buffered done channel absorbs the
		// late outcome.
		return fmt.Errorf("shard: publish wait: %w", ctx.Err())
	}
}

// recordKey notes a successfully published key's routing footprint — the
// table Rebalance plans state migration from. Tracking is by observed
// publishes: a key that never published through this router has no
// deployed state to migrate. (A publish whose caller abandoned the wait is
// the one best-effort gap; its next successful publish re-records it.)
func (r *Router) recordKey(j *Job) {
	r.keyMu.Lock()
	defer r.keyMu.Unlock()
	k := Key(j.Tenant, j.Hook)
	ki := r.keys[k]
	if ki == nil {
		ki = &keyInfo{tenant: j.Tenant, hook: j.Hook}
		r.keys[k] = ki
	}
	if len(j.Nodes) == 0 {
		ki.all = true
		return
	}
	if ki.nodes == nil {
		ki.nodes = map[string]struct{}{}
	}
	for _, n := range j.Nodes {
		ki.nodes[n] = struct{}{}
	}
}

// RingEpoch returns the current ring membership epoch (see Map.Epoch).
func (r *Router) RingEpoch() uint64 { return r.ring.Epoch() }

// Close stops every shard front; queued jobs fail with ErrShardUnavailable.
func (r *Router) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	shards := make([]*Shard, 0, len(r.shards))
	for _, s := range r.shards {
		shards = append(shards, s)
	}
	r.mu.Unlock()
	for _, s := range shards {
		s.stop()
	}
}

// ShardStatus is one row of the router's per-shard snapshot.
type ShardStatus struct {
	ID         int
	Down       bool
	QueueDepth int
	Published  uint64
	Failed     uint64
	Fenced     uint64
}

// Status snapshots every shard, sorted by ID.
func (r *Router) Status() []ShardStatus {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ShardStatus, 0, len(r.shards))
	for id, s := range r.shards {
		out = append(out, ShardStatus{
			ID:         id,
			Down:       s.Down(),
			QueueDepth: s.q.len(),
			Published:  s.published.Value(),
			Failed:     s.failed.Value(),
			Fenced:     s.fenced.Value(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
